module detectable

go 1.24
