package detectable

import (
	"fmt"

	"detectable/internal/history"
	"detectable/internal/linearize"
	"detectable/internal/spec"
)

// ObjectKind names a sequential specification for history verification.
type ObjectKind int

// Verifiable object kinds.
const (
	KindRegister ObjectKind = iota + 1
	KindCAS
	KindMaxRegister
	KindQueue
	KindCounter
)

func (k ObjectKind) spec(init int) (spec.Object, error) {
	switch k {
	case KindRegister:
		return spec.Register{InitVal: init}, nil
	case KindCAS:
		return spec.CAS{InitVal: init}, nil
	case KindMaxRegister:
		return spec.MaxRegister{}, nil
	case KindQueue:
		return spec.Queue{}, nil
	case KindCounter:
		return spec.Counter{}, nil
	default:
		return nil, fmt.Errorf("detectable: unknown object kind %d", k)
	}
}

// VerifyReport summarizes a history verification.
type VerifyReport struct {
	// DurablyLinearizable reports whether the recorded history admits a
	// legal linearization under the detectability accounting: completed
	// and recovered operations included with their responses, failed
	// operations excluded.
	DurablyLinearizable bool
	// Completed, Recovered, Failed and Pending count operation fates.
	Completed, Recovered, Failed, Pending int
	// Crashes counts system-wide crash events.
	Crashes int
}

// Verify checks the system's entire recorded history against the
// sequential specification of kind (with initial value init where that is
// meaningful). It is intended for tests and demos: keep histories under ~60
// operations per system, or verification cost explodes.
//
// A system records one global history, so Verify is only meaningful when
// the system hosted a single object.
func (s *System) Verify(kind ObjectKind, init int) (VerifyReport, error) {
	obj, err := kind.spec(init)
	if err != nil {
		return VerifyReport{}, err
	}
	ok, rep, err := linearize.CheckLog(obj, s.inner.Log())
	if err != nil {
		return VerifyReport{}, err
	}
	return VerifyReport{
		DurablyLinearizable: ok,
		Completed:           rep.Completed,
		Recovered:           rep.Recovered,
		Failed:              rep.Failed,
		Pending:             rep.Pending,
		Crashes:             rep.Crashes,
	}, nil
}

// History returns the recorded events rendered one per line, for demos and
// debugging.
func (s *System) History() string { return s.inner.Log().String() }

// HistoryLen returns the number of recorded events.
func (s *System) HistoryLen() int { return s.inner.Log().Len() }

var _ = history.Event{} // keep the dependency explicit for godoc cross-links
