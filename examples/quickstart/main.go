// Quickstart: a detectable CAS object surviving injected crash-failures.
//
// The demo performs three compare-and-swaps. The second one is interrupted
// by a system-wide crash right after its CAS primitive executes: all
// volatile state is lost, yet the recovery function proves from the flip
// vector that the operation was linearized and recovers its response. The
// third is interrupted before the CAS executes, and recovery proves the
// opposite — the caller may safely re-invoke.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"detectable"
)

func main() {
	sys := detectable.NewSystem(2)
	cas := sys.NewCAS(0)

	// A plain, crash-free CAS.
	out := cas.Cas(0, 0, 10)
	fmt.Printf("cas(0→10):  linearized=%v resp=%v value=%d\n", out.Linearized, out.Resp, cas.Value())

	// Crash right AFTER the CAS primitive (step 8 = announcement 3 steps +
	// load, RD persist, checkpoint, CAS): the operation took effect before
	// the crash, and recovery detects it.
	out = cas.Cas(1, 10, 20, detectable.CrashAtStep(8))
	fmt.Printf("cas(10→20): linearized=%v resp=%v crashes=%d value=%d\n",
		out.Linearized, out.Resp, out.Crashes, cas.Value())

	// Crash right BEFORE the CAS primitive (step 7): the operation did not
	// take effect; recovery returns the definite fail verdict.
	out = cas.Cas(0, 20, 30, detectable.CrashAtStep(7))
	fmt.Printf("cas(20→30): linearized=%v (safe to re-invoke) value=%d\n", out.Linearized, cas.Value())

	// The caller re-invokes, as detectability entitles it to.
	out = cas.Cas(0, 20, 30)
	fmt.Printf("cas(20→30): linearized=%v resp=%v value=%d\n", out.Linearized, out.Resp, cas.Value())

	// The recorded history — crashes included — is durably linearizable.
	rep, err := sys.Verify(detectable.KindCAS, 0)
	if err != nil {
		fmt.Println("verify error:", err)
		return
	}
	fmt.Printf("history: durably-linearizable=%v completed=%d recovered=%d failed=%d crashes=%d\n",
		rep.DurablyLinearizable, rep.Completed, rep.Recovered, rep.Failed, rep.Crashes)
}
