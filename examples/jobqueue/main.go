// Jobqueue: exactly-once job processing across crash storms.
//
// A producer enqueues 20 jobs and workers dequeue them, while the process
// is bombarded with randomly placed crash injections. Detectability is what
// makes the retry loop safe: an operation is re-invoked only when its
// recovery function proves it was NOT linearized, so no job is ever lost or
// processed twice — the exact composability argument from the paper's
// discussion of detectability versus plain durable linearizability.
//
// Run with:
//
//	go run ./examples/jobqueue
package main

import (
	"fmt"
	"math/rand"
	"os"

	"detectable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jobqueue:", err)
		os.Exit(1)
	}
}

func run() error {
	const jobs = 20
	rng := rand.New(rand.NewSource(2020))
	sys := detectable.NewSystem(2)
	q := sys.NewQueue()

	attempts, crashes := 0, 0
	for job := 1; job <= jobs; job++ {
		for {
			attempts++
			out := q.Enq(0, job, randomCrash(rng))
			crashes += out.Crashes
			if out.Linearized {
				break
			}
			// Not linearized: the fail verdict licenses a retry.
		}
	}
	fmt.Printf("produced %d jobs in %d attempts (%d crash interruptions)\n", jobs, attempts, crashes)

	var processed []int
	attempts, crashes = 0, 0
	for {
		attempts++
		out := q.Deq(1, randomCrash(rng))
		crashes += out.Crashes
		if !out.Linearized {
			continue
		}
		if out.Resp == detectable.EmptyQueue {
			break
		}
		processed = append(processed, out.Resp)
	}
	fmt.Printf("consumed %d jobs in %d attempts (%d crash interruptions)\n", len(processed), attempts, crashes)

	for i, v := range processed {
		if v != i+1 {
			return fmt.Errorf("job order broken: position %d holds %d", i, v)
		}
	}
	if len(processed) != jobs {
		return fmt.Errorf("processed %d jobs, want %d", len(processed), jobs)
	}
	fmt.Println("every job processed exactly once, in FIFO order")
	return nil
}

// randomCrash returns a plan that, one time in three, crashes the system at
// a random primitive of the operation.
func randomCrash(rng *rand.Rand) detectable.CrashPlan {
	if rng.Intn(3) != 0 {
		return detectable.CrashAtStep(1 << 30) // never reached
	}
	return detectable.CrashAtStep(uint64(1 + rng.Intn(12)))
}
