// Kvstore: a recoverable key-value store on detectable registers, driven by
// concurrent clients under a crash storm.
//
// Each client owns a set of keys and performs durable puts (retry-on-fail,
// the paper's NRL transformation) while a background storm crashes the
// whole system. Afterwards every key must hold its last written value —
// bounded space per key, no write-ahead log in sight.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"os"
	"sync"

	"detectable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kvstore:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		clients = 4
		writes  = 50
	)
	sys := detectable.NewSystem(clients)
	store := sys.NewKV()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%700 == 0 {
				sys.Crash()
			}
		}
	}()

	var wg sync.WaitGroup
	invocations := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			key := fmt.Sprintf("client-%d", pid)
			for i := 1; i <= writes; i++ {
				invocations[pid] += store.PutDurable(pid, key, i)
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	storm.Wait()

	totalInv := 0
	for c := 0; c < clients; c++ {
		key := fmt.Sprintf("client-%d", c)
		out := store.Get(c, key)
		fmt.Printf("%s = %d (want %d) after %d invocations for %d writes\n",
			key, out.Resp, writes, invocations[c], writes)
		if out.Resp != writes {
			return fmt.Errorf("%s lost its final write", key)
		}
		totalInv += invocations[c]
	}
	fmt.Printf("storm over: %d logical writes took %d invocations; every final value intact\n",
		clients*writes, totalInv)
	fmt.Printf("keys: %v\n", store.Keys())
	return nil
}
