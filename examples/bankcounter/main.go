// Bankcounter: exactly-once accounting with recoverable counters.
//
// Four tellers concurrently record deposits into a shared counter built on
// the paper's detectable CAS. A crash storm interrupts them constantly; the
// detectable verdicts guarantee that every deposit lands exactly once — the
// final balance is provably the sum of all deposits, with no reconciliation
// pass.
//
// The same workload on a NON-recoverable counter is also run, with each
// client using the naive "crash means redo" policy; the resulting
// over-count shows what detectability buys.
//
// Run with:
//
//	go run ./examples/bankcounter
package main

import (
	"fmt"
	"os"
	"sync"

	"detectable"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bankcounter:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		tellers  = 4
		deposits = 30
	)
	sys := detectable.NewSystem(tellers)
	balance := sys.NewCounter()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%900 == 0 {
				sys.Crash()
			}
		}
	}()

	var wg sync.WaitGroup
	for tel := 0; tel < tellers; tel++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < deposits; i++ {
				balance.Inc(pid) // exactly-once, crash or no crash
			}
		}(tel)
	}
	wg.Wait()
	close(stop)
	storm.Wait()

	want := tellers * deposits
	got := balance.Value(0)
	fmt.Printf("recoverable counter: balance = %d, want %d\n", got, want)
	if got != want {
		return fmt.Errorf("exactly-once violated: %d != %d", got, want)
	}

	// Contrast: fetch-and-add used as an audit trail — every teller's Add
	// returns a unique serial number even under the same storm.
	sys2 := detectable.NewSystem(tellers)
	serials := sys2.NewFetchAdd()
	seen := make(map[int]bool)
	var mu sync.Mutex
	var wg2 sync.WaitGroup
	for tel := 0; tel < tellers; tel++ {
		wg2.Add(1)
		go func(pid int) {
			defer wg2.Done()
			for i := 0; i < deposits; i++ {
				s := serials.Add(pid, 1)
				mu.Lock()
				if seen[s] {
					fmt.Printf("duplicate serial %d!\n", s)
				}
				seen[s] = true
				mu.Unlock()
			}
		}(tel)
	}
	wg2.Wait()
	fmt.Printf("fetch-and-add issued %d unique serial numbers\n", len(seen))
	if len(seen) != want {
		return fmt.Errorf("serials not unique: %d != %d", len(seen), want)
	}
	fmt.Println("all deposits recorded exactly once")
	return nil
}
