package detectable

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// MemoryModel selects how the simulated NVM behaves (Section 6 of the
// paper).
type MemoryModel int

// Memory models.
const (
	// PrivateCache applies every primitive directly to NVM (the abstract
	// model the paper's algorithms are specified in). This is the default.
	PrivateCache MemoryModel = iota + 1
	// SharedCacheFlushed applies primitives to a volatile shared cache and
	// persists each write immediately afterwards — the flush-after-write
	// transformation that carries the algorithms to real hardware.
	SharedCacheFlushed
	// SharedCacheRaw applies primitives to the volatile cache with no
	// persistency instructions. Crashes lose unflushed effects; use it to
	// observe durability violations.
	SharedCacheRaw
)

func (m MemoryModel) internal() nvm.Model {
	switch m {
	case SharedCacheFlushed:
		return nvm.ModelSharedCacheAuto
	case SharedCacheRaw:
		return nvm.ModelSharedCacheRaw
	default:
		return nvm.ModelPrivateCache
	}
}

// System is one simulated crash-prone shared-memory system shared by N
// processes. Methods that take a pid expect 0 ≤ pid < N; a single pid must
// not run two operations concurrently (distinct pids may).
type System struct {
	inner *runtime.System
}

// NewSystem creates a system of n processes under the private-cache model.
func NewSystem(n int) *System {
	return &System{inner: runtime.NewSystem(n)}
}

// NewSystemWithModel creates a system of n processes under the given
// memory model.
func NewSystemWithModel(n int, m MemoryModel) *System {
	return &System{inner: runtime.NewSystemModel(n, m.internal())}
}

// N returns the number of processes.
func (s *System) N() int { return s.inner.N() }

// Crash injects a system-wide crash-failure: all volatile state is lost,
// every in-flight operation falls into its recovery function, and (under
// the shared-cache models) unflushed writes are discarded.
func (s *System) Crash() { s.inner.Crash() }

// Primitives returns the total number of memory primitives executed so
// far, for instrumentation.
func (s *System) Primitives() uint64 { return s.inner.Space().Stats().Total() }

// Outcome is the detectable result of one operation execution.
type Outcome[R any] struct {
	// Linearized reports that the operation took effect; Resp is then its
	// response. When false, the operation definitely did not take effect
	// and can safely be re-invoked.
	Linearized bool
	// Resp is the operation's response (valid when Linearized).
	Resp R
	// Crashes counts the crash interruptions this execution survived.
	Crashes int
}

func wrap[R comparable](o runtime.Outcome[R]) Outcome[R] {
	return Outcome[R]{Linearized: o.Status.Linearized(), Resp: o.Resp, Crashes: o.Crashes}
}

// CrashPlan schedules deterministic crash injection into a single
// operation, for tests and demos.
type CrashPlan struct {
	inner func() nvm.CrashPlan
}

// CrashAtStep returns a plan that crashes the whole system immediately
// before the operation's step-th memory primitive (1-based; the caller-side
// announcement, where present, contributes the first three steps).
func CrashAtStep(step uint64) CrashPlan {
	return CrashPlan{inner: func() nvm.CrashPlan { return nvm.CrashAtStep(step) }}
}

func unwrapPlans(plans []CrashPlan) []nvm.CrashPlan {
	out := make([]nvm.CrashPlan, len(plans))
	for i, p := range plans {
		out[i] = p.inner()
	}
	return out
}
