package detectable_test

import (
	"fmt"
	"reflect"
	"testing"

	"detectable"
)

func TestRegisterRoundTrip(t *testing.T) {
	sys := detectable.NewSystem(2)
	reg := sys.NewRegister(0)
	if out := reg.Write(0, 7); !out.Linearized {
		t.Fatalf("write outcome %+v", out)
	}
	if out := reg.Read(1); !out.Linearized || out.Resp != 7 {
		t.Fatalf("read outcome %+v", out)
	}
	rep, err := sys.Verify(detectable.KindRegister, 0)
	if err != nil || !rep.DurablyLinearizable {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
}

func TestRegisterCrashVerdicts(t *testing.T) {
	sys := detectable.NewSystem(2)
	reg := sys.NewRegister(100)
	// Step 10 is Algorithm 1's line-7 store; crashing before it must fail.
	out := reg.Write(0, 5, detectable.CrashAtStep(10))
	if out.Linearized {
		t.Fatalf("outcome %+v, want not linearized", out)
	}
	if reg.Value() != 100 {
		t.Fatalf("value = %d after failed write", reg.Value())
	}
	out = reg.Write(0, 5, detectable.CrashAtStep(11))
	if !out.Linearized || out.Crashes != 1 {
		t.Fatalf("outcome %+v, want linearized after 1 crash", out)
	}
	if reg.Value() != 5 {
		t.Fatalf("value = %d", reg.Value())
	}
	rep, err := sys.Verify(detectable.KindRegister, 100)
	if err != nil || !rep.DurablyLinearizable {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
	if rep.Failed != 1 || rep.Recovered != 1 || rep.Crashes != 2 {
		t.Fatalf("report %+v", rep)
	}
}

func TestCASDetectability(t *testing.T) {
	sys := detectable.NewSystem(2)
	c := sys.NewCAS(0)
	if out := c.Cas(0, 0, 5); !out.Linearized || !out.Resp {
		t.Fatalf("cas outcome %+v", out)
	}
	// Crash after the CAS primitive (step 8): recovery proves success.
	if out := c.Cas(1, 5, 9, detectable.CrashAtStep(8)); !out.Linearized || !out.Resp {
		t.Fatalf("cas outcome %+v", out)
	}
	if c.Value() != 9 {
		t.Fatalf("value = %d", c.Value())
	}
	rep, err := sys.Verify(detectable.KindCAS, 0)
	if err != nil || !rep.DurablyLinearizable {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
}

func TestMaxRegisterAlwaysLinearizes(t *testing.T) {
	sys := detectable.NewSystem(2)
	m := sys.NewMaxRegister()
	for step := uint64(1); step <= 2; step++ {
		if out := m.WriteMax(0, int(step)*10, detectable.CrashAtStep(step)); !out.Linearized {
			t.Fatalf("step %d: outcome %+v", step, out)
		}
	}
	if out := m.Read(1); out.Resp != 20 {
		t.Fatalf("read = %d", out.Resp)
	}
	if m.Value() != 20 {
		t.Fatalf("value = %d", m.Value())
	}
	rep, err := sys.Verify(detectable.KindMaxRegister, 0)
	if err != nil || !rep.DurablyLinearizable {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
}

func TestQueueFacade(t *testing.T) {
	sys := detectable.NewSystem(2)
	q := sys.NewQueue()
	q.Enq(0, 1)
	q.Enq(0, 2)
	if got := q.Values(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("values = %v", got)
	}
	if out := q.Deq(1); out.Resp != 1 {
		t.Fatalf("deq = %d", out.Resp)
	}
	if out := q.Deq(1); out.Resp != 2 {
		t.Fatalf("deq = %d", out.Resp)
	}
	if out := q.Deq(1); out.Resp != detectable.EmptyQueue {
		t.Fatalf("deq on empty = %d", out.Resp)
	}
	rep, err := sys.Verify(detectable.KindQueue, 0)
	if err != nil || !rep.DurablyLinearizable {
		t.Fatalf("verify: %+v err=%v", rep, err)
	}
}

func TestCounterAndFetchAdd(t *testing.T) {
	sys := detectable.NewSystem(2)
	c := sys.NewCounter()
	if got := c.Inc(0); got != 1 {
		t.Fatalf("inc = %d", got)
	}
	if got := c.Inc(1); got != 2 {
		t.Fatalf("inc = %d", got)
	}
	if got := c.Value(0); got != 2 {
		t.Fatalf("value = %d", got)
	}

	sys2 := detectable.NewSystem(1)
	f := sys2.NewFetchAdd()
	if got := f.Add(0, 5); got != 0 {
		t.Fatalf("faa = %d", got)
	}
	if got := f.Add(0, 5); got != 5 {
		t.Fatalf("faa = %d", got)
	}
}

func TestKVFacade(t *testing.T) {
	sys := detectable.NewSystem(2)
	store := sys.NewKV()
	store.PutDurable(0, "x", 4)
	if out := store.Get(1, "x"); out.Resp != 4 {
		t.Fatalf("get = %d", out.Resp)
	}
	if got := store.Keys(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestTASFacade(t *testing.T) {
	sys := detectable.NewSystem(2)
	lock := sys.NewTAS()
	if out := lock.TestAndSet(0); out.Resp != 0 {
		t.Fatalf("first tas = %d", out.Resp)
	}
	if out := lock.TestAndSet(1); out.Resp != 1 {
		t.Fatalf("second tas = %d", out.Resp)
	}
	if lock.Value() != 1 {
		t.Fatal("bit not set")
	}
	lock.Reset(0)
	if lock.Value() != 0 {
		t.Fatal("bit not cleared")
	}
}

func TestManualCrashDuringIdle(t *testing.T) {
	sys := detectable.NewSystem(1)
	reg := sys.NewRegister(3)
	sys.Crash() // idle crash: nothing in flight, state preserved
	if out := reg.Read(0); out.Resp != 3 {
		t.Fatalf("read after idle crash = %d", out.Resp)
	}
}

func TestSharedCacheModels(t *testing.T) {
	sys := detectable.NewSystemWithModel(2, detectable.SharedCacheFlushed)
	c := sys.NewCAS(0)
	c.Cas(0, 0, 5)
	sys.Crash()
	if out := c.Read(1); out.Resp != 5 {
		t.Fatalf("flushed model lost a completed CAS: read = %d", out.Resp)
	}

	raw := detectable.NewSystemWithModel(2, detectable.SharedCacheRaw)
	c2 := raw.NewCAS(0)
	c2.Cas(0, 0, 5)
	raw.Crash()
	if out := c2.Read(1); out.Resp != 0 {
		t.Fatalf("raw model persisted an unflushed CAS: read = %d", out.Resp)
	}
	rep, err := raw.Verify(detectable.KindCAS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DurablyLinearizable {
		t.Fatal("raw shared-cache history verified despite lost completed op")
	}
}

func TestPrimitivesCounter(t *testing.T) {
	sys := detectable.NewSystem(1)
	reg := sys.NewRegister(0)
	before := sys.Primitives()
	reg.Write(0, 1)
	if sys.Primitives() == before {
		t.Fatal("no primitives recorded")
	}
}

func TestHistoryRendering(t *testing.T) {
	sys := detectable.NewSystem(1)
	reg := sys.NewRegister(0)
	reg.Write(0, 1)
	if sys.HistoryLen() != 2 {
		t.Fatalf("history len = %d", sys.HistoryLen())
	}
	if sys.History() == "" {
		t.Fatal("empty history rendering")
	}
}

func TestVerifyUnknownKind(t *testing.T) {
	sys := detectable.NewSystem(1)
	if _, err := sys.Verify(detectable.ObjectKind(99), 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func Example() {
	sys := detectable.NewSystem(2)
	cas := sys.NewCAS(0)

	// A crash is injected right after the CAS primitive executes; the
	// recovery function still reports the operation's true fate.
	out := cas.Cas(0, 0, 42, detectable.CrashAtStep(8))
	fmt.Println("linearized:", out.Linearized, "response:", out.Resp, "crashes:", out.Crashes)
	fmt.Println("value:", cas.Value())
	// Output:
	// linearized: true response: true crashes: 1
	// value: 42
}
