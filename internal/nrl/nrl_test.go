package nrl

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

func TestRegisterAlwaysCompletes(t *testing.T) {
	sys := runtime.NewSystem(1)
	reg := NewRegister(sys, 0)
	if inv := reg.Write(0, 5); inv != 1 {
		t.Fatalf("crash-free write used %d invocations", inv)
	}
	if got := reg.Read(0); got != 5 {
		t.Fatalf("read = %d", got)
	}
}

// TestRegisterRetriesThroughCrashes saturates writes with crashes injected
// by a saboteur goroutine; every write must eventually land.
func TestRegisterRetriesThroughCrashes(t *testing.T) {
	sys := runtime.NewSystem(1)
	reg := NewRegister(sys, 0)

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%300 == 0 {
				sys.Crash()
			}
		}
	}()

	totalInv := 0
	const writes = 40
	for i := 1; i <= writes; i++ {
		totalInv += reg.Write(0, i)
		if got := reg.Peek(); got != i {
			t.Fatalf("write %d not landed: value %d", i, got)
		}
	}
	close(stop)
	storm.Wait()
	if totalInv < writes {
		t.Fatalf("invocations = %d < writes", totalInv)
	}
	t.Logf("%d writes used %d invocations", writes, totalInv)
}

// TestHistoryStaysLinearizable: NRL re-invocations appear as separate
// operations (failed attempts excluded); the history must still verify.
func TestHistoryStaysLinearizable(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sys := runtime.NewSystem(1)
	reg := NewRegister(sys, 0)
	for i := 1; i <= 8; i++ {
		if rng.Intn(2) == 0 {
			sys.Crash() // idle crash; exercises epoch churn
		}
		reg.Write(0, i)
		reg.Read(0)
	}
	ok, rep, err := linearize.CheckLog(spec.Register{}, sys.Log())
	if err != nil || !ok {
		t.Fatalf("history check: ok=%v err=%v", ok, err)
	}
	if rep.Failed != 0 && rep.Completed == 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestCASAlwaysCompletes(t *testing.T) {
	sys := runtime.NewSystem(1)
	c := NewCAS(sys, 0)
	res, inv := c.Cas(0, 0, 9)
	if !res || inv != 1 {
		t.Fatalf("cas = (%v, %d)", res, inv)
	}
	res, _ = c.Cas(0, 0, 5)
	if res {
		t.Fatal("stale cas succeeded")
	}
	if got := c.Read(0); got != 9 {
		t.Fatalf("read = %d", got)
	}
}

func TestCASExactlyOnceThroughCrashes(t *testing.T) {
	sys := runtime.NewSystem(1)
	c := NewCAS(sys, 0)

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%400 == 0 {
				sys.Crash()
			}
		}
	}()

	// Monotone chain 0→1→2→…: each NRL Cas(i, i+1) must succeed exactly
	// once despite crashes (a duplicated application is impossible — the
	// value would skip).
	const steps = 30
	for i := 0; i < steps; i++ {
		res, _ := c.Cas(0, i, i+1)
		if !res {
			t.Fatalf("cas(%d,%d) returned false; chain broken at %d", i, i+1, c.Peek())
		}
	}
	close(stop)
	storm.Wait()
	if got := c.Peek(); got != steps {
		t.Fatalf("value = %d, want %d", got, steps)
	}
}

func TestConcurrentNRLWritersLastValueWins(t *testing.T) {
	const procs = 3
	sys := runtime.NewSystem(procs)
	reg := NewRegister(sys, 0)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 1; i <= 10; i++ {
				reg.Write(pid, pid*100+i)
			}
		}(p)
	}
	wg.Wait()
	got := reg.Peek()
	valid := false
	for p := 0; p < procs; p++ {
		if got >= p*100+1 && got <= p*100+10 {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("final value %d was never written", got)
	}
	ok, _, err := linearize.CheckLog(spec.Register{}, sys.Log())
	if err != nil || !ok {
		t.Fatalf("history check: ok=%v err=%v", ok, err)
	}
}
