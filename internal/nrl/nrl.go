// Package nrl applies the transformation sketched in Section 6 of the
// paper: an implementation satisfying durable linearizability AND
// detectability becomes one satisfying nesting-safe recoverable
// linearizability (NRL, Attiya et al. PODC 2018) by having the recovery
// path re-invoke the operation instead of surfacing the fail verdict.
//
// Under NRL every operation eventually completes with a linearized
// response — the client never sees fail — at the price of giving up the
// client's freedom to choose whether to re-invoke (the flexibility the
// paper highlights as detectability's advantage).
package nrl

import (
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
)

// Register is an NRL read/write register over the paper's Algorithm 1:
// operations always complete with a linearized response, re-invoking
// internally when a crash left the previous attempt un-linearized.
type Register struct {
	sys   *runtime.System
	inner *rw.Register[int]
}

// NewRegister allocates an NRL register initialized to vinit.
func NewRegister(sys *runtime.System, vinit int) *Register {
	return &Register{sys: sys, inner: rw.NewInt(sys, vinit)}
}

// Write performs an always-completing write as process pid, returning the
// number of invocations used (≥ 1; > 1 means crashes forced re-invocation).
func (r *Register) Write(pid, val int) int {
	_, invocations := runtime.ExecuteNRL(r.sys, pid, func() runtime.Op[int] {
		return r.inner.WriteOp(pid, val)
	})
	return invocations
}

// Read performs an always-completing read as process pid.
func (r *Register) Read(pid int) int {
	resp, _ := runtime.ExecuteNRL(r.sys, pid, func() runtime.Op[int] {
		return r.inner.ReadOp(pid)
	})
	return resp
}

// Peek returns the register's current value without a Ctx, for tests.
func (r *Register) Peek() int { return r.inner.PeekTriple().Val }

// CAS is an NRL compare-and-swap over the paper's Algorithm 2.
//
// Note the semantic subtlety the paper's NRL discussion implies: on a fail
// verdict the operation is re-invoked, and the re-invocation evaluates the
// expected value against the CURRENT state — exactly as if the original
// invocation had been delayed past the crash. Linearizability is
// preserved because the failed attempt had no effect.
type CAS struct {
	sys   *runtime.System
	inner *rcas.CAS[int]
}

// NewCAS allocates an NRL CAS object initialized to vinit.
func NewCAS(sys *runtime.System, vinit int) *CAS {
	return &CAS{sys: sys, inner: rcas.NewInt(sys, vinit)}
}

// Cas performs an always-completing compare-and-swap as process pid,
// returning the response and the number of invocations used.
func (c *CAS) Cas(pid, old, new int) (bool, int) {
	return runtime.ExecuteNRL(c.sys, pid, func() runtime.Op[bool] {
		return c.inner.CasOp(pid, old, new)
	})
}

// Read performs an always-completing read as process pid.
func (c *CAS) Read(pid int) int {
	resp, _ := runtime.ExecuteNRL(c.sys, pid, func() runtime.Op[int] {
		return c.inner.ReadOp(pid)
	})
	return resp
}

// Peek returns the object's current value without a Ctx, for tests.
func (c *CAS) Peek() int { return c.inner.PeekPair().Val }
