package baseline

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

func checkRegDL(t *testing.T, sys *runtime.System, initVal int) {
	t.Helper()
	ok, _, err := linearize.CheckLog(spec.Register{InitVal: initVal}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
}

func checkCASDL(t *testing.T, sys *runtime.System, initVal int) {
	t.Helper()
	ok, _, err := linearize.CheckLog(spec.CAS{InitVal: initVal}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
}

func TestSeqRegisterSequential(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewSeqRegister(sys, 0, runtime.EncodeInt)
	reg.Write(0, 5)
	if out := reg.Read(1); out.Resp != 5 {
		t.Fatalf("read = %d", out.Resp)
	}
	reg.Write(1, 9)
	if out := reg.Read(0); out.Resp != 9 {
		t.Fatalf("read = %d", out.Resp)
	}
	checkRegDL(t, sys, 0)
}

func TestSeqRegisterUnboundedGrowth(t *testing.T) {
	sys := runtime.NewSystem(1)
	reg := NewSeqRegister(sys, 0, runtime.EncodeInt)
	const writes = 100
	for i := 0; i < writes; i++ {
		reg.Write(0, 7) // same value every time — yet every tag distinct
	}
	if got := reg.MaxSeq(); got != writes {
		t.Fatalf("MaxSeq = %d, want %d (the unbounded growth the paper eliminates)", got, writes)
	}
}

// TestSeqRegisterCrashEveryStep mirrors the rw test: the verdict must agree
// with whether the write reached R.
func TestSeqRegisterCrashEveryStep(t *testing.T) {
	// Body: seq load(4), seq store(5), R load(6), RD store(7), CP(8),
	// R store(9), result(10).
	for step := uint64(1); step <= 10; step++ {
		sys := runtime.NewSystem(2)
		reg := NewSeqRegister(sys, 100, runtime.EncodeInt)
		out := reg.Write(0, 5, nvm.CrashAtStep(step))
		got := reg.PeekVal()
		switch out.Status {
		case runtime.StatusOK:
			t.Fatalf("step %d: no crash fired", step)
		case runtime.StatusNotInvoked, runtime.StatusFailed:
			if got != 100 {
				t.Fatalf("step %d: verdict %v but R = %d", step, out.Status, got)
			}
		case runtime.StatusRecovered:
			if got != 5 {
				t.Fatalf("step %d: recovered but R = %d", step, got)
			}
		}
		checkRegDL(t, sys, 100)
	}
}

func TestSeqCASSequential(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewSeqCAS(sys, 0, runtime.EncodeInt)
	if out := o.Cas(0, 0, 5); !out.Resp {
		t.Fatal("cas(0,5) failed")
	}
	if out := o.Cas(1, 0, 9); out.Resp {
		t.Fatal("cas(0,9) on 5 succeeded")
	}
	if out := o.Read(1); out.Resp != 5 {
		t.Fatalf("read = %d", out.Resp)
	}
	checkCASDL(t, sys, 0)
}

func TestSeqCASCrashEveryStep(t *testing.T) {
	// Success path body: seq load(4), seq store(5), C load(6), help(7),
	// CP(8), CAS(9), result(10).
	for step := uint64(1); step <= 10; step++ {
		sys := runtime.NewSystem(2)
		o := NewSeqCAS(sys, 0, runtime.EncodeInt)
		out := o.Cas(0, 0, 5, nvm.CrashAtStep(step))
		got := o.PeekVal()
		switch out.Status {
		case runtime.StatusOK:
			t.Fatalf("step %d: no crash fired", step)
		case runtime.StatusNotInvoked, runtime.StatusFailed:
			if got != 0 {
				t.Fatalf("step %d: verdict %v but C = %d", step, out.Status, got)
			}
		case runtime.StatusRecovered:
			if !out.Resp || got != 5 {
				t.Fatalf("step %d: recovered %v, C = %d", step, out.Resp, got)
			}
		}
		checkCASDL(t, sys, 0)
	}
}

// TestSeqCASOverwrittenDetection: p's successful CAS is overwritten before
// p recovers; the help slot must still prove success.
func TestSeqCASOverwrittenDetection(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewSeqCAS(sys, 0, runtime.EncodeInt)
	p, q := 0, 1

	hook := &nvm.StepHook{
		Step: 10, // immediately after p's CAS primitive, before persisting
		Fn: func() {
			if out := o.Cas(q, 5, 9); !out.Resp {
				t.Error("q's overwrite failed")
			}
		},
	}
	out := o.Cas(p, 0, 5, nvm.Plans{hook, nvm.CrashAtStep(10)})
	if out.Status != runtime.StatusRecovered || !out.Resp {
		t.Fatalf("outcome %+v, want recovered true via help slot", out)
	}
	if got := o.PeekVal(); got != 9 {
		t.Fatalf("C = %d, want q's 9", got)
	}
	checkCASDL(t, sys, 0)
}

func TestSeqCASLostRaceFails(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewSeqCAS(sys, 0, runtime.EncodeInt)
	p, q := 0, 1
	hook := &nvm.StepHook{
		Step: 9, // before p's CAS primitive
		Fn: func() {
			o.Cas(q, 0, 9)
		},
	}
	out := o.Cas(p, 0, 5, nvm.Plans{hook, nvm.CrashAtStep(10)})
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	checkCASDL(t, sys, 0)
}

func TestSeqCASRandomSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		sys := runtime.NewSystem(1)
		o := NewSeqCAS(sys, 0, runtime.EncodeInt)
		model := 0
		for i := 0; i < 5; i++ {
			var plans []nvm.CrashPlan
			if rng.Intn(2) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(10))))
			}
			old, new := rng.Intn(3), rng.Intn(3)
			out := o.Cas(0, old, new, plans...)
			if out.Status.Linearized() {
				if out.Resp != (model == old) {
					t.Fatalf("trial %d: cas(%d,%d) on %d = %v", trial, old, new, model, out.Resp)
				}
				if out.Resp {
					model = new
				}
			}
			if got := o.PeekVal(); got != model {
				t.Fatalf("trial %d: val=%d model=%d", trial, got, model)
			}
		}
		checkCASDL(t, sys, 0)
	}
}

func TestSeqCASConcurrentStorm(t *testing.T) {
	const procs = 3
	for round := 0; round < 5; round++ {
		sys := runtime.NewSystem(procs)
		o := NewSeqCAS(sys, 0, runtime.EncodeInt)
		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%900 == 0 {
					sys.Crash()
				}
			}
		}()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*7 + pid)))
				for i := 0; i < 5; i++ {
					o.Cas(pid, rng.Intn(3), rng.Intn(3))
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkCASDL(t, sys, 0)
	}
}

func TestPlainObjects(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewPlainRegister(sys, 0)
	reg.Write(0, 4)
	if got := reg.Read(1); got != 4 {
		t.Fatalf("plain read = %d", got)
	}
	c := NewPlainCAS(sys, 0)
	if !c.Cas(0, 0, 3) {
		t.Fatal("plain cas failed")
	}
	if c.Cas(1, 0, 9) {
		t.Fatal("plain cas with stale old succeeded")
	}
	if got := c.Read(0); got != 3 {
		t.Fatalf("plain cas read = %d", got)
	}
}
