package baseline

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// SeqCAS is the unbounded-space detectable CAS object in the style of
// Ben-David et al. (SPAA 2019). C holds a tagged value ⟨val, p, seq⟩. A
// CASer that read tag ⟨r, sr⟩ records it in its help slot help[pid][r]
// before attempting the swap; if the swap succeeds, process r can later
// find the evidence that its CAS seq sr had been installed (and was then
// overwritten). Recovery for p's CAS with sequence s:
//
//   - C's tag is ⟨p, s⟩               → the CAS succeeded;
//   - some help[q][p] records s       → succeeded (and was overwritten);
//   - C unchanged across a re-check   → the CAS never took effect: fail.
//
// The help slots and tags store unbounded sequence numbers — the space cost
// the paper's Algorithm 2 removes.
type SeqCAS[V comparable] struct {
	sys *runtime.System
	n   int
	enc func(V) int

	c nvm.CASRegister[Tagged[V]]
	// help[q][r]: the seq of r's value that q was about to overwrite.
	help [][]nvm.CASRegister[uint64]
	seq  []nvm.CASRegister[uint64]

	cAnn []*runtime.Ann[bool]
	rAnn []*runtime.Ann[V]
}

// NewSeqCAS allocates the CAS object initialized to vinit. The initial
// value carries tag ⟨0, 0⟩; help slots start at a sentinel that matches no
// real sequence number (sequence numbers start at 1).
func NewSeqCAS[V comparable](sys *runtime.System, vinit V, enc func(V) int) *SeqCAS[V] {
	sp := sys.Space()
	n := sys.N()
	o := &SeqCAS[V]{
		sys: sys,
		n:   n,
		enc: enc,
		c:   nvm.NewWord(sp, Tagged[V]{Val: vinit}),
	}
	o.help = make([][]nvm.CASRegister[uint64], n)
	for q := 0; q < n; q++ {
		o.help[q] = make([]nvm.CASRegister[uint64], n)
		for r := 0; r < n; r++ {
			o.help[q][r] = nvm.NewWord(sp, uint64(0))
		}
	}
	for p := 0; p < n; p++ {
		o.seq = append(o.seq, nvm.NewWord(sp, uint64(0)))
		o.cAnn = append(o.cAnn, runtime.NewAnn[bool](sp))
		o.rAnn = append(o.rAnn, runtime.NewAnn[V](sp))
	}
	return o
}

// Cas performs a detectable Cas(old, new) as process pid.
func (o *SeqCAS[V]) Cas(pid int, old, new V, plans ...nvm.CrashPlan) runtime.Outcome[bool] {
	return runtime.Execute(o.sys, pid, o.CasOp(pid, old, new), plans...)
}

// Read performs a detectable Read() as process pid.
func (o *SeqCAS[V]) Read(pid int, plans ...nvm.CrashPlan) runtime.Outcome[V] {
	return runtime.Execute(o.sys, pid, o.ReadOp(pid), plans...)
}

// CasOp builds the recoverable Cas instance for pid.
func (o *SeqCAS[V]) CasOp(pid int, old, new V) runtime.Op[bool] {
	ann := o.cAnn[pid]
	return runtime.Op[bool]{
		Desc:     spec.NewOp(spec.MethodCAS, o.enc(old), o.enc(new)),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "cas") },
		Body: func(ctx *nvm.Ctx) bool {
			s := o.seq[pid].Load(ctx) + 1
			o.seq[pid].Store(ctx, s) // persist fresh sequence number
			cur := o.c.Load(ctx)
			if cur.Val != old {
				ann.SetResult(ctx, false)
				return false
			}
			// Help the current tag's owner detect a future overwrite.
			o.help[pid][cur.P].Store(ctx, cur.Seq)
			ann.SetCP(ctx, 1)
			res := o.c.CompareAndSwap(ctx, cur, Tagged[V]{Val: new, P: pid, Seq: s})
			ann.SetResult(ctx, res)
			return res
		},
		Recover: func(ctx *nvm.Ctx) (bool, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			if ann.GetCP(ctx) == 0 {
				return false, false
			}
			s := o.seq[pid].Load(ctx)
			for {
				before := o.c.Load(ctx)
				if before.P == pid && before.Seq == s {
					ann.SetResult(ctx, true)
					return true, true
				}
				for q := 0; q < o.n; q++ {
					if o.help[q][pid].Load(ctx) == s {
						ann.SetResult(ctx, true)
						return true, true
					}
				}
				// No evidence. If C is stable across the scan, our value is
				// neither installed nor was it ever observed: the CAS did
				// not take effect.
				if o.c.Load(ctx) == before {
					return false, false
				}
			}
		},
		Encode: runtime.EncodeBool,
	}
}

// ReadOp builds the recoverable Read instance for pid.
func (o *SeqCAS[V]) ReadOp(pid int) runtime.Op[V] {
	ann := o.rAnn[pid]
	body := func(ctx *nvm.Ctx) V {
		cur := o.c.Load(ctx)
		ann.SetResult(ctx, cur.Val)
		return cur.Val
	}
	return runtime.Op[V]{
		Desc:     spec.NewOp(spec.MethodRead),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "read") },
		Body:     body,
		Recover: func(ctx *nvm.Ctx) (V, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			return body(ctx), true
		},
		Encode: o.enc,
	}
}

// MaxSeq returns the largest sequence number issued so far (the unbounded
// space growth measure).
func (o *SeqCAS[V]) MaxSeq() uint64 {
	var best uint64
	for _, c := range o.seq {
		if v := c.Peek(); v > best {
			best = v
		}
	}
	return best
}

// PeekVal returns the object's current value without a Ctx, for tests.
func (o *SeqCAS[V]) PeekVal() V { return o.c.Peek().Val }
