// Package baseline implements the prior-work competitors the paper
// contrasts against, for the space- and time-comparison experiments:
//
//   - SeqRegister: a detectable read/write register in the style of Attiya,
//     Ben-Baruch and Hendler (PODC 2018): every written value is tagged
//     with a per-process sequence number, making all written values
//     distinct. Detectability becomes easy — "R still holds what I saw
//     before my write" proves nothing was linearized in between — but the
//     sequence numbers grow without bound, which is precisely the
//     unbounded space complexity the paper's Algorithm 1 eliminates.
//
//   - SeqCAS: a detectable CAS in the style of Ben-David, Blelloch,
//     Friedman and Wei (SPAA 2019): values are tagged ⟨val, p, seq⟩ and
//     every CASer first records the tag it is about to overwrite into a
//     per-process help slot, so the overwritten process can later learn
//     its CAS had succeeded. Again detectable, again unbounded.
//
//   - PlainRegister / PlainCAS: non-recoverable objects (one primitive per
//     operation, no announcement, no recovery), the cost floor for the
//     overhead benchmarks.
package baseline

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Tagged is a value tagged with its writer and an unbounded per-writer
// sequence number; tags make all written values distinct.
type Tagged[V comparable] struct {
	Val V
	P   int
	Seq uint64
}

// SeqRegister is the unbounded-space detectable read/write register.
type SeqRegister[V comparable] struct {
	sys *runtime.System
	enc func(V) int

	r nvm.CASRegister[Tagged[V]]
	// rd[p] persists the tag p read before writing; seq[p] is p's private
	// unbounded operation counter.
	rd  []nvm.CASRegister[Tagged[V]]
	seq []nvm.CASRegister[uint64]

	wAnn []*runtime.Ann[int]
	rAnn []*runtime.Ann[V]
}

// NewSeqRegister allocates the register initialized to vinit.
func NewSeqRegister[V comparable](sys *runtime.System, vinit V, enc func(V) int) *SeqRegister[V] {
	sp := sys.Space()
	reg := &SeqRegister[V]{
		sys: sys,
		enc: enc,
		r:   nvm.NewWord(sp, Tagged[V]{Val: vinit}),
	}
	for p := 0; p < sys.N(); p++ {
		reg.rd = append(reg.rd, nvm.NewWord(sp, Tagged[V]{}))
		reg.seq = append(reg.seq, nvm.NewWord(sp, uint64(0)))
		reg.wAnn = append(reg.wAnn, runtime.NewAnn[int](sp))
		reg.rAnn = append(reg.rAnn, runtime.NewAnn[V](sp))
	}
	return reg
}

// Write performs a detectable Write(val) as process pid.
func (reg *SeqRegister[V]) Write(pid int, val V, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(reg.sys, pid, reg.WriteOp(pid, val), plans...)
}

// Read performs a detectable Read() as process pid.
func (reg *SeqRegister[V]) Read(pid int, plans ...nvm.CrashPlan) runtime.Outcome[V] {
	return runtime.Execute(reg.sys, pid, reg.ReadOp(pid), plans...)
}

// WriteOp builds the recoverable Write instance for pid.
func (reg *SeqRegister[V]) WriteOp(pid int, val V) runtime.Op[int] {
	ann := reg.wAnn[pid]
	return runtime.Op[int]{
		Desc:     spec.NewOp(spec.MethodWrite, reg.enc(val)),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "write") },
		Body: func(ctx *nvm.Ctx) int {
			s := reg.seq[pid].Load(ctx) + 1
			reg.seq[pid].Store(ctx, s) // persist the fresh sequence number
			t := reg.r.Load(ctx)
			reg.rd[pid].Store(ctx, t) // persist what we saw
			ann.SetCP(ctx, 1)
			reg.r.Store(ctx, Tagged[V]{Val: val, P: pid, Seq: s})
			ann.SetResult(ctx, spec.Ack)
			return spec.Ack
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			if r := ann.Result(ctx); r.Set {
				return spec.Ack, true
			}
			if ann.GetCP(ctx) == 0 {
				return 0, false
			}
			// All written values are distinct, so R == saved tag certifies
			// that no write (ours included) was linearized since our read.
			if reg.r.Load(ctx) == reg.rd[pid].Load(ctx) {
				return 0, false
			}
			// Otherwise either our write is in R, or another write W'
			// replaced the saved tag — in which case we linearize
			// immediately before W' (nobody can distinguish).
			ann.SetResult(ctx, spec.Ack)
			return spec.Ack, true
		},
		Encode: runtime.EncodeInt,
	}
}

// ReadOp builds the recoverable Read instance for pid.
func (reg *SeqRegister[V]) ReadOp(pid int) runtime.Op[V] {
	ann := reg.rAnn[pid]
	body := func(ctx *nvm.Ctx) V {
		t := reg.r.Load(ctx)
		ann.SetResult(ctx, t.Val)
		return t.Val
	}
	return runtime.Op[V]{
		Desc:     spec.NewOp(spec.MethodRead),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "read") },
		Body:     body,
		Recover: func(ctx *nvm.Ctx) (V, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			return body(ctx), true
		},
		Encode: reg.enc,
	}
}

// MaxSeq returns the largest sequence number issued so far — the measure of
// the register's unbounded space growth (the register must be wide enough
// to store it).
func (reg *SeqRegister[V]) MaxSeq() uint64 {
	var best uint64
	for _, c := range reg.seq {
		if v := c.Peek(); v > best {
			best = v
		}
	}
	return best
}

// PeekVal returns the register's current value without a Ctx, for tests.
func (reg *SeqRegister[V]) PeekVal() V { return reg.r.Peek().Val }
