package baseline

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// PlainRegister is a non-recoverable read/write register: one primitive per
// operation, no announcement, no recovery. It is the cost floor for the
// overhead benchmarks (experiment E9) and the substrate for the Theorem 2
// discussion: without detectability, no auxiliary state is needed.
type PlainRegister[V comparable] struct {
	sys *runtime.System
	r   *nvm.Cell[V]
}

// NewPlainRegister allocates the register initialized to vinit.
func NewPlainRegister[V comparable](sys *runtime.System, vinit V) *PlainRegister[V] {
	return &PlainRegister[V]{sys: sys, r: nvm.NewCell(sys.Space(), vinit)}
}

// Write stores val. It is not recoverable: a crash leaves the caller with
// no way to learn whether the write took effect.
func (reg *PlainRegister[V]) Write(pid int, val V) {
	reg.r.Store(reg.sys.Space().Ctx(pid, nil), val)
}

// Read returns the current value.
func (reg *PlainRegister[V]) Read(pid int) V {
	return reg.r.Load(reg.sys.Space().Ctx(pid, nil))
}

// PlainCAS is a non-recoverable CAS object.
type PlainCAS[V comparable] struct {
	sys *runtime.System
	c   *nvm.Cell[V]
}

// NewPlainCAS allocates the object initialized to vinit.
func NewPlainCAS[V comparable](sys *runtime.System, vinit V) *PlainCAS[V] {
	return &PlainCAS[V]{sys: sys, c: nvm.NewCell(sys.Space(), vinit)}
}

// Cas atomically swaps old for new, reporting success. Not recoverable.
func (o *PlainCAS[V]) Cas(pid int, old, new V) bool {
	return o.c.CompareAndSwap(o.sys.Space().Ctx(pid, nil), old, new)
}

// Read returns the current value.
func (o *PlainCAS[V]) Read(pid int) V {
	return o.c.Load(o.sys.Space().Ctx(pid, nil))
}
