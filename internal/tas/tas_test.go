package tas

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

func checkDL(t *testing.T, sys *runtime.System) {
	t.Helper()
	ok, _, err := linearize.CheckLog(spec.TAS{}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
}

func TestTestAndSetSequential(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := New(sys)
	if out := o.TestAndSet(0); out.Resp != 0 {
		t.Fatalf("first tas = %d, want 0 (won)", out.Resp)
	}
	if out := o.TestAndSet(1); out.Resp != 1 {
		t.Fatalf("second tas = %d, want 1 (lost)", out.Resp)
	}
	if out := o.Reset(0); !out.Status.Linearized() {
		t.Fatalf("reset outcome %+v", out)
	}
	if out := o.TestAndSet(1); out.Resp != 0 {
		t.Fatalf("tas after reset = %d, want 0", out.Resp)
	}
	checkDL(t, sys)
}

func TestOnlyOneWinner(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	o := New(sys)
	var wg sync.WaitGroup
	wins := make([]int, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			if out := o.TestAndSet(pid); out.Status.Linearized() && out.Resp == 0 {
				wins[pid] = 1
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 1 {
		t.Fatalf("%d winners, want exactly 1", total)
	}
	checkDL(t, sys)
}

func TestCrashVerdicts(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := New(sys)
	// Crash before the underlying CAS primitive (step 7): fail, bit clear.
	out := o.TestAndSet(0, nvm.CrashAtStep(7))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	if o.Peek() != 0 {
		t.Fatal("bit set by failed tas")
	}
	// Crash after the CAS primitive (step 8): recovered win.
	out = o.TestAndSet(0, nvm.CrashAtStep(8))
	if out.Status != runtime.StatusRecovered || out.Resp != 0 {
		t.Fatalf("outcome %+v, want recovered win", out)
	}
	if o.Peek() != 1 {
		t.Fatal("bit not set by recovered tas")
	}
	// Reset with a crash after its CAS: recovered, bit clear.
	out = o.Reset(1, nvm.CrashAtStep(8))
	if out.Status != runtime.StatusRecovered {
		t.Fatalf("reset outcome %+v", out)
	}
	if o.Peek() != 0 {
		t.Fatal("bit still set after recovered reset")
	}
	checkDL(t, sys)
}

// TestMutexDiscipline uses TAS as a crash-prone spin lock: every winner
// resets before the next winner can take it, and the counter protected by
// the lock sees no lost updates even with crash injections.
func TestMutexDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sys := runtime.NewSystem(1)
	o := New(sys)
	shared := 0
	const rounds = 30
	for i := 0; i < rounds; i++ {
		// Acquire (retry on fail or lost).
		for {
			var plans []nvm.CrashPlan
			if rng.Intn(3) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(9))))
			}
			out := o.TestAndSet(0, plans...)
			if out.Status.Linearized() && out.Resp == 0 {
				break
			}
			if out.Status.Linearized() && out.Resp == 1 {
				t.Fatal("lock already held in single-process run")
			}
		}
		shared++
		// Release (retry on fail).
		for {
			var plans []nvm.CrashPlan
			if rng.Intn(3) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(9))))
			}
			if out := o.Reset(0, plans...); out.Status.Linearized() {
				break
			}
		}
	}
	if shared != rounds {
		t.Fatalf("critical sections = %d, want %d", shared, rounds)
	}
	if o.Peek() != 0 {
		t.Fatal("lock left held")
	}
}

func TestConcurrentStressWithStorms(t *testing.T) {
	const procs = 3
	for round := 0; round < 5; round++ {
		sys := runtime.NewSystem(procs)
		o := New(sys)
		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%1000 == 0 {
					sys.Crash()
				}
			}
		}()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*31 + pid)))
				for i := 0; i < 5; i++ {
					if rng.Intn(2) == 0 {
						o.TestAndSet(pid)
					} else {
						o.Reset(pid)
					}
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkDL(t, sys)
	}
}
