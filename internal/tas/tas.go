// Package tas implements a detectable resettable test-and-set object,
// composed from the paper's bounded-space detectable CAS (Algorithm 2).
//
// Attiya et al. proved that every lock-free detectable test-and-set built
// from non-recoverable test-and-set objects must use unbounded space — one
// of the results motivating the paper's question whether unbounded space is
// inherent. Composing over the bounded-space detectable CAS instead yields
// a bounded-space detectable TAS: the CAS's flip vector provides the
// detection, and its Θ(N) extra bits are the entire overhead.
//
// TestAndSet and Reset return detectable outcomes: a false Linearized
// verdict guarantees the operation took no effect and may be re-invoked.
package tas

import (
	"detectable/internal/nvm"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// TAS is an N-process detectable resettable test-and-set object.
type TAS struct {
	sys *runtime.System
	cas *rcas.CAS[int]
}

// New allocates a cleared TAS object in sys's memory space.
func New(sys *runtime.System) *TAS {
	return &TAS{sys: sys, cas: rcas.NewInt(sys, 0)}
}

// TestAndSet attempts to win the bit as process pid. A linearized outcome
// carries the previous bit: 0 means pid won, 1 means the bit was already
// set.
func (t *TAS) TestAndSet(pid int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(t.sys, pid, t.TestAndSetOp(pid), plans...)
}

// Reset clears the bit as process pid.
func (t *TAS) Reset(pid int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(t.sys, pid, t.ResetOp(pid), plans...)
}

// TestAndSetOp builds the recoverable TestAndSet instance for pid. It is a
// single detectable CAS(0, 1): success means the previous bit was 0 (won);
// a CAS that fails because the value differs means the bit was already 1.
func (t *TAS) TestAndSetOp(pid int) runtime.Op[int] {
	inner := t.cas.CasOp(pid, 0, 1)
	return runtime.Op[int]{
		Desc:     spec.NewOp(spec.MethodTAS),
		Announce: inner.Announce,
		Body: func(ctx *nvm.Ctx) int {
			if inner.Body(ctx) {
				return 0 // won: previous bit was 0
			}
			return 1 // lost: bit already set
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			res, ok := inner.Recover(ctx)
			if !ok {
				return 0, false
			}
			if res {
				return 0, true
			}
			return 1, true
		},
		Encode: runtime.EncodeInt,
	}
}

// ResetOp builds the recoverable Reset instance for pid: a detectable
// CAS(1, 0). A CAS that loses because the bit is already 0 still counts as
// a completed reset (the bit is clear).
func (t *TAS) ResetOp(pid int) runtime.Op[int] {
	inner := t.cas.CasOp(pid, 1, 0)
	return runtime.Op[int]{
		Desc:     spec.NewOp(spec.MethodReset),
		Announce: inner.Announce,
		Body: func(ctx *nvm.Ctx) int {
			inner.Body(ctx)
			return spec.Ack
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			if _, ok := inner.Recover(ctx); !ok {
				return 0, false
			}
			return spec.Ack, true
		},
		Encode: runtime.EncodeInt,
	}
}

// Peek returns the current bit without a Ctx, for tests.
func (t *TAS) Peek() int { return t.cas.PeekPair().Val }
