package server

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"detectable/internal/durable"
	"detectable/internal/shardkv"
)

// durableStack is one server incarnation over a data directory.
type durableStack struct {
	db    *durable.DB
	store *shardkv.Store
	srv   *Server
}

func startDurable(t *testing.T, dir, addr string) *durableStack {
	t.Helper()
	db, err := durable.Open(dir, 2, 2, Window)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	store := shardkv.New(2, 2, shardkv.Durable(db))
	srv := New(store)
	if err := srv.AttachDurable(db); err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	// The restarted process must be able to rebind the same address the
	// clients hold; retry briefly in case the previous listener's socket
	// lingers.
	var lerr error
	for i := 0; i < 50; i++ {
		if lerr = srv.Listen(addr); lerr == nil {
			return &durableStack{db: db, store: store, srv: srv}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("Listen(%s): %v", addr, lerr)
	return nil
}

// kill tears the incarnation down the way a SIGKILL would observe it: no
// session END records, no final syncs beyond what the commit path already
// forced.
func (st *durableStack) kill(t *testing.T) {
	t.Helper()
	if err := st.srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := st.db.Close(); err != nil {
		t.Fatalf("db close: %v", err)
	}
}

// rawConn is a hand-driven protocol connection, so tests control request
// IDs exactly (the client's auto-resume would hide the replay).
type rawConn struct {
	c   net.Conn
	br  *bufio.Reader
	buf []byte
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return &rawConn{c: c, br: bufio.NewReader(c)}
}

func (rc *rawConn) roundTrip(t *testing.T, req []byte) []byte {
	t.Helper()
	bw := bufio.NewWriter(rc.c)
	if err := WriteFrame(bw, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	payload, err := ReadFrameInto(rc.br, &rc.buf)
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	return append([]byte(nil), payload...)
}

// hello opens (sid 0) or resumes a session, returning sid and the resumed
// flag.
func (rc *rawConn) hello(t *testing.T, sid uint64) (uint64, bool) {
	t.Helper()
	reply := rc.roundTrip(t, EncodeHello(sid, 0))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("HELLO rejected: code %d %q", code, r.Key())
	}
	gotSID := r.U64()
	r.U32() // pid
	resumed := r.U8() == 1
	return gotSID, resumed
}

func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDurableOutcomeWindowReplayAcrossRestart is the session half of the
// durability contract: a verdict released before a whole-process restart
// is replayed byte-identically after it — without re-executing the
// operation.
func TestDurableOutcomeWindowReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)

	rc := dialRaw(t, addr)
	sid, resumed := rc.hello(t, 0)
	if resumed {
		t.Fatal("fresh session reported resumed")
	}
	put := AppendPut(nil, 1, 0, "alpha", 41)
	original := rc.roundTrip(t, put)
	if original[0] != StatusOK {
		t.Fatalf("PUT rejected: %v", original)
	}
	rc.c.Close()
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	defer st2.kill(t)
	rc2 := dialRaw(t, addr)
	gotSID, resumed := rc2.hello(t, sid)
	if gotSID != sid || !resumed {
		t.Fatalf("resume after restart: sid %d resumed=%v, want %d true", gotSID, resumed, sid)
	}
	replayed := rc2.roundTrip(t, put)
	if !bytes.Equal(replayed, original) {
		t.Fatalf("replayed verdict differs:\n  original %x\n  replayed %x", original, replayed)
	}
	// The replay must come from the durable window, not a re-execution:
	// the restarted store has run zero puts.
	if puts := st2.store.TotalStats().Puts; puts != 0 {
		t.Fatalf("restart re-executed the request: %d puts", puts)
	}

	// And the effect itself is durable: a fresh request reads it back.
	get := AppendGet(nil, 2, 0, "alpha")
	reply := rc2.roundTrip(t, get)
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("GET rejected: %d", code)
	}
	if out := r.Outcome(); !out.Status.Linearized() || out.Resp != 41 {
		t.Fatalf("GET after restart = %+v, want linearized 41", out)
	}
}

// TestLostReplyFreshExecutionAfterRestart covers the other half: when the
// process dies before the verdict was committed, the re-issued request ID
// is fresh and executes exactly once.
func TestLostReplyFreshExecutionAfterRestart(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)

	rc := dialRaw(t, addr)
	sid, _ := rc.hello(t, 0)
	rc.roundTrip(t, AppendPut(nil, 1, 0, "beta", 7))
	rc.c.Close()
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	defer st2.kill(t)
	rc2 := dialRaw(t, addr)
	if _, resumed := rc2.hello(t, sid); !resumed {
		t.Fatal("session did not resume")
	}
	// Request ID 2 was never issued: it must execute fresh.
	reply := rc2.roundTrip(t, AppendPut(nil, 2, 0, "beta", 8))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("fresh PUT rejected: %d", code)
	}
	if out := r.Outcome(); !out.Status.Linearized() {
		t.Fatalf("fresh PUT outcome %+v", out)
	}
	if got := st2.store.Peek("beta"); got != 8 {
		t.Fatalf("beta = %d, want 8", got)
	}
}

// TestGroupCommitReleasedVerdictsSurviveRestart is the epoch-release half
// of the durability contract under group commit: replies are parked until
// their epoch's fsync pair lands, so every verdict a client has actually
// seen is anchored — a restart replays each one byte-identically from the
// recovered window (no re-execution), regardless of where in an epoch the
// kill landed. Two sessions run concurrently so epochs genuinely coalesce
// outcomes from both.
func TestGroupCommitReleasedVerdictsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)
	st1.db.StartGroupCommit(500 * time.Microsecond)

	const perConn = 8
	type connState struct {
		sid     uint64
		puts    [][]byte // request frames, reusable for replay
		replies [][]byte // released verdicts
	}
	states := make([]*connState, 2)
	var wg sync.WaitGroup
	for ci := range states {
		states[ci] = &connState{}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cs := states[ci]
			rc := dialRaw(t, addr)
			defer rc.c.Close()
			cs.sid, _ = rc.hello(t, 0)
			for i := 0; i < perConn; i++ {
				key := fmt.Sprintf("gc-%d-%d", ci, i)
				put := AppendPut(nil, uint64(i+1), 0, key, ci*100+i)
				reply := rc.roundTrip(t, put)
				if reply[0] != StatusOK {
					t.Errorf("conn %d PUT %d rejected: %v", ci, i, reply)
					return
				}
				cs.puts = append(cs.puts, put)
				cs.replies = append(cs.replies, reply)
			}
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	epochs, commits := st1.db.GroupCommitStats()
	if commits != 2*perConn {
		t.Fatalf("group commit anchored %d outcomes, want %d", commits, 2*perConn)
	}
	if epochs == 0 || epochs > commits {
		t.Fatalf("epochs=%d commits=%d: not coalescing", epochs, commits)
	}
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	defer st2.kill(t)
	st2.db.StartGroupCommit(500 * time.Microsecond)
	for ci, cs := range states {
		rc := dialRaw(t, addr)
		if _, resumed := rc.hello(t, cs.sid); !resumed {
			t.Fatalf("conn %d session did not resume", ci)
		}
		for i, put := range cs.puts {
			if replayed := rc.roundTrip(t, put); !bytes.Equal(replayed, cs.replies[i]) {
				t.Fatalf("conn %d request %d: replayed verdict differs\n  original %x\n  replayed %x",
					ci, i, cs.replies[i], replayed)
			}
		}
		rc.c.Close()
	}
	// Replays came from the durable window: the restarted store ran nothing.
	if puts := st2.store.TotalStats().Puts; puts != 0 {
		t.Fatalf("restart re-executed %d puts", puts)
	}
}

// TestRestartSlotAccounting: recovered sessions hold their slots, so a
// full house of recovered sessions leaves none free, and ending one frees
// exactly one.
func TestRestartSlotAccounting(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)

	rcA := dialRaw(t, addr)
	sidA, _ := rcA.hello(t, 0)
	rcB := dialRaw(t, addr)
	rcB.hello(t, 0)
	rcA.c.Close()
	rcB.c.Close()
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	if free := st2.store.FreeSlots(); free != 0 {
		t.Fatalf("after recovering 2 sessions on 2 slots: %d free, want 0", free)
	}
	rc := dialRaw(t, addr)
	reply := rc.roundTrip(t, EncodeHello(0, 0))
	if reply[0] != ErrSlotsExhausted {
		t.Fatalf("third session admitted over a full recovered house: code %d", reply[0])
	}

	rc2 := dialRaw(t, addr)
	if _, resumed := rc2.hello(t, sidA); !resumed {
		t.Fatal("recovered session did not resume")
	}
	rc2.roundTrip(t, EncodeClose(1))
	// The CLOSE reply is flushed before the handler runs endSession; wait
	// for the slot release rather than racing it.
	deadline := time.Now().Add(2 * time.Second)
	for st2.store.FreeSlots() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("after closing one recovered session: %d free, want 1", st2.store.FreeSlots())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The END record is durable: the next restart recovers one session.
	st2.kill(t)
	st3 := startDurable(t, dir, addr)
	defer st3.kill(t)
	if n := st3.srv.Sessions(); n != 1 {
		t.Fatalf("sessions after END + restart = %d, want 1", n)
	}
}

// TestResumedPipelinedReadNotStale: only mutating verdicts are journaled,
// so a read pipelined before a mutation has no durable record while the
// durable MaxID sits above its ID. Re-issuing it after a restart must
// execute fresh, not error as stale.
func TestResumedPipelinedReadNotStale(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)

	rc := dialRaw(t, addr)
	sid, _ := rc.hello(t, 0)
	rc.roundTrip(t, AppendPut(nil, 1, 0, "gamma", 5))
	rc.roundTrip(t, AppendGet(nil, 2, 0, "gamma")) // read: not journaled
	rc.roundTrip(t, AppendPut(nil, 3, 0, "gamma", 6))
	rc.c.Close()
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	defer st2.kill(t)
	rc2 := dialRaw(t, addr)
	if _, resumed := rc2.hello(t, sid); !resumed {
		t.Fatal("session did not resume")
	}
	// Durable MaxID is 3 (the put); the read's ID 2 is uncached but within
	// the recovered window — it must re-execute, exactly-once intact.
	reply := rc2.roundTrip(t, AppendGet(nil, 2, 0, "gamma"))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("re-issued pre-crash read: code %d (%q), want OK", code, r.Key())
	}
	if out := r.Outcome(); !out.Status.Linearized() || out.Resp != 6 {
		t.Fatalf("re-issued read outcome %+v, want linearized 6 (current value)", out)
	}
	// IDs genuinely outside the window are still refused.
	reply = rc2.roundTrip(t, AppendPut(nil, 3+Window, 0, "gamma", 7)) // advance maxID
	if reply[0] != StatusOK {
		t.Fatalf("advancing put rejected: %d", reply[0])
	}
	reply = rc2.roundTrip(t, AppendGet(nil, 2, 0, "gamma"))
	if reply[0] != ErrStaleRequest {
		t.Fatalf("evicted ID: code %d, want stale", reply[0])
	}
}

// TestObserverSIDNotReissuedAfterRestart: observer sessions are not
// recoverable, but their IDs are durably burned — a restart must not hand
// a fresh session the ID a pre-crash observer still holds.
func TestObserverSIDNotReissuedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	addr := reserveAddr(t)
	st1 := startDurable(t, dir, addr)

	rcData := dialRaw(t, addr)
	dataSID, _ := rcData.hello(t, 0)
	rcObs := dialRaw(t, addr)
	obsReply := rcObs.roundTrip(t, EncodeHello(0, HelloFlagObserver))
	r := NewReader(obsReply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("observer HELLO rejected: %d", code)
	}
	obsSID := r.U64()
	if obsSID <= dataSID {
		t.Fatalf("observer sid %d not above data sid %d", obsSID, dataSID)
	}
	rcData.c.Close()
	rcObs.c.Close()
	st1.kill(t)

	st2 := startDurable(t, dir, addr)
	defer st2.kill(t)
	// The observer session itself is gone (not recoverable)...
	rc := dialRaw(t, addr)
	reply := rc.roundTrip(t, EncodeHello(obsSID, HelloFlagObserver))
	if reply[0] != ErrUnknownSession {
		t.Fatalf("observer resume after restart: code %d, want unknown-session", reply[0])
	}
	// ...and its ID is never reissued to a fresh session.
	rc2 := dialRaw(t, addr)
	freshSID, _ := rc2.hello(t, 0)
	if freshSID <= obsSID {
		t.Fatalf("fresh session got sid %d, not above the burned observer sid %d", freshSID, obsSID)
	}
}

// TestRecoveryDropsSupersededSession: when a lost END record leaves two
// recorded sessions on one pid, recovery keeps the newer (higher SID) and
// durably ends the older instead of refusing to start.
func TestRecoveryDropsSupersededSession(t *testing.T) {
	dir := t.TempDir()
	db, err := durable.Open(dir, 2, 2, Window)
	if err != nil {
		t.Fatal(err)
	}
	db.AppendHello(1, 0) // END lost before the crash
	db.AppendHello(2, 0) // pid 0 re-leased by a newer session
	db.Close()

	addr := reserveAddr(t)
	st := startDurable(t, dir, addr)
	if n := st.srv.Sessions(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1 (superseded dropped)", n)
	}
	rc := dialRaw(t, addr)
	if _, resumed := rc.hello(t, 2); !resumed {
		t.Fatal("newer session did not resume")
	}
	st.kill(t)

	// The superseded session was durably ended: it stays gone.
	db2, err := durable.Open(dir, 2, 2, Window)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ss := db2.Sessions()
	if len(ss) != 1 || ss[0].SID != 2 {
		t.Fatalf("sessions after degraded recovery = %v, want only sid 2", ss)
	}
}
