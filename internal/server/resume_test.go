package server_test

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"testing"

	"detectable/internal/client"
	"detectable/internal/runtime"
	"detectable/internal/server"
)

// rawDial opens a plain TCP connection, for driving the protocol byte by
// byte.
func rawDial(t *testing.T, addr string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	return conn, bufio.NewReader(conn)
}

// hello performs the handshake on a raw connection and returns the session
// ID.
func hello(t *testing.T, conn net.Conn, br *bufio.Reader, sid uint64) uint64 {
	t.Helper()
	if err := server.WriteFrame(conn, server.EncodeHello(sid, 0)); err != nil {
		t.Fatalf("hello write: %v", err)
	}
	payload, err := server.ReadFrame(br)
	if err != nil {
		t.Fatalf("hello read: %v", err)
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		t.Fatalf("hello rejected: %s", server.ErrName(code))
	}
	return r.U64()
}

// frameBytes renders payload as it crosses the wire: length prefix + body.
func frameBytes(payload []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(len(payload)))
	return append(b, payload...)
}

// TestResumeKillAtEveryByte is the crashsweep pattern of internal/kv lifted
// to the connection layer: the "injectable steps" of a remote PUT are the
// bytes of its request frame. For every prefix length, the connection is
// killed after exactly that many bytes; the client then reconnects,
// resumes the session and re-issues the same request ID. The resumed
// request must return a definite verdict, the store must agree with it,
// the write must have executed exactly once (never zero, never twice), and
// replaying the request ID again must return the byte-identical reply —
// the persisted original verdict.
func TestResumeKillAtEveryByte(t *testing.T) {
	payload := server.EncodePut(1, 0, "k", 9)
	frame := frameBytes(payload)

	for cut := 1; cut <= len(frame); cut++ {
		srv, store := startServer(t, 1, 2)
		addr := srv.Addr().String()

		conn1, br1 := rawDial(t, addr)
		sid := hello(t, conn1, br1, 0)
		if _, err := conn1.Write(frame[:cut]); err != nil {
			t.Fatalf("cut %d: partial write: %v", cut, err)
		}
		conn1.Close() // the crash: volatile connection state is gone

		conn2, br2 := rawDial(t, addr)
		if got := hello(t, conn2, br2, sid); got != sid {
			t.Fatalf("cut %d: resume returned session %d, want %d", cut, got, sid)
		}
		if err := server.WriteFrame(conn2, payload); err != nil {
			t.Fatalf("cut %d: re-issue: %v", cut, err)
		}
		reply, err := server.ReadFrame(br2)
		if err != nil {
			t.Fatalf("cut %d: reply: %v", cut, err)
		}
		r := server.NewReader(reply)
		if code := r.U8(); code != server.StatusOK {
			t.Fatalf("cut %d: re-issue rejected: %s", cut, server.ErrName(code))
		}
		out := r.Outcome()
		if !out.Status.Linearized() {
			// No crash plan and no storm: the only non-linearized verdicts
			// would come from a server-side crash that never happened.
			t.Fatalf("cut %d: resumed verdict %v, want linearized", cut, out.Status)
		}
		if got := store.Peek("k"); got != 9 {
			t.Fatalf("cut %d: store holds %d after linearized put, want 9", cut, got)
		}
		if puts := store.TotalStats().Puts; puts != 1 {
			t.Fatalf("cut %d: put executed %d times, want exactly once", cut, puts)
		}

		// Replaying the same request ID must return the original reply
		// verbatim, however many times it is asked for.
		for i := 0; i < 2; i++ {
			if err := server.WriteFrame(conn2, payload); err != nil {
				t.Fatalf("cut %d: replay write: %v", cut, err)
			}
			replay, err := server.ReadFrame(br2)
			if err != nil {
				t.Fatalf("cut %d: replay read: %v", cut, err)
			}
			if !bytes.Equal(replay, reply) {
				t.Fatalf("cut %d: replay %x differs from original reply %x", cut, replay, reply)
			}
		}
		if puts := store.TotalStats().Puts; puts != 1 {
			t.Fatalf("cut %d: replays re-executed the put (%d executions)", cut, puts)
		}

		conn2.Close()
		srv.Close()
	}
}

// TestResumePlanSweepWithKill combines both failure axes: the PUT carries a
// planned server-side crash at every injectable step AND the connection is
// severed after the request is sent, so the reply is lost. The client's
// transparent resume must recover the original persisted verdict, and the
// store must agree with it.
func TestResumePlanSweepWithKill(t *testing.T) {
	const oldVal, newVal = 3, 11
	const sweepLimit = 40
	sawFail, sawRecovered := false, false
	for step := uint32(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		srv, store := startServer(t, 1, 2)
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			t.Fatalf("step %d: dial: %v", step, err)
		}
		if _, err := c.Put("k", oldVal); err != nil {
			t.Fatalf("step %d: seed put: %v", step, err)
		}

		c.KillAfterNextSend()
		out, err := c.Put("k", newVal, step)
		if err != nil {
			t.Fatalf("step %d: put with kill: %v", step, err)
		}
		if c.Resumes() == 0 {
			t.Fatalf("step %d: kill did not force a session resume", step)
		}
		got := store.Peek("k")
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			sawRecovered = sawRecovered || out.Status == runtime.StatusRecovered
			if got != newVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, newVal)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if got != oldVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, oldVal)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}
		// Exactly two PUT executions ever: the seed and the killed one —
		// the resume replayed, it did not re-execute.
		if puts := store.TotalStats().Puts; puts != 2 {
			t.Fatalf("step %d: %d put executions, want 2 (seed + exactly-once kill)", step, puts)
		}
		c.Close()
		srv.Close()

		if out.Status == runtime.StatusOK {
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return
		}
	}
}

// TestStaleRequestID pins the window rule: a request ID at or below the
// session's high-water mark that is no longer cached is refused, not
// re-executed.
func TestStaleRequestID(t *testing.T) {
	srv, _ := startServer(t, 1, 1)
	conn, br := rawDial(t, srv.Addr().String())
	hello(t, conn, br, 0)

	// Jump the request ID far ahead, then ask for an evicted one.
	for _, reqID := range []uint64{1, 1 + server.Window} {
		if err := server.WriteFrame(conn, server.EncodePut(reqID, 0, "k", 1)); err != nil {
			t.Fatalf("put %d: %v", reqID, err)
		}
		if _, err := server.ReadFrame(br); err != nil {
			t.Fatalf("put %d reply: %v", reqID, err)
		}
	}
	if err := server.WriteFrame(conn, server.EncodePut(1, 0, "k", 2)); err != nil {
		t.Fatalf("stale put: %v", err)
	}
	reply, err := server.ReadFrame(br)
	if err != nil {
		t.Fatalf("stale reply: %v", err)
	}
	if code := server.NewReader(reply).U8(); code != server.ErrStaleRequest {
		t.Fatalf("stale request returned %s, want stale-request", server.ErrName(code))
	}
	conn.Close()
}
