package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"detectable/internal/runtime"
)

// Fuzz harnesses for the wire layer (wire.go): frame decoding and reply
// decoding against malformed, truncated and adversarial input. CI runs each
// briefly (-fuzz -fuzztime) on top of the committed seed corpus, and the
// seeds themselves run as ordinary unit cases on every `go test`.

// FuzzReadFrame feeds arbitrary bytes to the frame decoder and checks its
// contract: no panic, MaxFrame enforced, the returned payload aliasing the
// input's body exactly, and decode(encode(p)) == p.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 1, 0x42})
	f.Add([]byte{0, 0, 0, 5, 1, 2, 3}) // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append([]byte{0, 1, 0, 0}, make([]byte, 65536)...))
	huge := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		payload, err := ReadFrameInto(bytes.NewReader(data), &buf)
		if err != nil {
			if len(data) >= 4 {
				if n := binary.BigEndian.Uint32(data); n <= MaxFrame && uint32(len(data)-4) >= n {
					t.Fatalf("well-formed frame rejected: %v", err)
				}
			}
			return
		}
		n := binary.BigEndian.Uint32(data)
		if uint32(len(payload)) != n {
			t.Fatalf("payload length %d, header says %d", len(payload), n)
		}
		if n > MaxFrame {
			t.Fatalf("frame of %d bytes exceeds MaxFrame yet was accepted", n)
		}
		if !bytes.Equal(payload, data[4:4+int(n)]) {
			t.Fatal("payload does not match the frame body")
		}
		// Round trip: encoding the decoded payload must reproduce it, both
		// through the plain writer and the buffered hot path.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadFrame(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatal("round trip changed the payload")
		}
	})
}

// FuzzDecodeReply drives every client-side reply decode shape (single
// outcome, batched outcomes, hello, stats, error reply) over arbitrary
// payloads through the shared Reader, checking the cursor's contract: no
// panic, no read past the end without Err being set, and Rest never
// negative.
func FuzzDecodeReply(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{StatusOK})
	f.Add(appendOutcomeReply(nil, runtime.Outcome[int]{Status: runtime.StatusOK, Resp: 7}))
	f.Add(appendOutcomesReply(nil, []runtime.Outcome[int]{{Status: runtime.StatusRecovered, Resp: -1, Crashes: 2}}))
	f.Add(appendHelloOK(nil, 42, 3, true))
	f.Add(encodeErr(ErrStaleRequest, "stale"))
	f.Add([]byte{StatusOK, 0xff, 0xff}) // batched reply claiming 65535 entries
	f.Fuzz(func(t *testing.T, payload []byte) {
		check := func(r *Reader) {
			if r.Rest() < 0 {
				t.Fatalf("Rest() = %d", r.Rest())
			}
			if !r.Err && r.Rest() > len(payload) {
				t.Fatalf("cursor past the end without Err")
			}
		}
		// Single-outcome reply (client.callOutcome).
		r := NewReader(payload)
		if code := r.U8(); code != StatusOK {
			_ = ErrName(code)
			_ = r.Key() // error message
		} else {
			_ = r.Outcome()
		}
		check(r)
		// Batched reply (client.decodeOutcomes).
		r = NewReader(payload)
		if r.U8() == StatusOK {
			n := int(r.U16())
			for i := 0; i < n && !r.Err; i++ {
				_ = r.Outcome()
			}
		}
		check(r)
		// Hello reply (client.connect).
		r = NewReader(payload)
		if r.U8() == StatusOK {
			_, _, _ = r.U64(), r.U32(), r.U8()
		}
		check(r)
		// Stats reply (client.Stats).
		r = NewReader(payload)
		if r.U8() == StatusOK {
			n := int(r.U16())
			for i := 0; i < n && !r.Err; i++ {
				_ = r.Snapshot()
			}
		}
		check(r)
	})
}

// TestReadFrameIntoReuse pins the grow-only buffer contract the fuzz target
// relies on: consecutive frames reuse one buffer, larger frames grow it.
func TestReadFrameIntoReuse(t *testing.T) {
	var stream bytes.Buffer
	small := bytes.Repeat([]byte{1}, 8)
	large := bytes.Repeat([]byte{2}, 600)
	for _, p := range [][]byte{small, large, small} {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatal(err)
		}
	}
	var buf []byte
	r := io.Reader(&stream)
	for i, want := range [][]byte{small, large, small} {
		got, err := ReadFrameInto(r, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}
