package server

// Read-only (GET-only) sessions — the serving half of the read-replica
// design (docs/REPLICATION.md §read replicas).
//
// A read-only session leases no process slot and may issue only GET, MGET,
// CLOSE and the admin ops. That restriction is exactly what lets a standby
// serve it: the paper's detectability guarantees attach to mutations —
// each needs a definite, durable, exactly-once verdict — while a read
// carries no outcome window and no recovery obligation. A read answered
// from the replica's barrier-consistent applied view is bounded-stale but
// can never be a phantom (every value in the view was journaled, hence
// linearized, on the primary) and never a resurrected failed write (a
// failed mutation journals nothing).
//
// Reads are served from committed state by node role:
//
//   - standby: durable.DB.ViewGet — the applied view published whole
//     barriers at a time, so a GET observes a prefix of the primary's
//     commit order, never a mid-snapshot or mid-epoch state
//   - primary: the live store (Peek), the same visibility a sloted GET has
//
// Mutations are refused with ErrNotPrimary on a standby (the client
// rotates to the primary) and ErrObserver on a primary (the session kind,
// not the node, is what forbids them — rotating would not help).

import (
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// readKey resolves key against this node's committed state. Missing keys
// read as zero, the durable-root convention shared with kv.Store.
func (srv *Server) readKey(key string) int {
	if st := srv.standby.Load(); st != nil {
		val, _ := st.db.ViewGet(shardkv.ShardIndex(key, st.db.NumShards()), key)
		return int(val)
	}
	if store := srv.store.Load(); store != nil {
		return store.Peek(key)
	}
	return 0
}

// executeReadOnly decodes and serves one request on a read-only session.
// Called with the session lock held, after the fenced check; replies are
// recorded in the in-memory outcome window by handle like any other, so
// connection-level resume replays them verbatim.
func (srv *Server) executeReadOnly(sess *session, op byte, r *Reader, dst []byte) (reply []byte, closing, fatal bool) {
	bad := func(msg string) ([]byte, bool, bool) { return appendErr(dst, ErrBadRequest, msg), false, true }

	switch op {
	case OpGet:
		plan := r.U32()
		key := r.KeyRef()
		if r.Err || r.Rest() != 0 {
			return bad("malformed GET/DEL")
		}
		if plan != 0 {
			// Crash plans drive a shard's recovery machinery, which needs a
			// process identity; a slotless read has none.
			return appendErr(dst, ErrObserver, "crash plan on read-only session"), false, false
		}
		out := runtime.Outcome[int]{Status: runtime.StatusOK, Resp: srv.readKey(key)}
		return appendOutcomeReply(dst, out), false, false

	case OpMGet:
		n := int(r.U16())
		if n > MaxBatch {
			return bad("MGET batch too large")
		}
		keys := sess.keys[:0]
		for i := 0; i < n; i++ {
			keys = append(keys, r.KeyRef())
		}
		sess.keys = keys
		if r.Err || r.Rest() != 0 {
			return bad("malformed MGET")
		}
		dst = append(dst, StatusOK)
		dst = append(dst, byte(len(keys)>>8), byte(len(keys)))
		for _, k := range keys {
			dst = appendOutcome(dst, runtime.Outcome[int]{Status: runtime.StatusOK, Resp: srv.readKey(k)})
		}
		return dst, false, false

	case OpPut, OpDel, OpMPut:
		if srv.standby.Load() != nil {
			// Same refusal a data session would hear: the client fails over
			// to the primary and mutates there.
			return appendErr(dst, ErrNotPrimary, "standby serves reads only; mutations need the primary"), false, false
		}
		return appendErr(dst, ErrObserver, "mutation on read-only session"), false, false

	case OpClose:
		if r.Err || r.Rest() != 0 {
			return bad("malformed CLOSE")
		}
		return appendAck(dst), true, false

	default:
		// CRASH and STATS drive the store; a standby has none and a
		// read-only session has no business injecting crashes anywhere.
		return appendErr(dst, ErrObserver, "operation not allowed on read-only session"), false, false
	}
}
