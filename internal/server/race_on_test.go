//go:build race

package server

// Race instrumentation allocates on goroutine spawn and channel hand-off,
// so allocation pins that cross the store's parallel fan-out path are
// only meaningful in a plain build (where CI's benchjson gate enforces
// them).
const raceEnabled = true
