package server

import (
	"encoding/binary"
	"errors"
)

// LoopbackSession drives the server's full request path — header decode,
// classify, execute, reply encode, outcome-window record — without a
// socket. Benchmarks and allocation gates use it to measure exactly the
// per-request serving cost (cmd/benchjson pins the MPUT path at zero
// allocations per op with it); the framing layer it skips is covered by
// its own pins.
//
// The session it wraps leases a real process slot but is not registered
// with the server's session table, so it cannot be resumed or reaped;
// Close releases the slot. Not safe for concurrent use.
type LoopbackSession struct {
	srv     *Server
	sess    *session
	scratch *[]byte
	nextID  uint64
}

// NewLoopbackSession leases a process slot and returns a loopback session
// over srv. Callers must Close it.
func (srv *Server) NewLoopbackSession() (*LoopbackSession, error) {
	pid, ok := srv.store.Load().AcquireProc()
	if !ok {
		return nil, errors.New("server: every process slot is leased")
	}
	srv.mu.Lock()
	srv.nextSID++
	sid := srv.nextSID
	srv.mu.Unlock()
	sess := &session{id: sid, pid: pid, gen: 1, cache: make(map[uint64][]byte, Window+1)}
	if db := srv.db.Load(); db != nil {
		if err := db.AppendHello(sid, pid); err != nil {
			srv.store.Load().ReleaseProc(pid)
			return nil, err
		}
	}
	return &LoopbackSession{srv: srv, sess: sess, scratch: GetFrameBuf(), nextID: 1}, nil
}

// NewReadOnlyLoopbackSession returns a loopback session in read-only mode:
// slotless and GET-only, the session kind a standby serves (readonly.go).
// Works on a primary or a standby server; cmd/benchjson uses it against a
// standby to pin the replica GET path allocation-free.
func (srv *Server) NewReadOnlyLoopbackSession() (*LoopbackSession, error) {
	srv.mu.Lock()
	srv.nextSID++
	sid := srv.nextSID
	srv.mu.Unlock()
	sess := &session{id: sid, pid: -1, readOnly: true, gen: 1, cache: make(map[uint64][]byte, Window+1)}
	if db := srv.db.Load(); db != nil {
		if err := db.NoteSID(sid); err != nil {
			return nil, err
		}
	}
	return &LoopbackSession{srv: srv, sess: sess, scratch: GetFrameBuf(), nextID: 1}, nil
}

// Handle processes one request payload (opcode + reqID + body, as built by
// the Append* encoders) and returns the encoded reply. The reply aliases
// the session's scratch and is valid until the next Handle call.
func (ls *LoopbackSession) Handle(payload []byte) []byte {
	reply, _, _ := ls.srv.handle(ls.sess, payload, ls.scratch)
	return reply
}

// NextID returns a fresh strictly-increasing request ID.
func (ls *LoopbackSession) NextID() uint64 {
	id := ls.nextID
	ls.nextID++
	return id
}

// PatchReqID overwrites the request ID of an encoded request payload in
// place, so benchmark loops can reuse one encoded frame without
// re-encoding (a replayed ID would short-circuit into the window instead
// of exercising the execute path).
func PatchReqID(payload []byte, reqID uint64) {
	binary.BigEndian.PutUint64(payload[1:], reqID)
}

// PID returns the leased process slot, for benchmarks that pre-warm store
// state.
func (ls *LoopbackSession) PID() int { return ls.sess.pid }

// Close releases the session's process slot (if any) and scratch buffer.
func (ls *LoopbackSession) Close() {
	if !ls.sess.slotless() {
		ls.srv.store.Load().ReleaseProc(ls.sess.pid)
	}
	PutFrameBuf(ls.scratch)
	ls.scratch = nil
}
