package server

// End-to-end primary/backup replication at the server layer: a warm
// standby fed over the wire protocol, promotion with generation fencing,
// and the detectability contract across the failover — a session resumed
// on the promoted replica replays its outcome window byte-identically.

import (
	"bytes"
	"testing"
	"time"

	"detectable/internal/durable"
	"detectable/internal/shardkv"
)

// standbyStack is a warm standby replicating from a primary address.
type standbyStack struct {
	db  *durable.DB
	srv *Server
}

func startStandby(t *testing.T, dir, primaryAddr string) *standbyStack {
	t.Helper()
	db, err := durable.Open(dir, 2, 2, Window)
	if err != nil {
		t.Fatalf("standby durable.Open: %v", err)
	}
	srv := NewStandby(db, func() *shardkv.Store {
		return shardkv.New(2, 2, shardkv.Durable(db))
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("standby Listen: %v", err)
	}
	if err := srv.StartReplication(primaryAddr); err != nil {
		t.Fatalf("StartReplication: %v", err)
	}
	return &standbyStack{db: db, srv: srv}
}

// waitSynced blocks until the primary sees one attached, fully-acked
// subscriber (the snapshot alone advances seq to at least 1).
func waitSynced(t *testing.T, pdb *durable.DB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		seq, acked, subs := pdb.ReplStatus()
		if subs >= 1 && seq >= 1 && acked >= seq {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	seq, acked, subs := pdb.ReplStatus()
	t.Fatalf("standby never synced: seq=%d acked=%d subs=%d", seq, acked, subs)
}

// serverStats drives OP-SERVER-STATS on an open raw connection.
func serverStats(t *testing.T, rc *rawConn, reqID uint64) (role byte, gen, replays uint64) {
	t.Helper()
	reply := rc.roundTrip(t, EncodeServerStats(reqID))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("SERVER-STATS rejected: %s", ErrName(code))
	}
	role = r.U8()
	gen = r.U64()
	replays = r.U64()
	return role, gen, replays
}

func TestReplicationByteIdenticalReplayAcrossPromotion(t *testing.T) {
	addr1 := reserveAddr(t)
	st1 := startDurable(t, t.TempDir(), addr1)
	sb := startStandby(t, t.TempDir(), addr1)
	defer func() {
		sb.srv.Close()
		sb.db.Close()
	}()
	waitSynced(t, st1.db)
	addr2 := sb.srv.Addr().String()

	// A standby refuses ordinary sessions until promoted — clients must
	// fail over to the primary, never read from a stale window.
	rcS := dialRaw(t, addr2)
	if reply := rcS.roundTrip(t, EncodeHello(0, 0)); reply[0] != ErrNotPrimary {
		t.Fatalf("standby accepted a session: reply %x", reply)
	}
	rcS.c.Close()

	// An observer CAN poll the standby, and sees its role.
	rcO := dialRaw(t, addr2)
	if reply := rcO.roundTrip(t, EncodeHello(0, HelloFlagObserver)); reply[0] != StatusOK {
		t.Fatalf("observer hello on standby rejected: %x", reply)
	}
	if role, gen, _ := serverStats(t, rcO, 1); role != RoleStandby || gen != 0 {
		t.Fatalf("standby reports role=%d gen=%d, want role=%d gen=0", role, gen, RoleStandby)
	}
	rcO.c.Close()

	// Workload on the primary. Replication acks are epoch-aligned with
	// group commit: once the PUT reply is on the wire, the verdict is
	// fsynced on BOTH nodes, so an abrupt primary death afterwards loses
	// nothing.
	rc := dialRaw(t, addr1)
	sid, resumed := rc.hello(t, 0)
	if resumed {
		t.Fatal("fresh session reported resumed")
	}
	put := EncodePut(1, 0, "alpha", 41)
	original := rc.roundTrip(t, put)
	if original[0] != StatusOK {
		t.Fatalf("PUT rejected: %x", original)
	}
	rc.c.Close() // no END: the session stays live in the durable state
	st1.kill(t)  // primary is gone

	gen, err := sb.srv.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if gen != 1 {
		t.Fatalf("first promotion minted generation %d, want 1", gen)
	}
	if again, err := sb.srv.Promote(); err != nil || again != gen {
		t.Fatalf("re-promotion: gen=%d err=%v, want idempotent gen=%d", again, err, gen)
	}
	if g := sb.db.Generation(); g != gen {
		t.Fatalf("MANIFEST generation %d, want %d", g, gen)
	}

	// Resume the primary's session on the replica and re-issue the same
	// request ID: the reply must be the replicated verdict, byte for byte.
	rc2 := dialRaw(t, addr2)
	got, resumed := rc2.hello(t, sid)
	if got != sid || !resumed {
		t.Fatalf("resume on replica: sid=%d resumed=%v, want sid=%d resumed=true", got, resumed, sid)
	}
	replay := rc2.roundTrip(t, put)
	if !bytes.Equal(replay, original) {
		t.Fatalf("replayed reply %x differs from the primary's original %x", replay, original)
	}
	if n := sb.srv.RecoveredReplays(); n < 1 {
		t.Fatalf("RecoveredReplays=%d after a recovered-window replay, want >=1", n)
	}
	role, gen2, replays := serverStats(t, rc2, 2)
	if role != RolePrimary || gen2 != gen || replays < 1 {
		t.Fatalf("promoted stats role=%d gen=%d replays=%d, want role=%d gen=%d replays>=1",
			role, gen2, replays, RolePrimary, gen)
	}

	// The replicated effect is really in the promoted store.
	getReply := rc2.roundTrip(t, EncodeGet(3, 0, "alpha"))
	r := NewReader(getReply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("GET rejected: %s", ErrName(code))
	}
	if out := r.Outcome(); out.Resp != 41 {
		t.Fatalf("GET on replica returned %d, want 41", out.Resp)
	}
	rc2.c.Close()
}

// TestFencedPrimaryRefusesSessions pins the planned-failover handoff on
// the demoted node: once fenced, it must refuse to mint or resume data
// sessions with ErrNotPrimary — the retryable code that rotates a failover
// client to the promoted replica. Minting one instead would lease a slot
// and durably burn a sid the promoted node has never heard of, stranding
// the client on unknown-session when it resumes over there.
func TestFencedPrimaryRefusesSessions(t *testing.T) {
	addr := reserveAddr(t)
	st := startDurable(t, t.TempDir(), addr)
	defer st.kill(t)

	// A pre-fencing session, to prove resumes are refused too.
	rc := dialRaw(t, addr)
	sid, _ := rc.hello(t, 0)
	rc.c.Close()

	if _, err := st.srv.Promote(); err != nil { // primary → fenced
		t.Fatalf("Promote: %v", err)
	}
	sessions, durably := st.srv.Sessions(), len(st.db.Sessions())

	// A fresh HELLO must bounce with the retryable not-primary code before
	// any session state is created.
	rcN := dialRaw(t, addr)
	if reply := rcN.roundTrip(t, EncodeHello(0, 0)); reply[0] != ErrNotPrimary {
		t.Fatalf("fenced node answered a fresh HELLO with %x, want not-primary", reply)
	}
	rcN.c.Close()

	// Resuming the pre-fencing sid bounces the same way — the promoted
	// replica holds the session now.
	rcR := dialRaw(t, addr)
	if reply := rcR.roundTrip(t, EncodeHello(sid, 0)); reply[0] != ErrNotPrimary {
		t.Fatalf("fenced node answered a resume with %x, want not-primary", reply)
	}
	rcR.c.Close()

	// No slot leased, no sid durably burned by the refused HELLOs.
	if got := st.srv.Sessions(); got != sessions {
		t.Fatalf("fenced node session count moved %d → %d", sessions, got)
	}
	if got := len(st.db.Sessions()); got != durably {
		t.Fatalf("fenced node durable session count moved %d → %d", durably, got)
	}

	// Observers still work: stats and admin ops are how the fenced node is
	// inspected and drained.
	rcO := dialRaw(t, addr)
	if reply := rcO.roundTrip(t, EncodeHello(0, HelloFlagObserver)); reply[0] != StatusOK {
		t.Fatalf("observer HELLO on fenced node rejected: %x", reply)
	}
	if role, _, _ := serverStats(t, rcO, 1); role != RoleFenced {
		t.Fatalf("fenced node reports role %d, want %d", role, RoleFenced)
	}
	rcO.c.Close()
}

// TestReapThenResumeRefusedOnPromotedReplica pins the reap/resume race
// under replication: a session reaped on the primary ships its durable END
// on the same barrier discipline as everything else, so resuming it — on
// the primary or on the promoted replica — yields a clean unknown-session
// error, never a stale sid with a stale window.
func TestReapThenResumeRefusedOnPromotedReplica(t *testing.T) {
	addr1 := reserveAddr(t)
	db1, err := durable.Open(t.TempDir(), 2, 2, Window)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	store1 := shardkv.New(2, 2, shardkv.Durable(db1))
	srv1 := New(store1)
	if err := srv1.AttachDurable(db1); err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	srv1.SetIdleTimeout(50 * time.Millisecond)
	if err := srv1.Listen(addr1); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	sb := startStandby(t, t.TempDir(), addr1)
	defer func() {
		sb.srv.Close()
		sb.db.Close()
	}()
	waitSynced(t, db1)

	rc := dialRaw(t, addr1)
	sid, _ := rc.hello(t, 0)
	if reply := rc.roundTrip(t, EncodePut(1, 0, "beta", 7)); reply[0] != StatusOK {
		t.Fatalf("PUT rejected: %x", reply)
	}
	rc.c.Close() // detach; the reaper will END the session

	// Wait for the reap, then for the END to drain to the replica's
	// durable state.
	deadline := time.Now().Add(5 * time.Second)
	for srv1.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		live := false
		for _, s := range sb.db.Sessions() {
			if s.SID == sid {
				live = true
			}
		}
		if !live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicated END never reached the standby")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resume on the primary: clean refusal.
	rcA := dialRaw(t, addr1)
	if reply := rcA.roundTrip(t, EncodeHello(sid, 0)); reply[0] != ErrUnknownSession {
		t.Fatalf("reaped resume on primary: reply %x, want unknown-session", reply)
	}
	rcA.c.Close()

	srv1.Close()
	db1.Close()
	if _, err := sb.srv.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// Resume on the promoted replica: the same clean refusal — the END
	// replicated, so the sid cannot come back from the dead.
	rc2 := dialRaw(t, sb.srv.Addr().String())
	if reply := rc2.roundTrip(t, EncodeHello(sid, 0)); reply[0] != ErrUnknownSession {
		t.Fatalf("reaped resume on replica: reply %x, want unknown-session", reply)
	}
	rc2.c.Close()

	// Fresh sessions mint NEW sids: the next-sid watermark replicated too.
	rc3 := dialRaw(t, sb.srv.Addr().String())
	sid2, resumed := rc3.hello(t, 0)
	if resumed || sid2 == sid {
		t.Fatalf("fresh session on replica: sid=%d resumed=%v (old sid %d)", sid2, resumed, sid)
	}
	if sid2 < sid {
		t.Fatalf("sid watermark regressed across failover: %d after %d", sid2, sid)
	}
	rc3.c.Close()
}
