package server

import (
	"fmt"
	"testing"

	"detectable/internal/durable"
	"detectable/internal/shardkv"
	"detectable/internal/simio"
)

// TestSimBackedServerRecoveryHash runs a REAL server — TCP listener, wire
// protocol, session lease, group commit — over the simulated filesystem,
// then crash-enumerates the byte images behind every acknowledgment the
// client actually received. For each image: recovery must succeed, must be
// a pure function of the image (equal durable.StateHash across two
// recoveries), and must retain every acked put that was released before
// the crash point. This closes the gap between the storage-level sweep
// (internal/simio) and the served protocol: the ops journaled here are the
// ones the production handler path issues.
func TestSimBackedServerRecoveryHash(t *testing.T) {
	fsim := simio.New()
	db, err := durable.OpenFs(fsim, "/data", 2, 2, Window)
	if err != nil {
		t.Fatalf("durable.OpenFs(sim): %v", err)
	}
	store := shardkv.New(2, 2, shardkv.Durable(db))
	srv := New(store)
	if err := srv.AttachDurable(db); err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	addr := reserveAddr(t)
	if err := srv.Listen(addr); err != nil {
		t.Fatalf("Listen: %v", err)
	}

	// A real client: every ack records the journal length at release time —
	// an upper bound on the ops that had been issued when the client saw
	// the verdict, so requiring survival for crash points ≥ that bound is
	// sound.
	type ack struct {
		req        uint64
		key        string
		val        int64
		releasedAt int
	}
	rc := dialRaw(t, addr)
	sid, _ := rc.hello(t, 0)
	var acks []ack
	const puts = 6
	for i := 0; i < puts; i++ {
		key := fmt.Sprintf("s%d-k%d", i%2, i/2)
		req := uint64(i + 1)
		reply := rc.roundTrip(t, AppendPut(nil, req, 0, key, i+1))
		if reply[0] != StatusOK {
			t.Fatalf("PUT %d rejected: %v", i, reply)
		}
		acks = append(acks, ack{req: req, key: key, val: int64(i + 1), releasedAt: fsim.Ops()})
	}
	rc.c.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("db close: %v", err)
	}

	journal := fsim.Journal()
	t.Logf("served workload journaled %d fs ops", len(journal))
	images := 0
	for k := 0; k <= len(journal); k++ {
		simio.EnumerateImages(journal, k, simio.RecordAwareCuts, 64, func(img simio.Image) bool {
			images++
			f1 := simio.FromImage(img)
			db1, err := durable.OpenFs(f1, "/data", 2, 2, Window)
			if err != nil {
				t.Fatalf("point %d: recovery failed: %v", k, err)
			}
			h1 := db1.StateHash()
			kv := map[string]int64{}
			for s := 0; s < 2; s++ {
				db1.RangeShard(s, func(key string, val int64) { kv[key] = val })
			}
			var sess *durable.SessionState
			for _, s := range db1.Sessions() {
				if s.SID == sid {
					cp := s
					sess = &cp
				}
			}
			db1.Close()

			for _, a := range acks {
				if a.releasedAt > k {
					continue
				}
				if got, ok := kv[a.key]; !ok || got < a.val {
					t.Fatalf("point %d: acked put %s=%d lost (got %d, present %v)", k, a.key, a.val, got, ok)
				}
				if sess == nil {
					t.Fatalf("point %d: session %d lost after acked request %d", k, sid, a.req)
				}
				if a.req+uint64(Window) > sess.MaxID && len(sess.Window[a.req]) == 0 {
					t.Fatalf("point %d: acked verdict req=%d missing from recovered window", k, a.req)
				}
			}

			db2, err := durable.OpenFs(simio.FromImage(img), "/data", 2, 2, Window)
			if err != nil {
				t.Fatalf("point %d: second recovery failed: %v", k, err)
			}
			h2 := db2.StateHash()
			db2.Close()
			if h1 != h2 {
				t.Fatalf("point %d: recovery not pure: %s then %s", k, h1, h2)
			}
			return true
		})
	}
	t.Logf("recovered %d byte images, all hash-pure with acked effects intact", images)

	// Finally, an end-to-end sim restart: a second server incarnation over
	// the final disk state resumes the session and replays the last verdict
	// byte-identically.
	f2 := simio.FromImage(fsim.LiveImage())
	db2, err := durable.OpenFs(f2, "/data", 2, 2, Window)
	if err != nil {
		t.Fatalf("restart recovery: %v", err)
	}
	store2 := shardkv.New(2, 2, shardkv.Durable(db2))
	srv2 := New(store2)
	if err := srv2.AttachDurable(db2); err != nil {
		t.Fatalf("restart AttachDurable: %v", err)
	}
	if err := srv2.Listen(addr); err != nil {
		t.Fatalf("restart Listen: %v", err)
	}
	defer db2.Close()
	defer srv2.Close()
	rc2 := dialRaw(t, addr)
	if _, resumed := rc2.hello(t, sid); !resumed {
		t.Fatal("session did not resume on the sim-restarted server")
	}
	last := acks[len(acks)-1]
	reply := rc2.roundTrip(t, AppendPut(nil, last.req, 0, last.key, int(last.val)))
	if reply[0] != StatusOK {
		t.Fatalf("replayed verdict rejected: %v", reply)
	}
	if n := store2.TotalStats().Puts; n != 0 {
		t.Fatalf("sim restart re-executed %d puts; replay must come from the recovered window", n)
	}
	rc2.c.Close()
}
