package server

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"detectable/internal/shardkv"
)

// Allocation pins for the wire layer: encoding a frame into a warm
// session scratch allocates nothing, and reading frames through a
// session-owned grow-only buffer allocates nothing once the buffer has
// grown to the workload's frame size.

func TestAllocPinAppendEncoders(t *testing.T) {
	buf := make([]byte, 0, 512)
	entries := []shardkv.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}}
	keys := []string{"a", "b", "c"}
	if allocs := testing.AllocsPerRun(500, func() {
		buf = AppendPut(buf[:0], 9, 0, "pin-key", 42)
		buf = AppendGet(buf[:0], 10, 0, "pin-key")
		buf = AppendMPut(buf[:0], 11, entries)
		buf = AppendMGet(buf[:0], 12, keys)
		buf = AppendStats(buf[:0], 13)
	}); allocs != 0 {
		t.Fatalf("append encoders allocate %v/iteration, want 0", allocs)
	}
}

func TestAllocPinWriteFrameBuffered(t *testing.T) {
	bw := bufio.NewWriter(io.Discard)
	buf := make([]byte, 0, 512)
	if allocs := testing.AllocsPerRun(500, func() {
		buf = AppendPut(buf[:0], 9, 0, "pin-key", 42)
		if err := WriteFrameBuffered(bw, buf); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("encode+write+flush allocates %v/frame, want 0", allocs)
	}
}

func TestAllocPinReadFrameInto(t *testing.T) {
	frame := EncodePut(7, 0, "pin-key", 99)
	var wire bytes.Buffer
	WriteFrame(&wire, frame)
	raw := wire.Bytes()

	buf := make([]byte, 0, 64)
	r := bytes.NewReader(raw)
	if _, err := ReadFrameInto(r, &buf); err != nil { // warm the buffer
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		r.Reset(raw)
		if _, err := ReadFrameInto(r, &buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm ReadFrameInto allocates %v/frame, want 0", allocs)
	}
}

// The reply path: encoding an outcome reply into connection scratch and
// recording it into a warm session window must allocate at most the
// bookkeeping Go's map rehashing occasionally costs — pinned at ≤ 1
// amortized, 0 in the common case.
func TestAllocPinRecordRecyclesWindowEntries(t *testing.T) {
	sess := &session{cache: make(map[uint64][]byte, Window+1)}
	reply := append([]byte{StatusOK}, make([]byte, 12)...)
	reqID := uint64(0)
	// Fill the window so eviction (and recycling) is active.
	for i := 0; i < Window*2; i++ {
		reqID++
		sess.record(reqID, reply)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		reqID++
		sess.record(reqID, reply)
	}); allocs > 1 {
		t.Fatalf("steady-state record allocates %v/op, want ≤ 1", allocs)
	}
}

// The full served MPUT path — header decode, zero-copy key decode, batch
// fan-out, reply encode, window record — allocates nothing once warm. The
// warm-up loop wraps every shard's history ring (each ring slot's args
// buffer allocates on first touch) and settles the window's recycled
// entry buffers.
func TestAllocPinServedMultiPut(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the parallel fan-out path")
	}
	store := shardkv.New(8, 2)
	srv := New(store)
	ls, err := srv.NewLoopbackSession()
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	entries := make([]shardkv.KV, 64)
	for i := range entries {
		entries[i] = shardkv.KV{Key: "pin-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Val: i}
	}
	payload := AppendMPut(nil, 0, entries)

	warm := 2*shardkv.DefaultRingCapacity/len(entries)*8 + 2*Window
	for i := 0; i < warm; i++ {
		PatchReqID(payload, ls.NextID())
		if reply := ls.Handle(payload); len(reply) == 0 || reply[0] != StatusOK {
			t.Fatalf("warm-up MPUT reply %v", reply)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		PatchReqID(payload, ls.NextID())
		ls.Handle(payload)
	}); allocs != 0 {
		t.Fatalf("warm served MPUT allocates %v/op, want 0", allocs)
	}
}
