package server

import (
	"net"
	"sync"
	"time"

	"detectable/internal/shardkv"
)

// session is the server half of the paper's announcement structure lifted
// to the connection layer. A session outlives any single TCP connection:
// the dropped connection plays the role of the crash, and the retained
// outcome cache plays Ann_p — the persistent record from which a
// reconnecting client learns whether its interrupted request linearized.
type session struct {
	id       uint64
	pid      int  // leased process slot; -1 for observer and read-only sessions
	observer bool // admin-only session: no slot, no data ops
	readOnly bool // GET-only session: no slot, reads served from committed state

	// mu serializes everything below AND the execution of the session's
	// requests: a session is one process of the model, and a process runs
	// one operation at a time. Taking mu across the check-execute-record
	// sequence is what makes resumed requests exactly-once even when a
	// kicked half-dead connection races its replacement.
	mu         sync.Mutex
	conn       net.Conn          // currently attached connection, nil when detached
	gen        uint64            // bumped on every attach, so stale handlers detach as no-ops
	detachedAt time.Time         // when conn last became nil; zero while attached
	maxID      uint64            // highest request ID ever executed
	cache      map[uint64][]byte // reqID → encoded reply, the persisted-outcome window
	free       [][]byte          // evicted window entries, recycled by record
	// recovered marks the request IDs whose window entries were loaded
	// from the durable DB rather than recorded live — the entries whose
	// replay proves a verdict crossed a process boundary. record deletes
	// an ID the session re-records live; nil for sessions born in this
	// process.
	recovered map[uint64]struct{}
	// recoveredMax is the durable outcome high-water this session was
	// restored with after a whole-process restart (0 for sessions born in
	// this process). In-window IDs at or below it that have no cache entry
	// were read-only or error replies the crash discarded — the durable
	// window holds every committed mutation — so they re-execute fresh
	// rather than erroring as stale (a pipelining client may re-issue such
	// an ID on resume).
	recoveredMax uint64

	// Batch scratch, guarded by mu like everything execute touches: the
	// decoded key/entry slices and the store-level batch working set are
	// session-owned and reused across requests, so a warm session serves
	// MGET/MPUT without allocating. The decoded keys alias the connection's
	// frame buffer and never outlive the request.
	keys    []string
	entries []shardkv.KV
	batch   shardkv.BatchScratch
}

// slotless reports whether the session holds no process slot (observer and
// read-only sessions), so teardown paths know not to release one.
func (s *session) slotless() bool { return s.observer || s.readOnly }

// lookup returns the cached reply for reqID and how the ID classifies:
// replay (cached), fresh (execute it), or stale (older than the window).
type idClass int

const (
	idFresh idClass = iota
	idReplay
	idStale
)

// classify must be called with s.mu held.
func (s *session) classify(reqID uint64) (reply []byte, class idClass) {
	if reply, ok := s.cache[reqID]; ok {
		return reply, idReplay
	}
	if reqID > s.maxID {
		return nil, idFresh
	}
	if reqID+Window <= s.maxID {
		return nil, idStale
	}
	if reqID <= s.recoveredMax {
		// In-window, uncached, at or below the recovery high-water: a
		// verdict the crash discarded but never a committed mutation (those
		// are all in the durable window) — fresh execution is exactly-once.
		return nil, idFresh
	}
	return nil, idStale
}

// record copies reply into the outcome window under reqID and evicts
// entries that fell out of the window, keeping their buffers for reuse —
// a session in steady state stops allocating window entries. Must be
// called with s.mu held; reply may alias a caller-owned scratch buffer.
func (s *session) record(reqID uint64, reply []byte) {
	s.cache[reqID] = append(s.take(len(reply)), reply...)
	delete(s.recovered, reqID) // re-recorded live: no longer a recovered verdict
	if reqID > s.maxID {
		s.maxID = reqID // a resumed pre-crash read may record out of order
	}
	for id := range s.cache {
		if id+Window <= s.maxID {
			// Keep evicted buffers for reuse; the window bounds the live
			// entries, so Window spares also bound the free list.
			if len(s.free) < Window {
				s.free = append(s.free, s.cache[id][:0])
			}
			delete(s.cache, id)
		}
	}
}

// take returns a recycled entry buffer with capacity for n bytes, or a
// fresh one. Non-fitting spares stay in the list (replies of mixed sizes
// would otherwise drain it); the chosen entry is swap-removed. Must be
// called with s.mu held.
func (s *session) take(n int) []byte {
	for i := len(s.free) - 1; i >= 0; i-- {
		if cap(s.free[i]) >= n {
			buf := s.free[i]
			last := len(s.free) - 1
			s.free[i] = s.free[last]
			s.free[last] = nil
			s.free = s.free[:last]
			return buf[:0]
		}
	}
	return make([]byte, 0, n)
}
