package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"unsafe"

	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// Wire format (see docs/PROTOCOL.md for the normative spec):
//
//	frame   := u32(len(payload)) payload
//	request := opcode u64(reqID) body
//	reply   := status body
//
// All integers are big-endian. The client encodes requests and decodes
// replies with the helpers below; the server does the opposite. Keeping
// both directions in this one file is what keeps them in sync.

// MaxFrame bounds a frame payload; a longer length prefix is a protocol
// error and the connection is dropped.
const MaxFrame = 1 << 20

// Request opcodes.
const (
	OpHello byte = 0x01 // open or resume a session; first frame of every connection
	OpGet   byte = 0x02
	OpPut   byte = 0x03
	OpDel   byte = 0x04
	OpMGet  byte = 0x05
	OpMPut  byte = 0x06
	OpCrash byte = 0x07 // inject a shard crash (chaos/testing surface)
	OpStats byte = 0x08
	OpClose byte = 0x09 // end the session, releasing its process slot

	// OpPromote promotes a standby to primary (or fences an active
	// primary); reply is StatusOK + u64 generation. OpServerStats reports
	// the node's role, generation and replication marks. Both are admin
	// ops: allowed on observer sessions, on standbys and on fenced
	// primaries (see replication.go).
	OpPromote     byte = 0x0A
	OpServerStats byte = 0x0B
)

// Reply status codes. StatusOK prefixes a successful reply body; every
// other value is an error reply whose body is a u16-length message.
const (
	StatusOK          byte = 0x00
	ErrBadRequest     byte = 0x01 // malformed frame or field (connection-fatal)
	ErrUnknownSession byte = 0x02 // HELLO named a session the server does not hold
	ErrStaleRequest   byte = 0x03 // reqID older than the session's outcome window
	ErrSlotsExhausted byte = 0x04 // every process slot is leased
	ErrObserver       byte = 0x05 // data operation on an observer session
	ErrNotPrimary     byte = 0x06 // node is a standby or a fenced ex-primary; redial another address
)

// HelloFlagObserver requests a session without a process slot: it may only
// issue CRASH/STATS/CLOSE/PROMOTE/SERVER-STATS. Storm drivers and stats
// pollers use it so they do not occupy one of the store's N process
// identities.
const HelloFlagObserver byte = 0x01

// HelloFlagReplica turns the connection into a replication stream: the
// server replies with a HELLO-OK and then streams durable.Repl* messages
// (docs/REPLICATION.md) instead of serving requests; the peer sends only
// durable.ReplAck frames back.
const HelloFlagReplica byte = 0x02

// HelloFlagReadOnly requests a GET-only session without a process slot: it
// may issue GET/MGET (answered from committed state — on a standby, the
// replica's barrier-consistent applied view), plus CLOSE/PROMOTE/
// SERVER-STATS. Unlike every other session kind it is admitted on a
// standby, which is what turns the warm replica into a read replica:
// reads carry no outcome window, so the paper's detectability guarantees
// are untouched by serving them from a bounded-stale copy
// (docs/REPLICATION.md §read replicas). Mutations are refused —
// ErrNotPrimary on a standby, ErrObserver on a primary.
const HelloFlagReadOnly byte = 0x04

// CrashAllShards as the shard field of OpCrash storms every shard.
const CrashAllShards = ^uint32(0)

// MaxBatch bounds MGET/MPUT entry counts; MaxKey bounds key bytes (the
// u16 length prefix). The client validates both before encoding, the
// server when decoding.
const (
	MaxBatch = 4096
	MaxKey   = 1<<16 - 1
)

// Window is how many completed request outcomes a session retains for
// replay. A client may have at most Window requests outstanding
// (pipelining); a resumed request older than the window is ErrStaleRequest.
const Window = 32

// framePool recycles frame scratch buffers across connections and
// sessions: each connection handler (and each client) checks one out for
// its lifetime, encodes every outgoing frame into it, and returns it when
// the connection ends — so steady-state framing allocates nothing.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetFrameBuf checks a scratch buffer out of the shared frame pool.
func GetFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

// PutFrameBuf returns a scratch buffer to the shared frame pool.
func PutFrameBuf(b *[]byte) {
	*b = (*b)[:0]
	framePool.Put(b)
}

// WriteFrame writes one length-prefixed frame. The hot paths (server
// handler, client call loop) write through WriteFrameBuffered instead:
// passing a stack header array through the io.Writer interface makes it
// escape and allocate per frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if bw, ok := w.(*bufio.Writer); ok {
		return WriteFrameBuffered(bw, payload)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteFrameBuffered writes one length-prefixed frame into bw without
// allocating: the header bytes go through WriteByte (no slice crosses an
// interface boundary), and header + payload coalesce with neighboring
// frames into a single Write of the underlying connection at the next
// Flush.
func WriteFrameBuffered(bw *bufio.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(payload))
	}
	n := uint32(len(payload))
	bw.WriteByte(byte(n >> 24))
	bw.WriteByte(byte(n >> 16))
	bw.WriteByte(byte(n >> 8))
	if err := bw.WriteByte(byte(n)); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into a fresh buffer.
func ReadFrame(r io.Reader) ([]byte, error) {
	var buf []byte
	return ReadFrameInto(r, &buf)
}

// ReadFrameInto reads one length-prefixed frame into *buf, growing it only
// when the frame exceeds its capacity — the session-owned, grow-only read
// buffer of the hot path. The header is staged in the same buffer (a
// stack array would escape through the io.Reader interface and allocate
// per frame). The returned payload aliases *buf and is valid until the
// next ReadFrameInto with the same buffer.
func ReadFrameInto(r io.Reader, buf *[]byte) ([]byte, error) {
	if cap(*buf) < 4 {
		*buf = make([]byte, 0, 512)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	payload := (*buf)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// appendKey appends a u16-length-prefixed key.
func appendKey(b []byte, key string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(key)))
	return append(b, key...)
}

// The Append* request encoders append one encoded request to dst and
// return the extended slice; callers on the hot path (internal/client)
// reuse one per-session scratch buffer so encoding allocates nothing. The
// Encode* forms allocate a fresh slice, for tests and one-shot tooling.

// AppendHello appends a session-open (session 0) or session-resume request.
func AppendHello(dst []byte, session uint64, flags byte) []byte {
	dst = append(dst, OpHello)
	dst = binary.BigEndian.AppendUint64(dst, session)
	return append(dst, flags)
}

// EncodeHello encodes a session-open (session 0) or session-resume request.
func EncodeHello(session uint64, flags byte) []byte {
	return AppendHello(nil, session, flags)
}

// AppendGet appends a single-key read; plan > 0 injects a server-side
// planned crash before that primitive step.
func AppendGet(dst []byte, reqID uint64, plan uint32, key string) []byte {
	return appendKeyed(dst, OpGet, reqID, plan, key)
}

// EncodeGet encodes a single-key read.
func EncodeGet(reqID uint64, plan uint32, key string) []byte {
	return AppendGet(nil, reqID, plan, key)
}

// AppendDel appends a single-key delete.
func AppendDel(dst []byte, reqID uint64, plan uint32, key string) []byte {
	return appendKeyed(dst, OpDel, reqID, plan, key)
}

// EncodeDel encodes a single-key delete.
func EncodeDel(reqID uint64, plan uint32, key string) []byte {
	return AppendDel(nil, reqID, plan, key)
}

func appendKeyed(dst []byte, op byte, reqID uint64, plan uint32, key string) []byte {
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	dst = binary.BigEndian.AppendUint32(dst, plan)
	return appendKey(dst, key)
}

// AppendPut appends a single-key write.
func AppendPut(dst []byte, reqID uint64, plan uint32, key string, val int) []byte {
	dst = appendKeyed(dst, OpPut, reqID, plan, key)
	return binary.BigEndian.AppendUint64(dst, uint64(int64(val)))
}

// EncodePut encodes a single-key write.
func EncodePut(reqID uint64, plan uint32, key string, val int) []byte {
	return AppendPut(nil, reqID, plan, key, val)
}

// AppendMGet appends a batched read.
func AppendMGet(dst []byte, reqID uint64, keys []string) []byte {
	dst = append(dst, OpMGet)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(keys)))
	for _, k := range keys {
		dst = appendKey(dst, k)
	}
	return dst
}

// EncodeMGet encodes a batched read.
func EncodeMGet(reqID uint64, keys []string) []byte {
	return AppendMGet(nil, reqID, keys)
}

// AppendMPut appends a batched write.
func AppendMPut(dst []byte, reqID uint64, entries []shardkv.KV) []byte {
	dst = append(dst, OpMPut)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(entries)))
	for _, e := range entries {
		dst = appendKey(dst, e.Key)
		dst = binary.BigEndian.AppendUint64(dst, uint64(int64(e.Val)))
	}
	return dst
}

// EncodeMPut encodes a batched write.
func EncodeMPut(reqID uint64, entries []shardkv.KV) []byte {
	return AppendMPut(nil, reqID, entries)
}

// AppendCrash appends a shard-crash injection (CrashAllShards = storm all).
func AppendCrash(dst []byte, reqID uint64, shard uint32) []byte {
	dst = append(dst, OpCrash)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	return binary.BigEndian.AppendUint32(dst, shard)
}

// EncodeCrash encodes a shard-crash injection.
func EncodeCrash(reqID uint64, shard uint32) []byte {
	return AppendCrash(nil, reqID, shard)
}

// AppendStats appends a per-shard stats request.
func AppendStats(dst []byte, reqID uint64) []byte {
	dst = append(dst, OpStats)
	return binary.BigEndian.AppendUint64(dst, reqID)
}

// EncodeStats encodes a per-shard stats request.
func EncodeStats(reqID uint64) []byte { return AppendStats(nil, reqID) }

// AppendClose appends a session-close request.
func AppendClose(dst []byte, reqID uint64) []byte {
	dst = append(dst, OpClose)
	return binary.BigEndian.AppendUint64(dst, reqID)
}

// EncodeClose encodes a session-close request.
func EncodeClose(reqID uint64) []byte { return AppendClose(nil, reqID) }

// AppendPromote appends a promotion request.
func AppendPromote(dst []byte, reqID uint64) []byte {
	dst = append(dst, OpPromote)
	return binary.BigEndian.AppendUint64(dst, reqID)
}

// EncodePromote encodes a promotion request.
func EncodePromote(reqID uint64) []byte { return AppendPromote(nil, reqID) }

// AppendServerStats appends a node-status request.
func AppendServerStats(dst []byte, reqID uint64) []byte {
	dst = append(dst, OpServerStats)
	return binary.BigEndian.AppendUint64(dst, reqID)
}

// EncodeServerStats encodes a node-status request.
func EncodeServerStats(reqID uint64) []byte { return AppendServerStats(nil, reqID) }

// appendErr appends an error reply.
func appendErr(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(msg)))
	return append(dst, msg...)
}

// encodeErr encodes an error reply into a fresh slice (cold paths only).
func encodeErr(code byte, msg string) []byte {
	return appendErr(nil, code, msg)
}

// appendHelloOK appends a successful HELLO reply: the session ID, the
// leased pid (observer sessions report pid -1) and whether the session was
// resumed rather than created.
func appendHelloOK(dst []byte, session uint64, pid int, resumed bool) []byte {
	dst = append(dst, StatusOK)
	dst = binary.BigEndian.AppendUint64(dst, session)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(pid)))
	if resumed {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// appendOutcome appends one detectable outcome: verdict byte (the
// runtime.Status value), response value, crash-interruption count.
func appendOutcome(b []byte, out runtime.Outcome[int]) []byte {
	b = append(b, byte(out.Status))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(out.Resp)))
	return binary.BigEndian.AppendUint32(b, uint32(out.Crashes))
}

// appendOutcomeReply appends a single-operation success reply.
func appendOutcomeReply(dst []byte, out runtime.Outcome[int]) []byte {
	return appendOutcome(append(dst, StatusOK), out)
}

// appendOutcomesReply appends a batched success reply, aligned with the
// request.
func appendOutcomesReply(dst []byte, outs []runtime.Outcome[int]) []byte {
	dst = append(dst, StatusOK)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(outs)))
	for _, o := range outs {
		dst = appendOutcome(dst, o)
	}
	return dst
}

// appendAck appends a body-less success reply (CRASH, CLOSE).
func appendAck(dst []byte) []byte { return append(dst, StatusOK) }

// appendStatsReply appends one snapshot per shard.
func appendStatsReply(dst []byte, snaps []shardkv.StatsSnapshot) []byte {
	dst = append(dst, StatusOK)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(snaps)))
	for _, s := range snaps {
		for _, v := range [...]uint64{
			s.Gets, s.Puts, s.Dels,
			s.OK, s.Recovered, s.Failed, s.NotInvoked,
			s.CrashesSeen, s.CrashesInjected, s.Retries,
		} {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// Reader is a cursor over a frame payload. Reads past the end set Err and
// return zero values, so decode sequences check the error once at the end.
type Reader struct {
	b   []byte
	off int
	Err bool
}

// NewReader wraps payload.
func NewReader(payload []byte) *Reader { return &Reader{b: payload} }

// Rest reports how many bytes remain unread.
func (r *Reader) Rest() int { return len(r.b) - r.off }

func (r *Reader) take(n int) []byte {
	if r.off+n > len(r.b) {
		r.Err = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// U8 reads one byte.
func (r *Reader) U8() byte {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint16(v)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint32(v)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// I64 reads a big-endian two's-complement int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Key reads a u16-length-prefixed key.
func (r *Reader) Key() string {
	n := int(r.U16())
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}

// KeyRef reads a u16-length-prefixed key without copying: the returned
// string aliases the frame payload and is valid only until the buffer the
// frame was read into is reused (the next ReadFrameInto on the same
// connection). The server's execute path uses it so the steady-state data
// path allocates no key strings; every layer that retains a key past the
// call (internal/kv's register map, internal/durable's shard mirror)
// clones it at its own retention point.
func (r *Reader) KeyRef() string {
	n := int(r.U16())
	v := r.take(n)
	if len(v) == 0 {
		return ""
	}
	return unsafe.String(&v[0], len(v))
}

// Outcome reads one encoded detectable outcome.
func (r *Reader) Outcome() runtime.Outcome[int] {
	st := runtime.Status(r.U8())
	val := int(r.I64())
	crashes := int(r.U32())
	return runtime.Outcome[int]{Status: st, Resp: val, Crashes: crashes}
}

// Snapshot reads one encoded shard stats snapshot.
func (r *Reader) Snapshot() shardkv.StatsSnapshot {
	return shardkv.StatsSnapshot{
		Gets: r.U64(), Puts: r.U64(), Dels: r.U64(),
		OK: r.U64(), Recovered: r.U64(), Failed: r.U64(), NotInvoked: r.U64(),
		CrashesSeen: r.U64(), CrashesInjected: r.U64(), Retries: r.U64(),
	}
}

// ErrName names a wire error code for diagnostics.
func ErrName(code byte) string {
	switch code {
	case ErrBadRequest:
		return "bad-request"
	case ErrUnknownSession:
		return "unknown-session"
	case ErrStaleRequest:
		return "stale-request"
	case ErrSlotsExhausted:
		return "slots-exhausted"
	case ErrObserver:
		return "observer-session"
	case ErrNotPrimary:
		return "not-primary"
	default:
		return fmt.Sprintf("error-0x%02x", code)
	}
}
