package server

// Primary/backup replication endpoint and standby lifecycle
// (docs/REPLICATION.md).
//
// A replica connects like any client but sets HelloFlagReplica: after the
// HELLO-OK the connection becomes a replication stream — the server writes
// durable.Repl* messages as length-prefixed wire frames and reads only
// durable.ReplAck frames back. The subscription is synchronous: every
// commit on the primary waits for the replica's barrier ack before its
// verdict is released, so group commit and replication share one fsync
// boundary.
//
// A standby (NewStandby) owns a warm durable.DB it feeds from the
// primary's stream and serves no data sessions until Promote: promotion
// durably advances the fencing generation in the standby's MANIFEST,
// builds the store from the recovered mirrors, and recovers every
// replicated session — a client that resumes its session here replays its
// outcome window byte-identically. An active primary asked to Promote
// instead fences itself: it stops serving data and answers ErrNotPrimary,
// and its lower generation means no promoted replica will ever accept its
// stream again.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"detectable/internal/durable"
	"detectable/internal/shardkv"
)

// Node roles reported by OpServerStats.
const (
	RolePrimary byte = 0
	RoleStandby byte = 1
	RoleFenced  byte = 2
)

// standbySIDBase offsets observer session IDs issued while in standby so
// they can never collide with the data-session IDs recovered from the
// replicated sessions log at promotion.
const standbySIDBase = uint64(1) << 63

// replicaDialTimeout bounds the standby's dial + handshake with the
// primary; replicaRetryMin/Max bound its reconnect backoff.
const (
	replicaDialTimeout = 3 * time.Second
	replicaRetryMin    = 100 * time.Millisecond
	replicaRetryMax    = 2 * time.Second
)

// standbyState is the replication side of a not-yet-promoted standby.
type standbyState struct {
	db       *durable.DB
	newStore func() *shardkv.Store

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // live connection to the primary, closed to interrupt

	promoted    chan struct{}
	promoteOnce sync.Once
	promoteErr  error
	promoteGen  uint64

	barriers uint64 // barriers applied (diagnostics; guarded by mu)
	resyncs  uint64 // snapshots received (initial sync + every reconnect)
}

// NewStandby returns a warm-standby server over db: it serves only
// observer sessions (stats, promotion) until Promote, and feeds db from a
// primary via StartReplication. newStore must build the serving store over
// db's recovered state (shardkv.New with shardkv.Durable(db)); it runs at
// promotion time.
func NewStandby(db *durable.DB, newStore func() *shardkv.Store) *Server {
	srv := &Server{
		sessions: make(map[uint64]*session),
		idleTTL:  DefaultIdleTimeout,
		stop:     make(chan struct{}),
		nextSID:  standbySIDBase,
	}
	srv.standby.Store(&standbyState{
		db:       db,
		newStore: newStore,
		stopc:    make(chan struct{}),
		promoted: make(chan struct{}),
	})
	return srv
}

// Promoted returns a channel closed when the standby has been promoted to
// primary (never closed for a server born primary).
func (srv *Server) Promoted() <-chan struct{} {
	if st := srv.standby.Load(); st != nil {
		return st.promoted
	}
	if st := srv.promotedFrom(); st != nil {
		return st.promoted
	}
	return make(chan struct{})
}

// promotedFrom returns the standbyState this server was promoted out of,
// or nil. The pointer is parked under srv.mu after promotion so a
// re-issued PROMOTE stays idempotent instead of fencing the new primary.
func (srv *Server) promotedFrom() *standbyState {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.wasStandby
}

// Promote turns a standby into the serving primary, or fences a server
// that is already primary.
//
// Standby: replication stops, the fencing generation advances durably in
// the MANIFEST (so the old primary's stream — still at the lower
// generation — is refused forever), the store is built over the recovered
// mirrors and every replicated session is recovered with its outcome
// window. Idempotent: a re-issued PROMOTE returns the same generation.
//
// Primary: the node fences itself — data ops answer ErrNotPrimary from
// now on — and returns its current generation. This is the "old primary"
// half of a planned failover.
func (srv *Server) Promote() (uint64, error) {
	st := srv.standby.Load()
	if st == nil {
		if prev := srv.promotedFrom(); prev != nil {
			// Already promoted by an earlier (possibly retransmitted)
			// PROMOTE: acknowledge it rather than fencing ourselves.
			return prev.promoteGen, prev.promoteErr
		}
		srv.fenced.Store(true)
		if db := srv.db.Load(); db != nil {
			return db.Generation(), nil
		}
		return 0, nil
	}
	st.promoteOnce.Do(func() {
		st.promoteGen, st.promoteErr = srv.promoteStandby(st)
		if st.promoteErr == nil {
			close(st.promoted)
		}
	})
	return st.promoteGen, st.promoteErr
}

// promoteStandby does the actual standby→primary transition.
func (srv *Server) promoteStandby(st *standbyState) (uint64, error) {
	st.stopReplication()
	db := st.db
	gen := db.Generation() + 1
	if err := db.SetGeneration(gen); err != nil {
		return 0, fmt.Errorf("server: fencing generation: %w", err)
	}
	// The store restores from db's live mirrors (shardkv.Durable ranges
	// them), exactly as a restart would from disk — the recovery path the
	// simio sweeps model-check.
	store := st.newStore()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	// Replicated data sids sit far below standbySIDBase; nextSID stays at
	// the observer range's high-water, so every future sid — data or
	// observer — is unique against both populations.
	if next := db.NextSID(); next > srv.nextSID {
		srv.nextSID = next
	}
	if err := srv.recoverSessionsLocked(db, store); err != nil {
		return 0, err
	}
	srv.store.Store(store)
	srv.db.Store(db)
	srv.wasStandby = st
	srv.standby.Store(nil)
	return gen, nil
}

// stopReplication tears the replica loop down: no more records apply
// after it returns. Idempotent; Close and Promote both call it.
func (st *standbyState) stopReplication() {
	st.stopOnce.Do(func() { close(st.stopc) })
	st.mu.Lock()
	if st.conn != nil {
		st.conn.Close()
	}
	st.mu.Unlock()
	st.wg.Wait()
}

// StartReplication starts the standby's replication loop against the
// primary at addr: connect with HelloFlagReplica, apply the stream, ack
// every barrier, reconnect with backoff on any error (each reconnect
// re-syncs via the primary's snapshot — applies are idempotent, so the
// overlap converges). The loop stops at Promote/Close, or permanently if
// the primary turns out to be stale (lower generation than this replica).
func (srv *Server) StartReplication(addr string) error {
	st := srv.standby.Load()
	if st == nil {
		return errors.New("server: StartReplication on a non-standby server")
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		backoff := replicaRetryMin
		for {
			select {
			case <-st.stopc:
				return
			default:
			}
			err := st.replicateOnce(addr)
			if errors.Is(err, durable.ErrStalePrimary) {
				// The primary is fenced relative to us: its stream must
				// never apply. Stop rather than retry into it forever.
				return
			}
			select {
			case <-st.stopc:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > replicaRetryMax {
				backoff = replicaRetryMax
			}
		}
	}()
	return nil
}

// replicateOnce runs one replication connection to completion: dial,
// replica HELLO, then apply stream messages and ack barriers until the
// connection or the stream fails.
func (st *standbyState) replicateOnce(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, replicaDialTimeout)
	if err != nil {
		return err
	}
	st.mu.Lock()
	select {
	case <-st.stopc:
		st.mu.Unlock()
		conn.Close()
		return errors.New("server: replication stopped")
	default:
	}
	st.conn = conn
	st.mu.Unlock()
	defer func() {
		st.mu.Lock()
		if st.conn == conn {
			st.conn = nil
		}
		st.mu.Unlock()
		conn.Close()
	}()

	conn.SetDeadline(time.Now().Add(replicaDialTimeout))
	if err := WriteFrame(conn, EncodeHello(0, HelloFlagReplica)); err != nil {
		return err
	}
	reply, err := ReadFrame(conn)
	if err != nil {
		return err
	}
	if len(reply) < 1 || reply[0] != StatusOK {
		code := ErrBadRequest
		if len(reply) > 0 {
			code = reply[0]
		}
		return fmt.Errorf("server: replica HELLO refused: %s", ErrName(code))
	}
	conn.SetDeadline(time.Time{})

	rep := st.db.NewReplica()
	st.mu.Lock()
	st.resyncs++
	st.mu.Unlock()
	var readBuf, ackBuf []byte
	for {
		msg, err := ReadFrameInto(conn, &readBuf)
		if err != nil {
			return err
		}
		seq, barrier, err := rep.Apply(msg)
		if err != nil {
			return err
		}
		if !barrier {
			continue
		}
		st.mu.Lock()
		st.barriers++
		st.mu.Unlock()
		// The ack is sent only after Apply returned — i.e. after the
		// barrier's records are fsynced on our disk. That is the
		// epoch-aligned ack rule: the primary releases the epoch's
		// verdicts knowing they are durable on both nodes.
		ackBuf = durable.AppendReplAck(ackBuf[:0], seq)
		if err := WriteFrame(conn, ackBuf); err != nil {
			return err
		}
	}
}

// serveReplication turns an accepted connection into a replication
// stream. Runs on the connection's handler goroutine; returns when the
// stream or the peer dies.
func (srv *Server) serveReplication(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	db := srv.db.Load()
	if db == nil || srv.standby.Load() != nil || srv.fenced.Load() {
		WriteFrame(bw, encodeErr(ErrNotPrimary, "replication needs a serving durable primary"))
		bw.Flush()
		return
	}
	if err := WriteFrame(bw, appendHelloOK(nil, 0, -1, false)); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	sub := db.Subscribe(0, true)
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		sub.Close()
		return
	}
	if srv.replStreams == nil {
		srv.replStreams = make(map[*durable.ReplSub]net.Conn)
	}
	srv.replStreams[sub] = conn
	srv.mu.Unlock()
	srv.replicas.Add(1)
	defer func() {
		srv.replicas.Add(-1)
		sub.Close()
		srv.mu.Lock()
		delete(srv.replStreams, sub)
		srv.mu.Unlock()
	}()

	// Ack reader: the only frames the replica sends are barrier acks.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf []byte
		for {
			payload, err := ReadFrameInto(br, &buf)
			if err != nil {
				sub.Close()
				return
			}
			seq, ok := durable.ParseReplAck(payload)
			if !ok {
				sub.Close()
				return
			}
			sub.Ack(seq)
		}
	}()

	// Writer: drain the subscription onto the wire. Chunks are whole
	// framed messages, written raw — bypassing bw so a chunk is one
	// syscall and never lingers unflushed while commits wait for acks.
	for {
		chunk, err := sub.Next()
		if err != nil {
			break
		}
		if _, err := conn.Write(chunk); err != nil {
			break
		}
	}
	conn.Close() // unblock the ack reader
	<-done
}

// appendServerStatsReply appends the node-status reply: role, fencing
// generation, recovered-window replays served, the replication barrier
// high-water and min-acked sequences, the attached replica count, and the
// applied mark — on a standby, the primary-stream barrier its read view
// has applied through (the replica's side of the replication-lag bound:
// lag = primary's seq − replica's applied, comparable when the two report
// the same generation); on a primary, its own seq (applied ≡ committed).
// Reads only atomics — safe under any lock.
func (srv *Server) appendServerStatsReply(dst []byte) []byte {
	role := RolePrimary
	var gen, seq, acked, applied uint64
	if st := srv.standby.Load(); st != nil {
		role = RoleStandby
		gen = st.db.Generation()
		seq, acked, _ = st.db.ReplStatus()
		applied = st.db.ViewSeq()
	} else {
		if srv.fenced.Load() {
			role = RoleFenced
		}
		if db := srv.db.Load(); db != nil {
			gen = db.Generation()
			seq, acked, _ = db.ReplStatus()
			applied = seq
		}
	}
	dst = append(dst, StatusOK, role)
	for _, v := range [...]uint64{gen, srv.recoveredReplays.Load(), seq, acked, uint64(srv.replicas.Load()), applied} {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// StopReplication halts a standby's replication loop without promoting it:
// the read view freezes at its current applied mark while the primary's
// committed mark keeps advancing — the deliberately-lagging replica the
// MaxLag fallback tests need. Idempotent; a later Promote still works. No
// effect on a server born (or already promoted to) primary.
func (srv *Server) StopReplication() {
	if st := srv.standby.Load(); st != nil {
		st.stopReplication()
	}
}
