package server_test

import (
	"testing"
	"time"

	"detectable/internal/client"
	"detectable/internal/runtime"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

// startServer returns a listening server over a fresh store and a cleanup.
func startServer(t *testing.T, shards, procs int) (*server.Server, *shardkv.Store) {
	t.Helper()
	store := shardkv.New(shards, procs)
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store
}

func TestBasicOpsOverWire(t *testing.T) {
	srv, store := startServer(t, 4, 2)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if c.PID() < 0 {
		t.Fatalf("worker session got observer pid %d", c.PID())
	}

	out, err := c.Put("alpha", 7)
	if err != nil || out.Status != runtime.StatusOK {
		t.Fatalf("put: %v %+v", err, out)
	}
	out, err = c.Get("alpha")
	if err != nil || out.Resp != 7 {
		t.Fatalf("get: %v %+v", err, out)
	}
	if got := store.Peek("alpha"); got != 7 {
		t.Fatalf("store behind the wire holds %d, want 7", got)
	}
	out, err = c.Del("alpha")
	if err != nil || !out.Status.Linearized() {
		t.Fatalf("del: %v %+v", err, out)
	}
	if out, err = c.Get("alpha"); err != nil || out.Resp != 0 {
		t.Fatalf("get after del: %v %+v", err, out)
	}

	entries := []shardkv.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}, {Key: "c", Val: 3}}
	outs, err := c.MultiPut(entries)
	if err != nil || len(outs) != 3 {
		t.Fatalf("mput: %v %d outcomes", err, len(outs))
	}
	gets, err := c.MultiGet([]string{"c", "a", "b"})
	if err != nil {
		t.Fatalf("mget: %v", err)
	}
	for i, want := range []int{3, 1, 2} {
		if gets[i].Resp != want || !gets[i].Status.Linearized() {
			t.Fatalf("mget[%d] = %+v, want %d", i, gets[i], want)
		}
	}

	snaps, err := c.Stats()
	if err != nil || len(snaps) != 4 {
		t.Fatalf("stats: %v, %d shards", err, len(snaps))
	}
	var total shardkv.StatsSnapshot
	for _, s := range snaps {
		total = total.Add(s)
	}
	if total.Ops() == 0 {
		t.Fatal("stats recorded no ops")
	}

	if err := c.CrashShard(1); err != nil {
		t.Fatalf("crash shard: %v", err)
	}
	if got := store.StatsFor(1).CrashesInjected; got != 1 {
		t.Fatalf("shard 1 crashes injected = %d, want 1", got)
	}
	if err := c.CrashShard(-1); err != nil {
		t.Fatalf("crash all: %v", err)
	}
	if got := store.TotalStats().CrashesInjected; got != 5 {
		t.Fatalf("total crashes injected = %d, want 5", got)
	}
}

func TestSlotLeasing(t *testing.T) {
	srv, store := startServer(t, 2, 2)
	addr := srv.Addr().String()

	c1, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial 1: %v", err)
	}
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial 2: %v", err)
	}
	if c1.PID() == c2.PID() {
		t.Fatalf("two sessions share pid %d", c1.PID())
	}
	if store.FreeSlots() != 0 {
		t.Fatalf("free slots = %d, want 0", store.FreeSlots())
	}

	// A third worker session must be refused — pids may not be invented.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("third session on a 2-proc store succeeded")
	} else if we, ok := err.(*client.WireError); !ok || we.Code != server.ErrSlotsExhausted {
		t.Fatalf("third session error = %v, want slots-exhausted", err)
	}

	// Observers lease nothing and may still crash shards and read stats.
	obs, err := client.DialObserver(addr)
	if err != nil {
		t.Fatalf("observer: %v", err)
	}
	defer obs.Close()
	if _, err := obs.Stats(); err != nil {
		t.Fatalf("observer stats: %v", err)
	}
	if _, err := obs.Put("k", 1); err == nil {
		t.Fatal("observer put succeeded")
	} else if we, ok := err.(*client.WireError); !ok || we.Code != server.ErrObserver {
		t.Fatalf("observer put error = %v, want observer-session", err)
	}

	// Closing a session frees its slot for a new one.
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if store.FreeSlots() != 1 {
		t.Fatalf("free slots after close = %d, want 1", store.FreeSlots())
	}
	c3, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("dial after close: %v", err)
	}
	c3.Close()
	c2.Close()
	if store.FreeSlots() != 2 {
		t.Fatalf("free slots after all closed = %d, want 2", store.FreeSlots())
	}
}

// TestPlannedCrashSweepOverWire is internal/kv's put crash-schedule sweep
// driven through the wire: the plan field injects a crash before every
// primitive step in turn, and every verdict must be definite and must
// match the store's state.
func TestPlannedCrashSweepOverWire(t *testing.T) {
	const oldVal, newVal = 1, 9
	const sweepLimit = 40
	sawFail, sawRecovered := false, false
	for step := uint32(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		srv, store := startServer(t, 1, 2)
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			t.Fatalf("step %d: dial: %v", step, err)
		}
		if _, err := c.Put("k", oldVal); err != nil {
			t.Fatalf("step %d: seed put: %v", step, err)
		}

		out, err := c.Put("k", newVal, step)
		if err != nil {
			t.Fatalf("step %d: put: %v", step, err)
		}
		got := store.Peek("k")
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			sawRecovered = sawRecovered || out.Status == runtime.StatusRecovered
			if got != newVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, newVal)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if got != oldVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, oldVal)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}
		c.Close()
		srv.Close()

		if out.Status == runtime.StatusOK {
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return
		}
	}
}

// TestIdleSessionReaped pins the slot-leak defense: a session whose client
// vanishes without CLOSE is reaped after the idle timeout, its slot is
// reclaimed, and a later resume of the dead session is refused.
func TestIdleSessionReaped(t *testing.T) {
	store := shardkv.New(1, 1)
	srv := server.New(store)
	srv.SetIdleTimeout(50 * time.Millisecond)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	sid := c.SessionID()
	c.KillConn() // vanish without CLOSE

	deadline := time.Now().Add(5 * time.Second)
	for store.FreeSlots() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped; slot still leased")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The slot is usable again, and the dead session cannot be resumed.
	c2, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial after reap: %v", err)
	}
	defer c2.Close()
	conn, br := rawDial(t, srv.Addr().String())
	defer conn.Close()
	if err := server.WriteFrame(conn, server.EncodeHello(sid, 0)); err != nil {
		t.Fatalf("resume write: %v", err)
	}
	reply, err := server.ReadFrame(br)
	if err != nil {
		t.Fatalf("resume read: %v", err)
	}
	if code := server.NewReader(reply).U8(); code != server.ErrUnknownSession {
		t.Fatalf("resume of reaped session returned %s, want unknown-session", server.ErrName(code))
	}
}

func TestServerCloseReleasesEverything(t *testing.T) {
	srv, store := startServer(t, 2, 3)
	var clients []*client.Client
	for i := 0; i < 3; i++ {
		c, err := client.Dial(srv.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if srv.Sessions() != 3 {
		t.Fatalf("sessions = %d, want 3", srv.Sessions())
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions after close = %d, want 0", srv.Sessions())
	}
	if store.FreeSlots() != 3 {
		t.Fatalf("free slots after close = %d, want 3", store.FreeSlots())
	}
	for _, c := range clients {
		if _, err := c.Put("k", 1); err == nil {
			t.Fatal("put succeeded against a closed server")
		}
	}
}
