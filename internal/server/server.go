// Package server serves the sharded detectable key-value store
// (internal/shardkv) over TCP, preserving detectability across the network
// boundary.
//
// Each client session leases one process slot of the store's N-process
// model, so a remote session IS one process of the paper. The wire
// protocol (wire.go, docs/PROTOCOL.md) is length-prefixed binary frames;
// each request carries a session-scoped, strictly increasing request ID.
// The server executes a request once, records the encoded reply in the
// session's persisted-outcome window, and replays it verbatim when the
// same request ID is re-issued.
//
// That replay rule is the paper's announcement/recovery contract lifted to
// the session layer: a dropped connection is the crash, and a client that
// reconnects and re-issues its in-flight request ID receives the original
// detectable verdict — the operation took effect at most once, and the
// client learns definitively whether it did.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/durable"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// DefaultIdleTimeout is how long a detached session (no connection) is
// retained for resume before it is reaped and its process slot reclaimed.
// Without reaping, every client that dies without a clean CLOSE would leak
// a slot forever.
const DefaultIdleTimeout = 2 * time.Minute

// Server accepts connections and serves sessions over one shardkv.Store.
//
// The store and durable DB are atomic pointers because a standby server
// (NewStandby) starts with neither and gains both at promotion, while
// connection handlers read them lock-free; on a plain primary they are set
// once before Listen and never change.
type Server struct {
	store atomic.Pointer[shardkv.Store]
	db    atomic.Pointer[durable.DB] // nil without -data: sessions live and die in memory

	standby          atomic.Pointer[standbyState] // non-nil until promotion (replication.go)
	fenced           atomic.Bool                  // demoted primary: only admin ops served
	replicas         atomic.Int64                 // attached replication streams
	recoveredReplays atomic.Uint64                // replays served from a recovered outcome window

	mu          sync.Mutex
	ln          net.Listener
	sessions    map[uint64]*session
	nextSID     uint64
	idleTTL     time.Duration
	closed      bool
	stop        chan struct{}
	wg          sync.WaitGroup
	replStreams map[*durable.ReplSub]net.Conn // live replication streams, torn down by Close
	wasStandby  *standbyState                 // set at promotion; keeps Promote idempotent
}

// New returns a server over store. Call Listen to start serving.
func New(store *shardkv.Store) *Server {
	srv := &Server{
		sessions: make(map[uint64]*session),
		idleTTL:  DefaultIdleTimeout,
		stop:     make(chan struct{}),
	}
	srv.store.Store(store)
	return srv
}

// SetIdleTimeout overrides how long detached sessions are retained for
// resume (0 disables reaping). Call before Listen.
func (srv *Server) SetIdleTimeout(d time.Duration) { srv.idleTTL = d }

// AttachDurable makes the server's session layer durable over db (the same
// DB the store was opened with via shardkv.Durable) and recovers every
// session that was live when the previous process died: each gets its
// process slot back, its outcome window reloaded, and its idle-reap clock
// restarted. Call before Listen. From then on, session creation and every
// released verdict are fsynced through db before the client sees them, so
// a client that reconnects after a whole-process crash and re-issues its
// in-flight request ID receives the original verdict.
func (srv *Server) AttachDurable(db *durable.DB) error {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln != nil || len(srv.sessions) > 0 {
		return errors.New("server: AttachDurable must run before Listen")
	}
	if err := srv.recoverSessionsLocked(db, srv.store.Load()); err != nil {
		return err
	}
	if next := db.NextSID(); next > srv.nextSID {
		srv.nextSID = next
	}
	srv.db.Store(db)
	return nil
}

// recoverSessionsLocked rebuilds the session table from db's recovered
// sessions, leasing each one's process slot back from store. Shared by
// AttachDurable (process restart) and promotion (the standby's recovered
// state becomes the serving state). Called with srv.mu held.
func (srv *Server) recoverSessionsLocked(db *durable.DB, store *shardkv.Store) error {
	// Two recovered sessions can claim one slot when an END record was
	// lost (endSession treats END appends as best-effort) and the pid was
	// re-leased before the crash. The newer session (higher SID — Sessions
	// returns ascending order) is the live one; the superseded one is
	// durably ended now rather than refusing to start from our own data.
	byPid := make(map[int]durable.SessionState)
	for _, ss := range db.Sessions() {
		if prev, ok := byPid[ss.PID]; ok {
			db.AppendEnd(prev.SID) //nolint:errcheck // best-effort, same as endSession
		}
		byPid[ss.PID] = ss
	}
	for _, ss := range byPid {
		if !store.LeaseProc(ss.PID) {
			return fmt.Errorf("server: recovered session %d holds process slot %d, which is not free", ss.SID, ss.PID)
		}
		sess := &session{
			id: ss.SID, pid: ss.PID,
			detachedAt:   time.Now(),
			maxID:        ss.MaxID,
			recoveredMax: ss.MaxID,
			cache:        make(map[uint64][]byte, Window+1),
			recovered:    make(map[uint64]struct{}, len(ss.Window)),
		}
		for reqID, reply := range ss.Window {
			sess.cache[reqID] = append([]byte(nil), reply...)
			sess.recovered[reqID] = struct{}{}
		}
		srv.sessions[ss.SID] = sess
	}
	return nil
}

// Store returns the served store, for tests and the daemon's final report.
// Nil on a standby that has not been promoted.
func (srv *Server) Store() *shardkv.Store { return srv.store.Load() }

// RecoveredReplays reports how many replies were served by replaying an
// outcome recovered from the durable window — verdicts that provably
// survived a process death (restart or failover to this node).
func (srv *Server) RecoveredReplays() uint64 { return srv.recoveredReplays.Load() }

// Listen binds addr (e.g. "127.0.0.1:0") and starts the accept loop in the
// background. The bound address is available from Addr.
func (srv *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		ln.Close()
		return errors.New("server: already closed")
	}
	srv.ln = ln
	srv.wg.Add(1)
	srv.mu.Unlock()
	go srv.acceptLoop(ln)
	if srv.idleTTL > 0 {
		srv.wg.Add(1)
		go srv.reapLoop(srv.idleTTL)
	}
	return nil
}

// reapLoop periodically ends sessions that have been detached longer than
// ttl, reclaiming their process slots. A session mid-resume cannot be
// reaped: attaching requires the server lock this loop inspects under.
func (srv *Server) reapLoop(ttl time.Duration) {
	defer srv.wg.Done()
	period := ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-srv.stop:
			return
		case <-tick.C:
		}
		var expired []*session
		srv.mu.Lock()
		now := time.Now()
		for id, sess := range srv.sessions {
			sess.mu.Lock()
			dead := sess.conn == nil && !sess.detachedAt.IsZero() && now.Sub(sess.detachedAt) >= ttl
			sess.mu.Unlock()
			if dead {
				delete(srv.sessions, id)
				expired = append(expired, sess)
			}
		}
		srv.mu.Unlock()
		for _, sess := range expired {
			if !sess.slotless() {
				// The durable END is appended after the session left the
				// table, so a resume that raced past this point was already
				// refused with unknown-session; replication ships the END on
				// the same barrier, so a promoted replica refuses it too —
				// a reaped sid can never come back as a stale session.
				if db := srv.db.Load(); db != nil {
					db.AppendEnd(sess.id) //nolint:errcheck
				}
				srv.store.Load().ReleaseProc(sess.pid)
			}
		}
	}
}

// Addr returns the listener's address, or nil before Listen.
func (srv *Server) Addr() net.Addr {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// Sessions reports the number of live sessions.
func (srv *Server) Sessions() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// Close stops accepting, kicks every attached connection and waits for the
// handlers to drain. Sessions are discarded; their slots return to the
// store's pool.
func (srv *Server) Close() error {
	srv.mu.Lock()
	if !srv.closed {
		close(srv.stop)
	}
	srv.closed = true
	if srv.ln != nil {
		srv.ln.Close()
	}
	sessions := make([]*session, 0, len(srv.sessions))
	for id, sess := range srv.sessions {
		sessions = append(sessions, sess)
		delete(srv.sessions, id)
	}
	for sub, conn := range srv.replStreams {
		sub.Close()
		conn.Close()
	}
	srv.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			sess.conn.Close()
		}
		sess.mu.Unlock()
		if !sess.slotless() {
			srv.store.Load().ReleaseProc(sess.pid)
		}
	}
	if st := srv.standby.Load(); st != nil {
		st.stopReplication()
	}
	srv.wg.Wait()
	return nil
}

func (srv *Server) acceptLoop(ln net.Listener) {
	defer srv.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // Close closed the listener, or the listener died
		}
		srv.mu.Lock()
		if srv.closed {
			srv.mu.Unlock()
			conn.Close()
			return
		}
		srv.wg.Add(1)
		srv.mu.Unlock()
		go srv.handleConn(conn)
	}
}

// handleConn runs one connection: a HELLO attaching a session, then a
// serial request loop. Protocol errors drop the connection; the session
// (and its outcome window) survives for a future resume.
//
// Buffers are connection-owned and drawn from the shared frame pool:
// frames are read into one grow-only buffer and replies are encoded into
// one scratch buffer, so the steady-state framing path allocates nothing.
// Replies go through a buffered writer that is flushed only when no
// further pipelined request is already buffered, coalescing back-to-back
// replies into a single Write on the connection.
func (srv *Server) handleConn(conn net.Conn) {
	defer srv.wg.Done()
	defer conn.Close()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	readBuf := GetFrameBuf()
	defer PutFrameBuf(readBuf)
	scratch := GetFrameBuf()
	defer PutFrameBuf(scratch)

	payload, err := ReadFrameInto(br, readBuf)
	if err != nil {
		return
	}
	r := NewReader(payload)
	if op := r.U8(); op != OpHello {
		WriteFrame(bw, encodeErr(ErrBadRequest, "first frame must be HELLO"))
		bw.Flush()
		return
	}
	sid, flags := r.U64(), r.U8()
	if r.Err || r.Rest() != 0 {
		WriteFrame(bw, encodeErr(ErrBadRequest, "malformed HELLO"))
		bw.Flush()
		return
	}
	if flags&HelloFlagReplica != 0 {
		srv.serveReplication(conn, br, bw)
		return
	}
	sess, gen, reply := srv.attach(conn, sid, flags)
	if err := WriteFrame(bw, reply); err != nil || bw.Flush() != nil || sess == nil {
		return
	}
	defer srv.detach(sess, gen)

	for {
		payload, err := ReadFrameInto(br, readBuf)
		if err != nil {
			return
		}
		reply, closing, fatal := srv.handle(sess, payload, scratch)
		if err := WriteFrame(bw, reply); err != nil {
			return
		}
		if closing || fatal || br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if closing {
			srv.endSession(sess)
			return
		}
		if fatal {
			return
		}
	}
}

// attach creates (sid 0) or resumes a session and binds conn to it,
// kicking any connection previously attached. It returns the session (nil
// on error), the attach generation and the HELLO reply.
func (srv *Server) attach(conn net.Conn, sid uint64, flags byte) (*session, uint64, []byte) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, 0, encodeErr(ErrBadRequest, "server shutting down")
	}
	observer := flags&HelloFlagObserver != 0
	readOnly := flags&HelloFlagReadOnly != 0
	if !observer && !readOnly && srv.standby.Load() != nil {
		// A standby serves no data sessions — and critically, a client
		// resuming the old primary's sid here must hear not-primary (try
		// the next address), never unknown-session (fatal to the client):
		// the standby's table does not hold replicated sessions until
		// promotion, so the lookup below could not tell the two apart.
		// Read-only sessions ARE admitted: the standby is a read replica
		// (executeReadOnly serves GETs from the applied view).
		return nil, 0, encodeErr(ErrNotPrimary, "standby: not serving until promoted")
	}
	if !observer && srv.fenced.Load() {
		// Refuses read-only sessions too: a fenced ex-primary's state is
		// frozen at demotion with no lag bound, so reads belong to the
		// promoted node.
		// A fenced ex-primary must neither mint nor resume data sessions:
		// every verdict now belongs to the promoted replica. Minting one
		// here would lease a slot and durably burn a sid that the promoted
		// node has never heard of — the client's first data op would bounce
		// with not-primary and its resume over there would die on
		// unknown-session. Refusing the HELLO itself sends the client to
		// the next failover address before any state is created.
		return nil, 0, encodeErr(ErrNotPrimary, "fenced: this node was demoted")
	}

	if sid == 0 {
		pid := -1
		if !observer && !readOnly {
			p, ok := srv.store.Load().AcquireProc()
			if !ok {
				return nil, 0, encodeErr(ErrSlotsExhausted, "every process slot is leased")
			}
			pid = p
		}
		srv.nextSID++
		sess := &session{
			id: srv.nextSID, pid: pid, observer: observer, readOnly: readOnly,
			conn: conn, gen: 1, cache: make(map[uint64][]byte, Window+1),
		}
		if db := srv.db.Load(); db != nil {
			// The session must be durable before the client learns its ID:
			// a restart may otherwise greet the resume with unknown-session
			// and strand the client's in-flight request. Observer sessions
			// are not recoverable (no slot, no window) but still burn their
			// ID durably, or a restart would reissue it and a stale
			// observer's resume would attach to a stranger's session. On
			// failure the ID stays burned in memory too: the append may
			// have reached the log even when the sync failed, and reusing
			// the ID could durably bind it to two different pids.
			var err error
			if sess.slotless() {
				err = db.NoteSID(sess.id)
			} else {
				err = db.AppendHello(sess.id, pid)
			}
			if err != nil {
				if !sess.slotless() {
					srv.store.Load().ReleaseProc(pid)
				}
				return nil, 0, encodeErr(ErrBadRequest, "durable session record failed")
			}
		}
		srv.sessions[sess.id] = sess
		return sess, 1, appendHelloOK(nil, sess.id, pid, false)
	}

	sess, ok := srv.sessions[sid]
	if !ok {
		return nil, 0, encodeErr(ErrUnknownSession, "no such session")
	}
	sess.mu.Lock()
	if sess.conn != nil {
		sess.conn.Close() // kick the stale connection; its handler detaches as a no-op
	}
	sess.conn = conn
	sess.detachedAt = time.Time{}
	sess.gen++
	gen := sess.gen
	sess.mu.Unlock()
	return sess, gen, appendHelloOK(nil, sess.id, sess.pid, true)
}

// detach clears the session's connection if this handler still owns it,
// starting the idle-reap clock.
func (srv *Server) detach(sess *session, gen uint64) {
	sess.mu.Lock()
	if sess.gen == gen {
		sess.conn = nil
		sess.detachedAt = time.Now()
	}
	sess.mu.Unlock()
}

// endSession removes the session and returns its slot. Idempotent under
// the server lock.
func (srv *Server) endSession(sess *session) {
	srv.mu.Lock()
	_, live := srv.sessions[sess.id]
	delete(srv.sessions, sess.id)
	srv.mu.Unlock()
	if live && !sess.slotless() {
		if db := srv.db.Load(); db != nil {
			// Best-effort: a lost END record only means the session is
			// recovered once more after a restart and reaped by the idle TTL.
			db.AppendEnd(sess.id) //nolint:errcheck
		}
		srv.store.Load().ReleaseProc(sess.pid)
	}
}

// handle processes one request frame under the session lock. The
// classify-execute-record sequence is atomic per session, which is what
// makes a re-issued request ID exactly-once even when a kicked half-dead
// connection races its replacement over the same ID.
//
// Fresh replies are encoded into *scratch (the connection's pooled buffer)
// and remain valid until the next handle call; successful replies are
// copied into the session's outcome window, recycling evicted entries.
// Replayed replies alias the window entry itself.
func (srv *Server) handle(sess *session, payload []byte, scratch *[]byte) (reply []byte, closing, fatal bool) {
	r := NewReader(payload)
	op := r.U8()
	reqID := r.U64()
	if r.Err || reqID == 0 {
		return appendErr((*scratch)[:0], ErrBadRequest, "malformed request header"), false, true
	}
	if op == OpPromote {
		// Promotion is an admin op outside the session's outcome window: it
		// is idempotent by construction (replication.go), so a re-issued ID
		// simply re-executes, and it must not run under sess.mu — promotion
		// takes srv.mu, which attach acquires before session locks.
		if r.Rest() != 0 {
			return appendErr((*scratch)[:0], ErrBadRequest, "malformed PROMOTE"), false, true
		}
		gen, err := srv.Promote()
		if err != nil {
			return appendErr((*scratch)[:0], ErrBadRequest, "promotion failed: "+err.Error()), false, false
		}
		reply = append((*scratch)[:0], StatusOK)
		reply = binary.BigEndian.AppendUint64(reply, gen)
		if cap(reply) > cap(*scratch) {
			*scratch = reply
		}
		return reply, false, false
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()

	if cached, class := sess.classify(reqID); class == idReplay {
		if _, ok := sess.recovered[reqID]; ok {
			// This verdict crossed a process boundary: recovered from the
			// durable window (restart, or a promoted replica's shipped
			// state) and now served to its original requester.
			srv.recoveredReplays.Add(1)
		}
		// Copy into the connection scratch: the write to the socket happens
		// after the session lock is released, and a racing replacement
		// connection may recycle the window entry in the meantime.
		reply = append((*scratch)[:0], cached...)
		if cap(reply) > cap(*scratch) {
			*scratch = reply
		}
		return reply, false, false
	} else if class == idStale {
		return appendErr((*scratch)[:0], ErrStaleRequest, "request ID fell out of the outcome window"), false, false
	}

	reply, closing, fatal = srv.execute(sess, op, r, (*scratch)[:0])
	if cap(reply) > cap(*scratch) {
		*scratch = reply // keep the grown buffer for the next frame
	}
	if !fatal && len(reply) > 0 && reply[0] == StatusOK && !closing {
		if db := srv.db.Load(); db != nil && !sess.observer && mutates(op) {
			// The durability barrier before release: the shard logs holding
			// this request's linearized mutations are synced, then the
			// outcome record — in that order, so a replayed verdict can
			// never outlive its effect. Only then may the reply leave.
			// Read-only replies skip it: they have no effect to anchor, a
			// never-delivered read simply re-executes fresh after a
			// restart, and the in-memory window still covers
			// connection-level resume — so reads cost no fsync.
			if err := db.CommitOutcome(sess.id, reqID, reply); err != nil {
				return appendErr((*scratch)[:0], ErrBadRequest, "durable outcome commit failed"), false, true
			}
		}
		sess.record(reqID, reply)
	}
	return reply, closing, fatal
}

// mutates reports whether op can linearize effects that must be durable
// before its verdict is released.
func mutates(op byte) bool {
	return op == OpPut || op == OpDel || op == OpMPut
}

// execute decodes the op-specific body, runs it as the session's process
// and appends the reply to dst. Called with the session lock held.
func (srv *Server) execute(sess *session, op byte, r *Reader, dst []byte) (reply []byte, closing, fatal bool) {
	bad := func(msg string) ([]byte, bool, bool) { return appendErr(dst, ErrBadRequest, msg), false, true }
	data := func() bool { return !sess.observer } // data ops need a process slot

	if op == OpServerStats {
		// Node status is served everywhere — primaries, standbys, fenced
		// ex-primaries — from atomics only (no srv.mu: attach holds srv.mu
		// before session locks, and execute runs under a session lock).
		if r.Err || r.Rest() != 0 {
			return bad("malformed SERVER-STATS")
		}
		return srv.appendServerStatsReply(dst), false, false
	}
	if srv.fenced.Load() && op != OpClose {
		// A fenced ex-primary serves no data: every verdict now belongs to
		// the promoted replica. The client redials its other addresses.
		return appendErr(dst, ErrNotPrimary, "fenced: this node was demoted"), false, false
	}
	if sess.readOnly {
		// Read-only sessions bypass the store (they hold no process slot)
		// and are the one session kind a standby serves: GETs are answered
		// from committed state — the replica's applied view, or the durable
		// mirror / live store on a primary (readonly.go).
		return srv.executeReadOnly(sess, op, r, dst)
	}
	store := srv.store.Load()
	if store == nil && op != OpClose {
		// A standby has no store until promotion installs one: observer
		// sessions may only poll SERVER-STATS, PROMOTE and CLOSE here.
		return appendErr(dst, ErrNotPrimary, "standby: not serving until promoted"), false, false
	}

	switch op {
	case OpGet, OpDel:
		plan := r.U32()
		key := r.KeyRef()
		if r.Err || r.Rest() != 0 {
			return bad("malformed GET/DEL")
		}
		if !data() {
			return appendErr(dst, ErrObserver, "data operation on observer session"), false, false
		}
		var out runtime.Outcome[int]
		if op == OpGet {
			out = store.Get(sess.pid, key, planOf(plan)...)
		} else {
			out = store.Del(sess.pid, key, planOf(plan)...)
		}
		return appendOutcomeReply(dst, out), false, false

	case OpPut:
		plan := r.U32()
		key := r.KeyRef()
		val := int(r.I64())
		if r.Err || r.Rest() != 0 {
			return bad("malformed PUT")
		}
		if !data() {
			return appendErr(dst, ErrObserver, "data operation on observer session"), false, false
		}
		return appendOutcomeReply(dst, store.Put(sess.pid, key, val, planOf(plan)...)), false, false

	case OpMGet:
		n := int(r.U16())
		if n > MaxBatch {
			return bad("MGET batch too large")
		}
		keys := sess.keys[:0]
		for i := 0; i < n; i++ {
			keys = append(keys, r.KeyRef())
		}
		sess.keys = keys
		if r.Err || r.Rest() != 0 {
			return bad("malformed MGET")
		}
		if !data() {
			return appendErr(dst, ErrObserver, "data operation on observer session"), false, false
		}
		return appendOutcomesReply(dst, store.MultiGetWith(&sess.batch, sess.pid, keys)), false, false

	case OpMPut:
		n := int(r.U16())
		if n > MaxBatch {
			return bad("MPUT batch too large")
		}
		entries := sess.entries[:0]
		for i := 0; i < n; i++ {
			entries = append(entries, shardkv.KV{Key: r.KeyRef(), Val: int(r.I64())})
		}
		sess.entries = entries
		if r.Err || r.Rest() != 0 {
			return bad("malformed MPUT")
		}
		if !data() {
			return appendErr(dst, ErrObserver, "data operation on observer session"), false, false
		}
		return appendOutcomesReply(dst, store.MultiPutWith(&sess.batch, sess.pid, entries)), false, false

	case OpCrash:
		shard := r.U32()
		if r.Err || r.Rest() != 0 {
			return bad("malformed CRASH")
		}
		if shard == CrashAllShards {
			store.Crash()
		} else if int(shard) < store.NumShards() {
			store.CrashShard(int(shard))
		} else {
			return appendErr(dst, ErrBadRequest, "shard out of range"), false, false
		}
		return appendAck(dst), false, false

	case OpStats:
		if r.Err || r.Rest() != 0 {
			return bad("malformed STATS")
		}
		return appendStatsReply(dst, store.Snapshots()), false, false

	case OpClose:
		if r.Err || r.Rest() != 0 {
			return bad("malformed CLOSE")
		}
		return appendAck(dst), true, false

	default:
		return bad("unknown opcode")
	}
}

// planOf maps the wire's plan field to a crash plan: 0 is none, p > 0
// injects one system-wide crash before the p-th primitive step of the
// operation on its shard — the deterministic injection surface of
// nvm.CrashAtStep, exposed over the wire.
func planOf(plan uint32) []nvm.CrashPlan {
	if plan == 0 {
		return nil
	}
	return []nvm.CrashPlan{nvm.CrashAtStep(uint64(plan))}
}
