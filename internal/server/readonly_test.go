package server

// Read-only (GET-only) session serving: the standby answering GETs out of
// its barrier-consistent applied view, role-dependent mutation refusals,
// the fenced refusal, and the replication-lag stat (the sixth SERVER-STATS
// word) that read-preferring clients bound staleness with.

import (
	"testing"

	"detectable/internal/runtime"
)

// helloReadOnly opens a read-only session on rc, asserting admission.
func helloReadOnly(t *testing.T, rc *rawConn) {
	t.Helper()
	reply := rc.roundTrip(t, EncodeHello(0, HelloFlagReadOnly))
	if reply[0] != StatusOK {
		t.Fatalf("read-only HELLO rejected: code %d", reply[0])
	}
}

// getOutcome drives one GET on a read-only session and decodes the
// outcome reply.
func getOutcome(t *testing.T, rc *rawConn, reqID uint64, key string) runtime.Outcome[int] {
	t.Helper()
	reply := rc.roundTrip(t, EncodeGet(reqID, 0, key))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("GET %q rejected: %s", key, ErrName(code))
	}
	out := runtime.Outcome[int]{Status: runtime.Status(r.U8()), Resp: int(int64(r.U64()))}
	r.U32() // crash count
	if r.Err {
		t.Fatalf("GET %q reply truncated", key)
	}
	return out
}

// statsApplied drives SERVER-STATS and returns (role, seq, applied).
func statsApplied(t *testing.T, rc *rawConn, reqID uint64) (role byte, seq, applied uint64) {
	t.Helper()
	reply := rc.roundTrip(t, EncodeServerStats(reqID))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("SERVER-STATS rejected: %s", ErrName(code))
	}
	role = r.U8()
	r.U64() // generation
	r.U64() // recovered replays
	seq = r.U64()
	r.U64() // acked
	r.U64() // replicas
	applied = r.U64()
	if r.Err {
		t.Fatal("SERVER-STATS reply truncated (applied word missing)")
	}
	return role, seq, applied
}

// TestReadOnlyStandbyServesAppliedReads is the tentpole contract: a
// standby admits a read-only session and answers GET/MGET from the
// replica's applied view — values the primary committed — while refusing
// mutations with not-primary, and its SERVER-STATS applied mark tracks
// the primary's committed barrier sequence.
func TestReadOnlyStandbyServesAppliedReads(t *testing.T) {
	addr1 := reserveAddr(t)
	st1 := startDurable(t, t.TempDir(), addr1)
	defer st1.kill(t)
	sb := startStandby(t, t.TempDir(), addr1)
	defer func() {
		sb.srv.Close()
		sb.db.Close()
	}()
	waitSynced(t, st1.db)

	// Commit a few puts on the primary; the synchronous subscription means
	// each reply was released only after the standby acked its barrier.
	rc := dialRaw(t, addr1)
	rc.hello(t, 0)
	for i, kv := range []struct {
		key string
		val int
	}{{"alpha", 41}, {"beta", 7}, {"gamma", 0}} {
		if reply := rc.roundTrip(t, EncodePut(uint64(i+1), 0, kv.key, kv.val)); reply[0] != StatusOK {
			t.Fatalf("PUT %s rejected: %x", kv.key, reply)
		}
	}
	rc.c.Close()

	ro := dialRaw(t, addr2OrSelf(sb))
	defer ro.c.Close()
	helloReadOnly(t, ro)

	if out := getOutcome(t, ro, 1, "alpha"); out.Status != runtime.StatusOK || out.Resp != 41 {
		t.Fatalf("standby GET alpha = %v/%d, want OK/41", out.Status, out.Resp)
	}
	if out := getOutcome(t, ro, 2, "missing"); out.Status != runtime.StatusOK || out.Resp != 0 {
		t.Fatalf("standby GET missing = %v/%d, want OK/0", out.Status, out.Resp)
	}

	// MGET: one status, a count, then one outcome per key.
	reply := ro.roundTrip(t, EncodeMGet(3, []string{"beta", "alpha"}))
	r := NewReader(reply)
	if code := r.U8(); code != StatusOK {
		t.Fatalf("MGET rejected: %s", ErrName(code))
	}
	if n := r.U16(); n != 2 {
		t.Fatalf("MGET count %d, want 2", n)
	}
	want := []int{7, 41}
	for i := range want {
		if st := runtime.Status(r.U8()); st != runtime.StatusOK {
			t.Fatalf("MGET outcome %d status %v", i, st)
		}
		if got := int(int64(r.U64())); got != want[i] {
			t.Fatalf("MGET outcome %d = %d, want %d", i, got, want[i])
		}
		r.U32() // crash count
	}

	// Mutations on the standby: refused with not-primary so a failover
	// client rotates to the primary (a read-only client never sends them).
	if reply := ro.roundTrip(t, EncodePut(4, 0, "alpha", 99)); reply[0] != ErrNotPrimary {
		t.Fatalf("standby read-only PUT answered %x, want ErrNotPrimary", reply[0])
	}
	if reply := ro.roundTrip(t, EncodeDel(5, 0, "alpha")); reply[0] != ErrNotPrimary {
		t.Fatalf("standby read-only DEL answered %x, want ErrNotPrimary", reply[0])
	}
	// Crash plans need a process identity; a slotless read has none.
	if reply := ro.roundTrip(t, EncodeGet(6, 1, "alpha")); reply[0] != ErrObserver {
		t.Fatalf("planned-crash GET answered %x, want ErrObserver", reply[0])
	}

	// The lag stat: the standby's applied mark must have caught the
	// primary's committed barrier seq. The primary's observer HELLO burns
	// a durable sid — one more barrier — so sample the primary first; the
	// synchronous subscription guarantees the standby applied that barrier
	// before the HELLO reply was released.
	pc := dialRaw(t, addr1)
	defer pc.c.Close()
	if reply := pc.roundTrip(t, EncodeHello(0, HelloFlagObserver)); reply[0] != StatusOK {
		t.Fatalf("observer hello on primary rejected: %x", reply)
	}
	_, pseq, papplied := statsApplied(t, pc, 1)
	if papplied != pseq {
		t.Fatalf("primary reports applied=%d != its own seq=%d", papplied, pseq)
	}
	role, _, applied := statsApplied(t, ro, 7)
	if role != RoleStandby {
		t.Fatalf("standby reports role %d", role)
	}
	if applied != pseq {
		t.Fatalf("standby applied=%d, primary committed seq=%d — lag stat broken", applied, pseq)
	}
}

// addr2OrSelf returns the standby's listen address.
func addr2OrSelf(sb *standbyStack) string { return sb.srv.Addr().String() }

// TestReadOnlyOnPrimaryServesLiveStore: a primary admits read-only
// sessions too (the same client code works against either node), serving
// from the live store, and refuses mutations with the observer error —
// rotating addresses would not help, the session kind forbids them.
func TestReadOnlyOnPrimaryServesLiveStore(t *testing.T) {
	addr := reserveAddr(t)
	st := startDurable(t, t.TempDir(), addr)
	defer st.kill(t)

	w := dialRaw(t, addr)
	w.hello(t, 0)
	if reply := w.roundTrip(t, EncodePut(1, 0, "k", 12)); reply[0] != StatusOK {
		t.Fatalf("PUT rejected: %x", reply)
	}
	defer w.c.Close()

	ro := dialRaw(t, addr)
	defer ro.c.Close()
	helloReadOnly(t, ro)
	if out := getOutcome(t, ro, 1, "k"); out.Status != runtime.StatusOK || out.Resp != 12 {
		t.Fatalf("primary read-only GET = %v/%d, want OK/12", out.Status, out.Resp)
	}
	if reply := ro.roundTrip(t, EncodePut(2, 0, "k", 99)); reply[0] != ErrObserver {
		t.Fatalf("primary read-only PUT answered %x, want ErrObserver", reply[0])
	}
}

// TestReadOnlyRefusedOnFenced: a fenced ex-primary's state is frozen at
// demotion with no lag bound, so even read-only sessions are refused —
// the client's next address is the promoted node.
func TestReadOnlyRefusedOnFenced(t *testing.T) {
	addr := reserveAddr(t)
	st := startDurable(t, t.TempDir(), addr)
	defer st.kill(t)
	if _, err := st.srv.Promote(); err != nil {
		t.Fatalf("self-fencing Promote: %v", err)
	}
	rc := dialRaw(t, addr)
	defer rc.c.Close()
	if reply := rc.roundTrip(t, EncodeHello(0, HelloFlagReadOnly)); reply[0] != ErrNotPrimary {
		t.Fatalf("fenced node answered read-only HELLO with %x, want ErrNotPrimary", reply[0])
	}
}
