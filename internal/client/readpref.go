// ReadClient routes GET traffic to read replicas with automatic fallback
// to the primary (docs/REPLICATION.md §read replicas).
//
// The router holds one read-only session (DialReadOnly) against its
// current target — a replica while one is healthy and fresh enough, the
// primary otherwise — plus a lazily-dialed observer probe that tracks
// which node is currently primary. Every lag interval it compares the
// primary's committed barrier sequence against the replica's applied mark
// (ServerStatus.ReplApplied); when the gap exceeds the MaxLag bound — or
// the two nodes report different fencing generations, which makes the
// comparison meaningless — the router falls back to the primary, and
// periodically retries the replicas to move read load back off it.
//
// The staleness contract a ReadClient read carries: bounded-stale, never
// phantom. A replica read may miss the last MaxLag commit epochs, but any
// value it returns was journaled (hence linearized) on the primary, and a
// failed write — which journals nothing — can never surface.
package client

import (
	"fmt"
	"time"

	"detectable/internal/runtime"
	"detectable/internal/server"
)

// DefaultLagInterval is how often the router re-checks replication lag
// (and, while fallen back, retries the replicas).
const DefaultLagInterval = 250 * time.Millisecond

// ReadPrefOption configures DialReadPreference.
type ReadPrefOption func(*ReadClient)

// WithMaxLag bounds how many commit barriers a replica read may trail the
// primary by; beyond it the router falls back to the primary until the
// replica catches up. 0 (the default) disables the staleness check —
// replicas serve regardless of lag.
func WithMaxLag(barriers uint64) ReadPrefOption {
	return func(rc *ReadClient) { rc.maxLag = barriers }
}

// WithLagInterval overrides how often the lag bound is re-checked.
func WithLagInterval(d time.Duration) ReadPrefOption {
	return func(rc *ReadClient) {
		if d > 0 {
			rc.lagEvery = d
		}
	}
}

// ReadClient is a GET-only client preferring read replicas. Like Client it
// is NOT safe for concurrent use: one reader, one operation at a time.
type ReadClient struct {
	primaries []string
	replicas  []string
	maxLag    uint64
	lagEvery  time.Duration

	cur       *Client // current read-only session, nil when torn down
	curAddr   string
	onReplica bool

	probe     *Client // observer session pinned to the current primary
	probeAddr string

	nextCheck time.Time
	fallbacks uint64 // replica→primary switches (staleness or failure)
}

// DialReadPreference opens a read-preferring GET router: reads go to the
// first replica that accepts a read-only session, falling back to the
// primaries when none does (or when the staleness bound trips later).
func DialReadPreference(primaries, replicas []string, opts ...ReadPrefOption) (*ReadClient, error) {
	if len(primaries) == 0 && len(replicas) == 0 {
		return nil, fmt.Errorf("client: no addresses to dial")
	}
	rc := &ReadClient{primaries: primaries, replicas: replicas, lagEvery: DefaultLagInterval}
	for _, opt := range opts {
		opt(rc)
	}
	if err := rc.reconnect(); err != nil {
		return nil, err
	}
	return rc, nil
}

// reconnect (re)establishes the read session: replicas first — each must
// also pass the staleness bound before it is trusted — then primaries.
func (rc *ReadClient) reconnect() error {
	rc.dropCur()
	var lastErr error
	for _, addr := range rc.replicas {
		c, err := DialReadOnly(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if !rc.freshEnough(c) {
			c.Close() //nolint:errcheck
			lastErr = fmt.Errorf("client: replica %s exceeds the staleness bound", addr)
			continue
		}
		rc.cur, rc.curAddr, rc.onReplica = c, addr, true
		rc.nextCheck = time.Now().Add(rc.lagEvery)
		return nil
	}
	for _, addr := range rc.primaries {
		c, err := DialReadOnly(addr)
		if err != nil {
			lastErr = err
			continue
		}
		rc.cur, rc.curAddr, rc.onReplica = c, addr, false
		rc.nextCheck = time.Now().Add(rc.lagEvery)
		return nil
	}
	return lastErr
}

// freshEnough reports whether the target's applied state satisfies the lag
// bound. With no bound set, or no reachable primary to compare against
// (reads must keep flowing while the primary is down mid-failover), every
// target qualifies. A generation mismatch never qualifies: the replica is
// syncing from (or into) a different primary lineage and its applied mark
// is not comparable.
func (rc *ReadClient) freshEnough(c *Client) bool {
	if rc.maxLag == 0 {
		return true
	}
	st, err := c.ServerStats()
	if err != nil {
		return false
	}
	if st.Role == server.RolePrimary {
		return true // promoted under us: it IS the committed state
	}
	pst, ok := rc.primaryStats()
	if !ok {
		return true
	}
	if pst.Generation != st.Generation {
		return false
	}
	return pst.ReplSeq <= st.ReplApplied+rc.maxLag
}

// primaryStats returns the current primary's status, re-discovering which
// node is primary when the cached probe went away or was demoted.
func (rc *ReadClient) primaryStats() (ServerStatus, bool) {
	if rc.probe != nil {
		if st, err := rc.probe.ServerStats(); err == nil && st.Role == server.RolePrimary {
			return st, true
		}
		rc.probe.KillConn()
		rc.probe, rc.probeAddr = nil, ""
	}
	for _, addr := range rc.primaries {
		if st, ok := rc.tryProbe(addr); ok {
			return st, true
		}
	}
	for _, addr := range rc.replicas {
		if st, ok := rc.tryProbe(addr); ok {
			return st, true
		}
	}
	return ServerStatus{}, false
}

func (rc *ReadClient) tryProbe(addr string) (ServerStatus, bool) {
	c, err := DialObserver(addr)
	if err != nil {
		return ServerStatus{}, false
	}
	st, err := c.ServerStats()
	if err == nil && st.Role == server.RolePrimary {
		rc.probe, rc.probeAddr = c, addr
		return st, true
	}
	c.Close() //nolint:errcheck
	return ServerStatus{}, false
}

func (rc *ReadClient) dropCur() {
	if rc.cur != nil {
		rc.cur.KillConn()
		rc.cur = nil
		rc.curAddr = ""
	}
}

// maybeRoute re-checks the routing decision once per lag interval: on a
// replica, fall back to the primary when the staleness bound trips; on the
// primary, try to move back to a fresh replica.
func (rc *ReadClient) maybeRoute() {
	if rc.cur == nil || time.Now().Before(rc.nextCheck) {
		return
	}
	rc.nextCheck = time.Now().Add(rc.lagEvery)
	if rc.onReplica {
		if rc.maxLag == 0 || rc.freshEnough(rc.cur) {
			return
		}
		// Staleness bound exceeded: fall back to the primary.
		rc.fallbacks++
		rc.dropCur()
		rc.reconnect() //nolint:errcheck // next Get retries
		return
	}
	// On the primary: probe the replicas for one that is fresh again.
	for _, addr := range rc.replicas {
		c, err := DialReadOnly(addr)
		if err != nil {
			continue
		}
		if !rc.freshEnough(c) {
			c.Close() //nolint:errcheck
			continue
		}
		rc.dropCur()
		rc.cur, rc.curAddr, rc.onReplica = c, addr, true
		return
	}
}

// Get reads key through the current target, re-routing on failure: a dead
// or refusing target (a replica mid-teardown, a just-fenced primary) costs
// one reconnect sweep, and only if no node at all serves does the error
// surface.
func (rc *ReadClient) Get(key string) (runtime.Outcome[int], error) {
	rc.maybeRoute()
	if rc.cur == nil {
		if err := rc.reconnect(); err != nil {
			return runtime.Outcome[int]{}, err
		}
	}
	out, err := rc.cur.Get(key)
	if err == nil {
		return out, nil
	}
	if rc.onReplica {
		rc.fallbacks++
	}
	if rerr := rc.reconnect(); rerr != nil {
		return runtime.Outcome[int]{}, err
	}
	return rc.cur.Get(key)
}

// OnReplica reports whether reads are currently served by a replica.
func (rc *ReadClient) OnReplica() bool { return rc.onReplica }

// Target returns the address of the current read target.
func (rc *ReadClient) Target() string { return rc.curAddr }

// Fallbacks returns how many times the router abandoned a replica for the
// primary (connect failure, call failure, or staleness bound exceeded).
func (rc *ReadClient) Fallbacks() uint64 { return rc.fallbacks }

// Close tears down the read session and the primary probe.
func (rc *ReadClient) Close() error {
	if rc.probe != nil {
		rc.probe.Close() //nolint:errcheck
		rc.probe = nil
	}
	if rc.cur != nil {
		err := rc.cur.Close()
		rc.cur = nil
		return err
	}
	return nil
}
