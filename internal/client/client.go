// Package client is the Go client for the detectable KV server
// (internal/server). It keeps detectability end-to-end across connection
// loss: every request carries a session-scoped request ID, and when the
// connection drops mid-call the client transparently reconnects, resumes
// its session and re-issues the same request ID — receiving the original
// persisted verdict if the server already executed the request, or a fresh
// execution if it never arrived. Either way the operation takes effect at
// most once and the caller gets a definite detectable outcome.
//
// KillConn and KillAfterNextSend are chaos hooks: tests and the load
// generator use them to sever the TCP connection at the worst moments and
// assert that resumption preserves exactly-once semantics.
package client

import (
	"bufio"
	"fmt"
	"math/rand/v2"
	"net"
	"time"

	"detectable/internal/runtime"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

// WireError is a protocol-level error reply from the server.
type WireError struct {
	Code byte
	Msg  string
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("server: %s: %s", server.ErrName(e.Code), e.Msg)
}

// Client is one session against a detectable KV server. A Client is one
// process of the store's N-process model (observer clients excepted) and
// is therefore NOT safe for concurrent use: one operation at a time, the
// per-process rule of the paper.
type Client struct {
	// addrs is the failover set: connect tries them round-robin starting
	// at addrIdx, and a successful handshake pins addrIdx so the session
	// sticks to the address that accepted it until it stops being primary.
	// addrs[:nprimary] are primary candidates; the rest are known replicas,
	// tried only after every primary refused — promotion candidates, never
	// preferred targets (DialFailoverWithReplicas).
	addrs    []string
	addrIdx  int
	nprimary int
	observer bool
	readonly bool

	// redial policy for transparent resumption. redialWait is the CAP of
	// the capped-exponential backoff, not a fixed sleep.
	maxRedials int
	redialWait time.Duration

	// callTimeout, when set, bounds every reply read (and redial) so a
	// dead-but-listening server surfaces as an error instead of blocking
	// the call forever. Off by default.
	callTimeout time.Duration

	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	session uint64
	pid     int
	nextID  uint64

	// enc is the per-session request-encoding scratch and readBuf the
	// grow-only reply buffer: one operation in flight at a time (the
	// per-process rule), so both are reused for every call and the framing
	// path allocates nothing in steady state.
	enc     []byte
	readBuf []byte

	resumes  uint64
	killNext bool
}

// Dial opens a new session against addr, leasing one process slot.
func Dial(addr string) (*Client, error) { return dial([]string{addr}, false) }

// DialFailover opens a session against the first address in addrs that
// accepts it as primary. On later connection loss — or an ErrNotPrimary
// rejection after a demotion — the redial loop rotates through the
// remaining addresses, so a resumed session lands on the promoted replica
// and replays its outcome window there.
func DialFailover(addrs []string) (*Client, error) { return dial(addrs, false) }

// DialFailoverWithReplicas opens a session like DialFailover, but marks
// the second address set as known replicas: connect prefers the primary
// addresses and tries replicas only after every primary refused, so a
// mutation is never rotated onto a warm standby (guaranteed ErrNotPrimary)
// while a primary is reachable — replicas are promotion candidates only.
func DialFailoverWithReplicas(primaries, replicas []string) (*Client, error) {
	addrs := make([]string, 0, len(primaries)+len(replicas))
	addrs = append(addrs, primaries...)
	addrs = append(addrs, replicas...)
	c, err := dialOpts(addrs, false, false, len(primaries))
	if err != nil {
		return nil, err
	}
	return c, nil
}

// DialObserver opens a slot-less observer session: it may only issue
// CrashShard, Stats, ServerStats, Promote and Close. Storm drivers and
// stats pollers use it so they do not occupy a process identity.
func DialObserver(addr string) (*Client, error) { return dial([]string{addr}, true) }

// DialReadOnly opens a slot-less GET-only session (HelloFlagReadOnly): it
// may issue Get, MultiGet, ServerStats, Promote and Close, and is the one
// session kind a warm standby accepts — reads are served from the
// replica's barrier-consistent applied state, bounded-stale but never
// phantom. Mutation methods fail locally. DialReadPreference builds the
// replica-preferring, staleness-bounded router on top of this.
func DialReadOnly(addr string) (*Client, error) {
	return dialOpts([]string{addr}, false, true, 1)
}

func dial(addrs []string, observer bool) (*Client, error) {
	return dialOpts(addrs, observer, false, len(addrs))
}

func dialOpts(addrs []string, observer, readonly bool, nprimary int) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("client: no addresses to dial")
	}
	c := &Client{
		addrs: addrs, nprimary: nprimary, observer: observer, readonly: readonly,
		maxRedials: 8, redialWait: 50 * time.Millisecond,
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect performs the HELLO handshake against each address in the
// failover set and pins the first that accepts. A standby's ErrNotPrimary
// moves on to the next address; any other protocol rejection is fatal
// (another address cannot make a malformed or unknown session valid).
//
// Sweep order: the primary block first, then the replica block, each
// rotated to start from the last address that worked when it lies in that
// block. Replica addresses are promotion candidates only — while any
// primary accepts, a session (and above all a mutation) never lands on a
// standby just to hear a guaranteed ErrNotPrimary — but after a failover
// the promoted replica still answers the sweep's tail.
func (c *Client) connect() error {
	var lastErr error
	try := func(idx int) (ok, fatal bool, err error) {
		err = c.connectTo(c.addrs[idx])
		if err == nil {
			c.addrIdx = idx
			return true, false, nil
		}
		if we, isWire := err.(*WireError); isWire && we.Code != server.ErrNotPrimary {
			return false, true, err
		}
		return false, false, err
	}
	np := c.nprimary
	if np <= 0 || np > len(c.addrs) {
		np = len(c.addrs)
	}
	for i := 0; i < np; i++ {
		idx := i
		if c.addrIdx < np {
			idx = (c.addrIdx + i) % np
		}
		ok, fatal, err := try(idx)
		if ok {
			return nil
		}
		if fatal {
			return err
		}
		lastErr = err
	}
	for i := 0; i < len(c.addrs)-np; i++ {
		idx := np + i
		if c.addrIdx >= np {
			idx = np + (c.addrIdx-np+i)%(len(c.addrs)-np)
		}
		ok, fatal, err := try(idx)
		if ok {
			return nil
		}
		if fatal {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// nextAddr rotates the failover cursor, so the next connect attempt
// starts at a different address.
func (c *Client) nextAddr() {
	if len(c.addrs) > 1 {
		c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
	}
}

// connectTo dials one address and runs the HELLO handshake, opening the
// session on first use and resuming it afterwards.
func (c *Client) connectTo(addr string) error {
	d := net.Dialer{Timeout: c.callTimeout} // zero: no dial bound, as before
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return err
	}
	var flags byte
	if c.observer {
		flags |= server.HelloFlagObserver
	}
	if c.readonly {
		flags |= server.HelloFlagReadOnly
	}
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	// Freshly encoded on purpose: connect runs inside call's resume loop,
	// where the pending request still aliases the c.enc scratch.
	if err := server.WriteFrame(bw, server.EncodeHello(c.session, flags)); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	if c.callTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(c.callTimeout))
	}
	payload, err := server.ReadFrameInto(br, &c.readBuf)
	if err != nil {
		conn.Close()
		return err
	}
	if c.callTimeout > 0 {
		conn.SetReadDeadline(time.Time{})
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		conn.Close()
		return &WireError{Code: code, Msg: r.Key()} // error body is u16-length text, same shape as a key
	}
	sid := r.U64()
	pid := int(int32(r.U32()))
	resumed := r.U8() == 1
	if r.Err {
		conn.Close()
		return fmt.Errorf("client: malformed HELLO reply")
	}
	if resumed {
		c.resumes++
	}
	c.session, c.pid = sid, pid
	c.conn, c.br, c.bw = conn, br, bw
	return nil
}

// SetRedialPolicy overrides how hard a call tries to resume after a lost
// connection: up to maxRedials reconnect attempts, with jittered
// exponential backoff capped at wait between them. The default (8 × 50ms
// cap) rides out connection kills; drivers that must survive a
// whole-process server restart or a failover promotion (loadgen
// -restart-storm / -failover-storm) raise it to cover that latency.
func (c *Client) SetRedialPolicy(maxRedials int, wait time.Duration) {
	if maxRedials > 0 {
		c.maxRedials = maxRedials
	}
	if wait > 0 {
		c.redialWait = wait
	}
}

// SetCallTimeout bounds every reply read (and every redial's dial and
// handshake) by d, so a dead-but-listening server — the socket accepts
// but nothing ever answers — turns into a timeout error and the redial
// loop can fail over instead of blocking forever. Zero disables the
// bound (the default): an idle healthy call may legitimately wait as
// long as the server takes.
func (c *Client) SetCallTimeout(d time.Duration) { c.callTimeout = d }

// backoff returns the pre-attempt sleep for redial attempt n ≥ 1: an
// exponential ramp from redialWait/8 capped at redialWait, jittered into
// [d/2, d] so a fleet of clients severed by the same crash does not
// reconnect in lockstep.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.redialWait / 8
	if d < time.Millisecond {
		d = time.Millisecond
	}
	for i := 1; i < attempt && d < c.redialWait; i++ {
		d *= 2
	}
	if d > c.redialWait {
		d = c.redialWait
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// readReply reads one reply frame, bounded by the call timeout when set.
func (c *Client) readReply() ([]byte, error) {
	if c.callTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.callTimeout))
	}
	payload, err := server.ReadFrameInto(c.br, &c.readBuf)
	if err == nil && c.callTimeout > 0 {
		c.conn.SetReadDeadline(time.Time{})
	}
	return payload, err
}

// SessionID returns the server-assigned session ID.
func (c *Client) SessionID() uint64 { return c.session }

// PID returns the leased process slot (-1 for observer sessions).
func (c *Client) PID() int { return c.pid }

// Resumes returns how many times the session was resumed after a lost
// connection.
func (c *Client) Resumes() uint64 { return c.resumes }

// KillConn severs the TCP connection immediately. The session survives on
// the server; the next call transparently reconnects and resumes.
func (c *Client) KillConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.br, c.bw = nil, nil, nil
	}
}

// KillAfterNextSend arms a one-shot chaos hook: the next request is
// written in full and the connection is then severed before the reply is
// read, forcing the resume path to recover the persisted verdict of an
// operation the server (most likely) executed.
func (c *Client) KillAfterNextSend() { c.killNext = true }

// checkKey rejects keys the wire's u16 length prefix cannot carry, before
// an unchecked cast would silently desync the frame.
func checkKey(key string) error {
	if len(key) > server.MaxKey {
		return fmt.Errorf("client: key of %d bytes exceeds the %d-byte wire limit", len(key), server.MaxKey)
	}
	return nil
}

// checkBatch rejects batches the server would refuse or the framing
// cannot carry.
func checkBatch(n int) error {
	if n > server.MaxBatch {
		return fmt.Errorf("client: batch of %d exceeds the server's %d-entry limit", n, server.MaxBatch)
	}
	return nil
}

// call sends one pre-encoded request and returns the reply payload,
// transparently reconnecting, resuming the session and re-issuing the
// same bytes (same request ID) on connection failure. An ErrNotPrimary
// reply — the node was demoted under this session — rotates to the next
// failover address and retries there. Retries back off exponentially
// (jittered, capped at the redial wait) BEFORE each attempt, so a failed
// final attempt returns immediately instead of sleeping one last time.
func (c *Client) call(req []byte) ([]byte, error) {
	if len(req) > server.MaxFrame {
		// Deterministic local failure: redialing cannot shrink the frame.
		return nil, fmt.Errorf("client: request of %d bytes exceeds the %d-byte frame limit", len(req), server.MaxFrame)
	}
	var lastErr error
	for attempt := 0; attempt <= c.maxRedials; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				if we, ok := err.(*WireError); ok && we.Code != server.ErrNotPrimary {
					return nil, err // protocol rejection: retrying cannot help
				}
				// ErrNotPrimary is retryable: a standby not yet promoted.
				lastErr = err
				continue
			}
		}
		err := server.WriteFrame(c.bw, req)
		if err == nil {
			err = c.bw.Flush()
		}
		if err == nil {
			if c.killNext {
				c.killNext = false
				c.conn.Close() // reply is lost; the resume path below recovers it
			}
			var payload []byte
			if payload, err = c.readReply(); err == nil {
				if len(payload) > 0 && payload[0] == server.ErrNotPrimary {
					// Demoted (fenced) under us: fail over and re-issue.
					r := server.NewReader(payload)
					r.U8()
					lastErr = &WireError{Code: server.ErrNotPrimary, Msg: r.Key()}
					c.nextAddr()
					c.KillConn()
					continue
				}
				return payload, nil
			}
		}
		c.KillConn()
		lastErr = err
	}
	return nil, fmt.Errorf("client: request not resumable after %d redials: %w", c.maxRedials, lastErr)
}

// callOutcome runs a single-operation request and decodes its verdict.
func (c *Client) callOutcome(req []byte) (runtime.Outcome[int], error) {
	payload, err := c.call(req)
	if err != nil {
		return runtime.Outcome[int]{}, err
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return runtime.Outcome[int]{}, &WireError{Code: code, Msg: r.Key()}
	}
	out := r.Outcome()
	if r.Err || r.Rest() != 0 {
		return runtime.Outcome[int]{}, fmt.Errorf("client: malformed outcome reply")
	}
	return out, nil
}

// id reserves the next request ID.
func (c *Client) id() uint64 {
	c.nextID++
	return c.nextID
}

// planOf resolves the optional planned-crash step argument.
func planOf(plan []uint32) uint32 {
	if len(plan) == 0 {
		return 0
	}
	if len(plan) > 1 {
		panic("client: at most one planned-crash step per call")
	}
	return plan[0]
}

// Get reads key and returns its detectable outcome. An optional plan step
// p > 0 makes the server inject one crash before the operation's p-th
// primitive step (the wire form of nvm.CrashAtStep).
func (c *Client) Get(key string, plan ...uint32) (runtime.Outcome[int], error) {
	if err := checkKey(key); err != nil {
		return runtime.Outcome[int]{}, err
	}
	c.enc = server.AppendGet(c.enc[:0], c.id(), planOf(plan), key)
	return c.callOutcome(c.enc)
}

// errReadOnly is the local refusal for mutations on a read-only session:
// failing before any bytes leave means a GET-only client never rotates a
// doomed mutation through its failover set burning redial budget on
// guaranteed rejections.
func (c *Client) errReadOnly() error {
	if !c.readonly {
		return nil
	}
	return fmt.Errorf("client: mutation on a read-only session")
}

// Put writes key := val and returns its detectable outcome.
func (c *Client) Put(key string, val int, plan ...uint32) (runtime.Outcome[int], error) {
	if err := c.errReadOnly(); err != nil {
		return runtime.Outcome[int]{}, err
	}
	if err := checkKey(key); err != nil {
		return runtime.Outcome[int]{}, err
	}
	c.enc = server.AppendPut(c.enc[:0], c.id(), planOf(plan), key, val)
	return c.callOutcome(c.enc)
}

// Del removes key and returns its detectable outcome.
func (c *Client) Del(key string, plan ...uint32) (runtime.Outcome[int], error) {
	if err := c.errReadOnly(); err != nil {
		return runtime.Outcome[int]{}, err
	}
	if err := checkKey(key); err != nil {
		return runtime.Outcome[int]{}, err
	}
	c.enc = server.AppendDel(c.enc[:0], c.id(), planOf(plan), key)
	return c.callOutcome(c.enc)
}

// ReissueLast re-sends the most recent Get/Put/Del request byte-for-byte
// — same session, same request ID — and returns its outcome. By the
// resume semantics (docs/PROTOCOL.md) the server must replay the
// original verdict from the session's outcome window, never re-execute;
// after a failover this is the recovered window of the promoted replica.
// A chaos/verification hook, like KillConn: the failover storm uses it
// to prove a verdict was served from a replica's recovered state. Only
// valid while no newer request has been encoded.
func (c *Client) ReissueLast() (runtime.Outcome[int], error) {
	if len(c.enc) == 0 || (c.enc[0] != server.OpGet && c.enc[0] != server.OpPut && c.enc[0] != server.OpDel) {
		return runtime.Outcome[int]{}, fmt.Errorf("client: no single-key request to reissue")
	}
	return c.callOutcome(c.enc)
}

// GetRetry re-invokes Get (fresh request IDs) until the read linearizes,
// returning the value — the client-side NRL transformation.
func (c *Client) GetRetry(key string) (int, error) {
	for {
		out, err := c.Get(key)
		if err != nil {
			return 0, err
		}
		if out.Status.Linearized() {
			return out.Resp, nil
		}
	}
}

// PutRetry re-invokes Put until the write linearizes, returning the number
// of invocations spent.
func (c *Client) PutRetry(key string, val int) (int, error) {
	for n := 1; ; n++ {
		out, err := c.Put(key, val)
		if err != nil {
			return n, err
		}
		if out.Status.Linearized() {
			return n, nil
		}
	}
}

// decodeOutcomes decodes a batched reply.
func decodeOutcomes(payload []byte) ([]runtime.Outcome[int], error) {
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return nil, &WireError{Code: code, Msg: r.Key()}
	}
	outs := make([]runtime.Outcome[int], int(r.U16()))
	for i := range outs {
		outs[i] = r.Outcome()
	}
	if r.Err || r.Rest() != 0 {
		return nil, fmt.Errorf("client: malformed batch reply")
	}
	return outs, nil
}

// MultiGet reads a batch of keys in one frame; outcomes align with keys.
func (c *Client) MultiGet(keys []string) ([]runtime.Outcome[int], error) {
	if err := checkBatch(len(keys)); err != nil {
		return nil, err
	}
	for _, k := range keys {
		if err := checkKey(k); err != nil {
			return nil, err
		}
	}
	c.enc = server.AppendMGet(c.enc[:0], c.id(), keys)
	payload, err := c.call(c.enc)
	if err != nil {
		return nil, err
	}
	return decodeOutcomes(payload)
}

// MultiPut writes a batch of entries in one frame; outcomes align with
// entries.
func (c *Client) MultiPut(entries []shardkv.KV) ([]runtime.Outcome[int], error) {
	if err := c.errReadOnly(); err != nil {
		return nil, err
	}
	if err := checkBatch(len(entries)); err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := checkKey(e.Key); err != nil {
			return nil, err
		}
	}
	c.enc = server.AppendMPut(c.enc[:0], c.id(), entries)
	payload, err := c.call(c.enc)
	if err != nil {
		return nil, err
	}
	return decodeOutcomes(payload)
}

// PipelinePut issues one PUT frame per entry back-to-back before reading
// any reply, then collects the replies in order — at most server.Window
// entries, the session's outcome-window budget for outstanding requests.
// All frames are encoded into the session scratch and leave in one
// buffered Write; the server coalesces the replies symmetrically. On
// connection loss the unanswered suffix is re-issued after resume, so
// every entry still gets a definite exactly-once verdict.
func (c *Client) PipelinePut(entries []shardkv.KV) ([]runtime.Outcome[int], error) {
	if err := c.errReadOnly(); err != nil {
		return nil, err
	}
	if len(entries) > server.Window {
		return nil, fmt.Errorf("client: pipeline of %d exceeds the %d-request window", len(entries), server.Window)
	}
	c.enc = c.enc[:0]
	offs := make([]int, len(entries)+1)
	for i, e := range entries {
		if err := checkKey(e.Key); err != nil {
			return nil, err
		}
		c.enc = server.AppendPut(c.enc, c.id(), 0, e.Key, e.Val)
		offs[i+1] = len(c.enc)
	}
	outs := make([]runtime.Outcome[int], len(entries))
	done := 0
	for attempt := 0; attempt <= c.maxRedials; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				if we, ok := err.(*WireError); ok && we.Code != server.ErrNotPrimary {
					return nil, err
				}
				continue
			}
		}
		err := func() error {
			for i := done; i < len(entries); i++ {
				if err := server.WriteFrame(c.bw, c.enc[offs[i]:offs[i+1]]); err != nil {
					return err
				}
			}
			if err := c.bw.Flush(); err != nil {
				return err
			}
			for done < len(entries) {
				payload, err := c.readReply()
				if err != nil {
					return err
				}
				r := server.NewReader(payload)
				if code := r.U8(); code != server.StatusOK {
					return &WireError{Code: code, Msg: r.Key()}
				}
				outs[done] = r.Outcome()
				done++
			}
			return nil
		}()
		if err == nil {
			return outs, nil
		}
		if we, ok := err.(*WireError); ok {
			if we.Code != server.ErrNotPrimary {
				return nil, err
			}
			// Demoted mid-pipeline: treat like a lost connection — fail
			// over and re-issue the unanswered suffix from done.
			c.nextAddr()
		}
		c.KillConn()
	}
	return nil, fmt.Errorf("client: pipeline not resumable after %d redials", c.maxRedials)
}

// CrashShard injects a crash into shard i, or into every shard when i < 0
// — the over-the-wire form of shardkv.CrashShard / Crash.
func (c *Client) CrashShard(i int) error {
	shard := server.CrashAllShards
	if i >= 0 {
		shard = uint32(i)
	}
	payload, err := c.call(server.EncodeCrash(c.id(), shard))
	if err != nil {
		return err
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return &WireError{Code: code, Msg: r.Key()}
	}
	return nil
}

// Stats fetches a point-in-time snapshot of every shard's counters.
func (c *Client) Stats() ([]shardkv.StatsSnapshot, error) {
	payload, err := c.call(server.EncodeStats(c.id()))
	if err != nil {
		return nil, err
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return nil, &WireError{Code: code, Msg: r.Key()}
	}
	snaps := make([]shardkv.StatsSnapshot, int(r.U16()))
	for i := range snaps {
		snaps[i] = r.Snapshot()
	}
	if r.Err || r.Rest() != 0 {
		return nil, fmt.Errorf("client: malformed stats reply")
	}
	return snaps, nil
}

// Promote asks the node to become (or confirm itself as) primary,
// returning the generation number it now serves under. On a warm standby
// this installs the replicated state and starts serving; on a node that
// already promoted it is an idempotent no-op; on the original primary it
// fences the node (ErrNotPrimary for every later data op). Admin tools
// issue it over an observer session.
func (c *Client) Promote() (uint64, error) {
	payload, err := c.call(server.EncodePromote(c.id()))
	if err != nil {
		return 0, err
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return 0, &WireError{Code: code, Msg: r.Key()}
	}
	gen := r.U64()
	if r.Err || r.Rest() != 0 {
		return 0, fmt.Errorf("client: malformed PROMOTE reply")
	}
	return gen, nil
}

// ServerStatus is a point-in-time snapshot of a node's replication role
// and progress, served from atomics on any node — primary, standby or
// fenced — so pollers can watch a failover without being rejected.
type ServerStatus struct {
	Role             byte   // server.RolePrimary / RoleStandby / RoleFenced
	Generation       uint64 // fencing generation from the MANIFEST
	RecoveredReplays uint64 // replays served from a recovered outcome window
	ReplSeq          uint64 // last replication barrier sequence staged
	ReplAcked        uint64 // min barrier acked across sync subscribers
	Replicas         uint64 // currently attached replica streams
	// ReplApplied is the node's applied mark: on a standby, the primary
	// barrier sequence its read view has applied through; on a primary,
	// its own ReplSeq (applied ≡ committed). The replication lag a reader
	// risks is primary.ReplSeq − replica.ReplApplied, comparable when both
	// report the same Generation.
	ReplApplied uint64
}

// ServerStats fetches the node's replication status.
func (c *Client) ServerStats() (ServerStatus, error) {
	payload, err := c.call(server.EncodeServerStats(c.id()))
	if err != nil {
		return ServerStatus{}, err
	}
	r := server.NewReader(payload)
	if code := r.U8(); code != server.StatusOK {
		return ServerStatus{}, &WireError{Code: code, Msg: r.Key()}
	}
	st := ServerStatus{Role: r.U8()}
	st.Generation = r.U64()
	st.RecoveredReplays = r.U64()
	st.ReplSeq = r.U64()
	st.ReplAcked = r.U64()
	st.Replicas = r.U64()
	st.ReplApplied = r.U64()
	if r.Err || r.Rest() != 0 {
		return ServerStatus{}, fmt.Errorf("client: malformed SERVER-STATS reply")
	}
	return st, nil
}

// Close ends the session (releasing its process slot server-side) and
// closes the connection. The session is gone afterwards; the Client must
// not be reused.
func (c *Client) Close() error {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil // session unreachable; nothing left to release cleanly
		}
	}
	_, err := c.call(server.EncodeClose(c.id()))
	c.KillConn()
	if _, ok := err.(*WireError); err != nil && !ok {
		return err
	}
	return nil
}
