package client_test

// Read-preference routing (readpref.go): reads ride the replica while it
// is fresh, a stalled replication tap trips the MaxLag bound and the
// router falls back to the primary, and DialFailoverWithReplicas treats
// replica addresses strictly as promotion candidates.

import (
	"testing"
	"time"

	"detectable/internal/client"
	"detectable/internal/durable"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

// startDurablePrimary brings up a journal-backed primary on a loopback
// port, the only kind a standby can subscribe to.
func startDurablePrimary(t *testing.T) (*server.Server, *durable.DB) {
	t.Helper()
	db, err := durable.Open(t.TempDir(), 2, 2, server.Window)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	store := shardkv.New(2, 2, shardkv.Durable(db))
	srv := server.New(store)
	if err := srv.AttachDurable(db); err != nil {
		t.Fatalf("AttachDurable: %v", err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close() //nolint:errcheck
	})
	return srv, db
}

// startReplica attaches a standby read replica to primaryAddr and waits
// until the primary reports it fully acked.
func startReplica(t *testing.T, primaryAddr string, pdb *durable.DB) *server.Server {
	t.Helper()
	db, err := durable.Open(t.TempDir(), 2, 2, server.Window)
	if err != nil {
		t.Fatalf("replica durable.Open: %v", err)
	}
	srv := server.NewStandby(db, func() *shardkv.Store {
		return shardkv.New(2, 2, shardkv.Durable(db))
	})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("replica listen: %v", err)
	}
	if err := srv.StartReplication(primaryAddr); err != nil {
		t.Fatalf("StartReplication: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		db.Close() //nolint:errcheck
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		seq, acked, subs := pdb.ReplStatus()
		if subs >= 1 && seq >= 1 && acked >= seq {
			return srv
		}
		time.Sleep(5 * time.Millisecond)
	}
	seq, acked, subs := pdb.ReplStatus()
	t.Fatalf("replica never synced: seq=%d acked=%d subs=%d", seq, acked, subs)
	return nil
}

// TestReadPreferenceStalledTapTripsMaxLag: a healthy replica serves the
// reads; when its replication tap stalls while the primary keeps
// committing, the applied mark freezes, the lag bound trips, and the
// router falls back to the primary — the bounded-staleness contract made
// operational.
func TestReadPreferenceStalledTapTripsMaxLag(t *testing.T) {
	psrv, pdb := startDurablePrimary(t)
	paddr := psrv.Addr().String()
	rsrv := startReplica(t, paddr, pdb)
	raddr := rsrv.Addr().String()

	w, err := client.Dial(paddr)
	if err != nil {
		t.Fatalf("dial primary: %v", err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		if _, err := w.Put("warm", i+1); err != nil {
			t.Fatalf("warm put: %v", err)
		}
	}

	rc, err := client.DialReadPreference(
		[]string{paddr}, []string{raddr},
		client.WithMaxLag(2), client.WithLagInterval(10*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("DialReadPreference: %v", err)
	}
	defer rc.Close()
	if !rc.OnReplica() || rc.Target() != raddr {
		t.Fatalf("fresh replica not preferred: onReplica=%v target=%s", rc.OnReplica(), rc.Target())
	}
	if out, err := rc.Get("warm"); err != nil || out.Resp != 4 {
		t.Fatalf("replica Get warm = %v/%v, want 4", out, err)
	}

	// Stall the tap: the replica stops pulling barriers, so its applied
	// mark freezes while the primary's committed seq keeps advancing.
	rsrv.StopReplication()
	for i := 0; i < 8; i++ { // 8 barriers >> MaxLag 2
		if _, err := w.Put("ahead", i+1); err != nil {
			t.Fatalf("post-stall put: %v", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for rc.OnReplica() && time.Now().Before(deadline) {
		if _, err := rc.Get("warm"); err != nil {
			t.Fatalf("Get during fallback window: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rc.OnReplica() {
		t.Fatal("router never fell back from the stalled replica")
	}
	if rc.Target() != paddr {
		t.Fatalf("fallback target %s, want the primary %s", rc.Target(), paddr)
	}
	if rc.Fallbacks() == 0 {
		t.Fatal("fallback not counted")
	}
	// On the primary the read must be current, not bounded-stale.
	if out, err := rc.Get("ahead"); err != nil || out.Resp != 8 {
		t.Fatalf("primary Get ahead = %v/%v, want 8", out, err)
	}
}

// TestDialFailoverWithReplicasPrefersPrimaryBlock: with both blocks alive,
// writes land on the primary-block node; replica addresses are promotion
// candidates only, reached when every primary address is gone.
func TestDialFailoverWithReplicasPrefersPrimaryBlock(t *testing.T) {
	srvA, storeA := startServer(t, 2, 1)
	srvB, storeB := startServer(t, 2, 1)

	c, err := client.DialFailoverWithReplicas(
		[]string{srvA.Addr().String()}, []string{srvB.Addr().String()},
	)
	if err != nil {
		t.Fatalf("DialFailoverWithReplicas: %v", err)
	}
	defer c.Close()
	if _, err := c.Put("k", 1); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if storeA.Peek("k") != 1 || storeB.Peek("k") != 0 {
		t.Fatalf("write landed on the replica block: A=%d B=%d", storeA.Peek("k"), storeB.Peek("k"))
	}

	// Primary block gone: the dial sweeps past the dead primary address
	// into the replica block, where the (promoted, here: standalone) node
	// admits the session.
	srvA.Close()
	c2, err := client.DialFailoverWithReplicas(
		[]string{srvA.Addr().String()}, []string{srvB.Addr().String()},
	)
	if err != nil {
		t.Fatalf("DialFailoverWithReplicas after primary loss: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Put("k", 2); err != nil {
		t.Fatalf("Put after primary loss: %v", err)
	}
	if storeB.Peek("k") != 2 {
		t.Fatalf("replica-block node holds %d, want 2", storeB.Peek("k"))
	}
}

// TestReadOnlyClientRefusesMutations: the GET-only session kind is
// enforced client-side too — no mutation ever leaves a read-only client.
func TestReadOnlyClientRefusesMutations(t *testing.T) {
	srv, _ := startServer(t, 2, 1)
	w, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer w.Close()
	if _, err := w.Put("k", 9); err != nil {
		t.Fatalf("seed Put: %v", err)
	}

	c, err := client.DialReadOnly(srv.Addr().String())
	if err != nil {
		t.Fatalf("DialReadOnly: %v", err)
	}
	defer c.Close()
	if out, err := c.Get("k"); err != nil || out.Resp != 9 {
		t.Fatalf("read-only Get = %v/%v, want 9", out, err)
	}
	if _, err := c.Put("k", 1); err == nil {
		t.Fatal("read-only Put did not error")
	}
	if _, err := c.Del("k"); err == nil {
		t.Fatal("read-only Del did not error")
	}
}
