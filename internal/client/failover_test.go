package client_test

// PR 9 client-side fixes: the redial loop's backoff (capped exponential
// with jitter, no trailing sleep), the per-call timeout that turns a
// dead-but-listening server into an error instead of a hang, and
// multi-address failover dialing.

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"detectable/internal/client"
	"detectable/internal/server"
)

// deadAddr returns an address that refuses connections: bound once to
// reserve it, then released.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRedialBackoffWallClock pins the redial loop's timing contract: with
// maxRedials=4 and an 80ms cap, the pre-attempt sleeps ramp 10→20→40→80ms
// (each jittered into [d/2, d]), so the whole failed call costs at most
// 150ms of sleep and there is NO sleep after the final attempt. The old
// loop slept a fixed 50ms after every attempt including the last — 250ms
// minimum — so finishing under 240ms proves both halves of the fix.
func TestRedialBackoffWallClock(t *testing.T) {
	srv, _ := startServer(t, 2, 1)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.SetRedialPolicy(4, 80*time.Millisecond)
	srv.Close()
	c.KillConn()

	start := time.Now()
	_, err = c.Put("k", 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Put against a closed server succeeded")
	}
	if elapsed < 50*time.Millisecond {
		t.Fatalf("call failed in %v: the redial loop is not backing off", elapsed)
	}
	if elapsed > 240*time.Millisecond {
		t.Fatalf("call took %v; capped backoff without a trailing sleep should stay under 240ms", elapsed)
	}
}

// blackholeServer accepts connections and answers the HELLO handshake,
// then swallows every request without ever replying — the
// dead-but-listening failure mode (a wedged server, a partition that
// still completes TCP handshakes).
func blackholeServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, err := server.ReadFrame(conn); err != nil {
					return
				}
				reply := []byte{server.StatusOK}
				reply = binary.BigEndian.AppendUint64(reply, 7) // sid
				reply = binary.BigEndian.AppendUint32(reply, 0) // pid
				reply = append(reply, 0)                        // not resumed
				if err := server.WriteFrame(conn, reply); err != nil {
					return
				}
				io.Copy(io.Discard, conn) //nolint:errcheck — drain until the client gives up
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestCallTimeoutBoundsDeadButListeningServer pins the S2 fix: without a
// call timeout, a server that accepts and handshakes but never answers
// wedges the call forever; with SetCallTimeout every reply read (and
// every redial handshake) is bounded, so the call fails in bounded wall
// time.
func TestCallTimeoutBoundsDeadButListeningServer(t *testing.T) {
	addr := blackholeServer(t)
	c, err := client.Dial(addr) // handshake succeeds: the server looks alive
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.SetCallTimeout(100 * time.Millisecond)
	c.SetRedialPolicy(2, 20*time.Millisecond)

	start := time.Now()
	_, err = c.Put("k", 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Put against a silent server succeeded")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("call took %v; the call timeout is not bounding dead reads", elapsed)
	}
}

// TestDialFailoverSkipsDeadAddress: the failover set may lead with a dead
// node; the dial rotates to the live one and the session works normally.
func TestDialFailoverSkipsDeadAddress(t *testing.T) {
	srv, store := startServer(t, 2, 1)
	c, err := client.DialFailover([]string{deadAddr(t), srv.Addr().String()})
	if err != nil {
		t.Fatalf("DialFailover: %v", err)
	}
	defer c.Close()
	out, err := c.Put("k", 42)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !out.Status.Linearized() {
		t.Fatalf("Put verdict %v, want linearized", out.Status)
	}
	if got := store.Peek("k"); got != 42 {
		t.Fatalf("store holds %d, want 42", got)
	}
}
