package client_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/client"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

func startServer(t *testing.T, shards, procs int) (*server.Server, *shardkv.Store) {
	t.Helper()
	store := shardkv.New(shards, procs)
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store
}

// TestTransparentResume exercises both chaos hooks: a connection severed
// between operations and one severed after the request is sent. Every call
// still returns a definite verdict and no write is lost or duplicated.
func TestTransparentResume(t *testing.T) {
	srv, store := startServer(t, 2, 1)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	c.KillConn()
	if out, err := c.Put("a", 1); err != nil || !out.Status.Linearized() {
		t.Fatalf("put after idle kill: %v %+v", err, out)
	}

	c.KillAfterNextSend()
	out, err := c.Put("a", 2)
	if err != nil || !out.Status.Linearized() {
		t.Fatalf("put with reply lost: %v %+v", err, out)
	}
	if got := store.Peek("a"); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
	if puts := store.TotalStats().Puts; puts != 2 {
		t.Fatalf("put executions = %d, want 2 (kill must not duplicate)", puts)
	}
	if c.Resumes() < 2 {
		t.Fatalf("resumes = %d, want ≥ 2", c.Resumes())
	}
	if got, err := c.GetRetry("a"); err != nil || got != 2 {
		t.Fatalf("get retry: %v %d", err, got)
	}
}

// TestPipelinePutSurvivesKill issues a full window of pipelined writes with
// the connection severed mid-pipeline: every entry must still get a
// definite exactly-once verdict.
func TestPipelinePutSurvivesKill(t *testing.T) {
	srv, store := startServer(t, 4, 1)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	entries := make([]shardkv.KV, server.Window)
	for i := range entries {
		entries[i] = shardkv.KV{Key: fmt.Sprintf("p-%d", i), Val: i + 100}
	}
	c.KillAfterNextSend() // severed after the first frame of the pipeline
	outs, err := c.PipelinePut(entries)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	for i, out := range outs {
		if !out.Status.Linearized() {
			t.Fatalf("entry %d verdict %v, want linearized", i, out.Status)
		}
		if got := store.Peek(entries[i].Key); got != entries[i].Val {
			t.Fatalf("entry %d: store holds %d, want %d", i, got, entries[i].Val)
		}
	}
	if puts := store.TotalStats().Puts; puts != uint64(len(entries)) {
		t.Fatalf("put executions = %d, want %d exactly-once", puts, len(entries))
	}

	// One entry past the window budget is a client-side error, not a
	// silent loss of resumability.
	if _, err := c.PipelinePut(make([]shardkv.KV, server.Window+1)); err == nil {
		t.Fatal("oversized pipeline accepted")
	}
}

// TestRaceStressWire drives concurrent sessions, an observer crash storm
// and connection kills through one server under the race detector.
func TestRaceStressWire(t *testing.T) {
	const workers = 4
	srv, _ := startServer(t, 4, workers)
	addr := srv.Addr().String()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		obs, err := client.DialObserver(addr)
		if err != nil {
			return
		}
		defer obs.Close()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := obs.CrashShard(rng.Intn(4)); err != nil {
				return
			}
			if i%10 == 0 {
				if _, err := obs.Stats(); err != nil {
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 120; i++ {
				key := fmt.Sprintf("w%d-%d", w, rng.Intn(8))
				if rng.Intn(16) == 0 {
					c.KillConn()
				}
				if rng.Intn(16) == 0 {
					c.KillAfterNextSend()
				}
				var plan []uint32
				if rng.Intn(6) == 0 {
					plan = []uint32{uint32(1 + rng.Intn(12))}
				}
				switch rng.Intn(4) {
				case 0:
					_, err = c.Get(key, plan...)
				case 1:
					_, err = c.Del(key, plan...)
				case 2:
					_, err = c.MultiPut([]shardkv.KV{{Key: key, Val: i}, {Key: key + "x", Val: i}})
				default:
					_, err = c.Put(key, i, plan...)
				}
				if err != nil {
					errs[w] = fmt.Errorf("op %d: %w", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	storm.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
