package queue

// Mutant selects a seeded detectability bug. The mutation smoke-check in
// internal/explore enables one, asserts the schedule explorer produces a
// counterexample, and restores MutantNone — validating that the checker
// catches real protocol violations. Production code never sets a mutant.
type Mutant int

// Seeded bugs.
const (
	// MutantNone is the unmutated algorithm.
	MutantNone Mutant = iota
	// MutantDropDeqTargetPersist skips the persist of deqTarget[p] before a
	// dequeue claims its node. A crash after the claim CAS then leaves
	// recovery with no announced target, so it returns fail for a dequeue
	// that removed a value — the value is lost, which a subsequent dequeue
	// exposes as an unexplainable Empty.
	MutantDropDeqTargetPersist
)

// mutant is read on the operation path; it is written only by tests, before
// any operation runs (the write happens-before the goroutines that read it).
var mutant Mutant

// SetMutant installs m until the next call. Tests must restore MutantNone.
func SetMutant(m Mutant) { mutant = m }
