// Package queue implements a detectable durable FIFO queue in the spirit of
// Friedman, Herlihy, Marathe and Petrank (PPoPP 2018): a Michael-Scott
// linked queue living in simulated NVM, augmented so that the recovery
// function of a crashed enqueue or dequeue can always tell whether the
// operation was linearized.
//
//   - Enqueue detectability: the operation persists the freshly allocated
//     node's identity before attempting to link it; node identities are
//     unique per invocation, and removed nodes stay reachable through their
//     next pointers, so recovery just checks whether the node is in the
//     chain.
//   - Dequeue detectability: a dequeuer claims the head node by CASing a
//     ⟨pid, opSeq⟩ pair into the node's deqBy field before swinging the
//     head pointer; opSeq is a per-process operation counter persisted at
//     the start of each dequeue. Recovery compares the claim in the last
//     targeted node against its own ⟨pid, opSeq⟩.
//
// The per-operation sequence numbers and announced node pointers are
// auxiliary state — exactly what Theorem 2 proves unavoidable for a
// detectable FIFO queue (Lemma 8 shows queues are doubly-perturbing). They
// also make the queue's space complexity unbounded in the number of
// operations, matching footnote 1 of the paper about the durable queue of
// Friedman et al.
package queue

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// claim identifies the dequeue operation instance that removed a node.
type claim struct {
	Set bool
	P   int
	Seq uint64
}

// node is one queue cell in simulated NVM. Nodes are never unlinked: the
// next chain from the original sentinel stays intact so enqueue recovery
// can scan it.
type node struct {
	val   int
	next  nvm.CASRegister[*node]
	deqBy nvm.CASRegister[claim]
}

// Queue is an N-process detectable durable FIFO queue of integers.
type Queue struct {
	sys *runtime.System

	head, tail nvm.CASRegister[*node]
	// anchor is the original sentinel; the scan root for enqueue recovery.
	anchor *node

	// enqNode[p] announces the node p's in-flight enqueue is linking.
	enqNode []nvm.CASRegister[*node]
	// deqSeq[p] is p's persisted dequeue-operation counter; deqTarget[p]
	// announces the node p's in-flight dequeue last tried to claim.
	deqSeq    []nvm.CASRegister[uint64]
	deqTarget []nvm.CASRegister[*node]

	eAnn []*runtime.Ann[int]
	dAnn []*runtime.Ann[int]
}

// New allocates an empty queue in sys's memory space.
func New(sys *runtime.System) *Queue {
	sp := sys.Space()
	sentinel := &node{
		next:  nvm.NewWord[*node](sp, nil),
		deqBy: nvm.NewWord(sp, claim{}),
	}
	q := &Queue{
		sys:    sys,
		head:   nvm.NewWord(sp, sentinel),
		tail:   nvm.NewWord(sp, sentinel),
		anchor: sentinel,
	}
	for p := 0; p < sys.N(); p++ {
		q.enqNode = append(q.enqNode, nvm.NewWord[*node](sp, nil))
		q.deqSeq = append(q.deqSeq, nvm.NewWord(sp, uint64(0)))
		q.deqTarget = append(q.deqTarget, nvm.NewWord[*node](sp, nil))
		q.eAnn = append(q.eAnn, runtime.NewAnn[int](sp))
		q.dAnn = append(q.dAnn, runtime.NewAnn[int](sp))
	}
	return q
}

// Enq performs a detectable Enq(v) as process pid.
func (q *Queue) Enq(pid, v int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(q.sys, pid, q.EnqOp(pid, v), plans...)
}

// Deq performs a detectable Deq() as process pid. The response is the
// dequeued value or spec.Empty.
func (q *Queue) Deq(pid int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(q.sys, pid, q.DeqOp(pid), plans...)
}

// EnqOp builds the recoverable Enq instance for pid.
func (q *Queue) EnqOp(pid, v int) runtime.Op[int] {
	ann := q.eAnn[pid]
	sp := q.sys.Space()
	return runtime.Op[int]{
		Desc:     spec.NewOp(spec.MethodEnq, v),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "enq") },
		Body: func(ctx *nvm.Ctx) int {
			n := &node{
				val:   v,
				next:  nvm.NewWord[*node](sp, nil),
				deqBy: nvm.NewWord(sp, claim{}),
			}
			q.enqNode[pid].Store(ctx, n) // persist the node's identity
			ann.SetCP(ctx, 1)
			q.link(ctx, n)
			ann.SetResult(ctx, spec.Ack)
			return spec.Ack
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			if r := ann.Result(ctx); r.Set {
				return spec.Ack, true
			}
			if ann.GetCP(ctx) == 0 {
				return 0, false
			}
			n := q.enqNode[pid].Load(ctx)
			if n == nil || !q.contains(ctx, n) {
				return 0, false // node never linked: not linearized
			}
			ann.SetResult(ctx, spec.Ack)
			return spec.Ack, true
		},
		Encode: runtime.EncodeInt,
	}
}

// link appends n using the Michael-Scott protocol (with tail helping).
func (q *Queue) link(ctx *nvm.Ctx, n *node) {
	for {
		last := q.tail.Load(ctx)
		next := last.next.Load(ctx)
		if next == nil {
			if last.next.CompareAndSwap(ctx, nil, n) { // linearization point
				q.tail.CompareAndSwap(ctx, last, n) // help
				return
			}
			continue
		}
		q.tail.CompareAndSwap(ctx, last, next) // help a stalled enqueue
	}
}

// contains reports whether n is reachable from the original sentinel.
// Removed nodes stay chained, so a linked node is found even after it was
// dequeued.
func (q *Queue) contains(ctx *nvm.Ctx, n *node) bool {
	for cur := q.anchor; cur != nil; cur = cur.next.Load(ctx) {
		if cur == n {
			return true
		}
	}
	return false
}

// DeqOp builds the recoverable Deq instance for pid.
func (q *Queue) DeqOp(pid int) runtime.Op[int] {
	ann := q.dAnn[pid]
	return runtime.Op[int]{
		Desc:     spec.NewOp(spec.MethodDeq),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "deq") },
		Body: func(ctx *nvm.Ctx) int {
			myseq := q.deqSeq[pid].Load(ctx) + 1
			q.deqSeq[pid].Store(ctx, myseq) // persist the fresh op id
			for {
				first := q.head.Load(ctx)
				last := q.tail.Load(ctx)
				next := first.next.Load(ctx)
				if first == last {
					if next == nil { // linearization point for empty
						ann.SetResult(ctx, spec.Empty)
						return spec.Empty
					}
					q.tail.CompareAndSwap(ctx, last, next) // help
					continue
				}
				if mutant != MutantDropDeqTargetPersist {
					q.deqTarget[pid].Store(ctx, next) // persist the target
				}
				ann.SetCP(ctx, 1)
				if next.deqBy.CompareAndSwap(ctx, claim{}, claim{Set: true, P: pid, Seq: myseq}) {
					q.head.CompareAndSwap(ctx, first, next)
					ann.SetResult(ctx, next.val)
					return next.val
				}
				q.head.CompareAndSwap(ctx, first, next) // help remove claimed node
			}
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			if ann.GetCP(ctx) == 0 {
				return 0, false
			}
			n := q.deqTarget[pid].Load(ctx)
			if n == nil {
				return 0, false
			}
			myseq := q.deqSeq[pid].Load(ctx)
			if n.deqBy.Load(ctx) == (claim{Set: true, P: pid, Seq: myseq}) {
				// Our claim landed: the dequeue was linearized.
				ann.SetResult(ctx, n.val)
				return n.val, true
			}
			return 0, false
		},
		Encode: runtime.EncodeInt,
	}
}

// PeekAll returns the queue's current (not yet dequeued) values without a
// Ctx, for tests. Nodes already claimed by a dequeuer are logically removed
// even when the head pointer has not caught up yet, so they are skipped.
func (q *Queue) PeekAll() []int {
	var out []int
	cur := q.head.Peek()
	for n := cur.next.Peek(); n != nil; n = n.next.Peek() {
		if !n.deqBy.Peek().Set {
			out = append(out, n.val)
		}
	}
	return out
}

// Len returns the number of elements currently queued, for tests.
func (q *Queue) Len() int { return len(q.PeekAll()) }
