package queue

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

func checkDL(t *testing.T, sys *runtime.System) linearize.Report {
	t.Helper()
	ok, rep, err := linearize.CheckLog(spec.Queue{}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
	return rep
}

func TestFIFOSequential(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	for _, v := range []int{1, 2, 3} {
		if out := q.Enq(0, v); out.Status != runtime.StatusOK {
			t.Fatalf("enq(%d): %+v", v, out)
		}
	}
	for _, want := range []int{1, 2, 3} {
		out := q.Deq(1)
		if out.Resp != want {
			t.Fatalf("deq = %d, want %d", out.Resp, want)
		}
	}
	if out := q.Deq(1); out.Resp != spec.Empty {
		t.Fatalf("deq on empty = %d, want Empty", out.Resp)
	}
	checkDL(t, sys)
}

func TestEnqCrashBeforeLinkFails(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	// Body: enqNode store(4), CP(5), tail load(6), next load(7), link CAS(8).
	out := q.Enq(0, 7, nvm.CrashAtStep(8))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed (node never linked)", out.Status)
	}
	if q.Len() != 0 {
		t.Fatalf("queue has %d elements after failed enq", q.Len())
	}
	checkDL(t, sys)
}

func TestEnqCrashAfterLinkRecovers(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	// Crash right after the link CAS (before the tail help CAS at step 9).
	out := q.Enq(0, 7, nvm.CrashAtStep(9))
	if out.Status != runtime.StatusRecovered {
		t.Fatalf("status %v, want recovered (node linked)", out.Status)
	}
	if got := q.PeekAll(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("queue = %v, want [7]", got)
	}
	// The tail may be stale; a follow-up enqueue must still succeed.
	if out := q.Enq(1, 8); !out.Status.Linearized() {
		t.Fatalf("follow-up enq: %+v", out)
	}
	if got := q.PeekAll(); !reflect.DeepEqual(got, []int{7, 8}) {
		t.Fatalf("queue = %v, want [7 8]", got)
	}
	checkDL(t, sys)
}

func TestDeqCrashBeforeClaimFails(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	q.Enq(0, 5)
	// Deq body: seq load(4), seq store(5), head(6), tail(7), next(8),
	// target store(9), CP(10), claim CAS(11).
	out := q.Deq(1, nvm.CrashAtStep(11))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	if got := q.PeekAll(); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("queue = %v, want [5] (element must not be lost)", got)
	}
	checkDL(t, sys)
}

func TestDeqCrashAfterClaimRecovers(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	q.Enq(0, 5)
	q.Enq(0, 6)
	// Crash right after the claim CAS (step 12 is the head CAS).
	out := q.Deq(1, nvm.CrashAtStep(12))
	if out.Status != runtime.StatusRecovered || out.Resp != 5 {
		t.Fatalf("outcome %+v, want recovered 5", out)
	}
	// Element 5 must be gone, 6 still present.
	if got := q.PeekAll(); !reflect.DeepEqual(got, []int{6}) {
		t.Fatalf("queue = %v, want [6]", got)
	}
	// Follow-up dequeue gets 6, not 5 again.
	if out := q.Deq(0); out.Resp != 6 {
		t.Fatalf("follow-up deq = %d, want 6", out.Resp)
	}
	checkDL(t, sys)
}

func TestDeqEmptyCrashBeforePersistFails(t *testing.T) {
	sys := runtime.NewSystem(1)
	q := New(sys)
	// Empty path: seq load(4), seq store(5), head(6), tail(7), next(8),
	// result persist(9).
	out := q.Deq(0, nvm.CrashAtStep(9))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	checkDL(t, sys)
}

// TestNoDuplicateDequeueAcrossOps guards the ⟨pid, opSeq⟩ claim: p fails a
// dequeue (crash before claim), then dequeues again successfully; a stale
// pid-only claim scheme would let the recovery of a later op match the
// earlier op's claim.
func TestNoDuplicateDequeueAcrossOps(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	q.Enq(0, 5)
	q.Enq(0, 6)

	// Op 1 by p=1: claims 5, crashes before persisting, recovers to 5.
	out := q.Deq(1, nvm.CrashAtStep(12))
	if out.Status != runtime.StatusRecovered || out.Resp != 5 {
		t.Fatalf("op1 outcome %+v", out)
	}
	// Op 2 by p=1: crash before its claim CAS. Its target is node 6, but a
	// buggy recovery matching on pid alone could also "find" node 5's old
	// claim. The seq in the claim prevents that: verdict must be fail.
	out = q.Deq(1, nvm.CrashAtStep(11))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("op2 status %v, want failed", out.Status)
	}
	if got := q.PeekAll(); !reflect.DeepEqual(got, []int{6}) {
		t.Fatalf("queue = %v, want [6]", got)
	}
	checkDL(t, sys)
}

func TestInterleavedEnqDeq(t *testing.T) {
	sys := runtime.NewSystem(2)
	q := New(sys)
	q.Enq(0, 1)
	if out := q.Deq(1); out.Resp != 1 {
		t.Fatalf("deq = %d", out.Resp)
	}
	q.Enq(1, 2)
	q.Enq(0, 3)
	if out := q.Deq(0); out.Resp != 2 {
		t.Fatalf("deq = %d", out.Resp)
	}
	if out := q.Deq(1); out.Resp != 3 {
		t.Fatalf("deq = %d", out.Resp)
	}
	checkDL(t, sys)
}

// TestRandomSoloCrashes compares against a model queue; failed operations
// must have no effect, recovered ones exactly their effect.
func TestRandomSoloCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		sys := runtime.NewSystem(1)
		q := New(sys)
		var model []int
		next := 1
		for i := 0; i < 6; i++ {
			var plans []nvm.CrashPlan
			if rng.Intn(2) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(12))))
			}
			if rng.Intn(2) == 0 {
				out := q.Enq(0, next, plans...)
				if out.Status.Linearized() {
					model = append(model, next)
				}
				next++
			} else {
				out := q.Deq(0, plans...)
				if out.Status.Linearized() {
					if len(model) == 0 {
						if out.Resp != spec.Empty {
							t.Fatalf("trial %d: deq on empty = %d", trial, out.Resp)
						}
					} else {
						if out.Resp != model[0] {
							t.Fatalf("trial %d: deq = %d, model head %d", trial, out.Resp, model[0])
						}
						model = model[1:]
					}
				}
			}
			got := q.PeekAll()
			want := append([]int(nil), model...)
			if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("trial %d: queue %v, model %v", trial, got, want)
			}
		}
		checkDL(t, sys)
	}
}

func TestConcurrentStressWithStorms(t *testing.T) {
	const procs = 3
	for round := 0; round < 6; round++ {
		sys := runtime.NewSystem(procs)
		q := New(sys)
		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%1000 == 0 {
					sys.Crash()
				}
			}
		}()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*13 + pid)))
				for i := 0; i < 5; i++ {
					if rng.Intn(2) == 0 {
						q.Enq(pid, pid*1000+i+1)
					} else {
						q.Deq(pid)
					}
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkDL(t, sys)
	}
}

// TestExactlyOnceJobProcessing is the motivating application: jobs are
// enqueued once and, thanks to detectability, re-invocation on fail cannot
// duplicate them.
func TestExactlyOnceJobProcessing(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sys := runtime.NewSystem(1)
	q := New(sys)
	const jobs = 25
	for j := 1; j <= jobs; j++ {
		for {
			var plans []nvm.CrashPlan
			if rng.Intn(3) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(10))))
			}
			out := q.Enq(0, j, plans...)
			if out.Status.Linearized() {
				break
			}
		}
	}
	var processed []int
	for {
		var plans []nvm.CrashPlan
		if rng.Intn(3) == 0 {
			plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(12))))
		}
		out := q.Deq(0, plans...)
		if !out.Status.Linearized() {
			continue // fail: safe to retry
		}
		if out.Resp == spec.Empty {
			break
		}
		processed = append(processed, out.Resp)
	}
	want := make([]int, jobs)
	for i := range want {
		want[i] = i + 1
	}
	if !reflect.DeepEqual(processed, want) {
		t.Fatalf("processed %v, want %v (jobs lost or duplicated)", processed, want)
	}
}
