package queue

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// TestRaceStress is a short stress run aimed at the race detector:
// concurrent enqueuers and dequeuers with random crash plans, a crash-storm
// goroutine and a peeker walking the chain without a Ctx, all racing.
func TestRaceStress(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	q := New(sys)

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // crash storm
		defer aux.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				sys.Crash()
			}
		}
	}()
	go func() { // peeker
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = q.Len()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 200; i++ {
				var plan nvm.CrashPlan
				if rng.Intn(5) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(14)))
				}
				if rng.Intn(2) == 0 {
					q.Enq(pid, pid*1000+i, plan)
				} else {
					q.Deq(pid, plan)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}
