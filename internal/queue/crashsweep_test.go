package queue

import (
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// sweepLimit bounds the crash-schedule sweeps: every solo Enq/Deq completes
// in far fewer primitive steps. A sweep fails if the limit is ever reached
// without observing a crash-free run, so the bound can never silently hide
// untested steps.
const sweepLimit = 60

// count returns the number of occurrences of v in vals.
func count(vals []int, v int) int {
	n := 0
	for _, x := range vals {
		if x == v {
			n++
		}
	}
	return n
}

// TestEnqCrashScheduleSweep injects a crash before every primitive step of
// a solo Enq in turn and asserts the detectability contract at each one:
// the verdict is definite, a linearized verdict means the value is in the
// queue exactly once, and a fail/not-invoked verdict means it is absent —
// never a lost or duplicated enqueue.
func TestEnqCrashScheduleSweep(t *testing.T) {
	sawFail, sawRecovered := false, false
	for step := uint64(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		sys := runtime.NewSystem(2)
		q := New(sys)
		q.Enq(0, 10)
		q.Enq(0, 20)

		out := q.Enq(0, 77, nvm.CrashAtStep(step))
		got := count(q.PeekAll(), 77)
		switch out.Status {
		case runtime.StatusOK:
			if got != 1 {
				t.Fatalf("step %d: crash-free enqueue left %d copies", step, got)
			}
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return // the plan no longer fires: every step is covered
		case runtime.StatusRecovered:
			sawRecovered = true
			if got != 1 {
				t.Fatalf("step %d: verdict recovered but %d copies of 77 (want 1)", step, got)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if got != 0 {
				t.Fatalf("step %d: verdict %v but %d copies of 77 (want 0)", step, out.Status, got)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}

		// The queue must stay fully operational: drain and check FIFO order.
		want := []int{10, 20}
		if out.Status.Linearized() {
			want = append(want, 77)
		}
		for _, w := range want {
			d := q.Deq(1)
			if !d.Status.Linearized() || d.Resp != w {
				t.Fatalf("step %d: drain %+v, want %d", step, d, w)
			}
		}
		if d := q.Deq(1); d.Resp != spec.Empty {
			t.Fatalf("step %d: queue not empty after drain: %+v", step, d)
		}
	}
}

// TestDeqCrashScheduleSweep is the dequeue counterpart: a crash before
// every step of a solo Deq on a two-element queue must yield either a
// linearized response of the head value with the element removed exactly
// once, or a definite fail with both elements still present.
func TestDeqCrashScheduleSweep(t *testing.T) {
	sawFail, sawRecovered := false, false
	for step := uint64(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		sys := runtime.NewSystem(2)
		q := New(sys)
		q.Enq(0, 10)
		q.Enq(0, 20)

		out := q.Deq(0, nvm.CrashAtStep(step))
		rest := q.PeekAll()
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			if out.Status == runtime.StatusRecovered {
				sawRecovered = true
			}
			if out.Resp != 10 {
				t.Fatalf("step %d: dequeued %d, want 10 (FIFO violated)", step, out.Resp)
			}
			if len(rest) != 1 || rest[0] != 20 {
				t.Fatalf("step %d: remaining %v after linearized deq, want [20]", step, rest)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if len(rest) != 2 || rest[0] != 10 || rest[1] != 20 {
				t.Fatalf("step %d: verdict %v but queue is %v (lost element)", step, out.Status, rest)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}

		// Drain what is left and confirm nothing is duplicated or stuck.
		for _, w := range rest {
			d := q.Deq(1)
			if !d.Status.Linearized() || d.Resp != w {
				t.Fatalf("step %d: drain %+v, want %d", step, d, w)
			}
		}
		if d := q.Deq(1); d.Resp != spec.Empty {
			t.Fatalf("step %d: queue not empty after drain", step)
		}

		if out.Status == runtime.StatusOK {
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return
		}
	}
}

// TestDeqEmptyCrashScheduleSweep sweeps a solo Deq on an empty queue: every
// linearized verdict must report Empty and the queue must stay empty.
func TestDeqEmptyCrashScheduleSweep(t *testing.T) {
	for step := uint64(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		sys := runtime.NewSystem(1)
		q := New(sys)
		out := q.Deq(0, nvm.CrashAtStep(step))
		if out.Status.Linearized() && out.Resp != spec.Empty {
			t.Fatalf("step %d: dequeued %d from an empty queue", step, out.Resp)
		}
		if n := q.Len(); n != 0 {
			t.Fatalf("step %d: empty queue now has %d elements", step, n)
		}
		if out.Status == runtime.StatusOK {
			return
		}
	}
}
