// Package maxreg implements Algorithm 3 of the paper: a recoverable,
// detectable max register that uses NO auxiliary state.
//
// The max register is the paper's separating example. Theorem 2 proves
// that detectable implementations of *doubly-perturbing* objects must be
// handed auxiliary state (checkpoint resets or operation identifiers) from
// outside each invocation. Lemma 4 shows a max register is not doubly
// perturbing — once WriteMax(v) is linearized, a second invocation of it
// can never change any other operation's response — and this algorithm
// exploits exactly that: its recovery functions simply re-invoke the
// operation. No caller-side announcement, no checkpoint, no operation
// identifiers; re-execution is harmless because the object is monotone.
//
// State: an integer array MR[N], one entry per process. WriteMax(val) by p
// raises MR[p] to val if needed. Read repeatedly collects MR until two
// consecutive collects agree (a "double collect", valid snapshot) and
// returns the maximum.
package maxreg

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// MaxRegister is an N-process recoverable max register. All exported
// methods are safe for concurrent use by distinct processes; a single
// process must not run two operations concurrently.
type MaxRegister struct {
	sys *runtime.System
	n   int
	// mr[p] is the largest value process p has written; the register's
	// value is the maximum over all entries.
	mr []nvm.CASRegister[int]
	// resp[p] persists read responses (line 54 of the pseudo-code). It is
	// written by the operation itself, never reset from outside — so it is
	// not auxiliary state under Definition 1.
	resp []nvm.CASRegister[int]
}

// New allocates a max register (initially 0) in sys's memory space.
func New(sys *runtime.System) *MaxRegister {
	sp := sys.Space()
	m := &MaxRegister{sys: sys, n: sys.N()}
	for p := 0; p < sys.N(); p++ {
		m.mr = append(m.mr, nvm.NewWord(sp, 0))
		m.resp = append(m.resp, nvm.NewWord(sp, 0))
	}
	return m
}

// WriteMax performs WriteMax(val) as process pid.
func (m *MaxRegister) WriteMax(pid, val int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(m.sys, pid, m.WriteMaxOp(pid, val), plans...)
}

// Read performs Read() as process pid.
func (m *MaxRegister) Read(pid int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(m.sys, pid, m.ReadOp(pid), plans...)
}

// WriteMaxOp builds the recoverable WriteMax operation for pid. Note the
// absence of an Announce function: the operation receives no auxiliary
// state, and its recovery function is plain re-invocation.
func (m *MaxRegister) WriteMaxOp(pid, val int) runtime.Op[int] {
	body := func(ctx *nvm.Ctx) int {
		if m.mr[pid].Load(ctx) < val { // line 47
			m.mr[pid].Store(ctx, val) // line 48
		}
		return spec.Ack // line 49
	}
	return runtime.Op[int]{
		Desc: spec.NewOp(spec.MethodWriteMax, val),
		Body: body,
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			return body(ctx), true // re-invoke; idempotent by monotonicity
		},
		Encode: runtime.EncodeInt,
	}
}

// ReadOp builds the recoverable Read operation for pid: collect MR until a
// double collect succeeds, persist and return the maximum.
func (m *MaxRegister) ReadOp(pid int) runtime.Op[int] {
	body := func(ctx *nvm.Ctx) int {
		a := make([]int, m.n) // line 50: local array, initially all 0
		for {                 // line 51
			b := m.collect(ctx)
			if equal(a, b) {
				break
			}
			a = b // line 52
		}
		res := maxOf(a)             // line 53
		m.resp[pid].Store(ctx, res) // line 54
		return res                  // line 55
	}
	return runtime.Op[int]{
		Desc: spec.NewOp(spec.MethodRead),
		Body: body,
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			return body(ctx), true // re-invoke
		},
		Encode: runtime.EncodeInt,
	}
}

// Peek returns the register's current value without a Ctx, for tests.
func (m *MaxRegister) Peek() int {
	best := 0
	for _, c := range m.mr {
		if v := c.Peek(); v > best {
			best = v
		}
	}
	return best
}

// N returns the number of processes the register was allocated for.
func (m *MaxRegister) N() int { return m.n }

func (m *MaxRegister) collect(ctx *nvm.Ctx) []int {
	out := make([]int, m.n)
	for i := 0; i < m.n; i++ {
		out[i] = m.mr[i].Load(ctx)
	}
	return out
}

func equal(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxOf(a []int) int {
	best := a[0]
	for _, v := range a[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
