package maxreg

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

func checkDL(t *testing.T, sys *runtime.System) linearize.Report {
	t.Helper()
	ok, rep, err := linearize.CheckLog(spec.MaxRegister{}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
	return rep
}

func TestSequentialSemantics(t *testing.T) {
	sys := runtime.NewSystem(3)
	m := New(sys)
	m.WriteMax(0, 5)
	m.WriteMax(1, 3)
	if out := m.Read(2); out.Resp != 5 {
		t.Fatalf("read = %d, want 5", out.Resp)
	}
	m.WriteMax(1, 9)
	if out := m.Read(0); out.Resp != 9 {
		t.Fatalf("read = %d, want 9", out.Resp)
	}
	checkDL(t, sys)
}

func TestNoAuxiliaryState(t *testing.T) {
	// The defining property: operations receive no announcement. A
	// crash-free WriteMax performs at most 2 primitives (load + store) and
	// a Read with no contention exactly N+... collects; crucially ZERO
	// writes happen before the body starts.
	sys := runtime.NewSystem(4)
	m := New(sys)
	st := sys.Space().Stats()

	before := st.Total()
	m.WriteMax(0, 5)
	if got := st.Total() - before; got != 2 {
		t.Fatalf("WriteMax performed %d primitives, want 2 (no announcement)", got)
	}

	op := m.WriteMaxOp(0, 7)
	if op.Announce != nil {
		t.Fatal("WriteMaxOp has an Announce function")
	}
	if m.ReadOp(0).Announce != nil {
		t.Fatal("ReadOp has an Announce function")
	}
}

func TestWriteMaxIdempotentRecovery(t *testing.T) {
	// Crash at every step of a solo WriteMax; recovery re-invokes and the
	// final state is always correct, never doubled or lost.
	for step := uint64(1); step <= 2; step++ {
		sys := runtime.NewSystem(2)
		m := New(sys)
		out := m.WriteMax(0, 5, nvm.CrashAtStep(step))
		if out.Status != runtime.StatusRecovered {
			t.Fatalf("step %d: status %v, want recovered (re-invocation always completes)", step, out.Status)
		}
		if got := m.Peek(); got != 5 {
			t.Fatalf("step %d: value = %d, want 5", step, got)
		}
		checkDL(t, sys)
	}
}

func TestWriteMaxLowerValueNoop(t *testing.T) {
	sys := runtime.NewSystem(2)
	m := New(sys)
	m.WriteMax(0, 9)
	m.WriteMax(0, 4)
	if got := m.Peek(); got != 9 {
		t.Fatalf("value = %d, want 9", got)
	}
	checkDL(t, sys)
}

func TestReadCrashReinvokes(t *testing.T) {
	sys := runtime.NewSystem(2)
	m := New(sys)
	m.WriteMax(1, 7)
	// Read body: N loads per collect; crash mid-collect and recover.
	out := m.Read(0, nvm.CrashAtStep(2))
	if out.Status != runtime.StatusRecovered || out.Resp != 7 {
		t.Fatalf("outcome %+v, want recovered 7", out)
	}
	checkDL(t, sys)
}

// TestDoubleCollectRetries drives a writer between the reader's collects;
// the reader must retry and return a value from a valid snapshot.
func TestDoubleCollectRetries(t *testing.T) {
	sys := runtime.NewSystem(2)
	m := New(sys)
	wrote := false
	hook := &nvm.StepHook{
		Step: 2, // between the reader's first-collect loads
		Fn: func() {
			if !wrote {
				wrote = true
				m.WriteMax(1, 8)
			}
		},
	}
	out := m.Read(0, hook)
	if out.Status != runtime.StatusOK {
		t.Fatalf("status %v", out.Status)
	}
	// The writer completed before the reader's final double collect, so
	// the read must observe it.
	if out.Resp != 8 {
		t.Fatalf("read = %d, want 8", out.Resp)
	}
	checkDL(t, sys)
}

func TestRepeatedCrashesEventuallyComplete(t *testing.T) {
	sys := runtime.NewSystem(2)
	m := New(sys)
	out := m.WriteMax(0, 6,
		nvm.CrashAtStep(1), nvm.CrashAtStep(1), nvm.CrashAtStep(2), nvm.CrashAtStep(1),
	)
	if out.Status != runtime.StatusRecovered || out.Crashes != 4 {
		t.Fatalf("outcome %+v, want recovered after 4 crashes", out)
	}
	if got := m.Peek(); got != 6 {
		t.Fatalf("value = %d", got)
	}
	checkDL(t, sys)
}

// TestMonotoneReads: once a read returns v, no later read returns less.
func TestMonotoneReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := runtime.NewSystem(1)
	m := New(sys)
	prev := 0
	for i := 0; i < 50; i++ {
		var plans []nvm.CrashPlan
		if rng.Intn(3) == 0 {
			plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(3))))
		}
		if rng.Intn(2) == 0 {
			m.WriteMax(0, rng.Intn(100), plans...)
		} else {
			out := m.Read(0, plans...)
			if out.Resp < prev {
				t.Fatalf("read %d after read %d: max register decreased", out.Resp, prev)
			}
			prev = out.Resp
		}
	}
	checkDL(t, sys)
}

func TestConcurrentStressWithStorms(t *testing.T) {
	const (
		procs   = 3
		rounds  = 6
		opsEach = 5
	)
	for round := 0; round < rounds; round++ {
		sys := runtime.NewSystem(procs)
		m := New(sys)

		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%1000 == 0 {
					sys.Crash()
				}
			}
		}()

		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + pid)))
				for i := 0; i < opsEach; i++ {
					if rng.Intn(2) == 0 {
						m.WriteMax(pid, rng.Intn(50))
					} else {
						m.Read(pid)
					}
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkDL(t, sys)
	}
}

func TestPeekAggregates(t *testing.T) {
	sys := runtime.NewSystem(3)
	m := New(sys)
	m.WriteMax(0, 2)
	m.WriteMax(1, 7)
	m.WriteMax(2, 4)
	if got := m.Peek(); got != 7 {
		t.Fatalf("Peek = %d, want 7", got)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}
