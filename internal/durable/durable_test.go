package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// collect reopens the log at path and returns every valid record.
func collect(t *testing.T, path string) [][]byte {
	t.Helper()
	var recs [][]byte
	l, err := OpenLog(path, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	l.Close()
	return recs
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma-longer-record")}
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got := collect(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLogTornFinalRecord cuts the last record mid-payload: recovery must
// keep the valid prefix, truncate the torn tail, and leave the log
// appendable.
func TestLogTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, _ := OpenLog(path, nil)
	l.Append([]byte("first"))
	l.Append([]byte("second-record"))
	l.Sync()
	l.Close()

	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	got := collect(t, path)
	if len(got) != 1 || string(got[0]) != "first" {
		t.Fatalf("after torn tail: records %q, want just %q", got, "first")
	}
	st, _ := os.Stat(path)
	if want := int64(frameHeader + len("first")); st.Size() != want {
		t.Fatalf("file not truncated to valid prefix: size %d, want %d", st.Size(), want)
	}

	// The truncated log must accept appends and replay the combined prefix.
	l2, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append([]byte("third"))
	l2.Sync()
	l2.Close()
	got = collect(t, path)
	if len(got) != 2 || string(got[1]) != "third" {
		t.Fatalf("append after truncation: records %q", got)
	}
}

// TestLogCRCMismatch flips a payload byte: the corrupted record and
// everything after it fall off the valid prefix.
func TestLogCRCMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, _ := OpenLog(path, nil)
	l.Append([]byte("aaaa"))
	l.Append([]byte("bbbb"))
	l.Append([]byte("cccc"))
	l.Sync()
	l.Close()

	data, _ := os.ReadFile(path)
	// Corrupt the middle record's payload (record layout: 8-byte header +
	// 4-byte payload each).
	data[frameHeader+4+frameHeader] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	got := collect(t, path)
	if len(got) != 1 || string(got[0]) != "aaaa" {
		t.Fatalf("after mid-log corruption: records %q, want just %q (prefix semantics)", got, "aaaa")
	}
}

// TestLogImpossibleLength writes a length field larger than MaxRecord:
// treated as corruption, not an allocation request.
func TestLogImpossibleLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, _ := OpenLog(path, nil)
	l.Append([]byte("ok"))
	l.Sync()
	l.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:], MaxRecord+1)
	f.Write(hdr[:])
	f.Close()
	got := collect(t, path)
	if len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("after impossible length: records %q", got)
	}
}

// shardState reopens dir and returns shard i's recovered roots.
func shardState(t *testing.T, dir string, shards, procs int, i int) map[string]int64 {
	t.Helper()
	db, err := Open(dir, shards, procs, 4)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	got := map[string]int64{}
	db.RangeShard(i, func(k string, v int64) { got[k] = v })
	return got
}

func TestDBShardRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := db.ShardBacking(0)
	b.Persist("k1", 10)
	b.Persist("k2", 20)
	b.Persist("k1", 11) // last-wins
	db.ShardBacking(1).Persist("other", 7)
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	if got := shardState(t, dir, 2, 2, 0); !reflect.DeepEqual(got, map[string]int64{"k1": 11, "k2": 20}) {
		t.Fatalf("shard 0 recovered %v", got)
	}
	if got := shardState(t, dir, 2, 2, 1); !reflect.DeepEqual(got, map[string]int64{"other": 7}) {
		t.Fatalf("shard 1 recovered %v", got)
	}
}

// TestRecoveryIdempotence: recovering twice (open → close → open) yields
// exactly the state recovering once did — recovery performs no writes that
// change the logical state.
func TestRecoveryIdempotence(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 2, 4)
	for i := 0; i < 50; i++ {
		db.ShardBacking(0).Persist("k", int64(i))
	}
	db.AppendHello(3, 1)
	db.CommitOutcome(3, 9, []byte("reply-nine"))
	db.Close()

	// Tear the log tail so recovery also exercises the truncation path.
	path := filepath.Join(dir, "shard-000.log")
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-3], 0o644)

	first := shardState(t, dir, 1, 2, 0)
	second := shardState(t, dir, 1, 2, 0)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("recovery not idempotent: %v then %v", first, second)
	}
	db2, _ := Open(dir, 1, 2, 4)
	s1 := db2.Sessions()
	db2.Close()
	db3, _ := Open(dir, 1, 2, 4)
	s2 := db3.Sessions()
	db3.Close()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("session recovery not idempotent: %v then %v", s1, s2)
	}
	if len(s1) != 1 || s1[0].SID != 3 || string(s1[0].Window[9]) != "reply-nine" {
		t.Fatalf("recovered sessions %v", s1)
	}
}

// TestShardCompaction drives the log over a tiny threshold and checks the
// snapshot+log pair still recovers the exact state.
func TestShardCompaction(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 1, 4)
	db.SetCompactThreshold(256)
	for i := 0; i < 100; i++ {
		db.ShardBacking(0).Persist("hot", int64(i))
		db.ShardBacking(0).Persist("cold", -1)
	}
	db.Sync()
	db.Close()

	snap := filepath.Join(dir, "shard-000.snap")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot written despite threshold: %v", err)
	}
	if st, _ := os.Stat(filepath.Join(dir, "shard-000.log")); st.Size() >= 256+64 {
		t.Fatalf("log did not reset at compaction: %d bytes", st.Size())
	}
	got := shardState(t, dir, 1, 1, 0)
	if !reflect.DeepEqual(got, map[string]int64{"hot": 99, "cold": -1}) {
		t.Fatalf("recovered %v", got)
	}
}

// TestTruncatedSnapshot cuts the snapshot file mid-record: recovery keeps
// its valid prefix and still layers the log on top.
func TestTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 1, 4)
	db.ShardBacking(0).Persist("aa", 1)
	db.ShardBacking(0).Persist("bb", 2)
	db.CompactShard(0)
	db.ShardBacking(0).Persist("cc", 3) // post-snapshot, lives in the log
	db.Sync()
	db.Close()

	snap := filepath.Join(dir, "shard-000.snap")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(snap, data[:len(data)-4], 0o644)

	got := shardState(t, dir, 1, 1, 0)
	// Snapshot records are sorted (aa, bb); cutting the tail loses bb but
	// keeps the aa prefix, and the log's cc still applies.
	want := map[string]int64{"aa": 1, "cc": 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestSessionWindowEvictionAndEnd(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 2, 3) // window of 3
	db.AppendHello(1, 0)
	db.AppendHello(2, 1)
	for req := uint64(1); req <= 6; req++ {
		db.CommitOutcome(1, req, []byte{byte(req)})
	}
	db.AppendEnd(2)
	db.Close()

	db2, _ := Open(dir, 1, 2, 3)
	defer db2.Close()
	ss := db2.Sessions()
	if len(ss) != 1 || ss[0].SID != 1 {
		t.Fatalf("recovered sessions %v, want only sid 1", ss)
	}
	if ss[0].MaxID != 6 || len(ss[0].Window) != 3 {
		t.Fatalf("window maxID=%d len=%d, want 6 and 3", ss[0].MaxID, len(ss[0].Window))
	}
	for req := uint64(4); req <= 6; req++ {
		if string(ss[0].Window[req]) != string([]byte{byte(req)}) {
			t.Fatalf("window[%d] = %q", req, ss[0].Window[req])
		}
	}
	if db2.NextSID() != 2 {
		t.Fatalf("NextSID = %d, want 2 (high-water survives the ended session)", db2.NextSID())
	}
}

// TestSessionsCompactionKeepsNextSID ends every session, compacts, and
// checks the high-water mark still prevents session-ID reuse.
func TestSessionsCompactionKeepsNextSID(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 2, 4)
	db.AppendHello(7, 0)
	db.AppendEnd(7)
	if err := db.CompactSessions(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, _ := Open(dir, 1, 2, 4)
	defer db2.Close()
	if got := db2.NextSID(); got != 7 {
		t.Fatalf("NextSID after compaction = %d, want 7", got)
	}
}

func TestNoteSIDRaisesHighWater(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 2, 4)
	db.AppendHello(1, 0)
	if err := db.NoteSID(2); err != nil { // observer ID, no session record
		t.Fatal(err)
	}
	if err := db.NoteSID(1); err != nil { // never lowers
		t.Fatal(err)
	}
	db.Close()
	db2, _ := Open(dir, 1, 2, 4)
	defer db2.Close()
	if got := db2.NextSID(); got != 2 {
		t.Fatalf("NextSID = %d, want 2", got)
	}
	if n := len(db2.Sessions()); n != 1 {
		t.Fatalf("recovered %d sessions, want 1 (NoteSID records no session)", n)
	}
}

func TestOpenRefusesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := Open(dir, 1, 1, 4); err == nil {
		t.Fatal("second concurrent Open of the same data dir succeeded; want flock refusal")
	}
}

// TestOpenReusableAfterClose pins that the lock dies with the DB, so a
// clean close (or a killed process) never wedges the next open.
func TestOpenReusableAfterClose(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 1, 1, 4)
	db.Close()
	db2, err := Open(dir, 1, 1, 4)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	db2.Close()
}

func TestManifestGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(dir, 2, 8, 4); err == nil {
		t.Fatal("reopen with different shard count succeeded; want refusal")
	}
	if _, err := Open(dir, 4, 4, 4); err == nil {
		t.Fatal("reopen with different proc count succeeded; want refusal")
	}
	db2, err := Open(dir, 4, 8, 4)
	if err != nil {
		t.Fatalf("reopen with original geometry: %v", err)
	}
	db2.Close()
}

// TestCommitOutcomeOrdering checks the observable half of the durability
// contract: after CommitOutcome returns, both the journaled mutations and
// the outcome record survive a reopen.
func TestCommitOutcomeOrdering(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(dir, 2, 2, 4)
	db.AppendHello(1, 0)
	db.ShardBacking(0).Persist("k", 42)
	db.ShardBacking(1).Persist("j", 43)
	if err := db.CommitOutcome(1, 5, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	if got := shardState(t, dir, 2, 2, 0); got["k"] != 42 {
		t.Fatalf("shard 0 lost the pre-outcome mutation: %v", got)
	}
	if got := shardState(t, dir, 2, 2, 1); got["j"] != 43 {
		t.Fatalf("shard 1 lost the pre-outcome mutation: %v", got)
	}
	db2, _ := Open(dir, 2, 2, 4)
	defer db2.Close()
	ss := db2.Sessions()
	if len(ss) != 1 || string(ss[0].Window[5]) != "ok" {
		t.Fatalf("outcome window lost: %v", ss)
	}
}
