package durable

import (
	"io"
	"os"
	"path/filepath"
)

// Fs is the operating-system surface this package performs all of its I/O
// through. The default implementation (OS) is the real filesystem; the
// simulated implementation (internal/simio) models the same surface with a
// persistence journal, so the crash-prefix enumerator can reconstruct every
// byte image a kernel crash could leave behind — including unsynced data
// that was partially written back and directory entries that never became
// durable.
//
// The seam is deliberately narrow: exactly the calls the commit protocol's
// correctness depends on. Everything durability-critical is visible here —
// a write is not durable until File.Sync, a created/renamed/removed
// directory entry is not durable until SyncDir on its parent.
type Fs interface {
	// OpenFile opens path with os.OpenFile semantics for the flag subset
	// this package uses (O_RDWR, O_RDONLY, O_WRONLY, O_CREATE, O_EXCL,
	// O_TRUNC). A missing file without O_CREATE fails with an error
	// satisfying os.IsNotExist.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file, failing with os.IsNotExist when absent.
	ReadFile(path string) ([]byte, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Exists reports whether path exists (file or directory).
	Exists(path string) (bool, error)
	// Rename atomically replaces newpath with oldpath. The new directory
	// entry is not durable until SyncDir on the parent.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// SyncDir fsyncs the directory at dir, making every entry
	// creation/rename/removal inside it durable.
	SyncDir(dir string) error
	// Lock takes an exclusive inter-process lock on dir, returning the
	// unlock function, or fails if another live holder exists.
	Lock(dir string) (unlock func(), err error)
}

// File is the open-file surface durable needs: positional reads and writes,
// truncation, and the fsync barrier.
type File interface {
	io.Closer
	Name() string
	ReadAt(p []byte, off int64) (n int, err error)
	WriteAt(p []byte, off int64) (n int, err error)
	Write(p []byte) (n int, err error)
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
}

// OS is the real-filesystem implementation of Fs, the default for every
// entry point that does not take an explicit Fs. The indirection costs one
// interface dispatch per syscall — noise next to the syscall itself — and
// nothing at all on the staged-append hot path, which touches no file until
// the next barrier.
var OS Fs = osFs{}

type osFs struct{}

// osFile adds the Size accessor the File interface wants to *os.File.
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFs) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFs) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFs) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFs) Exists(path string) (bool, error) {
	_, err := os.Stat(path)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (osFs) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFs) Remove(path string) error { return os.Remove(path) }

func (osFs) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFs) Lock(dir string) (func(), error) {
	f, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	return func() { unlockDir(f) }, nil
}

// mkdirAllSynced creates dir (and missing parents) with each newly created
// directory's entry fsynced into its parent. Plain MkdirAll leaves the new
// entries in the page cache: a crash after the first commit could then drop
// the whole data directory — logs, fsynced contents and all — because the
// entry chain leading to them was never durable.
func mkdirAllSynced(fsys Fs, dir string) error {
	ok, err := fsys.Exists(dir)
	if err != nil || ok {
		return err
	}
	parent := filepath.Dir(dir)
	if parent != dir {
		if err := mkdirAllSynced(fsys, parent); err != nil {
			return err
		}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(dir))
}
