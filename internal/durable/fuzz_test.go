package durable

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one valid log frame for seeding.
func frame(payload []byte) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// validSessionsLog returns the bytes of a well-formed sessions log:
// hello, outcome, next-sid, end.
func validSessionsLog() []byte {
	var out []byte
	rec := append([]byte{recHello}, binary.BigEndian.AppendUint64(nil, 1)...)
	rec = binary.BigEndian.AppendUint64(rec, 0)
	out = append(out, frame(rec)...)
	out = append(out, frame(appendOutcomeRec(nil, 1, 1, []byte("k=1")))...)
	out = append(out, frame(append([]byte{recNextSID}, binary.BigEndian.AppendUint64(nil, 9)...))...)
	out = append(out, frame(append([]byte{recEnd}, binary.BigEndian.AppendUint64(nil, 1)...))...)
	return out
}

// FuzzOpenLog feeds arbitrary bytes to the log opener: it must never
// panic, must recover a valid record prefix (truncating any garbage
// tail), and reopening what it left behind must yield byte-identical
// records — recovery of a recovered log is a fixpoint.
func FuzzOpenLog(f *testing.F) {
	valid := validSessionsLog()
	f.Add([]byte{})
	f.Add(valid)
	// Flipped CRC byte in the second frame.
	flipped := append([]byte(nil), valid...)
	flipped[FrameHeader+len(flipped[FrameHeader:])/4] ^= 0xff
	f.Add(flipped)
	// Torn tail mid-frame.
	f.Add(valid[:len(valid)-3])
	// Impossible length prefix.
	f.Add(binary.BigEndian.AppendUint32(nil, uint32(MaxRecord+1)))
	// Length that overruns the file.
	f.Add(frame([]byte("x"))[:6])

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs [][]byte
		l, err := OpenLog(path, func(rec []byte) error {
			recs = append(recs, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			return // structured rejection is fine; panics are the bug
		}
		l.Close()

		// Fixpoint: the truncated-on-open log replays identically.
		var recs2 [][]byte
		l2, err := OpenLog(path, func(rec []byte) error {
			recs2 = append(recs2, append([]byte(nil), rec...))
			return nil
		})
		if err != nil {
			t.Fatalf("reopen of a recovered log failed: %v", err)
		}
		l2.Close()
		if len(recs) != len(recs2) {
			t.Fatalf("recovered %d records, reopen recovered %d", len(recs), len(recs2))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], recs2[i]) {
				t.Fatalf("record %d differs across reopen: %x vs %x", i, recs[i], recs2[i])
			}
		}
	})
}

// FuzzOpenDB plants fuzz bytes in a valid data directory's shard and
// sessions logs: Open must never panic — it either recovers (and then the
// recovered state is stable: an immediate reopen yields the same
// StateHash) or refuses with an error.
func FuzzOpenDB(f *testing.F) {
	f.Add([]byte{}, []byte{})
	shardRec := frame(encodePut(nil, "k", 7))
	f.Add(shardRec, validSessionsLog())
	mut := append([]byte(nil), shardRec...)
	mut[len(mut)-1] ^= 0x01
	f.Add(mut, validSessionsLog()[:9])
	f.Add(binary.BigEndian.AppendUint32(nil, 0xffffffff), frame([]byte{recHello}))

	f.Fuzz(func(t *testing.T, shardBytes, sessionBytes []byte) {
		dir := t.TempDir()
		db, err := Open(dir, 2, 2, 16)
		if err != nil {
			t.Fatal(err)
		}
		db.ShardBacking(0).Persist("seed", 1)
		if err := db.SyncShards(); err != nil {
			t.Fatal(err)
		}
		if err := db.AppendHello(1, 0); err != nil {
			t.Fatal(err)
		}
		db.Close()
		if err := os.WriteFile(filepath.Join(dir, "shard-000.log"), shardBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "sessions.log"), sessionBytes, 0o644); err != nil {
			t.Fatal(err)
		}

		db1, err := Open(dir, 2, 2, 16)
		if err != nil {
			return // refusing corrupt input is fine
		}
		h1 := db1.StateHash()
		db1.Close()
		db2, err := Open(dir, 2, 2, 16)
		if err != nil {
			t.Fatalf("reopen after successful recovery failed: %v", err)
		}
		h2 := db2.StateHash()
		db2.Close()
		if h1 != h2 {
			t.Fatalf("recovered state not stable across reopen: %s then %s", h1, h2)
		}
	})
}
