//go:build unix

package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir's LOCK file, refusing
// when another live process holds it: two writers appending to the same
// logs at independent offsets would corrupt each other's frames and a
// later recovery would silently truncate released verdicts. The kernel
// drops the lock when the holder dies (SIGKILL included), so a crashed
// daemon never wedges its own restart.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN) //nolint:errcheck
		f.Close()
	}
}
