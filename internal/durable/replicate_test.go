package durable_test

// External-package tests for the replication stream (replicate.go): the
// internal durable tests cannot import internal/simio (simio itself
// imports durable), so the tests that model backup crashes with the
// simulated filesystem live here, against the public API only.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"detectable/internal/durable"
	"detectable/internal/simio"
)

const (
	testShards = 2
	testProcs  = 4
	testWindow = 8
)

func openSim(t *testing.T, fsim *simio.Fs) *durable.DB {
	t.Helper()
	db, err := durable.OpenFs(fsim, "/data", testShards, testProcs, testWindow)
	if err != nil {
		t.Fatalf("OpenFs: %v", err)
	}
	return db
}

// workload drives a representative mix through db: two long-lived
// sessions committing puts across both shards, an observer-ID burn, and
// a third session that ends durably.
func workload(t *testing.T, db *durable.DB) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
	}
	must(db.AppendHello(1, 0))
	must(db.AppendHello(2, 1))
	reqs := map[uint64]uint64{}
	commit := func(sid uint64, i int) {
		shard := i % testShards
		key := fmt.Sprintf("s%d-k%d", shard, i%3)
		val := int64(i + 1)
		db.ShardBacking(shard).Persist(key, val)
		reqs[sid]++
		must(db.CommitOutcome(sid, reqs[sid], []byte(fmt.Sprintf("%s=%d", key, val))))
	}
	for i := 0; i < 12; i++ {
		commit(1+uint64(i%2), i)
	}
	must(db.NoteSID(100))
	must(db.AppendHello(3, 2))
	commit(3, 12)
	must(db.AppendEnd(3))
}

// drain collects the stream staged on a closed (or closing) subscription
// and splits it into messages.
func drain(t *testing.T, sub *durable.ReplSub) [][]byte {
	t.Helper()
	var msgs [][]byte
	for {
		chunk, err := sub.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return msgs
			}
			t.Fatalf("Next: %v", err)
		}
		for len(chunk) > 0 {
			n := int(binary.BigEndian.Uint32(chunk))
			msgs = append(msgs, append([]byte(nil), chunk[4:4+n]...))
			chunk = chunk[4+n:]
		}
	}
}

func applyAll(t *testing.T, rep *durable.Replica, msgs [][]byte) {
	t.Helper()
	for i, m := range msgs {
		if _, _, err := rep.Apply(m); err != nil {
			t.Fatalf("Apply msg %d (kind 0x%02x): %v", i, m[0], err)
		}
	}
}

// TestReplicationLiveTapConverges streams a workload through a live tap
// (subscription opened before any record exists) into a backup and pins
// convergence with StateHash; a second full apply of the same stream must
// be a no-op (applies are idempotent).
func TestReplicationLiveTapConverges(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	workload(t, pdb)
	sub.Close()
	msgs := drain(t, sub)
	want := pdb.StateHash()

	bfs := simio.New()
	bdb := openSim(t, bfs)
	applyAll(t, bdb.NewReplica(), msgs)
	if got := bdb.StateHash(); got != want {
		t.Fatalf("backup hash %s, primary %s", got, want)
	}
	applyAll(t, bdb.NewReplica(), msgs)
	if got := bdb.StateHash(); got != want {
		t.Fatalf("double apply diverged: %s, want %s", got, want)
	}
	// The backup's own disk holds the same state: recover it fresh.
	if err := bdb.Close(); err != nil {
		t.Fatalf("backup close: %v", err)
	}
	bdb2 := openSim(t, bfs)
	defer bdb2.Close()
	if got := bdb2.StateHash(); got != want {
		t.Fatalf("recovered backup hash %s, want %s", got, want)
	}
}

// TestReplicationSnapshotResync subscribes after the workload ran, so the
// whole state arrives as a fuzzy snapshot, and checks the SnapEnd
// reconciliation: a session the backup still believes live but the
// snapshot no longer asserts must be ended.
func TestReplicationSnapshotResync(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub1 := pdb.Subscribe(0, false)
	workload(t, pdb) // ends session 3
	sub1.Close()

	bdb := openSim(t, simio.New())
	applyAll(t, bdb.NewReplica(), drain(t, sub1))
	if got := bdb.StateHash(); got != pdb.StateHash() {
		t.Fatalf("after live tap: backup %s, primary %s", got, pdb.StateHash())
	}

	// Primary moves on while the backup is disconnected: session 2 ends,
	// new writes land.
	if err := db2More(pdb); err != nil {
		t.Fatal(err)
	}

	// Reconnect: snapshot-only stream (no records tapped after Close).
	sub2 := pdb.Subscribe(0, false)
	sub2.Close()
	snap := drain(t, sub2)
	applyAll(t, bdb.NewReplica(), snap)
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("after resync: backup %s, primary %s", got, want)
	}
	for _, s := range bdb.Sessions() {
		if s.SID == 2 {
			t.Fatalf("session 2 still live on the backup after SnapEnd reconciliation")
		}
	}
	// Idempotence of the snapshot itself.
	applyAll(t, bdb.NewReplica(), snap)
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("snapshot re-apply diverged: %s, want %s", got, want)
	}
}

func db2More(db *durable.DB) error {
	if err := db.AppendEnd(2); err != nil {
		return err
	}
	db.ShardBacking(0).Persist("post-k", 999)
	return db.CommitOutcome(1, 50, []byte("post-k=999"))
}

// TestReplicationKillAtEveryFrame is the stream-interruption sweep: for
// every prefix of the replication stream, a backup that applied exactly
// that prefix, crashed (close + recover its own data directory) and then
// re-synced from a fresh primary snapshot must converge to the primary's
// StateHash — and applying the resync snapshot twice must change nothing.
// Cuts inside a frame equal the previous frame boundary by construction
// (the wire delivers whole frames or nothing), so sweeping frame
// boundaries covers every byte.
func TestReplicationKillAtEveryFrame(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	workload(t, pdb)
	sub.Close()
	msgs := drain(t, sub)
	want := pdb.StateHash()

	// One resync snapshot reused for every cut: the primary is quiescent,
	// so each subscription would stage identical state.
	rsub := pdb.Subscribe(0, false)
	rsub.Close()
	resync := drain(t, rsub)

	for cut := 0; cut <= len(msgs); cut++ {
		bfs := simio.New()
		bdb := openSim(t, bfs)
		applyAll(t, bdb.NewReplica(), msgs[:cut])
		// Crash the backup: recovery must accept whatever prefix its own
		// logs hold (torn tails truncate, staged-but-unbarriered session
		// records never reached the medium).
		if err := bdb.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		bdb = openSim(t, bfs)
		applyAll(t, bdb.NewReplica(), resync)
		if got := bdb.StateHash(); got != want {
			t.Fatalf("cut %d/%d: resynced hash %s, want %s", cut, len(msgs), got, want)
		}
		applyAll(t, bdb.NewReplica(), resync)
		if got := bdb.StateHash(); got != want {
			t.Fatalf("cut %d/%d: duplicate resync diverged to %s, want %s", cut, len(msgs), got, want)
		}
		bdb.Close()
	}
}

// TestSyncAckGatesCommit pins the semi-synchronous contract: with a
// syncAck subscriber attached, a commit does not return until the barrier
// is acknowledged; acking (or closing the subscription) releases it.
func TestSyncAckGatesCommit(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	sub := db.Subscribe(0, true)
	defer sub.Close()

	done := make(chan error, 1)
	go func() { done <- db.AppendHello(1, 0) }()
	select {
	case err := <-done:
		t.Fatalf("commit returned before the barrier ack (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	sub.Ack(1 << 60) // past any barrier this test issues
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AppendHello: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after the ack")
	}

	// A closed subscription must release waiters too.
	sub2 := db.Subscribe(0, true)
	go func() { done <- db.NoteSID(7) }()
	time.Sleep(20 * time.Millisecond)
	sub2.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("NoteSID: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after subscription close")
	}
}

// TestSyncAckTimeoutDropsLaggard pins degraded mode: a synchronous
// subscriber that never acks is dropped after the ack timeout and the
// commit completes; the hub forgets the laggard.
func TestSyncAckTimeoutDropsLaggard(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	db.SetReplAckTimeout(100 * time.Millisecond)
	db.Subscribe(0, true) // never acked, never drained

	start := time.Now()
	if err := db.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	if e := time.Since(start); e < 80*time.Millisecond {
		t.Fatalf("commit returned in %v — the ack gate never engaged", e)
	}
	if _, _, subs := db.ReplStatus(); subs != 0 {
		t.Fatalf("laggard still registered: subs=%d", subs)
	}
	// Subsequent commits are free again (degraded, not wedged).
	start = time.Now()
	if err := db.NoteSID(9); err != nil {
		t.Fatalf("NoteSID: %v", err)
	}
	if e := time.Since(start); e > 50*time.Millisecond {
		t.Fatalf("post-drop commit took %v, still gated", e)
	}
}

// TestGenerationFencing pins the fencing arithmetic: generations only
// advance, survive reopen, and a replica refuses a stream whose primary
// announces a generation below its own.
func TestGenerationFencing(t *testing.T) {
	fsim := simio.New()
	db := openSim(t, fsim)
	if g := db.Generation(); g != 0 {
		t.Fatalf("fresh generation = %d, want 0", g)
	}
	if err := db.SetGeneration(2); err != nil {
		t.Fatalf("SetGeneration(2): %v", err)
	}
	if err := db.SetGeneration(1); err == nil {
		t.Fatal("SetGeneration(1) after 2 succeeded; fencing rolled back")
	}
	if err := db.SetGeneration(2); err != nil {
		t.Fatalf("SetGeneration(2) re-assert: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db = openSim(t, fsim)
	defer db.Close()
	if g := db.Generation(); g != 2 {
		t.Fatalf("generation after reopen = %d, want 2", g)
	}

	snapBegin := func(gen uint64) []byte {
		msg := make([]byte, 21)
		msg[0] = durable.ReplSnapBegin
		binary.BigEndian.PutUint64(msg[1:], gen)
		binary.BigEndian.PutUint32(msg[9:], testShards)
		binary.BigEndian.PutUint32(msg[13:], testProcs)
		binary.BigEndian.PutUint32(msg[17:], testWindow)
		return msg
	}
	rep := db.NewReplica()
	if _, _, err := rep.Apply(snapBegin(1)); !errors.Is(err, durable.ErrStalePrimary) {
		t.Fatalf("stale primary (gen 1 < 2) accepted: err=%v", err)
	}
	// A newer primary advances the replica's own fencing generation.
	if _, _, err := rep.Apply(snapBegin(5)); err != nil {
		t.Fatalf("newer primary refused: %v", err)
	}
	if g := db.Generation(); g != 5 {
		t.Fatalf("replica generation = %d after gen-5 snapshot, want 5", g)
	}
}

// TestReplicaRejectsGeometryMismatch: a snapshot whose shard/proc/window
// geometry differs from the backup's must be refused before any record
// applies.
func TestReplicaRejectsGeometryMismatch(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	msg := make([]byte, 21)
	msg[0] = durable.ReplSnapBegin
	binary.BigEndian.PutUint32(msg[9:], testShards+1)
	binary.BigEndian.PutUint32(msg[13:], testProcs)
	binary.BigEndian.PutUint32(msg[17:], testWindow)
	if _, _, err := db.NewReplica().Apply(msg); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
