package durable_test

// External-package tests for the replication stream (replicate.go): the
// internal durable tests cannot import internal/simio (simio itself
// imports durable), so the tests that model backup crashes with the
// simulated filesystem live here, against the public API only.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"detectable/internal/durable"
	"detectable/internal/simio"
)

const (
	testShards = 2
	testProcs  = 4
	testWindow = 8
)

func openSim(t *testing.T, fsim *simio.Fs) *durable.DB {
	t.Helper()
	db, err := durable.OpenFs(fsim, "/data", testShards, testProcs, testWindow)
	if err != nil {
		t.Fatalf("OpenFs: %v", err)
	}
	return db
}

// workload drives a representative mix through db: two long-lived
// sessions committing puts across both shards, an observer-ID burn, and
// a third session that ends durably.
func workload(t *testing.T, db *durable.DB) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
	}
	must(db.AppendHello(1, 0))
	must(db.AppendHello(2, 1))
	reqs := map[uint64]uint64{}
	commit := func(sid uint64, i int) {
		shard := i % testShards
		key := fmt.Sprintf("s%d-k%d", shard, i%3)
		val := int64(i + 1)
		db.ShardBacking(shard).Persist(key, val)
		reqs[sid]++
		must(db.CommitOutcome(sid, reqs[sid], []byte(fmt.Sprintf("%s=%d", key, val))))
	}
	for i := 0; i < 12; i++ {
		commit(1+uint64(i%2), i)
	}
	must(db.NoteSID(100))
	must(db.AppendHello(3, 2))
	commit(3, 12)
	must(db.AppendEnd(3))
}

// drain collects the stream staged on a closed (or closing) subscription
// and splits it into messages.
func drain(t *testing.T, sub *durable.ReplSub) [][]byte {
	t.Helper()
	var msgs [][]byte
	for {
		chunk, err := sub.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return msgs
			}
			t.Fatalf("Next: %v", err)
		}
		for len(chunk) > 0 {
			n := int(binary.BigEndian.Uint32(chunk))
			msgs = append(msgs, append([]byte(nil), chunk[4:4+n]...))
			chunk = chunk[4+n:]
		}
	}
}

func applyAll(t *testing.T, rep *durable.Replica, msgs [][]byte) {
	t.Helper()
	for i, m := range msgs {
		if _, _, err := rep.Apply(m); err != nil {
			t.Fatalf("Apply msg %d (kind 0x%02x): %v", i, m[0], err)
		}
	}
}

// TestReplicationLiveTapConverges streams a workload through a live tap
// (subscription opened before any record exists) into a backup and pins
// convergence with StateHash; a second full apply of the same stream must
// be a no-op (applies are idempotent).
func TestReplicationLiveTapConverges(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	workload(t, pdb)
	sub.Close()
	msgs := drain(t, sub)
	want := pdb.StateHash()

	bfs := simio.New()
	bdb := openSim(t, bfs)
	applyAll(t, bdb.NewReplica(), msgs)
	if got := bdb.StateHash(); got != want {
		t.Fatalf("backup hash %s, primary %s", got, want)
	}
	applyAll(t, bdb.NewReplica(), msgs)
	if got := bdb.StateHash(); got != want {
		t.Fatalf("double apply diverged: %s, want %s", got, want)
	}
	// The backup's own disk holds the same state: recover it fresh.
	if err := bdb.Close(); err != nil {
		t.Fatalf("backup close: %v", err)
	}
	bdb2 := openSim(t, bfs)
	defer bdb2.Close()
	if got := bdb2.StateHash(); got != want {
		t.Fatalf("recovered backup hash %s, want %s", got, want)
	}
}

// TestReplicationSnapshotResync subscribes after the workload ran, so the
// whole state arrives as a fuzzy snapshot, and checks the SnapEnd
// reconciliation: a session the backup still believes live but the
// snapshot no longer asserts must be ended.
func TestReplicationSnapshotResync(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub1 := pdb.Subscribe(0, false)
	workload(t, pdb) // ends session 3
	sub1.Close()

	bdb := openSim(t, simio.New())
	applyAll(t, bdb.NewReplica(), drain(t, sub1))
	if got := bdb.StateHash(); got != pdb.StateHash() {
		t.Fatalf("after live tap: backup %s, primary %s", got, pdb.StateHash())
	}

	// Primary moves on while the backup is disconnected: session 2 ends,
	// new writes land.
	if err := db2More(pdb); err != nil {
		t.Fatal(err)
	}

	// Reconnect: snapshot-only stream (no records tapped after Close).
	sub2 := pdb.Subscribe(0, false)
	sub2.Close()
	snap := drain(t, sub2)
	applyAll(t, bdb.NewReplica(), snap)
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("after resync: backup %s, primary %s", got, want)
	}
	for _, s := range bdb.Sessions() {
		if s.SID == 2 {
			t.Fatalf("session 2 still live on the backup after SnapEnd reconciliation")
		}
	}
	// Idempotence of the snapshot itself.
	applyAll(t, bdb.NewReplica(), snap)
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("snapshot re-apply diverged: %s, want %s", got, want)
	}
}

func db2More(db *durable.DB) error {
	if err := db.AppendEnd(2); err != nil {
		return err
	}
	db.ShardBacking(0).Persist("post-k", 999)
	return db.CommitOutcome(1, 50, []byte("post-k=999"))
}

// TestReplicationKillAtEveryFrame is the stream-interruption sweep: for
// every prefix of the replication stream, a backup that applied exactly
// that prefix, crashed (close + recover its own data directory) and then
// re-synced from a fresh primary snapshot must converge to the primary's
// StateHash — and applying the resync snapshot twice must change nothing.
// Cuts inside a frame equal the previous frame boundary by construction
// (the wire delivers whole frames or nothing), so sweeping frame
// boundaries covers every byte.
func TestReplicationKillAtEveryFrame(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	workload(t, pdb)
	sub.Close()
	msgs := drain(t, sub)
	want := pdb.StateHash()

	// One resync snapshot reused for every cut: the primary is quiescent,
	// so each subscription would stage identical state.
	rsub := pdb.Subscribe(0, false)
	rsub.Close()
	resync := drain(t, rsub)

	for cut := 0; cut <= len(msgs); cut++ {
		bfs := simio.New()
		bdb := openSim(t, bfs)
		applyAll(t, bdb.NewReplica(), msgs[:cut])
		// Crash the backup: recovery must accept whatever prefix its own
		// logs hold (torn tails truncate, staged-but-unbarriered session
		// records never reached the medium).
		if err := bdb.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		bdb = openSim(t, bfs)
		applyAll(t, bdb.NewReplica(), resync)
		if got := bdb.StateHash(); got != want {
			t.Fatalf("cut %d/%d: resynced hash %s, want %s", cut, len(msgs), got, want)
		}
		applyAll(t, bdb.NewReplica(), resync)
		if got := bdb.StateHash(); got != want {
			t.Fatalf("cut %d/%d: duplicate resync diverged to %s, want %s", cut, len(msgs), got, want)
		}
		bdb.Close()
	}
}

// TestSyncAckGatesCommit pins the semi-synchronous contract: once a
// syncAck subscriber has acknowledged its snapshot barrier, a commit does
// not return until the commit's barrier is acknowledged; acking (or
// closing the subscription) releases it.
func TestSyncAckGatesCommit(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	sub := db.Subscribe(0, true)
	defer sub.Close()
	sub.Ack(sub.SnapSeq()) // bootstrap complete: the sub gates from here on

	done := make(chan error, 1)
	go func() { done <- db.AppendHello(1, 0) }()
	select {
	case err := <-done:
		t.Fatalf("commit returned before the barrier ack (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	sub.Ack(1 << 60) // past any barrier this test issues
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AppendHello: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after the ack")
	}

	// A closed subscription must release waiters too.
	sub2 := db.Subscribe(0, true)
	sub2.Ack(sub2.SnapSeq())
	go func() { done <- db.NoteSID(7) }()
	time.Sleep(20 * time.Millisecond)
	sub2.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("NoteSID: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit still blocked after subscription close")
	}
}

// TestSyncAckTimeoutDropsLaggard pins degraded mode: a synchronous
// subscriber that went silent after completing its bootstrap is dropped
// after the ack timeout and the commit completes; the hub forgets the
// laggard.
func TestSyncAckTimeoutDropsLaggard(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	db.SetReplAckTimeout(100 * time.Millisecond)
	sub := db.Subscribe(0, true)
	sub.Ack(sub.SnapSeq()) // bootstrapped, then never acks again

	start := time.Now()
	if err := db.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	if e := time.Since(start); e < 80*time.Millisecond {
		t.Fatalf("commit returned in %v — the ack gate never engaged", e)
	}
	if _, _, subs := db.ReplStatus(); subs != 0 {
		t.Fatalf("laggard still registered: subs=%d", subs)
	}
	// Subsequent commits are free again (degraded, not wedged).
	start = time.Now()
	if err := db.NoteSID(9); err != nil {
		t.Fatalf("NoteSID: %v", err)
	}
	if e := time.Since(start); e > 50*time.Millisecond {
		t.Fatalf("post-drop commit took %v, still gated", e)
	}
}

// TestBootstrappingSubscriberDoesNotGate pins the gating threshold: a
// syncAck subscriber that has not yet acknowledged its snapshot barrier
// neither delays commits nor gets dropped as a laggard — a replica whose
// initial snapshot transfer outlives the ack timeout must stay attached
// and become the commit gate only once its SnapEnd ack arrives.
func TestBootstrappingSubscriberDoesNotGate(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	db.SetReplAckTimeout(100 * time.Millisecond)
	sub := db.Subscribe(0, true) // snapshot staged, nothing acked yet
	defer sub.Close()

	start := time.Now()
	if err := db.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	if e := time.Since(start); e > 50*time.Millisecond {
		t.Fatalf("commit took %v while the subscriber was still bootstrapping", e)
	}
	if _, _, subs := db.ReplStatus(); subs != 1 {
		t.Fatalf("bootstrapping subscriber was dropped: subs=%d", subs)
	}

	// Acking the snapshot barrier engages the gate: the next commit blocks
	// until its own barrier is acked.
	sub.Ack(sub.SnapSeq())
	done := make(chan error, 1)
	go func() { done <- db.NoteSID(50) }()
	select {
	case err := <-done:
		t.Fatalf("commit returned before the barrier ack (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	sub.Ack(1 << 60)
	if err := <-done; err != nil {
		t.Fatalf("NoteSID: %v", err)
	}
}

// TestSnapshotLargerThanSubLimit pins bootstrap for states bigger than
// the subscriber's backlog limit: the snapshot must stage in full (exempt
// from the limit) and replicate a converged backup, where before the
// exemption the subscription tore itself down mid-snapshot and every
// resync died the same way.
func TestSnapshotLargerThanSubLimit(t *testing.T) {
	pdb := openSim(t, simio.New())
	defer pdb.Close()
	if err := pdb.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	reply := make([]byte, 256)
	for i := 0; i < 64; i++ {
		pdb.ShardBacking(i % testShards).Persist(fmt.Sprintf("key-%04d", i), int64(i))
		if err := pdb.CommitOutcome(1, uint64(i+1), reply); err != nil {
			t.Fatalf("CommitOutcome: %v", err)
		}
	}

	const limit = 1 << 10 // far below the staged snapshot's size
	sub := pdb.Subscribe(limit, false)
	sub.Close()
	msgs := drain(t, sub)
	var snapEnds int
	for _, m := range msgs {
		if m[0] == durable.ReplSnapEnd {
			snapEnds++
		}
	}
	if snapEnds != 1 {
		t.Fatalf("snapshot did not stage to completion: %d SnapEnd messages in %d", snapEnds, len(msgs))
	}

	bdb := openSim(t, simio.New())
	defer bdb.Close()
	applyAll(t, bdb.NewReplica(), msgs)
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("backup hash %s, primary %s", got, want)
	}
}

// Sessions-log record kinds as they ride inside ReplSessRec messages —
// a stable on-disk format (docs/DURABILITY.md), mirrored here to craft
// streams whose interleaving a live primary cannot be forced to produce.
const (
	sessRecHello   = 0x02
	sessRecOutcome = 0x03
)

// TestInSnapshotBarrierDeferred pins the snapshot/barrier interleaving
// rule: a barrier that arrives mid-snapshot must neither anchor the staged
// records nor be acked — the staged outcomes may precede their snapshot
// hellos, and anchoring them hello-less writes records recovery silently
// drops, so a crash-then-promote would lose a verdict the primary believed
// durable on both nodes. Everything defers to SnapEnd.
func TestInSnapshotBarrierDeferred(t *testing.T) {
	snapBegin := func(gen uint64) []byte {
		msg := make([]byte, 21)
		msg[0] = durable.ReplSnapBegin
		binary.BigEndian.PutUint64(msg[1:], gen)
		binary.BigEndian.PutUint32(msg[9:], testShards)
		binary.BigEndian.PutUint32(msg[13:], testProcs)
		binary.BigEndian.PutUint32(msg[17:], testWindow)
		return msg
	}
	barrier := func(kind byte, seq uint64) []byte {
		msg := make([]byte, 9)
		msg[0] = kind
		binary.BigEndian.PutUint64(msg[1:], seq)
		return msg
	}
	hello := func(sid uint64, pid int64) []byte {
		msg := []byte{durable.ReplSessRec, sessRecHello}
		msg = binary.BigEndian.AppendUint64(msg, sid)
		return binary.BigEndian.AppendUint64(msg, uint64(pid))
	}
	outcome := func(sid, req uint64, reply string) []byte {
		msg := []byte{durable.ReplSessRec, sessRecOutcome}
		msg = binary.BigEndian.AppendUint64(msg, sid)
		msg = binary.BigEndian.AppendUint64(msg, req)
		msg = binary.BigEndian.AppendUint32(msg, uint32(len(reply)))
		return append(msg, reply...)
	}
	apply := func(rep *durable.Replica, msg []byte) (uint64, bool) {
		t.Helper()
		seq, b, err := rep.Apply(msg)
		if err != nil {
			t.Fatalf("Apply (kind 0x%02x): %v", msg[0], err)
		}
		return seq, b
	}

	// The primary taps an outcome for sid 9 while the snapshot is still in
	// its shard section (sid 9's hello arrives only in the later sessions
	// section), then an epoch barrier for it.
	fsim := simio.New()
	bdb := openSim(t, fsim)
	rep := bdb.NewReplica()
	apply(rep, snapBegin(0))
	apply(rep, outcome(9, 1, "verdict"))
	if seq, b := apply(rep, barrier(durable.ReplBarrier, 1)); b {
		t.Fatalf("mid-snapshot barrier anchored and acked (seq=%d)", seq)
	}
	// Crash before SnapEnd: the deferred records must not be on disk.
	if err := bdb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	bdb = openSim(t, fsim)
	if n := len(bdb.Sessions()); n != 0 {
		t.Fatalf("crash mid-snapshot recovered %d sessions, want 0", n)
	}

	// Re-sync with the same interleaving carried through SnapEnd: the
	// barrier is still deferred, and SnapEnd anchors tapped outcome and
	// snapshot hello together.
	rep = bdb.NewReplica()
	apply(rep, snapBegin(0))
	apply(rep, outcome(9, 1, "verdict"))
	if _, b := apply(rep, barrier(durable.ReplBarrier, 1)); b {
		t.Fatal("mid-snapshot barrier acked on re-sync")
	}
	apply(rep, hello(9, 0))
	apply(rep, outcome(9, 1, "verdict"))
	seq, b := apply(rep, barrier(durable.ReplSnapEnd, 2))
	if !b || seq != 2 {
		t.Fatalf("SnapEnd: seq=%d barrier=%v, want 2/true", seq, b)
	}
	check := func(db *durable.DB, when string) {
		t.Helper()
		ss := db.Sessions()
		if len(ss) != 1 || ss[0].SID != 9 {
			t.Fatalf("%s: sessions %+v, want exactly sid 9", when, ss)
		}
		if got := string(ss[0].Window[1]); got != "verdict" {
			t.Fatalf("%s: window[1] = %q, want %q", when, got, "verdict")
		}
	}
	check(bdb, "after SnapEnd")
	// The verdict the SnapEnd ack promised survives a crash + promotion.
	if err := bdb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	bdb = openSim(t, fsim)
	defer bdb.Close()
	check(bdb, "after crash")
}

// TestGenerationFencing pins the fencing arithmetic: generations only
// advance, survive reopen, and a replica refuses a stream whose primary
// announces a generation below its own.
func TestGenerationFencing(t *testing.T) {
	fsim := simio.New()
	db := openSim(t, fsim)
	if g := db.Generation(); g != 0 {
		t.Fatalf("fresh generation = %d, want 0", g)
	}
	if err := db.SetGeneration(2); err != nil {
		t.Fatalf("SetGeneration(2): %v", err)
	}
	if err := db.SetGeneration(1); err == nil {
		t.Fatal("SetGeneration(1) after 2 succeeded; fencing rolled back")
	}
	if err := db.SetGeneration(2); err != nil {
		t.Fatalf("SetGeneration(2) re-assert: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db = openSim(t, fsim)
	defer db.Close()
	if g := db.Generation(); g != 2 {
		t.Fatalf("generation after reopen = %d, want 2", g)
	}

	snapBegin := func(gen uint64) []byte {
		msg := make([]byte, 21)
		msg[0] = durable.ReplSnapBegin
		binary.BigEndian.PutUint64(msg[1:], gen)
		binary.BigEndian.PutUint32(msg[9:], testShards)
		binary.BigEndian.PutUint32(msg[13:], testProcs)
		binary.BigEndian.PutUint32(msg[17:], testWindow)
		return msg
	}
	rep := db.NewReplica()
	if _, _, err := rep.Apply(snapBegin(1)); !errors.Is(err, durable.ErrStalePrimary) {
		t.Fatalf("stale primary (gen 1 < 2) accepted: err=%v", err)
	}
	// A newer primary advances the replica's own fencing generation.
	if _, _, err := rep.Apply(snapBegin(5)); err != nil {
		t.Fatalf("newer primary refused: %v", err)
	}
	if g := db.Generation(); g != 5 {
		t.Fatalf("replica generation = %d after gen-5 snapshot, want 5", g)
	}
}

// TestReplicaRejectsGeometryMismatch: a snapshot whose shard/proc/window
// geometry differs from the backup's must be refused before any record
// applies.
func TestReplicaRejectsGeometryMismatch(t *testing.T) {
	db := openSim(t, simio.New())
	defer db.Close()
	msg := make([]byte, 21)
	msg[0] = durable.ReplSnapBegin
	binary.BigEndian.PutUint32(msg[9:], testShards+1)
	binary.BigEndian.PutUint32(msg[13:], testProcs)
	binary.BigEndian.PutUint32(msg[17:], testWindow)
	if _, _, err := db.NewReplica().Apply(msg); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
