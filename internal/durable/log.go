// Package durable is the file-backed persistence substrate behind the
// simulated NVM spaces: an on-disk data directory holding one append-only
// CRC-framed record log (plus a periodically compacted snapshot) per shard
// and one for the session layer, so that the paper's persist ordering maps
// onto write+fsync ordering and the whole process — not just a simulated
// epoch — can be killed and restarted without losing a single detectable
// verdict.
//
// The layering is deliberate: internal/nvm defines the pluggable Backing
// seam a Space forwards its logical persists through, this package supplies
// the file-backed implementation, internal/shardkv journals every
// linearized mutation through it, and internal/server makes each session's
// request-ID→outcome window durable so a client that reconnects after a
// whole-process crash still receives the original verdict. docs/DURABILITY.md
// is the normative description of the format and the recovery procedure.
//
// All I/O goes through the Fs seam (fs.go): the OS implementation by
// default, internal/simio's simulated filesystem under the crash-prefix
// model checker, which recovers from every crash point × torn-write variant
// of a workload and pins recovery as a pure function of the byte image via
// StateHash.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Record framing: every record in a log or snapshot file is
//
//	u32(len(payload)) u32(crc32c(payload)) payload
//
// with big-endian integers. A record whose length field runs past the end
// of the file (a torn append) or whose CRC does not match (a corrupted
// tail) ends the valid prefix: recovery keeps everything before it and
// truncates the rest, exactly once, on open.
const (
	// FrameHeader is the framed-record header size: u32 length + u32 CRC.
	FrameHeader = 8
	frameHeader = FrameHeader
	// MaxRecord bounds one record's payload; a larger length field cannot
	// come from a writer of this package and is treated as corruption.
	MaxRecord = 1 << 24
)

// castagnoli is the CRC-32C table used for record checksums (the
// polynomial NVM-adjacent storage systems conventionally use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log is one append-only CRC-framed record file. Appends are staged in
// memory — they do not reach the kernel until the next Sync — so a batch
// of records costs one write plus one fsync, and a record can never become
// durable (or even reach the page cache) before the barrier that is
// supposed to order it. All methods are safe for concurrent use; the mutex
// is held across fsync, so an Append that completed before a Sync call
// began is durable when that Sync returns.
//
// A failed barrier poisons the log: after a write or fsync error every
// subsequent Append and Sync fails with the original error. Retrying an
// fsync that already failed is not safe — the kernel may have dropped the
// dirty pages while reporting the error, so a later "successful" fsync
// would claim durability for data that never reached the disk.
type Log struct {
	mu    sync.Mutex
	f     File
	path  string
	size  int64  // bytes of valid, framed records in the file
	buf   []byte // framed records staged since the last flush
	dirty bool   // flushed to the file since the last fsync
	err   error  // sticky poison from a failed write or fsync
	// syncFn is the fsync implementation, replaceable by fault-injection
	// tests; nil means File.Sync.
	syncFn func(File) error
}

// OpenLog opens the record log at path on the real filesystem. See
// OpenLogFs.
func OpenLog(path string, fn func(rec []byte) error) (*Log, error) {
	return OpenLogFs(OS, path, fn)
}

// OpenLogFs opens (creating if needed) the record log at path, replays
// every valid record through fn in append order, truncates the file to the
// last valid prefix (discarding a torn or corrupted tail), and returns the
// log positioned for appending. A replay error aborts the open.
//
// A freshly created log gets its parent directory fsynced before use: a
// log whose directory entry is still unsynced can vanish wholesale in a
// crash — taking fsynced records with it — which is strictly worse than a
// torn tail because recovery cannot even see that data was lost.
func OpenLogFs(fsys Fs, path string, fn func(rec []byte) error) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	created := false
	if err != nil && os.IsNotExist(err) {
		f, err = fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		created = err == nil
	}
	if err != nil {
		return nil, err
	}
	if created {
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	l := &Log{f: f, path: path}
	valid, err := scanRecords(f, fn)
	if err != nil {
		f.Close()
		return nil, err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size > valid {
		// Torn or corrupted tail: keep the last valid prefix, drop the rest.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
	}
	l.size = valid
	return l, nil
}

// scanRecords reads framed records from the start of f, calling fn for
// each valid one, and returns the byte offset of the end of the valid
// prefix. Corruption (bad CRC, impossible length, short tail) is not an
// error: it just ends the prefix.
func scanRecords(f File, fn func(rec []byte) error) (int64, error) {
	data, err := readAll(f)
	if err != nil {
		return 0, err
	}
	var off int64
	for {
		rec, n := nextRecord(data[off:])
		if n == 0 {
			return off, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, fmt.Errorf("durable: replay %s at offset %d: %w", f.Name(), off, err)
			}
		}
		off += n
	}
}

// nextRecord decodes the first framed record in b, returning the payload
// and the total framed size, or (nil, 0) when b starts with a torn,
// corrupted or absent record.
func nextRecord(b []byte) ([]byte, int64) {
	if len(b) < frameHeader {
		return nil, 0
	}
	n := binary.BigEndian.Uint32(b)
	if n > MaxRecord || int64(len(b)) < frameHeader+int64(n) {
		return nil, 0
	}
	want := binary.BigEndian.Uint32(b[4:])
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, 0
	}
	return payload, frameHeader + int64(n)
}

// readAll reads f from the start without moving its append position.
func readAll(f File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// Append frames payload and stages it at the end of the log. The record
// stays in memory until the next Sync; callers must not release an effect
// that depends on it before that barrier.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("durable: record of %d bytes exceeds MaxRecord", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.buf = appendFrame(l.buf, payload)
	return nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// Sync is the durability barrier: every Append that returned before Sync
// was called is physically durable when it returns. Staged records are
// flushed in one coalesced write, then fsynced. A clean log (no appends
// since the last barrier) syncs nothing. A failed barrier poisons the log
// permanently — see the Log doc comment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

// flushLocked writes the staged records to the file in one vectored
// append. Called with l.mu held.
func (l *Log) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.WriteAt(l.buf, l.size); err != nil {
		// The file offset the staged records were meant for may now hold a
		// partial write; nothing after this point can be trusted durable.
		l.poison(err)
		return l.err
	}
	l.size += int64(len(l.buf))
	l.buf = l.buf[:0]
	l.dirty = true
	return nil
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if !l.dirty {
		return nil
	}
	if err := l.fsync(); err != nil {
		// fsyncgate semantics: the kernel may drop dirty pages on a failed
		// fsync, so retrying could report durability for data that is gone.
		// Poison instead of retrying.
		l.poison(err)
		return l.err
	}
	l.dirty = false
	return nil
}

// poison records the first write/fsync failure; every later Append, Sync,
// and Reset returns it. Called with l.mu held.
func (l *Log) poison(cause error) {
	if l.err == nil {
		l.err = fmt.Errorf("durable: log %s poisoned by failed barrier: %w", filepath.Base(l.path), cause)
	}
}

// fsync calls the possibly-injected sync implementation.
func (l *Log) fsync() error {
	if l.syncFn != nil {
		return l.syncFn(l.f)
	}
	return l.f.Sync()
}

// Size returns the log's valid byte length, counting staged records.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size + int64(len(l.buf))
}

// Reset truncates the log to empty, discarding staged records — the
// tail-discard half of a compaction, called only after the compacted
// snapshot is durably in place (a crash between the snapshot rename and
// this truncate merely replays records the snapshot already contains).
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.f.Truncate(0); err != nil {
		l.poison(err)
		return l.err
	}
	l.size = 0
	l.buf = l.buf[:0]
	l.dirty = false
	if err := l.fsync(); err != nil {
		l.poison(err)
		return l.err
	}
	return nil
}

// Close syncs and closes the file. A poisoned log still closes its file
// but reports the poison error.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// WriteSnapshot atomically replaces the snapshot at path on the real
// filesystem. See WriteSnapshotFs.
func WriteSnapshot(path string, emit func(append func(rec []byte) error) error) error {
	return WriteSnapshotFs(OS, path, emit)
}

// WriteSnapshotFs atomically replaces the snapshot at path with the framed
// records produced by emit: records go to a temporary file, which is
// synced, renamed over path, and the parent directory synced — so a crash
// anywhere leaves either the old snapshot or the new one, never a mix.
func WriteSnapshotFs(fsys Fs, path string, emit func(append func(rec []byte) error) error) error {
	return atomicReplace(fsys, path, func(f File) error {
		var enc []byte
		return emit(func(rec []byte) error {
			enc = appendFrame(enc[:0], rec)
			_, err := f.Write(enc)
			return err
		})
	})
}

// AtomicWriteFile atomically replaces path with data, fsyncing contents
// before the rename and the directory after it (the MANIFEST writer).
func AtomicWriteFile(path string, data []byte) error {
	return AtomicWriteFileFs(OS, path, data)
}

// AtomicWriteFileFs is AtomicWriteFile through an explicit Fs.
func AtomicWriteFileFs(fsys Fs, path string, data []byte) error {
	return atomicReplace(fsys, path, func(f File) error {
		_, err := f.Write(data)
		return err
	})
}

// atomicReplace is the shared crash-atomic replacement sequence: write a
// temporary file via fill, fsync it, rename it over path, fsync the
// parent directory. Contents are durable before the rename can be, so a
// crash leaves either the complete old file or the complete new one.
func atomicReplace(fsys Fs, path string, fill func(f File) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	werr := fill(f)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return werr
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// ReplaySnapshot streams the snapshot at path on the real filesystem. See
// ReplaySnapshotFs.
func ReplaySnapshot(path string, fn func(rec []byte) error) error {
	return ReplaySnapshotFs(OS, path, fn)
}

// ReplaySnapshotFs streams the valid record prefix of the snapshot at path
// through fn. A missing snapshot is not an error (no compaction has
// happened yet); a truncated or corrupted one yields its valid prefix,
// mirroring log recovery.
func ReplaySnapshotFs(fsys Fs, path string, fn func(rec []byte) error) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = scanRecords(f, fn)
	return err
}
