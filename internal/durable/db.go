package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultCompactAt is the per-log byte threshold past which the next
// append triggers a compaction: the live state is written to a fresh
// snapshot and the log is reset.
const DefaultCompactAt = 1 << 20

// Record kinds. Shard logs and shard snapshots hold only recPut; the
// sessions log holds the session-lifecycle kinds, and the sessions
// snapshot additionally a recNextSID high-water mark.
const (
	recPut     = 0x01 // u16 key, i64 val — one durable root persisted
	recHello   = 0x02 // u64 sid, i64 pid — session opened
	recOutcome = 0x03 // u64 sid, u64 reqID, u32 len, reply — verdict persisted
	recEnd     = 0x04 // u64 sid — session closed
	recNextSID = 0x05 // u64 next — session-ID high-water mark
)

// manifest pins the store geometry a data directory was created with. A
// reopen under different geometry is refused: shard routing (hash mod
// shards) and session process slots are only meaningful under the original
// one.
type manifest struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	Procs   int `json:"procs"`
	// Generation is the replication fencing generation (replicate.go):
	// 0 at creation, advanced durably by every promotion. A primary whose
	// generation is behind a replica's has been fenced.
	Generation uint64 `json:"generation,omitempty"`
}

// SessionState is one recovered session: its identity, leased process
// slot, and persisted outcome window.
type SessionState struct {
	SID   uint64
	PID   int
	MaxID uint64
	// Window maps request ID → the encoded reply released for it.
	Window map[uint64][]byte
}

// shardFile is one shard's durable state: the record log, the snapshot
// path, and the live key→value mirror the next compaction writes.
type shardFile struct {
	mu    sync.Mutex
	log   *Log
	snap  string
	state map[string]int64
	enc   []byte // reusable put-record scratch, guarded by mu
}

// sessionsFile is the session layer's durable state.
type sessionsFile struct {
	mu      sync.Mutex
	log     *Log
	snap    string
	state   map[uint64]*SessionState
	nextSID uint64
	window  int
	enc     []byte
}

// DB is one open durable data directory: per-shard record logs and
// snapshots plus the sessions log. It implements the commit protocol of
// docs/DURABILITY.md: mutations are journaled into shard logs as they
// linearize, and CommitOutcome orders "shard records durable" strictly
// before "outcome record durable" so no released verdict can outlive its
// effect across a crash.
type DB struct {
	fs        Fs
	dir       string
	unlock    func() // releases the exclusive lock on the data directory
	shards    []*shardFile
	sessions  sessionsFile
	procs     int
	compactAt int64
	gc        groupCommit
	repl      replState     // primary/backup replication hub (replicate.go)
	view      replView      // replica read view, published per barrier (view.go)
	gen       atomic.Uint64 // fencing generation mirrored from the MANIFEST
}

// Open opens the data directory at dir on the real filesystem. See OpenFs.
func Open(dir string, shards, procs, window int) (*DB, error) {
	return OpenFs(OS, dir, shards, procs, window)
}

// OpenFs opens (creating if needed) the data directory at dir for a store
// of the given geometry, recovering all shard state and session windows
// from disk. Torn or corrupted log tails are truncated to the last valid
// prefix. window bounds each recovered session's outcome window (use
// server.Window). Reopening a directory created under a different
// geometry is an error. All I/O goes through fsys — the OS for real
// deployments, internal/simio's simulated filesystem under the
// crash-prefix model checker.
func OpenFs(fsys Fs, dir string, shards, procs, window int) (*DB, error) {
	if shards < 1 || procs < 1 {
		return nil, fmt.Errorf("durable: need shards ≥ 1 and procs ≥ 1 (got %d, %d)", shards, procs)
	}
	if window < 1 {
		return nil, fmt.Errorf("durable: need window ≥ 1 (got %d)", window)
	}
	if err := mkdirAllSynced(fsys, dir); err != nil {
		return nil, err
	}
	unlock, err := fsys.Lock(dir)
	if err != nil {
		return nil, err
	}
	gen, err := checkManifest(fsys, dir, shards, procs)
	if err != nil {
		unlock()
		return nil, err
	}

	db := &DB{fs: fsys, dir: dir, unlock: unlock, procs: procs, compactAt: DefaultCompactAt}
	db.gen.Store(gen)
	db.sessions = sessionsFile{
		snap:   filepath.Join(dir, "sessions.snap"),
		state:  make(map[uint64]*SessionState),
		window: window,
	}
	for i := 0; i < shards; i++ {
		sf := &shardFile{
			snap:  filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", i)),
			state: make(map[string]int64),
		}
		replay := func(rec []byte) error { return sf.apply(rec) }
		if err := ReplaySnapshotFs(fsys, sf.snap, replay); err != nil {
			db.closePartial()
			return nil, err
		}
		log, err := OpenLogFs(fsys, filepath.Join(dir, fmt.Sprintf("shard-%03d.log", i)), replay)
		if err != nil {
			db.closePartial()
			return nil, err
		}
		sf.log = log
		db.shards = append(db.shards, sf)
	}
	ss := &db.sessions
	replay := func(rec []byte) error { return ss.apply(rec) }
	if err := ReplaySnapshotFs(fsys, ss.snap, replay); err != nil {
		db.closePartial()
		return nil, err
	}
	log, err := OpenLogFs(fsys, filepath.Join(dir, "sessions.log"), replay)
	if err != nil {
		db.closePartial()
		return nil, err
	}
	ss.log = log
	return db, nil
}

// checkManifest creates the geometry manifest on first open and verifies
// it on every later one, returning the fencing generation it records.
func checkManifest(fsys Fs, dir string, shards, procs int) (uint64, error) {
	path := filepath.Join(dir, "MANIFEST")
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		data, _ = json.Marshal(manifest{Version: 1, Shards: shards, Procs: procs})
		return 0, AtomicWriteFileFs(fsys, path, append(data, '\n'))
	}
	if err != nil {
		return 0, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, fmt.Errorf("durable: corrupt MANIFEST in %s: %w", dir, err)
	}
	if m.Shards != shards || m.Procs != procs {
		return 0, fmt.Errorf("durable: %s was created with shards=%d procs=%d, refusing to open with shards=%d procs=%d",
			dir, m.Shards, m.Procs, shards, procs)
	}
	return m.Generation, nil
}

func (db *DB) closePartial() {
	for _, sf := range db.shards {
		if sf.log != nil {
			sf.log.Close()
		}
	}
	if db.sessions.log != nil {
		db.sessions.log.Close()
	}
	db.unlock()
}

// NumShards returns the number of shard logs.
func (db *DB) NumShards() int { return len(db.shards) }

// Procs returns the process-slot count the directory was created for.
func (db *DB) Procs() int { return db.procs }

// SetCompactThreshold overrides the per-log compaction threshold, for
// tests that want compactions after a handful of records.
func (db *DB) SetCompactThreshold(bytes int64) { db.compactAt = bytes }

// apply folds one shard record into the mirror.
func (sf *shardFile) apply(rec []byte) error {
	if len(rec) < 1 || rec[0] != recPut {
		return fmt.Errorf("unexpected shard record kind")
	}
	key, val, ok := decodePut(rec)
	if !ok {
		return fmt.Errorf("malformed put record")
	}
	sf.state[key] = val
	return nil
}

func encodePut(dst []byte, key string, val int64) []byte {
	dst = append(dst, recPut)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(key)))
	dst = append(dst, key...)
	return binary.BigEndian.AppendUint64(dst, uint64(val))
}

func decodePut(rec []byte) (key string, val int64, ok bool) {
	if len(rec) < 3 {
		return "", 0, false
	}
	n := int(binary.BigEndian.Uint16(rec[1:]))
	if len(rec) != 3+n+8 {
		return "", 0, false
	}
	key = string(rec[3 : 3+n])
	val = int64(binary.BigEndian.Uint64(rec[3+n:]))
	return key, val, true
}

// RangeShard calls fn for every durable root recovered in shard i, in
// sorted key order (deterministic restores make recovery idempotence
// testable).
func (db *DB) RangeShard(i int, fn func(key string, val int64)) {
	sf := db.shards[i]
	sf.mu.Lock()
	keys := make([]string, 0, len(sf.state))
	for k := range sf.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int64, len(keys))
	for j, k := range keys {
		vals[j] = sf.state[k]
	}
	sf.mu.Unlock()
	for j, k := range keys {
		fn(k, vals[j])
	}
}

// ShardBacking adapts one shard's record log to internal/nvm's Backing
// seam: Persist journals one durable root, Sync is that shard's
// durability barrier. Obtain one from DB.ShardBacking and hand it to
// nvm.Space.SetBacking.
type ShardBacking struct {
	db *DB
	i  int
}

// ShardBacking returns the backing-store view of shard i.
func (db *DB) ShardBacking(i int) ShardBacking { return ShardBacking{db: db, i: i} }

// Persist implements nvm.Backing: it appends one persisted root to the
// shard's log, buffered until the next Sync or CommitOutcome barrier.
func (b ShardBacking) Persist(key string, val int64) { b.db.journalPut(b.i, key, val) }

// Sync implements nvm.Backing.
func (b ShardBacking) Sync() error { return b.db.shards[b.i].log.Sync() }

// journalPut appends one persisted root to shard i's log and mirror,
// compacting when the log crosses the threshold. The caller's key may
// alias a transient buffer (the server decodes keys zero-copy out of the
// connection frame), so the mirror clones it on first insert — the only
// place this layer retains a key.
func (db *DB) journalPut(i int, key string, val int64) {
	sf := db.shards[i]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if _, ok := sf.state[key]; !ok {
		key = strings.Clone(key)
	}
	sf.state[key] = val
	sf.enc = encodePut(sf.enc[:0], key, val)
	if err := sf.log.Append(sf.enc); err != nil {
		// The append never reached the file: the mirror and the log disagree
		// and no later Sync can make the verdict durable. This is the one
		// unrecoverable case; fail loudly rather than serve non-durable
		// verdicts as durable.
		panic(fmt.Sprintf("durable: shard %d append failed: %v", i, err))
	}
	db.repl.tapShard(i, sf.enc)
	if sf.log.Size() >= db.compactAt {
		if err := db.compactShardLocked(sf); err != nil {
			panic(fmt.Sprintf("durable: shard %d compaction failed: %v", i, err))
		}
	}
}

// writeSnapshot writes sf's mirror to a fresh snapshot, one put record per
// key in sorted order. Called with sf.mu held.
func (sf *shardFile) writeSnapshot(fsys Fs) error {
	return WriteSnapshotFs(fsys, sf.snap, func(emit func(rec []byte) error) error {
		keys := make([]string, 0, len(sf.state))
		for k := range sf.state {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := emit(encodePut(nil, k, sf.state[k])); err != nil {
				return err
			}
		}
		return nil
	})
}

// compactShardLocked snapshots sf and resets its log. Called with sf.mu
// held; a crash between the snapshot rename and the reset merely replays
// records the snapshot already contains (puts are last-wins).
func (db *DB) compactShardLocked(sf *shardFile) error {
	if err := sf.writeSnapshot(db.fs); err != nil {
		return err
	}
	return sf.log.Reset()
}

// CompactShard forces a compaction of shard i, for tests and shutdown.
func (db *DB) CompactShard(i int) error {
	sf := db.shards[i]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	return db.compactShardLocked(sf)
}

// SyncShards is the all-shards durability barrier: every mutation
// journaled before the call is durable when it returns. Clean logs cost
// nothing.
func (db *DB) SyncShards() error {
	for i, sf := range db.shards {
		if err := sf.log.Sync(); err != nil {
			return fmt.Errorf("durable: sync shard %d: %w", i, err)
		}
	}
	return nil
}

// ---- sessions ----

// apply folds one session record into the mirror. Hello records are
// idempotent (a compaction crash can replay a log over a snapshot that
// already contains the session); outcome records are last-wins.
func (ss *sessionsFile) apply(rec []byte) error {
	if len(rec) < 1 {
		return fmt.Errorf("empty session record")
	}
	switch rec[0] {
	case recHello:
		if len(rec) != 1+8+8 {
			return fmt.Errorf("malformed hello record")
		}
		sid := binary.BigEndian.Uint64(rec[1:])
		pid := int(int64(binary.BigEndian.Uint64(rec[9:])))
		if sid > ss.nextSID {
			ss.nextSID = sid
		}
		if _, ok := ss.state[sid]; !ok {
			ss.state[sid] = &SessionState{SID: sid, PID: pid, Window: make(map[uint64][]byte)}
		}
	case recOutcome:
		if len(rec) < 1+8+8+4 {
			return fmt.Errorf("malformed outcome record")
		}
		sid := binary.BigEndian.Uint64(rec[1:])
		req := binary.BigEndian.Uint64(rec[9:])
		n := int(binary.BigEndian.Uint32(rec[17:]))
		if len(rec) != 21+n {
			return fmt.Errorf("malformed outcome record body")
		}
		// An outcome for an absent session (END raced the outcome into the
		// log, or the hello sits past a truncated prefix) is ignorable.
		ss.noteOutcome(sid, req, rec[21:])
	case recEnd:
		if len(rec) != 1+8 {
			return fmt.Errorf("malformed end record")
		}
		delete(ss.state, binary.BigEndian.Uint64(rec[1:]))
	case recNextSID:
		if len(rec) != 1+8 {
			return fmt.Errorf("malformed next-sid record")
		}
		if next := binary.BigEndian.Uint64(rec[1:]); next > ss.nextSID {
			ss.nextSID = next
		}
	default:
		return fmt.Errorf("unexpected session record kind 0x%02x", rec[0])
	}
	return nil
}

// noteOutcome folds one (sid, reqID, reply) verdict into the mirror:
// window insert, high-water bump, eviction past the window bound. The
// single definition keeps live commits and recovery replay in lockstep.
// Must be called with ss.mu held.
func (ss *sessionsFile) noteOutcome(sid, reqID uint64, reply []byte) {
	s, ok := ss.state[sid]
	if !ok {
		return
	}
	s.Window[reqID] = append([]byte(nil), reply...)
	if reqID > s.MaxID {
		s.MaxID = reqID
	}
	for id := range s.Window {
		if id+uint64(ss.window) <= s.MaxID {
			delete(s.Window, id)
		}
	}
}

// Sessions returns a deep copy of every recovered live session, sorted by
// session ID.
func (db *DB) Sessions() []SessionState {
	ss := &db.sessions
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]SessionState, 0, len(ss.state))
	for _, s := range ss.state {
		cp := SessionState{SID: s.SID, PID: s.PID, MaxID: s.MaxID, Window: make(map[uint64][]byte, len(s.Window))}
		for id, reply := range s.Window {
			cp.Window[id] = append([]byte(nil), reply...)
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SID < out[j].SID })
	return out
}

// NextSID returns the session-ID high-water mark: every ID ever issued is
// ≤ it, so the server resumes numbering above it.
func (db *DB) NextSID() uint64 {
	db.sessions.mu.Lock()
	defer db.sessions.mu.Unlock()
	return db.sessions.nextSID
}

// AppendHello durably records a new session (sid, pid) — synced before
// returning, so a client never holds a session ID a restart would forget.
// The in-memory mirror is updated only after the record is durable: a
// failed append must not leave a phantom session for the next compaction
// to persist.
func (db *DB) AppendHello(sid uint64, pid int) error {
	ss := &db.sessions
	ss.mu.Lock()
	ss.enc = append(ss.enc[:0], recHello)
	ss.enc = binary.BigEndian.AppendUint64(ss.enc, sid)
	ss.enc = binary.BigEndian.AppendUint64(ss.enc, uint64(int64(pid)))
	if err := ss.log.Append(ss.enc); err != nil {
		ss.mu.Unlock()
		return err
	}
	if sid > ss.nextSID {
		ss.nextSID = sid
	}
	// Tentatively mirror before the barrier (a compaction barrier must
	// snapshot the new session); roll back on failure so a refused session
	// cannot linger as a phantom the next compaction persists.
	created := false
	if _, ok := ss.state[sid]; !ok {
		ss.state[sid] = &SessionState{SID: sid, PID: pid, Window: make(map[uint64][]byte)}
		created = true
	}
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		if created {
			delete(ss.state, sid)
		}
		ss.mu.Unlock()
		return err
	}
	db.repl.tapSess(ss.enc)
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	db.repl.waitBarrier(seq)
	return nil
}

// syncOrCompactSessionsLocked is the sessions-log durability barrier with
// bounded growth: past the threshold it compacts (the snapshot
// write+rename is itself the barrier) instead of syncing, so session
// churn — hellos, ends, observer ID burns — cannot grow the log without
// bound even when no mutating commit ever runs. Called with ss.mu held.
func (db *DB) syncOrCompactSessionsLocked() error {
	ss := &db.sessions
	if ss.log.Size() >= db.compactAt {
		return db.compactSessionsLocked()
	}
	return ss.log.Sync()
}

// NoteSID durably raises the session-ID high-water mark to at least sid
// without recording a recoverable session — used for observer sessions,
// which hold no slot and no window but whose IDs must still never be
// reissued after a restart (a stale observer resuming a recycled ID would
// attach to a stranger's session).
func (db *DB) NoteSID(sid uint64) error {
	ss := &db.sessions
	ss.mu.Lock()
	if sid <= ss.nextSID {
		ss.mu.Unlock()
		return nil
	}
	ss.enc = append(ss.enc[:0], recNextSID)
	ss.enc = binary.BigEndian.AppendUint64(ss.enc, sid)
	if err := ss.log.Append(ss.enc); err != nil {
		ss.mu.Unlock()
		return err
	}
	// Raise the mirror before the barrier: a compaction must snapshot the
	// raised mark, and burning an ID that fails to sync is always safe.
	ss.nextSID = sid
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		ss.mu.Unlock()
		return err
	}
	db.repl.tapSess(ss.enc)
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	db.repl.waitBarrier(seq)
	return nil
}

// AppendEnd durably records the end of session sid, releasing it from
// future recoveries.
func (db *DB) AppendEnd(sid uint64) error {
	ss := &db.sessions
	ss.mu.Lock()
	delete(ss.state, sid)
	ss.enc = append(ss.enc[:0], recEnd)
	ss.enc = binary.BigEndian.AppendUint64(ss.enc, sid)
	if err := ss.log.Append(ss.enc); err != nil {
		ss.mu.Unlock()
		return err
	}
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		ss.mu.Unlock()
		return err
	}
	db.repl.tapSess(ss.enc)
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	db.repl.waitBarrier(seq)
	return nil
}

// CommitOutcome makes one released verdict durable: shard effects first,
// then the (sid, reqID, reply) outcome record, then the sessions-log
// barrier. The ordering is the durability contract: an outcome record on
// disk implies its effects are on disk, so a replayed verdict never
// promises a lost write. Returns only after both barriers — directly when
// group commit is off, or on the epoch boundary when it is on (the commit
// coalesces with every other commit in flight and they share one fsync
// pair; see groupcommit.go).
func (db *DB) CommitOutcome(sid, reqID uint64, reply []byte) error {
	if e := db.gc.join(sid, reqID, reply); e != nil {
		<-e.done
		return e.err
	}
	return db.commitOutcomeSync(sid, reqID, reply)
}

// commitOutcomeSync is the per-mutation commit path: one shard barrier and
// one sessions barrier per released verdict.
func (db *DB) commitOutcomeSync(sid, reqID uint64, reply []byte) error {
	if !MutantOutcomeFirst {
		if err := db.SyncShards(); err != nil {
			return err
		}
	}
	ss := &db.sessions
	ss.mu.Lock()
	ss.noteOutcome(sid, reqID, reply)
	ss.enc = appendOutcomeRec(ss.enc[:0], sid, reqID, reply)
	if err := ss.log.Append(ss.enc); err != nil {
		ss.mu.Unlock()
		return err
	}
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		ss.mu.Unlock()
		return err
	}
	db.repl.tapSess(ss.enc)
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	if MutantOutcomeFirst {
		if err := db.SyncShards(); err != nil {
			return err
		}
	}
	db.repl.waitBarrier(seq)
	return nil
}

// appendOutcomeRec appends one encoded recOutcome payload to dst.
func appendOutcomeRec(dst []byte, sid, reqID uint64, reply []byte) []byte {
	dst = append(dst, recOutcome)
	dst = binary.BigEndian.AppendUint64(dst, sid)
	dst = binary.BigEndian.AppendUint64(dst, reqID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(reply)))
	return append(dst, reply...)
}

// compactSessionsLocked writes the live sessions (and the next-SID
// high-water mark) to a fresh snapshot and resets the log. Called with
// ss.mu held.
func (db *DB) compactSessionsLocked() error {
	ss := &db.sessions
	err := WriteSnapshotFs(db.fs, ss.snap, func(emit func(rec []byte) error) error {
		enc := binary.BigEndian.AppendUint64([]byte{recNextSID}, ss.nextSID)
		if err := emit(enc); err != nil {
			return err
		}
		sids := make([]uint64, 0, len(ss.state))
		for sid := range ss.state {
			sids = append(sids, sid)
		}
		sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
		for _, sid := range sids {
			s := ss.state[sid]
			enc = enc[:0]
			enc = append(enc, recHello)
			enc = binary.BigEndian.AppendUint64(enc, s.SID)
			enc = binary.BigEndian.AppendUint64(enc, uint64(int64(s.PID)))
			if err := emit(enc); err != nil {
				return err
			}
			reqs := make([]uint64, 0, len(s.Window))
			for id := range s.Window {
				reqs = append(reqs, id)
			}
			sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
			for _, id := range reqs {
				enc = enc[:0]
				enc = append(enc, recOutcome)
				enc = binary.BigEndian.AppendUint64(enc, s.SID)
				enc = binary.BigEndian.AppendUint64(enc, id)
				enc = binary.BigEndian.AppendUint32(enc, uint32(len(s.Window[id])))
				enc = append(enc, s.Window[id]...)
				if err := emit(enc); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return ss.log.Reset()
}

// CompactSessions forces a sessions compaction, for tests.
func (db *DB) CompactSessions() error {
	db.sessions.mu.Lock()
	defer db.sessions.mu.Unlock()
	return db.compactSessionsLocked()
}

// Sync flushes every log — the shutdown barrier.
func (db *DB) Sync() error {
	if err := db.SyncShards(); err != nil {
		return err
	}
	return db.sessions.log.Sync()
}

// Close stops group commit (draining any in-flight epoch), syncs, and
// closes every file. The DB must not be used afterwards.
func (db *DB) Close() error {
	db.StopGroupCommit()
	var first error
	for _, sf := range db.shards {
		if err := sf.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := db.sessions.log.Close(); err != nil && first == nil {
		first = err
	}
	db.unlock()
	return first
}
