package durable_test

// The replica's applied read view (view.go): whole barriers become visible
// atomically, the applied sequence is monotone under concurrent readers,
// and the final view converges to the primary's committed values.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"detectable/internal/shardkv"
	"detectable/internal/simio"
)

// TestViewBarrierAtomicityAndSeqMonotonic streams a primary workload into
// a replica while concurrent readers hammer the view. Every barrier writes
// the same value i to key "a" then key "b", so any reader that observes
// b < a caught a half-applied barrier — the staging discipline's exact
// failure mode (eager per-record application). The applied mark must never
// move backwards, and after the stream drains the view must hold the last
// committed values at the final barrier sequence.
func TestViewBarrierAtomicityAndSeqMonotonic(t *testing.T) {
	const rounds = 300
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	if err := pdb.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	shardA := shardkv.ShardIndex("a", testShards)
	shardB := shardkv.ShardIndex("b", testShards)
	for i := 1; i <= rounds; i++ {
		pdb.ShardBacking(shardA).Persist("a", int64(i))
		pdb.ShardBacking(shardB).Persist("b", int64(i))
		if err := pdb.CommitOutcome(1, uint64(i), []byte{1}); err != nil {
			t.Fatalf("CommitOutcome %d: %v", i, err)
		}
	}
	sub.Close()
	msgs := drain(t, sub)
	wantSeq, _, _ := pdb.ReplStatus()

	rdb := openSim(t, simio.New())
	rp := rdb.NewReplica()

	var stop atomic.Bool
	violation := make(chan string, 4)
	const readers = 3
	done := make(chan struct{}, readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer func() { done <- struct{}{} }()
			var lastSeq uint64
			for !stop.Load() {
				va, _ := rdb.ViewGet(shardA, "a")
				vb, _ := rdb.ViewGet(shardB, "b")
				if vb < va {
					select {
					case violation <- fmt.Sprintf("half-applied barrier: a=%d b=%d", va, vb):
					default:
					}
					return
				}
				seq := rdb.ViewSeq()
				if seq < lastSeq {
					select {
					case violation <- fmt.Sprintf("applied seq moved backwards: %d after %d", seq, lastSeq):
					default:
					}
					return
				}
				lastSeq = seq
			}
		}()
	}
	for i, m := range msgs {
		if _, _, err := rp.Apply(m); err != nil {
			stop.Store(true)
			t.Fatalf("Apply msg %d: %v", i, err)
		}
	}
	stop.Store(true)
	for r := 0; r < readers; r++ {
		<-done
	}
	select {
	case v := <-violation:
		t.Fatal(v)
	default:
	}

	if got := rdb.ViewSeq(); got != wantSeq {
		t.Fatalf("final applied seq %d, want the primary's committed %d", got, wantSeq)
	}
	if va, ok := rdb.ViewGet(shardA, "a"); !ok || va != rounds {
		t.Fatalf("final view a=%d (ok=%v), want %d", va, ok, rounds)
	}
	if vb, ok := rdb.ViewGet(shardB, "b"); !ok || vb != rounds {
		t.Fatalf("final view b=%d (ok=%v), want %d", vb, ok, rounds)
	}
}

// TestViewResetOnSnapshot: a replica that reconnects receives a fresh
// snapshot; SnapBegin must drop the stale view and zero the applied mark
// (readers fall back to the primary during the resync window) before the
// rebuilt view is republished barrier by barrier.
func TestViewResetOnSnapshot(t *testing.T) {
	pdb := openSim(t, simio.New())
	sub := pdb.Subscribe(0, false)
	if err := pdb.AppendHello(1, 0); err != nil {
		t.Fatalf("AppendHello: %v", err)
	}
	shard := shardkv.ShardIndex("k", testShards)
	pdb.ShardBacking(shard).Persist("k", 7)
	if err := pdb.CommitOutcome(1, 1, []byte{1}); err != nil {
		t.Fatalf("CommitOutcome: %v", err)
	}
	sub.Close()
	msgs := drain(t, sub)

	rdb := openSim(t, simio.New())
	applyAll(t, rdb.NewReplica(), msgs)
	if v, ok := rdb.ViewGet(shard, "k"); !ok || v != 7 {
		t.Fatalf("view k=%d (ok=%v) after first sync, want 7", v, ok)
	}
	seq1 := rdb.ViewSeq()
	if seq1 == 0 {
		t.Fatal("applied mark still zero after first sync")
	}

	// Reconnect: a second full stream from a fresh subscription (snapshot
	// head included). Mid-snapshot the view must read empty at mark zero.
	sub2 := pdb.Subscribe(0, false)
	sub2.Close()
	msgs2 := drain(t, sub2)
	rp := rdb.NewReplica()
	if _, _, err := rp.Apply(msgs2[0]); err != nil { // SnapBegin
		t.Fatalf("Apply SnapBegin: %v", err)
	}
	if got := rdb.ViewSeq(); got != 0 {
		t.Fatalf("applied mark %d mid-snapshot, want 0 (stale view must not serve)", got)
	}
	if _, ok := rdb.ViewGet(shard, "k"); ok {
		t.Fatal("stale view still serving mid-snapshot")
	}
	applyAll(t, rp, msgs2[1:])
	if v, ok := rdb.ViewGet(shard, "k"); !ok || v != 7 {
		t.Fatalf("view k=%d (ok=%v) after resync, want 7", v, ok)
	}
	if got := rdb.ViewSeq(); got == 0 {
		t.Fatal("applied mark not republished after resync")
	}
}
