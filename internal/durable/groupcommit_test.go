package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitCoalesces drives many concurrent commits through the
// epoch pipeline and checks both halves of the contract: every committed
// verdict survives a reopen, and the commits shared materially fewer
// epochs (fsync pairs) than there were commits.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 2, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	db.StartGroupCommit(2 * time.Millisecond)
	if err := db.AppendHello(1, 0); err != nil {
		t.Fatal(err)
	}

	const workers, per = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := uint64(w*per + i + 1)
				db.ShardBacking(int(req) % 2).Persist(fmt.Sprintf("k%03d", req), int64(req))
				if err := db.CommitOutcome(1, req, []byte{byte(req)}); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("CommitOutcome: %v", err)
	}
	epochs, commits := db.GroupCommitStats()
	if commits != workers*per {
		t.Fatalf("commits = %d, want %d", commits, workers*per)
	}
	if epochs == 0 || epochs > commits/2 {
		t.Fatalf("epochs = %d for %d commits: expected coalescing", epochs, commits)
	}
	db.Close()

	db2, err := Open(dir, 2, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ss := db2.Sessions()
	if len(ss) != 1 || len(ss[0].Window) != workers*per {
		t.Fatalf("recovered %d sessions / %d outcomes, want 1 / %d", len(ss), len(ss[0].Window), workers*per)
	}
	for req, reply := range ss[0].Window {
		if len(reply) != 1 || reply[0] != byte(req) {
			t.Fatalf("outcome %d recovered as %v", req, reply)
		}
	}
}

// TestGroupCommitDrainsOnStop checks that StopGroupCommit anchors the
// in-flight epoch before returning and that commits after the stop take
// the synchronous path.
func TestGroupCommitDrainsOnStop(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	db.StartGroupCommit(time.Hour) // epoch would linger forever without the drain
	db.AppendHello(1, 0)
	done := make(chan error, 1)
	go func() {
		db.ShardBacking(0).Persist("k", 1)
		done <- db.CommitOutcome(1, 1, []byte("a"))
	}()
	// Give the commit time to park on the epoch, then stop: the drain must
	// release it without waiting out the interval.
	time.Sleep(20 * time.Millisecond)
	db.StopGroupCommit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained commit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit still parked after StopGroupCommit")
	}
	if err := db.CommitOutcome(1, 2, []byte("b")); err != nil {
		t.Fatalf("synchronous commit after stop: %v", err)
	}
	db.Close()

	db2, _ := Open(dir, 1, 2, 16)
	defer db2.Close()
	ss := db2.Sessions()
	if len(ss) != 1 || string(ss[0].Window[1]) != "a" || string(ss[0].Window[2]) != "b" {
		t.Fatalf("outcomes lost across stop: %v", ss)
	}
}

// TestLogSyncFailurePoisons is the fsyncgate test: a failed fsync must
// poison the log — every later Append and Sync fails with the original
// cause — rather than let a retry report durability for pages the kernel
// may already have dropped.
func TestLogSyncFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.log")
	l, err := OpenLog(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("injected EIO")
	fail := true
	l.syncFn = func(f File) error {
		if fail {
			return boom
		}
		return f.Sync()
	}
	if err := l.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync after injected fsync failure = %v, want wrapped %v", err, boom)
	}
	// The kernel "recovers" — but the log must stay poisoned.
	fail = false
	if err := l.Append([]byte("more")); !errors.Is(err, boom) {
		t.Fatalf("Append on poisoned log = %v, want wrapped %v", err, boom)
	}
	if err := l.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync retry on poisoned log = %v, want wrapped %v", err, boom)
	}
	if err := l.Reset(); !errors.Is(err, boom) {
		t.Fatalf("Reset on poisoned log = %v, want wrapped %v", err, boom)
	}
}

// TestGroupCommitEpochFailureFailsAllWaiters injects an fsync failure into
// the sessions log: every commit parked on the failing epoch must see the
// error, and later commits must keep failing (the log is poisoned, so the
// pipeline can never again claim durability).
func TestGroupCommitEpochFailureFailsAllWaiters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 1, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	db.AppendHello(1, 0)
	boom := errors.New("injected EIO")
	db.sessions.log.syncFn = func(File) error { return boom }
	db.StartGroupCommit(5 * time.Millisecond)

	const n = 4
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- db.CommitOutcome(1, uint64(i+1), []byte("x"))
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("epoch waiter error = %v, want wrapped %v", err, boom)
		}
	}
	if err := db.CommitOutcome(1, 99, []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("commit after poisoned epoch = %v, want wrapped %v", err, boom)
	}
	db.StopGroupCommit()
}

// TestGroupCommitTornEpochTail is the crash-at-epoch-boundary recovery
// property at the storage layer: for ANY byte-level truncation of the
// sessions log (a torn tail mid-epoch), recovery yields a state where
// every surviving outcome record's effect is present in its shard — the
// outcome-implies-effect invariant cannot be widened by group commit,
// because shard logs are fsynced strictly before epoch records are even
// written.
func TestGroupCommitTornEpochTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, 2, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	db.StartGroupCommit(time.Millisecond)
	db.AppendHello(1, 0)
	const workers, per = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				req := uint64(w*per + i + 1)
				db.ShardBacking(int(req) % 2).Persist(keyFor(req), int64(req))
				if err := db.CommitOutcome(1, req, []byte{byte(req)}); err != nil {
					t.Errorf("CommitOutcome(%d): %v", req, err)
				}
			}
		}(w)
	}
	wg.Wait()
	db.Close()
	if t.Failed() {
		t.Fatal("commit errors above")
	}

	logBytes, err := os.ReadFile(filepath.Join(dir, "sessions.log"))
	if err != nil {
		t.Fatal(err)
	}
	step := len(logBytes)/12 + 1
	for cut := 0; cut <= len(logBytes); cut += step {
		copyDir := t.TempDir()
		copyTree(t, dir, copyDir)
		if err := os.Truncate(filepath.Join(copyDir, "sessions.log"), int64(cut)); err != nil {
			t.Fatal(err)
		}
		db2, err := Open(copyDir, 2, 8, 256)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		effects := map[string]int64{}
		for i := 0; i < 2; i++ {
			db2.RangeShard(i, func(k string, v int64) { effects[k] = v })
		}
		for _, s := range db2.Sessions() {
			for req := range s.Window {
				if got, ok := effects[keyFor(req)]; !ok || got != int64(req) {
					t.Fatalf("cut %d: outcome %d recovered without its effect (got %d, present %v)", cut, req, got, ok)
				}
			}
		}
		db2.Close()
	}
}

func keyFor(req uint64) string { return fmt.Sprintf("k%03d", req) }

// copyTree copies the flat data directory src into dst.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
