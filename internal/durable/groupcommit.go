package durable

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// Group commit batches concurrent CommitOutcome barriers into epochs. Each
// commit stages its encoded outcome record into the current epoch and
// parks on the epoch's broadcast channel; a single committer goroutine
// anchors one epoch at a time — all shard logs synced first, then every
// staged record appended to the sessions log in one coalesced write and
// synced — and releases every waiter at once. N concurrent commits thus
// cost one fsync pair instead of N, while each released verdict is exactly
// as durable as under the per-mutation path: a reply is released only
// after the fsync that anchors its epoch has returned.
//
// Ordering is preserved by construction: staged records live only in the
// epoch buffer — outside the sessions log and its in-memory mirror — until
// after the shard barrier, so neither kernel writeback nor a concurrent
// compaction (triggered by session churn) can make an outcome durable
// before its effects. Read-only replies never enter the pipeline at all.
type groupCommit struct {
	mu       sync.Mutex
	cond     *sync.Cond // signaled when cur gains its first member or on stop
	running  bool
	interval time.Duration
	cur      *epoch
	freeBufs [][]byte // recycled epoch buffers
	stopc    chan struct{} // closed by Stop: interrupts the batching window
	stopped  chan struct{}
	epochs   uint64 // anchored epochs
	commits  uint64 // commits routed through epochs
}

// epoch is one commit batch: the concatenated encoded outcome records of
// every member, the broadcast channel its waiters park on, and the anchor
// verdict they all share.
type epoch struct {
	buf  []byte
	n    int
	done chan struct{}
	err  error
}

// StartGroupCommit switches CommitOutcome onto the epoch pipeline.
// interval is the batching window the committer waits after an epoch gains
// its first member before anchoring it: 0 anchors immediately (commits
// still coalesce naturally while a previous epoch's fsync is in flight),
// larger values trade reply latency for wider batches. Calling it while
// running just retunes the interval.
func (db *DB) StartGroupCommit(interval time.Duration) {
	gc := &db.gc
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if gc.running {
		gc.interval = interval
		return
	}
	if gc.cond == nil {
		gc.cond = sync.NewCond(&gc.mu)
	}
	gc.running = true
	gc.interval = interval
	gc.cur = gc.newEpochLocked()
	gc.stopc = make(chan struct{})
	gc.stopped = make(chan struct{})
	go db.commitLoop(gc.stopc, gc.stopped)
}

// StopGroupCommit drains the in-flight epoch, stops the committer, and
// reverts CommitOutcome to the synchronous per-mutation path. Safe to call
// when not running; Close calls it.
func (db *DB) StopGroupCommit() {
	gc := &db.gc
	gc.mu.Lock()
	if !gc.running {
		gc.mu.Unlock()
		return
	}
	gc.running = false
	gc.cond.Signal()
	close(gc.stopc)
	stopped := gc.stopped
	gc.mu.Unlock()
	<-stopped
}

// GroupCommitStats reports how many epochs have been anchored and how many
// commits rode them — the coalescing ratio commits/epochs is the fsyncs
// saved.
func (db *DB) GroupCommitStats() (epochs, commits uint64) {
	db.gc.mu.Lock()
	defer db.gc.mu.Unlock()
	return db.gc.epochs, db.gc.commits
}

// join stages one commit into the current epoch and returns it, or nil
// when group commit is not running (the caller then commits
// synchronously). The reply bytes are copied into the epoch buffer before
// returning, so the caller's buffer may be reused while it waits.
func (gc *groupCommit) join(sid, reqID uint64, reply []byte) *epoch {
	gc.mu.Lock()
	if !gc.running {
		gc.mu.Unlock()
		return nil
	}
	e := gc.cur
	e.buf = appendOutcomeRec(e.buf, sid, reqID, reply)
	e.n++
	gc.commits++
	if e.n == 1 {
		gc.cond.Signal()
	}
	gc.mu.Unlock()
	return e
}

// commitLoop is the committer: it waits for the current epoch to gain a
// member, optionally lingers for the batching interval so more commits can
// join, swaps in a fresh epoch, anchors the full one, and broadcasts the
// verdict. Epochs anchor strictly one at a time, in order.
func (db *DB) commitLoop(stopc, stopped chan struct{}) {
	gc := &db.gc
	defer close(stopped)
	for {
		gc.mu.Lock()
		for gc.running && gc.cur.n == 0 {
			gc.cond.Wait()
		}
		if gc.cur.n == 0 {
			// Stopped with nothing staged: done.
			gc.mu.Unlock()
			return
		}
		interval := gc.interval
		draining := !gc.running
		gc.mu.Unlock()
		if interval > 0 && !draining {
			// The batching window: more commits join the epoch while we
			// linger. A stop cuts the window short so drains never wait it
			// out.
			select {
			case <-time.After(interval):
			case <-stopc:
			}
		}
		gc.mu.Lock()
		e := gc.cur
		gc.cur = gc.newEpochLocked()
		gc.epochs++
		gc.mu.Unlock()
		e.err = db.anchorEpoch(e)
		close(e.done)
		gc.recycle(e)
	}
}

// anchorEpoch makes every commit staged in e durable, in the invariant
// order: all shard logs first (the effects), then the outcome records in
// one coalesced sessions-log append, then the sessions barrier. A failure
// anywhere fails every member of the epoch.
func (db *DB) anchorEpoch(e *epoch) error {
	if !MutantOutcomeFirst {
		if err := db.SyncShards(); err != nil {
			return err
		}
	}
	ss := &db.sessions
	ss.mu.Lock()
	for off := 0; off < len(e.buf); {
		sid, reqID, reply, n, err := nextOutcomeRec(e.buf[off:])
		if err != nil {
			ss.mu.Unlock()
			return err
		}
		ss.noteOutcome(sid, reqID, reply)
		if err := ss.log.Append(e.buf[off : off+n]); err != nil {
			ss.mu.Unlock()
			return err
		}
		db.repl.tapSess(e.buf[off : off+n])
		off += n
	}
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		ss.mu.Unlock()
		return err
	}
	// The epoch boundary is one replication barrier: every staged verdict
	// is released only after the backup has acknowledged it, so group
	// commit and replication share this single fsync boundary.
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	if MutantOutcomeFirst {
		if err := db.SyncShards(); err != nil {
			return err
		}
	}
	db.repl.waitBarrier(seq)
	return nil
}

// nextOutcomeRec decodes the first staged outcome record in b. Staged
// records are produced by appendOutcomeRec in this process, so a decode
// failure indicates memory corruption, not input.
func nextOutcomeRec(b []byte) (sid, reqID uint64, reply []byte, n int, err error) {
	if len(b) < 21 || b[0] != recOutcome {
		return 0, 0, nil, 0, fmt.Errorf("durable: malformed staged outcome record")
	}
	sid = binary.BigEndian.Uint64(b[1:])
	reqID = binary.BigEndian.Uint64(b[9:])
	m := int(binary.BigEndian.Uint32(b[17:]))
	if len(b) < 21+m {
		return 0, 0, nil, 0, fmt.Errorf("durable: truncated staged outcome record")
	}
	return sid, reqID, b[21 : 21+m], 21 + m, nil
}

// newEpochLocked returns a fresh epoch, reusing a recycled buffer when one
// is available. Called with gc.mu held.
func (gc *groupCommit) newEpochLocked() *epoch {
	e := &epoch{done: make(chan struct{})}
	if n := len(gc.freeBufs); n > 0 {
		e.buf = gc.freeBufs[n-1][:0]
		gc.freeBufs = gc.freeBufs[:n-1]
	}
	return e
}

// recycle returns an anchored epoch's buffer to the free list. The epoch
// struct itself is never reused — late waiters still read its err field.
func (gc *groupCommit) recycle(e *epoch) {
	gc.mu.Lock()
	if len(gc.freeBufs) < 4 {
		gc.freeBufs = append(gc.freeBufs, e.buf)
	}
	gc.mu.Unlock()
	e.buf = nil
}
