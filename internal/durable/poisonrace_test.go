package durable

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestStopGroupCommitRacesFailingEpochFsync races StopGroupCommit against
// commits parked on an epoch whose fsync fails: every commit must observe
// the injected error — whether its epoch was anchored by the committer,
// drained by the stop, or pushed onto the synchronous path after it — and
// nothing may deadlock. Run under -race, this also checks the stop/fail
// handoff for data races.
func TestStopGroupCommitRacesFailingEpochFsync(t *testing.T) {
	boom := errors.New("injected EIO")
	for round := 0; round < 20; round++ {
		db, err := Open(t.TempDir(), 1, 4, 16)
		if err != nil {
			t.Fatal(err)
		}
		db.AppendHello(1, 0)
		db.sessions.log.syncFn = func(File) error { return boom }
		db.StartGroupCommit(time.Millisecond)

		const n = 8
		errs := make(chan error, n)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				errs <- db.CommitOutcome(1, uint64(i+1), []byte("x"))
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			db.StopGroupCommit()
		}()
		close(start)
		wg.Wait()
		close(errs)
		for err := range errs {
			if !errors.Is(err, boom) {
				t.Fatalf("round %d: commit racing stop = %v, want wrapped %v", round, err, boom)
			}
		}
		db.StopGroupCommit()
	}
}

// TestPoisonedLogRejectsAfterGroupCommitRestart: once an epoch fsync has
// failed, the sessions log is poisoned for good — restarting group commit
// must not launder the failure into fresh durability claims.
func TestPoisonedLogRejectsAfterGroupCommitRestart(t *testing.T) {
	db, err := Open(t.TempDir(), 1, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	db.AppendHello(1, 0)
	boom := errors.New("injected EIO")
	fail := true
	db.sessions.log.syncFn = func(f File) error {
		if fail {
			return boom
		}
		return f.Sync()
	}
	db.StartGroupCommit(time.Millisecond)
	if err := db.CommitOutcome(1, 1, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("poisoning commit = %v, want wrapped %v", err, boom)
	}
	db.StopGroupCommit()

	// The kernel "recovers" and group commit is restarted — but the first
	// failure already voided the log's durability story.
	fail = false
	db.StartGroupCommit(time.Millisecond)
	if err := db.CommitOutcome(1, 2, []byte("y")); !errors.Is(err, boom) {
		t.Fatalf("commit after restart on poisoned log = %v, want wrapped %v", err, boom)
	}
	db.StopGroupCommit()
	// The synchronous path stays poisoned too.
	if err := db.CommitOutcome(1, 3, []byte("z")); !errors.Is(err, boom) {
		t.Fatalf("sync commit on poisoned log = %v, want wrapped %v", err, boom)
	}
}
