package durable

// Primary/backup replication over the durable layer (docs/REPLICATION.md).
//
// The primary taps every record it makes durable — shard puts as they are
// journaled, session records as they are appended — into per-subscriber
// buffers, and marks each fsync boundary with a barrier message carrying a
// monotone sequence number. A synchronous subscriber gates verdict release:
// the commit paths (AppendHello, NoteSID, AppendEnd, CommitOutcome, and the
// group-commit epoch anchor) wait for the backup to acknowledge the barrier
// before returning, so group commit and replication share one fsync
// boundary — an epoch's verdicts are released only after that epoch is
// durable on both nodes. A subscriber that stalls past the ack timeout is
// dropped and its waiters released (replication degrades; durability on the
// primary is never weakened).
//
// A new subscriber first receives a fuzzy snapshot — every shard mirror in
// sorted key order, then the sessions mirror — bracketed by SnapBegin /
// SnapEnd, then the live tap. Puts are last-wins and session records
// idempotent, so applying the snapshot over any backup prefix converges;
// SnapEnd doubles as the reconciliation point for sessions the backup saw
// end while it was disconnected (snapshots can only assert liveness, never
// deletion). Snapshot bytes are exempt from the subscriber's backlog
// limit (bootstrap must work for states larger than the limit), and a
// syncAck subscription starts gating commits only once its SnapEnd is
// acked — until then the bootstrapping replica neither delays verdicts
// nor counts as a laggard.
//
// The apply side (Replica) keeps the backup's own disk crash-consistent:
// shard puts are journaled eagerly (early effects are harmless — the
// primary's own commit protocol already tolerates effects without
// outcomes), but session records are staged in memory until a barrier
// arrives, then appended and fsynced in the invariant order (shard barrier
// first, then sessions). A crash-prefix image of the backup's data
// directory therefore satisfies the same outcome-implies-effect invariant
// as the primary's, which internal/simio checks byte-for-byte.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Replication stream message kinds. Each message travels as one
// u32-length-prefixed frame: kind byte, then the body.
const (
	// ReplSnapBegin opens a snapshot: u64 generation, u32 shards,
	// u32 procs, u32 window. The backup verifies geometry and fencing
	// before applying anything.
	ReplSnapBegin byte = 0x01
	// ReplShardRec is one shard record: u32 shard index, then a raw
	// recPut record exactly as it sits in the shard log.
	ReplShardRec byte = 0x02
	// ReplSessRec is one raw sessions-log record (recHello, recOutcome,
	// recEnd, or recNextSID).
	ReplSessRec byte = 0x03
	// ReplSnapEnd closes a snapshot: u64 barrier sequence. It is itself a
	// barrier, and the point where the backup ends live sessions absent
	// from the snapshot.
	ReplSnapEnd byte = 0x04
	// ReplBarrier marks one primary fsync boundary: u64 sequence.
	ReplBarrier byte = 0x05
	// ReplAck flows backup→primary: u64 sequence, acknowledging that
	// every record up to that barrier is durable on the backup.
	ReplAck byte = 0x06
)

// DefaultReplSubLimit bounds a subscriber's pending live-tap backlog; a
// backup that falls further behind than this is dropped rather than
// stalling the primary's memory. Bytes staged by the initial fuzzy
// snapshot are exempt — the snapshot is as large as the state and must
// always fit, or replication could never bootstrap past the limit.
const DefaultReplSubLimit = 64 << 20

// DefaultReplAckTimeout bounds how long a commit waits for a synchronous
// subscriber's barrier ack before dropping it and degrading to
// unreplicated operation.
const DefaultReplAckTimeout = 10 * time.Second

// ErrStalePrimary is returned (wrapped) by Replica.Apply when the primary
// announces a generation below the replica's own: the replica has been
// promoted past that primary and must never accept its stream.
var ErrStalePrimary = errors.New("durable: primary generation is behind this replica (fenced)")

var errReplSubClosed = errors.New("durable: replication subscription closed")

// replState is the primary-side replication hub embedded in DB.
type replState struct {
	nsubs      atomic.Int32  // registered subscribers (fast-path gate for taps)
	nsync      atomic.Int32  // gating subscribers: sync subs whose snapshot barrier is acked
	seq        atomic.Uint64 // barrier sequence; bumped only under sessions.mu
	ackTimeout atomic.Int64  // nanoseconds; 0 = DefaultReplAckTimeout

	mu   sync.Mutex
	subs map[*ReplSub]struct{}
}

// ReplSub is one replication subscription: a buffer of framed stream
// messages the serving goroutine drains with Next, and the ack high-water
// mark the backup raises with Ack.
type ReplSub struct {
	r       *replState
	syncAck bool
	limit   int

	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte // pending framed messages
	spare     []byte // the buffer Next handed out last time, recycled
	snapBytes int    // bytes of buf staged by the snapshot, exempt from limit
	snapSeq   uint64 // barrier sequence of this sub's SnapEnd (0 until staged)
	gating    bool   // syncAck sub whose snapshot barrier is acked; counted in nsync
	acked     uint64
	closed    bool
	err       error
}

// Subscribe registers a replication subscriber and stages a fuzzy snapshot
// of the current state followed by the live record tap. limit bounds the
// pending live-tap backlog (≤ 0 means DefaultReplSubLimit); snapshot bytes
// are exempt, so a state larger than the limit can still bootstrap — the
// snapshot occupies memory only until the serving goroutine drains it.
// With syncAck, commits on this DB wait for the subscriber's barrier acks
// before releasing verdicts — the semi-synchronous mode the server uses —
// but only once the subscriber has acknowledged its snapshot barrier
// (SnapEnd): a replica still transferring or fsyncing its initial snapshot
// neither delays commits nor gets dropped as a laggard. Without syncAck
// the subscription is a passive tap (tests, tooling).
func (db *DB) Subscribe(limit int, syncAck bool) *ReplSub {
	if limit <= 0 {
		limit = DefaultReplSubLimit
	}
	sub := &ReplSub{r: &db.repl, syncAck: syncAck, limit: limit}
	sub.cond = sync.NewCond(&sub.mu)

	r := &db.repl
	r.mu.Lock()
	if r.subs == nil {
		r.subs = make(map[*ReplSub]struct{})
	}
	r.subs[sub] = struct{}{}
	r.nsubs.Add(1)
	// The snapshot header is staged inside the registration lock so no
	// concurrent tap can slot a record ahead of it.
	var hdr [21]byte
	hdr[0] = ReplSnapBegin
	binary.BigEndian.PutUint64(hdr[1:], db.gen.Load())
	binary.BigEndian.PutUint32(hdr[9:], uint32(len(db.shards)))
	binary.BigEndian.PutUint32(hdr[13:], uint32(db.procs))
	binary.BigEndian.PutUint32(hdr[17:], uint32(db.sessions.window))
	sub.stageSnap(hdr[:], nil)
	r.mu.Unlock()

	// Fuzzy snapshot: shard mirrors first, sessions after, matching the
	// outcome-implies-effect order. Concurrent commits tap records that
	// interleave with the snapshot; both sides are last-wins/idempotent,
	// so the interleaving converges to the primary's state.
	var enc []byte
	for i, sf := range db.shards {
		var shdr [5]byte
		shdr[0] = ReplShardRec
		binary.BigEndian.PutUint32(shdr[1:], uint32(i))
		sf.mu.Lock()
		keys := make([]string, 0, len(sf.state))
		for k := range sf.state {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			enc = encodePut(enc[:0], k, sf.state[k])
			if !sub.stageSnap(shdr[:], enc) {
				sf.mu.Unlock()
				return sub // closed mid-snapshot; stop staging
			}
		}
		sf.mu.Unlock()
	}
	ss := &db.sessions
	kindSess := [1]byte{ReplSessRec}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	enc = append(enc[:0], recNextSID)
	enc = binary.BigEndian.AppendUint64(enc, ss.nextSID)
	if !sub.stageSnap(kindSess[:], enc) {
		return sub
	}
	sids := make([]uint64, 0, len(ss.state))
	for sid := range ss.state {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	for _, sid := range sids {
		s := ss.state[sid]
		enc = append(enc[:0], recHello)
		enc = binary.BigEndian.AppendUint64(enc, s.SID)
		enc = binary.BigEndian.AppendUint64(enc, uint64(int64(s.PID)))
		if !sub.stageSnap(kindSess[:], enc) {
			return sub
		}
		reqs := make([]uint64, 0, len(s.Window))
		for id := range s.Window {
			reqs = append(reqs, id)
		}
		sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
		for _, id := range reqs {
			enc = appendOutcomeRec(enc[:0], s.SID, id, s.Window[id])
			if !sub.stageSnap(kindSess[:], enc) {
				return sub
			}
		}
	}
	// The snapshot close is a barrier in its own right; its sequence is
	// allocated under ss.mu like every other barrier, so barrier order on
	// the stream matches sequence order. Its sequence is also the sub's
	// gating threshold: acking it is what turns a syncAck subscription
	// into a commit gate (Ack).
	seq := r.seq.Add(1)
	var ehdr [9]byte
	ehdr[0] = ReplSnapEnd
	binary.BigEndian.PutUint64(ehdr[1:], seq)
	sub.mu.Lock()
	sub.snapSeq = seq
	sub.mu.Unlock()
	sub.stageSnap(ehdr[:], nil)
	return sub
}

// SetReplAckTimeout overrides how long commits wait for a synchronous
// subscriber's barrier ack before dropping it (0 restores the default).
func (db *DB) SetReplAckTimeout(d time.Duration) { db.repl.ackTimeout.Store(int64(d)) }

// ReplStatus reports the replication high-water marks: the latest barrier
// sequence issued, the lowest sequence acknowledged by every synchronous
// subscriber (0 when there are none), and the subscriber count.
func (db *DB) ReplStatus() (seq, acked uint64, subs int) {
	r := &db.repl
	seq = r.seq.Load()
	r.mu.Lock()
	first := true
	for sub := range r.subs {
		subs++
		if !sub.syncAck {
			continue
		}
		a := sub.ackedSeq()
		if first || a < acked {
			acked = a
			first = false
		}
	}
	r.mu.Unlock()
	if first {
		acked = 0
	}
	return seq, acked, subs
}

// ---- primary-side tap ----

// tapShard stages one shard put record to every subscriber. Called with
// the shard's mu held, immediately after the log append succeeds.
func (r *replState) tapShard(shard int, rec []byte) {
	if r.nsubs.Load() == 0 {
		return
	}
	var hdr [5]byte
	hdr[0] = ReplShardRec
	binary.BigEndian.PutUint32(hdr[1:], uint32(shard))
	r.tapMsg(hdr[:], rec)
}

// tapSess stages one sessions-log record to every subscriber. Called with
// sessions.mu held, immediately after the log append succeeds.
func (r *replState) tapSess(rec []byte) {
	if r.nsubs.Load() == 0 {
		return
	}
	r.tapMsg([]byte{ReplSessRec}, rec)
}

// tapBarrier allocates the next barrier sequence and stages the barrier
// message. Called with sessions.mu held after a successful sessions
// barrier — every barrier sequence is allocated under that lock, so the
// stream order of barriers matches sequence order.
func (r *replState) tapBarrier() uint64 {
	seq := r.seq.Add(1)
	if r.nsubs.Load() != 0 {
		var hdr [9]byte
		hdr[0] = ReplBarrier
		binary.BigEndian.PutUint64(hdr[1:], seq)
		r.tapMsg(hdr[:], nil)
	}
	return seq
}

func (r *replState) tapMsg(hdr, rec []byte) {
	r.mu.Lock()
	var dead []*ReplSub
	for sub := range r.subs {
		if !sub.stageMsg(hdr, rec) {
			dead = append(dead, sub)
		}
	}
	for _, sub := range dead {
		r.dropLocked(sub)
	}
	r.mu.Unlock()
}

func (r *replState) dropLocked(sub *ReplSub) {
	if _, ok := r.subs[sub]; !ok {
		return
	}
	delete(r.subs, sub)
	r.nsubs.Add(-1)
	if sub.syncAck && sub.disengage() {
		r.nsync.Add(-1)
	}
}

func (r *replState) unregister(sub *ReplSub) {
	r.mu.Lock()
	r.dropLocked(sub)
	r.mu.Unlock()
}

// waitBarrier blocks until every gating subscriber — a synchronous one
// whose snapshot barrier has been acked — has acknowledged barrier seq,
// the ack timeout passes (the laggard is dropped), or the subscriber
// closes. A sync subscriber still transferring or applying its initial
// snapshot is not waited on: its first ack may legitimately take longer
// than the ack timeout, and dropping it for that would re-bootstrap large
// replicas forever. Called with no DB locks held — commit paths release
// sessions.mu first, so the backup's ack path can never deadlock against
// the primary's commit path.
func (r *replState) waitBarrier(seq uint64) {
	if r.nsync.Load() == 0 {
		return
	}
	r.mu.Lock()
	var waits []*ReplSub
	for sub := range r.subs {
		if sub.syncAck && sub.isGating() {
			waits = append(waits, sub)
		}
	}
	r.mu.Unlock()
	timeout := time.Duration(r.ackTimeout.Load())
	if timeout == 0 {
		timeout = DefaultReplAckTimeout
	}
	for _, sub := range waits {
		if !sub.awaitAck(seq, timeout) {
			// The backup stalled past the timeout: drop it so one dead
			// replica cannot wedge the primary. Detectability on the
			// primary is unaffected; replication has degraded.
			sub.fail(fmt.Errorf("durable: replication ack for barrier %d timed out after %v", seq, timeout))
		}
	}
}

// ---- subscriber ----

// stageMsg appends one framed message (hdr ++ rec) to the pending buffer.
// Returns false if the subscription is closed or just overflowed. The
// limit applies to the live-tap backlog only: bytes still buffered from
// the snapshot (snapBytes) are not the subscriber's fault for lagging and
// are excluded, or any tap during a larger-than-limit snapshot transfer
// would tear the subscription down.
func (s *ReplSub) stageMsg(hdr, rec []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	n := len(hdr) + len(rec)
	if backlog := len(s.buf) - s.snapBytes; backlog+4+n > s.limit {
		s.closeLocked(fmt.Errorf("durable: replication subscriber fell %d bytes behind (limit %d)", backlog, s.limit))
		return false
	}
	s.stageLocked(hdr, rec)
	return true
}

// stageSnap appends one framed snapshot message, exempt from the backlog
// limit — the snapshot is as large as the state, and closing the
// subscription over it would make bootstrap impossible for any state
// larger than the limit (the replica would resync into the same overflow
// forever). Returns false if the subscription is closed.
func (s *ReplSub) stageSnap(hdr, rec []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.snapBytes += 4 + len(hdr) + len(rec)
	s.stageLocked(hdr, rec)
	return true
}

// stageLocked frames hdr ++ rec into the pending buffer. Called with s.mu
// held.
func (s *ReplSub) stageLocked(hdr, rec []byte) {
	s.buf = binary.BigEndian.AppendUint32(s.buf, uint32(len(hdr)+len(rec)))
	s.buf = append(s.buf, hdr...)
	s.buf = append(s.buf, rec...)
	s.cond.Broadcast()
}

// Next blocks until pending stream bytes are available and returns them
// (a whole number of framed messages, ready to write to the wire as-is).
// The returned slice is valid until the next call. Pending bytes staged
// before a close are still drained; after that Next returns io.EOF for a
// clean close or the failure that tore the subscription down.
func (s *ReplSub) Next() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.buf) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.buf) == 0 {
		if s.err != nil {
			return nil, s.err
		}
		return nil, io.EOF
	}
	out := s.buf
	s.buf = s.spare[:0]
	s.spare = out
	s.snapBytes = 0 // the whole buffer drained, snapshot bytes included
	return out, nil
}

// Ack raises the subscriber's acknowledged barrier sequence, releasing any
// commit waiting on it. The ack that first covers the subscription's
// snapshot barrier (SnapEnd) also engages commit gating: from then on —
// and only then — a syncAck subscription counts toward nsync, so a
// replica still bootstrapping never stalls (or gets dropped by) the
// primary's commits.
func (s *ReplSub) Ack(seq uint64) {
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
		s.cond.Broadcast()
	}
	if s.syncAck && !s.gating && !s.closed && s.snapSeq != 0 && s.acked >= s.snapSeq {
		// closeLocked always precedes unregistration, so engaging here
		// (under s.mu, on a live sub) pairs exactly once with the
		// disengage in dropLocked.
		s.gating = true
		s.r.nsync.Add(1)
	}
	s.mu.Unlock()
}

// SnapSeq returns the barrier sequence of the subscription's snapshot
// close (SnapEnd) — the ack that engages commit gating — or 0 if the
// snapshot was never fully staged.
func (s *ReplSub) SnapSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// isGating reports whether this subscription currently gates commits.
func (s *ReplSub) isGating() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gating
}

// disengage clears gating, returning whether it was engaged. Called from
// dropLocked (r.mu held; r.mu → s.mu is the tap path's lock order).
func (s *ReplSub) disengage() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gating
	s.gating = false
	return g
}

func (s *ReplSub) ackedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// awaitAck waits until acked ≥ seq or the timeout elapses. Returns whether
// the ack arrived (a closed subscription counts only if it acked first).
func (s *ReplSub) awaitAck(seq uint64, timeout time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acked >= seq {
		return true
	}
	expired := false
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for s.acked < seq && !s.closed && !expired {
		s.cond.Wait()
	}
	return s.acked >= seq
}

// Close cleanly tears the subscription down: pending bytes already staged
// remain drainable via Next, no new records are staged, and any commit
// waiting on this subscriber is released.
func (s *ReplSub) Close() {
	s.mu.Lock()
	s.closeLocked(nil)
	s.mu.Unlock()
	s.r.unregister(s)
}

func (s *ReplSub) fail(err error) {
	s.mu.Lock()
	s.closeLocked(err)
	s.mu.Unlock()
	s.r.unregister(s)
}

// closeLocked marks the subscription closed. Called with s.mu held; the
// caller (or the next tap sweep) unregisters it from the hub.
func (s *ReplSub) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	if err == nil {
		err = errReplSubClosed
	}
	if s.err == nil && !errors.Is(err, errReplSubClosed) {
		s.err = err
	}
	s.cond.Broadcast()
}

// ---- acks ----

// AppendReplAck appends one encoded ack message for barrier seq to dst.
func AppendReplAck(dst []byte, seq uint64) []byte {
	dst = append(dst, ReplAck)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// ParseReplAck decodes an ack message.
func ParseReplAck(msg []byte) (seq uint64, ok bool) {
	if len(msg) != 9 || msg[0] != ReplAck {
		return 0, false
	}
	return binary.BigEndian.Uint64(msg[1:]), true
}

// ---- generation / fencing ----

// Generation returns the data directory's fencing generation. A freshly
// created directory is generation 0; every promotion advances it.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// SetGeneration durably advances the fencing generation, rewriting the
// MANIFEST atomically. Generations are monotone: lowering one is refused
// (fencing must never roll back).
func (db *DB) SetGeneration(gen uint64) error {
	db.repl.mu.Lock()
	defer db.repl.mu.Unlock()
	cur := db.gen.Load()
	if gen == cur {
		return nil
	}
	if gen < cur {
		return fmt.Errorf("durable: generation may only advance (have %d, asked for %d)", cur, gen)
	}
	m := manifest{Version: 1, Shards: len(db.shards), Procs: db.procs, Generation: gen}
	data, _ := json.Marshal(m)
	if err := AtomicWriteFileFs(db.fs, filepath.Join(db.dir, "MANIFEST"), append(data, '\n')); err != nil {
		return err
	}
	db.gen.Store(gen)
	return nil
}

// ---- replica (apply side) ----

// Replica applies a replication stream to a warm-standby DB. Shard records
// are journaled to the backup's own logs as they arrive; session records
// are staged in memory and appended+fsynced only when a barrier arrives —
// and, during a snapshot, only at SnapEnd, so an outcome can never be
// anchored (or acked) before the snapshot hello that makes it
// recoverable — preserving outcome-implies-effect on the backup's disk.
// Not safe for concurrent use; feed it one stream.
type Replica struct {
	db        *DB
	staged    []byte    // u32-length-prefixed session records awaiting a barrier
	viewStage []viewPut // shard puts awaiting barrier publication to the read view
	inSnap    bool
	snapSids  map[uint64]struct{} // sessions asserted live by the snapshot in progress
}

// NewReplica returns an applier feeding db. The DB must not be serving —
// it is the warm standby's.
func (db *DB) NewReplica() *Replica { return &Replica{db: db} }

// Apply folds one stream message (a frame payload: kind byte + body) into
// the backup. It returns barrier=true with the barrier's sequence when the
// message completed a durable boundary the backup should acknowledge.
func (rp *Replica) Apply(msg []byte) (seq uint64, barrier bool, err error) {
	if len(msg) < 1 {
		return 0, false, fmt.Errorf("durable: empty replication message")
	}
	body := msg[1:]
	switch msg[0] {
	case ReplSnapBegin:
		if len(body) != 20 {
			return 0, false, fmt.Errorf("durable: malformed SnapBegin")
		}
		gen := binary.BigEndian.Uint64(body)
		shards := int(binary.BigEndian.Uint32(body[8:]))
		procs := int(binary.BigEndian.Uint32(body[12:]))
		window := int(binary.BigEndian.Uint32(body[16:]))
		if shards != len(rp.db.shards) || procs != rp.db.procs || window != rp.db.sessions.window {
			return 0, false, fmt.Errorf("durable: replication geometry mismatch: primary shards=%d procs=%d window=%d, replica shards=%d procs=%d window=%d",
				shards, procs, window, len(rp.db.shards), rp.db.procs, rp.db.sessions.window)
		}
		if cur := rp.db.Generation(); gen < cur {
			return 0, false, fmt.Errorf("%w: primary gen %d < replica gen %d", ErrStalePrimary, gen, cur)
		} else if gen > cur {
			if err := rp.db.SetGeneration(gen); err != nil {
				return 0, false, err
			}
		}
		rp.inSnap = true
		rp.snapSids = make(map[uint64]struct{})
		rp.staged = rp.staged[:0] // a torn previous stream's stage never applies
		rp.viewStage = rp.viewStage[:0]
		// The incoming snapshot supersedes the read view; until SnapEnd
		// publishes it, the applied mark is 0 and staleness-bounded readers
		// fall back to the primary rather than read a mid-bootstrap state.
		rp.db.resetView()
		return 0, false, nil

	case ReplShardRec:
		if len(body) < 4 {
			return 0, false, fmt.Errorf("durable: malformed shard record message")
		}
		shard := int(binary.BigEndian.Uint32(body))
		rec := body[4:]
		if shard < 0 || shard >= len(rp.db.shards) {
			return 0, false, fmt.Errorf("durable: shard record for shard %d of %d", shard, len(rp.db.shards))
		}
		if len(rec) < 1 || rec[0] != recPut {
			return 0, false, fmt.Errorf("durable: unexpected shard record kind")
		}
		key, val, ok := decodePut(rec)
		if !ok {
			return 0, false, fmt.Errorf("durable: malformed replicated put record")
		}
		rp.db.journalPut(shard, key, val)
		// Stage for the read view; published only when the covering barrier
		// is durable here (decodePut copied the key, so it is owned).
		rp.viewStage = append(rp.viewStage, viewPut{shard: shard, key: key, val: val})
		return 0, false, nil

	case ReplSessRec:
		kind, sid, err := checkSessRec(body)
		if err != nil {
			return 0, false, err
		}
		if rp.inSnap && kind == recHello {
			rp.snapSids[sid] = struct{}{}
		}
		rp.staged = binary.BigEndian.AppendUint32(rp.staged, uint32(len(body)))
		rp.staged = append(rp.staged, body...)
		return 0, false, nil

	case ReplSnapEnd:
		if len(body) != 8 {
			return 0, false, fmt.Errorf("durable: malformed SnapEnd")
		}
		if !rp.inSnap {
			return 0, false, fmt.Errorf("durable: SnapEnd without SnapBegin")
		}
		// Reconcile deletions: a session live on the backup but absent
		// from the snapshot ended while the backup was disconnected.
		// Snapshots can only assert liveness, so the end is synthesized
		// here.
		for _, sid := range rp.db.liveSIDs() {
			if _, ok := rp.snapSids[sid]; !ok {
				var end [9]byte
				end[0] = recEnd
				binary.BigEndian.PutUint64(end[1:], sid)
				rp.staged = binary.BigEndian.AppendUint32(rp.staged, uint32(len(end)))
				rp.staged = append(rp.staged, end[:]...)
			}
		}
		rp.inSnap = false
		rp.snapSids = nil
		fallthrough

	case ReplBarrier:
		if len(body) != 8 {
			return 0, false, fmt.Errorf("durable: malformed barrier")
		}
		if rp.inSnap {
			// A barrier that interleaves with the snapshot must not anchor
			// (or ack) yet: the records staged so far may reference sids
			// whose snapshot hellos are still in flight, so appending them
			// now would write outcomes the recovery path silently drops —
			// a crash-then-promote would lose a verdict the primary
			// released as durable on both nodes. Everything stays staged
			// and is applied (and first acked) at SnapEnd, when the
			// snapshot's hellos are guaranteed to be in the stage too.
			return 0, false, nil
		}
		if err := rp.db.applyReplBarrier(rp.staged); err != nil {
			return 0, false, err
		}
		rp.staged = rp.staged[:0]
		seq = binary.BigEndian.Uint64(body)
		// The barrier is durable on this node: publish its shard puts to the
		// read view atomically, so a replica GET sees either all of a commit
		// epoch's effects or none of them.
		rp.db.publishView(rp.viewStage, seq)
		rp.viewStage = rp.viewStage[:0]
		return seq, true, nil

	default:
		return 0, false, fmt.Errorf("durable: unexpected replication message kind 0x%02x", msg[0])
	}
}

// checkSessRec validates the shape of one sessions-log record before it is
// staged — a malformed record must never reach the backup's log, where it
// would poison every future recovery.
func checkSessRec(rec []byte) (kind byte, sid uint64, err error) {
	if len(rec) < 1 {
		return 0, 0, fmt.Errorf("durable: empty replicated session record")
	}
	switch rec[0] {
	case recHello:
		if len(rec) != 17 {
			return 0, 0, fmt.Errorf("durable: malformed replicated hello record")
		}
	case recOutcome:
		if len(rec) < 21 || len(rec) != 21+int(binary.BigEndian.Uint32(rec[17:])) {
			return 0, 0, fmt.Errorf("durable: malformed replicated outcome record")
		}
	case recEnd, recNextSID:
		if len(rec) != 9 {
			return 0, 0, fmt.Errorf("durable: malformed replicated session record")
		}
	default:
		return 0, 0, fmt.Errorf("durable: unexpected replicated session record kind 0x%02x", rec[0])
	}
	return rec[0], binary.BigEndian.Uint64(rec[1:]), nil
}

// liveSIDs returns the sids currently live in the sessions mirror.
func (db *DB) liveSIDs() []uint64 {
	ss := &db.sessions
	ss.mu.Lock()
	defer ss.mu.Unlock()
	sids := make([]uint64, 0, len(ss.state))
	for sid := range ss.state {
		sids = append(sids, sid)
	}
	sort.Slice(sids, func(i, j int) bool { return sids[i] < sids[j] })
	return sids
}

// applyReplBarrier anchors one replicated barrier on the backup's disk:
// shard logs synced first, then every staged session record appended to
// the sessions log and folded into the mirror, then the sessions barrier —
// the same order the primary's commit paths use, so the backup's crash
// images satisfy the same invariants. staged is a concatenation of
// u32-length-prefixed session records already validated by checkSessRec.
func (db *DB) applyReplBarrier(staged []byte) error {
	if err := db.SyncShards(); err != nil {
		return err
	}
	ss := &db.sessions
	ss.mu.Lock()
	for off := 0; off < len(staged); {
		if off+4 > len(staged) {
			ss.mu.Unlock()
			return fmt.Errorf("durable: truncated staged session record")
		}
		n := int(binary.BigEndian.Uint32(staged[off:]))
		off += 4
		if off+n > len(staged) {
			ss.mu.Unlock()
			return fmt.Errorf("durable: truncated staged session record")
		}
		rec := staged[off : off+n]
		off += n
		if err := ss.log.Append(rec); err != nil {
			ss.mu.Unlock()
			return err
		}
		if err := ss.apply(rec); err != nil {
			ss.mu.Unlock()
			return err
		}
		db.repl.tapSess(rec)
	}
	if err := db.syncOrCompactSessionsLocked(); err != nil {
		ss.mu.Unlock()
		return err
	}
	// The backup is itself a tappable primary: its own subscribers (a
	// chained replica) see the same records and barriers.
	seq := db.repl.tapBarrier()
	ss.mu.Unlock()
	db.repl.waitBarrier(seq)
	return nil
}
