package durable

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// StateHash returns a canonical SHA-256 digest of everything recovery
// produces from a data directory: every shard's key→value mirror, every
// live session with its leased slot, high-water request ID and outcome
// window, and the session-ID high-water mark — each serialized in a fixed
// sorted order with length-prefixed fields so distinct states can never
// collide by concatenation.
//
// This is the deterministic-step/state-hash idiom (Cannon's MIPS state
// root, transplanted to recovery): because the hash is a pure function of
// the logical state, "recovery is a pure function of the byte image" and
// "replay is idempotent" become single hash comparisons instead of
// spot-checks. The crash-prefix sweep (internal/simio) recovers every crash
// image twice and re-recovers the recovered image, requiring all three
// hashes equal; the restart harnesses compare hashes across real process
// incarnations.
func (db *DB) StateHash() string {
	h := sha256.New()
	var num [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(num[:], v)
		h.Write(num[:])
	}
	writeBytes := func(b []byte) {
		writeU64(uint64(len(b)))
		h.Write(b)
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}

	writeU64(uint64(len(db.shards)))
	for i := range db.shards {
		// RangeShard iterates in sorted key order — the canonical order.
		db.RangeShard(i, func(key string, val int64) {
			writeStr(key)
			writeU64(uint64(val))
		})
		writeStr("|shard|")
	}

	sessions := db.Sessions() // sorted by SID
	writeU64(uint64(len(sessions)))
	for _, s := range sessions {
		writeU64(s.SID)
		writeU64(uint64(int64(s.PID)))
		writeU64(s.MaxID)
		reqs := make([]uint64, 0, len(s.Window))
		for id := range s.Window {
			reqs = append(reqs, id)
		}
		sortU64(reqs)
		writeU64(uint64(len(reqs)))
		for _, id := range reqs {
			writeU64(id)
			writeBytes(s.Window[id])
		}
	}
	writeU64(db.NextSID())
	return hex.EncodeToString(h.Sum(nil))
}

// sortU64 sorts in place (tiny insertion sort; windows are small).
func sortU64(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
