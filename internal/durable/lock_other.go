//go:build !unix

package durable

import "os"

// lockDir is a no-op where advisory flock is unavailable; single-writer
// discipline is then the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
