package durable

// Mutation hooks, following the internal/rcas / internal/rw / internal/queue
// pattern: each deliberately breaks one step whose necessity the durability
// argument depends on, so the crash-prefix sweep (internal/simio) can prove
// it actually detects the bug class it exists for. Production code never
// sets them; cmd/simsweep -mutant and the mutation tests do.

// MutantOutcomeFirst inverts the commit protocol's fsync ordering: the
// outcome record is appended and synced into the sessions log BEFORE the
// shard logs holding its effects are synced. A crash in the inverted window
// leaves a durable verdict whose write is gone — on recovery the client
// would be promised an effect the store lost, the exact violation the
// "shards strictly before outcome" ordering rules out. The simio sweep must
// catch this within its crash-point enumeration.
var MutantOutcomeFirst bool
