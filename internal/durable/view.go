package durable

// The replica's applied-state read view (docs/REPLICATION.md §read
// replicas).
//
// A standby serving GET traffic must never expose a half-applied state:
// the shard mirrors advance record-by-record as the stream arrives (eager
// journaling keeps the backup's disk crash-consistent), so reading them
// directly could observe the middle of a snapshot transfer or a partial
// commit epoch. The view solves this with the same staging discipline the
// session records already use — shard puts accumulate in a per-stream
// stage and are published to the read view only when the barrier that
// covers them is durable on this node (applyReplBarrier succeeded), or at
// SnapEnd for an entire bootstrap snapshot. Between barriers the view is
// immutable, so every read observes a prefix of the primary's commit
// order: bounded-stale, never torn, never a value the primary failed to
// commit.
//
// ViewSeq is the primary-stream barrier sequence the view has applied
// through — the replica's "applied" mark that OpServerStats reports next
// to the primary's committed mark, giving clients a replication-lag bound
// to check against their staleness budget.

import (
	"sync"
	"sync/atomic"
)

// viewPut is one staged shard put awaiting barrier publication. The key is
// already owned (decodePut copies it out of the stream frame).
type viewPut struct {
	shard int
	key   string
	val   int64
}

// replView is the barrier-consistent applied-state view replica reads are
// served from. Writers (the single replication-apply goroutine) publish
// whole barriers under mu; readers take the read lock, so a GET never
// observes a barrier half-applied.
type replView struct {
	mu     sync.RWMutex
	shards []map[string]int64
	seq    atomic.Uint64 // primary barrier sequence applied through
}

// publishView folds one barrier's staged puts into the read view and
// raises the applied mark to seq. The map updates complete before the seq
// store, so a reader that observes ViewSeq() ≥ seq also observes every put
// the barrier covered.
func (db *DB) publishView(stage []viewPut, seq uint64) {
	v := &db.view
	v.mu.Lock()
	if v.shards == nil {
		v.shards = make([]map[string]int64, len(db.shards))
		for i := range v.shards {
			v.shards[i] = make(map[string]int64)
		}
	}
	for _, p := range stage {
		v.shards[p.shard][p.key] = p.val
	}
	v.mu.Unlock()
	v.seq.Store(seq)
}

// resetView empties the read view and zeroes the applied mark. Called when
// a new snapshot stream begins: the incoming snapshot supersedes whatever
// the view held, and until its SnapEnd barrier publishes, the replica has
// no consistent state to serve — a zero applied mark is what trips the
// client's staleness fallback to the primary for the duration.
func (db *DB) resetView() {
	v := &db.view
	v.mu.Lock()
	v.shards = nil
	v.mu.Unlock()
	v.seq.Store(0)
}

// ViewGet reads key from shard i's barrier-consistent applied view.
// Missing keys (including the whole view before the first barrier
// publishes) read as (0, false) — the durable-root convention that a key
// never written holds zero. Safe for concurrent use; allocation-free.
func (db *DB) ViewGet(i int, key string) (int64, bool) {
	v := &db.view
	v.mu.RLock()
	if v.shards == nil {
		v.mu.RUnlock()
		return 0, false
	}
	val, ok := v.shards[i][key]
	v.mu.RUnlock()
	return val, ok
}

// ViewSeq returns the primary-stream barrier sequence the read view has
// applied through: 0 until the first barrier (or the bootstrap snapshot)
// publishes, monotone within one stream. OpServerStats reports it as the
// standby's applied mark.
func (db *DB) ViewSeq() uint64 { return db.view.seq.Load() }

// MirrorGet reads key from shard i's durable mirror — the primary-side
// counterpart of ViewGet, used to serve read-only sessions on a durable
// primary where the mirror IS the committed state.
func (db *DB) MirrorGet(i int, key string) (int64, bool) {
	sf := db.shards[i]
	sf.mu.Lock()
	val, ok := sf.state[key]
	sf.mu.Unlock()
	return val, ok
}
