// Package linearize checks recorded concurrent histories for durable
// linearizability (Izraelevitz et al.) with the detectability accounting of
// Friedman et al.:
//
//   - an operation that completed without crashing must be linearized with
//     the response it returned;
//   - a crashed operation whose recovery function returned a response must
//     be linearized with that response (it took effect before or despite
//     the crash), and its linearization point must precede the recovery
//     function's return;
//   - a crashed operation whose recovery function returned fail must NOT be
//     linearized — it is excluded from the witness, and if it nevertheless
//     had a visible effect the remaining operations' responses cannot be
//     explained and the check fails;
//   - an operation still pending when the history ends may be linearized
//     with any response, or not at all.
//
// The search is the classic Wing & Gong / Lowe algorithm with memoization
// on (set of linearized operations, object state).
package linearize

import (
	"fmt"
	"math"
	"strconv"

	"detectable/internal/history"
	"detectable/internal/spec"
)

// MaxOps is the largest history the linearization search accepts: the
// memoized done-set is a 64-bit mask with one bit reserved. Callers with
// longer histories must segment them.
const MaxOps = 63

// OpRecord is one operation extracted from a history log.
type OpRecord struct {
	// PID is the invoking process.
	PID int
	// Op is the abstract operation.
	Op spec.Operation
	// Resp is the response the operation reported (valid when HasResp).
	Resp int
	// HasResp is false for pending operations, whose response is unknown.
	HasResp bool
	// Inv and Ret are event indices delimiting the operation's interval.
	// Ret is math.MaxInt for pending operations.
	Inv, Ret int
	// Optional marks operations that may be omitted from the linearization
	// (pending operations).
	Optional bool
	// Crashed reports that the operation's interval contains at least one
	// system-wide crash.
	Crashed bool
}

// String renders the record for diagnostics.
func (r OpRecord) String() string {
	resp := "?"
	if r.HasResp {
		resp = strconv.Itoa(r.Resp)
	}
	return fmt.Sprintf("p%d %s -> %s [%d,%d]", r.PID, r.Op, resp, r.Inv, r.Ret)
}

// Report summarizes the detectability accounting of a history.
type Report struct {
	// Completed counts operations that finished without crashing.
	Completed int
	// Recovered counts crashed operations whose recovery returned a
	// response (linearized before the crash was resolved).
	Recovered int
	// Failed counts crashed operations whose recovery returned fail.
	Failed int
	// Pending counts operations with no completion event.
	Pending int
	// Crashes counts system-wide crash events.
	Crashes int
}

// Collect pairs invocation events with their completions. Operations whose
// recovery returned fail are excluded from the returned records (they must
// not be linearized); their count is reported. Collect returns an error on
// malformed logs (a completion without an invocation, or two overlapping
// invocations by one process).
func Collect(events []history.Event) ([]OpRecord, Report, error) {
	var (
		recs   []OpRecord
		rep    Report
		open   = map[int]int{} // pid -> index into recs of the open op
		seenCr = map[int]bool{}
	)
	for i, e := range events {
		switch e.Kind {
		case history.KindInvoke:
			if _, ok := open[e.PID]; ok {
				return nil, rep, fmt.Errorf("linearize: p%d invoked %s while an operation is open", e.PID, e.Op)
			}
			recs = append(recs, OpRecord{
				PID: e.PID, Op: e.Op,
				Inv: i, Ret: math.MaxInt,
			})
			open[e.PID] = len(recs) - 1
			seenCr[e.PID] = false
		case history.KindReturn:
			idx, ok := open[e.PID]
			if !ok {
				return nil, rep, fmt.Errorf("linearize: p%d returned with no open operation", e.PID)
			}
			recs[idx].Resp = e.Resp
			recs[idx].HasResp = true
			recs[idx].Ret = i
			recs[idx].Crashed = seenCr[e.PID]
			delete(open, e.PID)
			rep.Completed++
		case history.KindCrash:
			rep.Crashes++
			for pid := range open {
				seenCr[pid] = true
			}
		case history.KindRecoverReturn:
			idx, ok := open[e.PID]
			if !ok {
				return nil, rep, fmt.Errorf("linearize: p%d recovery returned with no open operation", e.PID)
			}
			if e.Fail {
				// Not linearized: mark the record for exclusion.
				recs[idx].Inv = -1
				rep.Failed++
			} else {
				recs[idx].Resp = e.Resp
				recs[idx].HasResp = true
				recs[idx].Ret = i
				recs[idx].Crashed = true
				rep.Recovered++
			}
			delete(open, e.PID)
		}
	}
	// Remaining open operations are pending: optional, any response.
	for _, idx := range open {
		recs[idx].Optional = true
		rep.Pending++
	}
	// Compact away the failed (excluded) records.
	out := recs[:0]
	for _, r := range recs {
		if r.Inv >= 0 {
			out = append(out, r)
		}
	}
	return out, rep, nil
}

// Check reports whether the records admit a legal linearization against
// obj's sequential specification. See the package comment for the rules.
// Check panics if given more than 63 records; callers should segment long
// histories.
func Check(obj spec.Object, recs []OpRecord) bool {
	ok, _ := Explain(obj, recs)
	return ok
}

// Explain is Check plus a witness: when the records are linearizable it
// returns the operations in linearization order.
func Explain(obj spec.Object, recs []OpRecord) (bool, []OpRecord) {
	if len(recs) > MaxOps {
		panic(fmt.Sprintf("linearize: %d operations exceed the %d-op search limit; segment the history", len(recs), MaxOps))
	}
	mandatory := uint64(0)
	for i, r := range recs {
		if !r.Optional {
			mandatory |= 1 << uint(i)
		}
	}
	s := &searcher{obj: obj, recs: recs, mandatory: mandatory, memo: map[string]bool{}}
	var witness []OpRecord
	if s.dfs(0, obj.Init(), &witness) {
		return true, witness
	}
	return false, nil
}

// ExplainEvents is Collect followed by Explain over an already-snapshotted
// event slice: it returns the verdict, a sequential witness when one
// exists, and the detectability report. Histories beyond the 63-op search
// limit are reported as an error rather than a panic, so bounded explorers
// (internal/explore) can surface them as configuration mistakes.
func ExplainEvents(obj spec.Object, events []history.Event) (ok bool, witness []OpRecord, rep Report, err error) {
	recs, rep, err := Collect(events)
	if err != nil {
		return false, nil, rep, err
	}
	if len(recs) > MaxOps {
		return false, nil, rep, fmt.Errorf("linearize: %d operations exceed the %d-op search limit; segment the history", len(recs), MaxOps)
	}
	ok, witness = Explain(obj, recs)
	return ok, witness, rep, nil
}

// CheckLog is a convenience wrapper: Collect followed by Check.
func CheckLog(obj spec.Object, log *history.Log) (bool, Report, error) {
	recs, rep, err := Collect(log.Events())
	if err != nil {
		return false, rep, err
	}
	return Check(obj, recs), rep, nil
}

type searcher struct {
	obj       spec.Object
	recs      []OpRecord
	mandatory uint64
	memo      map[string]bool
}

// dfs tries to extend a partial linearization. done is the set of already
// linearized ops; state is the object state after them.
func (s *searcher) dfs(done uint64, state string, witness *[]OpRecord) bool {
	if done&s.mandatory == s.mandatory {
		return true
	}
	key := strconv.FormatUint(done, 16) + "|" + state
	if v, ok := s.memo[key]; ok {
		// Memo only stores failures: successes return immediately.
		return v
	}
	// minRet is the earliest completion among mandatory not-yet-linearized
	// operations; any op linearized next must have been invoked before it.
	minRet := math.MaxInt
	for i, r := range s.recs {
		if done&(1<<uint(i)) != 0 || r.Optional {
			continue
		}
		if r.Ret < minRet {
			minRet = r.Ret
		}
	}
	for i, r := range s.recs {
		if done&(1<<uint(i)) != 0 {
			continue
		}
		if r.Inv > minRet {
			continue // some completed op must precede r
		}
		next, resp := s.obj.Apply(state, r.Op)
		if r.HasResp && resp != r.Resp {
			continue
		}
		*witness = append(*witness, r)
		if s.dfs(done|1<<uint(i), next, witness) {
			return true
		}
		*witness = (*witness)[:len(*witness)-1]
	}
	s.memo[key] = false
	return false
}
