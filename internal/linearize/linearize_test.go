package linearize

import (
	"math"
	"math/rand"
	"testing"

	"detectable/internal/history"
	"detectable/internal/spec"
)

func mandatoryOp(pid int, op spec.Operation, resp, inv, ret int) OpRecord {
	return OpRecord{PID: pid, Op: op, Resp: resp, HasResp: true, Inv: inv, Ret: ret}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	reg := spec.Register{}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodWrite, 1), spec.Ack, 0, 1),
		mandatoryOp(1, spec.NewOp(spec.MethodRead), 1, 2, 3),
		mandatoryOp(0, spec.NewOp(spec.MethodWrite, 2), spec.Ack, 4, 5),
		mandatoryOp(1, spec.NewOp(spec.MethodRead), 2, 6, 7),
	}
	if !Check(reg, recs) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	reg := spec.Register{}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodWrite, 1), spec.Ack, 0, 1),
		mandatoryOp(1, spec.NewOp(spec.MethodRead), 0, 2, 3), // reads 0 after write(1) completed
	}
	if Check(reg, recs) {
		t.Fatal("stale read accepted")
	}
}

func TestOverlappingWritesEitherOrder(t *testing.T) {
	reg := spec.Register{}
	for _, readVal := range []int{1, 2} {
		recs := []OpRecord{
			mandatoryOp(0, spec.NewOp(spec.MethodWrite, 1), spec.Ack, 0, 3),
			mandatoryOp(1, spec.NewOp(spec.MethodWrite, 2), spec.Ack, 1, 2),
			mandatoryOp(2, spec.NewOp(spec.MethodRead), readVal, 4, 5),
		}
		if !Check(reg, recs) {
			t.Fatalf("overlapping writes: read=%d rejected, but both orders are legal", readVal)
		}
	}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodWrite, 1), spec.Ack, 0, 3),
		mandatoryOp(1, spec.NewOp(spec.MethodWrite, 2), spec.Ack, 1, 2),
		mandatoryOp(2, spec.NewOp(spec.MethodRead), 7, 4, 5),
	}
	if Check(reg, recs) {
		t.Fatal("read of never-written value accepted")
	}
}

func TestCASAtMostOneWinner(t *testing.T) {
	cas := spec.CAS{}
	// Two overlapping cas(0,1); both returning True is impossible.
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodCAS, 0, 1), spec.True, 0, 2),
		mandatoryOp(1, spec.NewOp(spec.MethodCAS, 0, 1), spec.True, 1, 3),
	}
	if Check(cas, recs) {
		t.Fatal("two winning cas(0,1) accepted")
	}
	recs[1].Resp = spec.False
	if !Check(cas, recs) {
		t.Fatal("one winner + one loser rejected")
	}
}

func TestPendingOpOptional(t *testing.T) {
	reg := spec.Register{}
	// write(5) pending forever: a read may see 0 or 5.
	for _, readVal := range []int{0, 5} {
		recs := []OpRecord{
			{PID: 0, Op: spec.NewOp(spec.MethodWrite, 5), Inv: 0, Ret: math.MaxInt, Optional: true},
			mandatoryOp(1, spec.NewOp(spec.MethodRead), readVal, 1, 2),
		}
		if !Check(reg, recs) {
			t.Fatalf("pending write: read=%d rejected", readVal)
		}
	}
	recs := []OpRecord{
		{PID: 0, Op: spec.NewOp(spec.MethodWrite, 5), Inv: 0, Ret: math.MaxInt, Optional: true},
		mandatoryOp(1, spec.NewOp(spec.MethodRead), 3, 1, 2),
	}
	if Check(reg, recs) {
		t.Fatal("read of impossible value accepted despite pending write")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	cas := spec.CAS{}
	// cas(0,1)=True completes before cas(1,2)=True begins; a later read must
	// not see 1 if cas(1,2) linearized after... actually read=2 is forced.
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodCAS, 0, 1), spec.True, 0, 1),
		mandatoryOp(1, spec.NewOp(spec.MethodCAS, 1, 2), spec.True, 2, 3),
		mandatoryOp(2, spec.NewOp(spec.MethodRead), 1, 4, 5),
	}
	if Check(cas, recs) {
		t.Fatal("read=1 accepted after cas(1,2) completed")
	}
	recs[2].Resp = 2
	if !Check(cas, recs) {
		t.Fatal("read=2 rejected")
	}
}

func TestQueueHistory(t *testing.T) {
	q := spec.Queue{}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodEnq, 1), spec.Ack, 0, 1),
		mandatoryOp(1, spec.NewOp(spec.MethodEnq, 2), spec.Ack, 2, 3),
		mandatoryOp(0, spec.NewOp(spec.MethodDeq), 1, 4, 5),
		mandatoryOp(1, spec.NewOp(spec.MethodDeq), 2, 6, 7),
	}
	if !Check(q, recs) {
		t.Fatal("FIFO history rejected")
	}
	recs[2].Resp, recs[3].Resp = 2, 1 // LIFO order with sequential enqueues
	if Check(q, recs) {
		t.Fatal("non-FIFO dequeue order accepted")
	}
}

func TestCollectPairsEvents(t *testing.T) {
	var log history.Log
	log.Invoke(0, spec.NewOp(spec.MethodWrite, 1))
	log.Return(0, spec.Ack)
	log.Invoke(1, spec.NewOp(spec.MethodWrite, 2))
	log.Crash()
	log.RecoverReturn(1, spec.Ack, false)
	log.Invoke(2, spec.NewOp(spec.MethodWrite, 3))
	log.Crash()
	log.RecoverReturn(2, 0, true) // fail: excluded
	log.Invoke(3, spec.NewOp(spec.MethodRead))

	recs, rep, err := Collect(log.Events())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 1 || rep.Recovered != 1 || rep.Failed != 1 || rep.Pending != 1 || rep.Crashes != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3 (failed op excluded)", len(recs))
	}
	if !recs[1].Crashed {
		t.Fatal("recovered op not marked Crashed")
	}
	if !recs[2].Optional {
		t.Fatal("pending op not marked Optional")
	}
}

func TestCollectRejectsMalformed(t *testing.T) {
	var log history.Log
	log.Return(0, 1)
	if _, _, err := Collect(log.Events()); err == nil {
		t.Fatal("return without invoke accepted")
	}

	var log2 history.Log
	log2.Invoke(0, spec.NewOp(spec.MethodRead))
	log2.Invoke(0, spec.NewOp(spec.MethodRead))
	if _, _, err := Collect(log2.Events()); err == nil {
		t.Fatal("nested invocations by one process accepted")
	}
}

func TestFailedOpMustHaveNoEffect(t *testing.T) {
	reg := spec.Register{}
	var log history.Log
	log.Invoke(0, spec.NewOp(spec.MethodWrite, 9))
	log.Crash()
	log.RecoverReturn(0, 0, true) // claims NOT linearized
	log.Invoke(1, spec.NewOp(spec.MethodRead))
	log.Return(1, 9) // ... but the write is visible

	ok, _, err := CheckLog(reg, &log)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("history with visible-but-failed write accepted")
	}
}

func TestRecoveredOpMustBeLinearized(t *testing.T) {
	reg := spec.Register{}
	var log history.Log
	log.Invoke(0, spec.NewOp(spec.MethodWrite, 9))
	log.Crash()
	log.RecoverReturn(0, spec.Ack, false) // claims linearized
	log.Invoke(1, spec.NewOp(spec.MethodRead))
	log.Return(1, 9)

	ok, _, err := CheckLog(reg, &log)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("recovered write + consistent read rejected")
	}
}

func TestExplainReturnsWitness(t *testing.T) {
	reg := spec.Register{}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodWrite, 1), spec.Ack, 0, 3),
		mandatoryOp(1, spec.NewOp(spec.MethodRead), 0, 1, 2),
	}
	ok, witness := Explain(reg, recs)
	if !ok {
		t.Fatal("rejected")
	}
	if len(witness) != 2 || witness[0].Op.Method != spec.MethodRead {
		t.Fatalf("witness = %v, want read before write", witness)
	}
}

// TestRandomSequentialAlwaysLinearizable generates random sequential
// histories whose responses come from the spec itself; these must always be
// accepted, for every object.
func TestRandomSequentialAlwaysLinearizable(t *testing.T) {
	objs := []spec.Object{
		spec.Register{}, spec.CAS{}, spec.Counter{}, spec.FAA{},
		spec.Queue{}, spec.MaxRegister{},
	}
	rng := rand.New(rand.NewSource(42))
	for _, obj := range objs {
		ops := obj.Ops(3)
		for trial := 0; trial < 50; trial++ {
			st := obj.Init()
			var recs []OpRecord
			n := 1 + rng.Intn(10)
			for i := 0; i < n; i++ {
				op := ops[rng.Intn(len(ops))]
				var resp int
				st, resp = obj.Apply(st, op)
				recs = append(recs, mandatoryOp(i%3, op, resp, 2*i, 2*i+1))
			}
			if !Check(obj, recs) {
				t.Fatalf("%s: legal sequential history rejected: %v", obj.Name(), recs)
			}
		}
	}
}

// TestRandomShuffledResponses perturbs one response in a sequential history
// and expects most perturbations of a deterministic counter to be rejected.
func TestCounterWrongReadRejected(t *testing.T) {
	c := spec.Counter{}
	recs := []OpRecord{
		mandatoryOp(0, spec.NewOp(spec.MethodInc), spec.Ack, 0, 1),
		mandatoryOp(1, spec.NewOp(spec.MethodInc), spec.Ack, 2, 3),
		mandatoryOp(2, spec.NewOp(spec.MethodRead), 1, 4, 5), // must be 2
	}
	if Check(c, recs) {
		t.Fatal("read=1 after two sequential incs accepted")
	}
	recs[2].Resp = 2
	if !Check(c, recs) {
		t.Fatal("read=2 rejected")
	}
}

func TestTooManyOpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for oversized history")
		}
	}()
	recs := make([]OpRecord, 64)
	for i := range recs {
		recs[i] = mandatoryOp(i, spec.NewOp(spec.MethodRead), 0, 2*i, 2*i+1)
	}
	Check(spec.Register{}, recs)
}
