package model

import (
	"errors"
	"testing"
)

// TestTheorem1ConfigCount reproduces Theorem 1's bound empirically: the
// detectable CAS machine reaches at least 2^N − 1 (in fact 2^N) pairwise
// memory-distinct configurations, because every subset of processes that
// completed an odd number of successful CASes yields a distinct flip
// vector.
func TestTheorem1ConfigCount(t *testing.T) {
	for n := 1; n <= 4; n++ {
		got, err := ConfigCount(n)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		want := 1 << n // 2^N ≥ 2^N - 1
		if got < want-1 {
			t.Fatalf("N=%d: %d memory-distinct configurations, want ≥ %d", n, got, want-1)
		}
		if got != want {
			t.Logf("N=%d: %d configurations (vec alone would give %d)", n, got, want)
		}
	}
}

// TestCASExhaustiveDetectability explores every interleaving and crash
// placement of two processes' CAS operations; the machine's built-in
// assertions (verdict vs ground truth) must never fire.
func TestCASExhaustiveDetectability(t *testing.T) {
	cases := []struct {
		name    string
		scripts [][]OpCAS
		crashes int
	}{
		{"2proc-1op-2crashes", [][]OpCAS{{{0, 1}}, {{0, 1}}}, 2},
		{"2proc-conflict-1crash", [][]OpCAS{{{0, 1}, {1, 0}}, {{0, 1}}}, 1},
		{"2proc-chain-1crash", [][]OpCAS{{{0, 1}}, {{1, 2}}}, 1},
		{"3proc-1op-1crash", [][]OpCAS{{{0, 1}}, {{0, 1}}, {{0, 1}}}, 1},
		{"1proc-3ops-3crashes", [][]OpCAS{{{0, 1}, {1, 0}, {0, 1}}}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &CASMachine{N: len(tc.scripts), Scripts: tc.scripts, MaxCrashes: tc.crashes}
			states, shared, err := CheckCAS(m, 1<<22)
			if err != nil {
				t.Fatalf("violation after %d states: %v", states, err)
			}
			t.Logf("%d states, %d memory-distinct configurations", states, shared)
		})
	}
}

// TestTheorem2CASAblation removes the auxiliary state (the caller's reset
// of Ann.result and Ann.CP between invocations) and checks the explorer
// finds a detectability violation — the concrete counterpart of the
// contradiction constructed in Figure 2 of the paper.
func TestTheorem2CASAblation(t *testing.T) {
	m := &CASMachine{
		N:          1,
		Scripts:    [][]OpCAS{{{0, 1}, {1, 0}}},
		MaxCrashes: 1,
		NoAux:      true,
	}
	_, _, err := CheckCAS(m, 1<<22)
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("no violation found without auxiliary state (err=%v)", err)
	}
	t.Logf("violation (expected): %v", v)
}

// TestTheorem2CASWithAuxClean is the control: the same script with the
// announcement in place explores cleanly.
func TestTheorem2CASWithAuxClean(t *testing.T) {
	m := &CASMachine{
		N:          1,
		Scripts:    [][]OpCAS{{{0, 1}, {1, 0}}},
		MaxCrashes: 1,
	}
	if _, _, err := CheckCAS(m, 1<<22); err != nil {
		t.Fatalf("unexpected violation with auxiliary state: %v", err)
	}
}

// TestRWExhaustiveDetectability explores Algorithm 1 exhaustively; the
// proof obligations of Lemma 1 (fail ⇒ no effect; ack ⇒ own write or
// overwritten) are asserted at every completion.
func TestRWExhaustiveDetectability(t *testing.T) {
	cases := []struct {
		name    string
		scripts [][]int8
		crashes int
	}{
		{"1proc-2ops-2crashes", [][]int8{{1, 2}}, 2},
		{"2proc-1op-1crash", [][]int8{{1}, {2}}, 1},
		{"2proc-samevalue-1crash", [][]int8{{1}, {1}}, 1},
		{"2proc-2+1ops-1crash", [][]int8{{1, 2}, {3}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &RWMachine{N: len(tc.scripts), Scripts: tc.scripts, MaxCrashes: tc.crashes}
			states, shared, err := CheckRW(m, 1<<23)
			if err != nil {
				t.Fatalf("violation after %d states: %v", states, err)
			}
			t.Logf("%d states, %d memory-distinct configurations", states, shared)
		})
	}
}

// TestRWABASchedule drives the machine through the exact ABA schedule of
// the Lemma 1 proof (three writes by q restoring R's triple while p is
// down) and confirms exploration with crashes covers it without violations.
func TestRWABASchedule(t *testing.T) {
	m := &RWMachine{
		N:          2,
		Scripts:    [][]int8{{5}, {7, 8, 0}}, // q's third write restores init value 0
		MaxCrashes: 1,
	}
	states, _, err := CheckRW(m, 1<<23)
	if err != nil {
		t.Fatalf("violation after %d states: %v", states, err)
	}
}

// TestTheorem2RWAblation: without the announcement resets, Algorithm 1's
// recovery returns stale verdicts; the explorer must catch it.
func TestTheorem2RWAblation(t *testing.T) {
	m := &RWMachine{
		N:          1,
		Scripts:    [][]int8{{1, 2}},
		MaxCrashes: 1,
		NoAux:      true,
	}
	_, _, err := CheckRW(m, 1<<22)
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("no violation found without auxiliary state (err=%v)", err)
	}
	t.Logf("violation (expected): %v", v)
}

// TestCrashBudgetRespected: with zero budget no recovery PC is ever
// reached, and states stay crash-free.
func TestCrashBudgetRespected(t *testing.T) {
	m := &CASMachine{N: 2, Scripts: [][]OpCAS{{{0, 1}}, {{1, 0}}}}
	_, err := Explore(m.Init(), 1<<20, m.Succ, func(c CASConfig) {
		if c.Crashes != 0 {
			t.Fatal("crash transition taken with zero budget")
		}
		for p := 0; p < 2; p++ {
			if c.PC[p] >= pc38 {
				t.Fatal("recovery PC reached without crashes")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExploreLimit: the state-limit guard trips.
func TestExploreLimit(t *testing.T) {
	m := &CASMachine{N: 3, Scripts: [][]OpCAS{{{0, 1}}, {{0, 1}}, {{0, 1}}}, MaxCrashes: 2}
	_, err := Explore(m.Init(), 10, m.Succ, nil)
	if err == nil {
		t.Fatal("limit 10 not enforced")
	}
}

// TestSharedKeyDistinguishes: configurations differing only in shared
// memory map to different keys; differing only in volatile state map to the
// same key.
func TestSharedKeyDistinguishes(t *testing.T) {
	a := CASConfig{Val: 1, Vec: 0b01}
	b := CASConfig{Val: 1, Vec: 0b10}
	if a.SharedKey() == b.SharedKey() {
		t.Fatal("different vectors, same shared key")
	}
	c := a
	c.PC[0] = pc35 // volatile only
	if a.SharedKey() != c.SharedKey() {
		t.Fatal("volatile state leaked into the shared key")
	}

	x := RWConfig{RVal: 1}
	y := RWConfig{RVal: 2}
	if x.SharedKey() == y.SharedKey() {
		t.Fatal("different R values, same shared key")
	}
	z := x
	z.PC[1] = rw7
	if x.SharedKey() != z.SharedKey() {
		t.Fatal("volatile state leaked into the RW shared key")
	}
}

// TestViolationError covers the error rendering.
func TestViolationError(t *testing.T) {
	v := Violation{PID: 1, Verdict: "fail", Detail: "x"}
	if v.Error() == "" {
		t.Fatal("empty violation message")
	}
}
