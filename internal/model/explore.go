// Package model contains explicit-state step machines for the paper's
// Algorithms 1 and 2, with program counters matching the pseudo-code line
// numbers, and a breadth-first explorer that enumerates every interleaving
// and every crash point for small N.
//
// The machines serve three experiments:
//
//   - E3 (Theorem 1): count the reachable, pairwise memory-distinct shared
//     configurations of the detectable CAS object and confirm the 2^N − 1
//     lower bound (the flip vector forces one distinct configuration per
//     subset of processes that performed an odd number of successful
//     CASes).
//   - E4 (Theorem 2): ablate the auxiliary state — skip the caller's reset
//     of Ann.CP/Ann.result between invocations — and exhibit a concrete
//     execution in which recovery returns a verdict that contradicts the
//     ground truth, reproducing the contradiction built in Figure 2.
//   - E1/E2: exhaustively verify the detectability claims of Lemmas 1 and
//     2 over all schedules and crash points for N = 2: a fail verdict is
//     returned only for operations that took no effect, and a response
//     verdict only for linearized ones.
//
// Unlike the natural implementations (internal/rw, internal/rcas), which
// run under real goroutine concurrency, these machines execute one shared
// memory primitive per transition, so the explorer controls the adversary
// completely. The two encodings are cross-validated by the schedule-driven
// tests in the natural packages.
package model

import "fmt"

// Explore enumerates the state space reachable from init via succ, which
// returns all successor states of a configuration (or an error to abort,
// used for assertion violations). States must be comparable; deduplication
// is by value. visit, if non-nil, observes every distinct state exactly
// once. Explore returns the number of distinct states and the first error.
//
// limit caps the number of distinct states as a runaway guard; exceeding
// it is reported as an error.
func Explore[S comparable](init S, limit int, succ func(S) ([]S, error), visit func(S)) (int, error) {
	seen := map[S]bool{init: true}
	frontier := []S{init}
	if visit != nil {
		visit(init)
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		next, err := succ(cur)
		if err != nil {
			return len(seen), err
		}
		for _, ns := range next {
			if seen[ns] {
				continue
			}
			if len(seen) >= limit {
				return len(seen), fmt.Errorf("model: state limit %d exceeded", limit)
			}
			seen[ns] = true
			if visit != nil {
				visit(ns)
			}
			frontier = append(frontier, ns)
		}
	}
	return len(seen), nil
}
