package model

import "fmt"

// RW-machine program counters, matching Algorithm 1's line numbers. Line 20
// performs two shared reads (R, then a toggle bit) and is split into 20 and
// 21; lines 9-10 and 23-24 are the toggle-bit loops, driven by the LI
// counter.
const (
	rwIdle int8 = 0
	rw1    int8 = 1  // load R
	rw2    int8 = 2  // zero A[p][q][1-qt]
	rw3    int8 = 3  // load Tp
	rw4    int8 = 4  // persist RDp
	rw5    int8 = 5  // re-load R, branch
	rw6    int8 = 6  // CP := 1
	rw7    int8 = 7  // store R
	rw8    int8 = 8  // CP := 2
	rw9    int8 = 9  // toggle-bit loop (body)
	rw11   int8 = 11 // store Tp
	rw12   int8 = 12 // persist result
	rw14   int8 = 14 // recovery: load RDp
	rw15   int8 = 15 // recovery: persisted result?
	rw17   int8 = 17 // recovery: read CP, branch
	rw20   int8 = 20 // recovery: load R, compare with saved triple
	rw21   int8 = 21 // recovery: load toggle bit A[p][q][1-qt]
	rw22   int8 = 22 // recovery: CP := 2
	rw23   int8 = 23 // toggle-bit loop (recovery)
	rw25   int8 = 25 // recovery: store Tp
	rw26   int8 = 26 // recovery: persist result
)

// RWConfig is one full configuration of the Algorithm 1 machine.
type RWConfig struct {
	// Shared memory: R = ⟨RVal, RQ, RT⟩ and the toggle-bit array A.
	RVal, RQ, RT int8
	A            [MaxProcs][MaxProcs][2]bool

	// Private non-volatile memory: RDp = ⟨mtoggle, qval, q, qtoggle⟩, Tp,
	// and the announcement fields.
	RDmt, RDqval, RDq, RDqt [MaxProcs]int8
	T                       [MaxProcs]int8
	AnnRes                  [MaxProcs]int8 // 0 = ⊥, 1 = ack
	AnnCP                   [MaxProcs]int8

	// Volatile per-process state (cleared by a crash).
	PC                [MaxProcs]int8
	LVal, LQ, LT      [MaxProcs]int8 // triple read at line 1
	LMT               [MaxProcs]int8 // toggle index read at line 3
	LI                [MaxProcs]int8 // toggle-loop counter
	DMT, DVal, DQ, DT [MaxProcs]int8 // recovery copy of RDp (line 14)

	// Adversary bookkeeping and ground truth for the assertions.
	OpIdx      [MaxProcs]int8
	InOp       [MaxProcs]bool
	WroteR     [MaxProcs]bool // ground truth: this op stored to R at line 7
	VerAtStart [MaxProcs]int8 // RVer at invocation (≤ RVer at the line-1 read)
	RVer       int8           // total number of stores to R (ground truth)
	Crashes    int8
}

// SharedKey is the memory-equivalence class: R plus the toggle array.
func (c RWConfig) SharedKey() string {
	return fmt.Sprintf("%d,%d,%d|%v", c.RVal, c.RQ, c.RT, c.A)
}

// RWMachine explores Algorithm 1 for N processes; Scripts[p] lists the
// values p writes, in order.
type RWMachine struct {
	N          int
	Scripts    [][]int8
	InitVal    int8
	MaxCrashes int
	// NoAux ablates the caller-side announcement (Theorem 2).
	NoAux bool
}

// Init returns the initial configuration: R = ⟨vinit, 0, 0⟩, A all zero.
func (m *RWMachine) Init() RWConfig {
	if m.N > MaxProcs {
		panic(fmt.Sprintf("model: N=%d exceeds MaxProcs", m.N))
	}
	return RWConfig{RVal: m.InitVal}
}

// Succ returns all successor configurations.
func (m *RWMachine) Succ(c RWConfig) ([]RWConfig, error) {
	var out []RWConfig
	for p := 0; p < m.N; p++ {
		ns, ok, err := m.step(c, p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ns)
		}
	}
	if int(c.Crashes) < m.MaxCrashes {
		out = append(out, m.crash(c))
	}
	return out, nil
}

func (m *RWMachine) step(c RWConfig, p int) (RWConfig, bool, error) {
	p8 := int8(p)
	switch c.PC[p] {
	case rwIdle:
		if c.InOp[p] || int(c.OpIdx[p]) >= len(m.Scripts[p]) {
			return c, false, nil
		}
		c.InOp[p] = true
		c.WroteR[p] = false
		c.VerAtStart[p] = c.RVer
		if !m.NoAux {
			c.AnnRes[p] = 0
			c.AnnCP[p] = 0
		}
		c.PC[p] = rw1
		return c, true, nil

	case rw1: // ⟨qval, q, qtoggle⟩ := R
		c.LVal[p], c.LQ[p], c.LT[p] = c.RVal, c.RQ, c.RT
		c.PC[p] = rw2
		return c, true, nil

	case rw2: // A[p][q][1-qtoggle] := 0
		c.A[p][c.LQ[p]][1-c.LT[p]] = false
		c.PC[p] = rw3
		return c, true, nil

	case rw3: // mtoggle := Tp
		c.LMT[p] = c.T[p]
		c.PC[p] = rw4
		return c, true, nil

	case rw4: // RDp := ⟨mtoggle, qval, q, qtoggle⟩
		c.RDmt[p], c.RDqval[p], c.RDq[p], c.RDqt[p] = c.LMT[p], c.LVal[p], c.LQ[p], c.LT[p]
		c.PC[p] = rw5
		return c, true, nil

	case rw5: // if R ≠ saved triple goto 8
		if c.RVal == c.LVal[p] && c.RQ == c.LQ[p] && c.RT == c.LT[p] {
			c.PC[p] = rw6
		} else {
			c.PC[p] = rw8
		}
		return c, true, nil

	case rw6: // CP := 1
		c.AnnCP[p] = 1
		c.PC[p] = rw7
		return c, true, nil

	case rw7: // R := ⟨val, p, mtoggle⟩
		c.RVal, c.RQ, c.RT = m.val(c, p), p8, c.LMT[p]
		c.RVer++
		c.WroteR[p] = true
		c.PC[p] = rw8
		return c, true, nil

	case rw8: // CP := 2
		c.AnnCP[p] = 2
		c.LI[p] = 0
		c.PC[p] = rw9
		return c, true, nil

	case rw9: // for i: A[i][p][mtoggle] := 1
		c.A[c.LI[p]][p][c.LMT[p]] = true
		c.LI[p]++
		if int(c.LI[p]) >= m.N {
			c.PC[p] = rw11
		}
		return c, true, nil

	case rw11: // Tp := 1 - mtoggle
		c.T[p] = 1 - c.LMT[p]
		c.PC[p] = rw12
		return c, true, nil

	case rw12: // Ann.result := ack; return
		c.AnnRes[p] = 1
		return m.completeAck(c, p)

	case rw14: // recovery: ⟨mtoggle, qval, q, qtoggle⟩ := RDp
		c.DMT[p], c.DVal[p], c.DQ[p], c.DT[p] = c.RDmt[p], c.RDqval[p], c.RDq[p], c.RDqt[p]
		c.PC[p] = rw15
		return c, true, nil

	case rw15: // recovery: result persisted → ack
		if c.AnnRes[p] != 0 {
			return m.completeAck(c, p)
		}
		c.PC[p] = rw17
		return c, true, nil

	case rw17: // recovery: CP = 0 → fail; CP = 1 → line 20; CP = 2 → line 22
		switch c.AnnCP[p] {
		case 0:
			return m.completeFail(c, p)
		case 1:
			c.PC[p] = rw20
		default:
			c.PC[p] = rw22
		}
		return c, true, nil

	case rw20: // recovery: R = saved triple?
		if c.RVal == c.DVal[p] && c.RQ == c.DQ[p] && c.RT == c.DT[p] {
			c.PC[p] = rw21
		} else {
			c.PC[p] = rw22
		}
		return c, true, nil

	case rw21: // recovery: A[p][q][1-qtoggle] = 0 → fail
		if !c.A[p][c.DQ[p]][1-c.DT[p]] {
			return m.completeFail(c, p)
		}
		c.PC[p] = rw22
		return c, true, nil

	case rw22: // recovery: CP := 2
		c.AnnCP[p] = 2
		c.LI[p] = 0
		c.PC[p] = rw23
		return c, true, nil

	case rw23: // recovery: for i: A[i][p][mtoggle] := 1
		c.A[c.LI[p]][p][c.DMT[p]] = true
		c.LI[p]++
		if int(c.LI[p]) >= m.N {
			c.PC[p] = rw25
		}
		return c, true, nil

	case rw25: // recovery: Tp := 1 - mtoggle
		c.T[p] = 1 - c.DMT[p]
		c.PC[p] = rw26
		return c, true, nil

	case rw26: // recovery: Ann.result := ack; return
		c.AnnRes[p] = 1
		return m.completeAck(c, p)

	default:
		return c, false, fmt.Errorf("model: p%d at unknown pc %d", p, c.PC[p])
	}
}

// completeAck finishes p's write with the ack verdict: the write must be
// linearizable, i.e. p stored to R itself, or some store to R happened
// after p's invocation (so the write linearizes immediately before that
// overwriting operation — claim 1 in the proof of Lemma 1).
func (m *RWMachine) completeAck(c RWConfig, p int) (RWConfig, bool, error) {
	if !c.WroteR[p] && c.RVer == c.VerAtStart[p] {
		return c, false, Violation{PID: p, Verdict: "ack",
			Detail: "it never wrote R and no other write was linearized in its interval"}
	}
	c.InOp[p] = false
	c.OpIdx[p]++
	c.PC[p] = rwIdle
	return c, true, nil
}

// completeFail finishes p's write with the fail verdict: the write must not
// have taken effect (claim 2 in the proof of Lemma 1).
func (m *RWMachine) completeFail(c RWConfig, p int) (RWConfig, bool, error) {
	if c.WroteR[p] {
		return c, false, Violation{PID: p, Verdict: "fail", Detail: "it wrote R (operation was linearized)"}
	}
	c.InOp[p] = false
	c.OpIdx[p]++
	c.PC[p] = rwIdle
	return c, true, nil
}

func (m *RWMachine) crash(c RWConfig) RWConfig {
	c.Crashes++
	for p := 0; p < m.N; p++ {
		if c.InOp[p] {
			c.PC[p] = rw14
			c.LVal[p], c.LQ[p], c.LT[p], c.LMT[p], c.LI[p] = 0, 0, 0, 0, 0
			c.DMT[p], c.DVal[p], c.DQ[p], c.DT[p] = 0, 0, 0, 0
		}
	}
	return c
}

func (m *RWMachine) val(c RWConfig, p int) int8 {
	return m.Scripts[p][c.OpIdx[p]]
}

// CheckRW explores the machine exhaustively, returning distinct state and
// shared-configuration counts plus the first violation, if any.
func CheckRW(m *RWMachine, limit int) (states int, sharedConfigs int, err error) {
	shared := map[string]bool{}
	states, err = Explore(m.Init(), limit, m.Succ, func(c RWConfig) {
		shared[c.SharedKey()] = true
	})
	return states, len(shared), err
}
