package model

import (
	"os"
	"testing"
)

// TestRWThreeProcsNoCrash explores Algorithm 1 for three concurrent
// writers over every interleaving (crash-free), asserting the Lemma 1
// proof obligations at every completion.
func TestRWThreeProcsNoCrash(t *testing.T) {
	m := &RWMachine{N: 3, Scripts: [][]int8{{1}, {2}, {3}}}
	states, shared, err := CheckRW(m, 1<<23)
	if err != nil {
		t.Fatalf("violation after %d states: %v", states, err)
	}
	t.Logf("%d states, %d memory-distinct configurations", states, shared)
}

// TestRWThreeProcsOneCrashDeep is the full three-writer exploration with a
// crash budget: 13.6M states, ~80s. Opt in with DETECTABLE_DEEP_TESTS=1;
// the verified result is recorded in EXPERIMENTS.md (E1).
func TestRWThreeProcsOneCrashDeep(t *testing.T) {
	if os.Getenv("DETECTABLE_DEEP_TESTS") == "" {
		t.Skip("set DETECTABLE_DEEP_TESTS=1 to run the 13.6M-state exploration")
	}
	m := &RWMachine{N: 3, Scripts: [][]int8{{1}, {2}, {3}}, MaxCrashes: 1}
	states, shared, err := CheckRW(m, 1<<24)
	if err != nil {
		t.Fatalf("violation after %d states: %v", states, err)
	}
	t.Logf("%d states, %d memory-distinct configurations", states, shared)
}

// TestCASThreeProcsTwoCrashes deepens the Algorithm 2 exploration: three
// conflicting CASers with two crash-failures allowed.
func TestCASThreeProcsTwoCrashes(t *testing.T) {
	m := &CASMachine{
		N:          3,
		Scripts:    [][]OpCAS{{{0, 1}}, {{0, 2}}, {{1, 0}}},
		MaxCrashes: 2,
	}
	states, shared, err := CheckCAS(m, 1<<23)
	if err != nil {
		t.Fatalf("violation after %d states: %v", states, err)
	}
	t.Logf("%d states, %d memory-distinct configurations", states, shared)
}
