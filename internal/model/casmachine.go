package model

import "fmt"

// MaxProcs bounds the machine sizes; states embed fixed-size arrays so they
// are comparable and hashable by value.
const MaxProcs = 4

// OpCAS is one scripted Cas(Old, New) invocation.
type OpCAS struct {
	Old, New int8
}

// Verdicts of a completed operation (stored in Ann.result encoding).
const (
	resBot   int8 = 0 // ⊥
	resFalse int8 = 1
	resTrue  int8 = 2
)

// CAS-machine program counters; body and recovery values match the paper's
// line numbers of Algorithm 2.
const (
	pcIdle int8 = 0
	pc28   int8 = 28 // load C
	pc30   int8 = 30 // persist false (val mismatch)
	pc33   int8 = 33 // persist RDp
	pc34   int8 = 34 // CP := 1
	pc35   int8 = 35 // the CAS primitive
	pc36   int8 = 36 // persist result
	pc38   int8 = 38 // recovery: check persisted result
	pc40   int8 = 40 // recovery: check CP
	pc42   int8 = 42 // recovery: load C, compare vec[p] with RDp
	pc45   int8 = 45 // recovery: persist true
)

// CASConfig is one full configuration of the Algorithm 2 machine:
// shared memory (Val, Vec), private NVM (RD, AnnRes, AnnCP), volatile state
// (PC, locals) and adversary bookkeeping (script positions, crash budget,
// ground-truth flags used by the assertions).
type CASConfig struct {
	// Shared memory: C = ⟨Val, Vec⟩.
	Val int8
	Vec uint8

	// Private non-volatile memory.
	RD     [MaxProcs]bool
	AnnRes [MaxProcs]int8
	AnnCP  [MaxProcs]int8

	// Volatile per-process state (cleared by a crash).
	PC   [MaxProcs]int8
	LVal [MaxProcs]int8 // value loaded at line 28
	LVec [MaxProcs]uint8
	Res  [MaxProcs]int8 // CAS outcome local, for line 36

	// Adversary bookkeeping (not memory; part of the exploration state).
	OpIdx     [MaxProcs]int8
	InOp      [MaxProcs]bool
	Succeeded [MaxProcs]bool // ground truth: current op's CAS succeeded
	Crashes   int8
}

// SharedKey is the memory-equivalence class of the configuration: the
// values of all shared variables (Theorem 1 counts exactly these).
func (c CASConfig) SharedKey() string { return fmt.Sprintf("%d|%b", c.Val, c.Vec) }

// CASMachine explores Algorithm 2 for N processes running the given
// per-process scripts.
type CASMachine struct {
	// N is the number of processes (≤ MaxProcs).
	N int
	// Scripts lists each process's operations, invoked in order.
	Scripts [][]OpCAS
	// InitVal is C's initial value.
	InitVal int8
	// MaxCrashes bounds the number of system-wide crash transitions.
	MaxCrashes int
	// NoAux ablates the auxiliary state: invocations do NOT reset
	// Ann.result and Ann.CP (Theorem 2's hypothetical). With this flag the
	// explorer is expected to find detectability violations.
	NoAux bool
}

// Init returns the initial configuration.
func (m *CASMachine) Init() CASConfig {
	if m.N > MaxProcs {
		panic(fmt.Sprintf("model: N=%d exceeds MaxProcs", m.N))
	}
	return CASConfig{Val: m.InitVal}
}

// Violation describes a detectability breach found during exploration.
type Violation struct {
	PID     int
	Verdict string
	Detail  string
}

// Error implements error.
func (v Violation) Error() string {
	return fmt.Sprintf("model: detectability violation by p%d: verdict %s but %s", v.PID, v.Verdict, v.Detail)
}

// Succ returns all successor configurations: one per enabled process step,
// plus a crash transition while the budget lasts.
func (m *CASMachine) Succ(c CASConfig) ([]CASConfig, error) {
	var out []CASConfig
	for p := 0; p < m.N; p++ {
		ns, ok, err := m.step(c, p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ns)
		}
	}
	if int(c.Crashes) < m.MaxCrashes {
		out = append(out, m.crash(c))
	}
	return out, nil
}

// step executes process p's next transition, if any.
func (m *CASMachine) step(c CASConfig, p int) (CASConfig, bool, error) {
	bit := uint8(1) << uint(p)
	switch c.PC[p] {
	case pcIdle:
		if c.InOp[p] || int(c.OpIdx[p]) >= len(m.Scripts[p]) {
			return c, false, nil
		}
		// Invocation: the caller announces the operation. With auxiliary
		// state this resets Ann.result to ⊥ and Ann.CP to 0; the ablated
		// machine leaves the stale values in place.
		c.InOp[p] = true
		c.Succeeded[p] = false
		if !m.NoAux {
			c.AnnRes[p] = resBot
			c.AnnCP[p] = 0
		}
		c.PC[p] = pc28
		return c, true, nil

	case pc28: // ⟨val, vec⟩ := C
		c.LVal[p], c.LVec[p] = c.Val, c.Vec
		op := m.op(c, p)
		if c.LVal[p] != op.Old {
			c.PC[p] = pc30
		} else {
			c.PC[p] = pc33
		}
		return c, true, nil

	case pc30: // Ann.result := false; return false
		c.AnnRes[p] = resFalse
		return m.complete(c, p, resFalse, false)

	case pc33: // RDp := newvec[p]
		c.RD[p] = c.LVec[p]&bit == 0 // flipped bit value
		c.PC[p] = pc34
		return c, true, nil

	case pc34: // Ann.CP := 1
		c.AnnCP[p] = 1
		c.PC[p] = pc35
		return c, true, nil

	case pc35: // res := C.CAS(⟨val,vec⟩, ⟨new,newvec⟩)
		op := m.op(c, p)
		if c.Val == c.LVal[p] && c.Vec == c.LVec[p] {
			c.Val = op.New
			c.Vec = c.LVec[p] ^ bit
			c.Succeeded[p] = true
			c.Res[p] = resTrue
		} else {
			c.Res[p] = resFalse
		}
		c.PC[p] = pc36
		return c, true, nil

	case pc36: // Ann.result := res; return res
		c.AnnRes[p] = c.Res[p]
		return m.complete(c, p, c.Res[p], false)

	case pc38: // recovery: persisted result?
		if c.AnnRes[p] != resBot {
			return m.complete(c, p, c.AnnRes[p], true)
		}
		c.PC[p] = pc40
		return c, true, nil

	case pc40: // recovery: CP = 0 → fail
		if c.AnnCP[p] == 0 {
			return m.completeFail(c, p)
		}
		c.PC[p] = pc42
		return c, true, nil

	case pc42: // recovery: ⟨val,vec⟩ := C; vec[p] ≠ RDp → fail
		if (c.Vec&bit != 0) != c.RD[p] {
			return m.completeFail(c, p)
		}
		c.PC[p] = pc45
		return c, true, nil

	case pc45: // recovery: Ann.result := true; return true
		c.AnnRes[p] = resTrue
		return m.complete(c, p, resTrue, true)

	default:
		return c, false, fmt.Errorf("model: p%d at unknown pc %d", p, c.PC[p])
	}
}

// complete finishes p's current operation with the given verdict, checking
// it against the ground truth.
func (m *CASMachine) complete(c CASConfig, p int, verdict int8, recovered bool) (CASConfig, bool, error) {
	switch verdict {
	case resTrue:
		if !c.Succeeded[p] {
			return c, false, Violation{PID: p, Verdict: "true", Detail: "its CAS never succeeded"}
		}
	case resFalse:
		if c.Succeeded[p] {
			return c, false, Violation{PID: p, Verdict: "false", Detail: "its CAS succeeded"}
		}
	}
	_ = recovered
	c.InOp[p] = false
	c.OpIdx[p]++
	c.PC[p] = pcIdle
	return c, true, nil
}

// completeFail finishes p's operation with the fail verdict: the operation
// must not have taken effect.
func (m *CASMachine) completeFail(c CASConfig, p int) (CASConfig, bool, error) {
	if c.Succeeded[p] {
		return c, false, Violation{PID: p, Verdict: "fail", Detail: "its CAS succeeded (operation was linearized)"}
	}
	c.InOp[p] = false
	c.OpIdx[p]++
	c.PC[p] = pcIdle
	return c, true, nil
}

// crash performs the system-wide crash transition: every process inside an
// operation loses its volatile state and restarts at the recovery function.
func (m *CASMachine) crash(c CASConfig) CASConfig {
	c.Crashes++
	for p := 0; p < m.N; p++ {
		if c.InOp[p] {
			c.PC[p] = pc38
			c.LVal[p], c.LVec[p], c.Res[p] = 0, 0, 0
		}
	}
	return c
}

func (m *CASMachine) op(c CASConfig, p int) OpCAS {
	return m.Scripts[p][c.OpIdx[p]]
}

// CheckCAS explores the machine exhaustively and returns the number of
// distinct configurations, the number of distinct shared-memory
// (memory-equivalence) classes, and the first detectability violation, if
// any.
func CheckCAS(m *CASMachine, limit int) (states int, sharedConfigs int, err error) {
	shared := map[string]bool{}
	states, err = Explore(m.Init(), limit, m.Succ, func(c CASConfig) {
		shared[c.SharedKey()] = true
	})
	return states, len(shared), err
}

// ConfigCount runs the Theorem 1 experiment: N processes each perform one
// Cas(0, 0) (a value-preserving successful CAS that flips the process's
// vector bit); exploring all interleavings realizes every subset of flipped
// bits, so the count of memory-distinct configurations must reach 2^N.
func ConfigCount(n int) (int, error) {
	scripts := make([][]OpCAS, n)
	for p := range scripts {
		scripts[p] = []OpCAS{{Old: 0, New: 0}}
	}
	m := &CASMachine{N: n, Scripts: scripts}
	_, sharedConfigs, err := CheckCAS(m, 1<<22)
	return sharedConfigs, err
}
