package model

// Cross-validation: the explicit step machines and the natural goroutine
// implementations (internal/rcas, internal/rw) encode the same algorithms.
// For every solo execution with a crash injected after each possible
// prefix of body primitives, both encodings must produce the same
// recovery verdict and the same final shared-memory state.
//
// The step correspondence is exact: the natural implementations perform a
// 3-primitive announcement followed by one primitive per pseudo-code line,
// and the machines perform one invocation transition followed by one
// transition per pseudo-code line.

import (
	"fmt"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
)

// runMachineSoloCAS executes a single-process CAS machine, crashing after
// crashAfter body transitions (0 = before any), then recovers to
// completion. It returns the verdict ("true", "false" or "fail") and the
// final shared state.
func runMachineSoloCAS(t *testing.T, init int8, op OpCAS, crashAfter int) (string, int8, uint8) {
	t.Helper()
	m := &CASMachine{N: 1, Scripts: [][]OpCAS{{op}}, InitVal: init, MaxCrashes: 1}
	c := m.Init()
	step := func() {
		ns, ok, err := m.step(c, 0)
		if err != nil || !ok {
			t.Fatalf("machine step failed: ok=%v err=%v (pc=%d)", ok, err, c.PC[0])
		}
		c = ns
	}
	step() // invocation
	for i := 0; i < crashAfter && c.InOp[0]; i++ {
		step()
	}
	if c.InOp[0] {
		c = m.crash(c)
		for c.InOp[0] {
			step()
		}
	}
	switch c.AnnRes[0] {
	case resTrue:
		return "true", c.Val, c.Vec
	case resFalse:
		return "false", c.Val, c.Vec
	default:
		return "fail", c.Val, c.Vec
	}
}

// runNaturalSoloCAS executes the same scenario on the natural
// implementation; the crash plan fires before body primitive crashAfter+1,
// i.e. after crashAfter body primitives (the announcement adds 3).
func runNaturalSoloCAS(t *testing.T, init int, op OpCAS, crashAfter int) (string, int, uint64) {
	t.Helper()
	sys := runtime.NewSystem(1)
	o := rcas.NewInt(sys, init)
	out := o.Cas(0, int(op.Old), int(op.New), nvm.CrashAtStep(uint64(3+crashAfter+1)))
	pair := o.PeekPair()
	switch {
	case out.Status == runtime.StatusFailed:
		return "fail", pair.Val, pair.Vec
	case out.Resp:
		return "true", pair.Val, pair.Vec
	default:
		return "false", pair.Val, pair.Vec
	}
}

func TestCrossValidationCAS(t *testing.T) {
	scenarios := []struct {
		init int8
		op   OpCAS
	}{
		{0, OpCAS{Old: 0, New: 1}}, // success path
		{2, OpCAS{Old: 0, New: 1}}, // value-mismatch path
		{1, OpCAS{Old: 1, New: 1}}, // value-preserving success
	}
	for _, sc := range scenarios {
		// Body length ≤ 5 primitives; sweep past the end to cover the
		// crash-free case too.
		for crashAfter := 0; crashAfter <= 6; crashAfter++ {
			name := fmt.Sprintf("init=%d op=(%d,%d) crashAfter=%d", sc.init, sc.op.Old, sc.op.New, crashAfter)
			mv, mval, mvec := runMachineSoloCAS(t, sc.init, sc.op, crashAfter)
			nv, nval, nvec := runNaturalSoloCAS(t, int(sc.init), sc.op, crashAfter)
			if mv != nv {
				t.Errorf("%s: machine verdict %s, natural verdict %s", name, mv, nv)
			}
			if int(mval) != nval || uint64(mvec) != nvec {
				t.Errorf("%s: machine state (%d,%b), natural state (%d,%b)", name, mval, mvec, nval, nvec)
			}
		}
	}
}

// runMachineSoloRW is the analogous driver for Algorithm 1.
func runMachineSoloRW(t *testing.T, init int8, val int8, crashAfter int) (string, int8, int8, int8) {
	t.Helper()
	m := &RWMachine{N: 1, Scripts: [][]int8{{val}}, InitVal: init, MaxCrashes: 1}
	c := m.Init()
	step := func() {
		ns, ok, err := m.step(c, 0)
		if err != nil || !ok {
			t.Fatalf("machine step failed: ok=%v err=%v (pc=%d)", ok, err, c.PC[0])
		}
		c = ns
	}
	step() // invocation
	for i := 0; i < crashAfter && c.InOp[0]; i++ {
		step()
	}
	if c.InOp[0] {
		c = m.crash(c)
		for c.InOp[0] {
			step()
		}
	}
	verdict := "fail"
	if c.AnnRes[0] != 0 {
		verdict = "ack"
	}
	return verdict, c.RVal, c.RQ, c.RT
}

func runNaturalSoloRW(t *testing.T, init, val, crashAfter int) (string, int, int, int) {
	t.Helper()
	sys := runtime.NewSystem(1)
	reg := rw.NewInt(sys, init)
	out := reg.Write(0, val, nvm.CrashAtStep(uint64(3+crashAfter+1)))
	tr := reg.PeekTriple()
	if out.Status == runtime.StatusFailed {
		return "fail", tr.Val, tr.Q, tr.Toggle
	}
	return "ack", tr.Val, tr.Q, tr.Toggle
}

func TestCrossValidationRW(t *testing.T) {
	// Solo write body for N=1: lines 1-8 (8 primitives), one toggle store,
	// Tp, result = 11 primitives. Sweep past the end.
	for _, val := range []int8{1, 9} {
		for crashAfter := 0; crashAfter <= 12; crashAfter++ {
			name := fmt.Sprintf("val=%d crashAfter=%d", val, crashAfter)
			mv, mval, mq, mt := runMachineSoloRW(t, 0, val, crashAfter)
			nv, nval, nq, nt := runNaturalSoloRW(t, 0, int(val), crashAfter)
			if mv != nv {
				t.Errorf("%s: machine verdict %s, natural verdict %s", name, mv, nv)
			}
			if int(mval) != nval || int(mq) != nq || int(mt) != nt {
				t.Errorf("%s: machine R=(%d,%d,%d), natural R=(%d,%d,%d)",
					name, mval, mq, mt, nval, nq, nt)
			}
		}
	}
}

// TestCrossValidationRWSameValueABA drives both encodings through a
// two-process schedule: p crashes around its store while q completes one
// write of the same value. The machine explores all interleavings including
// this one (TestRWExhaustiveDetectability); here we pin the natural
// implementation's verdicts for the two boundary steps and check the
// machine agrees under the matching schedule.
func TestCrossValidationRWSameValueABA(t *testing.T) {
	// Natural: crash before line 7 (step 10), q writes the initial value in
	// between → fail.
	sys := runtime.NewSystem(2)
	reg := rw.NewInt(sys, 0)
	hook := &nvm.StepHook{
		Step: 10,
		Fn:   func() { reg.Write(0, 0) },
	}
	out := reg.Write(1, 5, nvm.Plans{hook, nvm.CrashAtStep(10)})
	if out.Status != runtime.StatusFailed {
		t.Fatalf("natural verdict %v, want failed", out.Status)
	}

	// Machine: p1 runs 6 body transitions (lines 1-6), then p0 completes a
	// full write of value 0, then crash, then p1 recovers solo.
	m := &RWMachine{N: 2, Scripts: [][]int8{{0}, {5}}, MaxCrashes: 1}
	c := m.Init()
	stepP := func(p int) {
		ns, ok, err := m.step(c, p)
		if err != nil || !ok {
			t.Fatalf("machine step p%d failed: ok=%v err=%v (pc=%d)", p, ok, err, c.PC[p])
		}
		c = ns
	}
	stepP(1) // invoke p1
	for i := 0; i < 6; i++ {
		stepP(1) // p1 through line 6 (CP := 1), about to store R
	}
	stepP(0) // invoke p0
	for c.InOp[0] {
		stepP(0) // p0's full write of value 0
	}
	c = m.crash(c)
	for c.InOp[1] {
		stepP(1) // p1 recovers solo
	}
	if c.AnnRes[1] != 0 {
		t.Fatal("machine verdict ack, natural verdict fail — encodings diverge")
	}
}
