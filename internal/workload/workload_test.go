package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfDeterministic: the rank stream is a pure function of the seed —
// two generators with the same (seed, n, theta) must agree draw for draw,
// and different seeds must diverge.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(42)), 128, 0.9)
	b := NewZipf(rand.New(rand.NewSource(42)), 128, 0.9)
	diverged := false
	c := NewZipf(rand.New(rand.NewSource(43)), 128, 0.9)
	for i := 0; i < 1000; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatalf("draw %d: same seed gave %d vs %d", i, ra, rb)
		}
		if ra != rc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatalf("seeds 42 and 43 produced identical 1000-draw streams")
	}
}

// TestZipfUniformAtThetaZero: theta = 0 must be the uniform distribution,
// exactly in the CDF and approximately in a sampled run.
func TestZipfUniformAtThetaZero(t *testing.T) {
	const n, draws = 16, 160000
	z := NewZipf(rand.New(rand.NewSource(1)), n, 0)
	for r := 0; r < n; r++ {
		if got, want := z.P(r), 1.0/n; math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(%d) = %g, want %g", r, got, want)
		}
	}
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if ratio := float64(c) / (draws / n); ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("rank %d drawn %d times (ratio %.2f), want ~uniform", r, c, ratio)
		}
	}
}

// TestZipfRankFrequency is the empirical skew sanity pin at theta = 0.9:
// frequencies decrease with rank, the hot/second ratio matches 2^0.9, and
// the sampled frequencies track the exact distribution.
func TestZipfRankFrequency(t *testing.T) {
	const n, draws = 100, 400000
	z := NewZipf(rand.New(rand.NewSource(7)), n, 0.9)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for _, pair := range [][2]int{{0, 1}, {1, 3}, {3, 9}, {9, 49}} {
		if counts[pair[0]] <= counts[pair[1]] {
			t.Fatalf("rank %d (%d draws) not hotter than rank %d (%d draws)",
				pair[0], counts[pair[0]], pair[1], counts[pair[1]])
		}
	}
	// P(0)/P(1) = 2^0.9 ≈ 1.866; a 400k sample pins it loosely.
	if ratio := float64(counts[0]) / float64(counts[1]); ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("hot/second ratio %.2f, want ≈ 2^0.9 ≈ 1.87", ratio)
	}
	for r := 0; r < 10; r++ {
		emp := float64(counts[r]) / draws
		if math.Abs(emp-z.P(r)) > 0.01 {
			t.Fatalf("rank %d: empirical %.4f vs exact %.4f", r, emp, z.P(r))
		}
	}
}

// TestZipfHeavySkew: at theta = 1.2 (past math/rand.Zipf's s > 1 floor is
// the point — we cross theta = 1) the top handful of ranks must hold most
// of the mass.
func TestZipfHeavySkew(t *testing.T) {
	const n, draws = 1024, 200000
	z := NewZipf(rand.New(rand.NewSource(5)), n, 1.2)
	top8 := 0.0
	for r := 0; r < 8; r++ {
		top8 += z.P(r)
	}
	if top8 < 0.5 {
		t.Fatalf("exact top-8 mass %.3f at theta=1.2, want > 0.5", top8)
	}
	hot := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 8 {
			hot++
		}
	}
	if emp := float64(hot) / draws; math.Abs(emp-top8) > 0.02 {
		t.Fatalf("empirical top-8 mass %.3f vs exact %.3f", emp, top8)
	}
}

// TestWorkerSeedIndependence pins the satellite fix: the old
// base + pid*1001 scheme gave two runs of different -procs identical
// worker streams; WorkerSeed must give every (base, workers, worker)
// triple a distinct seed while staying replayable.
func TestWorkerSeedIndependence(t *testing.T) {
	if WorkerSeed(1, 4, 2) != WorkerSeed(1, 4, 2) {
		t.Fatalf("WorkerSeed is not deterministic")
	}
	seen := make(map[int64][3]int)
	for _, base := range []int64{0, 1, 42, -7} {
		for _, workers := range []int{1, 2, 4, 8, 64} {
			for w := 0; w < workers; w++ {
				s := WorkerSeed(base, workers, w)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (base=%d workers=%d w=%d) and %v both map to %d",
						base, workers, w, prev, s)
				}
				seen[s] = [3]int{int(base), workers, w}
			}
		}
	}
	// The specific collision class of the old scheme: worker w of a
	// -procs=4 run vs the same worker of a -procs=8 run, same seed base.
	if WorkerSeed(1, 4, 1) == WorkerSeed(1, 8, 1) {
		t.Fatalf("worker 1 shares a stream across different worker counts")
	}
}

// TestZipfNextAllocFree: the hot path of every loadgen worker must not
// allocate.
func TestZipfNextAllocFree(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 4096, 0.9)
	if allocs := testing.AllocsPerRun(1000, func() { z.Next() }); allocs != 0 {
		t.Fatalf("Next allocates %v/op, want 0", allocs)
	}
}
