// Package workload generates the key-access distributions the load
// generator, the served benchmark and the curated benchmark suite share:
// seeded, replayable Zipfian hot-key skew plus uniform traffic as its
// theta=0 degenerate case, and splitmix-style seed derivation so every
// worker of every sweep configuration draws from an independent stream.
//
// Uniform single-key traffic — everything the repo measured before PR 8 —
// spreads load evenly over shards, so per-shard serialization points (a
// key-table lock, a history ticket, shared stats words) hide in the noise.
// Under Zipfian skew one shard absorbs most of the load and those points
// dominate; this package exists to make that regime reproducible.
package workload

import (
	"math"
	"math/rand"
)

// Zipf draws ranks in [0, n) with probability P(r) ∝ 1/(r+1)^theta: rank 0
// is the hottest key. theta = 0 is the uniform distribution; theta ≈ 0.9
// is the classic YCSB hot-key mix; theta > 1 concentrates most of the mass
// on a handful of keys. Unlike math/rand's Zipf (which requires s > 1),
// any theta ≥ 0 is accepted — benchmark sweeps cross the theta = 1
// boundary.
//
// The generator precomputes the distribution's CDF once (O(n) setup, fine
// for benchmark key spaces) and draws by binary search: one rng.Float64
// plus O(log n) comparisons per Next, no allocation, and the rank stream
// is a pure function of the rng's seed — replayable across runs and
// machines.
type Zipf struct {
	rng *rand.Rand
	cdf []float64
}

// NewZipf returns a generator over n ranks with exponent theta, drawing
// randomness from rng. It panics on n < 1 or theta < 0.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		panic("workload: NewZipf needs n ≥ 1")
	}
	if theta < 0 {
		panic("workload: NewZipf needs theta ≥ 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), theta)
		cdf[r] = sum
	}
	inv := 1 / sum
	for r := range cdf {
		cdf[r] *= inv
	}
	cdf[n-1] = 1 // exact upper bound despite rounding
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// P returns rank r's exact probability, for tests and reporting.
func (z *Zipf) P(r int) float64 {
	if r == 0 {
		return z.cdf[0]
	}
	return z.cdf[r] - z.cdf[r-1]
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first rank whose CDF covers u (inlined
	// sort.SearchFloat64s, which would be an interface call per draw).
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WorkerSeed derives worker w's rng seed for a run with the given base
// seed and worker count, by splitmix64-style hashing of all three. The
// seed base, the worker count and the worker index each perturb every bit
// of the result, so (unlike additive schemes such as base + w*1001) two
// sweep configurations sharing a seed base never share a worker stream,
// while any exact (base, workers, w) triple replays identically.
func WorkerSeed(base int64, workers, w int) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ uint64(workers)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(w))
	return int64(h)
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.):
// an invertible avalanche of all 64 bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
