package runtime

import (
	"sync"
	"testing"

	"detectable/internal/history"
	"detectable/internal/nvm"
	"detectable/internal/spec"
)

// toyObject is a minimal detectable "store" object used to exercise Execute:
// the body persists a checkpoint, writes the register, then persists the
// response. Recovery uses the checkpoint to decide linearized-or-not.
type toyObject struct {
	sys *System
	reg *nvm.Cell[int]
	ann []*Ann[int]
}

func newToy(sys *System) *toyObject {
	t := &toyObject{sys: sys, reg: nvm.NewCell(sys.Space(), 0)}
	for p := 0; p < sys.N(); p++ {
		t.ann = append(t.ann, NewAnn[int](sys.Space()))
	}
	return t
}

func (t *toyObject) storeOp(pid, v int) Op[int] {
	ann := t.ann[pid]
	return Op[int]{
		Desc:     spec.NewOp(spec.MethodWrite, v),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "store") },
		Body: func(ctx *nvm.Ctx) int {
			ann.SetCP(ctx, 1)            // step 1
			t.reg.Store(ctx, v)          // step 2
			ann.SetCP(ctx, 2)            // step 3
			ann.SetResult(ctx, spec.Ack) // step 4
			return spec.Ack
		},
		Recover: func(ctx *nvm.Ctx) (int, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			switch ann.GetCP(ctx) {
			case 0:
				return 0, false
			case 1:
				// May or may not have written; this toy conservatively
				// completes the write (idempotent for a single writer).
				t.reg.Store(ctx, v)
			}
			ann.SetCP(ctx, 2)
			ann.SetResult(ctx, spec.Ack)
			return spec.Ack, true
		},
		Encode: EncodeInt,
	}
}

func TestExecuteOK(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	out := Execute(sys, 0, toy.storeOp(0, 7))
	if out.Status != StatusOK || out.Resp != spec.Ack || out.Crashes != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if got := toy.reg.Peek(); got != 7 {
		t.Fatalf("reg = %d, want 7", got)
	}
	evs := sys.Log().Events()
	if len(evs) != 2 {
		t.Fatalf("log has %d events, want invoke+return", len(evs))
	}
}

func TestExecuteFailBeforeCheckpoint(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	// The announcement takes 3 primitives; body step 1 is the CP store, so
	// crashing before body step 1 (= overall step 4) yields fail.
	out := Execute(sys, 0, toy.storeOp(0, 7), nvm.CrashAtStep(4))
	if out.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", out.Status)
	}
	if out.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", out.Crashes)
	}
	if got := toy.reg.Peek(); got != 0 {
		t.Fatalf("reg = %d, want 0 (failed op must have no effect)", got)
	}
}

func TestExecuteRecoverAfterWrite(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	// Crash after the register store (announce=3, CP=4, store=5 → crash
	// before step 6, the CP:=2 store).
	out := Execute(sys, 0, toy.storeOp(0, 7), nvm.CrashAtStep(6))
	if out.Status != StatusRecovered || out.Resp != spec.Ack {
		t.Fatalf("outcome = %+v", out)
	}
	if got := toy.reg.Peek(); got != 7 {
		t.Fatalf("reg = %d, want 7", got)
	}
}

func TestExecuteRecoveredResponseFromAnn(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	// Crash after the response persist? The body has 4 primitives
	// (steps 4..7 overall); crash before step 8 never fires during the
	// body, so plan a crash during... instead crash right before the final
	// persist (step 7): recovery must still return ack via the checkpoint.
	out := Execute(sys, 0, toy.storeOp(0, 9), nvm.CrashAtStep(7))
	if out.Status != StatusRecovered || out.Resp != spec.Ack {
		t.Fatalf("outcome = %+v", out)
	}
	// And the response is now persisted for idempotent re-recovery.
	ctx := sys.Space().Ctx(0, nil)
	if r := toy.ann[0].Result(ctx); !r.Set || r.Val != spec.Ack {
		t.Fatalf("persisted result = %+v", r)
	}
}

func TestExecuteMultipleCrashesDuringRecovery(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	out := Execute(sys, 0, toy.storeOp(0, 3),
		nvm.CrashAtStep(5), // crash during body, after CP:=1
		nvm.CrashAtStep(1), // crash during first recovery attempt
		nvm.CrashAtStep(2), // crash during second recovery attempt
	)
	if out.Status != StatusRecovered {
		t.Fatalf("status = %v, want recovered", out.Status)
	}
	if out.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3", out.Crashes)
	}
	if got := toy.reg.Peek(); got != 3 {
		t.Fatalf("reg = %d, want 3", got)
	}
}

func TestExecuteNotInvoked(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	// Announcement is steps 1-3; crash before step 2 hits mid-announcement.
	out := Execute(sys, 0, toy.storeOp(0, 7), nvm.CrashAtStep(2))
	if out.Status != StatusNotInvoked {
		t.Fatalf("status = %v, want not-invoked", out.Status)
	}
	// The only recorded event is the crash itself: no invocation, no
	// recovery verdict.
	evs := sys.Log().Events()
	if len(evs) != 1 || evs[0].Kind != history.KindCrash {
		t.Fatalf("log = %v, want a single crash event", evs)
	}
}

func TestExecuteNRLRetriesUntilLinearized(t *testing.T) {
	sys := NewSystem(1)
	toy := newToy(sys)
	attempt := 0
	resp, invocations := ExecuteNRL(sys, 0, func() Op[int] {
		attempt++
		op := toy.storeOp(0, 5)
		if attempt == 1 {
			// Sabotage the first invocation so it fails before the CP.
			body := op.Body
			op.Body = func(ctx *nvm.Ctx) int {
				sys.Crash()
				return body(ctx)
			}
		}
		return op
	})
	if resp != spec.Ack {
		t.Fatalf("resp = %d", resp)
	}
	if invocations != 2 {
		t.Fatalf("invocations = %d, want 2", invocations)
	}
	if got := toy.reg.Peek(); got != 5 {
		t.Fatalf("reg = %d, want 5", got)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOK:         "ok",
		StatusRecovered:  "recovered",
		StatusFailed:     "failed",
		StatusNotInvoked: "not-invoked",
		Status(0):        "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
	if StatusFailed.Linearized() || StatusNotInvoked.Linearized() {
		t.Error("failed/not-invoked reported linearized")
	}
	if !StatusOK.Linearized() || !StatusRecovered.Linearized() {
		t.Error("ok/recovered reported not linearized")
	}
}

func TestAnnAnnounceResets(t *testing.T) {
	sys := NewSystem(1)
	ann := NewAnn[int](sys.Space())
	ctx := sys.Space().Ctx(0, nil)
	ann.SetCP(ctx, 2)
	ann.SetResult(ctx, 42)
	ann.Announce(ctx, "write:1")
	if got := ann.GetCP(ctx); got != 0 {
		t.Fatalf("CP after announce = %d, want 0", got)
	}
	if r := ann.Result(ctx); r.Set {
		t.Fatalf("Resp after announce = %+v, want ⊥", r)
	}
	if got := ann.Op.Load(ctx); got != "write:1" {
		t.Fatalf("Op = %q", got)
	}
}

func TestConcurrentExecutesWithStorm(t *testing.T) {
	const (
		procs = 4
		ops   = 30
	)
	sys := NewSystem(procs)
	toy := newToy(sys)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // crash storm
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%64 == 0 {
				sys.Crash()
			}
		}
	}()

	var workers sync.WaitGroup
	for p := 0; p < procs; p++ {
		workers.Add(1)
		go func(pid int) {
			defer workers.Done()
			for i := 0; i < ops; i++ {
				out := Execute(sys, pid, toy.storeOp(pid, pid*100+i))
				if out.Status == StatusFailed || out.Status == StatusNotInvoked {
					continue // caller chooses not to retry
				}
			}
		}(p)
	}
	workers.Wait()
	close(stop)
	wg.Wait()

	// The toy's single-cell register under concurrent writers does not have
	// a meaningful linearizable spec here; this test asserts only that the
	// machinery survives storms without deadlock or stray panics and the
	// log is well-formed.
	if sys.Log().Len() == 0 {
		t.Fatal("no events recorded")
	}
}
