// Package runtime executes recoverable operations under the system-wide
// crash-failure model of the paper.
//
// A System owns a simulated memory Space shared by N processes and a
// history log. Operations are executed through Execute, which implements
// the paper's invocation protocol:
//
//  1. The caller announces the operation (writing Ann_p.op, resetting
//     Ann_p.resp to ⊥ and Ann_p.CP to 0 — the auxiliary state of
//     Definition 1).
//  2. The operation body runs. If a system-wide crash occurs, the body's
//     next primitive panics, the Go stack unwinds (discarding volatile
//     locals exactly as the crash model discards volatile state), and
//     Execute catches the panic.
//  3. The recovery function then runs with the same arguments, re-entered
//     as many times as crashes interrupt it, until it completes with either
//     the operation's response (the operation was linearized) or the
//     distinguished fail verdict (it was not).
//
// Processes recover independently and asynchronously: Execute performs no
// cross-process coordination after a crash.
package runtime

import (
	"fmt"

	"detectable/internal/history"
	"detectable/internal/nvm"
	"detectable/internal/spec"
)

// Status classifies the outcome of one Execute call.
type Status int

// Outcome statuses.
const (
	// StatusOK: the body completed without observing a crash.
	StatusOK Status = iota + 1
	// StatusRecovered: the body crashed and the recovery function returned
	// the operation's response — the operation was linearized.
	StatusRecovered
	// StatusFailed: the body crashed and the recovery function returned
	// fail — the operation was not linearized. The caller may re-invoke.
	StatusFailed
	// StatusNotInvoked: the crash hit during the caller's announcement,
	// before the operation was invoked; no recovery function runs.
	StatusNotInvoked
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRecovered:
		return "recovered"
	case StatusFailed:
		return "failed"
	case StatusNotInvoked:
		return "not-invoked"
	default:
		return "unknown"
	}
}

// Linearized reports whether the outcome means the operation took effect.
func (s Status) Linearized() bool { return s == StatusOK || s == StatusRecovered }

// Outcome is the result of executing one recoverable operation.
type Outcome[R comparable] struct {
	Status Status
	// Resp is the operation's response when Status.Linearized().
	Resp R
	// Crashes is the number of crash interruptions this execution observed
	// (body and recovery attempts combined).
	Crashes int
}

// Op describes one recoverable operation instance: the caller-side
// announcement, the body, and the recovery function (which the system
// calls with the same arguments as the body — both are closures over them).
type Op[R comparable] struct {
	// Desc is the abstract operation, recorded in the history log.
	Desc spec.Operation
	// Announce performs the caller-side announcement writes. May be nil
	// for operations requiring no auxiliary state (e.g. the max register).
	Announce func(ctx *nvm.Ctx)
	// Body executes the operation and returns its response.
	Body func(ctx *nvm.Ctx) R
	// Recover infers whether the crashed operation was linearized,
	// returning (response, true) if so and (zero, false) for fail.
	// May be nil only if Body can never crash (no primitives).
	Recover func(ctx *nvm.Ctx) (R, bool)
	// Encode maps the response to the integer encoding used by history
	// logs. Required when the System records histories.
	Encode func(R) int
}

// System is one simulated crash-prone shared-memory system.
type System struct {
	space *nvm.Space
	n     int
	log   *history.Log
}

// NewSystem returns a system of n processes with a fresh memory space
// under the private-cache model and a history log.
func NewSystem(n int) *System {
	return NewSystemModel(n, nvm.ModelPrivateCache)
}

// NewSystemModel returns a system of n processes whose memory space uses
// the given model (Section 6 of the paper): objects allocated in it get
// direct-persist words, flush-after-write cached words, or raw cached words.
func NewSystemModel(n int, m nvm.Model) *System {
	s := &System{space: nvm.NewSpaceModel(m), n: n, log: &history.Log{}}
	// Record every system-wide crash in the history, whether injected by
	// System.Crash or by a crash plan firing inside an operation.
	s.space.Epoch().SetAdvanceHook(s.log.Crash)
	return s
}

// N returns the number of processes.
func (s *System) N() int { return s.n }

// Space returns the system's memory space.
func (s *System) Space() *nvm.Space { return s.space }

// Log returns the system's history log.
func (s *System) Log() *history.Log { return s.log }

// SetHistory replaces the system's history log — e.g. with a ring
// (history.NewRing) on production paths where an unbounded full log would
// serialize and grow without limit, or with history.NewOff for benchmark
// floors. Call it before the first operation executes; events already
// recorded in the previous log are not carried over. The crash hook is
// re-installed so system-wide crashes land in the new log.
func (s *System) SetHistory(l *history.Log) {
	s.log = l
	s.space.Epoch().SetAdvanceHook(l.Crash)
}

// Crash injects a system-wide crash-failure: every in-flight operation
// panics at its next primitive and unflushed shared-cache state is lost.
// The crash event is recorded in the history via the epoch hook.
func (s *System) Crash() {
	s.space.Crash()
}

// Execute runs op as process pid following the crash-recovery protocol.
// plans supplies deterministic crash plans per attempt: plans[0] drives the
// announcement+body attempt, plans[i] the i-th recovery attempt. Missing
// entries mean no planned crash (crashes from other processes still
// interrupt the attempt).
func Execute[R comparable](s *System, pid int, op Op[R], plans ...nvm.CrashPlan) Outcome[R] {
	return execute(s, pid, op, plans, nil)
}

// ExecuteArmed runs op as process pid with plan armed on every attempt: the
// announcement+body attempt and every recovery re-entry, however many
// crashes interrupt it. Controlled-scheduler harnesses (internal/explore)
// use it so that every primitive of every attempt consults the plan — an
// attempt with a nil plan would take the lock-free fast path and become
// invisible to the scheduler.
func ExecuteArmed[R comparable](s *System, pid int, op Op[R], plan nvm.CrashPlan) Outcome[R] {
	return execute(s, pid, op, nil, plan)
}

// execute is the shared core of Execute and ExecuteArmed. Exactly one of
// plans/every is non-nil-ish: per-attempt plans, or one plan for all
// attempts. Passing both as parameters (rather than a plan-picking closure)
// keeps the crash-free Execute path allocation-free.
func execute[R comparable](s *System, pid int, op Op[R], plans []nvm.CrashPlan, every nvm.CrashPlan) Outcome[R] {
	if op.Encode == nil {
		// Capture only the description: closing over op itself would force
		// the whole Op (and its closures) to escape on every call.
		desc := op.Desc
		op.Encode = func(R) int { panic(fmt.Sprintf("runtime: op %s has no response encoder", desc)) }
	}

	ctx := s.space.AcquireCtx(pid, planAt(plans, 0, every))
	defer s.space.ReleaseCtx(ctx)

	// Phase 1: caller-side announcement (auxiliary state).
	if op.Announce != nil {
		if crashed := runPhase(func() { op.Announce(ctx) }); crashed {
			// The operation was never invoked; per the model, Ann_p.op does
			// not name it, so no recovery function runs for it.
			return Outcome[R]{Status: StatusNotInvoked, Crashes: 1}
		}
	}

	// Phase 2: the body.
	s.log.Invoke(pid, op.Desc)
	var resp R
	if crashed := runPhase(func() { resp = op.Body(ctx) }); !crashed {
		s.log.Return(pid, op.Encode(resp))
		return Outcome[R]{Status: StatusOK, Resp: resp}
	}

	// Phase 3: recovery, re-entered on every further crash.
	if op.Recover == nil {
		panic(fmt.Sprintf("runtime: op %s crashed but has no recovery function", op.Desc))
	}
	crashes := 1
	for attempt := 1; ; attempt++ {
		rctx := s.space.AcquireCtx(pid, planAt(plans, attempt, every))
		var (
			r  R
			ok bool
		)
		if crashed := runPhase(func() { r, ok = op.Recover(rctx) }); crashed {
			s.space.ReleaseCtx(rctx)
			crashes++
			continue
		}
		s.space.ReleaseCtx(rctx)
		if ok {
			s.log.RecoverReturn(pid, op.Encode(r), false)
			return Outcome[R]{Status: StatusRecovered, Resp: r, Crashes: crashes}
		}
		s.log.RecoverReturn(pid, 0, true)
		return Outcome[R]{Status: StatusFailed, Crashes: crashes}
	}
}

// ExecuteNRL wraps Execute with the nesting-safe recoverable linearizability
// transformation from Section 6 of the paper: a fail verdict (or a crash
// during announcement) triggers re-invocation, so the call always completes
// with a linearized response.
//
// makeOp must return a fresh Op for each (re-)invocation, so announcements
// re-run and closures capture fresh volatile state.
func ExecuteNRL[R comparable](s *System, pid int, makeOp func() Op[R]) (R, int) {
	invocations := 0
	for {
		invocations++
		out := Execute(s, pid, makeOp())
		if out.Status.Linearized() {
			return out.Resp, invocations
		}
	}
}

// runPhase runs f, converting a Crashed panic into a true return. Any other
// panic propagates.
func runPhase(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.Crashed); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

func planAt(plans []nvm.CrashPlan, i int, every nvm.CrashPlan) nvm.CrashPlan {
	if every != nil {
		return every
	}
	if i < len(plans) {
		return plans[i]
	}
	return nil
}

// EncodeInt is the identity response encoder.
func EncodeInt(v int) int { return v }

// EncodeBool encodes a boolean response as spec.True/spec.False.
func EncodeBool(v bool) int {
	if v {
		return spec.True
	}
	return spec.False
}

// EncodeAck encodes a value-free acknowledgment response.
func EncodeAck(struct{}) int { return spec.Ack }
