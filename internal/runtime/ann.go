package runtime

import (
	"detectable/internal/nvm"
)

// Ann is the per-process non-volatile announcement structure of the paper's
// system model (Section 2). The caller of a recoverable operation writes it
// immediately before invoking the operation:
//
//   - Op names the recoverable operation and its arguments, so post-crash
//     code knows which recovery function to run;
//   - Resp is reset to ⊥ and later holds the operation's persisted
//     response;
//   - CP is reset to 0 and used by the operation/recovery code to record
//     checkpoints in its execution flow.
//
// These caller-side writes are precisely the auxiliary state of
// Definition 1, which Theorem 2 proves necessary for detectable
// implementations of doubly-perturbing objects.
//
// The paper has a single Ann_p per process; this implementation allocates
// one per (process, object) pair, which is equivalent because a process
// runs at most one recoverable operation at a time.
type Ann[R comparable] struct {
	// Op holds the announced operation's key ("" when idle).
	Op nvm.CASRegister[string]
	// Resp holds the persisted response, ⊥ until the operation persists it.
	Resp nvm.CASRegister[nvm.Maybe[R]]
	// CP is the checkpoint counter.
	CP nvm.CASRegister[int]
}

// NewAnn allocates an announcement structure in sp.
func NewAnn[R comparable](sp *nvm.Space) *Ann[R] {
	return &Ann[R]{
		Op:   nvm.NewWord(sp, ""),
		Resp: nvm.NewWord(sp, nvm.None[R]()),
		CP:   nvm.NewWord(sp, 0),
	}
}

// Announce performs the caller-side initialization: announce the operation,
// reset the response to ⊥ and the checkpoint to 0. CP is written last so
// that a crash mid-announcement never leaves a fresh checkpoint paired with
// a stale response.
func (a *Ann[R]) Announce(ctx *nvm.Ctx, opKey string) {
	a.Op.Store(ctx, opKey)
	a.Resp.Store(ctx, nvm.None[R]())
	a.CP.Store(ctx, 0)
}

// SetResult persists the operation's response.
func (a *Ann[R]) SetResult(ctx *nvm.Ctx, r R) {
	a.Resp.Store(ctx, nvm.Some(r))
}

// Result reads the persisted response (⊥ if none).
func (a *Ann[R]) Result(ctx *nvm.Ctx) nvm.Maybe[R] {
	return a.Resp.Load(ctx)
}

// SetCP persists checkpoint cp.
func (a *Ann[R]) SetCP(ctx *nvm.Ctx, cp int) {
	a.CP.Store(ctx, cp)
}

// GetCP reads the checkpoint.
func (a *Ann[R]) GetCP(ctx *nvm.Ctx) int {
	return a.CP.Load(ctx)
}
