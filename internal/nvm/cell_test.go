package nvm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCellLoadStore(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 7)
	ctx := sp.Ctx(0, nil)
	if got := c.Load(ctx); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	c.Store(ctx, 42)
	if got := c.Load(ctx); got != 42 {
		t.Fatalf("Load after Store = %d, want 42", got)
	}
}

func TestCellCAS(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, "a")
	ctx := sp.Ctx(0, nil)
	if !c.CompareAndSwap(ctx, "a", "b") {
		t.Fatal("CAS(a,b) on value a failed")
	}
	if c.CompareAndSwap(ctx, "a", "c") {
		t.Fatal("CAS(a,c) on value b succeeded")
	}
	if got := c.Load(ctx); got != "b" {
		t.Fatalf("Load = %q, want %q", got, "b")
	}
}

func TestCellSurvivesCrash(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 10)
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 20)
	sp.Crash()
	if got := c.Peek(); got != 20 {
		t.Fatalf("after crash Peek = %d, want 20 (private-cache stores persist)", got)
	}
}

func TestCellStructValues(t *testing.T) {
	type triple struct {
		Val, Q, Toggle int
	}
	sp := NewSpace()
	c := NewCell(sp, triple{1, 0, 0})
	ctx := sp.Ctx(0, nil)
	if !c.CompareAndSwap(ctx, triple{1, 0, 0}, triple{2, 3, 1}) {
		t.Fatal("struct CAS with equal old failed")
	}
	if c.CompareAndSwap(ctx, triple{1, 0, 0}, triple{9, 9, 9}) {
		t.Fatal("struct CAS with stale old succeeded")
	}
	if got := c.Load(ctx); got != (triple{2, 3, 1}) {
		t.Fatalf("Load = %+v, want {2 3 1}", got)
	}
}

func TestStaleEpochPanics(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 0)
	ctx := sp.Ctx(3, nil)
	sp.Crash()
	defer func() {
		r := recover()
		cr, ok := r.(Crashed)
		if !ok {
			t.Fatalf("recover() = %v, want Crashed", r)
		}
		if cr.PID != 3 {
			t.Fatalf("Crashed.PID = %d, want 3", cr.PID)
		}
		if cr.StartEpoch != 0 || cr.ObservedEpoch != 1 {
			t.Fatalf("Crashed epochs = %d→%d, want 0→1", cr.StartEpoch, cr.ObservedEpoch)
		}
	}()
	c.Load(ctx)
	t.Fatal("Load under stale epoch did not panic")
}

func TestCheckAlive(t *testing.T) {
	sp := NewSpace()
	ctx := sp.Ctx(0, nil)
	ctx.CheckAlive() // must not panic before a crash
	sp.Crash()
	defer func() {
		if _, ok := recover().(Crashed); !ok {
			t.Fatal("CheckAlive after crash did not panic with Crashed")
		}
	}()
	ctx.CheckAlive()
}

func TestCrashAtStepPlan(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 0)
	ctx := sp.Ctx(0, CrashAtStep(3))

	crashed := func() (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Crashed); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		c.Store(ctx, 1) // step 1
		c.Store(ctx, 2) // step 2
		c.Store(ctx, 3) // step 3: crash fires before this store
		return false
	}()
	if !crashed {
		t.Fatal("plan CrashAtStep(3) did not fire")
	}
	if got := c.Peek(); got != 2 {
		t.Fatalf("value after crash-at-step-3 = %d, want 2 (third store must not land)", got)
	}
	if got := sp.Epoch().Current(); got != 1 {
		t.Fatalf("epoch = %d, want 1", got)
	}
}

func TestCrashAtStepFiresOnce(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 0)
	plan := CrashAtStep(1)

	func() {
		defer func() { recover() }()
		c.Store(sp.Ctx(0, plan), 1)
		t.Fatal("first attempt did not crash")
	}()

	// A new attempt with the same plan object must run to completion.
	ctx := sp.Ctx(0, plan)
	c.Store(ctx, 5)
	if got := c.Load(ctx); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
}

func TestStatsCounting(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 0)
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 1)
	c.Load(ctx)
	c.Load(ctx)
	c.CompareAndSwap(ctx, 1, 2)
	st := sp.Stats()
	if st.Stores() != 1 || st.Loads() != 2 || st.CASes() != 1 {
		t.Fatalf("stats = %d stores / %d loads / %d cas, want 1/2/1",
			st.Stores(), st.Loads(), st.CASes())
	}
	if st.Total() != 4 {
		t.Fatalf("Total = %d, want 4", st.Total())
	}
	st.Reset()
	if st.Total() != 0 {
		t.Fatalf("Total after Reset = %d, want 0", st.Total())
	}
}

func TestCellConcurrentCAS(t *testing.T) {
	// Concurrent increments via CAS loops must not lose updates.
	const (
		procs = 8
		incs  = 200
	)
	sp := NewSpace()
	c := NewCell(sp, 0)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			ctx := sp.Ctx(pid, nil)
			for i := 0; i < incs; i++ {
				for {
					v := c.Load(ctx)
					if c.CompareAndSwap(ctx, v, v+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := c.Peek(); got != procs*incs {
		t.Fatalf("counter = %d, want %d", got, procs*incs)
	}
}

// TestCellMatchesSequentialModel is a property-based test: any sequence of
// load/store/CAS primitives applied to a Cell behaves exactly like a plain
// variable.
func TestCellMatchesSequentialModel(t *testing.T) {
	type op struct {
		Kind     uint8
		Arg, Old uint8
	}
	f := func(init uint8, ops []op) bool {
		sp := NewSpace()
		c := NewCell(sp, init)
		ctx := sp.Ctx(0, nil)
		model := init
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				if c.Load(ctx) != model {
					return false
				}
			case 1:
				c.Store(ctx, o.Arg)
				model = o.Arg
			case 2:
				ok := c.CompareAndSwap(ctx, o.Old, o.Arg)
				wantOK := model == o.Old
				if ok != wantOK {
					return false
				}
				if wantOK {
					model = o.Arg
				}
			}
		}
		return c.Peek() == model
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaybe(t *testing.T) {
	n := None[int]()
	if n.Set {
		t.Fatal("None().Set = true")
	}
	s := Some(9)
	if !s.Set || s.Val != 9 {
		t.Fatalf("Some(9) = %+v", s)
	}
	if n == s {
		t.Fatal("None == Some(9)")
	}
	if Some(9) != s {
		t.Fatal("Some(9) != Some(9); Maybe must be comparable by value")
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{
		KindLoad:  "load",
		KindStore: "store",
		KindCAS:   "cas",
		KindFlush: "flush",
		OpKind(0): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
