package nvm

import (
	"reflect"
	"sync/atomic"
	"unsafe"
)

// word is the lock-free storage engine shared by Cell and CachedCell. It
// holds one value of T and supports atomic load / store / compare-and-swap
// with *value* semantics (CAS compares by ==, exactly like the mutex-guarded
// field it replaces).
//
// Two implementations exist, chosen once per cell at allocation time:
//
//   - bitsWord packs T into an atomic.Int64 when T is a boolean or
//     fixed-width integer kind. For those kinds bitwise equality coincides
//     with value equality, so the hardware CAS implements value CAS
//     directly, and every primitive is a single atomic instruction with no
//     allocation.
//   - ptrWord keeps the value behind an atomic.Pointer[T] and implements
//     CAS with a load/compare/pointer-CAS loop. Published values are
//     immutable, so readers never race with writers. A one-slot cache of
//     the previously displaced value makes the common alternating patterns
//     of the announcement structure (⊥ / response, "read" / "write")
//     allocation-free after warm-up.
//
// The word itself never checks epochs or plans — Cell/CachedCell drive the
// Ctx bookkeeping around it.
type word[T comparable] interface {
	load() T
	store(v T)
	cas(old, new T) bool
}

// newWordStorage picks the storage engine for T, initialized to init.
func newWordStorage[T comparable](init T) word[T] {
	if packable[T]() {
		w := &bitsWord[T]{}
		w.bits.Store(pack(init))
		return w
	}
	w := &ptrWord[T]{}
	v := init
	w.p.Store(&v)
	return w
}

// packable reports whether values of T can be represented inside an int64
// such that bitwise equality coincides with value equality: boolean and
// fixed-width integer kinds. Strings (compared by content, represented by
// pointer+length), floats (NaN ≠ NaN, -0.0 == 0.0) and composite kinds
// (padding bytes) are excluded and served by ptrWord.
func packable[T comparable]() bool {
	switch reflect.TypeFor[T]().Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr:
		return true
	}
	return false
}

// pack stores v in the low bytes of an otherwise-zero int64. Only called
// for types accepted by packable, whose size is at most 8 bytes.
func pack[T comparable](v T) int64 {
	var b int64
	*(*T)(unsafe.Pointer(&b)) = v
	return b
}

// unpack is the inverse of pack.
func unpack[T comparable](b int64) T {
	return *(*T)(unsafe.Pointer(&b))
}

// bitsWord is the packed engine: one atomic integer, zero allocations.
type bitsWord[T comparable] struct{ bits atomic.Int64 }

func (w *bitsWord[T]) load() T   { return unpack[T](w.bits.Load()) }
func (w *bitsWord[T]) store(v T) { w.bits.Store(pack(v)) }
func (w *bitsWord[T]) cas(old, new T) bool {
	return w.bits.CompareAndSwap(pack(old), pack(new))
}

// ptrWord is the boxed engine: the current value lives behind an atomic
// pointer and published boxes are immutable.
type ptrWord[T comparable] struct {
	p atomic.Pointer[T]
	// prev caches the most recently displaced box. Cells that alternate
	// between a small set of values (the announcement response cycling
	// between ⊥ and a response, toggle strings, …) hit it and avoid
	// allocating a fresh box on every store.
	prev atomic.Pointer[T]
}

func (w *ptrWord[T]) load() T { return *w.p.Load() }

// box returns a pointer holding v, reusing the displaced-value cache when
// it already holds v (pointers are immutable once published, so reuse is
// safe — and value-CAS semantics are pointer-identity-agnostic).
func (w *ptrWord[T]) box(v T) *T {
	if pv := w.prev.Load(); pv != nil && *pv == v {
		return pv
	}
	next := new(T)
	*next = v
	return next
}

func (w *ptrWord[T]) store(v T) {
	for {
		cur := w.p.Load()
		if *cur == v {
			// Value-identical store: the register's state is unchanged, so
			// installing a new box would be observationally equivalent.
			return
		}
		if w.p.CompareAndSwap(cur, w.box(v)) {
			w.prev.Store(cur)
			return
		}
	}
}

func (w *ptrWord[T]) cas(old, new T) bool {
	for {
		cur := w.p.Load()
		if *cur != old {
			return false
		}
		if old == new {
			return true // identity swap: state unchanged
		}
		if w.p.CompareAndSwap(cur, w.box(new)) {
			w.prev.Store(cur)
			return true
		}
		// The pointer moved under us; the value may still equal old
		// (another writer installed a different box), so retry.
	}
}
