package nvm

// Backing is the pluggable persistence substrate behind a Space. The
// default heap-backed Space (no backing) persists only within the process:
// cell values survive simulated epoch crashes but evaporate when the
// process exits. A file-backed persistent space carries a Backing
// (internal/durable supplies one per shard) that journals every logical
// persist handed to it into an append-only record log whose Sync is a
// physical fsync — so the paper's persist ordering maps onto write+sync
// ordering, and a whole-process crash becomes one more survivable failure.
//
// The granularity is the durable root, not the individual simulated cell:
// an algorithm's internal cells (toggle bits, announcement slots) exist to
// make in-flight operations detectable, and a whole-process crash leaves no
// in-flight operations to recover inside the space — the session layer
// (internal/server) recovers those from its own durable outcome windows.
// What must survive is the linearized state of each root, which the owning
// layer journals via Space.Journal at the moment an operation's verdict
// becomes linearized.
type Backing interface {
	// Persist journals the persisted value of the durable root named key.
	// Appends may be buffered; they are durable only after Sync.
	Persist(key string, val int64)
	// Sync is the durability barrier: it returns once every previously
	// journaled persist is physically durable.
	Sync() error
}

// SetBacking attaches the persistence substrate. Like SetHistory, call it
// before the first operation executes; the field is read without
// synchronization on the journal path.
func (s *Space) SetBacking(b Backing) { s.backing = b }

// Backing returns the attached substrate, or nil for a heap-backed space.
func (s *Space) Backing() Backing { return s.backing }

// Journal forwards one logical persist to the backing store. On a
// heap-backed space it is a no-op, keeping the non-durable hot path free
// of any cost beyond a nil check.
func (s *Space) Journal(key string, val int64) {
	if s.backing != nil {
		s.backing.Persist(key, val)
	}
}

// SyncBacking is the space's durability barrier, a no-op without backing.
func (s *Space) SyncBacking() error {
	if s.backing != nil {
		return s.backing.Sync()
	}
	return nil
}
