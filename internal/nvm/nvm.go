// Package nvm simulates byte-addressable non-volatile main memory for the
// crash-recovery model of Ben-Baruch, Hendler and Rusanovsky (PODC 2020).
//
// The package provides two memory models:
//
//   - The private-cache model: Cell[T] applies every primitive directly to
//     simulated NVM. A system-wide crash preserves every Cell.
//   - The shared-cache model: CachedCell[T] applies primitives to a volatile
//     cache. Values reach NVM only via Flush (or a CAS, which persists by
//     definition in our simulation). A crash reverts unflushed stores.
//
// Every primitive operation takes a *Ctx, the per-operation execution
// context. The Ctx carries the epoch at which the operation started; when
// the system crashes the epoch advances and the next primitive performed by
// any in-flight operation panics with Crashed. The Go stack unwinds,
// discarding all volatile local variables exactly as a crash discards
// volatile state, while Cells (the simulated NVM) survive.
//
// Crash points therefore sit between primitive operations, which is
// precisely the granularity of the abstract model in the paper: primitives
// themselves are atomic.
package nvm

// OpKind identifies the primitive a Ctx is about to perform. Crash plans
// use it to target specific primitives deterministically.
type OpKind int

// Primitive operation kinds.
const (
	KindLoad OpKind = iota + 1
	KindStore
	KindCAS
	KindFlush
)

// String returns a short human-readable name for the primitive kind.
func (k OpKind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindCAS:
		return "cas"
	case KindFlush:
		return "flush"
	default:
		return "unknown"
	}
}
