package nvm

import "sync"

// Register is the read/write primitive interface shared by both memory
// models. Algorithms are written against Register (or CASRegister) so the
// same code runs under the private-cache model (Cell), the raw shared-cache
// model (CachedCell, correct only with explicit flushes) and the
// flush-after-write transformation of Izraelevitz et al. (AutoPersist).
type Register[T comparable] interface {
	// Load atomically reads the register.
	Load(ctx *Ctx) T
	// Store atomically writes the register.
	Store(ctx *Ctx, v T)
	// Flush persists the register's current value to NVM. It is a no-op in
	// the private-cache model, where every primitive persists immediately.
	Flush(ctx *Ctx)
}

// CASRegister is a Register that additionally supports the atomic
// compare-and-swap primitive.
type CASRegister[T comparable] interface {
	Register[T]
	// CompareAndSwap atomically replaces the register's value with new if
	// it currently equals old, reporting whether the swap happened.
	CompareAndSwap(ctx *Ctx, old, new T) bool
	// Peek returns the register's current logical value without a Ctx. It
	// is intended for test assertions and checkers; algorithm code must use
	// Load.
	Peek() T
}

// NewWord allocates a CAS-capable memory word in sp according to sp's
// memory model:
//
//   - ModelPrivateCache: a Cell — every primitive persists immediately.
//   - ModelSharedCacheAuto: a CachedCell wrapped in the flush-after-write
//     transformation of Izraelevitz et al. (Section 6 of the paper).
//   - ModelSharedCacheRaw: a bare CachedCell — primitives are volatile
//     until flushed, which breaks algorithms written for the private-cache
//     model (used by tests that demonstrate why the transformation is
//     needed).
//
// All algorithm packages allocate their shared and private non-volatile
// variables through NewWord, so the same algorithm code runs under every
// model.
func NewWord[T comparable](sp *Space, init T) CASRegister[T] {
	switch sp.Model() {
	case ModelSharedCacheAuto:
		return NewAutoPersist[T](NewCachedCell(sp, init))
	case ModelSharedCacheRaw:
		return NewCachedCell(sp, init)
	default:
		return NewCell(sp, init)
	}
}

// Cell is an atomic non-volatile memory word in the private-cache model:
// every primitive is applied directly to NVM, so a system-wide crash
// preserves the cell's value.
//
// Crash-free attempts (no crash plan armed on the Ctx) take a lock-free
// fast path: the value lives in an atomic word, the epoch is validated in
// Ctx.pre, and the primitive is a single atomic instruction. Plan-armed
// attempts fall back to the original mutex-serialized path so
// schedule-driven tests observe unchanged interleavings. Both paths operate
// on the same atomic word, so they compose safely when mixed.
//
// Use NewCell to allocate one inside a Space.
type Cell[T comparable] struct {
	mu sync.Mutex
	w  word[T]
	id int
}

// NewCell allocates a cell holding init inside sp. The Space records the
// allocation for space accounting; Cells need no crash handling.
func NewCell[T comparable](sp *Space, init T) *Cell[T] {
	return &Cell[T]{w: newWordStorage(init), id: sp.noteCell()}
}

var _ CASRegister[int] = (*Cell[int])(nil)

// Load atomically reads the cell.
func (c *Cell[T]) Load(ctx *Ctx) T {
	ctx.pre(KindLoad, c.id)
	if ctx.fast() {
		v := c.w.load()
		ctx.count(KindLoad)
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindLoad)
	return c.w.load()
}

// Store atomically writes the cell. In the private-cache model the value is
// persisted immediately.
func (c *Cell[T]) Store(ctx *Ctx, v T) {
	ctx.pre(KindStore, c.id)
	if ctx.fast() {
		c.w.store(v)
		ctx.count(KindStore)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindStore)
	c.w.store(v)
}

// CompareAndSwap atomically replaces the cell's value with new if it equals
// old, reporting whether the swap happened.
func (c *Cell[T]) CompareAndSwap(ctx *Ctx, old, new T) bool {
	ctx.pre(KindCAS, c.id)
	if ctx.fast() {
		ok := c.w.cas(old, new)
		ctx.count(KindCAS)
		return ok
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindCAS)
	return c.w.cas(old, new)
}

// Flush is a no-op: private-cache primitives persist immediately. It still
// validates the epoch so crash points remain between primitives.
func (c *Cell[T]) Flush(ctx *Ctx) {
	ctx.CheckAlive()
}

// Peek returns the cell's value without a Ctx. It is intended for test
// assertions and checkers that inspect post-crash NVM state; algorithm code
// must use Load.
func (c *Cell[T]) Peek() T {
	return c.w.load()
}

// Poke overwrites the cell's value without a Ctx. It is intended for test
// setup only.
func (c *Cell[T]) Poke(v T) {
	c.w.store(v)
}
