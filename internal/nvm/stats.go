package nvm

import "sync/atomic"

// Stats aggregates primitive-operation counts across all processes sharing
// a Space. All methods are safe for concurrent use. The zero value is ready
// to use.
type Stats struct {
	loads   atomic.Uint64
	stores  atomic.Uint64
	cas     atomic.Uint64
	flushes atomic.Uint64
}

func (s *Stats) record(kind OpKind) {
	switch kind {
	case KindLoad:
		s.loads.Add(1)
	case KindStore:
		s.stores.Add(1)
	case KindCAS:
		s.cas.Add(1)
	case KindFlush:
		s.flushes.Add(1)
	}
}

// Loads returns the number of load primitives recorded.
func (s *Stats) Loads() uint64 { return s.loads.Load() }

// Stores returns the number of store primitives recorded.
func (s *Stats) Stores() uint64 { return s.stores.Load() }

// CASes returns the number of compare-and-swap primitives recorded.
func (s *Stats) CASes() uint64 { return s.cas.Load() }

// Flushes returns the number of explicit persist primitives recorded.
func (s *Stats) Flushes() uint64 { return s.flushes.Load() }

// Total returns the total number of primitives recorded.
func (s *Stats) Total() uint64 {
	return s.Loads() + s.Stores() + s.CASes() + s.Flushes()
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.loads.Store(0)
	s.stores.Store(0)
	s.cas.Store(0)
	s.flushes.Store(0)
}
