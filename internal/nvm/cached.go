package nvm

import (
	"sync"
	"sync/atomic"
)

// CachedCell is an atomic memory word in the shared-cache model of
// Izraelevitz et al.: primitives are applied to a volatile shared cache and
// reach NVM only when explicitly flushed. A system-wide crash discards the
// cached value, reverting the cell to its last flushed value.
//
// The cached value lives in an atomic word, so crash-free Load/Store/CAS
// attempts run concurrently under a shared read-lock; only Flush, the
// crash revert and plan-armed (instrumented) attempts take the exclusive
// lock. The read-lock is what preserves the crash ordering invariant: a
// store serialized before the revert completes before the revert wipes it,
// and a store serialized after acquires the lock after the epoch advanced,
// re-validates it and dies instead of resurrecting the lost value.
//
// Algorithms written for the private-cache model are generally incorrect on
// raw CachedCells (tests exploit this to demonstrate why the flush
// transformation is needed); wrap the cell in AutoPersist to apply the
// syntactic flush-after-write transformation from Section 6 of the paper.
type CachedCell[T comparable] struct {
	mu        sync.RWMutex
	cached    word[T]
	persisted T // guarded by mu (exclusive)
	dirty     atomic.Bool
	id        int
}

// NewCachedCell allocates a shared-cache cell holding init inside sp and
// registers it for crash handling.
func NewCachedCell[T comparable](sp *Space, init T) *CachedCell[T] {
	c := &CachedCell[T]{persisted: init, cached: newWordStorage(init), id: sp.noteCell()}
	sp.register(c)
	return c
}

var _ CASRegister[int] = (*CachedCell[int])(nil)
var _ crashable = (*CachedCell[int])(nil)

// Load atomically reads the cached value.
func (c *CachedCell[T]) Load(ctx *Ctx) T {
	ctx.pre(KindLoad, c.id)
	if ctx.fast() {
		c.mu.RLock()
		if !ctx.alive() {
			c.mu.RUnlock()
			ctx.CheckAlive() // unwinds with Crashed
		}
		v := c.cached.load()
		c.mu.RUnlock()
		ctx.count(KindLoad)
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindLoad)
	return c.cached.load()
}

// Store atomically writes the cached value. The store is volatile until the
// cell is flushed.
func (c *CachedCell[T]) Store(ctx *Ctx, v T) {
	ctx.pre(KindStore, c.id)
	if ctx.fast() {
		c.mu.RLock()
		if !ctx.alive() {
			c.mu.RUnlock()
			ctx.CheckAlive()
		}
		c.cached.store(v)
		c.dirty.Store(true)
		c.mu.RUnlock()
		ctx.count(KindStore)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindStore)
	c.cached.store(v)
	c.dirty.Store(true)
}

// CompareAndSwap atomically replaces the cached value with new if it equals
// old, reporting whether the swap happened. Like Store, the effect is
// volatile until flushed.
func (c *CachedCell[T]) CompareAndSwap(ctx *Ctx, old, new T) bool {
	ctx.pre(KindCAS, c.id)
	if ctx.fast() {
		c.mu.RLock()
		if !ctx.alive() {
			c.mu.RUnlock()
			ctx.CheckAlive()
		}
		ok := c.cached.cas(old, new)
		if ok {
			c.dirty.Store(true)
		}
		c.mu.RUnlock()
		ctx.count(KindCAS)
		return ok
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindCAS)
	if !c.cached.cas(old, new) {
		return false
	}
	c.dirty.Store(true)
	return true
}

// Flush persists the cached value to NVM.
func (c *CachedCell[T]) Flush(ctx *Ctx) {
	ctx.pre(KindFlush, c.id)
	c.mu.Lock()
	defer c.mu.Unlock()
	ctx.enter(KindFlush)
	c.persisted = c.cached.load()
	c.dirty.Store(false)
}

// onCrash reverts the cell to its last persisted value. Called by the Space
// with the epoch already advanced, so in-flight primitives serialized after
// the revert observe the crash and panic instead of resurrecting the lost
// value.
func (c *CachedCell[T]) onCrash() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cached.store(c.persisted)
	c.dirty.Store(false)
}

// Peek returns the cell's cached (current logical) value without a Ctx,
// for test assertions.
func (c *CachedCell[T]) Peek() T {
	return c.cached.load()
}

// PeekPersisted returns the cell's persisted value without a Ctx, for test
// assertions about post-crash NVM contents.
func (c *CachedCell[T]) PeekPersisted() T {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.persisted
}

// AutoPersist wraps a CASRegister with the syntactic flush-after-write
// transformation of Izraelevitz et al. (Section 6 of the paper): every Store
// and CompareAndSwap is immediately followed by a Flush, so an algorithm
// proven correct in the private-cache model remains correct in the
// shared-cache model without source changes.
type AutoPersist[T comparable] struct {
	inner CASRegister[T]
}

// NewAutoPersist wraps inner with the flush-after-write transformation.
func NewAutoPersist[T comparable](inner CASRegister[T]) *AutoPersist[T] {
	return &AutoPersist[T]{inner: inner}
}

var _ CASRegister[int] = (*AutoPersist[int])(nil)

// Load atomically reads the underlying register.
func (a *AutoPersist[T]) Load(ctx *Ctx) T { return a.inner.Load(ctx) }

// Peek returns the underlying register's current logical value.
func (a *AutoPersist[T]) Peek() T { return a.inner.Peek() }

// Store writes the underlying register and immediately persists it.
func (a *AutoPersist[T]) Store(ctx *Ctx, v T) {
	a.inner.Store(ctx, v)
	a.inner.Flush(ctx)
}

// CompareAndSwap performs the swap on the underlying register and
// immediately persists it.
func (a *AutoPersist[T]) CompareAndSwap(ctx *Ctx, old, new T) bool {
	ok := a.inner.CompareAndSwap(ctx, old, new)
	a.inner.Flush(ctx)
	return ok
}

// Flush persists the underlying register.
func (a *AutoPersist[T]) Flush(ctx *Ctx) { a.inner.Flush(ctx) }
