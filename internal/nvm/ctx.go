package nvm

// Ctx is the execution context of a single operation (or recovery-function)
// attempt by one process. It is not safe for concurrent use: each attempt
// gets a fresh Ctx bound to the epoch at which the attempt started.
//
// Every primitive on a Cell or CachedCell calls into the Ctx before touching
// memory. The Ctx:
//
//   - checks the operation's epoch against the system epoch and panics with
//     Crashed if a crash happened since the attempt began;
//   - consults the crash plan (if any) so deterministic tests can inject a
//     system-wide crash immediately before a chosen primitive step;
//   - counts primitive steps and updates shared statistics.
type Ctx struct {
	pid   int
	epoch *Epoch
	start uint64
	plan  CrashPlan
	stats *Stats

	steps uint64
	cell  int
}

// NewCtx returns a context for one attempt by process pid, bound to the
// current epoch. Both plan and stats may be nil.
func NewCtx(pid int, epoch *Epoch, plan CrashPlan, stats *Stats) *Ctx {
	return &Ctx{pid: pid, epoch: epoch, start: epoch.Current(), plan: plan, stats: stats}
}

// PID returns the process identifier the context belongs to.
func (c *Ctx) PID() int { return c.pid }

// StartEpoch returns the epoch at which this attempt began.
func (c *Ctx) StartEpoch() uint64 { return c.start }

// Steps returns the number of primitive operations performed so far under
// this context.
func (c *Ctx) Steps() uint64 { return c.steps }

// CellID identifies the memory cell the pending primitive targets: the
// space-local allocation index of the Cell or CachedCell, set immediately
// before the crash plan is consulted. Schedule explorers use it to decide
// whether two processes' pending primitives commute (disjoint cells, or two
// loads of the same cell). It is 0 outside a CrashPlan.CrashBefore call.
func (c *Ctx) CellID() int { return c.cell }

// pre runs the bookkeeping that precedes every primitive while NO cell lock
// is held: it advances the step counter, consults the crash plan (whose
// hooks may run arbitrary code, including other processes' operations — the
// deterministic-interleaving mechanism used by schedule-driven tests) and
// fails fast on a stale epoch.
func (c *Ctx) pre(kind OpKind, cell int) {
	c.steps++
	c.cell = cell
	if c.plan != nil && c.plan.CrashBefore(c, kind) {
		// A planned system-wide crash: advance the epoch so every other
		// in-flight operation dies at its next primitive, then die here.
		c.epoch.Advance()
	}
	c.cell = 0
	c.CheckAlive()
}

// enter validates the epoch while the cell lock is held and records the
// primitive. The under-lock check guarantees the crash ordering invariant:
// a store serialized before a crash-revert completes before the revert
// wipes it, and a store serialized after the revert observes the advanced
// epoch and panics instead of resurrecting lost state.
func (c *Ctx) enter(kind OpKind) {
	if cur := c.epoch.Current(); cur != c.start {
		panic(Crashed{PID: c.pid, StartEpoch: c.start, ObservedEpoch: cur})
	}
	if c.stats != nil {
		c.stats.record(kind)
	}
}

// CheckAlive panics with Crashed if a system crash happened since the
// attempt began. Algorithms with local-only loops (e.g. the max-register
// double collect) call it to bound the time until an in-flight operation
// observes a crash even when it performs no shared-memory primitive.
func (c *Ctx) CheckAlive() {
	if cur := c.epoch.Current(); cur != c.start {
		panic(Crashed{PID: c.pid, StartEpoch: c.start, ObservedEpoch: cur})
	}
}

// fast reports whether the context may take the lock-free fast path: no
// crash plan is armed, so no deterministic injection hooks need to observe
// this attempt's primitives. Instrumented (plan-armed) attempts keep the
// original mutex path so schedule-driven tests see unchanged behavior.
func (c *Ctx) fast() bool { return c.plan == nil }

// alive is CheckAlive without the panic, for fast paths that must release
// a lock before unwinding.
func (c *Ctx) alive() bool { return c.epoch.Current() == c.start }

// count records the primitive in the shared statistics. Fast paths call it
// after the atomic operation; the mutex path records inside enter instead.
func (c *Ctx) count(kind OpKind) {
	if c.stats != nil {
		c.stats.record(kind)
	}
}

// CrashPlan decides whether a system-wide crash should be injected
// immediately before a primitive step. Implementations must be safe for use
// from the single goroutine driving the Ctx.
//
// CrashBefore is invoked while no cell lock is held, so implementations may
// run arbitrary code — including driving other processes' operations to
// completion — before answering. Schedule-driven tests use this (see
// StepHook) to realize the paper's adversarial interleavings.
type CrashPlan interface {
	// CrashBefore reports whether the system should crash immediately
	// before the context performs its next primitive of the given kind.
	// The context's step counter has already been advanced, so
	// ctx.Steps() == 1 for the first primitive of the attempt.
	CrashBefore(ctx *Ctx, kind OpKind) bool
}

// CrashAtStep returns a plan that injects exactly one system-wide crash
// immediately before the step-th primitive (1-based) of the attempt.
func CrashAtStep(step uint64) CrashPlan { return &crashAtStep{step: step} }

type crashAtStep struct {
	step  uint64
	fired bool
}

func (p *crashAtStep) CrashBefore(ctx *Ctx, _ OpKind) bool {
	if p.fired || ctx.Steps() != p.step {
		return false
	}
	p.fired = true
	return true
}

// NeverCrash returns a plan that never injects a crash. It is equivalent to
// a nil plan and exists for table-driven tests.
func NeverCrash() CrashPlan { return neverCrash{} }

type neverCrash struct{}

func (neverCrash) CrashBefore(*Ctx, OpKind) bool { return false }

// StepHook is a CrashPlan that injects no crash itself but runs Fn
// immediately before the Step-th primitive (1-based) of the attempt, once.
// Fn runs outside all cell locks, so it may drive other processes'
// operations to completion — the mechanism schedule-driven tests use to
// reproduce the paper's adversarial interleavings (e.g. the ABA schedule of
// Algorithm 1's correctness proof). Fn may also crash the system itself.
type StepHook struct {
	Step  uint64
	Fn    func()
	fired bool
}

var _ CrashPlan = (*StepHook)(nil)

// CrashBefore implements CrashPlan.
func (h *StepHook) CrashBefore(ctx *Ctx, _ OpKind) bool {
	if !h.fired && ctx.Steps() == h.Step {
		h.fired = true
		h.Fn()
	}
	return false
}

// Plans combines several CrashPlans: every plan is consulted on every step
// (so hooks always fire), and a crash is injected if any plan requests one.
type Plans []CrashPlan

var _ CrashPlan = Plans(nil)

// CrashBefore implements CrashPlan.
func (ps Plans) CrashBefore(ctx *Ctx, kind OpKind) bool {
	crash := false
	for _, p := range ps {
		if p != nil && p.CrashBefore(ctx, kind) {
			crash = true
		}
	}
	return crash
}
