package nvm

import "testing"

// memBacking records journaled persists, standing in for the file-backed
// implementation in internal/durable.
type memBacking struct {
	keys  []string
	vals  []int64
	syncs int
}

func (b *memBacking) Persist(key string, val int64) {
	b.keys = append(b.keys, key)
	b.vals = append(b.vals, val)
}

func (b *memBacking) Sync() error {
	b.syncs++
	return nil
}

func TestSpaceJournalForwardsToBacking(t *testing.T) {
	sp := NewSpace()
	// Heap-backed: journaling is a no-op and syncing succeeds vacuously.
	sp.Journal("k", 1)
	if err := sp.SyncBacking(); err != nil {
		t.Fatalf("SyncBacking without backing: %v", err)
	}
	if sp.Backing() != nil {
		t.Fatal("fresh space has a backing")
	}

	b := &memBacking{}
	sp.SetBacking(b)
	sp.Journal("k", 41)
	sp.Journal("j", 42)
	if err := sp.SyncBacking(); err != nil {
		t.Fatal(err)
	}
	if len(b.keys) != 2 || b.keys[0] != "k" || b.vals[0] != 41 || b.keys[1] != "j" || b.vals[1] != 42 {
		t.Fatalf("journaled %v %v", b.keys, b.vals)
	}
	if b.syncs != 1 {
		t.Fatalf("syncs = %d, want 1", b.syncs)
	}
}

// TestBackingSurvivesEpochCrash pins that a simulated crash does not touch
// the backing registration: epoch crashes discard volatile cache state,
// not the persistence substrate.
func TestBackingSurvivesEpochCrash(t *testing.T) {
	sp := NewSpace()
	b := &memBacking{}
	sp.SetBacking(b)
	sp.Crash()
	sp.Journal("k", 7)
	if len(b.keys) != 1 {
		t.Fatalf("journal after crash recorded %d persists, want 1", len(b.keys))
	}
}
