package nvm

// Maybe is an optional value with comparable semantics, used for fields the
// paper initializes to the distinguished value ⊥ (e.g. Ann_p.resp). The zero
// value is ⊥.
type Maybe[T comparable] struct {
	// Set reports whether a value is present.
	Set bool
	// Val is the value when Set is true, and the zero value otherwise.
	Val T
}

// Some returns a present Maybe holding v.
func Some[T comparable](v T) Maybe[T] { return Maybe[T]{Set: true, Val: v} }

// None returns the absent value ⊥.
func None[T comparable]() Maybe[T] { return Maybe[T]{} }
