package nvm

import "testing"

func TestCachedCellCrashLosesUnflushedStore(t *testing.T) {
	sp := NewSpace()
	c := NewCachedCell(sp, 1)
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 2)
	if got := c.Load(ctx); got != 2 {
		t.Fatalf("Load = %d, want 2 (stores visible through the cache)", got)
	}
	sp.Crash()
	if got := c.PeekPersisted(); got != 1 {
		t.Fatalf("persisted = %d, want 1 (unflushed store must be lost)", got)
	}
	if got := c.Peek(); got != 1 {
		t.Fatalf("cached = %d, want 1 after revert", got)
	}
}

func TestCachedCellFlushPersists(t *testing.T) {
	sp := NewSpace()
	c := NewCachedCell(sp, 1)
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 2)
	c.Flush(ctx)
	sp.Crash()
	if got := c.PeekPersisted(); got != 2 {
		t.Fatalf("persisted = %d, want 2 (flushed store must survive)", got)
	}
}

func TestCachedCellCASIsVolatileUntilFlushed(t *testing.T) {
	sp := NewSpace()
	c := NewCachedCell(sp, 1)
	ctx := sp.Ctx(0, nil)
	if !c.CompareAndSwap(ctx, 1, 9) {
		t.Fatal("CAS(1,9) failed")
	}
	sp.Crash()
	if got := c.PeekPersisted(); got != 1 {
		t.Fatalf("persisted = %d, want 1 (unflushed CAS lost on crash)", got)
	}
}

func TestCachedCellFailedCAS(t *testing.T) {
	sp := NewSpace()
	c := NewCachedCell(sp, 1)
	ctx := sp.Ctx(0, nil)
	if c.CompareAndSwap(ctx, 5, 9) {
		t.Fatal("CAS(5,9) on value 1 succeeded")
	}
	if got := c.Load(ctx); got != 1 {
		t.Fatalf("Load = %d, want 1", got)
	}
}

func TestAutoPersistSurvivesCrash(t *testing.T) {
	sp := NewSpace()
	raw := NewCachedCell(sp, 0)
	c := NewAutoPersist[int](raw)
	ctx := sp.Ctx(0, nil)

	c.Store(ctx, 3)
	sp.Crash()
	if got := raw.PeekPersisted(); got != 3 {
		t.Fatalf("persisted after AutoPersist.Store = %d, want 3", got)
	}

	ctx = sp.Ctx(0, nil)
	if !c.CompareAndSwap(ctx, 3, 4) {
		t.Fatal("CAS(3,4) failed")
	}
	sp.Crash()
	if got := raw.PeekPersisted(); got != 4 {
		t.Fatalf("persisted after AutoPersist.CAS = %d, want 4", got)
	}
}

func TestAutoPersistFlushCount(t *testing.T) {
	sp := NewSpace()
	c := NewAutoPersist[int](NewCachedCell(sp, 0))
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 1)
	c.CompareAndSwap(ctx, 1, 2)
	c.Load(ctx)
	if got := sp.Stats().Flushes(); got != 2 {
		t.Fatalf("flushes = %d, want 2 (one per store, one per CAS, none for load)", got)
	}
}

func TestSpaceCellCount(t *testing.T) {
	sp := NewSpace()
	NewCell(sp, 0)
	NewCell(sp, "x")
	NewCachedCell(sp, false)
	if got := sp.CellCount(); got != 3 {
		t.Fatalf("CellCount = %d, want 3", got)
	}
}

func TestCrashedError(t *testing.T) {
	var err error = Crashed{PID: 1}
	if err.Error() == "" {
		t.Fatal("Crashed.Error() is empty")
	}
}

func TestEpochAdvance(t *testing.T) {
	var e Epoch
	if e.Current() != 0 {
		t.Fatalf("initial epoch = %d, want 0", e.Current())
	}
	if got := e.Advance(); got != 1 {
		t.Fatalf("Advance = %d, want 1", got)
	}
	if got := e.Advance(); got != 2 {
		t.Fatalf("second Advance = %d, want 2", got)
	}
}
