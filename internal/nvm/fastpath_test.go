package nvm

import (
	"sync"
	"testing"
)

// The fast-path sweep: atomic-word cells must honor every CrashPlan step
// exactly as the instrumented mutex path does. For a fixed program of
// primitives we inject a crash before every step k and assert that (a) the
// crash fires as a Crashed panic at that primitive, (b) exactly the first
// k-1 primitives landed, and (c) the epoch advanced once.

// cellProgram is a deterministic sequence of primitives over three cells of
// different word engines: int (packed), string and a struct (boxed). It
// returns the number of primitives performed so the sweep knows its length.
func cellProgram(ctx *Ctx, ci *Cell[int], cs *Cell[string], ct *Cell[[2]int]) int {
	ci.Store(ctx, 1)                                   // step 1
	cs.Store(ctx, "a")                                 // step 2
	ct.Store(ctx, [2]int{1, 1})                        // step 3
	ci.CompareAndSwap(ctx, 1, 2)                       // step 4
	cs.CompareAndSwap(ctx, "a", "b")                   // step 5
	_ = ci.Load(ctx)                                   // step 6
	ct.CompareAndSwap(ctx, [2]int{1, 1}, [2]int{2, 2}) // step 7
	cs.Store(ctx, "c")                                 // step 8
	return 8
}

// cellStateAfter returns the expected cell contents after the first k
// primitives of cellProgram.
func cellStateAfter(k int) (int, string, [2]int) {
	i, s, t := 0, "", [2]int{}
	if k >= 1 {
		i = 1
	}
	if k >= 2 {
		s = "a"
	}
	if k >= 3 {
		t = [2]int{1, 1}
	}
	if k >= 4 {
		i = 2
	}
	if k >= 5 {
		s = "b"
	}
	if k >= 7 {
		t = [2]int{2, 2}
	}
	if k >= 8 {
		s = "c"
	}
	return i, s, t
}

func TestFastPathCellsHonorEveryCrashStep(t *testing.T) {
	// Total length first, from a crash-free run.
	total := func() int {
		sp := NewSpace()
		return cellProgram(sp.Ctx(0, nil), NewCell(sp, 0), NewCell(sp, ""), NewCell(sp, [2]int{}))
	}()

	for step := 1; step <= total; step++ {
		sp := NewSpace()
		ci, cs, ct := NewCell(sp, 0), NewCell(sp, ""), NewCell(sp, [2]int{})
		ctx := sp.Ctx(0, CrashAtStep(uint64(step)))
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Crashed); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			cellProgram(ctx, ci, cs, ct)
			return false
		}()
		if !crashed {
			t.Fatalf("step %d: plan did not fire", step)
		}
		if got := sp.Epoch().Current(); got != 1 {
			t.Fatalf("step %d: epoch = %d, want 1", step, got)
		}
		wi, ws, wt := cellStateAfter(step - 1)
		if ci.Peek() != wi || cs.Peek() != ws || ct.Peek() != wt {
			t.Fatalf("step %d: state = (%d, %q, %v), want (%d, %q, %v)",
				step, ci.Peek(), cs.Peek(), ct.Peek(), wi, ws, wt)
		}
	}
}

// TestFastPathCachedCellVolatileUntilFlush sweeps every crash step of a
// store→flush→store program on CachedCells and asserts the shared-cache
// semantics survive the atomic fast path: unflushed effects are lost,
// flushed effects persist, and the cached value reverts on crash. The
// crash is a full system crash (Space.Crash, which reverts caches)
// injected deterministically before step k via a StepHook — exactly the
// injection point a CrashAtStep plan uses.
func TestFastPathCachedCellVolatileUntilFlush(t *testing.T) {
	program := func(ctx *Ctx, c *CachedCell[int]) int {
		c.Store(ctx, 1)             // step 1 (volatile)
		c.Flush(ctx)                // step 2 (persists 1)
		c.Store(ctx, 2)             // step 3 (volatile)
		c.CompareAndSwap(ctx, 2, 3) // step 4 (volatile)
		c.Flush(ctx)                // step 5 (persists 3)
		c.Store(ctx, 4)             // step 6 (volatile)
		return 6
	}
	// persistedAfter[k] is the expected persisted value after the first k
	// steps complete and the system then crashes.
	persistedAfter := []int{0, 0, 1, 1, 1, 3, 3}
	cachedIsPersisted := true // after a crash the cache reverts

	total := func() int {
		sp := NewSpace()
		return program(sp.Ctx(0, nil), NewCachedCell(sp, 0))
	}()

	for step := 1; step <= total; step++ {
		sp := NewSpace()
		c := NewCachedCell(sp, 0)
		ctx := sp.Ctx(0, &StepHook{Step: uint64(step), Fn: func() { sp.Crash() }})
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(Crashed); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			program(ctx, c)
			return false
		}()
		if !crashed {
			t.Fatalf("step %d: plan did not fire", step)
		}
		want := persistedAfter[step-1]
		if got := c.PeekPersisted(); got != want {
			t.Fatalf("step %d: persisted = %d, want %d", step, got, want)
		}
		if cachedIsPersisted && c.Peek() != want {
			t.Fatalf("step %d: cached = %d, want reverted %d", step, c.Peek(), want)
		}
	}
}

// TestFastPathConcurrentMixedPlans exercises plan-armed (mutex path) and
// plan-free (atomic path) operations on the same cells concurrently: the
// two paths share the same atomic word, so no update may be lost.
func TestFastPathConcurrentMixedPlans(t *testing.T) {
	const (
		procs = 4
		incs  = 200
	)
	sp := NewSpace()
	c := NewCell(sp, 0)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				// Odd processes run "instrumented" with a never-firing plan,
				// even ones take the lock-free path.
				var plan CrashPlan
				if pid%2 == 1 {
					plan = NeverCrash()
				}
				ctx := sp.Ctx(pid, plan)
				for {
					v := c.Load(ctx)
					if c.CompareAndSwap(ctx, v, v+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := c.Peek(); got != procs*incs {
		t.Fatalf("counter = %d, want %d", got, procs*incs)
	}
}

// TestWordEngineSelection pins which types use the packed engine: integer
// and bool kinds pack; strings, floats and structs box.
func TestWordEngineSelection(t *testing.T) {
	if !packable[int]() || !packable[bool]() || !packable[uint8]() || !packable[int64]() {
		t.Fatal("integer/bool kinds must pack")
	}
	if packable[string]() || packable[float64]() || packable[[2]int]() || packable[struct{ A int }]() {
		t.Fatal("strings, floats and composites must not pack")
	}
}

// TestPackRoundTrip pins pack/unpack over sub-word types.
func TestPackRoundTrip(t *testing.T) {
	for _, v := range []int8{-128, -1, 0, 1, 127} {
		if unpack[int8](pack(v)) != v {
			t.Fatalf("int8 %d did not round-trip", v)
		}
	}
	for _, v := range []bool{true, false} {
		if unpack[bool](pack(v)) != v {
			t.Fatalf("bool %v did not round-trip", v)
		}
	}
	type small uint16
	for _, v := range []small{0, 1, 65535} {
		if unpack[small](pack(v)) != v {
			t.Fatalf("named uint16 %d did not round-trip", v)
		}
	}
	if pack(int64(-1)) != -1 {
		t.Fatalf("pack(int64 -1) = %d", pack(int64(-1)))
	}
}

// TestPtrWordValueCache pins that alternating stores reuse boxes instead
// of allocating (the announcement-structure pattern).
func TestPtrWordValueCache(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, "idle")
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, "read")
	c.Store(ctx, "idle")
	allocs := testing.AllocsPerRun(100, func() {
		c.Store(ctx, "read")
		c.Store(ctx, "idle")
	})
	if allocs != 0 {
		t.Fatalf("alternating stores allocate %v/iteration, want 0", allocs)
	}
}

// TestFastPathStatsStillCount pins that the lock-free path records
// primitive statistics exactly like the mutex path.
func TestFastPathStatsStillCount(t *testing.T) {
	sp := NewSpace()
	c := NewCell(sp, 0)
	ctx := sp.Ctx(0, nil)
	c.Store(ctx, 1)
	c.Load(ctx)
	c.CompareAndSwap(ctx, 1, 2)
	if st := sp.Stats(); st.Stores() != 1 || st.Loads() != 1 || st.CASes() != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", st.Stores(), st.Loads(), st.CASes())
	}
}

// TestCtxPoolReuse pins that pooled contexts reset correctly.
func TestCtxPoolReuse(t *testing.T) {
	sp := NewSpace()
	for i := 0; i < 100; i++ {
		ctx := sp.AcquireCtx(i%3, nil)
		if ctx.Steps() != 0 {
			t.Fatalf("recycled ctx has %d steps", ctx.Steps())
		}
		if ctx.PID() != i%3 {
			t.Fatalf("recycled ctx pid = %d, want %d", ctx.PID(), i%3)
		}
		NewCell(sp, 0).Store(ctx, i)
		sp.ReleaseCtx(ctx)
	}
	// A plan-armed context is never pooled; acquiring after releasing one
	// must still produce a clean context.
	armed := sp.AcquireCtx(7, CrashAtStep(99))
	sp.ReleaseCtx(armed)
	clean := sp.AcquireCtx(1, nil)
	defer sp.ReleaseCtx(clean)
	if clean.Steps() != 0 || clean.PID() != 1 {
		t.Fatalf("ctx after armed release: pid=%d steps=%d", clean.PID(), clean.Steps())
	}
}
