package nvm

import "sync/atomic"

// Epoch is the system-wide failure epoch. It starts at zero and advances by
// one on every system-wide crash. Operations capture the epoch at invocation
// time; a primitive performed under a stale epoch panics with Crashed.
//
// The zero value is ready to use.
type Epoch struct {
	n    atomic.Uint64
	hook atomic.Pointer[func()]
}

// Current returns the current epoch number.
func (e *Epoch) Current() uint64 { return e.n.Load() }

// Advance moves to the next epoch, simulating a system-wide crash, and
// invokes the advance hook (if any). It returns the new epoch number.
func (e *Epoch) Advance() uint64 {
	v := e.n.Add(1)
	if f := e.hook.Load(); f != nil {
		(*f)()
	}
	return v
}

// SetAdvanceHook installs f to run on every Advance, whether triggered by
// an explicit system crash or by a crash plan inside an operation. The
// runtime uses it to record crash events in the history log.
func (e *Epoch) SetAdvanceHook(f func()) { e.hook.Store(&f) }

// Crashed is the panic value raised by a primitive operation performed by an
// operation whose epoch predates the current one. It models the death of the
// executing process: the Go stack unwinds, discarding volatile locals, and
// the runtime catches the panic and schedules the recovery function.
type Crashed struct {
	// PID is the process whose operation observed the crash.
	PID int
	// StartEpoch is the epoch at which the crashed operation started.
	StartEpoch uint64
	// ObservedEpoch is the epoch observed when the primitive was attempted.
	ObservedEpoch uint64
}

// Error implements error so Crashed can also travel as a value where panics
// are inconvenient (e.g. in table-driven tests).
func (c Crashed) Error() string { return "nvm: operation interrupted by system crash" }
