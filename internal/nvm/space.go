package nvm

import "sync"

// crashable is implemented by memory components with volatile state that a
// system-wide crash discards.
type crashable interface {
	onCrash()
}

// Model selects how NewWord materializes memory words (Section 6 of the
// paper).
type Model int

// Memory models.
const (
	// ModelPrivateCache is the abstract model the paper's algorithms are
	// written in: primitives apply directly to NVM.
	ModelPrivateCache Model = iota + 1
	// ModelSharedCacheAuto is the realistic shared-cache model with the
	// flush-after-write transformation applied, preserving correctness.
	ModelSharedCacheAuto
	// ModelSharedCacheRaw is the shared-cache model with no persistency
	// instructions; crash-free runs behave identically, but crashes lose
	// unflushed effects — including effects of completed operations.
	ModelSharedCacheRaw
)

// String returns a short name for the model.
func (m Model) String() string {
	switch m {
	case ModelPrivateCache:
		return "private-cache"
	case ModelSharedCacheAuto:
		return "shared-cache+flush"
	case ModelSharedCacheRaw:
		return "shared-cache-raw"
	default:
		return "unknown"
	}
}

// Space is one simulated memory system: it owns the failure epoch, the
// primitive-operation statistics and the registry of volatile components
// that must be reset on a crash. All higher-level objects (registers, CAS
// objects, announcement structures, ...) allocate their cells inside a
// Space.
//
// The zero value is ready to use.
type Space struct {
	epoch   Epoch
	stats   Stats
	model   Model
	backing Backing

	mu         sync.Mutex
	crashables []crashable
	cells      int
}

// NewSpace returns an empty memory system under the private-cache model.
func NewSpace() *Space { return &Space{model: ModelPrivateCache} }

// NewSpaceModel returns an empty memory system under the given model.
func NewSpaceModel(m Model) *Space { return &Space{model: m} }

// Model returns the space's memory model.
func (s *Space) Model() Model {
	if s.model == 0 {
		return ModelPrivateCache
	}
	return s.model
}

// Epoch returns the space's failure epoch.
func (s *Space) Epoch() *Epoch { return &s.epoch }

// Stats returns the space's primitive-operation statistics.
func (s *Space) Stats() *Stats { return &s.stats }

// Ctx returns a fresh execution context for one operation attempt by
// process pid, bound to the current epoch. plan may be nil.
func (s *Space) Ctx(pid int, plan CrashPlan) *Ctx {
	return NewCtx(pid, &s.epoch, plan, &s.stats)
}

// ctxPool recycles the per-attempt contexts of crash-free operations, so
// the operation hot path allocates nothing. Plan-armed contexts are never
// pooled: a CrashPlan's hooks may retain the context (schedule-driven
// tests do arbitrary things), and injection runs are not hot paths.
var ctxPool = sync.Pool{New: func() any { return new(Ctx) }}

// AcquireCtx is Ctx drawing from a pool; pair it with ReleaseCtx once the
// attempt has completed and the context can no longer be referenced.
func (s *Space) AcquireCtx(pid int, plan CrashPlan) *Ctx {
	c := ctxPool.Get().(*Ctx)
	c.pid, c.epoch, c.start, c.plan, c.stats, c.steps, c.cell = pid, &s.epoch, s.epoch.Current(), plan, &s.stats, 0, 0
	return c
}

// ReleaseCtx returns a plan-free context to the pool. Plan-armed contexts
// are dropped for the garbage collector instead (see AcquireCtx).
func (s *Space) ReleaseCtx(c *Ctx) {
	if c.plan == nil {
		ctxPool.Put(c)
	}
}

// Crash simulates a system-wide crash-failure: the epoch advances (so every
// in-flight operation panics with Crashed at its next primitive) and all
// registered volatile state — shared-cache contents — is discarded. Values
// already persisted to NVM survive. It returns the new epoch.
func (s *Space) Crash() uint64 {
	// Advance first: any store that serializes after a cache revert must
	// observe the new epoch and die rather than resurrect the lost value.
	e := s.epoch.Advance()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.crashables {
		c.onCrash()
	}
	return e
}

// CellCount returns the number of memory cells allocated in the space, used
// by the space-accounting experiments.
func (s *Space) CellCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cells
}

func (s *Space) register(c crashable) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashables = append(s.crashables, c)
}

// noteCell records a cell allocation and returns its space-local identity
// (1-based), which Ctx.CellID exposes to schedule explorers.
func (s *Space) noteCell() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cells++
	return s.cells
}
