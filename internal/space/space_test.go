package space

import (
	"strings"
	"testing"
)

func TestRCASLinearInN(t *testing.T) {
	// Algorithm 2's shared-beyond-value bits are exactly N.
	for _, n := range []int{1, 2, 8, 64} {
		p := RCAS(n, 32)
		if p.SharedBeyondValue != n {
			t.Fatalf("N=%d: beyond-value = %d, want %d", n, p.SharedBeyondValue, n)
		}
		if p.Unbounded {
			t.Fatal("Algorithm 2 reported unbounded")
		}
	}
}

func TestRWQuadraticInN(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		p := RW(n, 32)
		want := log2(n) + 1 + 2*n*n
		if p.SharedBeyondValue != want {
			t.Fatalf("N=%d: beyond-value = %d, want %d", n, p.SharedBeyondValue, want)
		}
	}
}

func TestBaselinesGrowWithOps(t *testing.T) {
	small := SeqCAS(8, 32, 1000)
	big := SeqCAS(8, 32, 1_000_000_000)
	if big.SharedBeyondValue <= small.SharedBeyondValue {
		t.Fatalf("SeqCAS did not grow: %d vs %d", small.SharedBeyondValue, big.SharedBeyondValue)
	}
	if !big.Unbounded {
		t.Fatal("SeqCAS not marked unbounded")
	}

	rSmall := SeqRegister(8, 32, 1000)
	rBig := SeqRegister(8, 32, 1_000_000_000)
	if rBig.SharedBits <= rSmall.SharedBits {
		t.Fatal("SeqRegister did not grow")
	}
}

func TestBoundedAlgorithmsDoNotGrowWithOps(t *testing.T) {
	// The paper's algorithms have no ops parameter at all; spot-check the
	// crossover: for enough operations the baseline overtakes Algorithm 2.
	n := 16
	alg2 := RCAS(n, 32)
	base := SeqCAS(n, 32, 1<<40)
	if base.SharedBeyondValue <= alg2.SharedBeyondValue {
		t.Fatalf("baseline (%d bits) did not overtake Algorithm 2 (%d bits)",
			base.SharedBeyondValue, alg2.SharedBeyondValue)
	}
}

func TestMaxRegNoAuxBits(t *testing.T) {
	p := MaxReg(4, 32)
	if p.AuxBitsPerProc != 0 || p.PrivateBitsPerProc != 0 {
		t.Fatalf("max register has aux/private bits: %+v", p)
	}
	if p.SharedBits != 4*32 {
		t.Fatalf("SharedBits = %d", p.SharedBits)
	}
}

func TestDetectableAlgorithmsHaveAuxBits(t *testing.T) {
	// Theorem 2: detectable implementations of doubly-perturbing objects
	// need auxiliary state; the profiles reflect it.
	for _, p := range []Profile{RW(4, 32), RCAS(4, 32), SeqRegister(4, 32, 10), SeqCAS(4, 32, 10)} {
		if p.AuxBitsPerProc == 0 {
			t.Fatalf("%s reports zero auxiliary bits", p.Impl)
		}
	}
}

func TestTotal(t *testing.T) {
	p := Profile{SharedBits: 100, PrivateBitsPerProc: 10, AuxBitsPerProc: 3}
	if got := p.Total(4); got != 100+4*13 {
		t.Fatalf("Total = %d", got)
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6}
	for x, want := range cases {
		if got := log2(x); got != want {
			t.Errorf("log2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestSeqBits(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 255: 8, 256: 9}
	for x, want := range cases {
		if got := seqBits(x); got != want {
			t.Errorf("seqBits(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestCompareTables(t *testing.T) {
	rows := CompareCAS([]int{2, 8}, []uint64{1000, 1000000}, 32)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable(rows)
	if !strings.Contains(out, "rcas") || !strings.Contains(out, "grows") {
		t.Fatalf("table missing expected columns:\n%s", out)
	}
	rwRows := CompareRW([]int{2}, []uint64{10}, 8)
	if len(rwRows) != 1 {
		t.Fatal("CompareRW rows")
	}
	if FormatTable(nil) != "" {
		t.Fatal("empty table not empty")
	}
}
