// Package space provides closed-form space accounting for every
// implementation in the repository, reproducing the paper's headline
// contrast (experiment E7):
//
//   - Algorithm 1 (rw): Θ(N²) shared bits beyond the value — bounded,
//     independent of the number of operations executed.
//   - Algorithm 2 (rcas): Θ(N) shared bits beyond the value — bounded and,
//     by Theorem 1, asymptotically optimal.
//   - The sequence-number baselines ([3], [4]): Θ(log ops) bits *growing
//     with the execution*, i.e. unbounded space.
//
// Bits are counted at the abstract-model granularity (a toggle bit is one
// bit, a process identifier ⌈log₂N⌉ bits), not at the granularity of the
// simulator's Go cells.
package space

import (
	"fmt"
	"math/bits"
	"strings"
)

// Profile is the space footprint of one implementation instance.
type Profile struct {
	// Impl names the implementation.
	Impl string
	// SharedBits counts shared-memory bits beyond nothing (value included).
	SharedBits int
	// SharedBeyondValue counts shared bits beyond those storing the
	// object's value — the quantity Theorem 1 bounds.
	SharedBeyondValue int
	// PrivateBitsPerProc counts each process's private non-volatile bits
	// (recovery data, toggle indices, sequence counters).
	PrivateBitsPerProc int
	// AuxBitsPerProc counts announcement-structure bits (Ann.CP plus the
	// response flag) — the auxiliary state of Definition 1. Zero for the
	// max register.
	AuxBitsPerProc int
	// Unbounded reports that the footprint grows with the operation count.
	Unbounded bool
}

// Total returns the system-wide bit count for n processes.
func (p Profile) Total(n int) int {
	return p.SharedBits + n*(p.PrivateBitsPerProc+p.AuxBitsPerProc)
}

// log2 returns ⌈log₂ x⌉ for x ≥ 1.
func log2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// seqBits returns the bits needed for an operation counter after ops
// operations.
func seqBits(ops uint64) int {
	if ops == 0 {
		return 1
	}
	return bits.Len64(ops)
}

// annBits is the announcement overhead counted for all detectable
// implementations that use it: 2 bits of checkpoint (values 0..2) plus a
// 1-bit response-present flag (the response value itself is the operation's
// response, already accounted to the caller).
const annBits = 3

// RW profiles Algorithm 1 for n processes and valueBits-wide values.
func RW(n, valueBits int) Profile {
	return Profile{
		Impl: "rw (Algorithm 1)",
		// R = ⟨value, writer id, toggle index⟩; A = N×N×2 bits.
		SharedBits:        valueBits + log2(n) + 1 + 2*n*n,
		SharedBeyondValue: log2(n) + 1 + 2*n*n,
		// RDp = ⟨mtoggle, value, writer id, qtoggle⟩; Tp = 1 bit.
		PrivateBitsPerProc: 1 + valueBits + log2(n) + 1 + 1,
		AuxBitsPerProc:     annBits,
	}
}

// RCAS profiles Algorithm 2 for n processes and valueBits-wide values.
func RCAS(n, valueBits int) Profile {
	return Profile{
		Impl: "rcas (Algorithm 2)",
		// C = ⟨value, N-bit vector⟩.
		SharedBits:        valueBits + n,
		SharedBeyondValue: n,
		// RDp = 1 bit.
		PrivateBitsPerProc: 1,
		AuxBitsPerProc:     annBits,
	}
}

// MaxReg profiles Algorithm 3 for n processes and valueBits-wide values.
func MaxReg(n, valueBits int) Profile {
	return Profile{
		Impl:              "maxreg (Algorithm 3)",
		SharedBits:        n * valueBits,
		SharedBeyondValue: (n - 1) * valueBits,
		// No recovery data, no announcement: zero auxiliary state.
		PrivateBitsPerProc: 0,
		AuxBitsPerProc:     0,
	}
}

// SeqRegister profiles the unbounded detectable register baseline ([3])
// after ops operations.
func SeqRegister(n, valueBits int, ops uint64) Profile {
	s := seqBits(ops)
	return Profile{
		Impl: "baseline.SeqRegister [3]",
		// R = ⟨value, writer id, seq⟩.
		SharedBits:        valueBits + log2(n) + s,
		SharedBeyondValue: log2(n) + s,
		// RDp mirrors R; plus the private seq counter.
		PrivateBitsPerProc: valueBits + log2(n) + 2*s,
		AuxBitsPerProc:     annBits,
		Unbounded:          true,
	}
}

// SeqCAS profiles the unbounded detectable CAS baseline ([4]) after ops
// operations.
func SeqCAS(n, valueBits int, ops uint64) Profile {
	s := seqBits(ops)
	return Profile{
		Impl: "baseline.SeqCAS [4]",
		// C = ⟨value, owner id, seq⟩ plus the N×N help matrix of seqs.
		SharedBits:         valueBits + log2(n) + s + n*n*s,
		SharedBeyondValue:  log2(n) + s + n*n*s,
		PrivateBitsPerProc: 2 * s,
		AuxBitsPerProc:     annBits,
		Unbounded:          true,
	}
}

// Plain profiles a non-recoverable register or CAS object.
func Plain(valueBits int) Profile {
	return Profile{
		Impl:       "plain (non-recoverable)",
		SharedBits: valueBits,
	}
}

// Row is one line of a comparison table.
type Row struct {
	N        int
	Ops      uint64
	Profiles []Profile
}

// CompareCAS builds the Algorithm 2 vs baseline comparison across process
// counts and operation counts.
func CompareCAS(ns []int, opss []uint64, valueBits int) []Row {
	var rows []Row
	for _, n := range ns {
		for _, ops := range opss {
			rows = append(rows, Row{
				N: n, Ops: ops,
				Profiles: []Profile{RCAS(n, valueBits), SeqCAS(n, valueBits, ops), Plain(valueBits)},
			})
		}
	}
	return rows
}

// CompareRW builds the Algorithm 1 vs baseline comparison.
func CompareRW(ns []int, opss []uint64, valueBits int) []Row {
	var rows []Row
	for _, n := range ns {
		for _, ops := range opss {
			rows = append(rows, Row{
				N: n, Ops: ops,
				Profiles: []Profile{RW(n, valueBits), SeqRegister(n, valueBits, ops), Plain(valueBits)},
			})
		}
	}
	return rows
}

// FormatTable renders rows as an aligned text table of shared-beyond-value
// bits, the quantity the paper's bounds speak about.
func FormatTable(rows []Row) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "%6s %10s", "N", "ops")
	for _, p := range rows[0].Profiles {
		fmt.Fprintf(&b, " %26s", p.Impl)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %10d", r.N, r.Ops)
		for _, p := range r.Profiles {
			marker := ""
			if p.Unbounded {
				marker = " (grows)"
			}
			fmt.Fprintf(&b, " %18d bits%s", p.SharedBeyondValue, marker)
			if marker == "" {
				b.WriteString("        "[:8-len(marker)])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
