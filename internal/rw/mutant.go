package rw

// Mutant selects a seeded detectability bug. The mutation smoke-check in
// internal/explore enables one, asserts the schedule explorer produces a
// counterexample, and restores MutantNone — validating that the checker
// catches real protocol violations. Production code never sets a mutant.
type Mutant int

// Seeded bugs.
const (
	// MutantNone is the unmutated algorithm.
	MutantNone Mutant = iota
	// MutantSkipToggleClear skips line 2's clearing of the last writer's
	// other-array toggle bit. That bit is the register's ABA protection:
	// without the clear, a recovery that observes R unchanged can find a
	// stale raised bit and wrongly conclude its write was linearized —
	// claiming Ack for a write that never reached R.
	MutantSkipToggleClear
)

// mutant is read on the operation path; it is written only by tests, before
// any operation runs (the write happens-before the goroutines that read it).
var mutant Mutant

// SetMutant installs m until the next call. Tests must restore MutantNone.
func SetMutant(m Mutant) { mutant = m }
