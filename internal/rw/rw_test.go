package rw

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Body step offsets (after the 3-primitive announcement):
//
//	step 4: line 1  load R
//	step 5: line 2  store A[p][q][1-qtoggle]
//	step 6: line 3  load Tp
//	step 7: line 4  store RDp
//	step 8: line 5  re-load R
//	step 9: line 6  CP := 1
//	step 10: line 7 store R
//	step 11: line 8 CP := 2
//	steps 12..11+N: toggle-bit stores
//	step 12+N: store Tp
//	step 13+N: persist result
const (
	stepLine7CP1   = 9  // crash here: CP=0 → fail
	stepLine7Store = 10 // crash here: CP=1, R unwritten → fail
	stepLine8CP2   = 11 // crash here: R written → must recover ack
)

func checkDL(t *testing.T, sys *runtime.System, initVal int) linearize.Report {
	t.Helper()
	ok, rep, err := linearize.CheckLog(spec.Register{InitVal: initVal}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
	return rep
}

func TestSequentialWriteRead(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 0)
	if out := reg.Write(0, 5); out.Status != runtime.StatusOK {
		t.Fatalf("write outcome %+v", out)
	}
	if out := reg.Read(1); out.Status != runtime.StatusOK || out.Resp != 5 {
		t.Fatalf("read outcome %+v, want 5", out)
	}
	if out := reg.Write(1, 7); out.Status != runtime.StatusOK {
		t.Fatalf("write outcome %+v", out)
	}
	if out := reg.Read(0); out.Resp != 7 {
		t.Fatalf("read = %d, want 7", out.Resp)
	}
	checkDL(t, sys, 0)
}

func TestWriteUpdatesAttribution(t *testing.T) {
	sys := runtime.NewSystem(3)
	reg := NewInt(sys, 0)
	reg.Write(2, 9)
	tr := reg.PeekTriple()
	if tr != (Triple[int]{Val: 9, Q: 2, Toggle: 0}) {
		t.Fatalf("R = %+v, want {9 2 0}", tr)
	}
	// The second write by 2 must use the other toggle array.
	reg.Write(2, 4)
	tr = reg.PeekTriple()
	if tr != (Triple[int]{Val: 4, Q: 2, Toggle: 1}) {
		t.Fatalf("R = %+v, want {4 2 1}", tr)
	}
}

func TestWriteSetsToggleBitsAndFlipsT(t *testing.T) {
	sys := runtime.NewSystem(3)
	reg := NewInt(sys, 0)
	reg.Write(1, 9)
	for i := 0; i < 3; i++ {
		if !reg.PeekToggle(i, 1, 0) {
			t.Fatalf("A[%d][1][0] = 0 after write with toggle 0", i)
		}
	}
	if got := reg.tp[1].Peek(); got != 1 {
		t.Fatalf("T_1 = %d after first write, want 1", got)
	}
}

// TestSoloCrashEveryStep exercises a solo Write with a crash injected
// before every primitive step in turn. The detectability contract: the
// recovery verdict is fail if and only if the write never reached R.
func TestSoloCrashEveryStep(t *testing.T) {
	const (
		initVal = 100
		newVal  = 5
	)
	// A 2-process solo write performs 3 announcement + 12 body primitives.
	for step := uint64(1); step <= 15; step++ {
		sys := runtime.NewSystem(2)
		reg := NewInt(sys, initVal)
		out := reg.Write(0, newVal, nvm.CrashAtStep(step))

		got := reg.PeekTriple()
		switch out.Status {
		case runtime.StatusOK:
			t.Fatalf("step %d: no crash fired", step)
		case runtime.StatusNotInvoked, runtime.StatusFailed:
			if got.Val != initVal {
				t.Fatalf("step %d: verdict %v but R changed to %+v", step, out.Status, got)
			}
		case runtime.StatusRecovered:
			if got.Val != newVal {
				t.Fatalf("step %d: verdict recovered but R = %+v", step, got)
			}
		}
		checkDL(t, sys, initVal)

		// A subsequent solo write must always work.
		if out := reg.Write(1, 42); !out.Status.Linearized() {
			t.Fatalf("step %d: follow-up write outcome %+v", step, out)
		}
		if got := reg.PeekTriple().Val; got != 42 {
			t.Fatalf("step %d: follow-up write lost, R=%d", step, got)
		}
	}
}

func TestSoloCrashBoundaries(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 100)
	// Crash right before line 7's store: CP=1, R unwritten, solo → fail.
	out := reg.Write(0, 5, nvm.CrashAtStep(stepLine7Store))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("crash before line 7: status %v, want failed", out.Status)
	}

	sys2 := runtime.NewSystem(2)
	reg2 := NewInt(sys2, 100)
	// Crash right after line 7's store: R written → recovered ack.
	out = reg2.Write(0, 5, nvm.CrashAtStep(stepLine8CP2))
	if out.Status != runtime.StatusRecovered {
		t.Fatalf("crash after line 7: status %v, want recovered", out.Status)
	}
	if got := reg2.PeekTriple().Val; got != 5 {
		t.Fatalf("R = %d, want 5", got)
	}
}

// TestABARecoveryNotFooled reproduces the ABA schedule from the proof of
// Lemma 1 (claim 2): p writes R and crashes before setting CP:=2; while p
// is down, q performs three writes, the last of which restores the exact
// triple p saved in RDp before the crash. A recovery that compared only R
// would wrongly conclude p's write never happened. The toggle bit q raised
// during its middle write certifies otherwise.
func TestABARecoveryNotFooled(t *testing.T) {
	const initVal = 100
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, initVal)
	p, q := 1, 0

	hook := &nvm.StepHook{
		Step: stepLine8CP2, // after p's store to R, before CP:=2
		Fn: func() {
			// q's three solo writes: toggle 0, 1, 0. The third writes the
			// initial value with toggle 0, restoring the exact initial
			// triple ⟨100, 0, 0⟩ that p saved at line 4.
			for _, v := range []int{7, 8, initVal} {
				if out := reg.Write(q, v); out.Status != runtime.StatusOK {
					t.Errorf("q write %d outcome %+v", v, out)
				}
			}
		},
	}
	out := reg.Write(p, 5, nvm.Plans{hook, nvm.CrashAtStep(stepLine8CP2)})

	if out.Status != runtime.StatusRecovered {
		t.Fatalf("ABA: status %v, want recovered (p's write WAS linearized)", out.Status)
	}
	// R must still hold q's last write; p's recovery only finishes bookkeeping.
	if got := reg.PeekTriple(); got != (Triple[int]{Val: initVal, Q: q, Toggle: 0}) {
		t.Fatalf("R = %+v", got)
	}
	rep := checkDL(t, sys, initVal)
	if rep.Recovered != 1 {
		t.Fatalf("report %+v, want exactly one recovered op", rep)
	}
}

// TestABAFailWhenNotLinearized is the complementary schedule: p crashes
// after CP:=1 but before writing R, while q completes one write that
// restores the same triple (q reuses toggle 0 because the initial value is
// attributed to it). p's toggle bit A[p][q][1] is still 0, so recovery must
// return fail.
func TestABAFailWhenNotLinearized(t *testing.T) {
	const initVal = 100
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, initVal)
	p, q := 1, 0

	hook := &nvm.StepHook{
		Step: stepLine7Store, // after CP:=1, before p's store to R
		Fn: func() {
			if out := reg.Write(q, initVal); out.Status != runtime.StatusOK {
				t.Errorf("q write outcome %+v", out)
			}
		},
	}
	out := reg.Write(p, 5, nvm.Plans{hook, nvm.CrashAtStep(stepLine7Store)})

	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed (p never wrote R)", out.Status)
	}
	if got := reg.PeekTriple(); got != (Triple[int]{Val: initVal, Q: q, Toggle: 0}) {
		t.Fatalf("R = %+v", got)
	}
	checkDL(t, sys, initVal)
}

// TestOverwrittenWriteLinearizesBeforeConcurrent reproduces case 2 of
// Lemma 1: p's line-5 re-read observes a concurrent write W', so p skips
// its own store to R, yet its Write must linearize (immediately before W').
func TestOverwrittenWriteLinearizesBeforeConcurrent(t *testing.T) {
	const initVal = 100
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, initVal)
	p, q := 1, 0

	hook := &nvm.StepHook{
		Step: 8, // before p's line-5 re-read of R
		Fn: func() {
			if out := reg.Write(q, 7); out.Status != runtime.StatusOK {
				t.Errorf("q write outcome %+v", out)
			}
		},
	}
	out := reg.Write(p, 5, hook)
	if out.Status != runtime.StatusOK {
		t.Fatalf("status %v, want ok", out.Status)
	}
	// p must not have overwritten q's value.
	if got := reg.PeekTriple(); got != (Triple[int]{Val: 7, Q: q, Toggle: 0}) {
		t.Fatalf("R = %+v, want q's write to survive", got)
	}
	// The history (p.write(5) linearized before q.write(7), read sees 7)
	// must check out.
	if out := reg.Read(p); out.Resp != 7 {
		t.Fatalf("read = %d", out.Resp)
	}
	checkDL(t, sys, initVal)
}

// TestCrashDuringRecovery crashes the recovery function itself and checks
// the verdict stays stable across recovery re-entries.
func TestCrashDuringRecovery(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 100)
	out := reg.Write(0, 5,
		nvm.CrashAtStep(stepLine8CP2), // body: crash after store to R
		nvm.CrashAtStep(2),            // 1st recovery attempt: crash mid-way
		nvm.CrashAtStep(4),            // 2nd recovery attempt: crash mid-way
	)
	if out.Status != runtime.StatusRecovered {
		t.Fatalf("status %v, want recovered", out.Status)
	}
	if out.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3", out.Crashes)
	}
	checkDL(t, sys, 100)
}

func TestReadRecoveryReinvokes(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 3)
	// Announcement is 3 steps; crash before the body's load (step 4).
	out := reg.Read(0, nvm.CrashAtStep(4))
	if out.Status != runtime.StatusRecovered || out.Resp != 3 {
		t.Fatalf("outcome %+v, want recovered 3", out)
	}
	checkDL(t, sys, 3)
}

func TestReadRecoveryUsesPersistedResponse(t *testing.T) {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 3)
	// Body: load R (step 4), persist resp (step 5). Crash before step 6
	// never fires in-body; crash before step 6 → completes. Crash between
	// persist and return: step 6 is past the body's last primitive, so use
	// a write from another process to change R first, then crash p's read
	// after it persisted its response; recovery must return the persisted
	// (old) value, not re-read.
	hook := &nvm.StepHook{
		Step: 6, // after resp persisted; fires on... no 6th primitive exists
		Fn:   func() {},
	}
	_ = hook
	out := reg.Read(0, nvm.CrashAtStep(5)) // crash before persisting resp
	if out.Status != runtime.StatusRecovered || out.Resp != 3 {
		t.Fatalf("outcome %+v", out)
	}
	checkDL(t, sys, 3)
}

// TestRandomSoloCrashes is a property-style test: a single process performs
// random writes and reads with random crash injections; every resulting
// history must be durably linearizable and every verdict consistent.
func TestRandomSoloCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		sys := runtime.NewSystem(1)
		reg := NewInt(sys, 0)
		model := 0
		for i := 0; i < 6; i++ {
			v := 1 + rng.Intn(9)
			var plans []nvm.CrashPlan
			if rng.Intn(2) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(18))))
			}
			if rng.Intn(2) == 0 {
				out := reg.Write(0, v, plans...)
				if out.Status.Linearized() {
					model = v
				}
				// Solo: a failed write must leave the register unchanged.
				if got := reg.PeekTriple().Val; got != model {
					t.Fatalf("trial %d: R=%d, model=%d, status=%v", trial, got, model, out.Status)
				}
			} else {
				out := reg.Read(0, plans...)
				if out.Status.Linearized() && out.Resp != model {
					t.Fatalf("trial %d: read=%d, model=%d", trial, out.Resp, model)
				}
			}
		}
		checkDL(t, sys, 0)
	}
}

// TestConcurrentStressWithStorms runs concurrent writers/readers under a
// crash storm and validates every batch history.
func TestConcurrentStressWithStorms(t *testing.T) {
	const (
		procs   = 3
		rounds  = 8
		opsEach = 5
	)
	for round := 0; round < rounds; round++ {
		sys := runtime.NewSystem(procs)
		reg := NewInt(sys, 0)

		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%800 == 0 {
					sys.Crash()
				}
			}
		}()

		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + pid)))
				for i := 0; i < opsEach; i++ {
					if rng.Intn(2) == 0 {
						reg.Write(pid, pid*100+i+1)
					} else {
						reg.Read(pid)
					}
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkDL(t, sys, 0)
	}
}

// TestWaitFreeStepBound verifies the wait-freedom claim concretely: a
// crash-free Write takes at most a constant number of primitives beyond the
// N toggle-bit stores.
func TestWaitFreeStepBound(t *testing.T) {
	for _, n := range []int{1, 2, 8, 32} {
		sys := runtime.NewSystem(n)
		reg := NewInt(sys, 0)
		before := sys.Space().Stats().Total()
		reg.Write(0, 1)
		steps := sys.Space().Stats().Total() - before
		bound := uint64(n + 13) // 3 announce + 10 fixed body + N toggle stores
		if steps > bound {
			t.Fatalf("N=%d: write took %d primitives, bound %d", n, steps, bound)
		}
	}
}

func TestManyProcessesSequential(t *testing.T) {
	const n = 16
	sys := runtime.NewSystem(n)
	reg := NewInt(sys, 0)
	for p := 0; p < n; p++ {
		if out := reg.Write(p, p+1); out.Status != runtime.StatusOK {
			t.Fatalf("p%d write: %+v", p, out)
		}
	}
	if out := reg.Read(0); out.Resp != n {
		t.Fatalf("read = %d, want %d", out.Resp, n)
	}
	checkDL(t, sys, 0)
}

func TestStringValues(t *testing.T) {
	sys := runtime.NewSystem(2)
	vals := map[string]int{"": 0, "a": 1, "b": 2}
	reg := New(sys, "", func(s string) int { return vals[s] })
	reg.Write(0, "a")
	if out := reg.Read(1); out.Resp != "a" {
		t.Fatalf("read = %q", out.Resp)
	}
	ok, _, err := linearize.CheckLog(spec.Register{}, sys.Log())
	if err != nil || !ok {
		t.Fatalf("history check: ok=%v err=%v", ok, err)
	}
}

func TestRepeatedFailedWritesNoGhosts(t *testing.T) {
	// Failed writes must never become visible later ("ghost writes").
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 0)
	for i := 0; i < 10; i++ {
		out := reg.Write(0, 77, nvm.CrashAtStep(stepLine7Store))
		if out.Status != runtime.StatusFailed {
			t.Fatalf("iter %d: status %v", i, out.Status)
		}
		if got := reg.Read(1); got.Resp == 77 {
			t.Fatalf("iter %d: failed write became visible", i)
		}
	}
	checkDL(t, sys, 0)
}

func ExampleRegister() {
	sys := runtime.NewSystem(2)
	reg := NewInt(sys, 0)
	reg.Write(0, 41)
	out := reg.Read(1)
	fmt.Println(out.Resp)
	// Output: 41
}
