package rw

import (
	"testing"
	"testing/quick"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// quickOp is one randomly generated register operation with an optional
// crash point.
type quickOp struct {
	Write bool
	Val   uint8
	Crash uint8 // 0 = no crash; otherwise crash before step Crash%18+1
}

func (o quickOp) plan() []nvm.CrashPlan {
	if o.Crash == 0 {
		return nil
	}
	return []nvm.CrashPlan{nvm.CrashAtStep(uint64(o.Crash%18 + 1))}
}

// TestQuickSoloRegisterConsistency: for ANY sequence of solo register
// operations with arbitrary crash points, linearized reads agree with the
// last linearized write, fail verdicts have no effect, and the history
// checks out.
func TestQuickSoloRegisterConsistency(t *testing.T) {
	f := func(ops []quickOp) bool {
		if len(ops) > 9 {
			ops = ops[:9]
		}
		sys := runtime.NewSystem(1)
		reg := NewInt(sys, 0)
		model := 0
		for _, op := range ops {
			if op.Write {
				v := int(op.Val%7) + 1
				out := reg.Write(0, v, op.plan()...)
				if out.Status.Linearized() {
					model = v
				}
				if reg.PeekTriple().Val != model {
					return false
				}
			} else {
				out := reg.Read(0, op.plan()...)
				if out.Status.Linearized() && out.Resp != model {
					return false
				}
			}
		}
		ok, _, err := linearize.CheckLog(spec.Register{}, sys.Log())
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickToggleDiscipline: the private toggle index Tp alternates with
// every linearized write and never otherwise — the discipline the Lemma 1
// proof relies on.
func TestQuickToggleDiscipline(t *testing.T) {
	f := func(ops []quickOp) bool {
		if len(ops) > 9 {
			ops = ops[:9]
		}
		sys := runtime.NewSystem(1)
		reg := NewInt(sys, 0)
		toggle := 0
		for _, op := range ops {
			if !op.Write {
				continue
			}
			out := reg.Write(0, int(op.Val), op.plan()...)
			if out.Status.Linearized() {
				toggle = 1 - toggle
			}
			if reg.tp[0].Peek() != toggle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
