package rw

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// TestRaceStress is a short stress run aimed at the race detector: writer
// and reader processes with random crash plans, a crash-storm goroutine
// advancing the epoch, and a peeker hammering the no-Ctx inspection paths
// — every cross-goroutine access the package exposes, racing at once.
func TestRaceStress(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	reg := NewInt(sys, 0)

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // crash storm
		defer aux.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				sys.Crash()
			}
		}
	}()
	go func() { // peeker: no-Ctx reads racing everything else
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = reg.PeekTriple()
			_ = reg.PeekToggle(0, 1, 0)
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 300; i++ {
				var plan nvm.CrashPlan
				if rng.Intn(5) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(12)))
				}
				if rng.Intn(2) == 0 {
					reg.Write(pid, pid*1000+i, plan)
				} else {
					reg.Read(pid, plan)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}
