// Package rw implements Algorithm 1 of the paper: the first wait-free
// bounded-space detectable read/write register.
//
// The register's state is one shared cell R holding a triple ⟨v, q, b⟩ —
// the current value, the process that last wrote it, and the index of the
// toggle-bit array that write used — plus a 3-dimensional boolean array
// A[N][N][2] of per-process toggle bits. Each process p owns two private
// non-volatile cells: RDp (recovery data) and Tp (which of p's two
// toggle-bit arrays the next write uses).
//
// The toggle bits solve the ABA problem that bounded space exposes: a
// recovering process p that reads the same triple from R as before the
// crash cannot tell, from R alone, whether other writes happened in
// between. The key invariant (used in lines 19–21 of the pseudo-code): for
// the last writer q to reuse the same toggle-bit index, it must first
// complete a write with the *other* index, and completing that write sets
// all of q's toggle bits of that other array to 1 — including the bit p
// zeroed at line 2. So upon recovery, "R unchanged AND my bit still 0"
// certifies that no write was linearized in the interval, and the recovery
// function may safely return fail.
//
// Everything is bounded: R stores the value plus ⌈log N⌉+1 bits, A stores
// 2N² bits, and each process persists one value and ⌈log N⌉+2 bits — in
// contrast to the unbounded sequence numbers of Attiya et al. [3]
// (implemented in internal/baseline for comparison).
package rw

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Triple is the content of the shared register R: the application value,
// the identifier of the process that last wrote it, and the toggle-bit
// array index that write used.
type Triple[V comparable] struct {
	Val    V
	Q      int
	Toggle int
}

// recoveryData is the private non-volatile RDp record persisted at line 4:
// the toggle index of p's in-progress write plus the triple p read from R.
type recoveryData[V comparable] struct {
	MToggle int
	QVal    V
	Q       int
	QToggle int
}

// Register is an N-process detectable read/write register over value domain
// V. All exported methods are safe for concurrent use by distinct
// processes; a single process must not run two operations concurrently.
type Register[V comparable] struct {
	sys *runtime.System
	n   int
	enc func(V) int

	// r is the shared register R, initially ⟨vinit, 0, 0⟩ — attributing the
	// initial value to a write by process 0 using toggle array 0.
	r nvm.CASRegister[Triple[V]]
	// a[i][p][b] is the toggle bit through which writer p coordinates with
	// process i using p's toggle array b.
	a [][][2]nvm.CASRegister[bool]
	// rd[p] and tp[p] are p's private non-volatile variables.
	rd []nvm.CASRegister[recoveryData[V]]
	tp []nvm.CASRegister[int]

	wAnn []*runtime.Ann[int]
	rAnn []*runtime.Ann[V]

	// Cached per-process operation closures, so building an Op on the hot
	// path allocates nothing. The closures are stateless across calls: the
	// pending write value travels through wVals[p], written by WriteOp
	// before the operation starts (it is volatile helper state — recovery
	// never reads it, exactly as the paper's recovery functions take no
	// arguments beyond the announcement). wDescs[p] is p's reusable write
	// descriptor: its one-element Args slice is overwritten by every WriteOp
	// of p, so the whole hot path allocates nothing; the history log copies
	// Args on retention, which keeps the aliasing invisible.
	wVals    []V
	wDescs   []spec.Operation
	wAnnFn   []func(*nvm.Ctx)
	wBodyFn  []func(*nvm.Ctx) int
	wRecovFn []func(*nvm.Ctx) (int, bool)
	readOps  []runtime.Op[V]
}

// New allocates a detectable register in sys's memory space, initialized to
// vinit. enc encodes values for history logging (use runtime.EncodeInt for
// V = int).
func New[V comparable](sys *runtime.System, vinit V, enc func(V) int) *Register[V] {
	sp := sys.Space()
	n := sys.N()
	reg := &Register[V]{
		sys: sys,
		n:   n,
		enc: enc,
		r:   nvm.NewWord(sp, Triple[V]{Val: vinit, Q: 0, Toggle: 0}),
	}
	reg.a = make([][][2]nvm.CASRegister[bool], n)
	for i := 0; i < n; i++ {
		reg.a[i] = make([][2]nvm.CASRegister[bool], n)
		for p := 0; p < n; p++ {
			reg.a[i][p][0] = nvm.NewWord(sp, false)
			reg.a[i][p][1] = nvm.NewWord(sp, false)
		}
	}
	for p := 0; p < n; p++ {
		reg.rd = append(reg.rd, nvm.NewWord(sp, recoveryData[V]{}))
		reg.tp = append(reg.tp, nvm.NewWord(sp, 0))
		reg.wAnn = append(reg.wAnn, runtime.NewAnn[int](sp))
		reg.rAnn = append(reg.rAnn, runtime.NewAnn[V](sp))
	}
	reg.wVals = make([]V, n)
	reg.wDescs = make([]spec.Operation, n)
	for p := 0; p < n; p++ {
		reg.wDescs[p] = spec.NewOp(spec.MethodWrite, 0)
		reg.wAnnFn = append(reg.wAnnFn, reg.makeWriteAnnounce(p))
		reg.wBodyFn = append(reg.wBodyFn, reg.makeWriteBody(p))
		reg.wRecovFn = append(reg.wRecovFn, reg.makeWriteRecover(p))
		reg.readOps = append(reg.readOps, reg.makeReadOp(p))
	}
	return reg
}

// NewInt allocates a detectable register over int values.
func NewInt(sys *runtime.System, vinit int) *Register[int] {
	return New(sys, vinit, runtime.EncodeInt)
}

// Write performs a detectable Write(val) as process pid, following the
// crash-recovery protocol. plans optionally inject deterministic crashes.
func (reg *Register[V]) Write(pid int, val V, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.Execute(reg.sys, pid, reg.WriteOp(pid, val), plans...)
}

// Read performs a detectable Read() as process pid.
func (reg *Register[V]) Read(pid int, plans ...nvm.CrashPlan) runtime.Outcome[V] {
	return runtime.Execute(reg.sys, pid, reg.ReadOp(pid), plans...)
}

// WriteOp builds the recoverable Write operation instance for pid. Exposed
// so schedule-driven tests and the NRL wrapper can run it directly. The
// closures and the descriptor are pre-built per process, so the hot path
// allocates nothing: val is staged in wVals[pid] (read once by the body)
// and the descriptor's argument slot is overwritten in place — Desc.Args
// stays valid only until pid's next WriteOp, and the history log copies it
// on retention.
func (reg *Register[V]) WriteOp(pid int, val V) runtime.Op[int] {
	reg.wVals[pid] = val
	reg.wDescs[pid].Args[0] = reg.enc(val)
	return runtime.Op[int]{
		Desc:     reg.wDescs[pid],
		Announce: reg.wAnnFn[pid],
		Body:     reg.wBodyFn[pid],
		Recover:  reg.wRecovFn[pid],
		Encode:   runtime.EncodeInt,
	}
}

func (reg *Register[V]) makeWriteAnnounce(pid int) func(*nvm.Ctx) {
	ann := reg.wAnn[pid]
	return func(ctx *nvm.Ctx) { ann.Announce(ctx, "write") }
}

func (reg *Register[V]) makeWriteBody(pid int) func(*nvm.Ctx) int {
	ann := reg.wAnn[pid]
	return func(ctx *nvm.Ctx) int {
		val := reg.wVals[pid] // the staged argument
		t := reg.r.Load(ctx)  // line 1
		if mutant != MutantSkipToggleClear {
			reg.a[pid][t.Q][1-t.Toggle].Store(ctx, false) // line 2
		}
		mtoggle := reg.tp[pid].Load(ctx) // line 3
		reg.rd[pid].Store(ctx, recoveryData[V]{       // line 4
			MToggle: mtoggle, QVal: t.Val, Q: t.Q, QToggle: t.Toggle,
		})
		if reg.r.Load(ctx) == t { // line 5
			ann.SetCP(ctx, 1)                                              // line 6
			reg.r.Store(ctx, Triple[V]{Val: val, Q: pid, Toggle: mtoggle}) // line 7
		}
		return reg.finishWrite(ctx, pid, mtoggle, ann) // lines 8-13
	}
}

func (reg *Register[V]) makeWriteRecover(pid int) func(*nvm.Ctx) (int, bool) {
	ann := reg.wAnn[pid]
	return func(ctx *nvm.Ctx) (int, bool) {
		d := reg.rd[pid].Load(ctx)       // line 14
		if r := ann.Result(ctx); r.Set { // line 15
			return spec.Ack, true // line 16
		}
		switch ann.GetCP(ctx) {
		case 0: // line 17
			return 0, false // line 18
		case 1: // line 19
			if reg.r.Load(ctx) == (Triple[V]{Val: d.QVal, Q: d.Q, Toggle: d.QToggle}) &&
				!reg.a[pid][d.Q][1-d.QToggle].Load(ctx) { // line 20
				return 0, false // line 21
			}
		}
		return reg.finishWrite(ctx, pid, d.MToggle, ann), true // lines 22-27
	}
}

// finishWrite is the common tail of Write (lines 8–13) and Write.Recover
// (lines 22–27): persist checkpoint 2, raise all of pid's toggle bits for
// the used array, switch the private toggle index, persist the response.
func (reg *Register[V]) finishWrite(ctx *nvm.Ctx, pid, mtoggle int, ann *runtime.Ann[int]) int {
	ann.SetCP(ctx, 2)            // line 8 / 22
	for i := 0; i < reg.n; i++ { // lines 9-10 / 23-24
		reg.a[i][pid][mtoggle].Store(ctx, true)
	}
	reg.tp[pid].Store(ctx, 1-mtoggle) // line 11 / 25
	ann.SetResult(ctx, spec.Ack)      // line 12 / 26
	return spec.Ack                   // line 13 / 27
}

// ReadOp returns the recoverable Read operation instance for pid. Per the
// paper, the recovery function re-invokes Read when no response was
// persisted; it never returns fail (a read has no effect on the object).
// Reads take no argument, so the whole Op is pre-built per process and the
// crash-free read path allocates nothing.
func (reg *Register[V]) ReadOp(pid int) runtime.Op[V] {
	return reg.readOps[pid]
}

func (reg *Register[V]) makeReadOp(pid int) runtime.Op[V] {
	ann := reg.rAnn[pid]
	body := func(ctx *nvm.Ctx) V {
		t := reg.r.Load(ctx)
		ann.SetResult(ctx, t.Val)
		return t.Val
	}
	return runtime.Op[V]{
		Desc:     spec.NewOp(spec.MethodRead),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "read") },
		Body:     body,
		Recover: func(ctx *nvm.Ctx) (V, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			return body(ctx), true
		},
		Encode: reg.enc,
	}
}

// PeekTriple returns the shared register's current triple without a Ctx,
// for test assertions and checkers.
func (reg *Register[V]) PeekTriple() Triple[V] { return reg.r.Peek() }

// PeekToggle returns toggle bit A[i][p][b] without a Ctx, for tests.
func (reg *Register[V]) PeekToggle(i, p, b int) bool { return reg.a[i][p][b].Peek() }

// N returns the number of processes the register was allocated for.
func (reg *Register[V]) N() int { return reg.n }
