// Package explore is a deterministic-schedule model checker for the
// repository's detectable objects: it exhaustively enumerates process
// interleavings at shared-memory-primitive granularity, crossed with
// system-wide crash points, and checks every explored execution's complete
// history for durable linearizability with detectability accounting
// (internal/linearize).
//
// Where the stress suites (-race loops, crash storms, the loadgen verifier)
// sample the schedule space, the explorer walks it: a seeded bug that needs
// one specific interleaving plus a crash at one specific step is found, and
// reported as a minimal, replayable Trace that reproduces the violation
// byte-for-byte (Replay). internal/model plays the same role for abstract
// step machines of Algorithms 1 and 2; this package checks the *real*
// implementations — goroutines, the runtime.Execute protocol, recovery
// re-entries, composed objects — by driving them under a controlled
// scheduler (see sched.go).
//
// Tractability comes from two classic model-checking techniques:
//
//   - Preemption bounding (CHESS): schedules are explored in rounds of
//     increasing preemption count — switching away from a process that
//     could continue costs one preemption; switching after it finished, or
//     after a crash, is free. Bugs reachable with few preemptions (almost
//     all of them, empirically) are found first, and the first
//     counterexample found is minimal in preemptions.
//   - Sleep sets (Godefroid): after a branch explores decision d, sibling
//     branches keep d asleep until some step dependent with d's pending
//     primitive executes. Independence is judged on observed effects: two
//     primitives commute when they target different cells (Ctx.CellID) or
//     are both loads, and steps that emitted history events never commute
//     (the real-time order of events is what the checker enforces). With
//     an unbounded preemption budget the pruning is sound: every pruned
//     schedule is Mazurkiewicz-equivalent to an explored one, and the
//     linearizability verdict is invariant within an equivalence class.
//
// The two techniques do not compose soundly: preemption count is not
// invariant under Mazurkiewicz equivalence, so with a finite bound a sleep
// set could prune a within-bound schedule whose explored representative
// lies beyond the bound. Run therefore applies sleep sets only when
// MaxPreemptions is -1 (deepening until exhausted, where the final round is
// sound); under a finite bound every branch within the bound is explored,
// so Complete means literally every such schedule ran. At low bounds the
// preemption pruning dominates anyway, making the forgone sleep pruning
// cheap.
package explore

import (
	"fmt"
	"sort"
	"time"

	"detectable/internal/linearize"
)

// Options bound an exploration.
type Options struct {
	// MaxCrashes is the per-execution budget of crash decisions (default 0;
	// 1 covers "every crash point" of the single-failure analyses).
	MaxCrashes int
	// MaxPreemptions caps the iterative-deepening preemption bound.
	// -1 keeps deepening until a round completes with no preemption-pruned
	// branches, i.e. the schedule space is fully explored (sleep-set
	// pruning applies). A finite bound explores every schedule within it —
	// sleep sets are off, since they are unsound under a bound (see the
	// package comment).
	MaxPreemptions int
	// MaxExecutions caps the total number of executions (0 = unlimited).
	MaxExecutions int
	// Budget caps wall-clock time (0 = unlimited).
	Budget time.Duration
	// StepCap aborts any single execution exceeding this many decisions,
	// as a livelock guard (default 4096).
	StepCap int
	// DisableSleep turns the sleep-set pruning off even for unbounded
	// (MaxPreemptions -1) searches. It exists to validate the pruning: a
	// violation found without sleep sets must also be found with them.
	// Finite-bound searches never use sleep sets regardless (see
	// MaxPreemptions).
	DisableSleep bool
}

// Stats counts the work an exploration performed.
type Stats struct {
	// Executions completed (including sleep-set cutoffs).
	Executions int
	// Cutoffs counts executions abandoned because every enabled decision
	// was asleep — each is a certificate that the remaining subtree is
	// equivalent to already-explored schedules.
	Cutoffs int
	// SleepSkips and PreemptSkips count pruned branch alternatives.
	SleepSkips, PreemptSkips int
	// Passes is the number of deepening rounds run; Bound is the last
	// round's preemption bound.
	Passes, Bound int
}

// Result is the outcome of one Run.
type Result struct {
	Object  string
	Program Program
	Stats   Stats
	// Complete: the search ran to the end of its final round (it was not
	// stopped by Budget or MaxExecutions). Under a finite MaxPreemptions
	// this is exhaustive at the bound: every schedule within MaxCrashes
	// and the preemption bound was executed.
	Complete bool
	// Exhausted: Complete, and the final round pruned nothing on the
	// preemption bound — every schedule within MaxCrashes was explored up
	// to equivalence.
	Exhausted bool
	// Counterexample is a replayable trace of a non-linearizable (or
	// otherwise inexplicable) execution; nil if none was found.
	Counterexample *Trace
	// Err reports infrastructure failures (step-cap livelock, process
	// panic, replay divergence) — distinct from a counterexample.
	Err     error
	Elapsed time.Duration
}

// point is one choice point of the DFS: the decisions enabled there, which
// one is currently being explored, and the sleep set accumulated from
// already-explored siblings and inherited from the parent.
type point struct {
	options []Decision
	costs   []int // preemption cost per option
	idx     int
	sleep   map[int]parkView // sleeping Step decisions, by pid
	parked  map[int]parkView // snapshot of parked processes
	preempt int              // preemptions spent on the path to this point
}

// newPoint snapshots the execution's scheduling state into a choice point.
func newPoint(e *execution, inherited map[int]parkView, preempt, maxCrashes int) *point {
	pt := &point{
		sleep:   inherited,
		parked:  make(map[int]parkView, len(e.parked)),
		preempt: preempt,
	}
	pids := make([]int, 0, len(e.parked))
	midOp := false
	for pid, info := range e.parked {
		pt.parked[pid] = info.view()
		pids = append(pids, pid)
		if info.kind == parkPrimitive {
			midOp = true
		}
	}
	sort.Ints(pids)
	// Continuation first (free), then switches in pid order, then a crash.
	_, contParked := e.parked[e.lastPid]
	if contParked {
		pt.options = append(pt.options, Decision{Pid: e.lastPid})
		pt.costs = append(pt.costs, 0)
	}
	for _, pid := range pids {
		if pid == e.lastPid {
			continue
		}
		pt.options = append(pt.options, Decision{Pid: pid})
		cost := 0
		if contParked {
			cost = 1 // leaving a runnable process is a preemption
		}
		pt.costs = append(pt.costs, cost)
	}
	// A crash is offered while some operation is in flight — or, under a
	// shared-cache memory model, at any point after the first step, since
	// reverting unflushed stores is an effect of its own (see
	// execution.crashAnywhere). Never twice in a row: back-to-back crashes
	// collapse to one.
	if e.crashes < maxCrashes && !e.lastWasCrash && (midOp || (e.crashAnywhere && e.steps > 0)) {
		pt.options = append(pt.options, Decision{Pid: -1, Crash: true})
		pt.costs = append(pt.costs, 0)
	}
	return pt
}

// seek advances idx to the next viable option at or after from, counting
// skips into st. It reports whether one was found.
func (pt *point) seek(from, bound int, st *Stats) bool {
	for i := from; i < len(pt.options); i++ {
		d := pt.options[i]
		if !d.Crash {
			if _, asleep := pt.sleep[d.Pid]; asleep {
				st.SleepSkips++
				continue
			}
		}
		if pt.preempt+pt.costs[i] > bound {
			st.PreemptSkips++
			continue
		}
		pt.idx = i
		return true
	}
	return false
}

// filterSleep propagates a sleep set into the child reached via a step with
// observed effects c: sleeping decisions dependent with c wake up.
func filterSleep(sleep map[int]parkView, c stepInfo) map[int]parkView {
	out := make(map[int]parkView, len(sleep))
	for pid, v := range sleep {
		if indep(v, c) {
			out[pid] = v
		}
	}
	return out
}

// Run explores prog on h under opt.
func Run(h Harness, prog Program, opt Options) Result {
	if opt.StepCap <= 0 {
		opt.StepCap = 4096
	}
	res := Result{Object: h.Name, Program: prog}
	start := time.Now()
	var deadline time.Time
	if opt.Budget > 0 {
		deadline = start.Add(opt.Budget)
	}
	// Sleep sets only under unbounded deepening, where they are sound.
	sleepOn := opt.MaxPreemptions < 0 && !opt.DisableSleep
	r := &runner{h: h, prog: prog, opt: opt, sleepOn: sleepOn, deadline: deadline, res: &res}
	for bound := 0; ; bound++ {
		res.Stats.Passes++
		res.Stats.Bound = bound
		skipsBefore := res.Stats.PreemptSkips
		stopped := r.pass(bound)
		if res.Counterexample != nil || res.Err != nil {
			break
		}
		if stopped {
			break // budget or execution cap: incomplete
		}
		if res.Stats.PreemptSkips == skipsBefore {
			// The bound never pruned a branch: the space is exhausted.
			res.Complete, res.Exhausted = true, true
			break
		}
		if opt.MaxPreemptions >= 0 && bound >= opt.MaxPreemptions {
			res.Complete = true // complete at the requested bound
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

type runner struct {
	h        Harness
	prog     Program
	opt      Options
	sleepOn  bool
	deadline time.Time
	res      *Result
}

func (r *runner) stopNow() bool {
	if r.opt.MaxExecutions > 0 && r.res.Stats.Executions >= r.opt.MaxExecutions {
		return true
	}
	return !r.deadline.IsZero() && time.Now().After(r.deadline)
}

// pass runs one complete DFS at the given preemption bound. It returns true
// if it was stopped by the budget before finishing.
func (r *runner) pass(bound int) bool {
	var stack []*point
	for {
		if r.stopNow() {
			return true
		}
		r.runOne(&stack, bound)
		if r.res.Counterexample != nil || r.res.Err != nil {
			return false
		}
		// Backtrack to the deepest point with an unexplored viable sibling.
		advanced := false
		for len(stack) > 0 {
			pt := stack[len(stack)-1]
			if d := pt.options[pt.idx]; !d.Crash && r.sleepOn {
				// The explored decision goes to sleep for later siblings.
				pt.sleep[d.Pid] = pt.parked[d.Pid]
			}
			if pt.seek(pt.idx+1, bound, &r.res.Stats) {
				advanced = true
				break
			}
			stack = stack[:len(stack)-1]
		}
		if !advanced {
			return false // pass finished
		}
	}
}

// runOne executes one schedule: it replays the decisions pinned by stack,
// then extends with fresh choice points (first-viable policy) until the
// execution finishes, is cut off by sleep sets, or fails. On normal
// completion it checks the recorded history.
func (r *runner) runOne(stack *[]*point, bound int) {
	r.res.Stats.Executions++
	exec := newExecution(r.h.Build(len(r.prog)), r.prog)
	var (
		decisions []Decision
		lastInfo  stepInfo
		depth     int
	)
	fail := func(err error) {
		exec.abort()
		r.res.Err = fmt.Errorf("%w\ntrace so far: %v", err, decisions)
	}
	for !exec.finished() {
		if exec.steps >= r.opt.StepCap {
			fail(fmt.Errorf("explore: execution exceeded the %d-step cap (livelock?)", r.opt.StepCap))
			return
		}
		var pt *point
		if depth < len(*stack) {
			pt = (*stack)[depth]
		} else {
			inherited := map[int]parkView{}
			if depth > 0 {
				inherited = filterSleep((*stack)[depth-1].sleep, lastInfo)
			}
			pre := 0
			if depth > 0 {
				parent := (*stack)[depth-1]
				pre = parent.preempt + parent.costs[parent.idx]
			}
			pt = newPoint(exec, inherited, pre, r.opt.MaxCrashes)
			if !pt.seek(0, bound, &r.res.Stats) {
				// Every enabled decision is asleep: this whole subtree is
				// equivalent to schedules already explored.
				r.res.Stats.Cutoffs++
				exec.abort()
				return
			}
			*stack = append(*stack, pt)
		}
		d := pt.options[pt.idx]
		info, err := exec.apply(d)
		if err != nil {
			fail(err)
			return
		}
		decisions = append(decisions, d)
		lastInfo = info
		depth++
	}
	if depth < len(*stack) {
		fail(fmt.Errorf("explore: execution finished at depth %d but the replay stack holds %d points (nondeterminism)", depth, len(*stack)))
		return
	}
	// The execution completed: check its full history.
	events := exec.inst.Sys.Log().Events()
	recs, _, err := linearize.Collect(events)
	if err != nil {
		fail(fmt.Errorf("explore: malformed history: %w", err))
		return
	}
	if len(recs) > linearize.MaxOps {
		fail(fmt.Errorf("explore: %d operations exceed the checker's %d-op limit; shrink the program", len(recs), linearize.MaxOps))
		return
	}
	if !linearize.Check(exec.inst.Obj, recs) {
		t := &Trace{
			Object:    r.h.Name,
			Procs:     len(r.prog),
			Program:   r.prog,
			Decisions: decisions,
			Note:      fmt.Sprintf("found at preemption bound %d, %d crash(es)", bound, exec.crashes),
		}
		// A counterexample must replay: verify before reporting it, with
		// the harness in hand (custom harnesses may not be registered).
		rr, rerr := ReplayWith(r.h, *t)
		switch {
		case rerr != nil:
			r.res.Err = fmt.Errorf("explore: counterexample failed to replay: %w", rerr)
		case rr.Linearizable:
			r.res.Err = fmt.Errorf("explore: counterexample did not reproduce on replay (nondeterminism)\ntrace: %v", decisions)
		default:
			r.res.Counterexample = t
		}
	}
}
