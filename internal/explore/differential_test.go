package explore_test

import (
	"reflect"
	"testing"

	"detectable/internal/explore"
	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// TestDifferentialFastVsArmed pins the PR 3 dual-path contract: the same
// operation sequence must behave identically through the lock-free fast
// path (nil plan) and through the armed-plan mutex path (a NeverCrash plan
// forces Ctx.fast() off on every primitive). Each harness runs a
// deterministic round-robin sequence over 3 processes on two fresh
// instances, one per path, and the test demands identical per-operation
// responses and statuses, an event-identical history, and equal
// linearizability verdicts and detectability reports.
func TestDifferentialFastVsArmed(t *testing.T) {
	for _, h := range explore.Harnesses() {
		t.Run(h.Name, func(t *testing.T) {
			const procs, ops = 3, 4
			prog := h.DefaultProgram(procs, ops)
			fast := h.Build(procs)
			armed := h.Build(procs)
			for k := 0; k < ops; k++ {
				for p := 0; p < procs; p++ {
					if k >= len(prog[p]) {
						continue
					}
					op := prog[p][k]
					fResp, fSt := fast.Run(p, op, nil)
					aResp, aSt := armed.Run(p, op, nvm.NeverCrash())
					if fResp != aResp || fSt != aSt {
						t.Fatalf("p%d %s diverged: fast (%d, %s) vs armed (%d, %s)",
							p, op, fResp, fSt, aResp, aSt)
					}
					if fSt != runtime.StatusOK {
						t.Fatalf("p%d %s: crash-free run reported %s", p, op, fSt)
					}
				}
			}
			fe, ae := fast.Sys.Log().Events(), armed.Sys.Log().Events()
			if !reflect.DeepEqual(fe, ae) {
				t.Fatalf("histories diverged:\nfast:  %v\narmed: %v", fe, ae)
			}
			fOK, _, fRep, err := linearize.ExplainEvents(fast.Obj, fe)
			if err != nil {
				t.Fatal(err)
			}
			aOK, _, aRep, err := linearize.ExplainEvents(armed.Obj, ae)
			if err != nil {
				t.Fatal(err)
			}
			if fOK != aOK || fRep != aRep {
				t.Fatalf("verdicts diverged: fast (%v, %+v) vs armed (%v, %+v)", fOK, fRep, aOK, aRep)
			}
			if !fOK {
				t.Fatalf("sequential history not linearizable: %+v", fRep)
			}
		})
	}
}
