package explore

import (
	"fmt"
	"sort"

	"detectable/internal/counter"
	"detectable/internal/history"
	"detectable/internal/maxreg"
	"detectable/internal/nvm"
	"detectable/internal/queue"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
	"detectable/internal/shardkv"
	"detectable/internal/spec"
	"detectable/internal/tas"
)

// Program is the workload of one execution: Program[pid] is the sequence of
// abstract operations process pid performs, in order. Operations are
// interpreted by the harness's Run function; for the plain objects they are
// exactly the spec methods, for composed harnesses (counter) they may be
// higher-level ("inc" expands to a read/CAS retry loop whose constituent
// operations are what lands in the history).
type Program [][]spec.Operation

// NumOps returns the total operation count across all processes.
func (p Program) NumOps() int {
	n := 0
	for _, ops := range p {
		n += len(ops)
	}
	return n
}

// Instance is one freshly built system under exploration: the runtime
// system whose history log is checked, the sequential specification to
// check it against, a Run function executing one program operation with a
// scheduler plan armed on every attempt, and a crash injector.
type Instance struct {
	Sys *runtime.System
	Obj spec.Object
	// Run executes one program operation as pid with plan armed on every
	// attempt (pass nil to take the crash-free lock-free fast path, as the
	// differential tests do). It returns the operation's encoded response
	// and detectable status.
	Run   func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status)
	Crash func()
}

// Harness builds Instances and default Programs for one object type.
type Harness struct {
	// Name identifies the harness ("rw", "rcas", "tas", "maxreg", "queue",
	// "counter", "shardkv").
	Name string
	// Build allocates a fresh instance for procs processes. Called once per
	// explored execution, so state never leaks between interleavings.
	Build func(procs int) *Instance
	// DefaultProgram generates the standard workload: ops operations per
	// process, mixing mutators and readers with distinct argument values.
	DefaultProgram func(procs, ops int) Program
}

// val returns a distinct nonzero argument for op k of process p.
func val(p, ops, k int) int { return p*ops + k + 1 }

// mix builds the usual alternating mutate/observe program.
func mix(procs, ops int, mutate func(p, k int) spec.Operation, observe func(p, k int) spec.Operation) Program {
	prog := make(Program, procs)
	for p := 0; p < procs; p++ {
		for k := 0; k < ops; k++ {
			if k%2 == 0 {
				prog[p] = append(prog[p], mutate(p, k))
			} else {
				prog[p] = append(prog[p], observe(p, k))
			}
		}
	}
	return prog
}

func read(int, int) spec.Operation { return spec.NewOp(spec.MethodRead) }

// must panics on operations a harness does not understand — a programming
// error in the Program, not a checkable property.
func must(op spec.Operation, cond bool) {
	if !cond {
		panic(fmt.Sprintf("explore: harness cannot run operation %s", op))
	}
}

// Harnesses returns every registered harness, sorted by name.
func Harnesses() []Harness {
	hs := []Harness{rwHarness(), rcasHarness(), tasHarness(), maxregHarness(),
		queueHarness(), counterHarness(), shardkvHarness()}
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
	return hs
}

// ByName returns the named harness.
func ByName(name string) (Harness, error) {
	for _, h := range Harnesses() {
		if h.Name == name {
			return h, nil
		}
	}
	return Harness{}, fmt.Errorf("explore: no harness %q", name)
}

func rwHarness() Harness {
	return Harness{
		Name: "rw",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			reg := rw.NewInt(sys, 0)
			return &Instance{
				Sys: sys, Obj: spec.Register{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodWrite:
						out := runtime.ExecuteArmed(sys, pid, reg.WriteOp(pid, op.Args[0]), plan)
						return out.Resp, out.Status
					case spec.MethodRead:
						out := runtime.ExecuteArmed(sys, pid, reg.ReadOp(pid), plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			return mix(procs, ops, func(p, k int) spec.Operation {
				return spec.NewOp(spec.MethodWrite, val(p, ops, k))
			}, read)
		},
	}
}

func rcasHarness() Harness {
	return Harness{
		Name: "rcas",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			cas := rcas.NewInt(sys, 0)
			return &Instance{
				Sys: sys, Obj: spec.CAS{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodCAS:
						out := runtime.ExecuteArmed(sys, pid, cas.CasOp(pid, op.Args[0], op.Args[1]), plan)
						return runtime.EncodeBool(out.Resp), out.Status
					case spec.MethodRead:
						out := runtime.ExecuteArmed(sys, pid, cas.ReadOp(pid), plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			// Every CAS targets old value 0, so the processes race for the
			// first swap; later CASes exercise the failure path.
			return mix(procs, ops, func(p, k int) spec.Operation {
				return spec.NewOp(spec.MethodCAS, 0, val(p, ops, k))
			}, read)
		},
	}
}

func tasHarness() Harness {
	return Harness{
		Name: "tas",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			t := tas.New(sys)
			return &Instance{
				Sys: sys, Obj: spec.TAS{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodTAS:
						out := runtime.ExecuteArmed(sys, pid, t.TestAndSetOp(pid), plan)
						return out.Resp, out.Status
					case spec.MethodReset:
						out := runtime.ExecuteArmed(sys, pid, t.ResetOp(pid), plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			return mix(procs, ops, func(int, int) spec.Operation {
				return spec.NewOp(spec.MethodTAS)
			}, func(int, int) spec.Operation {
				return spec.NewOp(spec.MethodReset)
			})
		},
	}
}

func maxregHarness() Harness {
	return Harness{
		Name: "maxreg",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			m := maxreg.New(sys)
			return &Instance{
				Sys: sys, Obj: spec.MaxRegister{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodWriteMax:
						out := runtime.ExecuteArmed(sys, pid, m.WriteMaxOp(pid, op.Args[0]), plan)
						return out.Resp, out.Status
					case spec.MethodRead:
						out := runtime.ExecuteArmed(sys, pid, m.ReadOp(pid), plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			return mix(procs, ops, func(p, k int) spec.Operation {
				return spec.NewOp(spec.MethodWriteMax, val(p, ops, k))
			}, read)
		},
	}
}

func queueHarness() Harness {
	return Harness{
		Name: "queue",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			q := queue.New(sys)
			return &Instance{
				Sys: sys, Obj: spec.Queue{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodEnq:
						out := runtime.ExecuteArmed(sys, pid, q.EnqOp(pid, op.Args[0]), plan)
						return out.Resp, out.Status
					case spec.MethodDeq:
						out := runtime.ExecuteArmed(sys, pid, q.DeqOp(pid), plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			return mix(procs, ops, func(p, k int) spec.Operation {
				return spec.NewOp(spec.MethodEnq, val(p, ops, k))
			}, func(int, int) spec.Operation {
				return spec.NewOp(spec.MethodDeq)
			})
		},
	}
}

// MethodInc is the counter harness's program-level operation: it expands to
// the read/CAS retry loop of counter.Counter.IncArmed, so the history the
// checker sees consists of the underlying detectable CAS operations.
const MethodInc = spec.MethodInc

func counterHarness() Harness {
	return Harness{
		Name: "counter",
		Build: func(procs int) *Instance {
			sys := runtime.NewSystem(procs)
			c := counter.New(sys)
			return &Instance{
				// The history records the read/cas ops of the composition,
				// so it is checked against the CAS specification.
				Sys: sys, Obj: spec.CAS{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					must(op, op.Method == MethodInc)
					return c.IncArmed(pid, plan), runtime.StatusOK
				},
				Crash: func() { sys.Crash() },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			prog := make(Program, procs)
			for p := 0; p < procs; p++ {
				for k := 0; k < ops; k++ {
					prog[p] = append(prog[p], spec.NewOp(MethodInc))
				}
			}
			return prog
		},
	}
}

// shardkvKey is the single key the shardkv harness exercises: exploration
// needs the shard's history to describe one register, and the operation
// descriptions recorded by the underlying rw registers do not carry keys.
const shardkvKey = "k"

func shardkvHarness() Harness {
	return Harness{
		Name: "shardkv",
		Build: func(procs int) *Instance {
			store := shardkv.New(1, procs, shardkv.HistoryMode(history.ModeFull, 0))
			return &Instance{
				Sys: store.System(0), Obj: spec.Register{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodWrite:
						out := store.PutArmed(pid, shardkvKey, op.Args[0], plan)
						return out.Resp, out.Status
					case spec.MethodRead:
						out := store.GetArmed(pid, shardkvKey, plan)
						return out.Resp, out.Status
					default:
						must(op, false)
						return 0, 0
					}
				},
				Crash: func() { store.CrashShard(0) },
			}
		},
		DefaultProgram: func(procs, ops int) Program {
			return mix(procs, ops, func(p, k int) spec.Operation {
				return spec.NewOp(spec.MethodWrite, val(p, ops, k))
			}, read)
		},
	}
}
