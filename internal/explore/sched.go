package explore

import (
	"fmt"

	"detectable/internal/nvm"
	"detectable/internal/spec"
)

// This file is the execution engine: it runs one N-process execution of a
// Program under a controlled scheduler, so that the interleaving of shared-
// memory primitives — and the placement of system-wide crashes — is decided
// entirely by an explicit sequence of Decisions instead of by the Go
// scheduler.
//
// Mechanism: every operation is executed via runtime.ExecuteArmed with a
// per-process schedPlan. An armed plan forces the PR 3 lock-free fast path
// off (Ctx.fast() is false), so every primitive of every attempt goes
// through Ctx.pre, which consults the plan while no cell lock is held. The
// plan parks the process there — before the primitive executes, which is
// exactly the crash-point granularity of the paper's model — and waits for
// the scheduler to resume it. Processes additionally park once before each
// operation of their program, so invocation logging is serialized too. At
// any instant at most one process goroutine is running; everything between
// two parks happens atomically with respect to the other processes, which
// makes an execution a deterministic function of its decision sequence.

// Decision is one scheduling choice: either resume process Pid until its
// next park (executing exactly the one primitive it is parked before, plus
// any crash-free local work up to the next scheduling point), or inject a
// system-wide crash (Crash true; Pid is -1 and ignored).
type Decision struct {
	Pid   int  `json:"pid"`
	Crash bool `json:"crash,omitempty"`
}

// String renders the decision compactly ("p1" or "CRASH").
func (d Decision) String() string {
	if d.Crash {
		return "CRASH"
	}
	return fmt.Sprintf("p%d", d.Pid)
}

// parkKind classifies why a process handed control back to the scheduler.
type parkKind int

const (
	// parkOpStart: the process is about to start the next operation of its
	// program. Nothing shared has been touched for that operation yet.
	parkOpStart parkKind = iota + 1
	// parkPrimitive: the process is inside Ctx.pre, immediately before
	// executing one shared-memory primitive.
	parkPrimitive
	// parkDone: the process finished its program (or died; see err).
	parkDone
)

// parkInfo is what a process reports when parking.
type parkInfo struct {
	pid  int
	kind parkKind
	op   nvm.OpKind // parkPrimitive: the pending primitive's kind
	cell int        // parkPrimitive: the pending primitive's cell identity
	err  error      // parkDone: non-nil if the process panicked
}

// parkView is the scheduler's snapshot of a parked process, kept in choice
// points for the sleep-set independence checks.
type parkView struct {
	atOpStart bool
	cell      int
	load      bool
}

func (i parkInfo) view() parkView {
	return parkView{atOpStart: i.kind == parkOpStart, cell: i.cell, load: i.op == nvm.KindLoad}
}

// stepInfo is the observed effect of one applied Decision, used to decide
// independence when filtering sleep sets. It is known only after the step
// ran: whether history events were emitted cannot be predicted beforehand.
type stepInfo struct {
	crash       bool
	fromOpStart bool // the step ran from an op-start park (no primitive executed)
	emitted     bool // the step appended history events
	cell        int  // the executed primitive's cell (parkPrimitive steps)
	load        bool // the executed primitive was a load
}

// indep reports whether a sleeping process's pending step s commutes with
// the just-executed step c — i.e. running them in either order yields the
// same memory state, the same history, and the same continuations. The
// relation is deliberately conservative:
//
//   - a crash is dependent with everything (it kills every in-flight
//     attempt and reverts shared-cache state);
//   - a step that emitted history events is dependent with everything we
//     cannot see inside (swapping a Return past an Invoke changes the
//     real-time order the linearizability check enforces);
//   - a step from an op-start park executes no primitive — its only
//     possible effect is one Invoke event — so it commutes with any
//     non-crash, non-emitting step, in both roles;
//   - otherwise two primitives commute iff they touch different cells or
//     are both loads.
func indep(s parkView, c stepInfo) bool {
	if c.crash || c.emitted {
		return false
	}
	if c.fromOpStart || s.atOpStart {
		return true
	}
	if s.cell != c.cell {
		return true
	}
	return s.load && c.load
}

// resumeMsg is the scheduler→process half of the park handshake.
type resumeMsg int

const (
	resumeGo resumeMsg = iota + 1
	// resumeAbort unwinds the process with an abortExec panic so the
	// scheduler can drain a half-finished execution (budget cutoffs, step
	// caps, internal errors) without leaking goroutines.
	resumeAbort
)

// abortExec is the panic payload used to unwind aborted processes.
type abortExec struct{}

// schedPlan is the nvm.CrashPlan armed on every attempt of every operation.
// It injects no crash itself (crashes are injected by the scheduler calling
// Instance.Crash between steps); its job is to park the process at every
// primitive so the step becomes a visible scheduling point.
type schedPlan struct {
	e   *execution
	pid int
}

// CrashBefore implements nvm.CrashPlan.
func (p *schedPlan) CrashBefore(ctx *nvm.Ctx, kind nvm.OpKind) bool {
	p.e.park(parkInfo{pid: p.pid, kind: parkPrimitive, op: kind, cell: ctx.CellID()})
	return false
}

// execution drives one run of a Program over a fresh Instance.
type execution struct {
	inst  *Instance
	procs int
	// crashAnywhere: the memory model keeps volatile shared-cache state, so
	// a crash between operations has an effect of its own (reverting
	// unflushed stores) and must be explored even while no primitive is in
	// flight. Private-cache instances skip those decisions: with nothing
	// volatile, such a crash is indistinguishable from one a step earlier.
	crashAnywhere bool

	parkedCh chan parkInfo
	resume   []chan resumeMsg

	parked map[int]parkInfo
	done   int
	failed error // first process panic, if any

	lastPid      int // previously stepped process, -1 after a crash / at start
	lastWasCrash bool
	crashes      int
	steps        int
}

// newExecution builds a fresh instance and launches the process goroutines;
// on return every process is parked (or done, for empty programs).
func newExecution(inst *Instance, prog Program) *execution {
	e := &execution{
		inst:          inst,
		procs:         len(prog),
		crashAnywhere: inst.Sys.Space().Model() != nvm.ModelPrivateCache,
		parkedCh:      make(chan parkInfo),
		resume:        make([]chan resumeMsg, len(prog)),
		parked:        make(map[int]parkInfo, len(prog)),
		lastPid:       -1,
	}
	for pid := range prog {
		e.resume[pid] = make(chan resumeMsg)
	}
	for pid, ops := range prog {
		go e.runProc(pid, ops)
	}
	for i := 0; i < e.procs; i++ {
		e.note(<-e.parkedCh)
	}
	return e
}

// runProc executes one process's program, parking before each operation.
func (e *execution) runProc(pid int, ops []spec.Operation) {
	defer func() {
		switch r := recover(); {
		case r == nil:
			e.parkedCh <- parkInfo{pid: pid, kind: parkDone}
		default:
			if _, ok := r.(abortExec); ok {
				e.parkedCh <- parkInfo{pid: pid, kind: parkDone}
				return
			}
			e.parkedCh <- parkInfo{pid: pid, kind: parkDone, err: fmt.Errorf("explore: process %d panicked: %v", pid, r)}
		}
	}()
	plan := &schedPlan{e: e, pid: pid}
	for _, op := range ops {
		e.park(parkInfo{pid: pid, kind: parkOpStart})
		e.inst.Run(pid, op, plan)
	}
}

// park hands control to the scheduler and blocks until resumed.
func (e *execution) park(info parkInfo) {
	e.parkedCh <- info
	if <-e.resume[info.pid] == resumeAbort {
		panic(abortExec{})
	}
}

func (e *execution) note(info parkInfo) {
	if info.kind == parkDone {
		e.done++
		if info.err != nil && e.failed == nil {
			e.failed = info.err
		}
		return
	}
	e.parked[info.pid] = info
}

// finished reports whether every process has completed its program.
func (e *execution) finished() bool { return e.done == e.procs }

// apply performs one Decision and returns its observed effects. The caller
// must only pass applicable decisions: a Step of a parked pid, or a Crash.
func (e *execution) apply(d Decision) (stepInfo, error) {
	e.steps++
	if d.Crash {
		if len(e.parked) == 0 {
			return stepInfo{}, fmt.Errorf("explore: crash decision with no process parked")
		}
		e.inst.Crash()
		e.crashes++
		e.lastPid = -1
		e.lastWasCrash = true
		return stepInfo{crash: true}, nil
	}
	info, ok := e.parked[d.Pid]
	if !ok {
		return stepInfo{}, fmt.Errorf("explore: decision %s targets a process that is not parked", d)
	}
	delete(e.parked, d.Pid)
	before := e.inst.Sys.Log().Appended()
	e.resume[d.Pid] <- resumeGo
	e.note(<-e.parkedCh) // only d.Pid can send: all other processes are parked or done
	e.lastPid = d.Pid
	e.lastWasCrash = false
	if e.failed != nil {
		return stepInfo{}, e.failed
	}
	return stepInfo{
		fromOpStart: info.kind == parkOpStart,
		emitted:     e.inst.Sys.Log().Appended() > before,
		cell:        info.cell,
		load:        info.op == nvm.KindLoad,
	}, nil
}

// abort unwinds every still-parked process so the execution's goroutines
// exit, leaving nothing blocked on the scheduler.
func (e *execution) abort() {
	for pid := range e.parked {
		e.resume[pid] <- resumeAbort
		e.note(<-e.parkedCh)
	}
	e.parked = nil
}
