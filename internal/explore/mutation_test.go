package explore_test

import (
	"testing"
	"time"

	"detectable/internal/explore"
	"detectable/internal/queue"
	"detectable/internal/rcas"
	"detectable/internal/rw"
	"detectable/internal/spec"
)

// The mutation smoke-check: each test seeds one known detectability bug
// (dropping exactly one persist/clear step whose necessity the paper
// proves), asserts the explorer produces a counterexample for it, asserts
// the counterexample replays deterministically to the same violation, and
// then asserts the unmutated algorithm passes the identical search — so the
// checker itself is tested in both directions.

// hunt runs the explorer and demands a counterexample that replays.
func hunt(t *testing.T, object string, prog explore.Program, opt explore.Options) *explore.Trace {
	t.Helper()
	h, err := explore.ByName(object)
	if err != nil {
		t.Fatal(err)
	}
	res := explore.Run(h, prog, opt)
	if res.Err != nil {
		t.Fatalf("explorer error: %v", res.Err)
	}
	if res.Counterexample == nil {
		t.Fatalf("explorer missed the seeded %s bug (%d executions, complete=%v)",
			object, res.Stats.Executions, res.Complete)
	}
	t.Logf("counterexample after %d executions: %s (%s)",
		res.Stats.Executions, res.Counterexample, res.Counterexample.Note)
	rr, err := explore.Replay(*res.Counterexample)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Linearizable {
		t.Fatalf("counterexample did not reproduce under Replay")
	}
	return res.Counterexample
}

// clean re-runs the identical search on the healthy algorithm and demands
// silence.
func clean(t *testing.T, object string, prog explore.Program, opt explore.Options) {
	t.Helper()
	h, err := explore.ByName(object)
	if err != nil {
		t.Fatal(err)
	}
	res := explore.Run(h, prog, opt)
	if res.Err != nil {
		t.Fatalf("explorer error on healthy object: %v", res.Err)
	}
	if res.Counterexample != nil {
		t.Fatalf("false positive on healthy object:\n%s", res.Counterexample)
	}
	if !res.Complete {
		t.Fatalf("healthy search did not complete: %+v", res.Stats)
	}
}

var mutOpt = explore.Options{
	MaxCrashes:     1,
	MaxPreemptions: 1,
	MaxExecutions:  testExecs,
	Budget:         time.Minute,
}

// TestMutantRCASDropRDPersist: without line 33's persist of RD_p, a crash
// between the successful CAS and the response persist makes recovery
// report fail for a CAS whose new value is visible — the subsequent read
// returns a value no linearization of the surviving operations explains.
func TestMutantRCASDropRDPersist(t *testing.T) {
	prog := explore.Program{{spec.NewOp(spec.MethodCAS, 0, 1), spec.NewOp(spec.MethodRead)}}

	rcas.SetMutant(rcas.MutantDropRDPersist)
	t.Cleanup(func() { rcas.SetMutant(rcas.MutantNone) }) // survive a mid-hunt Fatal
	cx := hunt(t, "rcas", prog, mutOpt)
	rcas.SetMutant(rcas.MutantNone)

	// The same trace on the healthy algorithm is explainable.
	rr, err := explore.Replay(*cx)
	if err != nil {
		t.Fatalf("replaying on healthy rcas: %v", err)
	}
	if !rr.Linearizable {
		t.Fatalf("healthy rcas fails the mutant's schedule: %+v", rr.Report)
	}
	clean(t, "rcas", prog, mutOpt)
}

// TestMutantRWSkipToggleClear: without line 2's toggle-bit clear, the
// register loses its ABA protection. After two completed writes by the
// other process raised both toggle arrays, a crashed write that never
// reached R finds the stale bit raised and recovery wrongly claims the
// write was linearized — the writer's own subsequent read then observes a
// value that contradicts the claimed write.
func TestMutantRWSkipToggleClear(t *testing.T) {
	prog := explore.Program{
		{spec.NewOp(spec.MethodWrite, 1), spec.NewOp(spec.MethodRead)},
		{spec.NewOp(spec.MethodWrite, 2), spec.NewOp(spec.MethodWrite, 3)},
	}

	rw.SetMutant(rw.MutantSkipToggleClear)
	t.Cleanup(func() { rw.SetMutant(rw.MutantNone) }) // survive a mid-hunt Fatal
	hunt(t, "rw", prog, mutOpt)
	rw.SetMutant(rw.MutantNone)

	clean(t, "rw", prog, mutOpt)
}

// TestMutantQueueDropDeqTargetPersist: without the announced dequeue
// target, a crash after the claim CAS leaves recovery unable to see its own
// claim, so it returns fail for a dequeue that removed the head — the value
// vanishes, and the follow-up dequeue's Empty cannot be linearized.
func TestMutantQueueDropDeqTargetPersist(t *testing.T) {
	prog := explore.Program{{
		spec.NewOp(spec.MethodEnq, 1),
		spec.NewOp(spec.MethodDeq),
		spec.NewOp(spec.MethodDeq),
	}}

	queue.SetMutant(queue.MutantDropDeqTargetPersist)
	t.Cleanup(func() { queue.SetMutant(queue.MutantNone) }) // survive a mid-hunt Fatal
	hunt(t, "queue", prog, mutOpt)
	queue.SetMutant(queue.MutantNone)

	clean(t, "queue", prog, mutOpt)
}

// TestSleepPruningPreservesBugs validates the sleep-set pruning against an
// unpruned search: the seeded rcas bug must be found both ways. Sleep sets
// only engage under unbounded deepening (MaxPreemptions -1), so both runs
// use it.
func TestSleepPruningPreservesBugs(t *testing.T) {
	prog := explore.Program{{spec.NewOp(spec.MethodCAS, 0, 1), spec.NewOp(spec.MethodRead)}}
	rcas.SetMutant(rcas.MutantDropRDPersist)
	defer rcas.SetMutant(rcas.MutantNone)

	withSleep := mutOpt
	withSleep.MaxPreemptions = -1
	hunt(t, "rcas", prog, withSleep)

	noSleep := withSleep
	noSleep.DisableSleep = true
	hunt(t, "rcas", prog, noSleep)
}
