package explore

import (
	"encoding/json"
	"fmt"
	"strings"

	"detectable/internal/history"
	"detectable/internal/linearize"
)

// Trace is a self-contained, replayable schedule: the harness to rebuild,
// the program each process runs, and the exact decision sequence. A trace
// reported by Run reproduces its violation deterministically under Replay,
// so a counterexample found once in CI can be committed as a permanent
// regression test (see docs/TESTING.md).
type Trace struct {
	Object    string     `json:"object"`
	Procs     int        `json:"procs"`
	Program   Program    `json:"program"`
	Decisions []Decision `json:"decisions"`
	Note      string     `json:"note,omitempty"`
}

// String renders the schedule compactly: "rw 2p: p0 p0 CRASH p1 …".
func (t Trace) String() string {
	parts := make([]string, len(t.Decisions))
	for i, d := range t.Decisions {
		parts[i] = d.String()
	}
	return fmt.Sprintf("%s %dp: %s", t.Object, t.Procs, strings.Join(parts, " "))
}

// Marshal encodes the trace as indented JSON (the CLI's artifact format).
func (t Trace) Marshal() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// UnmarshalTrace decodes a trace produced by Marshal.
func UnmarshalTrace(b []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return Trace{}, fmt.Errorf("explore: bad trace: %w", err)
	}
	if len(t.Program) != t.Procs {
		return Trace{}, fmt.Errorf("explore: trace declares %d procs but programs for %d", t.Procs, len(t.Program))
	}
	return t, nil
}

// ReplayResult is the outcome of re-executing a trace.
type ReplayResult struct {
	// Linearizable is the checker's verdict on the replayed history.
	Linearizable bool
	// Report is the detectability accounting of the history.
	Report linearize.Report
	// Witness is a legal linearization order when Linearizable.
	Witness []linearize.OpRecord
	// Events is the replayed history, for diagnostics.
	Events []history.Event
}

// Replay re-executes t's schedule on a fresh instance and re-checks the
// recorded history. Executions are a deterministic function of the decision
// sequence, so a trace that witnessed a violation witnesses it again. If
// the trace ends before every process finished (e.g. a hand-shortened
// trace), the remainder runs under the deterministic default policy:
// continue the last process, else the lowest parked pid.
func Replay(t Trace) (ReplayResult, error) {
	h, err := ByName(t.Object)
	if err != nil {
		return ReplayResult{}, err
	}
	return ReplayWith(h, t)
}

// ReplayWith is Replay with an explicit harness, for traces of custom
// harnesses that are not in the registry (e.g. model variants built by
// tests); t.Object is informational only. Run verifies its counterexamples
// through this path, with the very harness that produced them.
func ReplayWith(h Harness, t Trace) (ReplayResult, error) {
	if len(t.Program) != t.Procs {
		return ReplayResult{}, fmt.Errorf("explore: trace declares %d procs but programs for %d", t.Procs, len(t.Program))
	}
	exec := newExecution(h.Build(t.Procs), t.Program)
	const replayCap = 1 << 16
	for i, d := range t.Decisions {
		if exec.finished() {
			exec.abort()
			return ReplayResult{}, fmt.Errorf("explore: decision %d (%s) is past the end of the execution", i, d)
		}
		if _, err := exec.apply(d); err != nil {
			exec.abort()
			return ReplayResult{}, fmt.Errorf("explore: decision %d: %w", i, err)
		}
	}
	for !exec.finished() {
		if exec.steps >= replayCap {
			exec.abort()
			return ReplayResult{}, fmt.Errorf("explore: replay exceeded %d steps (livelock?)", replayCap)
		}
		if _, err := exec.apply(exec.defaultDecision()); err != nil {
			exec.abort()
			return ReplayResult{}, err
		}
	}
	events := exec.inst.Sys.Log().Events()
	ok, witness, rep, err := linearize.ExplainEvents(exec.inst.Obj, events)
	if err != nil {
		return ReplayResult{}, err
	}
	return ReplayResult{Linearizable: ok, Report: rep, Witness: witness, Events: events}, nil
}

// defaultDecision picks the deterministic continuation: the last stepped
// process if still parked, otherwise the lowest parked pid.
func (e *execution) defaultDecision() Decision {
	if _, ok := e.parked[e.lastPid]; ok {
		return Decision{Pid: e.lastPid}
	}
	best := -1
	for pid := range e.parked {
		if best < 0 || pid < best {
			best = pid
		}
	}
	return Decision{Pid: best}
}
