package explore_test

import (
	"testing"
	"time"

	"detectable/internal/explore"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/rw"
	"detectable/internal/spec"
)

// rwModelHarness builds an unregistered rw harness over an explicit memory
// model (Section 6 of the paper): the registered "rw" harness uses the
// private-cache model; these variants run the same algorithm over
// shared-cache memory, where a crash reverts unflushed stores — so crash
// decisions between operations matter (execution.crashAnywhere).
func rwModelHarness(model nvm.Model) explore.Harness {
	return explore.Harness{
		Name: "rw@" + model.String(),
		Build: func(procs int) *explore.Instance {
			sys := runtime.NewSystemModel(procs, model)
			reg := rw.NewInt(sys, 0)
			return &explore.Instance{
				Sys: sys, Obj: spec.Register{},
				Run: func(pid int, op spec.Operation, plan nvm.CrashPlan) (int, runtime.Status) {
					switch op.Method {
					case spec.MethodWrite:
						out := runtime.ExecuteArmed(sys, pid, reg.WriteOp(pid, op.Args[0]), plan)
						return out.Resp, out.Status
					default:
						out := runtime.ExecuteArmed(sys, pid, reg.ReadOp(pid), plan)
						return out.Resp, out.Status
					}
				},
				Crash: func() { sys.Crash() },
			}
		},
	}
}

// TestSharedCacheModels pins the explorer's crash semantics across memory
// models with the paper's own separation:
//
//   - ModelSharedCacheRaw (no persistency instructions): a crash loses
//     unflushed effects of *completed* operations, so the register is not
//     durably linearizable — the explorer must find a counterexample, and
//     it must replay.
//   - ModelSharedCacheAuto (flush-after-write transformation): correctness
//     is restored — the identical search must come back clean.
func TestSharedCacheModels(t *testing.T) {
	prog := explore.Program{{spec.NewOp(spec.MethodWrite, 1), spec.NewOp(spec.MethodRead)}}
	opt := explore.Options{
		MaxCrashes:     1,
		MaxPreemptions: 1,
		MaxExecutions:  testExecs,
		Budget:         time.Minute,
	}

	raw := rwModelHarness(nvm.ModelSharedCacheRaw)
	res := explore.Run(raw, prog, opt)
	if res.Err != nil {
		t.Fatalf("raw model: explorer error: %v", res.Err)
	}
	if res.Counterexample == nil {
		t.Fatalf("raw shared-cache model: explorer missed the durability violation (%d executions)",
			res.Stats.Executions)
	}
	t.Logf("raw model counterexample after %d executions: %s", res.Stats.Executions, res.Counterexample)
	rr, err := explore.ReplayWith(raw, *res.Counterexample)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rr.Linearizable {
		t.Fatal("raw-model counterexample did not reproduce under ReplayWith")
	}

	auto := rwModelHarness(nvm.ModelSharedCacheAuto)
	res = explore.Run(auto, prog, opt)
	if res.Err != nil {
		t.Fatalf("auto model: explorer error: %v", res.Err)
	}
	if res.Counterexample != nil {
		t.Fatalf("flush-after-write model: false positive:\n%s", res.Counterexample)
	}
	if !res.Complete {
		t.Fatalf("auto model: search did not complete: %+v", res.Stats)
	}
}
