package explore_test

import (
	"reflect"
	"testing"
	"time"

	"detectable/internal/explore"
	"detectable/internal/spec"
)

// safety nets so a regression cannot wedge CI; the asserted bounds complete
// in well under these.
const (
	testBudget = 3 * time.Minute
	testExecs  = 2_000_000
)

// TestBoundedComplete verifies every core object at the PR's stated bound:
// 2 processes × 2 operations each, every crash point (crash budget 1,
// including crashes during recovery re-entries of the interrupted attempt),
// and every schedule with at most 1 preemption — executed literally, since
// finite-bound searches forgo sleep-set pruning. The search must complete
// (not stop on budget), find no counterexample, and report no
// infrastructure error.
func TestBoundedComplete(t *testing.T) {
	for _, h := range explore.Harnesses() {
		t.Run(h.Name, func(t *testing.T) {
			prog := h.DefaultProgram(2, 2)
			res := explore.Run(h, prog, explore.Options{
				MaxCrashes:     1,
				MaxPreemptions: 1,
				MaxExecutions:  testExecs,
				Budget:         testBudget,
			})
			if res.Err != nil {
				t.Fatalf("explorer error: %v", res.Err)
			}
			if res.Counterexample != nil {
				t.Fatalf("unexpected counterexample:\n%s", res.Counterexample)
			}
			if !res.Complete {
				t.Fatalf("search stopped before completing the bound: %+v", res.Stats)
			}
			t.Logf("%d executions (%d cutoffs, %d sleep skips) in %v",
				res.Stats.Executions, res.Stats.Cutoffs, res.Stats.SleepSkips, res.Elapsed)
		})
	}
}

// TestExhaustiveCrashFree fully exhausts the crash-free schedule space of a
// 2×1 program for every object: iterative deepening runs until a round
// prunes nothing on the preemption bound, so every interleaving has been
// explored up to Mazurkiewicz equivalence.
func TestExhaustiveCrashFree(t *testing.T) {
	for _, h := range explore.Harnesses() {
		t.Run(h.Name, func(t *testing.T) {
			// The counter's inc expands to a read/CAS retry loop, so its
			// schedule space keeps deepening well past where the others
			// exhaust; cap it at bound 3 and assert completeness there
			// (full exhaustion for it is a cmd/explore -preempt -1 job).
			maxPreempt := -1
			if h.Name == "counter" {
				maxPreempt = 3
			}
			prog := h.DefaultProgram(2, 1)
			res := explore.Run(h, prog, explore.Options{
				MaxCrashes:     0,
				MaxPreemptions: maxPreempt,
				MaxExecutions:  testExecs,
				Budget:         testBudget,
			})
			if res.Err != nil {
				t.Fatalf("explorer error: %v", res.Err)
			}
			if res.Counterexample != nil {
				t.Fatalf("unexpected counterexample:\n%s", res.Counterexample)
			}
			if !res.Complete {
				t.Fatalf("search did not complete: %+v", res.Stats)
			}
			if maxPreempt < 0 && !res.Exhausted {
				t.Fatalf("space not exhausted: %+v", res.Stats)
			}
			t.Logf("explored to preemption bound %d after %d executions in %v (exhausted=%v)",
				res.Stats.Bound, res.Stats.Executions, res.Elapsed, res.Exhausted)
		})
	}
}

// TestSoloCrashSweep exhausts a single-process program under a crash budget
// of 2: every placement of up to two crashes across the operation bodies
// AND their recovery re-entries (a crash during recovery forces a second
// re-entry, the paper's "recover as many times as crashes interrupt it").
func TestSoloCrashSweep(t *testing.T) {
	for _, h := range explore.Harnesses() {
		t.Run(h.Name, func(t *testing.T) {
			prog := h.DefaultProgram(1, 2)
			res := explore.Run(h, prog, explore.Options{
				MaxCrashes:     2,
				MaxPreemptions: -1,
				MaxExecutions:  testExecs,
				Budget:         testBudget,
			})
			if res.Err != nil {
				t.Fatalf("explorer error: %v", res.Err)
			}
			if res.Counterexample != nil {
				t.Fatalf("unexpected counterexample:\n%s", res.Counterexample)
			}
			if !res.Exhausted {
				t.Fatalf("space not exhausted: %+v", res.Stats)
			}
			t.Logf("exhausted after %d executions in %v", res.Stats.Executions, res.Elapsed)
		})
	}
}

// TestReplayDeterminism re-executes the same trace twice and demands
// event-identical histories: an execution is a function of its decisions.
func TestReplayDeterminism(t *testing.T) {
	h, err := explore.ByName("rw")
	if err != nil {
		t.Fatal(err)
	}
	trace := explore.Trace{
		Object:  "rw",
		Procs:   2,
		Program: h.DefaultProgram(2, 2),
		// An empty decision list replays under the deterministic default
		// policy; the point is that two replays agree event-for-event.
	}
	a, err := explore.Replay(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := explore.Replay(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("replays diverged:\n%v\nvs\n%v", a.Events, b.Events)
	}
	if !a.Linearizable || !b.Linearizable {
		t.Fatalf("default-policy replay not linearizable: %+v", a.Report)
	}
}

// TestTraceRoundTrip pins the JSON trace format: marshal, unmarshal, replay.
func TestTraceRoundTrip(t *testing.T) {
	h, err := explore.ByName("queue")
	if err != nil {
		t.Fatal(err)
	}
	trace := explore.Trace{
		Object:  "queue",
		Procs:   2,
		Program: h.DefaultProgram(2, 2),
		Note:    "round-trip fixture",
	}
	b, err := trace.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := explore.UnmarshalTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(trace, back) {
		t.Fatalf("round trip changed the trace:\n%+v\nvs\n%+v", trace, back)
	}
	if _, err := explore.Replay(back); err != nil {
		t.Fatalf("replaying round-tripped trace: %v", err)
	}
}

// TestReplayRejectsBadTraces: decisions naming unknown processes or unknown
// objects are errors, not crashes.
func TestReplayRejectsBadTraces(t *testing.T) {
	if _, err := explore.Replay(explore.Trace{Object: "no-such-object", Procs: 1, Program: explore.Program{nil}}); err == nil {
		t.Fatal("unknown object accepted")
	}
	h, _ := explore.ByName("rw")
	bad := explore.Trace{
		Object:    "rw",
		Procs:     1,
		Program:   h.DefaultProgram(1, 1),
		Decisions: []explore.Decision{{Pid: 7}},
	}
	if _, err := explore.Replay(bad); err == nil {
		t.Fatal("decision for unparked process accepted")
	}
}

// TestProgramShapes sanity-checks the default program generators.
func TestProgramShapes(t *testing.T) {
	for _, h := range explore.Harnesses() {
		prog := h.DefaultProgram(3, 2)
		if len(prog) != 3 {
			t.Fatalf("%s: %d procs", h.Name, len(prog))
		}
		if prog.NumOps() != 6 {
			t.Fatalf("%s: %d ops", h.Name, prog.NumOps())
		}
		for _, ops := range prog {
			for _, op := range ops {
				if op.Method == "" {
					t.Fatalf("%s: empty method", h.Name)
				}
			}
		}
	}
}

// TestRunRejectsOversizedPrograms: histories beyond the checker's 63-op
// limit surface as a configuration error, not a panic.
func TestRunRejectsOversizedPrograms(t *testing.T) {
	h, _ := explore.ByName("rw")
	big := make(explore.Program, 2)
	for p := range big {
		for k := 0; k < 40; k++ {
			big[p] = append(big[p], spec.NewOp(spec.MethodWrite, k+1))
		}
	}
	res := explore.Run(h, big, explore.Options{MaxPreemptions: 0, MaxExecutions: 4})
	if res.Err == nil {
		t.Fatal("expected an oversized-program error")
	}
}
