// Package perturb decides, by bounded exhaustive search over sequential
// histories, whether an object is doubly-perturbing (Definition 3 of the
// paper) — the property that makes auxiliary state unavoidable for
// detectable implementations (Theorem 2).
//
// An operation Op by process p witnesses that object O is doubly-perturbing
// if:
//
//  1. Op is perturbing with respect to some Op′ after a sequential history
//     H1 — running Op before Op′ changes Op′'s response; and
//  2. H1 ◦ Op ◦ Op′ has a p-free extension to a history H2 after which Op
//     (a second instance of it) is perturbing again.
//
// The search enumerates all states reachable within a depth bound. For
// finite-state objects (register, CAS, max register and bounded counter
// over a finite domain) the reachable state space saturates, so a negative
// answer is exhaustive, not merely bounded: this is how Lemma 4 (max
// register is NOT doubly-perturbing) is verified.
//
// The package also measures perturbation depth — how many times repeated
// instances of an operation family can change a probe's response — which
// separates Jayanti-style perturbable objects from doubly-perturbing ones:
// the max register is perturbable but not doubly-perturbing, while the
// bounded counter is doubly-perturbing but not perturbable (appendix of
// the paper).
package perturb

import (
	"fmt"
	"strings"

	"detectable/internal/spec"
)

// Witness records why an object is doubly-perturbing.
type Witness struct {
	// Op is the operation witnessing the property (Op_p in Definition 3).
	Op spec.Operation
	// H1 is the sequential history after which Op is first perturbing.
	H1 []spec.Operation
	// OpPrime is the operation whose response Op perturbs after H1.
	OpPrime spec.Operation
	// Extension is the p-free extension from H1◦Op◦OpPrime to H2.
	Extension []spec.Operation
	// OpPrime2 is the operation whose response the second instance of Op
	// perturbs after H2.
	OpPrime2 spec.Operation
}

// String renders the witness like the paper's lemma proofs.
func (w Witness) String() string {
	return fmt.Sprintf("op=%s H1=[%s] perturbs %s; ext=[%s] then perturbs %s",
		w.Op, joinOps(w.H1), w.OpPrime, joinOps(w.Extension), w.OpPrime2)
}

func joinOps(ops []spec.Operation) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// Result is the outcome of a doubly-perturbing search.
type Result struct {
	// Doubly reports whether a witness was found.
	Doubly bool
	// Witness is valid when Doubly is true.
	Witness Witness
	// Exhaustive reports that the reachable state space saturated within
	// the depth bound, so a negative answer is a proof for this domain.
	Exhaustive bool
	// StatesExplored counts distinct reachable states considered.
	StatesExplored int
}

// FindDoublyPerturbing searches for a Definition 3 witness for obj over the
// value domain {0..domain-1}, exploring histories of length up to maxDepth
// before Op and extensions of length up to maxDepth after it.
func FindDoublyPerturbing(obj spec.Object, domain, maxDepth int) Result {
	ops := obj.Ops(domain)
	states, saturated := reachable(obj, obj.Init(), ops, maxDepth)

	res := Result{Exhaustive: saturated, StatesExplored: len(states)}
	for s1, path1 := range states {
		for _, a := range ops {
			b, ok := perturbingAfter(obj, s1, a, ops)
			if !ok {
				continue
			}
			// Reach H2 via any extension of H1◦a◦b.
			sA, _ := obj.Apply(s1, a)
			sB, _ := obj.Apply(sA, b)
			ext, extSat := reachable(obj, sB, ops, maxDepth)
			for s3, path3 := range ext {
				if b2, ok := perturbingAfter(obj, s3, a, ops); ok {
					res.Doubly = true
					res.Witness = Witness{
						Op: a, H1: path1, OpPrime: b,
						Extension: path3, OpPrime2: b2,
					}
					res.Exhaustive = res.Exhaustive && extSat
					return res
				}
			}
		}
	}
	return res
}

// perturbingAfter reports whether op is perturbing after the given state:
// some probe returns different responses with and without op before it
// (Definition 3's condition on Op′).
func perturbingAfter(obj spec.Object, state string, op spec.Operation, probes []spec.Operation) (spec.Operation, bool) {
	sA, _ := obj.Apply(state, op)
	for _, b := range probes {
		_, r1 := obj.Apply(sA, b)
		_, r2 := obj.Apply(state, b)
		if r1 != r2 {
			return b, true
		}
	}
	return spec.Operation{}, false
}

// reachable returns every state reachable from start within maxDepth
// operations, each mapped to a shortest witness path. saturated reports
// that no new states appeared at the final depth — i.e. the enumeration
// covers the entire reachable state space.
func reachable(obj spec.Object, start string, ops []spec.Operation, maxDepth int) (map[string][]spec.Operation, bool) {
	paths := map[string][]spec.Operation{start: {}}
	frontier := []string{start}
	saturated := false
	for d := 0; d < maxDepth; d++ {
		var next []string
		for _, s := range frontier {
			base := paths[s]
			for _, op := range ops {
				ns, _ := obj.Apply(s, op)
				if _, seen := paths[ns]; seen {
					continue
				}
				path := make([]spec.Operation, len(base)+1)
				copy(path, base)
				path[len(base)] = op
				paths[ns] = path
				next = append(next, ns)
			}
		}
		if len(next) == 0 {
			saturated = true
			break
		}
		frontier = next
	}
	return paths, saturated
}

// PerturbationDepth measures how many times successive instances of an
// operation family can change the response of probe, starting from the
// object's initial state after applying setup. family(i) supplies the i-th
// instance (so families like writeMax(1), writeMax(2), … can escalate
// arguments, as Jayanti-style perturbation sequences may). The returned
// depth is capped at maxIters; reaching the cap indicates unbounded
// perturbing power (a perturbable object in the sense of Jayanti, Tan and
// Toueg), while a smaller value bounds it (e.g. 2 for the bounded counter,
// which therefore is not perturbable).
func PerturbationDepth(obj spec.Object, setup []spec.Operation, family func(i int) spec.Operation, probe spec.Operation, maxIters int) int {
	state := obj.Init()
	for _, op := range setup {
		state, _ = obj.Apply(state, op)
	}
	_, prev := obj.Apply(state, probe)
	changes := 0
	for i := 1; i <= maxIters; i++ {
		state, _ = obj.Apply(state, family(i))
		_, cur := obj.Apply(state, probe)
		if cur != prev {
			changes++
			prev = cur
		}
		if changes == maxIters {
			break
		}
	}
	return changes
}
