package perturb

import (
	"testing"

	"detectable/internal/spec"
)

// TestLemma3Register: a read/write register is doubly-perturbing; the
// paper's witness is write_p(v1) perturbing read_q.
func TestLemma3Register(t *testing.T) {
	res := FindDoublyPerturbing(spec.Register{}, 2, 4)
	if !res.Doubly {
		t.Fatal("register not found doubly-perturbing")
	}
	if res.Witness.Op.Method != spec.MethodWrite {
		t.Fatalf("witness op = %s, expected a write", res.Witness.Op)
	}
	t.Logf("witness: %s", res.Witness)
}

// TestLemma4MaxRegister: a max register is NOT doubly-perturbing. The
// reachable state space over a finite domain saturates, so the negative
// verdict is exhaustive.
func TestLemma4MaxRegister(t *testing.T) {
	res := FindDoublyPerturbing(spec.MaxRegister{}, 4, 8)
	if res.Doubly {
		t.Fatalf("max register found doubly-perturbing: %s", res.Witness)
	}
	if !res.Exhaustive {
		t.Fatal("search not exhaustive despite finite state space")
	}
	if res.StatesExplored < 4 {
		t.Fatalf("explored only %d states", res.StatesExplored)
	}
}

// TestLemma5Counter: a counter is doubly-perturbing (witness: inc_p
// perturbing read_q, with an empty extension).
func TestLemma5Counter(t *testing.T) {
	res := FindDoublyPerturbing(spec.Counter{}, 3, 4)
	if !res.Doubly {
		t.Fatal("counter not found doubly-perturbing")
	}
	if res.Witness.Op.Method != spec.MethodInc {
		t.Fatalf("witness op = %s, expected inc", res.Witness.Op)
	}
}

// TestLemma5BoundedCounter: the bounded counter supporting {0,1,2} is
// doubly-perturbing too (the appendix uses it to separate the classes).
func TestLemma5BoundedCounter(t *testing.T) {
	res := FindDoublyPerturbing(spec.Counter{Bound: 2}, 3, 4)
	if !res.Doubly {
		t.Fatal("bounded counter not found doubly-perturbing")
	}
}

// TestLemma6CAS: a compare-and-swap object is doubly-perturbing; the
// paper's witness is CAS_p(v0,v1) with extension CAS_q(v1,v0).
func TestLemma6CAS(t *testing.T) {
	res := FindDoublyPerturbing(spec.CAS{}, 2, 4)
	if !res.Doubly {
		t.Fatal("CAS not found doubly-perturbing")
	}
	if res.Witness.Op.Method != spec.MethodCAS && res.Witness.Op.Method != spec.MethodRead {
		t.Fatalf("witness op = %s", res.Witness.Op)
	}
	t.Logf("witness: %s", res.Witness)
}

// TestLemma7FAA: fetch-and-add is doubly-perturbing.
func TestLemma7FAA(t *testing.T) {
	res := FindDoublyPerturbing(spec.FAA{}, 3, 4)
	if !res.Doubly {
		t.Fatal("FAA not found doubly-perturbing")
	}
}

// TestLemma8Queue: a FIFO queue is doubly-perturbing; the paper's witness
// is Deq_p after Enq(v0)◦Enq(v1).
func TestLemma8Queue(t *testing.T) {
	res := FindDoublyPerturbing(spec.Queue{}, 2, 5)
	if !res.Doubly {
		t.Fatal("queue not found doubly-perturbing")
	}
	t.Logf("witness: %s", res.Witness)
}

// TestMaxRegisterPerturbable: writeMax(i) with escalating arguments changes
// a read's response unboundedly — the max register IS perturbable, despite
// not being doubly-perturbing (the incomparability of the two classes).
func TestMaxRegisterPerturbable(t *testing.T) {
	depth := PerturbationDepth(
		spec.MaxRegister{},
		nil,
		func(i int) spec.Operation { return spec.NewOp(spec.MethodWriteMax, i) },
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 50 {
		t.Fatalf("perturbation depth = %d, want the 50 cap (unbounded)", depth)
	}
}

// TestBoundedCounterNotPerturbable: increments change a read's response at
// most Bound times — the bounded counter is NOT perturbable, despite being
// doubly-perturbing.
func TestBoundedCounterNotPerturbable(t *testing.T) {
	depth := PerturbationDepth(
		spec.Counter{Bound: 2},
		nil,
		func(int) spec.Operation { return spec.NewOp(spec.MethodInc) },
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 2 {
		t.Fatalf("perturbation depth = %d, want exactly 2", depth)
	}
}

// TestUnboundedCounterPerturbable: the plain counter is perturbable.
func TestUnboundedCounterPerturbable(t *testing.T) {
	depth := PerturbationDepth(
		spec.Counter{},
		nil,
		func(int) spec.Operation { return spec.NewOp(spec.MethodInc) },
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 50 {
		t.Fatalf("perturbation depth = %d, want cap", depth)
	}
}

// TestTASDoublyPerturbing: resettable test-and-set is in the paper's
// doubly-perturbing class (mentioned alongside read/write, CAS and queue in
// Section 5).
func TestTASDoublyPerturbing(t *testing.T) {
	res := FindDoublyPerturbing(spec.TAS{}, 2, 4)
	if !res.Doubly {
		t.Fatal("resettable TAS not found doubly-perturbing")
	}
	t.Logf("witness: %s", res.Witness)
}

// TestSwapDoublyPerturbing: swap is doubly-perturbing (a perturbable object
// per Jayanti et al. that also satisfies Definition 3).
func TestSwapDoublyPerturbing(t *testing.T) {
	res := FindDoublyPerturbing(spec.Swap{}, 2, 4)
	if !res.Doubly {
		t.Fatal("swap not found doubly-perturbing")
	}
}

// TestRegisterPerturbableWithDistinctValues: repeated writes of DISTINCT
// values keep changing a read's response — the register is perturbable.
func TestRegisterPerturbableWithDistinctValues(t *testing.T) {
	depth := PerturbationDepth(
		spec.Register{},
		nil,
		func(i int) spec.Operation { return spec.NewOp(spec.MethodWrite, i) },
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 50 {
		t.Fatalf("perturbation depth = %d, want cap", depth)
	}
}

// TestQueuePerturbableWithPrefill: dequeues from a prefilled queue of
// distinct values keep changing a probe dequeue's response.
func TestQueuePerturbableWithPrefill(t *testing.T) {
	var setup []spec.Operation
	for i := 1; i <= 52; i++ {
		setup = append(setup, spec.NewOp(spec.MethodEnq, i))
	}
	depth := PerturbationDepth(
		spec.Queue{},
		setup,
		func(int) spec.Operation { return spec.NewOp(spec.MethodDeq) },
		spec.NewOp(spec.MethodDeq),
		50,
	)
	if depth != 50 {
		t.Fatalf("perturbation depth = %d, want cap", depth)
	}
}

// TestCASPerturbableWithAlternation: alternating cas(0,1)/cas(1,0) changes
// a read's response every time.
func TestCASPerturbableWithAlternation(t *testing.T) {
	depth := PerturbationDepth(
		spec.CAS{},
		nil,
		func(i int) spec.Operation {
			if i%2 == 1 {
				return spec.NewOp(spec.MethodCAS, 0, 1)
			}
			return spec.NewOp(spec.MethodCAS, 1, 0)
		},
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 50 {
		t.Fatalf("perturbation depth = %d, want cap", depth)
	}
}

// TestSetupApplied: the setup sequence shifts the starting state.
func TestSetupApplied(t *testing.T) {
	depth := PerturbationDepth(
		spec.Counter{Bound: 2},
		[]spec.Operation{spec.NewOp(spec.MethodInc)}, // start at 1 of 2
		func(int) spec.Operation { return spec.NewOp(spec.MethodInc) },
		spec.NewOp(spec.MethodRead),
		50,
	)
	if depth != 1 {
		t.Fatalf("perturbation depth = %d, want 1 (only one step of headroom left)", depth)
	}
}

// TestWitnessMatchesPaperLemma3 replays the exact construction from the
// paper's proof of Lemma 3 and validates it against the Definition 3
// checker's primitives.
func TestWitnessMatchesPaperLemma3(t *testing.T) {
	obj := spec.Register{}
	ops := obj.Ops(2)
	// H1 = empty; write(1) perturbs read.
	if _, ok := perturbingAfter(obj, obj.Init(), spec.NewOp(spec.MethodWrite, 1), ops); !ok {
		t.Fatal("write(1) not perturbing after empty history")
	}
	// H2 = write(1)◦read◦write(0): write(1) perturbing again.
	st := obj.Init()
	for _, op := range []spec.Operation{
		spec.NewOp(spec.MethodWrite, 1),
		spec.NewOp(spec.MethodRead),
		spec.NewOp(spec.MethodWrite, 0),
	} {
		st, _ = obj.Apply(st, op)
	}
	if _, ok := perturbingAfter(obj, st, spec.NewOp(spec.MethodWrite, 1), ops); !ok {
		t.Fatal("write(1) not perturbing after H2")
	}
}

// TestReachableSaturation: small finite objects saturate; the queue (whose
// state space is infinite) does not within the bound.
func TestReachableSaturation(t *testing.T) {
	_, sat := reachable(spec.Register{}, "0", spec.Register{}.Ops(2), 5)
	if !sat {
		t.Fatal("register state space did not saturate")
	}
	_, sat = reachable(spec.Queue{}, "", spec.Queue{}.Ops(2), 4)
	if sat {
		t.Fatal("queue state space reported saturated")
	}
}

// TestResultStringRendering sanity-checks the diagnostic output.
func TestResultStringRendering(t *testing.T) {
	res := FindDoublyPerturbing(spec.Register{}, 2, 3)
	if !res.Doubly {
		t.Fatal("no witness")
	}
	s := res.Witness.String()
	if s == "" {
		t.Fatal("empty witness rendering")
	}
}
