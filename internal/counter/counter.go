// Package counter builds recoverable exactly-once counters on top of the
// paper's bounded-space detectable CAS (internal/rcas), demonstrating the
// composability that detectability buys: because every crashed CAS reports
// either its response or a definite fail, the client retry loop can
// re-invoke on fail without ever double-applying an increment.
//
// This is exactly the "client operation can choose whether or not to
// re-invoke" pattern from the paper's discussion of detectability vs NRL.
// Without detectability (e.g. on a plain CAS), a crash mid-increment
// leaves the client unable to retry safely: the increment may or may not
// have landed.
package counter

import (
	"detectable/internal/nvm"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
)

// Counter is an N-process recoverable counter with exactly-once increments.
type Counter struct {
	sys *runtime.System
	cas *rcas.CAS[int]
}

// New allocates a counter (initially 0) in sys's memory space.
func New(sys *runtime.System) *Counter {
	return &Counter{sys: sys, cas: rcas.NewInt(sys, 0)}
}

// Inc increments the counter exactly once as process pid and returns the
// new value. Crashes during the underlying CAS operations are absorbed by
// their recovery functions; a fail verdict (not linearized) triggers a
// retry, a true verdict ends the operation, and a false verdict means the
// counter moved — reread and retry. plans optionally injects deterministic
// crashes into the successive CAS invocations (one plan per invocation).
func (c *Counter) Inc(pid int, plans ...nvm.CrashPlan) int {
	attempt := 0
	for {
		cur := c.read(pid)
		var plan nvm.CrashPlan
		if attempt < len(plans) {
			plan = plans[attempt]
		}
		attempt++
		out := c.cas.Cas(pid, cur, cur+1, plan)
		if out.Status.Linearized() && out.Resp {
			return cur + 1
		}
		// StatusFailed / StatusNotInvoked: not linearized, safe to retry.
		// Linearized false: lost a race, reread and retry.
	}
}

// IncArmed is Inc with plan armed on every Execute of the retry loop — the
// reads, the CAS attempts and all of their recovery re-entries — so a
// controlled scheduler (internal/explore) observes every primitive of the
// composed operation. It returns the new value.
func (c *Counter) IncArmed(pid int, plan nvm.CrashPlan) int {
	for {
		rd := runtime.ExecuteArmed(c.sys, pid, c.cas.ReadOp(pid), plan)
		if !rd.Status.Linearized() {
			continue
		}
		cur := rd.Resp
		out := runtime.ExecuteArmed(c.sys, pid, c.cas.CasOp(pid, cur, cur+1), plan)
		if out.Status.Linearized() && out.Resp {
			return cur + 1
		}
	}
}

// Value returns the counter's current value as observed by pid.
func (c *Counter) Value(pid int) int { return c.read(pid) }

// Peek returns the counter's value without a Ctx, for tests.
func (c *Counter) Peek() int { return c.cas.PeekPair().Val }

func (c *Counter) read(pid int) int {
	for {
		out := c.cas.Read(pid)
		if out.Status.Linearized() {
			return out.Resp
		}
	}
}

// FetchAdd is an N-process recoverable fetch-and-add with exactly-once
// addition, built the same way.
type FetchAdd struct {
	sys *runtime.System
	cas *rcas.CAS[int]
}

// NewFetchAdd allocates a fetch-and-add object (initially 0).
func NewFetchAdd(sys *runtime.System) *FetchAdd {
	return &FetchAdd{sys: sys, cas: rcas.NewInt(sys, 0)}
}

// Add atomically adds delta exactly once as process pid and returns the
// previous value.
func (f *FetchAdd) Add(pid, delta int, plans ...nvm.CrashPlan) int {
	attempt := 0
	for {
		var out runtime.Outcome[int]
		for {
			out = f.cas.Read(pid)
			if out.Status.Linearized() {
				break
			}
		}
		cur := out.Resp
		var plan nvm.CrashPlan
		if attempt < len(plans) {
			plan = plans[attempt]
		}
		attempt++
		res := f.cas.Cas(pid, cur, cur+delta, plan)
		if res.Status.Linearized() && res.Resp {
			return cur
		}
	}
}

// Peek returns the current value without a Ctx, for tests.
func (f *FetchAdd) Peek() int { return f.cas.PeekPair().Val }
