package counter

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// TestRaceStress is a short stress run aimed at the race detector:
// concurrent Inc/Value and FetchAdd processes with random crash plans, a
// crash-storm goroutine and peekers on the no-Ctx paths, all racing.
func TestRaceStress(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	c := New(sys)
	f := NewFetchAdd(sys)

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // crash storm
		defer aux.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				sys.Crash()
			}
		}
	}()
	go func() { // peeker
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Peek()
			_ = f.Peek()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 60; i++ {
				switch rng.Intn(3) {
				case 0:
					c.Inc(pid)
				case 1:
					c.Value(pid)
				default:
					f.Add(pid, 1+rng.Intn(3), randomPlan(rng))
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}

func randomPlan(rng *rand.Rand) nvm.CrashPlan {
	if rng.Intn(5) != 0 {
		return nvm.NeverCrash()
	}
	return nvm.CrashAtStep(uint64(1 + rng.Intn(10)))
}
