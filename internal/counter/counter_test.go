package counter

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

func TestIncSequential(t *testing.T) {
	sys := runtime.NewSystem(1)
	c := New(sys)
	for i := 1; i <= 10; i++ {
		if got := c.Inc(0); got != i {
			t.Fatalf("Inc #%d = %d", i, got)
		}
	}
	if got := c.Value(0); got != 10 {
		t.Fatalf("Value = %d", got)
	}
}

// TestIncExactlyOnceUnderCrashes injects crashes at every possible step of
// the underlying CAS; increments must never be lost or doubled.
func TestIncExactlyOnceUnderCrashes(t *testing.T) {
	sys := runtime.NewSystem(1)
	c := New(sys)
	total := 0
	for step := uint64(1); step <= 8; step++ {
		c.Inc(0, nvm.CrashAtStep(step))
		total++
		if got := c.Peek(); got != total {
			t.Fatalf("after crash-at-step-%d inc: value = %d, want %d", step, got, total)
		}
	}
}

func TestIncRandomCrashStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sys := runtime.NewSystem(1)
	c := New(sys)
	const incs = 60
	for i := 0; i < incs; i++ {
		var plans []nvm.CrashPlan
		for rng.Intn(2) == 0 { // geometric number of planned crashes
			plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(8))))
		}
		c.Inc(0, plans...)
	}
	if got := c.Peek(); got != incs {
		t.Fatalf("value = %d, want %d", got, incs)
	}
}

func TestIncConcurrent(t *testing.T) {
	const (
		procs = 4
		each  = 25
	)
	sys := runtime.NewSystem(procs)
	c := New(sys)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc(pid)
			}
		}(p)
	}
	wg.Wait()
	if got := c.Peek(); got != procs*each {
		t.Fatalf("value = %d, want %d", got, procs*each)
	}
}

func TestIncConcurrentWithStorm(t *testing.T) {
	const (
		procs = 3
		each  = 10
	)
	sys := runtime.NewSystem(procs)
	c := New(sys)
	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%1200 == 0 {
				sys.Crash()
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc(pid)
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	storm.Wait()
	if got := c.Peek(); got != procs*each {
		t.Fatalf("value = %d, want %d (exactly-once violated under storm)", got, procs*each)
	}
}

func TestFetchAddReturnsPrevious(t *testing.T) {
	sys := runtime.NewSystem(1)
	f := NewFetchAdd(sys)
	if got := f.Add(0, 5); got != 0 {
		t.Fatalf("first Add = %d, want 0", got)
	}
	if got := f.Add(0, 3); got != 5 {
		t.Fatalf("second Add = %d, want 5", got)
	}
	if got := f.Peek(); got != 8 {
		t.Fatalf("value = %d, want 8", got)
	}
}

func TestFetchAddExactlyOnceUnderCrashes(t *testing.T) {
	sys := runtime.NewSystem(1)
	f := NewFetchAdd(sys)
	want := 0
	for step := uint64(1); step <= 8; step++ {
		f.Add(0, 2, nvm.CrashAtStep(step))
		want += 2
		if got := f.Peek(); got != want {
			t.Fatalf("step %d: value = %d, want %d", step, got, want)
		}
	}
}

func TestFetchAddConcurrent(t *testing.T) {
	const (
		procs = 4
		each  = 20
	)
	sys := runtime.NewSystem(procs)
	f := NewFetchAdd(sys)
	var wg sync.WaitGroup
	seen := make([][]int, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seen[pid] = append(seen[pid], f.Add(pid, 1))
			}
		}(p)
	}
	wg.Wait()
	if got := f.Peek(); got != procs*each {
		t.Fatalf("value = %d, want %d", got, procs*each)
	}
	// Fetch-and-add(1) return values must be all distinct.
	dup := map[int]bool{}
	for _, s := range seen {
		for _, v := range s {
			if dup[v] {
				t.Fatalf("duplicate FAA return value %d", v)
			}
			dup[v] = true
		}
	}
}
