package spec

import "testing"

func TestTASSpec(t *testing.T) {
	o := TAS{}
	st := o.Init()
	st, resp := o.Apply(st, NewOp(MethodTAS))
	if resp != 0 {
		t.Fatalf("first tas = %d, want 0", resp)
	}
	st, resp = o.Apply(st, NewOp(MethodTAS))
	if resp != 1 {
		t.Fatalf("second tas = %d, want 1", resp)
	}
	st, resp = o.Apply(st, NewOp(MethodReset))
	if resp != Ack {
		t.Fatalf("reset = %d", resp)
	}
	_, resp = o.Apply(st, NewOp(MethodRead))
	if resp != 0 {
		t.Fatalf("read after reset = %d", resp)
	}
	if got := len(o.Ops(5)); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}
}

func TestSwapSpec(t *testing.T) {
	o := Swap{InitVal: 7}
	st := o.Init()
	st, resp := o.Apply(st, NewOp(MethodSwap, 3))
	if resp != 7 {
		t.Fatalf("swap = %d, want previous 7", resp)
	}
	_, resp = o.Apply(st, NewOp(MethodRead))
	if resp != 3 {
		t.Fatalf("read = %d, want 3", resp)
	}
	if got := len(o.Ops(2)); got != 3 {
		t.Fatalf("Ops = %d, want 3 (read + 2 swaps)", got)
	}
}

func TestTASUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TAS{}.Apply("0", NewOp(MethodEnq, 1))
}

func TestSwapUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Swap{}.Apply("0", NewOp(MethodInc))
}
