package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Register is the sequential specification of a read/write register over an
// integer domain, initialized to InitVal.
type Register struct {
	InitVal int
}

var _ Object = Register{}

// Name implements Object.
func (Register) Name() string { return "register" }

// Init implements Object.
func (r Register) Init() string { return strconv.Itoa(r.InitVal) }

// Apply implements Object. read() returns the current value; write(v)
// replaces it and returns Ack.
func (Register) Apply(state string, op Operation) (string, int) {
	switch op.Method {
	case MethodRead:
		return state, atoi(state)
	case MethodWrite:
		return strconv.Itoa(op.Args[0]), Ack
	default:
		panic(fmt.Sprintf("spec: register does not support %q", op.Method))
	}
}

// Ops implements Object.
func (Register) Ops(domain int) []Operation {
	ops := []Operation{NewOp(MethodRead)}
	for v := 0; v < domain; v++ {
		ops = append(ops, NewOp(MethodWrite, v))
	}
	return ops
}

// CAS is the sequential specification of a compare-and-swap object over an
// integer domain, initialized to InitVal. It also supports read.
type CAS struct {
	InitVal int
}

var _ Object = CAS{}

// Name implements Object.
func (CAS) Name() string { return "cas" }

// Init implements Object.
func (c CAS) Init() string { return strconv.Itoa(c.InitVal) }

// Apply implements Object. cas(old,new) swaps and returns True when the
// state equals old, and returns False otherwise; read() returns the value.
func (CAS) Apply(state string, op Operation) (string, int) {
	switch op.Method {
	case MethodRead:
		return state, atoi(state)
	case MethodCAS:
		if atoi(state) == op.Args[0] {
			return strconv.Itoa(op.Args[1]), True
		}
		return state, False
	default:
		panic(fmt.Sprintf("spec: cas does not support %q", op.Method))
	}
}

// Ops implements Object.
func (CAS) Ops(domain int) []Operation {
	ops := []Operation{NewOp(MethodRead)}
	for o := 0; o < domain; o++ {
		for n := 0; n < domain; n++ {
			ops = append(ops, NewOp(MethodCAS, o, n))
		}
	}
	return ops
}

// Counter is the sequential specification of a counter supporting inc() and
// read(). Bound > 0 caps the counter at Bound (the bounded counter of the
// appendix, which is doubly-perturbing but not perturbable); Bound == 0
// means unbounded.
type Counter struct {
	Bound int
}

var _ Object = Counter{}

// Name implements Object.
func (c Counter) Name() string {
	if c.Bound > 0 {
		return fmt.Sprintf("counter[0..%d]", c.Bound)
	}
	return "counter"
}

// Init implements Object.
func (Counter) Init() string { return "0" }

// Apply implements Object.
func (c Counter) Apply(state string, op Operation) (string, int) {
	n := atoi(state)
	switch op.Method {
	case MethodRead:
		return state, n
	case MethodInc:
		next := n + 1
		if c.Bound > 0 && next > c.Bound {
			next = c.Bound
		}
		return strconv.Itoa(next), Ack
	default:
		panic(fmt.Sprintf("spec: counter does not support %q", op.Method))
	}
}

// Ops implements Object.
func (Counter) Ops(int) []Operation {
	return []Operation{NewOp(MethodRead), NewOp(MethodInc)}
}

// FAA is the sequential specification of a fetch-and-add object.
type FAA struct{}

var _ Object = FAA{}

// Name implements Object.
func (FAA) Name() string { return "fetch-and-add" }

// Init implements Object.
func (FAA) Init() string { return "0" }

// Apply implements Object. faa(d) adds d and returns the previous value.
func (FAA) Apply(state string, op Operation) (string, int) {
	n := atoi(state)
	switch op.Method {
	case MethodRead:
		return state, n
	case MethodFAA:
		return strconv.Itoa(n + op.Args[0]), n
	default:
		panic(fmt.Sprintf("spec: faa does not support %q", op.Method))
	}
}

// Ops implements Object.
func (FAA) Ops(int) []Operation {
	return []Operation{NewOp(MethodRead), NewOp(MethodFAA, 1)}
}

// Queue is the sequential specification of a FIFO queue of integers,
// initially empty. State encoding: comma-separated values, oldest first.
type Queue struct{}

var _ Object = Queue{}

// Name implements Object.
func (Queue) Name() string { return "queue" }

// Init implements Object.
func (Queue) Init() string { return "" }

// Apply implements Object. enq(v) appends and returns Ack; deq() removes
// and returns the head, or Empty if the queue is empty.
func (Queue) Apply(state string, op Operation) (string, int) {
	switch op.Method {
	case MethodEnq:
		if state == "" {
			return strconv.Itoa(op.Args[0]), Ack
		}
		return state + "," + strconv.Itoa(op.Args[0]), Ack
	case MethodDeq:
		if state == "" {
			return state, Empty
		}
		head, rest, found := strings.Cut(state, ",")
		if !found {
			rest = ""
		}
		return rest, atoi(head)
	default:
		panic(fmt.Sprintf("spec: queue does not support %q", op.Method))
	}
}

// Ops implements Object. Enqueued values start at 1 so that Empty (-1) and
// values never collide with Ack in searches.
func (Queue) Ops(domain int) []Operation {
	ops := []Operation{NewOp(MethodDeq)}
	for v := 1; v <= domain; v++ {
		ops = append(ops, NewOp(MethodEnq, v))
	}
	return ops
}

// MaxRegister is the sequential specification of a max register: read()
// returns the largest value ever written via writemax(v). Lemma 4 of the
// paper proves it is not doubly-perturbing.
type MaxRegister struct{}

var _ Object = MaxRegister{}

// Name implements Object.
func (MaxRegister) Name() string { return "max-register" }

// Init implements Object.
func (MaxRegister) Init() string { return "0" }

// Apply implements Object.
func (MaxRegister) Apply(state string, op Operation) (string, int) {
	n := atoi(state)
	switch op.Method {
	case MethodRead:
		return state, n
	case MethodWriteMax:
		if op.Args[0] > n {
			return strconv.Itoa(op.Args[0]), Ack
		}
		return state, Ack
	default:
		panic(fmt.Sprintf("spec: max-register does not support %q", op.Method))
	}
}

// Ops implements Object.
func (MaxRegister) Ops(domain int) []Operation {
	ops := []Operation{NewOp(MethodRead)}
	for v := 0; v < domain; v++ {
		ops = append(ops, NewOp(MethodWriteMax, v))
	}
	return ops
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("spec: bad state encoding %q: %v", s, err))
	}
	return n
}
