package spec

import (
	"testing"
	"testing/quick"
)

func TestRegister(t *testing.T) {
	r := Register{InitVal: 5}
	st := r.Init()
	st, resp := r.Apply(st, NewOp(MethodRead))
	if resp != 5 {
		t.Fatalf("read initial = %d, want 5", resp)
	}
	st, resp = r.Apply(st, NewOp(MethodWrite, 9))
	if resp != Ack {
		t.Fatalf("write resp = %d, want Ack", resp)
	}
	_, resp = r.Apply(st, NewOp(MethodRead))
	if resp != 9 {
		t.Fatalf("read after write = %d, want 9", resp)
	}
}

func TestCAS(t *testing.T) {
	c := CAS{}
	st := c.Init()
	st, resp := c.Apply(st, NewOp(MethodCAS, 0, 3))
	if resp != True {
		t.Fatal("cas(0,3) on 0 returned False")
	}
	st2, resp := c.Apply(st, NewOp(MethodCAS, 0, 7))
	if resp != False {
		t.Fatal("cas(0,7) on 3 returned True")
	}
	if st2 != st {
		t.Fatalf("failed cas changed state %q -> %q", st, st2)
	}
	_, resp = c.Apply(st, NewOp(MethodRead))
	if resp != 3 {
		t.Fatalf("read = %d, want 3", resp)
	}
}

func TestCounterUnbounded(t *testing.T) {
	c := Counter{}
	st := c.Init()
	for i := 0; i < 5; i++ {
		st, _ = c.Apply(st, NewOp(MethodInc))
	}
	_, resp := c.Apply(st, NewOp(MethodRead))
	if resp != 5 {
		t.Fatalf("read = %d, want 5", resp)
	}
}

func TestCounterBounded(t *testing.T) {
	c := Counter{Bound: 2}
	st := c.Init()
	for i := 0; i < 5; i++ {
		st, _ = c.Apply(st, NewOp(MethodInc))
	}
	_, resp := c.Apply(st, NewOp(MethodRead))
	if resp != 2 {
		t.Fatalf("bounded read = %d, want cap 2", resp)
	}
}

func TestFAA(t *testing.T) {
	f := FAA{}
	st := f.Init()
	st, resp := f.Apply(st, NewOp(MethodFAA, 1))
	if resp != 0 {
		t.Fatalf("first faa = %d, want 0 (previous value)", resp)
	}
	_, resp = f.Apply(st, NewOp(MethodFAA, 1))
	if resp != 1 {
		t.Fatalf("second faa = %d, want 1", resp)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := Queue{}
	st := q.Init()
	st, _ = q.Apply(st, NewOp(MethodEnq, 1))
	st, _ = q.Apply(st, NewOp(MethodEnq, 2))
	st, _ = q.Apply(st, NewOp(MethodEnq, 3))
	want := []int{1, 2, 3, Empty}
	for i, w := range want {
		var resp int
		st, resp = q.Apply(st, NewOp(MethodDeq))
		if resp != w {
			t.Fatalf("deq #%d = %d, want %d", i, resp, w)
		}
	}
}

func TestQueueDeqEmptyKeepsState(t *testing.T) {
	q := Queue{}
	st, resp := q.Apply(q.Init(), NewOp(MethodDeq))
	if resp != Empty || st != "" {
		t.Fatalf("deq on empty = (%q, %d), want (\"\", Empty)", st, resp)
	}
}

func TestMaxRegister(t *testing.T) {
	m := MaxRegister{}
	st := m.Init()
	st, _ = m.Apply(st, NewOp(MethodWriteMax, 4))
	st, _ = m.Apply(st, NewOp(MethodWriteMax, 2))
	_, resp := m.Apply(st, NewOp(MethodRead))
	if resp != 4 {
		t.Fatalf("read = %d, want 4 (monotone)", resp)
	}
}

// TestMaxRegisterMonotone checks by property that the max register's value
// never decreases under any operation sequence.
func TestMaxRegisterMonotone(t *testing.T) {
	m := MaxRegister{}
	f := func(writes []uint8) bool {
		st := m.Init()
		prev := 0
		for _, w := range writes {
			st, _ = m.Apply(st, NewOp(MethodWriteMax, int(w%16)))
			_, cur := m.Apply(st, NewOp(MethodRead))
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQueueEnqDeqRoundTrip checks by property that enqueuing a sequence and
// dequeuing it returns the sequence in order.
func TestQueueEnqDeqRoundTrip(t *testing.T) {
	q := Queue{}
	f := func(vals []uint8) bool {
		st := q.Init()
		for _, v := range vals {
			st, _ = q.Apply(st, NewOp(MethodEnq, int(v)+1))
		}
		for _, v := range vals {
			var resp int
			st, resp = q.Apply(st, NewOp(MethodDeq))
			if resp != int(v)+1 {
				return false
			}
		}
		_, resp := q.Apply(st, NewOp(MethodDeq))
		return resp == Empty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpsGenerators(t *testing.T) {
	cases := []struct {
		obj    Object
		domain int
		want   int
	}{
		{Register{}, 3, 4},    // read + 3 writes
		{CAS{}, 2, 5},         // read + 4 cas combos
		{Counter{}, 5, 2},     // read + inc
		{FAA{}, 5, 2},         // read + faa(1)
		{Queue{}, 2, 3},       // deq + 2 enqs
		{MaxRegister{}, 3, 4}, // read + 3 writemaxes
	}
	for _, tc := range cases {
		if got := len(tc.obj.Ops(tc.domain)); got != tc.want {
			t.Errorf("%s.Ops(%d): got %d ops, want %d", tc.obj.Name(), tc.domain, got, tc.want)
		}
	}
}

func TestOperationKeyAndString(t *testing.T) {
	op := NewOp(MethodCAS, 0, 1)
	if op.Key() != "cas:0:1" {
		t.Fatalf("Key = %q", op.Key())
	}
	if op.String() != "cas(0,1)" {
		t.Fatalf("String = %q", op.String())
	}
	if NewOp(MethodRead).String() != "read()" {
		t.Fatalf("String = %q", NewOp(MethodRead).String())
	}
}

func TestUnsupportedMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("register.Apply(enq) did not panic")
		}
	}()
	Register{}.Apply("0", NewOp(MethodEnq, 1))
}
