// Package spec defines sequential specifications for the shared objects
// studied in the paper: read/write register, compare-and-swap, counter
// (bounded and unbounded), fetch-and-add, FIFO queue and max register.
//
// A specification is a deterministic transition function over an encoded
// state. The same specifications drive three consumers:
//
//   - the durable-linearizability checker (internal/linearize), which
//     searches for a legal sequential witness of a recorded concurrent
//     history;
//   - the doubly-perturbing analyzer (internal/perturb), which searches
//     sequential histories for the witnesses required by Definition 3 of
//     the paper (Lemmas 3–8);
//   - the example applications' reference models.
//
// States are encoded as strings so that heterogeneous objects (a queue's
// state is a sequence, a register's a single value) share one interface and
// can be used as map keys during search.
package spec

import (
	"fmt"
	"strings"
)

// Method names used by the built-in objects.
const (
	MethodRead     = "read"
	MethodWrite    = "write"
	MethodCAS      = "cas"
	MethodInc      = "inc"
	MethodFAA      = "faa"
	MethodEnq      = "enq"
	MethodDeq      = "deq"
	MethodWriteMax = "writemax"
)

// Distinguished response values.
const (
	// Ack is the response of operations that return no value (write, enq).
	Ack = 0
	// Empty is the response of a dequeue on an empty queue.
	Empty = -1
	// False and True encode boolean responses (CAS).
	False = 0
	True  = 1
)

// Operation is one abstract operation: a method name and its arguments as
// specified by the object's *abstract* interface. Per Definition 1 of the
// paper, auxiliary state passed via arguments is exactly data beyond these.
type Operation struct {
	Method string
	Args   []int
}

// NewOp builds an Operation.
func NewOp(method string, args ...int) Operation {
	return Operation{Method: method, Args: args}
}

// Key returns a canonical comparable encoding of the operation.
func (o Operation) Key() string {
	parts := make([]string, 0, len(o.Args)+1)
	parts = append(parts, o.Method)
	for _, a := range o.Args {
		parts = append(parts, fmt.Sprint(a))
	}
	return strings.Join(parts, ":")
}

// String renders the operation like "cas(0,1)".
func (o Operation) String() string {
	args := make([]string, len(o.Args))
	for i, a := range o.Args {
		args[i] = fmt.Sprint(a)
	}
	return fmt.Sprintf("%s(%s)", o.Method, strings.Join(args, ","))
}

// Object is a deterministic sequential specification.
type Object interface {
	// Name identifies the object type (e.g. "register").
	Name() string
	// Init returns the encoded initial state.
	Init() string
	// Apply performs op on the encoded state, returning the next state and
	// the operation's response.
	Apply(state string, op Operation) (next string, resp int)
	// Ops enumerates the candidate operations over a value domain
	// {0, ..., domain-1}, used by bounded searches.
	Ops(domain int) []Operation
}
