package spec

import (
	"fmt"
	"strconv"
)

// Additional method names.
const (
	MethodTAS   = "tas"
	MethodReset = "reset"
	MethodSwap  = "swap"
)

// TAS is the sequential specification of a resettable test-and-set object:
// tas() returns the previous bit and sets it; reset() clears it. The paper
// cites the result of Attiya et al. that lock-free detectable test-and-set
// from (non-recoverable) test-and-set objects needs unbounded space, and
// includes resettable TAS in the doubly-perturbing class of Theorem 2.
type TAS struct{}

var _ Object = TAS{}

// Name implements Object.
func (TAS) Name() string { return "test-and-set" }

// Init implements Object.
func (TAS) Init() string { return "0" }

// Apply implements Object.
func (TAS) Apply(state string, op Operation) (string, int) {
	switch op.Method {
	case MethodTAS:
		return "1", atoi(state)
	case MethodReset:
		return "0", Ack
	case MethodRead:
		return state, atoi(state)
	default:
		panic(fmt.Sprintf("spec: tas does not support %q", op.Method))
	}
}

// Ops implements Object.
func (TAS) Ops(int) []Operation {
	return []Operation{NewOp(MethodTAS), NewOp(MethodReset), NewOp(MethodRead)}
}

// Swap is the sequential specification of a swap object: swap(v) installs v
// and returns the previous value.
type Swap struct {
	InitVal int
}

var _ Object = Swap{}

// Name implements Object.
func (Swap) Name() string { return "swap" }

// Init implements Object.
func (s Swap) Init() string { return strconv.Itoa(s.InitVal) }

// Apply implements Object.
func (Swap) Apply(state string, op Operation) (string, int) {
	switch op.Method {
	case MethodSwap:
		return strconv.Itoa(op.Args[0]), atoi(state)
	case MethodRead:
		return state, atoi(state)
	default:
		panic(fmt.Sprintf("spec: swap does not support %q", op.Method))
	}
}

// Ops implements Object.
func (Swap) Ops(domain int) []Operation {
	ops := []Operation{NewOp(MethodRead)}
	for v := 0; v < domain; v++ {
		ops = append(ops, NewOp(MethodSwap, v))
	}
	return ops
}
