package rcas

// Mutant selects a seeded detectability bug. The mutation smoke-check in
// internal/explore enables one, asserts the schedule explorer produces a
// counterexample, and restores MutantNone — validating that the checker
// catches real protocol violations. Production code never sets a mutant.
type Mutant int

// Seeded bugs.
const (
	// MutantNone is the unmutated algorithm.
	MutantNone Mutant = iota
	// MutantDropRDPersist skips line 33's persist of RD_p (the flipped
	// vec[p] value) before the CAS attempt. Recovery's line 43 then
	// compares the live bit against a stale RD_p: a CAS that succeeded
	// right before the crash is reported as fail, yet its new value is
	// visible — exactly the violation Lemma 2's invariant rules out.
	MutantDropRDPersist
)

// mutant is read on the operation path; it is written only by tests, before
// any operation runs (the write happens-before the goroutines that read it).
var mutant Mutant

// SetMutant installs m until the next call. Tests must restore MutantNone.
func SetMutant(m Mutant) { mutant = m }
