package rcas

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// TestRaceStress is a short stress run aimed at the race detector:
// concurrent Cas/Read processes with random crash plans, a crash-storm
// goroutine and a peeker on the no-Ctx inspection path, all racing.
func TestRaceStress(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	o := NewInt(sys, 0)

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // crash storm
		defer aux.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				sys.Crash()
			}
		}
	}()
	go func() { // peeker
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = o.PeekPair()
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 300; i++ {
				var plan nvm.CrashPlan
				if rng.Intn(5) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(10)))
				}
				if rng.Intn(3) == 0 {
					o.Read(pid, plan)
				} else {
					o.Cas(pid, rng.Intn(3), rng.Intn(3), plan)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}
