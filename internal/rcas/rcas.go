// Package rcas implements Algorithm 2 of the paper: the first wait-free
// bounded-space detectable CAS object.
//
// The object's entire shared state is a single cell C holding a pair
// ⟨val, vec⟩: the application value and an N-bit vector with one bit per
// process. A Cas(old, new) by process p that is about to attempt the swap
// first persists the flipped value of its own bit (RDp, line 33) and a
// checkpoint (line 34), then performs one atomic CAS that simultaneously
// installs the new value and flips vec[p] (line 35).
//
// Detectability rests on the invariant proved in Lemma 2: p is the only
// process that ever changes vec[p], it changes it exactly on p's successful
// CAS, and the bit stays flipped until p's next successful CAS. Upon
// recovery, "vec[p] == RDp" therefore certifies that the crashed CAS
// succeeded (return true); otherwise it either failed or never executed
// (return fail).
//
// The object uses Θ(N) shared bits beyond the value — which Theorem 1
// (reproduced in internal/model) proves asymptotically optimal.
package rcas

import (
	"fmt"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Pair is the content of the shared cell C: the application value and the
// N-bit per-process flip vector.
type Pair[V comparable] struct {
	Val V
	Vec uint64
}

// Bit reports vec[p].
func (pr Pair[V]) Bit(p int) bool { return pr.Vec>>uint(p)&1 == 1 }

// CAS is an N-process detectable compare-and-swap object over value domain
// V. All exported methods are safe for concurrent use by distinct
// processes; a single process must not run two operations concurrently.
type CAS[V comparable] struct {
	sys *runtime.System
	n   int
	enc func(V) int

	// c is the shared cell C = ⟨val, vec⟩, initially ⟨vinit, 0…0⟩.
	c nvm.CASRegister[Pair[V]]
	// rd[p] is p's private non-volatile recovery bit: the flipped value of
	// vec[p] persisted immediately before the CAS attempt.
	rd []nvm.CASRegister[bool]

	cAnn []*runtime.Ann[bool]
	rAnn []*runtime.Ann[V]

	// Cached per-process operation closures: the hot path builds no
	// closures. casArgs[p] stages the (old, new) arguments of p's pending
	// Cas — volatile helper state the recovery function never reads.
	casArgs  []casArg[V]
	casAnnFn []func(*nvm.Ctx)
	casBodFn []func(*nvm.Ctx) bool
	casRecFn []func(*nvm.Ctx) (bool, bool)
	readOps  []runtime.Op[V]
}

type casArg[V comparable] struct{ old, new V }

// New allocates a detectable CAS object in sys's memory space, initialized
// to vinit. enc encodes values for history logging. New panics if sys has
// more than 64 processes (the flip vector is packed in a uint64; the paper
// likewise packs it alongside the value in a single variable).
func New[V comparable](sys *runtime.System, vinit V, enc func(V) int) *CAS[V] {
	n := sys.N()
	if n > 64 {
		panic(fmt.Sprintf("rcas: %d processes exceed the 64-bit flip vector", n))
	}
	sp := sys.Space()
	o := &CAS[V]{
		sys: sys,
		n:   n,
		enc: enc,
		c:   nvm.NewWord(sp, Pair[V]{Val: vinit}),
	}
	for p := 0; p < n; p++ {
		o.rd = append(o.rd, nvm.NewWord(sp, false))
		o.cAnn = append(o.cAnn, runtime.NewAnn[bool](sp))
		o.rAnn = append(o.rAnn, runtime.NewAnn[V](sp))
	}
	o.casArgs = make([]casArg[V], n)
	for p := 0; p < n; p++ {
		o.casAnnFn = append(o.casAnnFn, o.makeCasAnnounce(p))
		o.casBodFn = append(o.casBodFn, o.makeCasBody(p))
		o.casRecFn = append(o.casRecFn, o.makeCasRecover(p))
		o.readOps = append(o.readOps, o.makeReadOp(p))
	}
	return o
}

// NewInt allocates a detectable CAS object over int values.
func NewInt(sys *runtime.System, vinit int) *CAS[int] {
	return New(sys, vinit, runtime.EncodeInt)
}

// Cas performs a detectable Cas(old, new) as process pid, following the
// crash-recovery protocol. plans optionally inject deterministic crashes.
func (o *CAS[V]) Cas(pid int, old, new V, plans ...nvm.CrashPlan) runtime.Outcome[bool] {
	return runtime.Execute(o.sys, pid, o.CasOp(pid, old, new), plans...)
}

// Read performs a detectable Read() as process pid.
func (o *CAS[V]) Read(pid int, plans ...nvm.CrashPlan) runtime.Outcome[V] {
	return runtime.Execute(o.sys, pid, o.ReadOp(pid), plans...)
}

// CasOp builds the recoverable Cas operation instance for pid. Exposed so
// schedule-driven tests and composed objects (internal/counter) can run it
// directly. The closures are pre-built per process; (old, new) are staged
// in casArgs[pid], which the body reads once at its start.
func (o *CAS[V]) CasOp(pid int, old, new V) runtime.Op[bool] {
	o.casArgs[pid] = casArg[V]{old: old, new: new}
	return runtime.Op[bool]{
		Desc:     spec.NewOp(spec.MethodCAS, o.enc(old), o.enc(new)),
		Announce: o.casAnnFn[pid],
		Body:     o.casBodFn[pid],
		Recover:  o.casRecFn[pid],
		Encode:   runtime.EncodeBool,
	}
}

func (o *CAS[V]) makeCasAnnounce(pid int) func(*nvm.Ctx) {
	ann := o.cAnn[pid]
	return func(ctx *nvm.Ctx) { ann.Announce(ctx, "cas") }
}

func (o *CAS[V]) makeCasBody(pid int) func(*nvm.Ctx) bool {
	ann := o.cAnn[pid]
	return func(ctx *nvm.Ctx) bool {
		old, new := o.casArgs[pid].old, o.casArgs[pid].new // staged arguments
		cur := o.c.Load(ctx)                               // line 28
		if cur.Val != old {                                // line 29
			ann.SetResult(ctx, false) // line 30
			return false              // line 31
		}
		newvec := cur.Vec ^ 1<<uint(pid) // line 32: flip vec[p]
		if mutant != MutantDropRDPersist {
			o.rd[pid].Store(ctx, newvec>>uint(pid)&1 == 1) // line 33
		}
		ann.SetCP(ctx, 1) // line 34
		res := o.c.CompareAndSwap(ctx, cur, Pair[V]{Val: new, Vec: newvec}) // line 35
		ann.SetResult(ctx, res)                                             // line 36
		return res                                                          // line 37
	}
}

func (o *CAS[V]) makeCasRecover(pid int) func(*nvm.Ctx) (bool, bool) {
	ann := o.cAnn[pid]
	return func(ctx *nvm.Ctx) (bool, bool) {
		if r := ann.Result(ctx); r.Set { // line 38
			return r.Val, true // line 39
		}
		if ann.GetCP(ctx) == 0 { // line 40
			return false, false // line 41
		}
		cur := o.c.Load(ctx)                     // line 42
		if cur.Bit(pid) != o.rd[pid].Load(ctx) { // line 43
			return false, false // line 44: CAS failed or not performed
		}
		ann.SetResult(ctx, true) // line 45: CAS was successful
		return true, true        // line 46
	}
}

// ReadOp returns the recoverable Read operation instance for pid. The
// recovery function re-invokes Read when no response was persisted. Reads
// take no argument, so the whole Op is pre-built per process.
func (o *CAS[V]) ReadOp(pid int) runtime.Op[V] {
	return o.readOps[pid]
}

func (o *CAS[V]) makeReadOp(pid int) runtime.Op[V] {
	ann := o.rAnn[pid]
	body := func(ctx *nvm.Ctx) V {
		cur := o.c.Load(ctx)
		ann.SetResult(ctx, cur.Val)
		return cur.Val
	}
	return runtime.Op[V]{
		Desc:     spec.NewOp(spec.MethodRead),
		Announce: func(ctx *nvm.Ctx) { ann.Announce(ctx, "read") },
		Body:     body,
		Recover: func(ctx *nvm.Ctx) (V, bool) {
			if r := ann.Result(ctx); r.Set {
				return r.Val, true
			}
			return body(ctx), true
		},
		Encode: o.enc,
	}
}

// PeekPair returns C's current pair without a Ctx, for tests and checkers.
func (o *CAS[V]) PeekPair() Pair[V] { return o.c.Peek() }

// N returns the number of processes the object was allocated for.
func (o *CAS[V]) N() int { return o.n }
