package rcas

import (
	"math/rand"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Experiment E8: Section 6 of the paper claims that applying the syntactic
// flush-after-write transformation of Izraelevitz et al. carries the
// algorithms to the realistic shared-cache model unchanged, while omitting
// the persistency instructions does not.

// TestSharedCacheTransformationPreservesCorrectness runs Algorithm 2 under
// the shared-cache model with auto-flush: crash-at-every-step sweeps must
// behave exactly as in the private-cache model.
func TestSharedCacheTransformationPreservesCorrectness(t *testing.T) {
	for step := uint64(1); step <= 8; step++ {
		sys := runtime.NewSystemModel(2, nvm.ModelSharedCacheAuto)
		o := NewInt(sys, 0)
		out := o.Cas(0, 0, 5, nvm.CrashAtStep(step))
		pair := o.PeekPair()
		switch out.Status {
		case runtime.StatusNotInvoked, runtime.StatusFailed:
			if pair.Val != 0 {
				t.Fatalf("step %d: verdict %v but C = %+v", step, out.Status, pair)
			}
		case runtime.StatusRecovered:
			if !out.Resp || pair.Val != 5 {
				t.Fatalf("step %d: recovered %v, C = %+v", step, out.Resp, pair)
			}
		}
		ok, _, err := linearize.CheckLog(spec.CAS{}, sys.Log())
		if err != nil || !ok {
			t.Fatalf("step %d: history check ok=%v err=%v", step, ok, err)
		}
	}
}

// TestSharedCacheRandomSweep repeats the random solo sweep under the
// transformed shared-cache model.
func TestSharedCacheRandomSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 100; trial++ {
		sys := runtime.NewSystemModel(1, nvm.ModelSharedCacheAuto)
		o := NewInt(sys, 0)
		model := 0
		for i := 0; i < 5; i++ {
			var plans []nvm.CrashPlan
			if rng.Intn(2) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(12))))
			}
			old, new := rng.Intn(3), rng.Intn(3)
			out := o.Cas(0, old, new, plans...)
			if out.Status.Linearized() && out.Resp {
				model = new
			}
			if got := o.PeekPair().Val; got != model {
				t.Fatalf("trial %d: val=%d model=%d", trial, got, model)
			}
		}
	}
}

// TestRawSharedCacheLosesCompletedOps demonstrates why the transformation
// is necessary: without flushes, a crash erases the effect of an operation
// that already returned to its caller — a durable-linearizability
// violation that the checker catches.
func TestRawSharedCacheLosesCompletedOps(t *testing.T) {
	sys := runtime.NewSystemModel(2, nvm.ModelSharedCacheRaw)
	o := NewInt(sys, 0)

	out := o.Cas(0, 0, 5)
	if out.Status != runtime.StatusOK || !out.Resp {
		t.Fatalf("cas outcome %+v", out)
	}
	sys.Crash() // unflushed: the completed CAS's effect is lost

	if out := o.Read(1); out.Resp != 0 {
		t.Fatalf("read = %d; the unflushed effect unexpectedly survived", out.Resp)
	}
	ok, _, err := linearize.CheckLog(spec.CAS{}, sys.Log())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("checker accepted a history where a completed CAS evaporated")
	}
}

// TestRawSharedCacheFineWithoutCrashes: absent crashes the raw model is
// indistinguishable — the cache is just memory.
func TestRawSharedCacheFineWithoutCrashes(t *testing.T) {
	sys := runtime.NewSystemModel(2, nvm.ModelSharedCacheRaw)
	o := NewInt(sys, 0)
	o.Cas(0, 0, 5)
	o.Cas(1, 5, 9)
	if out := o.Read(0); out.Resp != 9 {
		t.Fatalf("read = %d", out.Resp)
	}
	ok, _, err := linearize.CheckLog(spec.CAS{}, sys.Log())
	if err != nil || !ok {
		t.Fatalf("crash-free raw history rejected: ok=%v err=%v", ok, err)
	}
}

// TestSharedCacheFlushCounts: the transformation's cost is visible in the
// flush statistics — a successful CAS path flushes once per store/CAS.
func TestSharedCacheFlushCounts(t *testing.T) {
	sys := runtime.NewSystemModel(1, nvm.ModelSharedCacheAuto)
	o := NewInt(sys, 0)
	o.Cas(0, 0, 5)
	if got := sys.Space().Stats().Flushes(); got == 0 {
		t.Fatal("no flushes recorded under the transformed model")
	}
	sys2 := runtime.NewSystem(1)
	o2 := NewInt(sys2, 0)
	o2.Cas(0, 0, 5)
	if got := sys2.Space().Stats().Flushes(); got != 0 {
		t.Fatalf("%d flushes recorded under the private-cache model", got)
	}
}
