package rcas

import (
	"testing"
	"testing/quick"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// quickOp is one randomly generated CAS invocation with an optional crash
// point, consumed by the property-based tests below.
type quickOp struct {
	Old, New uint8
	Crash    uint8 // 0 = no crash; otherwise crash before step Crash%12+1
}

func (o quickOp) plan() []nvm.CrashPlan {
	if o.Crash == 0 {
		return nil
	}
	return []nvm.CrashPlan{nvm.CrashAtStep(uint64(o.Crash%12 + 1))}
}

// TestQuickSoloCASConsistency: for ANY sequence of CAS invocations with
// arbitrary crash points, (a) every linearized response agrees with a
// sequential model, (b) every fail verdict leaves the object unchanged,
// and (c) the recorded history passes the durable-linearizability checker.
func TestQuickSoloCASConsistency(t *testing.T) {
	f := func(ops []quickOp) bool {
		if len(ops) > 10 {
			ops = ops[:10]
		}
		sys := runtime.NewSystem(1)
		o := NewInt(sys, 0)
		model := 0
		for _, op := range ops {
			old, new := int(op.Old%3), int(op.New%3)
			out := o.Cas(0, old, new, op.plan()...)
			if out.Status.Linearized() {
				if out.Resp != (model == old) {
					return false
				}
				if out.Resp {
					model = new
				}
			}
			if o.PeekPair().Val != model {
				return false
			}
		}
		ok, _, err := linearize.CheckLog(spec.CAS{}, sys.Log())
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVecFlipInvariant: the Lemma 2 invariant — vec[p] flips exactly
// on p's successful CAS — holds along any generated execution.
func TestQuickVecFlipInvariant(t *testing.T) {
	f := func(ops []quickOp) bool {
		if len(ops) > 10 {
			ops = ops[:10]
		}
		sys := runtime.NewSystem(1)
		o := NewInt(sys, 0)
		bit := false
		for _, op := range ops {
			out := o.Cas(0, int(op.Old%3), int(op.New%3), op.plan()...)
			if out.Status.Linearized() && out.Resp {
				bit = !bit
			}
			if o.PeekPair().Bit(0) != bit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
