package rcas

import (
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/linearize"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/spec"
)

// Body step offsets (after the 3-primitive announcement), success path:
//
//	step 4: line 28 load C
//	step 5: line 33 store RDp
//	step 6: line 34 CP := 1
//	step 7: line 35 CAS on C
//	step 8: line 36 persist result
const (
	stepLoadC    = 4
	stepStoreRD  = 5
	stepCP1      = 6
	stepCASPrim  = 7
	stepPersist  = 8
	lastBodyStep = 8
)

func checkDL(t *testing.T, sys *runtime.System, initVal int) linearize.Report {
	t.Helper()
	ok, rep, err := linearize.CheckLog(spec.CAS{InitVal: initVal}, sys.Log())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	if !ok {
		t.Fatalf("history not durably linearizable:\n%s", sys.Log())
	}
	return rep
}

func TestSequentialCas(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	if out := o.Cas(0, 0, 5); out.Status != runtime.StatusOK || !out.Resp {
		t.Fatalf("cas(0,5) on 0: %+v", out)
	}
	if out := o.Cas(1, 0, 9); out.Status != runtime.StatusOK || out.Resp {
		t.Fatalf("cas(0,9) on 5: %+v, want false", out)
	}
	if out := o.Read(1); out.Resp != 5 {
		t.Fatalf("read = %d, want 5", out.Resp)
	}
	checkDL(t, sys, 0)
}

func TestSuccessfulCasFlipsBit(t *testing.T) {
	sys := runtime.NewSystem(3)
	o := NewInt(sys, 0)
	if got := o.PeekPair().Bit(2); got {
		t.Fatal("vec[2] initially set")
	}
	o.Cas(2, 0, 1)
	if !o.PeekPair().Bit(2) {
		t.Fatal("vec[2] not flipped by successful CAS")
	}
	o.Cas(2, 1, 2)
	if o.PeekPair().Bit(2) {
		t.Fatal("vec[2] not flipped back by second successful CAS")
	}
}

func TestFailedCasLeavesBit(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	o.Cas(1, 7, 9) // fails: val is 0
	if o.PeekPair().Bit(1) {
		t.Fatal("vec[1] flipped by failed CAS")
	}
	if o.PeekPair().Val != 0 {
		t.Fatalf("val = %d, want 0", o.PeekPair().Val)
	}
}

// TestSoloCrashEveryStep injects a crash before every primitive of a solo
// successful-path Cas. Contract: fail ⟺ C unchanged; true ⟺ C swapped.
func TestSoloCrashEveryStep(t *testing.T) {
	for step := uint64(1); step <= lastBodyStep; step++ {
		sys := runtime.NewSystem(2)
		o := NewInt(sys, 0)
		out := o.Cas(0, 0, 5, nvm.CrashAtStep(step))

		pair := o.PeekPair()
		switch out.Status {
		case runtime.StatusOK:
			t.Fatalf("step %d: no crash fired", step)
		case runtime.StatusNotInvoked, runtime.StatusFailed:
			if pair.Val != 0 {
				t.Fatalf("step %d: verdict %v but C = %+v", step, out.Status, pair)
			}
		case runtime.StatusRecovered:
			if !out.Resp {
				// A recovered false is only possible when the CAS lost a
				// race; solo it must be true with the swap applied.
				t.Fatalf("step %d: recovered false in solo run", step)
			}
			if pair.Val != 5 || !pair.Bit(0) {
				t.Fatalf("step %d: recovered true but C = %+v", step, pair)
			}
		}
		checkDL(t, sys, 0)

		// Follow-up CAS from the observed state must work.
		cur := o.PeekPair().Val
		if out := o.Cas(1, cur, 42); !out.Status.Linearized() || !out.Resp {
			t.Fatalf("step %d: follow-up cas: %+v", step, out)
		}
	}
}

func TestCrashBeforeCASPrimitiveFails(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	out := o.Cas(0, 0, 5, nvm.CrashAtStep(stepCASPrim))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed (CAS never executed)", out.Status)
	}
	if o.PeekPair().Val != 0 {
		t.Fatal("C changed by failed op")
	}
	checkDL(t, sys, 0)
}

func TestCrashAfterCASRecoversTrue(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	out := o.Cas(0, 0, 5, nvm.CrashAtStep(stepPersist))
	if out.Status != runtime.StatusRecovered || !out.Resp {
		t.Fatalf("outcome %+v, want recovered true", out)
	}
	if o.PeekPair().Val != 5 {
		t.Fatalf("val = %d, want 5", o.PeekPair().Val)
	}
	checkDL(t, sys, 0)
}

// TestCrashAfterLostRace: a competitor's successful CAS lands between p's
// load and p's CAS primitive, p's CAS therefore fails, and the crash hits
// before the response is persisted. vec[p] ≠ RDp, so recovery returns fail.
func TestCrashAfterLostRace(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	p, q := 0, 1

	hook := &nvm.StepHook{
		Step: stepCASPrim, // immediately before p's CAS primitive
		Fn: func() {
			if out := o.Cas(q, 0, 9); !out.Resp {
				t.Error("q's CAS lost unexpectedly")
			}
		},
	}
	out := o.Cas(p, 0, 5, nvm.Plans{hook, nvm.CrashAtStep(stepPersist)})
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed (lost race, response not persisted)", out.Status)
	}
	if got := o.PeekPair().Val; got != 9 {
		t.Fatalf("val = %d, want q's 9", got)
	}
	checkDL(t, sys, 0)
}

// TestValueRestoredRaceSucceeds: q swaps the value away and back (0→9→0)
// while p is paused before its CAS primitive. q's two successful CASes flip
// vec[q] twice, fully restoring the pair, so p's CAS legitimately succeeds —
// and that is linearizable (the value really is 0 when p's CAS executes).
// The flip vector's job is different: only p can flip vec[p], so *recovery*
// can never be fooled about p's own CAS (TestCrashAfterLostRace).
func TestValueRestoredRaceSucceeds(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	p, q := 0, 1

	hook := &nvm.StepHook{
		Step: stepCASPrim,
		Fn: func() {
			o.Cas(q, 0, 9)
			o.Cas(q, 9, 0)
		},
	}
	out := o.Cas(p, 0, 5, hook)
	if out.Status != runtime.StatusOK || !out.Resp {
		t.Fatalf("outcome %+v, want completed true", out)
	}
	if got := o.PeekPair().Val; got != 5 {
		t.Fatalf("val = %d, want 5", got)
	}
	checkDL(t, sys, 0)
}

func TestValMismatchCrashBeforePersistFails(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 3)
	// val ≠ old: the body persists false at its 2nd primitive (overall step
	// 5). A crash before it leaves CP=0 → fail.
	out := o.Cas(0, 0, 5, nvm.CrashAtStep(5))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	checkDL(t, sys, 3)
}

// TestRecoverReturnsPersistedResult exercises lines 38-39: once the
// response is persisted (here by a completed false-returning Cas), any
// later recovery call returns it directly.
func TestRecoverReturnsPersistedResult(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 3)
	op := o.CasOp(0, 0, 5)
	out := runtime.Execute(sys, 0, op)
	if out.Status != runtime.StatusOK || out.Resp {
		t.Fatalf("outcome %+v, want completed false", out)
	}
	r, ok := op.Recover(sys.Space().Ctx(0, nil))
	if !ok || r {
		t.Fatalf("Recover = (%v, %v), want persisted false", r, ok)
	}

	// Same for a successful Cas whose response persist was interrupted and
	// then recovered (line 45 persists true); re-recovery hits line 38.
	op2 := o.CasOp(0, 3, 4)
	out = runtime.Execute(sys, 0, op2, nvm.CrashAtStep(stepPersist))
	if out.Status != runtime.StatusRecovered || !out.Resp {
		t.Fatalf("outcome %+v, want recovered true", out)
	}
	r, ok = op2.Recover(sys.Space().Ctx(0, nil))
	if !ok || !r {
		t.Fatalf("Recover = (%v, %v), want persisted true", r, ok)
	}
}

func TestCrashDuringRecoveryIdempotent(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 0)
	out := o.Cas(0, 0, 5,
		nvm.CrashAtStep(stepPersist), // body: crash after successful CAS
		nvm.CrashAtStep(2),           // crash 1st recovery attempt
		nvm.CrashAtStep(3),           // crash 2nd recovery attempt
	)
	if out.Status != runtime.StatusRecovered || !out.Resp {
		t.Fatalf("outcome %+v", out)
	}
	if out.Crashes != 3 {
		t.Fatalf("crashes = %d, want 3", out.Crashes)
	}
	checkDL(t, sys, 0)
}

func TestReadRecovery(t *testing.T) {
	sys := runtime.NewSystem(2)
	o := NewInt(sys, 8)
	out := o.Read(0, nvm.CrashAtStep(4)) // crash before the body's load
	if out.Status != runtime.StatusRecovered || out.Resp != 8 {
		t.Fatalf("outcome %+v", out)
	}
	checkDL(t, sys, 8)
}

// TestRandomSoloCrashes: single-process random CAS/read sequences with
// random crash points; the model tracks the value, every verdict and every
// history must be consistent.
func TestRandomSoloCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		sys := runtime.NewSystem(1)
		o := NewInt(sys, 0)
		model := 0
		for i := 0; i < 6; i++ {
			var plans []nvm.CrashPlan
			if rng.Intn(2) == 0 {
				plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(9))))
			}
			old, new := rng.Intn(3), rng.Intn(3)
			out := o.Cas(0, old, new, plans...)
			if out.Status.Linearized() {
				wantResp := model == old
				if out.Resp != wantResp {
					t.Fatalf("trial %d: cas(%d,%d) on %d returned %v", trial, old, new, model, out.Resp)
				}
				if out.Resp {
					model = new
				}
			}
			if got := o.PeekPair().Val; got != model {
				// Solo: fail verdicts must leave the object unchanged.
				t.Fatalf("trial %d: val=%d model=%d status=%v", trial, got, model, out.Status)
			}
		}
		checkDL(t, sys, 0)
	}
}

// TestConcurrentStressWithStorms: concurrent CAS/read workers under a crash
// storm; every batch history must be durably linearizable.
func TestConcurrentStressWithStorms(t *testing.T) {
	const (
		procs   = 3
		rounds  = 8
		opsEach = 5
	)
	for round := 0; round < rounds; round++ {
		sys := runtime.NewSystem(procs)
		o := NewInt(sys, 0)

		stop := make(chan struct{})
		var storm sync.WaitGroup
		storm.Add(1)
		go func() {
			defer storm.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				if i%800 == 0 {
					sys.Crash()
				}
			}
		}()

		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*10 + pid)))
				for i := 0; i < opsEach; i++ {
					if rng.Intn(3) == 0 {
						o.Read(pid)
					} else {
						o.Cas(pid, rng.Intn(3), rng.Intn(3))
					}
				}
			}(p)
		}
		wg.Wait()
		close(stop)
		storm.Wait()
		checkDL(t, sys, 0)
	}
}

// TestExactlyOnceSemantics uses the detectable verdicts to implement an
// exactly-once increment (re-invoke on fail, never on true) and checks no
// increment is lost or duplicated even under heavy crash injection.
func TestExactlyOnceSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sys := runtime.NewSystem(1)
	o := NewInt(sys, 0)
	const target = 40
	done := 0
	for done < target {
		cur := o.PeekPair().Val
		var plans []nvm.CrashPlan
		if rng.Intn(3) == 0 {
			plans = append(plans, nvm.CrashAtStep(uint64(1+rng.Intn(9))))
		}
		out := o.Cas(0, cur, cur+1, plans...)
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			if out.Resp {
				done++
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			// Not linearized: safe to re-invoke.
		}
	}
	if got := o.PeekPair().Val; got != target {
		t.Fatalf("value = %d, want %d (lost or duplicated increments)", got, target)
	}
}

func TestTooManyProcessesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for N > 64")
		}
	}()
	NewInt(runtime.NewSystem(65), 0)
}

func TestPairBit(t *testing.T) {
	p := Pair[int]{Vec: 0b101}
	if !p.Bit(0) || p.Bit(1) || !p.Bit(2) {
		t.Fatalf("Bit decoding wrong for vec %b", p.Vec)
	}
}
