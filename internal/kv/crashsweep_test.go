package kv

import (
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// sweepLimit bounds the crash-schedule sweeps; a sweep fails if it never
// observes a crash-free run, so no injectable step is silently skipped.
const sweepLimit = 40

// TestPutCrashScheduleSweep injects a crash before every primitive step of
// a solo Put over an existing key: the verdict must be definite, linearized
// means the new value is visible, fail/not-invoked means the old one is —
// never a lost or half-applied write.
func TestPutCrashScheduleSweep(t *testing.T) {
	const oldVal, newVal = 1, 9
	sawFail, sawRecovered := false, false
	for step := uint64(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		sys := runtime.NewSystem(2)
		s := New(sys)
		s.Put(0, "k", oldVal)

		out := s.Put(0, "k", newVal, nvm.CrashAtStep(step))
		got := s.Peek("k")
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			if out.Status == runtime.StatusRecovered {
				sawRecovered = true
			}
			if got != newVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, newVal)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if got != oldVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, oldVal)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}

		// The store must remain fully usable on every path.
		if n := s.PutRetry(1, "k", 42); n < 1 {
			t.Fatalf("step %d: follow-up PutRetry invocations = %d", step, n)
		}
		if got := s.Peek("k"); got != 42 {
			t.Fatalf("step %d: follow-up put lost, k = %d", step, got)
		}

		if out.Status == runtime.StatusOK {
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return
		}
	}
}

// TestDelCrashScheduleSweep is the deletion counterpart: a linearized Del
// leaves the key absent (zero), a definite fail leaves the old value.
func TestDelCrashScheduleSweep(t *testing.T) {
	const oldVal = 7
	sawFail, sawRecovered := false, false
	for step := uint64(1); ; step++ {
		if step > sweepLimit {
			t.Fatalf("no crash-free run within %d steps; raise sweepLimit", sweepLimit)
		}
		sys := runtime.NewSystem(2)
		s := New(sys)
		s.Put(0, "k", oldVal)

		out := s.Del(0, "k", nvm.CrashAtStep(step))
		got := s.Peek("k")
		switch out.Status {
		case runtime.StatusOK, runtime.StatusRecovered:
			if out.Status == runtime.StatusRecovered {
				sawRecovered = true
			}
			if got != 0 {
				t.Fatalf("step %d: verdict %v but k = %d, want deleted", step, out.Status, got)
			}
		case runtime.StatusFailed, runtime.StatusNotInvoked:
			sawFail = sawFail || out.Status == runtime.StatusFailed
			if got != oldVal {
				t.Fatalf("step %d: verdict %v but k = %d, want %d", step, out.Status, got, oldVal)
			}
		default:
			t.Fatalf("step %d: indefinite outcome %+v", step, out)
		}

		if out.Status == runtime.StatusOK {
			if !sawFail || !sawRecovered {
				t.Fatalf("sweep ended at step %d without both verdicts (fail=%v recovered=%v)",
					step, sawFail, sawRecovered)
			}
			return
		}
	}
}

// TestDelThenGetReadsZero pins the deletion semantics: a deleted key reads
// as the zero value, indistinguishable from a never-written key.
func TestDelThenGetReadsZero(t *testing.T) {
	sys := runtime.NewSystem(2)
	s := New(sys)
	s.Put(0, "k", 5)
	if out := s.Del(1, "k"); !out.Status.Linearized() {
		t.Fatalf("del outcome %+v", out)
	}
	if out := s.Get(0, "k"); out.Resp != 0 {
		t.Fatalf("get after del = %d, want 0", out.Resp)
	}
	if n := s.DelRetry(0, "never-written"); n < 1 {
		t.Fatalf("DelRetry invocations = %d", n)
	}
}
