package kv

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

func TestPutGet(t *testing.T) {
	sys := runtime.NewSystem(2)
	s := New(sys)
	s.Put(0, "x", 5)
	if out := s.Get(1, "x"); out.Resp != 5 {
		t.Fatalf("get x = %d", out.Resp)
	}
	if out := s.Get(1, "missing"); out.Resp != 0 {
		t.Fatalf("get missing = %d, want 0", out.Resp)
	}
}

func TestKeysSorted(t *testing.T) {
	sys := runtime.NewSystem(1)
	s := New(sys)
	s.Put(0, "b", 1)
	s.Put(0, "a", 2)
	s.Get(0, "c")
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestPutCrashVerdicts(t *testing.T) {
	sys := runtime.NewSystem(2)
	s := New(sys)
	s.Put(0, "k", 1)
	// Crash before the register's line-7 store (overall step 10): fail.
	out := s.Put(0, "k", 9, nvm.CrashAtStep(10))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("status %v, want failed", out.Status)
	}
	if got := s.Peek("k"); got != 1 {
		t.Fatalf("k = %d after failed put, want 1", got)
	}
	// Crash right after the store (step 11): recovered.
	out = s.Put(0, "k", 9, nvm.CrashAtStep(11))
	if out.Status != runtime.StatusRecovered {
		t.Fatalf("status %v, want recovered", out.Status)
	}
	if got := s.Peek("k"); got != 9 {
		t.Fatalf("k = %d, want 9", got)
	}
}

func TestPutRetryAlwaysLands(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys := runtime.NewSystem(1)
	s := New(sys)
	for i := 0; i < 30; i++ {
		key := string(rune('a' + rng.Intn(4)))
		s.PutRetry(0, key, i)
		if got := s.Peek(key); got != i {
			t.Fatalf("iter %d: %s = %d, want %d", i, key, got, i)
		}
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	const procs = 4
	sys := runtime.NewSystem(procs)
	s := New(sys)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 1; i <= 20; i++ {
				s.PutRetry(pid, keys[pid], i)
			}
		}(p)
	}
	wg.Wait()
	for _, k := range keys {
		if got := s.Peek(k); got != 20 {
			t.Fatalf("%s = %d, want 20", k, got)
		}
	}
}

func TestConcurrentSharedKeyWithStorm(t *testing.T) {
	const procs = 3
	sys := runtime.NewSystem(procs)
	s := New(sys)
	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%1500 == 0 {
				sys.Crash()
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 1; i <= 10; i++ {
				s.PutRetry(pid, "shared", pid*100+i)
				s.Get(pid, "shared")
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	storm.Wait()
	// The final value must be one of the written values.
	got := s.Peek("shared")
	valid := false
	for p := 0; p < procs; p++ {
		if got >= p*100+1 && got <= p*100+10 {
			valid = true
		}
	}
	if !valid {
		t.Fatalf("shared = %d, not any written value", got)
	}
}
