// Package kv is a recoverable key-value store built from the paper's
// bounded-space detectable read/write registers (internal/rw): one register
// per key, created on first use. It demonstrates composing many detectable
// objects behind one API while keeping per-object space bounded.
//
// Put returns the detectable verdict for the underlying register write, so
// a caller that crashed mid-put knows whether the new value is visible;
// PutRetry re-invokes on fail for always-succeeds semantics (the NRL
// transformation of Section 6).
//
// Key resolution is lock-free: the key → register table is an atomic
// pointer to an immutable copy-on-write map, so the crash-free hot path of
// an existing key (the only path a skewed workload exercises in steady
// state) is one atomic load plus one map lookup — no locks, no allocation.
// Only the first write of a new key and Restore serialize, on a creation
// mutex that publishes a successor table.
package kv

import (
	"sort"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/rw"
)

// Store is an N-process recoverable key-value store with int values.
// Missing keys read as the zero value.
type Store struct {
	sys *runtime.System
	tbl keyTable
}

// New allocates an empty store in sys's memory space with the lock-free
// copy-on-write key table.
func New(sys *runtime.System) *Store {
	return &Store{sys: sys, tbl: newCowTable()}
}

// NewLocked allocates a store using the pre-PR 8 RWMutex key table. It
// exists solely as the measured baseline of the BENCH_PR8.json skew sweep
// (every operation pays a read-lock on the shared table); production
// callers want New.
func NewLocked(sys *runtime.System) *Store {
	return &Store{sys: sys, tbl: newLockedTable()}
}

// Put writes key := val as process pid and returns the detectable outcome.
func (s *Store) Put(pid int, key string, val int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.reg(key).Write(pid, val, plans...)
}

// PutRetry writes key := val, re-invoking on fail verdicts until the write
// is linearized (NRL semantics). It returns the number of invocations.
func (s *Store) PutRetry(pid int, key string, val int) int {
	reg := s.reg(key)
	_, invocations := runtime.ExecuteNRL(s.sys, pid, func() runtime.Op[int] {
		return reg.WriteOp(pid, val)
	})
	return invocations
}

// Del removes key as process pid and returns the detectable outcome.
// Missing keys read as the zero value, so deletion is a detectable write of
// zero to the key's register: it inherits the register's exactly-once
// crash-recovery verdict, and a subsequent Get observes the key as absent.
func (s *Store) Del(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.Put(pid, key, 0, plans...)
}

// DelRetry removes key, re-invoking on fail verdicts until the deletion is
// linearized (NRL semantics). It returns the number of invocations.
func (s *Store) DelRetry(pid int, key string) int {
	return s.PutRetry(pid, key, 0)
}

// Get reads key as process pid and returns the detectable outcome.
func (s *Store) Get(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.reg(key).Read(pid, plans...)
}

// PutArmed writes key := val with plan armed on every attempt (body and all
// recovery re-entries), for controlled-scheduler harnesses; see
// runtime.ExecuteArmed.
func (s *Store) PutArmed(pid int, key string, val int, plan nvm.CrashPlan) runtime.Outcome[int] {
	reg := s.reg(key)
	return runtime.ExecuteArmed(s.sys, pid, reg.WriteOp(pid, val), plan)
}

// GetArmed reads key with plan armed on every attempt.
func (s *Store) GetArmed(pid int, key string, plan nvm.CrashPlan) runtime.Outcome[int] {
	return runtime.ExecuteArmed(s.sys, pid, s.reg(key).ReadOp(pid), plan)
}

// Restore installs key with val as its register's initial state without
// executing a recoverable operation: it is the recovery half of a durable
// restart, where the recovered value plays the role a register's initial
// value plays at allocation time (no primitives run, nothing is announced).
// Restoring a key that already has a register panics — recovery must run
// before the store serves operations.
func (s *Store) Restore(key string, val int) {
	s.tbl.restore(key, rw.NewInt(s.sys, val))
}

// Keys returns the keys ever written, sorted, for tests and tooling. The
// sort runs over a point-in-time table view, outside any critical section —
// with the copy-on-write table no lock is held at all.
func (s *Store) Keys() []string {
	view := s.tbl.view()
	out := make([]string, 0, len(view))
	for k := range view {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Peek returns key's current value without a Ctx, for tests.
func (s *Store) Peek(key string) int {
	reg, ok := s.tbl.lookup(key)
	if !ok {
		return 0
	}
	return reg.PeekTriple().Val
}

// reg returns (creating if needed) the register backing key. Register
// creation is treated as metadata management, not a recoverable operation:
// it allocates NVM cells but performs no primitives. The caller's key may
// alias a transient buffer (the server decodes keys zero-copy out of the
// connection frame), so the create path clones it — the only place this
// layer retains a key.
func (s *Store) reg(key string) *rw.Register[int] {
	if reg, ok := s.tbl.lookup(key); ok {
		return reg
	}
	return s.tbl.create(key, func() *rw.Register[int] { return rw.NewInt(s.sys, 0) })
}
