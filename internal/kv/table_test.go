package kv

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"detectable/internal/runtime"
)

// TestCowCreateRace: concurrent first-writers of the same key must resolve
// to exactly one register (the creation mutex double-checks), and
// concurrent creators of distinct keys must all be retained across the
// copy-on-write republications.
func TestCowCreateRace(t *testing.T) {
	const procs = 8
	sys := runtime.NewSystem(procs)
	s := New(sys)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.PutRetry(pid, "shared", pid*1000+i)
				s.PutRetry(pid, fmt.Sprintf("own-%d-%d", pid, i), i)
			}
		}(p)
	}
	wg.Wait()
	if got := len(s.Keys()); got != 1+procs*50 {
		t.Fatalf("retained %d keys, want %d", got, 1+procs*50)
	}
	r1, ok1 := s.tbl.lookup("shared")
	r2, ok2 := s.tbl.lookup("shared")
	if !ok1 || !ok2 || r1 != r2 {
		t.Fatalf("shared key resolved to distinct registers")
	}
	for p := 0; p < procs; p++ {
		if got := s.Peek(fmt.Sprintf("own-%d-49", p)); got != 49 {
			t.Fatalf("own-%d-49 = %d, want 49", p, got)
		}
	}
}

// TestCowViewIsImmutableSnapshot: a view taken before later creates must
// not observe them (the published map is never mutated in place).
func TestCowViewIsImmutableSnapshot(t *testing.T) {
	sys := runtime.NewSystem(1)
	s := New(sys)
	s.Put(0, "a", 1)
	view := s.tbl.view()
	s.Put(0, "b", 2)
	if _, ok := view["b"]; ok {
		t.Fatalf("old view observed a key created after the snapshot")
	}
	if _, ok := s.tbl.view()["b"]; !ok {
		t.Fatalf("new view missing the created key")
	}
}

// TestLockedStoreEquivalence: the retained RWMutex baseline must give the
// same observable behavior as the copy-on-write store — it exists so the
// BENCH_PR8 sweep compares implementations, not semantics.
func TestLockedStoreEquivalence(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(*runtime.System) *Store
	}{{"cow", New}, {"locked", NewLocked}} {
		t.Run(mk.name, func(t *testing.T) {
			sys := runtime.NewSystem(2)
			s := mk.new(sys)
			s.Put(0, "b", 1)
			s.Put(0, "a", 2)
			s.Get(0, "c")
			if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
				t.Fatalf("Keys = %v", got)
			}
			if got := s.Peek("a"); got != 2 {
				t.Fatalf("a = %d, want 2", got)
			}
			s.Del(1, "a")
			if got := s.Peek("a"); got != 0 {
				t.Fatalf("a = %d after del, want 0", got)
			}
			if out := s.Get(1, "missing"); out.Resp != 0 {
				t.Fatalf("missing = %d, want 0", out.Resp)
			}
		})
	}
}

// TestRestorePanicsOnExistingKey pins the recovery contract for both
// tables: Restore must refuse a key that already has a register.
func TestRestorePanicsOnExistingKey(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(*runtime.System) *Store
	}{{"cow", New}, {"locked", NewLocked}} {
		t.Run(mk.name, func(t *testing.T) {
			sys := runtime.NewSystem(1)
			s := mk.new(sys)
			s.Restore("k", 7)
			if got := s.Peek("k"); got != 7 {
				t.Fatalf("restored k = %d, want 7", got)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("second Restore of k did not panic")
				}
			}()
			s.Restore("k", 8)
		})
	}
}

// TestAllocPinLookup: resolving an existing key is one atomic load plus a
// map lookup — zero allocations. This is the kv-layer half of the
// crash-free Get pin benchjson gates in CI.
func TestAllocPinLookup(t *testing.T) {
	sys := runtime.NewSystem(1)
	s := New(sys)
	s.Put(0, "hot", 1)
	if allocs := testing.AllocsPerRun(500, func() {
		if _, ok := s.tbl.lookup("hot"); !ok {
			t.Fatal("hot key missing")
		}
	}); allocs != 0 {
		t.Fatalf("lookup allocates %v/op, want 0", allocs)
	}
}
