package kv

import (
	"strings"
	"sync"
	"sync/atomic"

	"detectable/internal/rw"
)

// keyTable resolves key → register on every operation. Two implementations:
//
//   - cowTable (the default): an atomic pointer to an immutable map. The
//     read path — every crash-free Get/Put on an existing key — is one
//     atomic load plus one map lookup, no locks and no allocation. Writers
//     that introduce a *new* key (or Restore during recovery) serialize on
//     a creation mutex, clone the current table, and publish the successor;
//     readers never observe a partially built table.
//   - lockedTable: the pre-PR 8 RWMutex-guarded map, kept only so the
//     benchmark sweep (BENCH_PR8.json) can measure the seed baseline the
//     copy-on-write table replaced. Production callers never pick it.
//
// Both give the same semantics: lookups of concurrent first-writes may miss
// and fall into create, which double-checks under the mutex, so exactly one
// register is ever allocated per key.
type keyTable interface {
	// lookup returns key's register without creating it.
	lookup(key string) (*rw.Register[int], bool)
	// create returns key's register, allocating it via alloc under the
	// creation mutex if this is the key's first use. The stored key is
	// cloned (callers may pass a transient buffer; see Store.reg).
	create(key string, alloc func() *rw.Register[int]) *rw.Register[int]
	// restore installs a recovered register and panics if key exists
	// (recovery must run before the store serves operations).
	restore(key string, reg *rw.Register[int])
	// view returns a point-in-time key → register mapping the caller may
	// read freely but must not mutate.
	view() map[string]*rw.Register[int]
}

// cowTable is the lock-free copy-on-write key table. The published map is
// immutable: mutators clone it under mu and atomically swap the pointer.
// Creating the N-th key therefore costs an O(N) clone — a one-time,
// amortized cost paid off the steady-state path (keys are created once,
// operated on forever), which is exactly the trade a skewed workload wants:
// the hot path of a hot key shares nothing with key creation.
type cowTable struct {
	table atomic.Pointer[map[string]*rw.Register[int]]
	mu    sync.Mutex // serializes clone-and-publish (first writes, restores)
}

func newCowTable() *cowTable {
	t := &cowTable{}
	m := make(map[string]*rw.Register[int])
	t.table.Store(&m)
	return t
}

func (t *cowTable) lookup(key string) (*rw.Register[int], bool) {
	reg, ok := (*t.table.Load())[key]
	return reg, ok
}

func (t *cowTable) create(key string, alloc func() *rw.Register[int]) *rw.Register[int] {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.table.Load()
	if reg, ok := cur[key]; ok {
		// Lost the creation race: another first-writer published this key
		// between our lookup miss and taking the mutex.
		return reg
	}
	reg := alloc()
	t.publish(cur, strings.Clone(key), reg)
	return reg
}

func (t *cowTable) restore(key string, reg *rw.Register[int]) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.table.Load()
	if _, ok := cur[key]; ok {
		panic("kv: Restore of a key that already has a register")
	}
	t.publish(cur, strings.Clone(key), reg)
}

// publish swaps in a successor table holding cur plus key → reg. Callers
// hold mu.
func (t *cowTable) publish(cur map[string]*rw.Register[int], key string, reg *rw.Register[int]) {
	next := make(map[string]*rw.Register[int], len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = reg
	t.table.Store(&next)
}

func (t *cowTable) view() map[string]*rw.Register[int] {
	// The published map is immutable, so the current pointer IS a
	// point-in-time snapshot — no copy, no lock.
	return *t.table.Load()
}

// lockedTable is the seed RWMutex key table, retained as the benchmark
// baseline (Store option Locked / shardkv.LockedKeyTable / kvserverd
// -locked-keytable). Every operation — including crash-free reads of hot
// keys — takes the read lock, which is the serialization the skew sweep in
// BENCH_PR8.json measures against the copy-on-write table.
type lockedTable struct {
	mu   sync.RWMutex
	regs map[string]*rw.Register[int]
}

func newLockedTable() *lockedTable {
	return &lockedTable{regs: make(map[string]*rw.Register[int])}
}

func (t *lockedTable) lookup(key string) (*rw.Register[int], bool) {
	t.mu.RLock()
	reg, ok := t.regs[key]
	t.mu.RUnlock()
	return reg, ok
}

func (t *lockedTable) create(key string, alloc func() *rw.Register[int]) *rw.Register[int] {
	t.mu.Lock()
	defer t.mu.Unlock()
	if reg, ok := t.regs[key]; ok {
		return reg
	}
	reg := alloc()
	t.regs[strings.Clone(key)] = reg
	return reg
}

func (t *lockedTable) restore(key string, reg *rw.Register[int]) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.regs[key]; ok {
		panic("kv: Restore of a key that already has a register")
	}
	t.regs[strings.Clone(key)] = reg
}

func (t *lockedTable) view() map[string]*rw.Register[int] {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]*rw.Register[int], len(t.regs))
	for k, v := range t.regs {
		out[k] = v
	}
	return out
}
