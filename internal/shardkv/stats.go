package shardkv

import "sync/atomic"

// outcome buckets the verdict of one operation execution.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeRecovered
	outcomeFailed
	outcomeNotInvoked
)

// opKind buckets the operation family for stats accounting.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDel
)

// Stats aggregates one shard's counters. All methods are safe for
// concurrent use; the zero value is ready.
type Stats struct {
	gets, puts, dels atomic.Uint64

	ok, recovered, failed, notInvoked atomic.Uint64

	// crashesSeen counts crash interruptions observed by operations on this
	// shard (an operation interrupted twice counts twice); crashesInjected
	// counts CrashShard calls.
	crashesSeen     atomic.Uint64
	crashesInjected atomic.Uint64

	// retries counts extra invocations spent by the *Retry wrappers beyond
	// the first (the exactly-once re-invocation budget detectability buys).
	retries atomic.Uint64
}

func (s *Stats) note(op opKind, oc outcome, crashes int) {
	switch op {
	case opGet:
		s.gets.Add(1)
	case opPut:
		s.puts.Add(1)
	case opDel:
		s.dels.Add(1)
	}
	switch oc {
	case outcomeOK:
		s.ok.Add(1)
	case outcomeRecovered:
		s.recovered.Add(1)
	case outcomeFailed:
		s.failed.Add(1)
	case outcomeNotInvoked:
		s.notInvoked.Add(1)
	}
	if crashes > 0 {
		s.crashesSeen.Add(uint64(crashes))
	}
}

// noteRetries records one *Retry call that took n invocations. Every
// invocation was already noted individually (op and verdict); only the
// n-1 re-invocations beyond the first are counted here.
func (s *Stats) noteRetries(n int) {
	if n > 1 {
		s.retries.Add(uint64(n - 1))
	}
}

func (s *Stats) noteInjected() { s.crashesInjected.Add(1) }

// StatsSnapshot is a point-in-time copy of a shard's counters.
type StatsSnapshot struct {
	Gets, Puts, Dels uint64

	OK, Recovered, Failed, NotInvoked uint64

	CrashesSeen, CrashesInjected uint64
	Retries                      uint64
}

// Ops returns the total operations recorded.
func (s StatsSnapshot) Ops() uint64 { return s.Gets + s.Puts + s.Dels }

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Gets:            s.gets.Load(),
		Puts:            s.puts.Load(),
		Dels:            s.dels.Load(),
		OK:              s.ok.Load(),
		Recovered:       s.recovered.Load(),
		Failed:          s.failed.Load(),
		NotInvoked:      s.notInvoked.Load(),
		CrashesSeen:     s.crashesSeen.Load(),
		CrashesInjected: s.crashesInjected.Load(),
		Retries:         s.retries.Load(),
	}
}

// Sub returns the element-wise difference a − b: the activity of the
// window between two snapshots of the same shard (or total).
func (a StatsSnapshot) Sub(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:            a.Gets - b.Gets,
		Puts:            a.Puts - b.Puts,
		Dels:            a.Dels - b.Dels,
		OK:              a.OK - b.OK,
		Recovered:       a.Recovered - b.Recovered,
		Failed:          a.Failed - b.Failed,
		NotInvoked:      a.NotInvoked - b.NotInvoked,
		CrashesSeen:     a.CrashesSeen - b.CrashesSeen,
		CrashesInjected: a.CrashesInjected - b.CrashesInjected,
		Retries:         a.Retries - b.Retries,
	}
}

// Add returns the element-wise sum of two snapshots.
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:            a.Gets + b.Gets,
		Puts:            a.Puts + b.Puts,
		Dels:            a.Dels + b.Dels,
		OK:              a.OK + b.OK,
		Recovered:       a.Recovered + b.Recovered,
		Failed:          a.Failed + b.Failed,
		NotInvoked:      a.NotInvoked + b.NotInvoked,
		CrashesSeen:     a.CrashesSeen + b.CrashesSeen,
		CrashesInjected: a.CrashesInjected + b.CrashesInjected,
		Retries:         a.Retries + b.Retries,
	}
}
