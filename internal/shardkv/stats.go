package shardkv

import "sync/atomic"

// outcome buckets the verdict of one operation execution.
type outcome int

const (
	outcomeOK outcome = iota
	outcomeRecovered
	outcomeFailed
	outcomeNotInvoked
)

// opKind buckets the operation family for stats accounting.
type opKind int

const (
	opGet opKind = iota
	opPut
	opDel
)

// statsStripes is the number of counter stripes per shard, a power of two.
// Counters are striped by pid so that concurrent processes hammering one
// hot shard bump disjoint cache lines instead of bouncing one set of
// shared words between cores — under uniform traffic the stats were
// invisible, under Zipfian skew they were a per-operation shared write.
const statsStripes = 8

// statsStripe is one pid-class's counters, padded to its own cache lines
// so neighboring stripes never false-share.
type statsStripe struct {
	gets, puts, dels atomic.Uint64

	ok, recovered, failed, notInvoked atomic.Uint64

	// crashesSeen counts crash interruptions observed by operations on this
	// stripe's pids (an operation interrupted twice counts twice).
	crashesSeen atomic.Uint64

	// retries counts extra invocations spent by the *Retry wrappers beyond
	// the first (the exactly-once re-invocation budget detectability buys).
	retries atomic.Uint64

	_ [128 - 9*8]byte // pad the 9 words to a 128-byte cache-line pair
}

// Stats aggregates one shard's counters, striped by pid. All methods are
// safe for concurrent use; the zero value is ready.
type Stats struct {
	stripes [statsStripes]statsStripe

	// crashesInjected counts CrashShard calls. Injection comes from a storm
	// goroutine, not the operation hot path, so it stays unstriped.
	crashesInjected atomic.Uint64
}

// stripe returns pid's counter stripe.
func (s *Stats) stripe(pid int) *statsStripe {
	return &s.stripes[uint(pid)&(statsStripes-1)]
}

func (s *Stats) note(pid int, op opKind, oc outcome, crashes int) {
	st := s.stripe(pid)
	switch op {
	case opGet:
		st.gets.Add(1)
	case opPut:
		st.puts.Add(1)
	case opDel:
		st.dels.Add(1)
	}
	switch oc {
	case outcomeOK:
		st.ok.Add(1)
	case outcomeRecovered:
		st.recovered.Add(1)
	case outcomeFailed:
		st.failed.Add(1)
	case outcomeNotInvoked:
		st.notInvoked.Add(1)
	}
	if crashes > 0 {
		st.crashesSeen.Add(uint64(crashes))
	}
}

// noteRetries records one *Retry call by pid that took n invocations.
// Every invocation was already noted individually (op and verdict); only
// the n-1 re-invocations beyond the first are counted here.
func (s *Stats) noteRetries(pid, n int) {
	if n > 1 {
		s.stripe(pid).retries.Add(uint64(n - 1))
	}
}

func (s *Stats) noteInjected() { s.crashesInjected.Add(1) }

// StatsSnapshot is a point-in-time copy of a shard's counters, aggregated
// across the pid stripes. Snapshots of a striped Stats remain
// Sub-compatible: every counter is monotone, so the element-wise
// difference of two aggregated snapshots is exactly the activity of the
// window between them.
type StatsSnapshot struct {
	Gets, Puts, Dels uint64

	OK, Recovered, Failed, NotInvoked uint64

	CrashesSeen, CrashesInjected uint64
	Retries                      uint64
}

// Ops returns the total operations recorded.
func (s StatsSnapshot) Ops() uint64 { return s.Gets + s.Puts + s.Dels }

func (s *Stats) snapshot() StatsSnapshot {
	out := StatsSnapshot{CrashesInjected: s.crashesInjected.Load()}
	for i := range s.stripes {
		st := &s.stripes[i]
		out.Gets += st.gets.Load()
		out.Puts += st.puts.Load()
		out.Dels += st.dels.Load()
		out.OK += st.ok.Load()
		out.Recovered += st.recovered.Load()
		out.Failed += st.failed.Load()
		out.NotInvoked += st.notInvoked.Load()
		out.CrashesSeen += st.crashesSeen.Load()
		out.Retries += st.retries.Load()
	}
	return out
}

// Sub returns the element-wise difference a − b: the activity of the
// window between two snapshots of the same shard (or total).
func (a StatsSnapshot) Sub(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:            a.Gets - b.Gets,
		Puts:            a.Puts - b.Puts,
		Dels:            a.Dels - b.Dels,
		OK:              a.OK - b.OK,
		Recovered:       a.Recovered - b.Recovered,
		Failed:          a.Failed - b.Failed,
		NotInvoked:      a.NotInvoked - b.NotInvoked,
		CrashesSeen:     a.CrashesSeen - b.CrashesSeen,
		CrashesInjected: a.CrashesInjected - b.CrashesInjected,
		Retries:         a.Retries - b.Retries,
	}
}

// Add returns the element-wise sum of two snapshots.
func (a StatsSnapshot) Add(b StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Gets:            a.Gets + b.Gets,
		Puts:            a.Puts + b.Puts,
		Dels:            a.Dels + b.Dels,
		OK:              a.OK + b.OK,
		Recovered:       a.Recovered + b.Recovered,
		Failed:          a.Failed + b.Failed,
		NotInvoked:      a.NotInvoked + b.NotInvoked,
		CrashesSeen:     a.CrashesSeen + b.CrashesSeen,
		CrashesInjected: a.CrashesInjected + b.CrashesInjected,
		Retries:         a.Retries + b.Retries,
	}
}
