// Package shardkv composes the paper's single-object detectable primitives
// into a hash-partitioned key-value store: S independent shards, each backed
// by its own runtime.System (and therefore its own simulated NVM space,
// failure epoch and history log) and an internal/kv store built from the
// bounded-space detectable registers of Algorithm 1.
//
// The partitioning move mirrors how disaggregated-memory systems scale a
// shared substrate across endpoints: because shards share no memory cells,
// no epoch and no statistics, operations on keys of different shards
// proceed with zero cross-shard contention, while each individual key keeps
// the per-object detectability contract — a caller that crashed mid-write
// learns definitively whether its operation was linearized and can retry
// exactly once.
//
// Crashes are per shard: CrashShard fails a single shard's system-wide
// epoch (interrupting only the operations routed there — the other shards
// keep serving), while Crash storms every shard. Per-shard Stats record
// operations, verdicts, crash interruptions and recoveries.
package shardkv

import (
	goruntime "runtime"
	"sort"

	"detectable/internal/durable"
	"detectable/internal/history"
	"detectable/internal/kv"
	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// DefaultRingCapacity is the per-shard history ring size production stores
// keep for diagnostics. Each shard is an independent system, so the ring
// holds the last events of that shard only.
const DefaultRingCapacity = 4096

// Option configures a Store at allocation time.
type Option func(*options)

type options struct {
	historyMode history.Mode
	historyCap  int
	parallel    int
	db          *durable.DB
	lockedTable bool
}

// HistoryMode overrides the per-shard history retention. Production stores
// default to a bounded ring (history.ModeRing, DefaultRingCapacity events
// per shard) so the log never serializes or grows without bound;
// verification harnesses pass history.ModeFull to keep complete logs for
// the durable-linearizability checker, and benchmark floors may pass
// history.ModeOff. capacity is the ring size (ignored for the other
// modes; 0 means DefaultRingCapacity).
func HistoryMode(m history.Mode, capacity int) Option {
	return func(o *options) {
		o.historyMode = m
		if capacity > 0 {
			o.historyCap = capacity
		}
	}
}

// Parallel bounds the number of per-shard worker goroutines one batched
// call (MultiGet/MultiPut/MultiPutRetry) may fan out to. The default is
// GOMAXPROCS; 1 serializes batches shard-by-shard as before. Parallelism
// never splits one shard's group: a batch runs at most one goroutine per
// shard, preserving the one-operation-at-a-time-per-process rule inside
// each shard's system.
func Parallel(n int) Option {
	return func(o *options) {
		if n >= 1 {
			o.parallel = n
		}
	}
}

// LockedKeyTable builds every shard's kv store on the pre-PR 8
// RWMutex-guarded key table instead of the lock-free copy-on-write table.
// It exists solely so the BENCH_PR8.json skew sweep (and kvserverd's
// -locked-keytable flag) can measure the seed baseline; production callers
// never set it.
func LockedKeyTable() Option {
	return func(o *options) { o.lockedTable = true }
}

// Durable backs every shard's space with one shard log of db (making the
// space a file-backed persistent space: linearized mutations are journaled
// at verdict time) and restores each shard's recovered state before the
// store serves its first operation. db's geometry must match the store's
// shard count; durable.Open enforces it against the data directory's
// manifest, and New panics on a mismatched db.
func Durable(db *durable.DB) Option {
	return func(o *options) { o.db = db }
}

// shard is one independent failure domain: a private system plus the
// detectable kv store allocated in it.
type shard struct {
	sys   *runtime.System
	store *kv.Store
	stats Stats
}

// journal records a linearized mutation's persisted value with the shard
// space's backing store — a no-op on heap-backed shards. It runs at
// verdict time: after this call the value is queued for the shard's next
// durability barrier (the server's CommitOutcome syncs it before the
// verdict is released to a client).
func (sh *shard) journal(out runtime.Outcome[int], key string, val int) {
	if out.Status.Linearized() {
		sh.sys.Space().Journal(key, int64(val))
	}
}

// get/put/del run one detectable operation on this shard and record it.
// The batched API calls these directly with the already-resolved shard, so
// keys are hashed once per batch entry.
func (sh *shard) get(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	out := sh.store.Get(pid, key, plans...)
	sh.stats.note(pid, opGet, outcomeOf(out.Status), out.Crashes)
	return out
}

func (sh *shard) put(pid int, key string, val int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	out := sh.store.Put(pid, key, val, plans...)
	sh.journal(out, key, val)
	sh.stats.note(pid, opPut, outcomeOf(out.Status), out.Crashes)
	return out
}

func (sh *shard) del(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	out := sh.store.Del(pid, key, plans...)
	sh.journal(out, key, 0)
	sh.stats.note(pid, opDel, outcomeOf(out.Status), out.Crashes)
	return out
}

// putRetry re-invokes put until it linearizes (NRL semantics: a fresh
// invocation per fail verdict), recording every attempt, and returns the
// number of invocations.
func (sh *shard) putRetry(pid int, key string, val int) int {
	for n := 1; ; n++ {
		if sh.put(pid, key, val).Status.Linearized() {
			sh.stats.noteRetries(pid, n)
			return n
		}
	}
}

// delRetry is putRetry for deletions, so attempts are recorded as dels.
func (sh *shard) delRetry(pid int, key string) int {
	for n := 1; ; n++ {
		if sh.del(pid, key).Status.Linearized() {
			sh.stats.noteRetries(pid, n)
			return n
		}
	}
}

// Store is a hash-partitioned detectable key-value store over S shards,
// each serving up to procs processes. Distinct processes may operate
// concurrently on any mix of shards; a single process must not run two
// operations concurrently (the usual per-process rule of the model).
type Store struct {
	shards   []*shard
	procs    int
	slots    *slotPool
	parallel int
}

// New allocates a store of shards independent partitions, each a fresh
// runtime.System of procs processes under the private-cache model.
func New(shards, procs int, opts ...Option) *Store {
	return NewModel(shards, procs, nvm.ModelPrivateCache, opts...)
}

// NewModel is New with an explicit memory model for every shard's space.
func NewModel(shards, procs int, m nvm.Model, opts ...Option) *Store {
	if shards < 1 {
		panic("shardkv: need at least one shard")
	}
	o := options{
		historyMode: history.ModeRing,
		historyCap:  DefaultRingCapacity,
		parallel:    goruntime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.db != nil && o.db.NumShards() != shards {
		panic("shardkv: durable store geometry does not match the shard count")
	}
	s := &Store{procs: procs, slots: newSlotPool(procs), parallel: o.parallel}
	for i := 0; i < shards; i++ {
		sys := runtime.NewSystemModel(procs, m)
		switch o.historyMode {
		case history.ModeRing:
			// Stripe the diagnostic ring by process so a hot shard's
			// appends stop serializing on one ticket (history clamps the
			// stripe count and splits the capacity).
			sys.SetHistory(history.NewShardedRing(o.historyCap, procs))
		case history.ModeOff:
			sys.SetHistory(history.NewOff())
		}
		mkStore := kv.New
		if o.lockedTable {
			mkStore = kv.NewLocked
		}
		sh := &shard{sys: sys, store: mkStore(sys)}
		if o.db != nil {
			// Recovery first, backing second: replayed roots are register
			// initial values, not fresh persists to re-journal.
			o.db.RangeShard(i, func(key string, val int64) {
				sh.store.Restore(key, int(val))
			})
			sys.Space().SetBacking(o.db.ShardBacking(i))
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// NumShards returns the number of partitions.
func (s *Store) NumShards() int { return len(s.shards) }

// Procs returns the per-shard process count.
func (s *Store) Procs() int { return s.procs }

// ShardIndex returns the index of the shard serving key in a store of
// `shards` partitions (FNV-1a of the key modulo the shard count — stable
// across runs, so tests and the load generator can target a specific
// shard). Inlined rather than hash/fnv so the routing decision on every
// operation allocates nothing. Package-level so layers without a Store —
// a standby serving reads out of its replicated durable view — route with
// the identical function.
func ShardIndex(key string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * prime32
	}
	return int(h % uint32(shards))
}

// ShardFor returns the index of the shard serving key.
func (s *Store) ShardFor(key string) int { return ShardIndex(key, len(s.shards)) }

// System returns shard i's runtime system, for tests and tooling.
func (s *Store) System(i int) *runtime.System { return s.shards[i].sys }

// Put writes key := val as process pid on key's shard and returns the
// detectable outcome. plans inject deterministic crashes into that shard
// only.
func (s *Store) Put(pid int, key string, val int, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.shards[s.ShardFor(key)].put(pid, key, val, plans...)
}

// Get reads key as process pid and returns the detectable outcome.
func (s *Store) Get(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.shards[s.ShardFor(key)].get(pid, key, plans...)
}

// Del removes key as process pid and returns the detectable outcome
// (missing keys read as zero; see kv.Store.Del).
func (s *Store) Del(pid int, key string, plans ...nvm.CrashPlan) runtime.Outcome[int] {
	return s.shards[s.ShardFor(key)].del(pid, key, plans...)
}

// PutArmed writes key := val with plan armed on every attempt of the
// underlying detectable write, for controlled-scheduler harnesses
// (internal/explore drives single-shard stores this way so that every
// primitive of every recovery re-entry is a visible scheduling point).
func (s *Store) PutArmed(pid int, key string, val int, plan nvm.CrashPlan) runtime.Outcome[int] {
	sh := s.shards[s.ShardFor(key)]
	out := sh.store.PutArmed(pid, key, val, plan)
	sh.journal(out, key, val)
	sh.stats.note(pid, opPut, outcomeOf(out.Status), out.Crashes)
	return out
}

// GetArmed reads key with plan armed on every attempt.
func (s *Store) GetArmed(pid int, key string, plan nvm.CrashPlan) runtime.Outcome[int] {
	sh := s.shards[s.ShardFor(key)]
	out := sh.store.GetArmed(pid, key, plan)
	sh.stats.note(pid, opGet, outcomeOf(out.Status), out.Crashes)
	return out
}

// PutRetry writes key := val, re-invoking on fail verdicts until the write
// is linearized (NRL semantics). It returns the number of invocations;
// every invocation is recorded in the shard's stats.
func (s *Store) PutRetry(pid int, key string, val int) int {
	return s.shards[s.ShardFor(key)].putRetry(pid, key, val)
}

// DelRetry removes key with NRL always-succeeds semantics, returning the
// number of invocations.
func (s *Store) DelRetry(pid int, key string) int {
	return s.shards[s.ShardFor(key)].delRetry(pid, key)
}

// GetRetry reads key, re-invoking until a linearized response is obtained
// (a read can only miss its verdict when the crash hit during the
// announcement). It returns the value.
func (s *Store) GetRetry(pid int, key string) int {
	sh := s.shards[s.ShardFor(key)]
	for n := 1; ; n++ {
		out := sh.get(pid, key)
		if out.Status.Linearized() {
			sh.stats.noteRetries(pid, n)
			return out.Resp
		}
	}
}

// CrashShard injects a system-wide crash-failure into shard i alone: every
// operation in flight on that shard panics at its next primitive and runs
// its recovery function, while the other shards keep serving undisturbed.
func (s *Store) CrashShard(i int) {
	s.shards[i].sys.Crash()
	s.shards[i].stats.noteInjected()
}

// Crash storms every shard: a full-cluster failure.
func (s *Store) Crash() {
	for i := range s.shards {
		s.CrashShard(i)
	}
}

// StatsFor returns a snapshot of shard i's counters.
func (s *Store) StatsFor(i int) StatsSnapshot { return s.shards[i].stats.snapshot() }

// Snapshots returns a point-in-time copy of every shard's counters,
// indexed by shard. The network front-end serves these over the wire.
func (s *Store) Snapshots() []StatsSnapshot {
	out := make([]StatsSnapshot, len(s.shards))
	for i := range s.shards {
		out[i] = s.StatsFor(i)
	}
	return out
}

// TotalStats returns the sum of all shards' counters.
func (s *Store) TotalStats() StatsSnapshot {
	var t StatsSnapshot
	for i := range s.shards {
		t = t.Add(s.StatsFor(i))
	}
	return t
}

// Keys returns every key ever written across all shards, sorted.
func (s *Store) Keys() []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.store.Keys()...)
	}
	sort.Strings(out)
	return out
}

// Peek returns key's current value without a Ctx, for tests.
func (s *Store) Peek(key string) int {
	return s.shards[s.ShardFor(key)].store.Peek(key)
}

// outcomeOf buckets an execution status for stats accounting.
func outcomeOf(st runtime.Status) outcome {
	switch st {
	case runtime.StatusOK:
		return outcomeOK
	case runtime.StatusRecovered:
		return outcomeRecovered
	case runtime.StatusFailed:
		return outcomeFailed
	default:
		return outcomeNotInvoked
	}
}
