package shardkv

import "testing"

// The allocation pins of the hot-path overhaul: crash-free operations on
// the atomic fast path must not allocate. These are the same promises
// cmd/benchjson -check enforces in CI; a failure here means a change
// reintroduced per-op allocation (an escaping closure, a fresh Ctx, an
// unbounded history append, …).

func TestAllocPinCrashFreeGet(t *testing.T) {
	s := New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	if allocs := testing.AllocsPerRun(500, func() {
		s.Get(0, "pin-key")
	}); allocs != 0 {
		t.Fatalf("crash-free Get allocates %v/op, want 0", allocs)
	}
}

func TestAllocPinCrashFreeGetRetry(t *testing.T) {
	s := New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	if allocs := testing.AllocsPerRun(500, func() {
		s.GetRetry(0, "pin-key")
	}); allocs != 0 {
		t.Fatalf("crash-free GetRetry allocates %v/op, want 0", allocs)
	}
}

// A crash-free Put allocates at most the abstract operation's argument
// list for the history record — one slice.
func TestAllocPinCrashFreePut(t *testing.T) {
	s := New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	if allocs := testing.AllocsPerRun(500, func() {
		s.Put(0, "pin-key", 7)
	}); allocs > 1 {
		t.Fatalf("crash-free Put allocates %v/op, want ≤ 1", allocs)
	}
}
