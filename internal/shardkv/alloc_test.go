package shardkv

import "testing"

// The allocation pins of the hot-path overhaul: crash-free operations on
// the atomic fast path must not allocate. These are the same promises
// cmd/benchjson -check enforces in CI; a failure here means a change
// reintroduced per-op allocation (an escaping closure, a fresh Ctx, an
// unbounded history append, …).

func TestAllocPinCrashFreeGet(t *testing.T) {
	s := New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	if allocs := testing.AllocsPerRun(500, func() {
		s.Get(0, "pin-key")
	}); allocs != 0 {
		t.Fatalf("crash-free Get allocates %v/op, want 0", allocs)
	}
}

func TestAllocPinCrashFreeGetRetry(t *testing.T) {
	s := New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	if allocs := testing.AllocsPerRun(500, func() {
		s.GetRetry(0, "pin-key")
	}); allocs != 0 {
		t.Fatalf("crash-free GetRetry allocates %v/op, want 0", allocs)
	}
}

// A crash-free Put no longer allocates even the abstract operation's
// argument list: the register reuses a per-process descriptor and the
// history ring copies the args into slot-owned buffers. The warm-up loop
// wraps the shard's history ring so every slot's args buffer exists before
// measuring.
func TestAllocPinCrashFreePut(t *testing.T) {
	s := New(4, 2)
	for i := 0; i < DefaultRingCapacity; i++ {
		s.Put(0, "pin-key", 7)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		s.Put(0, "pin-key", 7)
	}); allocs != 0 {
		t.Fatalf("crash-free Put allocates %v/op, want 0", allocs)
	}
}

// A warm batched put over caller-owned scratch allocates nothing: grouping
// arrays, outcome slice, fan-out workers and history records all reuse
// session- or slot-owned storage.
func TestAllocPinMultiPutWith(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the parallel fan-out path")
	}
	s := New(8, 2)
	entries := make([]KV, 64)
	for i := range entries {
		entries[i] = KV{Key: "pin-key-" + string(rune('a'+i%26)) + string(rune('a'+i/26)), Val: i}
	}
	var sc BatchScratch
	for i := 0; i < 2*DefaultRingCapacity/len(entries)*8; i++ {
		s.MultiPutWith(&sc, 0, entries)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.MultiPutWith(&sc, 0, entries)
	}); allocs != 0 {
		t.Fatalf("warm MultiPutWith allocates %v/op, want 0", allocs)
	}
}
