package shardkv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
)

// TestRaceStress is a short stress run aimed at the race detector:
// concurrent processes mixing single-key and batched operations over a
// shared key space, a storm goroutine crashing random single shards, and a
// peeker reading stats and values — every cross-goroutine surface of the
// store, racing at once.
func TestRaceStress(t *testing.T) {
	const (
		procs  = 4
		shards = 4
	)
	s := New(shards, procs)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // per-shard crash storm
		defer aux.Done()
		rng := rand.New(rand.NewSource(42))
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				s.CrashShard(rng.Intn(shards))
			}
		}
	}()
	go func() { // peeker: stats and values racing the operations
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.TotalStats()
			_ = s.Peek(keys[0])
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 150; i++ {
				key := keys[rng.Intn(len(keys))]
				var plan nvm.CrashPlan
				if rng.Intn(6) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(12)))
				}
				switch rng.Intn(5) {
				case 0:
					s.Get(pid, key, plan)
				case 1:
					s.Del(pid, key, plan)
				case 2:
					s.MultiPut(pid, []KV{
						{Key: keys[rng.Intn(len(keys))], Val: i},
						{Key: keys[rng.Intn(len(keys))], Val: i + 1},
					})
				case 3:
					s.MultiGet(pid, keys[:4])
				default:
					s.Put(pid, key, pid*1000+i, plan)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}
