package shardkv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/workload"
)

// TestRaceStress is a short stress run aimed at the race detector:
// concurrent processes mixing single-key and batched operations over a
// shared key space, a storm goroutine crashing random single shards, and a
// peeker reading stats and values — every cross-goroutine surface of the
// store, racing at once.
func TestRaceStress(t *testing.T) {
	const (
		procs  = 4
		shards = 4
	)
	s := New(shards, procs)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // per-shard crash storm
		defer aux.Done()
		rng := rand.New(rand.NewSource(42))
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%800 == 0 {
				s.CrashShard(rng.Intn(shards))
			}
		}
	}()
	go func() { // peeker: stats and values racing the operations
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.TotalStats()
			_ = s.Peek(keys[0])
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(pid)))
			for i := 0; i < 150; i++ {
				key := keys[rng.Intn(len(keys))]
				var plan nvm.CrashPlan
				if rng.Intn(6) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(12)))
				}
				switch rng.Intn(5) {
				case 0:
					s.Get(pid, key, plan)
				case 1:
					s.Del(pid, key, plan)
				case 2:
					s.MultiPut(pid, []KV{
						{Key: keys[rng.Intn(len(keys))], Val: i},
						{Key: keys[rng.Intn(len(keys))], Val: i + 1},
					})
				case 3:
					s.MultiGet(pid, keys[:4])
				default:
					s.Put(pid, key, pid*1000+i, plan)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
}

// TestRaceStressHotKey is the skew regime under the race detector: every
// process hammers one shard through a Zipfian chooser whose rank-0 key
// absorbs most of the traffic, mixing PutRetry and Get on the shared hot
// key with a crash storm on that single shard — the copy-on-write key
// table's lock-free read path, the striped stats and the sharded history
// ring all racing on one partition. A concurrent cold-key creator keeps
// table republication racing the hot lookups.
func TestRaceStressHotKey(t *testing.T) {
	const procs = 8
	s := New(1, procs)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot-%d", i)
	}

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // crash storm on the single hot shard
		defer aux.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%1200 == 0 {
				s.CrashShard(0)
			}
		}
	}()
	go func() { // cold-key creator: COW republication racing hot lookups
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i < 200 {
				s.Put(procs-1, fmt.Sprintf("cold-%d", i), i)
			}
			_ = s.StatsFor(0)
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < procs-1; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			z := workload.NewZipf(rand.New(rand.NewSource(workload.WorkerSeed(9, procs, pid))), len(keys), 1.2)
			for i := 0; i < 200; i++ {
				key := keys[z.Next()]
				if i%3 == 0 {
					s.PutRetry(pid, key, pid*1000+i)
				} else {
					s.Get(pid, key)
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	aux.Wait()
	if got := s.TotalStats().Ops(); got == 0 {
		t.Fatalf("no operations recorded")
	}
}
