package shardkv

import (
	"testing"

	"detectable/internal/durable"
	"detectable/internal/nvm"
)

func openDB(t *testing.T, dir string, shards, procs int) *durable.DB {
	t.Helper()
	db, err := durable.Open(dir, shards, procs, 8)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	return db
}

// TestDurableRestoreAcrossReopen writes through a durable store, reopens
// the directory into a fresh store (a simulated whole-process restart) and
// checks every linearized value — including deletions — comes back.
func TestDurableRestoreAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db := openDB(t, dir, 4, 2)
	s := New(4, 2, Durable(db))
	for i := 0; i < 40; i++ {
		if n := s.PutRetry(0, key(t, i), 100+i); n < 1 {
			t.Fatalf("PutRetry returned %d", n)
		}
	}
	s.DelRetry(1, key(t, 3))
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openDB(t, dir, 4, 2)
	defer db2.Close()
	s2 := New(4, 2, Durable(db2))
	for i := 0; i < 40; i++ {
		want := 100 + i
		if i == 3 {
			want = 0
		}
		if got := s2.GetRetry(0, key(t, i)); got != want {
			t.Fatalf("key %d after restart = %d, want %d", i, got, want)
		}
	}
}

func key(t *testing.T, i int) string {
	t.Helper()
	return "k-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestFailedPutNotJournaled injects a crash plan that makes the write fail
// definitively: a fail verdict must leave no durable record, so a restart
// restores the pre-crash value.
func TestFailedPutNotJournaled(t *testing.T) {
	dir := t.TempDir()
	db := openDB(t, dir, 1, 2)
	s := New(1, 2, Durable(db))
	s.PutRetry(0, "k", 7)

	// Sweep crash steps until one yields a definite fail; every fail must
	// leave the durable state at 7.
	failed := false
	for step := uint64(1); step < 20; step++ {
		out := s.Put(0, "k", 999, nvm.CrashAtStep(step))
		if out.Status.Linearized() {
			s.PutRetry(0, "k", 7) // restore the expected value durably
			continue
		}
		failed = true
	}
	if !failed {
		t.Skip("no crash step produced a definite fail for this schedule")
	}
	db.Sync()
	db.Close()

	db2 := openDB(t, dir, 1, 2)
	defer db2.Close()
	s2 := New(1, 2, Durable(db2))
	if got := s2.GetRetry(0, "k"); got != 7 {
		t.Fatalf("failed put leaked into durable state: got %d, want 7", got)
	}
}

// TestDurableGeometryMismatchPanics pins the guard between a durable DB
// and a store of a different shard count.
func TestDurableGeometryMismatchPanics(t *testing.T) {
	db := openDB(t, t.TempDir(), 2, 2)
	defer db.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("New with mismatched durable geometry did not panic")
		}
	}()
	New(4, 2, Durable(db))
}

func TestLeaseProc(t *testing.T) {
	s := New(1, 4)
	if !s.LeaseProc(2) {
		t.Fatal("leasing free pid 2 failed")
	}
	if s.LeaseProc(2) {
		t.Fatal("double lease of pid 2 succeeded")
	}
	if s.LeaseProc(-1) || s.LeaseProc(4) {
		t.Fatal("out-of-range lease succeeded")
	}
	if s.FreeSlots() != 3 {
		t.Fatalf("FreeSlots = %d, want 3", s.FreeSlots())
	}
	// The leased pid must not be handed out by AcquireProc.
	seen := map[int]bool{}
	for {
		pid, ok := s.AcquireProc()
		if !ok {
			break
		}
		if pid == 2 {
			t.Fatal("AcquireProc handed out the leased pid")
		}
		seen[pid] = true
	}
	if len(seen) != 3 {
		t.Fatalf("acquired %d pids, want 3", len(seen))
	}
	s.ReleaseProc(2)
	if _, ok := s.AcquireProc(); !ok {
		t.Fatal("released pid not acquirable")
	}
}
