package shardkv

import (
	"sync"
	"sync/atomic"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// KV is one entry of a batched put.
type KV struct {
	Key string
	Val int
}

// ShardPlans routes deterministic crash plans to individual shards of a
// batched call: ShardPlans[i] drives the operations the batch executes on
// shard i, and the other shards run crash-free — the per-shard failure
// isolation the partitioning buys. A nil map (or a missing entry) means no
// planned crash for that shard.
type ShardPlans map[int]nvm.CrashPlan

// BatchScratch is the reusable working storage of one batch caller: the
// counting-sort arrays, the shard groups, the outcome slice, and the
// fan-out coordination state. A caller that owns a scratch and issues its
// batches serially through the *With variants allocates nothing in steady
// state — the server keeps one per session, which is what makes the served
// MultiPut path allocation-free. The zero value is ready to use. A scratch
// must not be shared by concurrent batches.
type BatchScratch struct {
	routed []int // shard of each entry, hashed once
	counts []int
	idxs   []int
	next   []int
	groups []group
	outs   []runtime.Outcome[int]

	// Fan-out state. Workers are launched as bound method goroutines over
	// this struct — no per-batch closure — so the parallel path stays
	// allocation-free too.
	store   *Store
	kind    batchKind
	pid     int
	keys    []string
	entries []KV
	out     []runtime.Outcome[int]
	plan    ShardPlans
	cursor  atomic.Int64
	total   atomic.Int64
	wg      sync.WaitGroup
}

// batchKind selects the per-entry operation a batch runs.
type batchKind int

const (
	batchGet batchKind = iota
	batchPut
	batchPutRetry
)

// MultiGet reads every key as process pid and returns the per-key
// detectable outcomes, aligned with keys. The batch is grouped by shard:
// all keys of one shard are served sequentially by one worker, and groups
// of distinct shards run concurrently (bounded by the Parallel option), so
// a batch touching S shards costs roughly the slowest shard's latency
// rather than the sum. A crash plan routed to one shard (or a concurrent
// CrashShard) interrupts only that shard's group.
func (s *Store) MultiGet(pid int, keys []string, plans ...ShardPlans) []runtime.Outcome[int] {
	var sc BatchScratch
	return s.MultiGetWith(&sc, pid, keys, plans...)
}

// MultiGetWith is MultiGet over caller-owned scratch: the returned slice
// aliases sc and stays valid only until sc's next batch.
func (s *Store) MultiGetWith(sc *BatchScratch, pid int, keys []string, plans ...ShardPlans) []runtime.Outcome[int] {
	sc.store, sc.kind, sc.pid, sc.keys = s, batchGet, pid, keys
	sc.routed = resizeInts(sc.routed, len(keys))
	for i, k := range keys {
		sc.routed[i] = s.ShardFor(k)
	}
	return s.runBatch(sc, len(keys), plans)
}

// MultiPut writes every entry as process pid and returns the per-entry
// detectable outcomes, aligned with entries. Grouping, fan-out and crash
// routing follow MultiGet.
func (s *Store) MultiPut(pid int, entries []KV, plans ...ShardPlans) []runtime.Outcome[int] {
	var sc BatchScratch
	return s.MultiPutWith(&sc, pid, entries, plans...)
}

// MultiPutWith is MultiPut over caller-owned scratch: the returned slice
// aliases sc and stays valid only until sc's next batch.
func (s *Store) MultiPutWith(sc *BatchScratch, pid int, entries []KV, plans ...ShardPlans) []runtime.Outcome[int] {
	sc.store, sc.kind, sc.pid, sc.entries = s, batchPut, pid, entries
	sc.routed = resizeInts(sc.routed, len(entries))
	for i := range entries {
		sc.routed[i] = s.ShardFor(entries[i].Key)
	}
	return s.runBatch(sc, len(entries), plans)
}

// MultiPutRetry writes every entry with NRL always-succeeds semantics and
// returns the total number of invocations spent (len(entries) when no
// retry was needed). Shard groups fan out like MultiPut.
func (s *Store) MultiPutRetry(pid int, entries []KV) int {
	var sc BatchScratch
	return s.MultiPutRetryWith(&sc, pid, entries)
}

// MultiPutRetryWith is MultiPutRetry over caller-owned scratch.
func (s *Store) MultiPutRetryWith(sc *BatchScratch, pid int, entries []KV) int {
	sc.store, sc.kind, sc.pid, sc.entries = s, batchPutRetry, pid, entries
	sc.routed = resizeInts(sc.routed, len(entries))
	for i := range entries {
		sc.routed[i] = s.ShardFor(entries[i].Key)
	}
	sc.total.Store(0)
	s.runBatch(sc, len(entries), nil)
	return int(sc.total.Load())
}

// runBatch groups sc.routed, sizes the outcome slice, runs every group
// (sequentially or fanned out), and releases the caller-owned inputs from
// the scratch so they cannot leak past the batch.
func (s *Store) runBatch(sc *BatchScratch, n int, plans []ShardPlans) []runtime.Outcome[int] {
	if len(plans) > 1 {
		panic("shardkv: at most one ShardPlans per batched call")
	}
	if len(plans) == 1 {
		sc.plan = plans[0]
	}
	sc.outs = resizeOutcomes(sc.outs, n)
	sc.out = sc.outs
	groups := s.groupRouted(sc, n)
	workers := s.parallel
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 || len(groups) == 1 {
		for _, g := range groups {
			sc.run(g)
		}
	} else {
		sc.cursor.Store(0)
		sc.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go sc.work()
		}
		sc.wg.Wait()
	}
	out := sc.out
	sc.keys, sc.entries, sc.out, sc.plan = nil, nil, nil, nil
	return out
}

// work is one fan-out worker: it claims groups off the shared cursor until
// none remain. Within a group operations stay sequential, so each shard
// sees at most one in-flight operation per batch — the per-process
// serialization rule of the model, kept per shard system.
func (sc *BatchScratch) work() {
	defer sc.wg.Done()
	for {
		g := int(sc.cursor.Add(1)) - 1
		if g >= len(sc.groups) {
			return
		}
		sc.run(sc.groups[g])
	}
}

// run executes one shard group of the batch.
func (sc *BatchScratch) run(g group) {
	shd := sc.store.shards[g.shard]
	var plan nvm.CrashPlan
	if sc.plan != nil {
		plan = sc.plan[g.shard]
	}
	switch sc.kind {
	case batchGet:
		for _, i := range g.idxs {
			if plan == nil {
				sc.out[i] = shd.get(sc.pid, sc.keys[i])
			} else {
				sc.out[i] = shd.get(sc.pid, sc.keys[i], plan)
			}
		}
	case batchPut:
		for _, i := range g.idxs {
			e := sc.entries[i]
			if plan == nil {
				sc.out[i] = shd.put(sc.pid, e.Key, e.Val)
			} else {
				sc.out[i] = shd.put(sc.pid, e.Key, e.Val, plan)
			}
		}
	case batchPutRetry:
		n := 0
		for _, i := range g.idxs {
			n += shd.putRetry(sc.pid, sc.entries[i].Key, sc.entries[i].Val)
		}
		sc.total.Add(int64(n))
	}
}

// group is one shard's slice of a batch: the indices of the batch entries
// routed to it, in input order.
type group struct {
	shard int
	idxs  []int
}

// groupRouted buckets the first n entries of sc.routed by serving shard
// with a counting sort over flat, reused arrays — no per-shard map or
// slice-append churn, and no allocation once the scratch has warmed up.
func (s *Store) groupRouted(sc *BatchScratch, n int) []group {
	sc.groups = sc.groups[:0]
	if n == 0 {
		return nil
	}
	nShards := len(s.shards)
	sc.counts = resizeInts(sc.counts, nShards)
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	for i := 0; i < n; i++ {
		sc.counts[sc.routed[i]]++
	}
	// Prefix sums turn counts into bucket offsets into one flat index array.
	sc.idxs = resizeInts(sc.idxs, n)
	sc.next = resizeInts(sc.next, nShards)
	sum := 0
	for sh := 0; sh < nShards; sh++ {
		sc.next[sh] = sum
		sum += sc.counts[sh]
	}
	for i := 0; i < n; i++ {
		sh := sc.routed[i]
		sc.idxs[sc.next[sh]] = i
		sc.next[sh]++
	}
	for sh := 0; sh < nShards; sh++ {
		if c := sc.counts[sh]; c > 0 {
			sc.groups = append(sc.groups, group{shard: sh, idxs: sc.idxs[sc.next[sh]-c : sc.next[sh]]})
		}
	}
	return sc.groups
}

// resizeInts returns buf resized to n, reallocating only on growth.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// resizeOutcomes returns buf resized to n, reallocating only on growth.
// Every index is written by exactly one group, so stale contents need no
// zeroing.
func resizeOutcomes(buf []runtime.Outcome[int], n int) []runtime.Outcome[int] {
	if cap(buf) < n {
		return make([]runtime.Outcome[int], n)
	}
	return buf[:n]
}
