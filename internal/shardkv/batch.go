package shardkv

import (
	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// KV is one entry of a batched put.
type KV struct {
	Key string
	Val int
}

// ShardPlans routes deterministic crash plans to individual shards of a
// batched call: ShardPlans[i] drives the operations the batch executes on
// shard i, and the other shards run crash-free — the per-shard failure
// isolation the partitioning buys. A nil map (or a missing entry) means no
// planned crash for that shard.
type ShardPlans map[int]nvm.CrashPlan

// MultiGet reads every key as process pid and returns the per-key
// detectable outcomes, aligned with keys. The batch is grouped by shard:
// all keys of one shard are served in one contiguous run before the next
// shard is visited, so a crash plan routed to one shard (or a concurrent
// CrashShard) interrupts only that group.
func (s *Store) MultiGet(pid int, keys []string, plans ...ShardPlans) []runtime.Outcome[int] {
	out := make([]runtime.Outcome[int], len(keys))
	for sh, idxs := range s.groupKeys(keys) {
		plan := planFor(plans, sh)
		shd := s.shards[sh]
		for _, i := range idxs {
			out[i] = shd.get(pid, keys[i], plan)
		}
	}
	return out
}

// MultiPut writes every entry as process pid and returns the per-entry
// detectable outcomes, aligned with entries. Grouping and crash routing
// follow MultiGet.
func (s *Store) MultiPut(pid int, entries []KV, plans ...ShardPlans) []runtime.Outcome[int] {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	out := make([]runtime.Outcome[int], len(entries))
	for sh, idxs := range s.groupKeys(keys) {
		plan := planFor(plans, sh)
		shd := s.shards[sh]
		for _, i := range idxs {
			out[i] = shd.put(pid, entries[i].Key, entries[i].Val, plan)
		}
	}
	return out
}

// MultiPutRetry writes every entry with NRL always-succeeds semantics and
// returns the total number of invocations spent (len(entries) when no
// retry was needed).
func (s *Store) MultiPutRetry(pid int, entries []KV) int {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	total := 0
	for sh, idxs := range s.groupKeys(keys) {
		shd := s.shards[sh]
		for _, i := range idxs {
			total += shd.putRetry(pid, entries[i].Key, entries[i].Val)
		}
	}
	return total
}

// groupKeys buckets key indices by serving shard, preserving input order
// within each bucket.
func (s *Store) groupKeys(keys []string) map[int][]int {
	groups := make(map[int][]int)
	for i, k := range keys {
		sh := s.ShardFor(k)
		groups[sh] = append(groups[sh], i)
	}
	return groups
}

// planFor resolves the crash plan routed to shard. At most one ShardPlans
// may be given: unlike the runtime's per-attempt CrashPlan variadic, extra
// elements have no meaning here, so they are rejected rather than ignored.
func planFor(plans []ShardPlans, shard int) nvm.CrashPlan {
	if len(plans) > 1 {
		panic("shardkv: at most one ShardPlans per batched call")
	}
	if len(plans) == 0 || plans[0] == nil {
		return nil
	}
	return plans[0][shard]
}
