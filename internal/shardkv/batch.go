package shardkv

import (
	"sync"
	"sync/atomic"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// KV is one entry of a batched put.
type KV struct {
	Key string
	Val int
}

// ShardPlans routes deterministic crash plans to individual shards of a
// batched call: ShardPlans[i] drives the operations the batch executes on
// shard i, and the other shards run crash-free — the per-shard failure
// isolation the partitioning buys. A nil map (or a missing entry) means no
// planned crash for that shard.
type ShardPlans map[int]nvm.CrashPlan

// MultiGet reads every key as process pid and returns the per-key
// detectable outcomes, aligned with keys. The batch is grouped by shard:
// all keys of one shard are served sequentially by one worker, and groups
// of distinct shards run concurrently (bounded by the Parallel option), so
// a batch touching S shards costs roughly the slowest shard's latency
// rather than the sum. A crash plan routed to one shard (or a concurrent
// CrashShard) interrupts only that shard's group.
func (s *Store) MultiGet(pid int, keys []string, plans ...ShardPlans) []runtime.Outcome[int] {
	out := make([]runtime.Outcome[int], len(keys))
	s.fanOut(s.groupKeys(keys), plans, func(g group, plan nvm.CrashPlan) {
		shd := s.shards[g.shard]
		for _, i := range g.idxs {
			if plan == nil {
				out[i] = shd.get(pid, keys[i])
			} else {
				out[i] = shd.get(pid, keys[i], plan)
			}
		}
	})
	return out
}

// MultiPut writes every entry as process pid and returns the per-entry
// detectable outcomes, aligned with entries. Grouping, fan-out and crash
// routing follow MultiGet.
func (s *Store) MultiPut(pid int, entries []KV, plans ...ShardPlans) []runtime.Outcome[int] {
	out := make([]runtime.Outcome[int], len(entries))
	s.fanOut(s.groupEntries(entries), plans, func(g group, plan nvm.CrashPlan) {
		shd := s.shards[g.shard]
		for _, i := range g.idxs {
			if plan == nil {
				out[i] = shd.put(pid, entries[i].Key, entries[i].Val)
			} else {
				out[i] = shd.put(pid, entries[i].Key, entries[i].Val, plan)
			}
		}
	})
	return out
}

// MultiPutRetry writes every entry with NRL always-succeeds semantics and
// returns the total number of invocations spent (len(entries) when no
// retry was needed). Shard groups fan out like MultiPut.
func (s *Store) MultiPutRetry(pid int, entries []KV) int {
	var total atomic.Int64
	s.fanOut(s.groupEntries(entries), nil, func(g group, _ nvm.CrashPlan) {
		shd := s.shards[g.shard]
		n := 0
		for _, i := range g.idxs {
			n += shd.putRetry(pid, entries[i].Key, entries[i].Val)
		}
		total.Add(int64(n))
	})
	return int(total.Load())
}

// group is one shard's slice of a batch: the indices of the batch entries
// routed to it, in input order.
type group struct {
	shard int
	idxs  []int
}

// groupKeys buckets key indices by serving shard with a counting sort over
// two flat arrays — no per-shard map or slice-append churn.
func (s *Store) groupKeys(keys []string) []group {
	return s.groupBy(len(keys), func(i int) int { return s.ShardFor(keys[i]) })
}

func (s *Store) groupEntries(entries []KV) []group {
	return s.groupBy(len(entries), func(i int) int { return s.ShardFor(entries[i].Key) })
}

func (s *Store) groupBy(n int, shardOf func(int) int) []group {
	if n == 0 {
		return nil
	}
	nShards := len(s.shards)
	routed := make([]int, n) // shard of each entry, hashed once
	counts := make([]int, nShards)
	for i := 0; i < n; i++ {
		sh := shardOf(i)
		routed[i] = sh
		counts[sh]++
	}
	// Prefix sums turn counts into bucket offsets into one flat index array.
	idxs := make([]int, n)
	next := make([]int, nShards)
	sum := 0
	nonEmpty := 0
	for sh := 0; sh < nShards; sh++ {
		next[sh] = sum
		sum += counts[sh]
		if counts[sh] > 0 {
			nonEmpty++
		}
	}
	for i := 0; i < n; i++ {
		sh := routed[i]
		idxs[next[sh]] = i
		next[sh]++
	}
	groups := make([]group, 0, nonEmpty)
	for sh := 0; sh < nShards; sh++ {
		if counts[sh] > 0 {
			groups = append(groups, group{shard: sh, idxs: idxs[next[sh]-counts[sh] : next[sh]]})
		}
	}
	return groups
}

// fanOut runs fn once per shard group. Groups run concurrently on up to
// s.parallel worker goroutines; within a group operations stay sequential,
// so each shard sees at most one in-flight operation per batch — the
// per-process serialization rule of the model, kept per shard system.
func (s *Store) fanOut(groups []group, plans []ShardPlans, fn func(group, nvm.CrashPlan)) {
	if len(groups) == 0 {
		return
	}
	workers := s.parallel
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 || len(groups) == 1 {
		for _, g := range groups {
			fn(g, planFor(plans, g.shard))
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				g := int(cursor.Add(1)) - 1
				if g >= len(groups) {
					return
				}
				fn(groups[g], planFor(plans, groups[g].shard))
			}
		}()
	}
	wg.Wait()
}

// planFor resolves the crash plan routed to shard. At most one ShardPlans
// may be given: unlike the runtime's per-attempt CrashPlan variadic, extra
// elements have no meaning here, so they are rejected rather than ignored.
func planFor(plans []ShardPlans, shard int) nvm.CrashPlan {
	if len(plans) > 1 {
		panic("shardkv: at most one ShardPlans per batched call")
	}
	if len(plans) == 0 || plans[0] == nil {
		return nil
	}
	return plans[0][shard]
}
