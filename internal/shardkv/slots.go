package shardkv

import "sync"

// slotPool hands out the store's process identities [0, procs) to
// transient owners — the network front-end leases one slot per client
// session, so a remote session occupies exactly one process identity of
// the paper's N-process model for as long as it lives.
type slotPool struct {
	mu   sync.Mutex
	free []int
}

func newSlotPool(procs int) *slotPool {
	p := &slotPool{free: make([]int, procs)}
	// Hand out low pids first: free is kept as a stack with the smallest
	// pid on top, so tests see deterministic assignment.
	for i := range p.free {
		p.free[i] = procs - 1 - i
	}
	return p
}

// AcquireProc leases a free process identity from the store. It returns
// false when every slot is leased: the caller must not invent pids, since
// two concurrent operations by the same process would break the
// one-operation-per-process rule of the model.
func (s *Store) AcquireProc() (int, bool) {
	s.slots.mu.Lock()
	defer s.slots.mu.Unlock()
	n := len(s.slots.free)
	if n == 0 {
		return 0, false
	}
	pid := s.slots.free[n-1]
	s.slots.free = s.slots.free[:n-1]
	return pid, true
}

// LeaseProc leases the specific process identity pid, reporting whether it
// was free. Session recovery uses it: a restarted server re-leases exactly
// the slots its recovered sessions held, so resumed clients keep their
// process identity across a whole-process crash.
func (s *Store) LeaseProc(pid int) bool {
	if pid < 0 || pid >= s.procs {
		return false
	}
	s.slots.mu.Lock()
	defer s.slots.mu.Unlock()
	for i, f := range s.slots.free {
		if f == pid {
			last := len(s.slots.free) - 1
			s.slots.free[i] = s.slots.free[last]
			s.slots.free = s.slots.free[:last]
			return true
		}
	}
	return false
}

// ReleaseProc returns a leased process identity to the pool. Releasing a
// pid that is out of range or already free panics: a double release would
// let two owners share one process identity.
func (s *Store) ReleaseProc(pid int) {
	if pid < 0 || pid >= s.procs {
		panic("shardkv: ReleaseProc of out-of-range pid")
	}
	s.slots.mu.Lock()
	defer s.slots.mu.Unlock()
	for _, f := range s.slots.free {
		if f == pid {
			panic("shardkv: double ReleaseProc")
		}
	}
	s.slots.free = append(s.slots.free, pid)
}

// FreeSlots reports how many process identities are currently unleased.
func (s *Store) FreeSlots() int {
	s.slots.mu.Lock()
	defer s.slots.mu.Unlock()
	return len(s.slots.free)
}
