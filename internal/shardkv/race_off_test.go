//go:build !race

package shardkv

const raceEnabled = false
