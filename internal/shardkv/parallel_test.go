package shardkv

import (
	"fmt"
	"sync"
	"testing"

	"detectable/internal/nvm"
)

// TestParallelMultiPutAlignsWithEntries pins that the fan-out keeps
// outcome alignment: outs[i] is entry i's verdict, regardless of which
// worker served its shard.
func TestParallelMultiPutAlignsWithEntries(t *testing.T) {
	s := New(8, 2, Parallel(8))
	entries := make([]KV, 200)
	for i := range entries {
		entries[i] = KV{Key: fmt.Sprintf("k-%d", i), Val: i * 11}
	}
	outs := s.MultiPut(0, entries)
	if len(outs) != len(entries) {
		t.Fatalf("outs = %d, want %d", len(outs), len(entries))
	}
	for i, out := range outs {
		if !out.Status.Linearized() {
			t.Fatalf("entry %d not linearized: %+v", i, out)
		}
	}
	for i, e := range entries {
		if got := s.Peek(e.Key); got != e.Val {
			t.Fatalf("key %d: peek = %d, want %d", i, got, e.Val)
		}
	}
	gets := s.MultiGet(0, keysOf(entries))
	for i, out := range gets {
		if !out.Status.Linearized() || out.Resp != entries[i].Val {
			t.Fatalf("get %d: %+v, want %d", i, out, entries[i].Val)
		}
	}
}

// TestParallelEqualsSerial pins that the parallel fan-out and the serial
// path compute identical results and stats for the same batch.
func TestParallelEqualsSerial(t *testing.T) {
	entries := make([]KV, 100)
	for i := range entries {
		entries[i] = KV{Key: fmt.Sprintf("k-%d", i%37), Val: i}
	}
	par := New(4, 1, Parallel(4))
	ser := New(4, 1, Parallel(1))
	po := par.MultiPut(0, entries)
	so := ser.MultiPut(0, entries)
	for i := range entries {
		if po[i].Status != so[i].Status {
			t.Fatalf("entry %d: parallel %v vs serial %v", i, po[i].Status, so[i].Status)
		}
	}
	if pt, st := par.TotalStats(), ser.TotalStats(); pt != st {
		t.Fatalf("stats diverge: parallel %+v serial %+v", pt, st)
	}
}

// TestParallelPlansRouteToShards pins that a ShardPlans map still routes a
// deterministic crash to exactly one shard's group under the fan-out.
func TestParallelPlansRouteToShards(t *testing.T) {
	s := New(4, 2, Parallel(4))
	entries := make([]KV, 64)
	for i := range entries {
		entries[i] = KV{Key: fmt.Sprintf("k-%d", i), Val: i}
	}
	target := s.ShardFor(entries[0].Key)
	outs := s.MultiPut(0, entries, ShardPlans{target: nvm.CrashAtStep(1)})
	sawInterrupted, sawClean := false, false
	for i, out := range outs {
		if s.ShardFor(entries[i].Key) == target {
			if out.Crashes > 0 || !out.Status.Linearized() {
				sawInterrupted = true
			}
		} else if out.Status.Linearized() && out.Crashes == 0 {
			sawClean = true
		}
	}
	if !sawInterrupted {
		t.Fatal("planned crash did not interrupt the target shard's group")
	}
	if !sawClean {
		t.Fatal("other shards did not serve cleanly")
	}
}

// TestRaceParallelBatches hammers parallel batched calls from every
// process while a storm goroutine crashes random shards — the -race
// certificate for the fan-out workers and the atomic stats. Every batch
// must come back fully linearized (MultiPutRetry semantics) and the op
// counters must equal the operations issued.
func TestRaceParallelBatches(t *testing.T) {
	const (
		shards  = 8
		procs   = 4
		rounds  = 30
		perProc = 16
	)
	s := New(shards, procs, Parallel(shards))
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() { // crash storm, paced so retries can make progress
		defer close(stormDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if i++; i%500 == 0 {
				s.CrashShard((i / 500) % shards)
			}
		}
	}()
	var workers sync.WaitGroup
	for p := 0; p < procs; p++ {
		workers.Add(1)
		go func(pid int) {
			defer workers.Done()
			entries := make([]KV, perProc)
			keys := make([]string, perProc)
			for r := 0; r < rounds; r++ {
				for i := range entries {
					entries[i] = KV{Key: fmt.Sprintf("p%d-%d", pid, i), Val: r}
					keys[i] = entries[i].Key
				}
				s.MultiPutRetry(pid, entries)
				s.MultiGet(pid, keys)
			}
		}(p)
	}
	workers.Wait()
	close(stop)
	<-stormDone

	// Every put eventually linearized; each process's keys hold its last
	// round value.
	for p := 0; p < procs; p++ {
		for i := 0; i < perProc; i++ {
			if got := s.Peek(fmt.Sprintf("p%d-%d", p, i)); got != rounds-1 {
				t.Fatalf("p%d-%d = %d, want %d", p, i, got, rounds-1)
			}
		}
	}
}

func keysOf(entries []KV) []string {
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}
