package shardkv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
)

// keyOnShard returns a key that hashes to the wanted shard.
func keyOnShard(t *testing.T, s *Store, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s.ShardFor(k) == shard {
			return k
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return ""
}

func TestPutGetDelAcrossShards(t *testing.T) {
	s := New(4, 2)
	for i := 0; i < 4; i++ {
		k := keyOnShard(t, s, i)
		s.Put(0, k, 100+i)
		if out := s.Get(1, k); out.Resp != 100+i {
			t.Fatalf("shard %d: get %s = %d, want %d", i, k, out.Resp, 100+i)
		}
		s.Del(0, k)
		if out := s.Get(1, k); out.Resp != 0 {
			t.Fatalf("shard %d: get %s after del = %d, want 0", i, k, out.Resp)
		}
	}
}

func TestShardForStableAndCovering(t *testing.T) {
	s := New(8, 1)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		sh := s.ShardFor(k)
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardFor(%s) = %d out of range", k, sh)
		}
		if sh != s.ShardFor(k) {
			t.Fatalf("ShardFor(%s) unstable", k)
		}
		seen[sh] = true
	}
	if len(seen) != 8 {
		t.Fatalf("1000 keys cover only %d/8 shards", len(seen))
	}
}

// TestCrashShardIsolation routes a planned crash into one shard's put and
// checks the other shards' epochs never advance: they keep serving
// crash-free.
func TestCrashShardIsolation(t *testing.T) {
	s := New(4, 2)
	victim := keyOnShard(t, s, 0)
	s.Put(0, victim, 1)

	// Crash before the register's linearization-point store: definite fail.
	out := s.Put(0, victim, 9, nvm.CrashAtStep(10))
	if out.Status != runtime.StatusFailed {
		t.Fatalf("victim put status %v, want failed", out.Status)
	}
	if got := s.Peek(victim); got != 1 {
		t.Fatalf("victim = %d after failed put, want 1", got)
	}

	for i := 1; i < 4; i++ {
		if e := s.System(i).Space().Epoch().Current(); e != 0 {
			t.Fatalf("shard %d epoch = %d, want 0 (crash leaked across shards)", i, e)
		}
		k := keyOnShard(t, s, i)
		if out := s.Put(0, k, i); out.Status != runtime.StatusOK || out.Crashes != 0 {
			t.Fatalf("shard %d put outcome %+v, want clean ok", i, out)
		}
	}
	if e := s.System(0).Space().Epoch().Current(); e == 0 {
		t.Fatal("victim shard epoch did not advance")
	}
}

func TestCrashShardInterruptsOnlyThatShard(t *testing.T) {
	s := New(2, 2)
	k0, k1 := keyOnShard(t, s, 0), keyOnShard(t, s, 1)
	s.CrashShard(0)
	// Shard 0 advanced, shard 1 did not; both still serve new operations.
	if e := s.System(0).Space().Epoch().Current(); e != 1 {
		t.Fatalf("shard 0 epoch = %d, want 1", e)
	}
	if e := s.System(1).Space().Epoch().Current(); e != 0 {
		t.Fatalf("shard 1 epoch = %d, want 0", e)
	}
	if out := s.Put(0, k0, 5); !out.Status.Linearized() {
		t.Fatalf("put on crashed shard after recovery: %+v", out)
	}
	if out := s.Put(0, k1, 6); out.Status != runtime.StatusOK {
		t.Fatalf("put on untouched shard: %+v", out)
	}
}

func TestMultiPutMultiGetAligned(t *testing.T) {
	s := New(4, 2)
	var entries []KV
	var keys []string
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%d", i)
		entries = append(entries, KV{Key: k, Val: i * 7})
		keys = append(keys, k)
	}
	outs := s.MultiPut(0, entries)
	if len(outs) != len(entries) {
		t.Fatalf("MultiPut returned %d outcomes, want %d", len(outs), len(entries))
	}
	for i, out := range outs {
		if out.Status != runtime.StatusOK {
			t.Fatalf("entry %d outcome %+v", i, out)
		}
	}
	gets := s.MultiGet(1, keys)
	for i, out := range gets {
		if !out.Status.Linearized() || out.Resp != i*7 {
			t.Fatalf("key %d read %+v, want %d", i, out, i*7)
		}
	}
}

// TestMultiPutShardRoutedCrash gives the batch a crash plan for exactly one
// shard: every entry on the other shards must complete crash-free.
func TestMultiPutShardRoutedCrash(t *testing.T) {
	s := New(4, 2)
	var entries []KV
	for i := 0; i < 40; i++ {
		entries = append(entries, KV{Key: fmt.Sprintf("key-%d", i), Val: i})
	}
	outs := s.MultiPut(0, entries, ShardPlans{2: nvm.CrashAtStep(5)})
	sawCrash := false
	for i, out := range outs {
		sh := s.ShardFor(entries[i].Key)
		if sh != 2 {
			if out.Status != runtime.StatusOK || out.Crashes != 0 {
				t.Fatalf("entry %d (shard %d) outcome %+v, want clean ok", i, sh, out)
			}
			continue
		}
		if out.Crashes > 0 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("planned crash never fired on shard 2")
	}
	for i := 0; i < 4; i++ {
		e := s.System(i).Space().Epoch().Current()
		if i == 2 && e == 0 {
			t.Fatal("shard 2 epoch did not advance")
		}
		if i != 2 && e != 0 {
			t.Fatalf("shard %d epoch = %d, want 0", i, e)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(2, 2)
	k := keyOnShard(t, s, 0)
	s.Put(0, k, 1)
	s.Get(1, k)
	s.Del(0, k)
	s.Put(0, k, 2, nvm.CrashAtStep(11)) // after the store: recovered
	s.Put(0, k, 3, nvm.CrashAtStep(10)) // before the store: failed
	s.CrashShard(0)

	st := s.StatsFor(0)
	if st.Puts != 3 || st.Gets != 1 || st.Dels != 1 {
		t.Fatalf("op counts %+v", st)
	}
	if st.Recovered != 1 || st.Failed != 1 {
		t.Fatalf("verdict counts %+v", st)
	}
	if st.CrashesSeen < 2 || st.CrashesInjected != 1 {
		t.Fatalf("crash counts %+v", st)
	}
	if other := s.StatsFor(1); other.Ops() != 0 {
		t.Fatalf("shard 1 stats %+v, want empty", other)
	}
	if tot := s.TotalStats(); tot.Ops() != st.Ops() {
		t.Fatalf("total %+v vs shard 0 %+v", tot, st)
	}
}

func TestRetryCountsAsOneOp(t *testing.T) {
	s := New(1, 1)
	s.PutRetry(0, "a", 1)
	s.DelRetry(0, "a")
	if v := s.GetRetry(0, "a"); v != 0 {
		t.Fatalf("GetRetry = %d, want 0", v)
	}
	st := s.StatsFor(0)
	if st.Puts != 1 || st.Dels != 1 || st.Gets != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestKeysMergedSorted(t *testing.T) {
	s := New(4, 1)
	s.Put(0, "b", 1)
	s.Put(0, "a", 2)
	s.Put(0, "c", 3)
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

// TestDetectabilityUnderShardCrashStorm is the core contract test: procs
// own disjoint key sets, a storm goroutine crashes random single shards,
// and every put resolves to a definite verdict the owner uses to track the
// expected value. Any lost or duplicated effect is a detectability
// violation and fails the test.
func TestDetectabilityUnderShardCrashStorm(t *testing.T) {
	const (
		procs       = 3
		keysPerProc = 4
		opsPerKey   = 15
		shards      = 4
		stormPeriod = 400
	)
	s := New(shards, procs)

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		srng := rand.New(rand.NewSource(99))
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			if i%stormPeriod == 0 {
				s.CrashShard(srng.Intn(shards))
			}
		}
	}()

	expected := make([]map[string]int, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			exp := make(map[string]int)
			prng := rand.New(rand.NewSource(int64(pid)))
			for k := 0; k < keysPerProc; k++ {
				key := fmt.Sprintf("p%d-k%d", pid, k)
				for i := 1; i <= opsPerKey; i++ {
					val := pid*1000 + k*100 + i
					out := s.Put(pid, key, val)
					switch out.Status {
					case runtime.StatusOK, runtime.StatusRecovered:
						exp[key] = val
					case runtime.StatusFailed, runtime.StatusNotInvoked:
						// Definitely not linearized: expected unchanged.
					default:
						t.Errorf("indefinite outcome %+v", out)
					}
					if prng.Intn(4) == 0 {
						got := s.GetRetry(pid, key)
						if got != exp[key] {
							t.Errorf("pid %d key %s: read %d, expected %d", pid, key, got, exp[key])
						}
					}
				}
			}
			expected[pid] = exp
		}(p)
	}
	wg.Wait()
	close(stop)
	storm.Wait()

	for p := 0; p < procs; p++ {
		for key, want := range expected[p] {
			if got := s.Peek(key); got != want {
				t.Fatalf("pid %d key %s: final %d, want %d (lost or duplicated effect)", p, key, got, want)
			}
		}
	}
}
