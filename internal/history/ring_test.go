package history

import (
	"sync"
	"testing"

	"detectable/internal/spec"
)

func TestRingModeBasics(t *testing.T) {
	l := NewRing(100)
	if l.Mode() != ModeRing {
		t.Fatalf("mode = %v, want ring", l.Mode())
	}
	if l.Capacity() != 128 {
		t.Fatalf("capacity = %d, want 128 (rounded up to a power of two)", l.Capacity())
	}
	if got := NewRing(1).Capacity(); got != 64 {
		t.Fatalf("minimum capacity = %d, want 64", got)
	}

	l.Invoke(0, spec.NewOp(spec.MethodWrite, 1))
	l.Return(0, 0)
	l.Crash()
	evs := l.Events()
	if len(evs) != 3 || evs[0].Kind != KindInvoke || evs[1].Kind != KindReturn || evs[2].Kind != KindCrash {
		t.Fatalf("events = %v", evs)
	}
	if l.Len() != 3 || l.Appended() != 3 || l.Dropped() != 0 {
		t.Fatalf("len/appended/dropped = %d/%d/%d", l.Len(), l.Appended(), l.Dropped())
	}
}

func TestRingOverwriteKeepsMostRecentInOrder(t *testing.T) {
	l := NewRing(64)
	const total = 300
	for i := 0; i < total; i++ {
		l.Return(0, i)
	}
	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d events, want 64", len(evs))
	}
	for i, e := range evs {
		if want := total - 64 + i; e.Resp != want {
			t.Fatalf("event %d: resp = %d, want %d (sequence order)", i, e.Resp, want)
		}
	}
	if l.Appended() != total || l.Dropped() != total-64 {
		t.Fatalf("appended/dropped = %d/%d", l.Appended(), l.Dropped())
	}
}

func TestOffModeDiscards(t *testing.T) {
	l := NewOff()
	l.Invoke(1, spec.NewOp(spec.MethodRead))
	l.Return(1, 7)
	if l.Len() != 0 || l.Events() != nil || l.String() != "" {
		t.Fatalf("off log retained events")
	}
	if l.Appended() != 2 || l.Dropped() != 2 {
		t.Fatalf("appended/dropped = %d/%d, want 2/2", l.Appended(), l.Dropped())
	}
}

func TestFullModeUnchanged(t *testing.T) {
	var l Log // zero value: full mode
	if l.Mode() != ModeFull || l.Capacity() != 0 {
		t.Fatalf("zero log mode/capacity = %v/%d", l.Mode(), l.Capacity())
	}
	for i := 0; i < 1000; i++ {
		l.Return(0, i)
	}
	evs := l.Events()
	if len(evs) != 1000 || evs[999].Resp != 999 {
		t.Fatalf("full log retained %d events", len(evs))
	}
	if l.Dropped() != 0 {
		t.Fatalf("full log dropped %d", l.Dropped())
	}
}

// TestRingConcurrentAppendAndSnapshot hammers a small ring from many
// goroutines while snapshots run concurrently; run under -race this is the
// ring's data-race certificate, and the sequence numbers of every snapshot
// must be strictly increasing.
func TestRingConcurrentAppendAndSnapshot(t *testing.T) {
	l := NewRing(64)
	const (
		writers = 8
		each    = 2000
	)
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // concurrent snapshotter
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = l.Events()
			_ = l.String()
			_ = l.Len()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Return(w, w*each+i)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	if l.Appended() != writers*each {
		t.Fatalf("appended = %d, want %d", l.Appended(), writers*each)
	}
	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	// Per-writer responses must appear in increasing order (sequence
	// numbers reconstruct a valid real-time order).
	last := make(map[int]int)
	for _, e := range evs {
		if prev, ok := last[e.PID]; ok && e.Resp <= prev {
			t.Fatalf("writer %d out of order: %d after %d", e.PID, e.Resp, prev)
		}
		last[e.PID] = e.Resp
	}
}
