package history

import (
	"sync"
	"testing"

	"detectable/internal/spec"
)

// TestRingWrapBoundaries pins Events ordering at the exact wraparound
// boundaries: capacity-1, capacity, capacity+1 and a multiple of capacity
// plus one. At every boundary the snapshot must be precisely the most
// recent min(appended, cap) events in append order.
func TestRingWrapBoundaries(t *testing.T) {
	const cap = 64
	l := NewRing(cap)
	check := func(appended int) {
		t.Helper()
		evs := l.Events()
		want := appended
		if want > cap {
			want = cap
		}
		if len(evs) != want {
			t.Fatalf("after %d appends: retained %d, want %d", appended, len(evs), want)
		}
		for i, e := range evs {
			if wantResp := appended - want + i; e.Resp != wantResp {
				t.Fatalf("after %d appends: event %d has resp %d, want %d", appended, i, e.Resp, wantResp)
			}
		}
		if int(l.Appended()) != appended {
			t.Fatalf("Appended() = %d, want %d", l.Appended(), appended)
		}
		wantDropped := appended - want
		if int(l.Dropped()) != wantDropped {
			t.Fatalf("Dropped() = %d, want %d", l.Dropped(), wantDropped)
		}
	}
	boundaries := map[int]bool{cap - 1: true, cap: true, cap + 1: true, 3*cap: true, 3*cap + 1: true}
	for n := 1; n <= 3*cap+1; n++ {
		l.Return(0, n-1)
		if boundaries[n] {
			check(n)
		}
	}
}

// TestRingWrapKindFidelity: wrapping must not corrupt event payloads — a
// mixed-kind stream read back across a wrap keeps every field intact.
func TestRingWrapKindFidelity(t *testing.T) {
	l := NewRing(64)
	const rounds = 50 // 200 events through a 64-slot ring
	for i := 0; i < rounds; i++ {
		l.Invoke(i%3, spec.NewOp(spec.MethodWrite, i))
		l.Return(i%3, i)
		l.Crash()
		l.RecoverReturn(i%3, i, i%2 == 0)
	}
	evs := l.Events()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	// The stream's period is 4; the ring size is a multiple of 4, so the
	// snapshot starts at a known phase. Verify each event against the
	// generator at its reconstructed global position.
	total := rounds * 4
	for i, e := range evs {
		pos := total - 64 + i
		round, phase := pos/4, pos%4
		switch phase {
		case 0:
			if e.Kind != KindInvoke || e.PID != round%3 || e.Op.Args[0] != round {
				t.Fatalf("event %d (pos %d): bad invoke %+v", i, pos, e)
			}
		case 1:
			if e.Kind != KindReturn || e.PID != round%3 || e.Resp != round {
				t.Fatalf("event %d (pos %d): bad return %+v", i, pos, e)
			}
		case 2:
			if e.Kind != KindCrash {
				t.Fatalf("event %d (pos %d): bad crash %+v", i, pos, e)
			}
		case 3:
			if e.Kind != KindRecoverReturn || e.Fail != (round%2 == 0) {
				t.Fatalf("event %d (pos %d): bad recover %+v", i, pos, e)
			}
		}
	}
}

// TestRingConcurrentWrapReconstruction is the sequence-number
// reconstruction pin under contention: many writers wrap a small ring
// concurrently; afterwards the snapshot must hold exactly capacity events,
// and for every writer the retained events must be a contiguous tail of
// that writer's appends, ending in the writer's final append. Both follow
// from reconstruction by global ticket order — per-writer tickets increase,
// so the ring window (the last `capacity` tickets) intersects each writer's
// sequence in a suffix — and both fail if slots are ordered by position
// instead of sequence number.
func TestRingConcurrentWrapReconstruction(t *testing.T) {
	const (
		capacity = 64
		writers  = 8
		each     = 5000
	)
	l := NewRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Return(w, i)
			}
		}(w)
	}
	wg.Wait()
	// One sequential sentinel append per writer after quiescence: these
	// hold the highest `writers` tickets, so every writer is represented
	// and every writer's retained events must end in its sentinel.
	for w := 0; w < writers; w++ {
		l.Return(w, each)
	}

	if got := l.Appended(); got != writers*each+writers {
		t.Fatalf("Appended() = %d, want %d", got, writers*each+writers)
	}
	evs := l.Events()
	if len(evs) != capacity {
		t.Fatalf("retained %d, want %d (no holes after quiescence)", len(evs), capacity)
	}
	perWriter := make(map[int][]int)
	for _, e := range evs {
		perWriter[e.PID] = append(perWriter[e.PID], e.Resp)
	}
	if len(perWriter) != writers {
		t.Fatalf("only %d of %d writers represented in the snapshot", len(perWriter), writers)
	}
	for w, resps := range perWriter {
		// The ring window is a suffix of the global ticket order and each
		// writer's tickets increase, so the writer's retained events are a
		// contiguous tail of its appends, ending in its sentinel.
		for i := 1; i < len(resps); i++ {
			if resps[i] != resps[i-1]+1 {
				t.Fatalf("writer %d: retained resps %v are not a contiguous tail", w, resps)
			}
		}
		if last := resps[len(resps)-1]; last != each {
			t.Fatalf("writer %d: sentinel (resp %d) missing; tail ends at %d", w, each, last)
		}
	}
}
