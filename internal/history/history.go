// Package history records concurrent executions — invocations, responses,
// system-wide crashes and recovery verdicts — for offline checking against
// durable linearizability and detectability.
//
// The recorded order of events is a valid real-time order: an event is
// appended while the operation holds no pending effect that could reorder
// with it (invocations are logged before the first primitive of the body;
// responses after the last).
//
// A Log runs in one of three modes (Mode), chosen at allocation:
//
//   - ModeFull (the zero value): an unbounded, mutex-guarded slice. Every
//     event is retained, so the durable-linearizability and detectability
//     checkers can replay complete executions. Verification tests use this.
//   - ModeRing: a fixed-capacity ring of one or more power-of-two
//     sub-rings (stripes). Appends reserve a slot with one atomic ticket
//     increment on their stripe and synchronize only with appends that
//     collide on the same slot (a wrap-around later), so the log adds no
//     global serialization to the operation hot path. With a single stripe
//     (NewRing) the ticket is shared and the reconstructed order is the
//     real-time append order; NewShardedRing stripes the ticket by pid so
//     a hot shard's processes stop contending on one counter — trading
//     cross-stripe real-time order for a deterministic per-writer-ordered
//     interleaving (see Events). Production paths (internal/shardkv)
//     default to the sharded form.
//   - ModeOff: events are discarded. Benchmark floors use this.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"detectable/internal/spec"
)

// Kind discriminates event types.
type Kind int

// Event kinds.
const (
	// KindInvoke marks the start of an operation attempt.
	KindInvoke Kind = iota + 1
	// KindReturn marks a normal (crash-free) completion.
	KindReturn
	// KindCrash marks a system-wide crash-failure.
	KindCrash
	// KindRecoverReturn marks the completion of a recovery function: either
	// the recovered response (the operation was linearized) or fail.
	KindRecoverReturn
)

// Mode selects a Log's retention strategy.
type Mode int

// Log modes.
const (
	// ModeFull retains every event (unbounded, mutex-guarded).
	ModeFull Mode = iota
	// ModeRing retains the most recent events in a fixed ring.
	ModeRing
	// ModeOff retains nothing.
	ModeOff
)

// String returns a short name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeRing:
		return "ring"
	case ModeOff:
		return "off"
	default:
		return "unknown"
	}
}

// Event is one record in a Log.
type Event struct {
	Kind Kind
	// PID is the process the event belongs to (unused for KindCrash).
	PID int
	// Op is the abstract operation being invoked (KindInvoke only).
	Op spec.Operation
	// Resp is the response value (KindReturn, and KindRecoverReturn when
	// Fail is false).
	Resp int
	// Fail reports that a recovery function returned the distinguished
	// fail value, i.e. the crashed operation was not linearized.
	Fail bool
}

// String renders the event for diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case KindInvoke:
		return fmt.Sprintf("p%d.invoke %s", e.PID, e.Op)
	case KindReturn:
		return fmt.Sprintf("p%d.return %d", e.PID, e.Resp)
	case KindCrash:
		return "CRASH"
	case KindRecoverReturn:
		if e.Fail {
			return fmt.Sprintf("p%d.recover fail", e.PID)
		}
		return fmt.Sprintf("p%d.recover %d", e.PID, e.Resp)
	default:
		return "unknown"
	}
}

// slot is one ring entry. seq is the event's global sequence number
// (0 while empty); all fields are guarded by the slot's own mutex, so an
// append contends only with a reader or with the rare append that wrapped
// around onto the same slot. args is the slot-owned argument buffer the
// stored event's Op.Args points into: appends copy the caller's args here
// (callers may reuse their backing arrays, see Invoke) and reuse it on
// wrap-around, so a steady-state ring appends without allocating.
type slot struct {
	mu   sync.Mutex
	seq  uint64
	ev   Event
	args []int
}

// stripe is one sub-ring: a private ticket plus its slots. The ticket sits
// on its own cache-line pair so hot stripes never false-share counters.
type stripe struct {
	ticket atomic.Uint64
	_      [120]byte
	slots  []slot
	mask   uint64
}

// Log is an append-only, concurrency-safe event log. The zero value is a
// ModeFull log, ready to use.
type Log struct {
	mode Mode

	// ModeFull state.
	mu     sync.Mutex
	events []Event

	// ModeOff state: a discard counter.
	discarded atomic.Uint64

	// ModeRing state: one or more sub-rings. An append picks its stripe by
	// the event's PID, takes one ticket there, and derives a globally
	// unique sequence number seq = (ticket-1)*len(stripes) + stripeIdx + 1.
	// Per-stripe tickets increase, so seq is monotone within a stripe (and
	// therefore per pid); Events merges stripes by seq.
	stripes []stripe
}

// MaxRingStripes bounds the stripe count of a sharded ring; beyond the
// point where every concurrently appending process has its own ticket,
// more stripes only shrink each sub-ring.
const MaxRingStripes = 16

// NewRing returns a single-stripe ModeRing log retaining the most recent
// capacity events (rounded up to a power of two, minimum 64). Its
// reconstructed order is the exact global append order.
func NewRing(capacity int) *Log { return NewShardedRing(capacity, 1) }

// NewShardedRing returns a ModeRing log of stripes sub-rings (clamped to
// [1, MaxRingStripes] and rounded up to a power of two), splitting
// capacity across them (each sub-ring at least 64 slots, rounded up to a
// power of two). Appends stripe by pid: processes hashing to different
// stripes share no ticket and no slots, so the log stops serializing a
// hot shard. Cross-stripe order in Events is the deterministic seq
// interleaving, not real-time order; per-stripe (hence per-process) order
// is exact.
func NewShardedRing(capacity, stripes int) *Log {
	k := 1
	for k < stripes && k < MaxRingStripes {
		k <<= 1
	}
	per := capacity / k
	n := 64
	for n < per {
		n <<= 1
	}
	l := &Log{mode: ModeRing, stripes: make([]stripe, k)}
	for i := range l.stripes {
		l.stripes[i].slots = make([]slot, n)
		l.stripes[i].mask = uint64(n - 1)
	}
	return l
}

// NewOff returns a ModeOff log that discards every event.
func NewOff() *Log { return &Log{mode: ModeOff} }

// Mode returns the log's retention mode.
func (l *Log) Mode() Mode { return l.mode }

// Capacity returns the total ring capacity across stripes (0 for full and
// off modes).
func (l *Log) Capacity() int {
	n := 0
	for i := range l.stripes {
		n += len(l.stripes[i].slots)
	}
	return n
}

// Stripes returns the number of sub-rings (0 for full and off modes).
func (l *Log) Stripes() int { return len(l.stripes) }

// Invoke records the start of op by pid. op.Args is copied: the caller may
// reuse its backing array after Invoke returns (object implementations
// keep per-process argument buffers to make their hot paths
// allocation-free).
func (l *Log) Invoke(pid int, op spec.Operation) {
	l.append(Event{Kind: KindInvoke, PID: pid, Op: op})
}

// Return records a crash-free completion with response resp by pid.
func (l *Log) Return(pid, resp int) {
	l.append(Event{Kind: KindReturn, PID: pid, Resp: resp})
}

// Crash records a system-wide crash-failure.
func (l *Log) Crash() {
	l.append(Event{Kind: KindCrash})
}

// RecoverReturn records the completion of pid's recovery function. fail
// reports the distinguished fail verdict; otherwise resp is the recovered
// response of the linearized operation.
func (l *Log) RecoverReturn(pid, resp int, fail bool) {
	l.append(Event{Kind: KindRecoverReturn, PID: pid, Resp: resp, Fail: fail})
}

// Events returns a snapshot copy of the retained events in recording
// order. In ring mode the order is reconstructed from sequence numbers
// (older overwritten events are absent; see Appended/Dropped): exact
// append order with one stripe, and the deterministic per-stripe-ordered
// merge with several — every process's own events stay in order, but
// cross-stripe interleaving is by sequence number, not wall clock.
func (l *Log) Events() []Event {
	switch l.mode {
	case ModeOff:
		return nil
	case ModeRing:
		return l.ringSnapshot()
	default:
		l.mu.Lock()
		defer l.mu.Unlock()
		out := make([]Event, len(l.events))
		copy(out, l.events)
		return out
	}
}

// Appended returns the total number of events ever appended, including
// events a ring has since overwritten and events an off log discarded.
func (l *Log) Appended() uint64 {
	switch l.mode {
	case ModeRing:
		var t uint64
		for i := range l.stripes {
			t += l.stripes[i].ticket.Load()
		}
		return t
	case ModeOff:
		return l.discarded.Load()
	default:
		l.mu.Lock()
		defer l.mu.Unlock()
		return uint64(len(l.events))
	}
}

// Dropped returns how many appended events are no longer retained.
func (l *Log) Dropped() uint64 {
	switch l.mode {
	case ModeRing:
		var d uint64
		for i := range l.stripes {
			st := &l.stripes[i]
			if t := st.ticket.Load(); t > uint64(len(st.slots)) {
				d += t - uint64(len(st.slots))
			}
		}
		return d
	case ModeOff:
		return l.discarded.Load()
	default:
		return 0
	}
}

// Len returns the number of retained events.
func (l *Log) Len() int {
	switch l.mode {
	case ModeOff:
		return 0
	case ModeRing:
		n := 0
		for i := range l.stripes {
			st := &l.stripes[i]
			if t := st.ticket.Load(); t < uint64(len(st.slots)) {
				n += int(t)
			} else {
				n += len(st.slots)
			}
		}
		return n
	default:
		l.mu.Lock()
		defer l.mu.Unlock()
		return len(l.events)
	}
}

// String renders the retained log, one event per line, without the extra
// snapshot copy Events would make.
func (l *Log) String() string {
	var b strings.Builder
	render := func(evs []Event) {
		for i, e := range evs {
			fmt.Fprintf(&b, "%3d %s\n", i, e)
		}
	}
	switch l.mode {
	case ModeOff:
	case ModeRing:
		render(l.ringSnapshot())
	default:
		l.mu.Lock()
		defer l.mu.Unlock()
		render(l.events)
	}
	return b.String()
}

func (l *Log) append(e Event) {
	switch l.mode {
	case ModeOff:
		l.discarded.Add(1)
	case ModeRing:
		k := uint64(len(l.stripes))
		idx := uint64(uint(e.PID)) & (k - 1)
		st := &l.stripes[idx]
		t := st.ticket.Add(1)
		s := &st.slots[(t-1)&st.mask]
		s.mu.Lock()
		s.seq = (t-1)*k + idx + 1
		// Copy the caller's args into the slot-owned buffer (reused across
		// wrap-arounds): the caller may alias a per-process scratch it will
		// overwrite on its next operation.
		args := s.args
		s.ev = e
		if len(e.Op.Args) > 0 {
			s.args = append(args[:0], e.Op.Args...)
			s.ev.Op.Args = s.args
		} else {
			s.args = args
			s.ev.Op.Args = nil
		}
		s.mu.Unlock()
	default:
		if len(e.Op.Args) > 0 {
			e.Op.Args = append([]int(nil), e.Op.Args...)
		}
		l.mu.Lock()
		l.events = append(l.events, e)
		l.mu.Unlock()
	}
}

// ringSnapshot collects the filled slots of every stripe and orders them
// by sequence number. Appends racing the snapshot may leave holes (a
// reserved ticket whose slot write has not landed); the snapshot simply
// omits them.
func (l *Log) ringSnapshot() []Event {
	type tagged struct {
		seq uint64
		ev  Event
	}
	n := l.Len()
	if n == 0 {
		return nil
	}
	tags := make([]tagged, 0, n)
	for i := range l.stripes {
		st := &l.stripes[i]
		for j := range st.slots {
			s := &st.slots[j]
			s.mu.Lock()
			if s.seq != 0 {
				ev := s.ev
				if len(ev.Op.Args) > 0 {
					// The stored args alias the slot's reusable buffer; the
					// snapshot must own its copy or a wrap-around would mutate it.
					ev.Op.Args = append([]int(nil), ev.Op.Args...)
				}
				tags = append(tags, tagged{seq: s.seq, ev: ev})
			}
			s.mu.Unlock()
		}
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a].seq < tags[b].seq })
	out := make([]Event, len(tags))
	for i, t := range tags {
		out[i] = t.ev
	}
	return out
}
