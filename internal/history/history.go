// Package history records concurrent executions — invocations, responses,
// system-wide crashes and recovery verdicts — for offline checking against
// durable linearizability and detectability.
//
// The recorded order of events is a valid real-time order: an event is
// appended while the operation holds no pending effect that could reorder
// with it (invocations are logged before the first primitive of the body;
// responses after the last).
package history

import (
	"fmt"
	"strings"
	"sync"

	"detectable/internal/spec"
)

// Kind discriminates event types.
type Kind int

// Event kinds.
const (
	// KindInvoke marks the start of an operation attempt.
	KindInvoke Kind = iota + 1
	// KindReturn marks a normal (crash-free) completion.
	KindReturn
	// KindCrash marks a system-wide crash-failure.
	KindCrash
	// KindRecoverReturn marks the completion of a recovery function: either
	// the recovered response (the operation was linearized) or fail.
	KindRecoverReturn
)

// Event is one record in a Log.
type Event struct {
	Kind Kind
	// PID is the process the event belongs to (unused for KindCrash).
	PID int
	// Op is the abstract operation being invoked (KindInvoke only).
	Op spec.Operation
	// Resp is the response value (KindReturn, and KindRecoverReturn when
	// Fail is false).
	Resp int
	// Fail reports that a recovery function returned the distinguished
	// fail value, i.e. the crashed operation was not linearized.
	Fail bool
}

// String renders the event for diagnostics.
func (e Event) String() string {
	switch e.Kind {
	case KindInvoke:
		return fmt.Sprintf("p%d.invoke %s", e.PID, e.Op)
	case KindReturn:
		return fmt.Sprintf("p%d.return %d", e.PID, e.Resp)
	case KindCrash:
		return "CRASH"
	case KindRecoverReturn:
		if e.Fail {
			return fmt.Sprintf("p%d.recover fail", e.PID)
		}
		return fmt.Sprintf("p%d.recover %d", e.PID, e.Resp)
	default:
		return "unknown"
	}
}

// Log is an append-only, concurrency-safe event log. The zero value is
// ready to use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Invoke records the start of op by pid.
func (l *Log) Invoke(pid int, op spec.Operation) {
	l.append(Event{Kind: KindInvoke, PID: pid, Op: op})
}

// Return records a crash-free completion with response resp by pid.
func (l *Log) Return(pid, resp int) {
	l.append(Event{Kind: KindReturn, PID: pid, Resp: resp})
}

// Crash records a system-wide crash-failure.
func (l *Log) Crash() {
	l.append(Event{Kind: KindCrash})
}

// RecoverReturn records the completion of pid's recovery function. fail
// reports the distinguished fail verdict; otherwise resp is the recovered
// response of the linearized operation.
func (l *Log) RecoverReturn(pid, resp int, fail bool) {
	l.append(Event{Kind: KindRecoverReturn, PID: pid, Resp: resp, Fail: fail})
}

// Events returns a snapshot copy of the log.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	evs := l.Events()
	var b strings.Builder
	for i, e := range evs {
		fmt.Fprintf(&b, "%3d %s\n", i, e)
	}
	return b.String()
}

func (l *Log) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}
