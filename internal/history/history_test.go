package history

import (
	"strings"
	"sync"
	"testing"

	"detectable/internal/spec"
)

func TestAppendOrder(t *testing.T) {
	var l Log
	l.Invoke(0, spec.NewOp(spec.MethodWrite, 1))
	l.Return(0, spec.Ack)
	l.Crash()
	l.Invoke(1, spec.NewOp(spec.MethodRead))
	l.RecoverReturn(1, 1, false)

	evs := l.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	wantKinds := []Kind{KindInvoke, KindReturn, KindCrash, KindInvoke, KindRecoverReturn}
	for i, k := range wantKinds {
		if evs[i].Kind != k {
			t.Fatalf("event %d kind = %v, want %v", i, evs[i].Kind, k)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	var l Log
	l.Invoke(0, spec.NewOp(spec.MethodRead))
	evs := l.Events()
	evs[0].PID = 99
	if l.Events()[0].PID != 0 {
		t.Fatal("Events did not return a copy")
	}
}

func TestStringRendering(t *testing.T) {
	var l Log
	l.Invoke(2, spec.NewOp(spec.MethodCAS, 0, 1))
	l.Return(2, spec.True)
	l.Crash()
	l.Invoke(0, spec.NewOp(spec.MethodDeq))
	l.RecoverReturn(0, 0, true)

	s := l.String()
	for _, want := range []string{"p2.invoke cas(0,1)", "p2.return 1", "CRASH", "p0.recover fail"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	if (Event{}).String() != "unknown" {
		t.Fatal("zero event rendering")
	}
	if (Event{Kind: KindRecoverReturn, PID: 3, Resp: 7}).String() != "p3.recover 7" {
		t.Fatal("recover rendering")
	}
}

func TestConcurrentAppends(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	const procs, each = 8, 100
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Invoke(pid, spec.NewOp(spec.MethodRead))
				l.Return(pid, i)
			}
		}(p)
	}
	wg.Wait()
	if got := l.Len(); got != procs*each*2 {
		t.Fatalf("Len = %d, want %d", got, procs*each*2)
	}
	// Per-process subsequences must alternate invoke/return.
	open := map[int]bool{}
	for _, e := range l.Events() {
		switch e.Kind {
		case KindInvoke:
			if open[e.PID] {
				t.Fatalf("p%d double invoke", e.PID)
			}
			open[e.PID] = true
		case KindReturn:
			if !open[e.PID] {
				t.Fatalf("p%d return without invoke", e.PID)
			}
			open[e.PID] = false
		}
	}
}
