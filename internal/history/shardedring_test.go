package history

import (
	"sync"
	"testing"
)

// TestShardedRingGeometry pins the stripe clamping and capacity split:
// stripe counts round up to powers of two within [1, MaxRingStripes], and
// each sub-ring gets at least 64 slots.
func TestShardedRingGeometry(t *testing.T) {
	cases := []struct {
		capacity, stripes     int
		wantStripes, wantSlot int
	}{
		{4096, 1, 1, 4096},
		{4096, 2, 2, 2048},
		{4096, 3, 4, 1024},
		{4096, 8, 8, 512},
		{4096, 100, MaxRingStripes, 256},
		{64, 8, 8, 64}, // per-stripe minimum dominates
	}
	for _, c := range cases {
		l := NewShardedRing(c.capacity, c.stripes)
		if l.Stripes() != c.wantStripes {
			t.Fatalf("NewShardedRing(%d,%d): stripes %d, want %d", c.capacity, c.stripes, l.Stripes(), c.wantStripes)
		}
		if got := l.Capacity() / l.Stripes(); got != c.wantSlot {
			t.Fatalf("NewShardedRing(%d,%d): %d slots/stripe, want %d", c.capacity, c.stripes, got, c.wantSlot)
		}
	}
	if l := NewRing(128); l.Stripes() != 1 || l.Capacity() != 128 {
		t.Fatalf("NewRing(128) = %d stripes × %d total, want 1 × 128", l.Stripes(), l.Capacity())
	}
}

// TestShardedRingWrapBoundaries mirrors the single-ring wrap pin per
// stripe: one writer per stripe appends through several wraps; at each
// boundary the snapshot restricted to that writer must be exactly its most
// recent min(appended, stripeCapacity) events in its append order, and the
// global Appended/Dropped accounting must sum the stripes.
func TestShardedRingWrapBoundaries(t *testing.T) {
	const stripes = 4
	l := NewShardedRing(stripes*64, stripes)
	stripeCap := l.Capacity() / l.Stripes() // 64
	perWriterAt := func(pid int) []int {
		var resps []int
		for _, e := range l.Events() {
			if e.PID == pid {
				resps = append(resps, e.Resp)
			}
		}
		return resps
	}
	boundaries := map[int]bool{stripeCap - 1: true, stripeCap: true, stripeCap + 1: true, 3 * stripeCap: true, 3*stripeCap + 1: true}
	for n := 1; n <= 3*stripeCap+1; n++ {
		for pid := 0; pid < stripes; pid++ {
			l.Return(pid, n-1)
		}
		if !boundaries[n] {
			continue
		}
		want := n
		if want > stripeCap {
			want = stripeCap
		}
		for pid := 0; pid < stripes; pid++ {
			resps := perWriterAt(pid)
			if len(resps) != want {
				t.Fatalf("after %d appends: writer %d retained %d, want %d", n, pid, len(resps), want)
			}
			for i, r := range resps {
				if wantResp := n - want + i; r != wantResp {
					t.Fatalf("after %d appends: writer %d event %d has resp %d, want %d", n, pid, i, r, wantResp)
				}
			}
		}
		if got, want := l.Appended(), uint64(stripes*n); got != want {
			t.Fatalf("Appended() = %d, want %d", got, want)
		}
		wantDropped := uint64(0)
		if n > stripeCap {
			wantDropped = uint64(stripes * (n - stripeCap))
		}
		if got := l.Dropped(); got != wantDropped {
			t.Fatalf("Dropped() = %d, want %d", got, wantDropped)
		}
	}
}

// TestShardedRingPerWriterOrder pins the ordering contract Events keeps
// under striping: cross-stripe interleaving is by sequence number, but
// every process's own events appear in its append order even when several
// writers share a stripe (writers mod stripes collide).
func TestShardedRingPerWriterOrder(t *testing.T) {
	const (
		stripes = 2
		writers = 5 // writers 0,2,4 share stripe 0; 1,3 share stripe 1
		each    = 40
	)
	l := NewShardedRing(stripes*64, stripes)
	for i := 0; i < each; i++ {
		for w := 0; w < writers; w++ {
			l.Return(w, i)
		}
	}
	perWriter := make(map[int][]int)
	for _, e := range l.Events() {
		perWriter[e.PID] = append(perWriter[e.PID], e.Resp)
	}
	if len(perWriter) != writers {
		t.Fatalf("only %d of %d writers represented", len(perWriter), writers)
	}
	for w, resps := range perWriter {
		for i := 1; i < len(resps); i++ {
			if resps[i] != resps[i-1]+1 {
				t.Fatalf("writer %d: retained resps %v are not in append order", w, resps)
			}
		}
		if last := resps[len(resps)-1]; last != each-1 {
			t.Fatalf("writer %d: tail ends at %d, want %d", w, last, each-1)
		}
	}
}

// TestShardedRingConcurrentWrapReconstruction is the PR 4 concurrent-wrap
// pin over stripes: many writers wrap small sub-rings concurrently; after
// quiescence the snapshot must hold exactly Capacity() events, every
// writer's retained events must be a contiguous tail of its appends, and
// every tail must end in the writer's post-quiescence sentinel.
func TestShardedRingConcurrentWrapReconstruction(t *testing.T) {
	const (
		stripes = 4
		writers = 8
		each    = 5000
	)
	l := NewShardedRing(stripes*64, stripes)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Return(w, i)
			}
		}(w)
	}
	wg.Wait()
	// One sequential sentinel append per writer after quiescence: within
	// each stripe these hold the highest tickets, so every writer is
	// represented and every writer's retained events end in its sentinel.
	for w := 0; w < writers; w++ {
		l.Return(w, each)
	}

	if got := l.Appended(); got != writers*each+writers {
		t.Fatalf("Appended() = %d, want %d", got, writers*each+writers)
	}
	evs := l.Events()
	if len(evs) != l.Capacity() {
		t.Fatalf("retained %d, want %d (no holes after quiescence)", len(evs), l.Capacity())
	}
	perWriter := make(map[int][]int)
	for _, e := range evs {
		perWriter[e.PID] = append(perWriter[e.PID], e.Resp)
	}
	if len(perWriter) != writers {
		t.Fatalf("only %d of %d writers represented in the snapshot", len(perWriter), writers)
	}
	for w, resps := range perWriter {
		for i := 1; i < len(resps); i++ {
			if resps[i] != resps[i-1]+1 {
				t.Fatalf("writer %d: retained resps %v are not a contiguous tail", w, resps)
			}
		}
		if last := resps[len(resps)-1]; last != each {
			t.Fatalf("writer %d: sentinel (resp %d) missing; tail ends at %d", w, each, last)
		}
	}
}
