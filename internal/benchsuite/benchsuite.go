// Package benchsuite holds the curated benchmark bodies shared by the
// repo's `go test -bench` harness (bench_test.go at the module root) and
// cmd/benchjson, which runs the same bodies via testing.Benchmark and
// emits the persistent BENCH_*.json trajectory. Keeping one definition in
// one place is what makes numbers comparable across PRs.
//
// All bodies use the production history configuration (a bounded ring per
// system — internal/shardkv's default) rather than the unbounded full log
// verification tests keep, because the trajectory tracks the production
// hot path.
package benchsuite

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"detectable/internal/history"
	"detectable/internal/kv"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
	"detectable/internal/shardkv"
	"detectable/internal/workload"
)

// ringSystem returns an N-process system with the production (ring)
// history configuration.
func ringSystem(procs int) *runtime.System {
	sys := runtime.NewSystem(procs)
	sys.SetHistory(history.NewRing(shardkv.DefaultRingCapacity))
	return sys
}

// ShardKV returns the mixed-workload body: procs concurrent processes
// hammer a 64-key space spread over shards partitions with a 3:1 put:get
// mix (always-succeeds NRL semantics). With one shard every process
// contends on a single system's space; more shards split the keys across
// independent NVM spaces.
func ShardKV(shards, procs int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s := shardkv.New(shards, procs)
		keys := make([]string, 64)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
			s.PutRetry(0, keys[i], 0) // pre-create the registers
		}
		var wg sync.WaitGroup
		each := b.N/procs + 1
		b.ResetTimer()
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					k := keys[(i*7+pid*13)%len(keys)]
					if i%4 == 0 {
						s.GetRetry(pid, k)
					} else {
						s.PutRetry(pid, k, i)
					}
				}
			}(p)
		}
		wg.Wait()
	}
}

// ShardKVZipf returns the skewed-workload body: procs concurrent processes
// draw keys from a seeded Zipfian distribution over a 256-key space spread
// across shards partitions, with a 3:1 get:put mix — the hot-key regime
// where one shard absorbs most of the traffic and the key table's read
// path dominates. locked selects the RWMutex-guarded seed key table
// instead of the lock-free copy-on-write one, so the trajectory records
// both sides of the comparison.
func ShardKVZipf(shards, procs int, theta float64, locked bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var opts []shardkv.Option
		if locked {
			opts = append(opts, shardkv.LockedKeyTable())
		}
		s := shardkv.New(shards, procs, opts...)
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
			s.PutRetry(0, keys[i], 0) // pre-create the registers
		}
		var wg sync.WaitGroup
		each := b.N/procs + 1
		b.ResetTimer()
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(workload.WorkerSeed(1, procs, pid)))
				z := workload.NewZipf(rng, len(keys), theta)
				for i := 0; i < each; i++ {
					k := keys[z.Next()]
					if i%4 == 0 {
						s.PutRetry(pid, k, i)
					} else {
						s.GetRetry(pid, k)
					}
				}
			}(p)
		}
		wg.Wait()
	}
}

// KeyTableReadZipf isolates the key-table read path the PR 8 tentpole
// replaced: procs concurrent readers resolve Zipfian-drawn keys through
// Store.Peek, so the measured cost is one table lookup plus a plain
// register load — nothing else. Under skew every reader hits the same few
// map entries; the RWMutex table serializes them on the lock word's cache
// line while the copy-on-write table is one uncontended atomic load, which
// is the regression gate BENCH_PR8.json pins.
func KeyTableReadZipf(procs int, theta float64, locked bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sys := ringSystem(procs)
		mk := kv.New
		if locked {
			mk = kv.NewLocked
		}
		s := mk(sys)
		keys := make([]string, 256)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%d", i)
			s.PutRetry(0, keys[i], i)
		}
		var wg sync.WaitGroup
		each := b.N/procs + 1
		b.ResetTimer()
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(workload.WorkerSeed(1, procs, pid)))
				z := workload.NewZipf(rng, len(keys), theta)
				for i := 0; i < each; i++ {
					s.Peek(keys[z.Next()])
				}
			}(p)
		}
		wg.Wait()
	}
}

// ShardKVMultiPut returns the batched-write body: one process putting a
// 64-entry batch grouped (and fanned out) across the shards.
func ShardKVMultiPut(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		s := shardkv.New(shards, 1)
		entries := make([]shardkv.KV, 64)
		for i := range entries {
			entries[i] = shardkv.KV{Key: fmt.Sprintf("key-%d", i), Val: i}
		}
		s.MultiPutRetry(0, entries)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.MultiPutRetry(0, entries)
		}
	}
}

// CASDetectableContended returns the contended detectable-CAS body: procs
// processes read-CAS-increment one shared object.
func CASDetectableContended(procs int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sys := ringSystem(procs)
		o := rcas.NewInt(sys, 0)
		var wg sync.WaitGroup
		each := b.N/procs + 1
		b.ResetTimer()
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					out := o.Read(pid)
					o.Cas(pid, out.Resp, out.Resp+1)
				}
			}(p)
		}
		wg.Wait()
	}
}

// WriteDetectable returns the solo detectable-register write body for an
// N-process register (the write cost grows with N: one toggle-bit store
// per process).
func WriteDetectable(procs int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		sys := ringSystem(procs)
		reg := rw.NewInt(sys, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reg.Write(0, i)
		}
	}
}

// Named is one curated benchmark: a stable name (matching the go-test
// benchmark path) and its body.
type Named struct {
	Name  string
	Bench func(b *testing.B)
}

// Curated returns the benchmark set cmd/benchjson runs and records in the
// BENCH_*.json trajectory. Names match the `go test -bench` paths of the
// module-root harness so the two surfaces stay comparable.
func Curated() []Named {
	var out []Named
	for _, shards := range []int{1, 2, 4, 8} {
		out = append(out, Named{
			Name:  fmt.Sprintf("BenchmarkShardKV/shards=%d", shards),
			Bench: ShardKV(shards, 8),
		})
	}
	for _, procs := range []int{2, 4, 8} {
		out = append(out, Named{
			Name:  fmt.Sprintf("BenchmarkCASDetectableContended/procs=%d", procs),
			Bench: CASDetectableContended(procs),
		})
	}
	for _, procs := range []int{1, 8, 32} {
		out = append(out, Named{
			Name:  fmt.Sprintf("BenchmarkWriteDetectable/N=%d", procs),
			Bench: WriteDetectable(procs),
		})
	}
	for _, shards := range []int{1, 8} {
		out = append(out, Named{
			Name:  fmt.Sprintf("BenchmarkShardKVMultiPut/shards=%d", shards),
			Bench: ShardKVMultiPut(shards),
		})
	}
	for _, theta := range []float64{0.9, 1.2} {
		for _, table := range []string{"lockfree", "locked"} {
			out = append(out, Named{
				Name:  fmt.Sprintf("BenchmarkShardKVZipf/theta=%g/table=%s", theta, table),
				Bench: ShardKVZipf(4, 8, theta, table == "locked"),
			})
			out = append(out, Named{
				Name:  fmt.Sprintf("BenchmarkKeyTableReadZipf/theta=%g/table=%s", theta, table),
				Bench: KeyTableReadZipf(8, theta, table == "locked"),
			})
		}
	}
	for _, shards := range []int{1, 8} {
		out = append(out, Named{
			Name:  fmt.Sprintf("BenchmarkServedMultiPut/shards=%d", shards),
			Bench: ServedMultiPut(shards),
		})
	}
	return out
}
