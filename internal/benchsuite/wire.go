package benchsuite

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"detectable/internal/client"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

// WireResult is one closed-loop TCP measurement: aggregate throughput and
// operation latency percentiles for a given connection count.
type WireResult struct {
	Conns      int     `json:"conns"`
	Ops        int     `json:"ops"`
	Throughput float64 `json:"throughput_ops_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
}

// WireSelftest starts an in-process detectable KV server on a loopback
// port and drives one closed loop (50/50 get:put over keys) per
// connection, for dur, per element of conns — the kvbench selftest
// distilled into a library call so cmd/benchjson can record p50/p99 in
// the trajectory.
func WireSelftest(shards int, conns []int, dur time.Duration, keys int, seed int64) ([]WireResult, error) {
	maxConns := 0
	for _, n := range conns {
		if n > maxConns {
			maxConns = n
		}
	}
	srv := server.New(shardkv.New(shards, maxConns))
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	var out []WireResult
	for _, n := range conns {
		r, err := wirePhase(addr, n, dur, keys, seed)
		if err != nil {
			return nil, fmt.Errorf("conns=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func wirePhase(addr string, conns int, dur time.Duration, keys int, seed int64) (WireResult, error) {
	clients := make([]*client.Client, conns)
	for i := range clients {
		c, err := client.Dial(addr)
		if err != nil {
			return WireResult{}, fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	lats := make([][]time.Duration, conns)
	errs := make([]error, conns)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for time.Now().Before(deadline) {
				key := "bench-" + strconv.Itoa(rng.Intn(keys))
				opStart := time.Now()
				var err error
				if rng.Intn(100) < 50 {
					_, err = c.Get(key)
				} else {
					_, err = c.Put(key, rng.Int())
				}
				if err != nil {
					errs[i] = err
					return
				}
				lats[i] = append(lats[i], time.Since(opStart))
			}
		}(i, c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return WireResult{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return WireResult{}, fmt.Errorf("no operations completed")
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return WireResult{
		Conns:      conns,
		Ops:        len(all),
		Throughput: float64(len(all)) / elapsed.Seconds(),
		P50Ns:      int64(percentile(all, 50)),
		P99Ns:      int64(percentile(all, 99)),
	}, nil
}

// ServedMultiPut returns the full served-MPUT body: one loopback session
// pushing a 64-entry MPUT frame through the server's whole request path —
// header decode, zero-copy key decode, batch fan-out, reply encode,
// outcome-window record — without a socket. The warm-up loop wraps every
// shard's history ring (ring slot args buffers allocate on first touch)
// so the recorded allocs/op is the steady state the alloc gate pins at
// zero.
func ServedMultiPut(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		srv := server.New(shardkv.New(shards, 2))
		ls, err := srv.NewLoopbackSession()
		if err != nil {
			b.Fatal(err)
		}
		defer ls.Close()
		entries := make([]shardkv.KV, 64)
		for i := range entries {
			entries[i] = shardkv.KV{Key: fmt.Sprintf("key-%d", i), Val: i}
		}
		payload := server.AppendMPut(nil, 0, entries)
		warm := 2*shardkv.DefaultRingCapacity/len(entries)*shards + 2*server.Window
		for i := 0; i < warm; i++ {
			server.PatchReqID(payload, ls.NextID())
			ls.Handle(payload)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			server.PatchReqID(payload, ls.NextID())
			ls.Handle(payload)
		}
	}
}

// percentile returns the p-th percentile of sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}
