// Package simio is an in-memory simulated filesystem implementing the OS
// surface internal/durable performs its I/O through (durable.Fs), built for
// model-checking the durable recovery path the way internal/explore
// model-checks the NVM primitives.
//
// The simulation keeps two views of the world. The live view is what the
// running process observes: writes are visible to reads immediately, files
// appear in their directory as soon as they are created. The persistence
// journal records every mutating operation — writes, truncates, fsyncs,
// creates, renames, removes, directory syncs — in issue order, and is the
// ground truth for what a crash could leave behind: data written but not
// fsynced may be lost, partially written back, or torn mid-record;
// directory entries created or renamed but not dir-synced may vanish,
// resurrecting the file the rename replaced or dropping a freshly created
// log wholesale.
//
// image.go reconstructs, for every crash point k (crash strikes after the
// first k journaled operations were issued), the full set of byte images
// the model admits: per file, any prefix of its unsynced writes may have
// reached the medium, optionally with a torn tail of the first dropped
// write; per directory, any prefix of its unsynced entry operations.
// sweep.go runs a durable workload against the simulation, enumerates
// every crash point × image variant, recovers from each image via
// durable.OpenFs, and checks detectability plus the hash-pinned purity and
// idempotence of recovery (durable.StateHash).
package simio

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"detectable/internal/durable"
)

// OpKind enumerates the journaled mutating operations.
type OpKind uint8

const (
	// OpMkdir creates directory Path (entry staged in its parent).
	OpMkdir OpKind = iota + 1
	// OpCreate creates file Path with identity File (entry staged in its
	// parent directory until that directory is synced).
	OpCreate
	// OpWrite writes Data at Off into file File (staged until OpFsync).
	OpWrite
	// OpTruncate sets file File's length to Size (staged until OpFsync).
	OpTruncate
	// OpFsync makes every staged write/truncate of file File durable.
	OpFsync
	// OpRename atomically renames Path to To (entry change staged in the
	// parent directory until OpSyncDir).
	OpRename
	// OpRemove unlinks Path (staged in the parent directory).
	OpRemove
	// OpSyncDir makes every staged entry operation of directory Path
	// durable.
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpMkdir:
		return "mkdir"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpTruncate:
		return "truncate"
	case OpFsync:
		return "fsync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one journaled mutating operation.
type Op struct {
	Kind OpKind
	Path string // file or directory the op targets
	To   string // rename destination
	File int    // file identity (stable across rename)
	Off  int64  // write offset
	Size int64  // truncate length
	Data []byte // written bytes (copied at journal time)
}

// entry is one live directory entry.
type entry struct {
	id    int
	isDir bool
}

// memFile is one live file's content, identified stably across renames.
type memFile struct {
	id   int
	path string
	data []byte
}

// Fs is the simulated filesystem. It implements durable.Fs; obtain one
// with New and pass it to durable.OpenFs. All methods are safe for
// concurrent use.
type Fs struct {
	mu      sync.Mutex
	nextID  int
	tree    map[string]entry // live path → entry (files and directories)
	files   map[int]*memFile // live content by file identity
	locked  map[string]bool
	journal []Op
}

// New returns an empty simulated filesystem with the roots "/" and "."
// pre-existing (and durable — the simulation models crashes of the store,
// not of the machine's root filesystem).
func New() *Fs {
	return &Fs{
		tree:   map[string]entry{"/": {isDir: true}, ".": {isDir: true}},
		files:  map[int]*memFile{},
		locked: map[string]bool{},
	}
}

func notExist(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: fs.ErrNotExist}
}

func (f *Fs) log(op Op) { f.journal = append(f.journal, op) }

// Ops returns the number of journaled mutating operations so far — the
// crash-point space is [0, Ops()].
func (f *Fs) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.journal)
}

// Journal returns a copy of the persistence journal.
func (f *Fs) Journal() []Op {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Op(nil), f.journal...)
}

// File is one open handle. Sequential Writes advance a private offset from
// zero (the freshly-created temporary-file pattern is the only sequential
// writer durable has); WriteAt is positional.
type File struct {
	fs  *Fs
	mf  *memFile
	off int64
}

// OpenFile implements durable.Fs.
func (f *Fs) OpenFile(path string, flag int, perm os.FileMode) (durable.File, error) {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.tree[path]
	if ok && e.isDir {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fmt.Errorf("is a directory")}
	}
	if ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0 {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrExist}
	}
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, notExist("open", path)
		}
		parent := filepath.Dir(path)
		if pe, pok := f.tree[parent]; !pok || !pe.isDir {
			return nil, notExist("open", path)
		}
		f.nextID++
		mf := &memFile{id: f.nextID, path: path}
		f.files[mf.id] = mf
		f.tree[path] = entry{id: mf.id}
		f.log(Op{Kind: OpCreate, Path: path, File: mf.id})
		return &File{fs: f, mf: mf}, nil
	}
	mf := f.files[e.id]
	if flag&os.O_TRUNC != 0 && len(mf.data) > 0 {
		mf.data = nil
		f.log(Op{Kind: OpTruncate, Path: mf.path, File: mf.id, Size: 0})
	}
	return &File{fs: f, mf: mf}, nil
}

// Name returns the path the file currently has.
func (h *File) Name() string {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.mf.path
}

// ReadAt implements positional reads with os.File semantics: a short read
// returns io.EOF.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if off < 0 {
		return 0, &fs.PathError{Op: "read", Path: h.mf.path, Err: fmt.Errorf("negative offset")}
	}
	if off >= int64(len(h.mf.data)) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := copy(p, h.mf.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p at off: visible to reads immediately, durable only
// after Sync.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if off < 0 {
		return 0, &fs.PathError{Op: "write", Path: h.mf.path, Err: fmt.Errorf("negative offset")}
	}
	h.mf.data = applyWrite(h.mf.data, off, p)
	h.fs.log(Op{Kind: OpWrite, Path: h.mf.path, File: h.mf.id, Off: off, Data: append([]byte(nil), p...)})
	return len(p), nil
}

// Write writes at the handle's private sequential offset.
func (h *File) Write(p []byte) (int, error) {
	n, err := h.WriteAt(p, h.off)
	h.off += int64(n)
	return n, err
}

// Truncate sets the file length.
func (h *File) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if size < 0 {
		return &fs.PathError{Op: "truncate", Path: h.mf.path, Err: fmt.Errorf("negative size")}
	}
	h.mf.data = applyTruncate(h.mf.data, size)
	h.fs.log(Op{Kind: OpTruncate, Path: h.mf.path, File: h.mf.id, Size: size})
	return nil
}

// Sync is the file durability barrier: every staged write/truncate of this
// file survives any later crash.
func (h *File) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.fs.log(Op{Kind: OpFsync, Path: h.mf.path, File: h.mf.id})
	return nil
}

// Size returns the live length.
func (h *File) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return int64(len(h.mf.data)), nil
}

// Close releases the handle. The content object stays reachable through
// the tree (or the journal, for unlinked files).
func (h *File) Close() error { return nil }

// ReadFile implements durable.Fs.
func (f *Fs) ReadFile(path string) ([]byte, error) {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.tree[path]
	if !ok || e.isDir {
		return nil, notExist("open", path)
	}
	return append([]byte(nil), f.files[e.id].data...), nil
}

// MkdirAll implements durable.Fs: every missing component is created (and
// journaled — the entries are not durable until the parent is synced).
func (f *Fs) MkdirAll(path string, perm os.FileMode) error {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mkdirAllLocked(path)
}

func (f *Fs) mkdirAllLocked(path string) error {
	if e, ok := f.tree[path]; ok {
		if !e.isDir {
			return &fs.PathError{Op: "mkdir", Path: path, Err: fmt.Errorf("not a directory")}
		}
		return nil
	}
	parent := filepath.Dir(path)
	if parent != path {
		if err := f.mkdirAllLocked(parent); err != nil {
			return err
		}
	}
	f.tree[path] = entry{isDir: true}
	f.log(Op{Kind: OpMkdir, Path: path})
	return nil
}

// Exists implements durable.Fs.
func (f *Fs) Exists(path string) (bool, error) {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.tree[path]
	return ok, nil
}

// Rename implements durable.Fs for same-directory renames (the only kind
// durable performs: tmp → final during atomic replacement). An existing
// target is replaced, and the replacement is not durable until the
// directory is synced — until then a crash can resurrect the old file.
func (f *Fs) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	if filepath.Dir(oldpath) != filepath.Dir(newpath) {
		return fmt.Errorf("simio: cross-directory rename %s → %s not supported", oldpath, newpath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.tree[oldpath]
	if !ok || e.isDir {
		return notExist("rename", oldpath)
	}
	f.log(Op{Kind: OpRename, Path: oldpath, To: newpath, File: e.id})
	delete(f.tree, oldpath)
	f.tree[newpath] = e
	f.files[e.id].path = newpath
	return nil
}

// Remove implements durable.Fs.
func (f *Fs) Remove(path string) error {
	path = filepath.Clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.tree[path]
	if !ok {
		return notExist("remove", path)
	}
	if e.isDir {
		return &fs.PathError{Op: "remove", Path: path, Err: fmt.Errorf("is a directory")}
	}
	f.log(Op{Kind: OpRemove, Path: path, File: e.id})
	delete(f.tree, path)
	return nil
}

// SyncDir implements durable.Fs: the directory durability barrier.
func (f *Fs) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.tree[dir]
	if !ok || !e.isDir {
		return notExist("syncdir", dir)
	}
	f.log(Op{Kind: OpSyncDir, Path: dir})
	return nil
}

// Lock implements durable.Fs: a process-level exclusive lock (no LOCK file
// is materialized — the real flock dies with its holder, so it is
// invisible to crash images by construction).
func (f *Fs) Lock(dir string) (func(), error) {
	dir = filepath.Clean(dir)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.locked[dir] {
		return nil, fmt.Errorf("simio: %s is already locked", dir)
	}
	f.locked[dir] = true
	return func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		delete(f.locked, dir)
	}, nil
}

// Image is one complete byte image a crash could leave behind: the
// reachable directories and every reachable file's content.
type Image struct {
	Dirs  []string
	Files map[string][]byte
}

// Clone deep-copies the image (violation reports retain images after the
// enumeration moves on).
func (img Image) Clone() Image {
	cp := Image{Dirs: append([]string(nil), img.Dirs...), Files: make(map[string][]byte, len(img.Files))}
	for p, b := range img.Files {
		cp.Files[p] = append([]byte(nil), b...)
	}
	return cp
}

// FromImage returns a fresh live filesystem seeded with img, as a machine
// rebooting onto that disk state would see it. Its journal starts empty.
func FromImage(img Image) *Fs {
	f := New()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range img.Dirs {
		f.seedDirLocked(filepath.Clean(d))
	}
	paths := make([]string, 0, len(img.Files))
	for p := range img.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		p = filepath.Clean(p)
		f.seedDirLocked(filepath.Dir(p))
		f.nextID++
		mf := &memFile{id: f.nextID, path: p, data: append([]byte(nil), img.Files[p]...)}
		f.files[mf.id] = mf
		f.tree[p] = entry{id: mf.id}
	}
	// Seeding is initial state, not activity: the journal models what the
	// process does from here.
	f.journal = nil
	return f
}

func (f *Fs) seedDirLocked(dir string) {
	if e, ok := f.tree[dir]; ok && e.isDir {
		return
	}
	parent := filepath.Dir(dir)
	if parent != dir {
		f.seedDirLocked(parent)
	}
	f.tree[dir] = entry{isDir: true}
}

// LiveImage captures the current live tree as an image — the disk state
// after a clean shutdown where everything was synced. Recovering from
// LiveImage of a just-recovered filesystem is how the sweep pins replay
// idempotence (recover ×2 ≡ ×1).
func (f *Fs) LiveImage() Image {
	f.mu.Lock()
	defer f.mu.Unlock()
	img := Image{Files: map[string][]byte{}}
	paths := make([]string, 0, len(f.tree))
	for p := range f.tree {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		e := f.tree[p]
		if e.isDir {
			img.Dirs = append(img.Dirs, p)
		} else {
			img.Files[p] = append([]byte(nil), f.files[e.id].data...)
		}
	}
	return img
}

// applyWrite returns data with p written at off, zero-filling any gap.
func applyWrite(data []byte, off int64, p []byte) []byte {
	end := off + int64(len(p))
	if int64(len(data)) < end {
		grown := make([]byte, end)
		copy(grown, data)
		data = grown
	}
	copy(data[off:end], p)
	return data
}

// applyTruncate returns data at exactly size bytes, zero-filling growth.
func applyTruncate(data []byte, size int64) []byte {
	if int64(len(data)) >= size {
		return data[:size]
	}
	grown := make([]byte, size)
	copy(grown, data)
	return grown
}
