package simio

import (
	"strings"
	"testing"

	"detectable/internal/durable"
)

func runSweep(t *testing.T, cfg SweepConfig) *SweepResult {
	t.Helper()
	cfg.Logf = t.Logf
	res, err := Sweep(cfg)
	if err != nil {
		t.Fatalf("Sweep workload: %v", err)
	}
	t.Logf("sweep: %d fs ops, %d points, %d images, %d capped points",
		res.Ops, res.Points, res.Images, res.CappedPoints)
	return res
}

func requireClean(t *testing.T, res *SweepResult) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("point %d: %s", v.Point, v.Detail)
	}
	if t.Failed() {
		t.FailNow()
	}
	if res.Points != res.Ops+1 {
		t.Fatalf("checked %d crash points for %d ops, want full coverage (%d)", res.Points, res.Ops, res.Ops+1)
	}
}

// TestSweepSyncPath exhausts every crash point × torn-write variant of a
// per-mutation-fsync workload: recovery must always succeed, every
// recovered outcome must carry its effect, every released verdict must
// survive, and recovery must be hash-pure and replay-idempotent.
func TestSweepSyncPath(t *testing.T) {
	res := runSweep(t, SweepConfig{Ops: 6, Shards: 2, Window: 64, MaxImages: 4096})
	requireClean(t, res)
	if res.CappedPoints != 0 {
		t.Fatalf("%d crash points were capped — the sync-path sweep should be exhaustive", res.CappedPoints)
	}
}

// TestSweepGroupCommit runs the same exhaustion over group-commit epochs,
// including a multi-member epoch whose anchor (shard sync → outcome fold →
// sessions sync) is crossed with several parked verdicts at once.
func TestSweepGroupCommit(t *testing.T) {
	res := runSweep(t, SweepConfig{Ops: 4, Shards: 2, Window: 64, Group: true, EpochBatch: 3, MaxImages: 4096})
	requireClean(t, res)
}

// TestSweepCompaction forces snapshot compaction inside the workload so the
// atomic-replace sequence (tmp write → fsync → rename → dir sync) is
// crash-enumerated too, including torn snapshot tails and resurrected
// pre-compaction logs.
func TestSweepCompaction(t *testing.T) {
	res := runSweep(t, SweepConfig{Ops: 6, Shards: 2, Window: 8, CompactAt: 1, MaxImages: 2048})
	requireClean(t, res)
}

// TestSweepCatchesMutant seeds the classic ordering bug — outcome record
// fsynced before the shard effect it promises — and requires the sweep to
// convict it. This is the test of the test: if the enumerator or the
// checker went soft, the mutant would slip through and this fails.
func TestSweepCatchesMutant(t *testing.T) {
	durable.MutantOutcomeFirst = true
	defer func() { durable.MutantOutcomeFirst = false }()

	res := runSweep(t, SweepConfig{Ops: 4, Shards: 2, Window: 64, MaxImages: 2048})
	if len(res.Violations) == 0 {
		t.Fatal("outcome-before-effect mutant survived the sweep undetected")
	}
	var sawEffectLoss bool
	for _, v := range res.Violations {
		if strings.Contains(v.Detail, "outcome without effect") || strings.Contains(v.Detail, "released effect lost") {
			sawEffectLoss = true
		}
	}
	if !sawEffectLoss {
		t.Fatalf("mutant convicted, but not for effect loss: %v", res.Violations[0].Detail)
	}
	// The convicting image must reproduce: recover it and re-check.
	v := res.Violations[0]
	if len(v.Image.Files) == 0 {
		t.Fatal("violation carries no reproducing image")
	}
}

// TestSweepCatchesMutantUnderGroupCommit: the same mutant must also be
// caught when commits ride epochs.
func TestSweepCatchesMutantUnderGroupCommit(t *testing.T) {
	durable.MutantOutcomeFirst = true
	defer func() { durable.MutantOutcomeFirst = false }()

	res := runSweep(t, SweepConfig{Ops: 4, Shards: 2, Window: 64, Group: true, EpochBatch: 3, MaxImages: 2048})
	if len(res.Violations) == 0 {
		t.Fatal("outcome-before-effect mutant survived the group-commit sweep undetected")
	}
}
