package simio

// Crash-prefix model-checking of the replication APPLY path: a warm
// standby's data directory is written by Replica.Apply rather than by the
// commit protocol, and PR 9's claim is that it satisfies the exact same
// invariants — any crash prefix of the backup's disk recovers, never
// shows an outcome without its effect, preserves every barrier-acked
// verdict, and recovers purely and idempotently (durable.StateHash).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"

	"detectable/internal/durable"
)

// Sessions-log record kinds as they appear inside ReplSessRec messages.
// Mirrored here because the on-disk kinds are internal to durable; they
// are a stable format (docs/DURABILITY.md).
const (
	sessRecOutcome = 0x03
	sessRecEnd     = 0x04
)

func TestReplicaApplyCrashPrefixes(t *testing.T) {
	cfg := SweepConfig{Dir: "/data", Shards: 2, Procs: 3, Window: 8}

	// Primary: live-tap subscription opened before the workload, so the
	// stream carries every record and every barrier in commit order.
	pfs := New()
	pdb, err := durable.OpenFs(pfs, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		t.Fatalf("primary open: %v", err)
	}
	sub := pdb.Subscribe(0, false)
	if err := pdb.AppendHello(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := pdb.AppendHello(2, 1); err != nil {
		t.Fatal(err)
	}
	reqs := map[uint64]uint64{}
	commit := func(sid uint64, i int) {
		shard := i % cfg.Shards
		key := fmt.Sprintf("s%d-k%d", shard, (i/cfg.Shards)%2)
		val := int64(i + 1)
		pdb.ShardBacking(shard).Persist(key, val)
		reqs[sid]++
		if err := pdb.CommitOutcome(sid, reqs[sid], encodeReply(key, val)); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	i := 0
	for ; i < 8; i++ {
		commit(1+uint64(i%2), i)
	}
	if err := pdb.AppendHello(3, 2); err != nil {
		t.Fatal(err)
	}
	commit(3, i)
	if err := pdb.AppendEnd(3); err != nil {
		t.Fatal(err)
	}
	sub.Close()
	var msgs [][]byte
	for {
		chunk, err := sub.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("Next: %v", err)
		}
		for len(chunk) > 0 {
			n := int(binary.BigEndian.Uint32(chunk))
			msgs = append(msgs, append([]byte(nil), chunk[4:4+n]...))
			chunk = chunk[4+n:]
		}
	}

	// Backup: apply the stream, tracking each verdict's release point in
	// the BACKUP's journal — a verdict counts as released (ackable) only
	// once its barrier's Apply returned, and a session's END could reach
	// the medium from the moment its barrier's Apply began.
	bfs := New()
	bdb, err := durable.OpenFs(bfs, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		t.Fatalf("backup open: %v", err)
	}
	rep := bdb.NewReplica()
	var rel, pending []released
	endPending := map[uint64]bool{}
	for _, m := range msgs {
		if m[0] == durable.ReplSessRec && len(m) > 1 {
			rec := m[1:]
			switch rec[0] {
			case sessRecOutcome:
				sid := binary.BigEndian.Uint64(rec[1:])
				req := binary.BigEndian.Uint64(rec[9:])
				if key, val, ok := decodeReply(rec[21:]); ok {
					pending = append(pending, released{
						sid: sid, req: req, key: key, val: val, endedAt: math.MaxInt,
					})
				}
			case sessRecEnd:
				endPending[binary.BigEndian.Uint64(rec[1:])] = true
			}
		}
		preOps := bfs.Ops()
		_, barrier, err := rep.Apply(m)
		if err != nil {
			t.Fatalf("Apply (kind 0x%02x): %v", m[0], err)
		}
		if !barrier {
			continue
		}
		at := bfs.Ops()
		for j := range pending {
			pending[j].releasedAt = at
		}
		rel = append(rel, pending...)
		pending = pending[:0]
		for sid := range endPending {
			for j := range rel {
				if rel[j].sid == sid && rel[j].endedAt == math.MaxInt {
					rel[j].endedAt = preOps
				}
			}
			delete(endPending, sid)
		}
	}
	if got, want := bdb.StateHash(), pdb.StateHash(); got != want {
		t.Fatalf("backup hash %s, primary %s", got, want)
	}
	if err := bdb.Close(); err != nil {
		t.Fatalf("backup close: %v", err)
	}
	pdb.Close()

	// Sweep every crash point of the backup's journal through the standard
	// image checks.
	journal := bfs.Journal()
	if len(journal) == 0 {
		t.Fatal("backup journaled nothing; the apply path is not under test")
	}
	images := 0
	for k := 0; k <= len(journal); k++ {
		EnumerateImages(journal, k, RecordAwareCuts, 6, func(img Image) bool {
			images++
			if v := checkImage(cfg, img, rel, k); v != nil {
				t.Errorf("backup crash point %d: %s", k, v.Detail)
				return false
			}
			return true
		})
		if t.Failed() {
			break
		}
	}
	t.Logf("backup journal: %d ops, %d images checked", len(journal), images)
}
