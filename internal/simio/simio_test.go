package simio

import (
	"bytes"
	"os"
	"testing"
)

// TestUnsyncedWriteCanBeLost pins the core persistence model: a write
// without fsync may or may not survive, a write behind fsync always does.
func TestUnsyncedWriteCanBeLost(t *testing.T) {
	f := New()
	h, err := f.OpenFile("a.log", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}

	j := f.Journal()
	var lost, kept bool
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		switch {
		case len(img.Files["a.log"]) == 0:
			lost = true
		case bytes.Equal(img.Files["a.log"], []byte("hello")):
			kept = true
		default:
			t.Errorf("impossible content %q", img.Files["a.log"])
		}
		return true
	})
	if !lost || !kept {
		t.Fatalf("unsynced write: lost=%v kept=%v, want both admissible", lost, kept)
	}

	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	j = f.Journal()
	n, _ := EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		if !bytes.Equal(img.Files["a.log"], []byte("hello")) {
			t.Errorf("post-fsync image lost the write: %q", img.Files["a.log"])
		}
		return true
	})
	if n != 1 {
		t.Fatalf("post-fsync crash admits %d images, want exactly 1", n)
	}
}

// TestCreateNeedsDirSync pins the directory-entry model: a freshly created
// file can vanish wholesale until its parent directory is synced — even if
// the file's own content was fsynced.
func TestCreateNeedsDirSync(t *testing.T) {
	f := New()
	h, err := f.OpenFile("a.log", os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("rec"), 0); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}

	j := f.Journal()
	var gone, present bool
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		if _, ok := img.Files["a.log"]; ok {
			present = true
		} else {
			gone = true
		}
		return true
	})
	if !gone || !present {
		t.Fatalf("unsynced dir entry: gone=%v present=%v, want both admissible", gone, present)
	}

	if err := f.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	j = f.Journal()
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		if !bytes.Equal(img.Files["a.log"], []byte("rec")) {
			t.Errorf("post-dirsync image lost the file: %v", img.Files)
		}
		return true
	})
}

// TestRenameAtomicity pins the rename model: before the directory sync a
// crash sees either the complete old file or the complete new one — never
// a mixture — and after the sync only the new one.
func TestRenameAtomicity(t *testing.T) {
	f := New()
	write := func(path, content string, sync bool) {
		t.Helper()
		h, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt([]byte(content), 0); err != nil {
			t.Fatal(err)
		}
		if sync {
			if err := h.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	write("f", "old-contents", true)
	if err := f.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	write("f.tmp", "new", true)
	if err := f.Rename("f.tmp", "f"); err != nil {
		t.Fatal(err)
	}

	j := f.Journal()
	var sawOld, sawNew bool
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		switch string(img.Files["f"]) {
		case "old-contents":
			sawOld = true
		case "new":
			sawNew = true
		default:
			t.Errorf("torn rename: f = %q", img.Files["f"])
		}
		return true
	})
	if !sawOld || !sawNew {
		t.Fatalf("pre-dirsync rename: old=%v new=%v, want both admissible", sawOld, sawNew)
	}

	if err := f.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	j = f.Journal()
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		if string(img.Files["f"]) != "new" {
			t.Errorf("post-dirsync image resurrected: f = %q", img.Files["f"])
		}
		if _, ok := img.Files["f.tmp"]; ok {
			t.Error("post-dirsync image kept f.tmp")
		}
		return true
	})
}

// TestTornWriteCuts pins torn-write injection: the first dropped write is
// additionally applied at every caller-chosen cut.
func TestTornWriteCuts(t *testing.T) {
	f := New()
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o644)
	f.SyncDir(".")
	h.WriteAt([]byte("12345678"), 0)

	cuts := func(path string, data []byte) []int { return []int{3, 6} }
	j := f.Journal()
	seen := map[string]bool{}
	EnumerateImages(j, len(j), cuts, 0, func(img Image) bool {
		seen[string(img.Files["a"])] = true
		return true
	})
	for _, want := range []string{"", "123", "123456", "12345678"} {
		if !seen[want] {
			t.Errorf("torn enumeration missing content %q (saw %v)", want, seen)
		}
	}
	if len(seen) != 4 {
		t.Errorf("torn enumeration visited %d contents, want 4: %v", len(seen), seen)
	}
}

// TestImageRoundTrip: FromImage(LiveImage()) reproduces the tree, with an
// empty journal (seeding is initial state, not activity).
func TestImageRoundTrip(t *testing.T) {
	f := New()
	if err := f.MkdirAll("/data/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	h, _ := f.OpenFile("/data/sub/x", os.O_RDWR|os.O_CREATE, 0o644)
	h.WriteAt([]byte("payload"), 0)

	img := f.LiveImage()
	g := FromImage(img)
	if g.Ops() != 0 {
		t.Fatalf("FromImage journal has %d ops, want 0", g.Ops())
	}
	got, err := g.ReadFile("/data/sub/x")
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if ok, _ := g.Exists("/data/sub"); !ok {
		t.Fatal("round trip lost directory /data/sub")
	}
}

// TestEnumerateCap: the per-point image cap reports truncation.
func TestEnumerateCap(t *testing.T) {
	f := New()
	for _, name := range []string{"a", "b", "c"} {
		h, _ := f.OpenFile(name, os.O_RDWR|os.O_CREATE, 0o644)
		h.WriteAt([]byte("x"), 0)
	}
	j := f.Journal()
	if n := CountImages(j, len(j), nil); n < 8 {
		t.Fatalf("3 dirty files + 3 staged entries admit %d images, want ≥ 8", n)
	}
	n, capped := EnumerateImages(j, len(j), nil, 2, func(Image) bool { return true })
	if n != 2 || !capped {
		t.Fatalf("cap: visited=%d capped=%v, want 2, true", n, capped)
	}
}

// TestTruncateStaged: an unsynced truncate may or may not apply.
func TestTruncateStaged(t *testing.T) {
	f := New()
	h, _ := f.OpenFile("a", os.O_RDWR|os.O_CREATE, 0o644)
	h.WriteAt([]byte("abcdef"), 0)
	h.Sync()
	f.SyncDir(".")
	if err := h.Truncate(2); err != nil {
		t.Fatal(err)
	}

	j := f.Journal()
	seen := map[string]bool{}
	EnumerateImages(j, len(j), nil, 0, func(img Image) bool {
		seen[string(img.Files["a"])] = true
		return true
	})
	if !seen["abcdef"] || !seen["ab"] || len(seen) != 2 {
		t.Fatalf("staged truncate admits %v, want {abcdef, ab}", seen)
	}
}
