package simio

import (
	"path/filepath"
	"sort"
)

// Crash-image reconstruction. The journal is replayed up to a crash point
// with persistence semantics: a write/truncate is *staged* on its file
// until that file's fsync applies it; an entry create/rename/remove is
// *staged* on its directory until that directory's sync applies it. What
// is applied at the crash point is guaranteed durable. What is still
// staged may or may not have been written back by the kernel — so the
// enumerator emits one image per admissible combination:
//
//   - per file: any prefix of its staged operations applied (the medium
//     writes a single file's data back in issue order), plus torn variants
//     where the first dropped write is partially applied at caller-chosen
//     cut offsets (record-granularity tears, mid-record corruption);
//   - per directory: any prefix of its staged entry operations applied;
//   - choices compose freely across files and directories (the kernel
//     makes no cross-file ordering promises without fsync).
//
// This is the same discipline internal/explore applies to NVM primitives —
// exhaustive enumeration of everything the model admits — lifted to the
// write/fsync/rename surface.

// CutFunc returns the torn-write cut offsets to try for an unsynced write
// of data to path: for each returned c (0 < c < len(data)), an image is
// emitted where only data[:c] reached the medium. Nil tries no cuts.
type CutFunc func(path string, data []byte) []int

// pfile is one file's persistent state during replay.
type pfile struct {
	path    string // path at creation (diagnostic only)
	durable []byte
	staged  []Op // OpWrite / OpTruncate in issue order
}

// pdir is one directory's persistent state during replay.
type pdir struct {
	durable map[string]entry // entry name → file/dir identity
	staged  []Op             // OpMkdir / OpCreate / OpRename / OpRemove
}

// pstate is the whole persistent state at a crash point.
type pstate struct {
	dirs  map[string]*pdir
	files map[int]*pfile
}

func newPstate() *pstate {
	return &pstate{
		dirs: map[string]*pdir{
			"/": {durable: map[string]entry{}},
			".": {durable: map[string]entry{}},
		},
		files: map[int]*pfile{},
	}
}

func (ps *pstate) dir(path string) *pdir {
	d, ok := ps.dirs[path]
	if !ok {
		d = &pdir{durable: map[string]entry{}}
		ps.dirs[path] = d
	}
	return d
}

// applyOp applies one journaled op with persistence semantics.
func (ps *pstate) applyOp(op Op) {
	switch op.Kind {
	case OpMkdir:
		ps.dir(op.Path) // materialize the dir object; visibility is gated by the entry
		parent := ps.dir(filepath.Dir(op.Path))
		parent.staged = append(parent.staged, op)
	case OpCreate:
		ps.files[op.File] = &pfile{path: op.Path}
		parent := ps.dir(filepath.Dir(op.Path))
		parent.staged = append(parent.staged, op)
	case OpWrite, OpTruncate:
		pf := ps.files[op.File]
		pf.staged = append(pf.staged, op)
	case OpFsync:
		pf := ps.files[op.File]
		for _, s := range pf.staged {
			pf.durable = applyFileOp(pf.durable, s, -1)
		}
		pf.staged = nil
	case OpRename, OpRemove:
		parent := ps.dir(filepath.Dir(op.Path))
		parent.staged = append(parent.staged, op)
	case OpSyncDir:
		d := ps.dir(op.Path)
		for _, s := range d.staged {
			applyDirOp(d.durable, s)
		}
		d.staged = nil
	}
}

// applyFileOp applies one staged write/truncate to content. cut ≥ 0 applies
// only the first cut bytes of a write (a torn write-back).
func applyFileOp(data []byte, op Op, cut int) []byte {
	switch op.Kind {
	case OpWrite:
		b := op.Data
		if cut >= 0 && cut < len(b) {
			b = b[:cut]
		}
		return applyWrite(data, op.Off, b)
	case OpTruncate:
		return applyTruncate(data, op.Size)
	}
	return data
}

// applyDirOp applies one staged entry op to a directory's entry map.
func applyDirOp(entries map[string]entry, op Op) {
	switch op.Kind {
	case OpMkdir:
		entries[filepath.Base(op.Path)] = entry{isDir: true}
	case OpCreate:
		entries[filepath.Base(op.Path)] = entry{id: op.File}
	case OpRename:
		entries[filepath.Base(op.To)] = entry{id: op.File}
		delete(entries, filepath.Base(op.Path))
	case OpRemove:
		delete(entries, filepath.Base(op.Path))
	}
}

// replayTo returns the persistent state after the first k journal ops.
func replayTo(journal []Op, k int) *pstate {
	ps := newPstate()
	for _, op := range journal[:k] {
		ps.applyOp(op)
	}
	return ps
}

// fileChoice is one per-file write-back decision: applied staged-op prefix
// length, and an optional torn cut into the first dropped op.
type fileChoice struct {
	prefix int
	cut    int // -1: none
}

// EnumerateImages reconstructs the persistent state at crash point k
// (after the first k ops of journal were issued) and visits every
// admissible byte image. cuts chooses torn-write offsets (nil for none).
// max > 0 caps the number of visited images per call; the return reports
// how many were visited and whether the cap cut enumeration short. visit
// returning false stops early (counts as capped: coverage is incomplete).
func EnumerateImages(journal []Op, k int, cuts CutFunc, max int, visit func(Image) bool) (visited int, capped bool) {
	ps := replayTo(journal, k)

	// Deterministic ordering of the choice dimensions.
	var dirtyDirs []string
	for p, d := range ps.dirs {
		if len(d.staged) > 0 {
			dirtyDirs = append(dirtyDirs, p)
		}
	}
	sort.Strings(dirtyDirs)
	var dirtyFiles []int
	for id, pf := range ps.files {
		if len(pf.staged) > 0 {
			dirtyFiles = append(dirtyFiles, id)
		}
	}
	sort.Ints(dirtyFiles)

	dirPick := make([]int, len(dirtyDirs))
	filePick := make([]fileChoice, len(dirtyFiles))

	stop := false
	var rec func(dim int)
	rec = func(dim int) {
		if stop {
			return
		}
		if dim == len(dirtyDirs)+len(dirtyFiles) {
			if max > 0 && visited >= max {
				stop, capped = true, true
				return
			}
			visited++
			if !visit(materialize(ps, dirtyDirs, dirPick, dirtyFiles, filePick)) {
				stop, capped = true, true
			}
			return
		}
		if dim < len(dirtyDirs) {
			d := ps.dirs[dirtyDirs[dim]]
			for c := 0; c <= len(d.staged) && !stop; c++ {
				dirPick[dim] = c
				rec(dim + 1)
			}
			return
		}
		fi := dim - len(dirtyDirs)
		pf := ps.files[dirtyFiles[fi]]
		for c := 0; c <= len(pf.staged) && !stop; c++ {
			filePick[fi] = fileChoice{prefix: c, cut: -1}
			rec(dim + 1)
			// Torn variants of the first dropped op, when it is a write.
			if c == len(pf.staged) || cuts == nil {
				continue
			}
			next := pf.staged[c]
			if next.Kind != OpWrite || len(next.Data) == 0 {
				continue
			}
			for _, cut := range cuts(pf.path, next.Data) {
				if cut <= 0 || cut >= len(next.Data) || stop {
					continue
				}
				filePick[fi] = fileChoice{prefix: c, cut: cut}
				rec(dim + 1)
			}
		}
	}
	rec(0)
	return visited, capped
}

// CountImages returns how many images EnumerateImages would visit at crash
// point k with no cap.
func CountImages(journal []Op, k int, cuts CutFunc) int {
	n, _ := EnumerateImages(journal, k, cuts, 0, func(Image) bool { return true })
	return n
}

// materialize builds the byte image for one choice combination: each dirty
// directory's entries get its chosen staged prefix, each dirty file's
// content gets its chosen staged prefix plus optional torn tail, then the
// reachable tree is walked from the roots.
func materialize(ps *pstate, dirtyDirs []string, dirPick []int, dirtyFiles []int, filePick []fileChoice) Image {
	entries := map[string]map[string]entry{}
	for p, d := range ps.dirs {
		m := make(map[string]entry, len(d.durable))
		for n, e := range d.durable {
			m[n] = e
		}
		entries[p] = m
	}
	for i, p := range dirtyDirs {
		d := ps.dirs[p]
		for _, op := range d.staged[:dirPick[i]] {
			applyDirOp(entries[p], op)
		}
	}
	content := func(id int) []byte {
		pf := ps.files[id]
		data := append([]byte(nil), pf.durable...)
		for i, fid := range dirtyFiles {
			if fid != id {
				continue
			}
			pick := filePick[i]
			for _, op := range pf.staged[:pick.prefix] {
				data = applyFileOp(data, op, -1)
			}
			if pick.cut >= 0 && pick.prefix < len(pf.staged) {
				data = applyFileOp(data, pf.staged[pick.prefix], pick.cut)
			}
			return data
		}
		return data // clean file: durable content is the content
	}

	img := Image{Files: map[string][]byte{}}
	var walk func(dir string)
	walk = func(dir string) {
		img.Dirs = append(img.Dirs, dir)
		names := make([]string, 0, len(entries[dir]))
		for n := range entries[dir] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			e := entries[dir][n]
			p := filepath.Join(dir, n)
			if e.isDir {
				walk(p)
			} else {
				img.Files[p] = content(e.id)
			}
		}
	}
	walk("/")
	walk(".")
	return img
}
