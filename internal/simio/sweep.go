package simio

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"detectable/internal/durable"
)

// The crash-prefix sweep: run a durable workload against the simulated
// filesystem, then for every crash point × admissible byte image, recover
// with durable.OpenFs and check
//
//  1. recovery succeeds (a crash may never brick the store),
//  2. outcome-implies-effect: every recovered outcome's journaled put is
//     present in its shard mirror (the paper's detectability contract — a
//     replayed verdict never promises a lost write),
//  3. released-verdict survival: every verdict the workload released
//     (CommitOutcome returned) before the crash point is recovered, with
//     byte-identical reply and surviving effect,
//  4. purity: recovering the same image twice yields the same StateHash —
//     recovery is a pure function of the byte image,
//  5. idempotence: recovering the image recovery itself produced yields
//     the same StateHash (recover ×2 ≡ ×1),
//
// all pinned by durable.StateHash rather than spot-checks.

// SweepConfig parameterizes one sweep.
type SweepConfig struct {
	Dir    string // data directory path inside the simulated fs
	Shards int
	Procs  int
	Window int
	Ops    int  // committed mutations in the main workload phase
	Keys   int  // distinct keys per shard (values stay monotone per key)
	Group  bool // group-commit epochs instead of per-mutation fsync
	// EpochBatch > 1 adds a multi-member epoch phase (Group only): that
	// many concurrent commits share one anchor, so crash points inside the
	// shard-sync → outcome-fold → sessions-sync sequence carry several
	// parked verdicts at once.
	EpochBatch int
	CompactAt  int64         // compaction threshold; 0 keeps the durable default
	MaxImages  int           // per-crash-point image cap; 0 = unlimited
	Budget     time.Duration // wall-clock budget; 0 = unlimited
	Logf       func(format string, args ...any)
}

// Violation is one detected crash-consistency failure, carrying the exact
// byte image that reproduces it.
type Violation struct {
	Point  int
	Hash   string // StateHash of the first recovery, "" if recovery failed
	Detail string
	Image  Image
}

// SweepResult summarizes a sweep.
type SweepResult struct {
	Ops          int // journaled fs operations = crash points - 1
	Points       int // crash points actually checked
	Images       int // images recovered (each at least twice, plus replay)
	CappedPoints int // points where MaxImages truncated enumeration
	BudgetHit    bool
	Violations   []Violation
}

// released is one verdict the workload released, with the journal indices
// bracketing its validity.
type released struct {
	sid, req   uint64
	key        string
	val        int64
	releasedAt int // journal length when CommitOutcome returned
	endedAt    int // journal length when the session's END began; MaxInt if never
}

// Sweep runs the workload and the full crash-point × image enumeration.
// The only error return is a workload failure (a bug in the harness or the
// store's crash-free path); consistency failures are reported as
// Violations.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Dir == "" {
		cfg.Dir = "/data"
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Procs == 0 {
		cfg.Procs = 3
	}
	if cfg.Window == 0 {
		cfg.Window = 64
	}
	if cfg.Keys == 0 {
		cfg.Keys = 2
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	fsim := New()
	rel, err := runWorkload(fsim, cfg)
	if err != nil {
		return nil, err
	}
	journal := fsim.Journal()
	res := &SweepResult{Ops: len(journal)}
	logf("workload journaled %d fs ops (%d crash points), %d released verdicts",
		len(journal), len(journal)+1, len(rel))

	start := time.Now()
	for k := 0; k <= len(journal); k++ {
		if cfg.Budget > 0 && time.Since(start) > cfg.Budget {
			res.BudgetHit = true
			logf("budget exhausted at crash point %d/%d", k, len(journal))
			break
		}
		res.Points++
		n, capped := EnumerateImages(journal, k, RecordAwareCuts, cfg.MaxImages, func(img Image) bool {
			res.Images++
			if v := checkImage(cfg, img, rel, k); v != nil {
				v.Point = k
				res.Violations = append(res.Violations, *v)
			}
			return len(res.Violations) < 32 // keep sweeping, but bound the report
		})
		if capped {
			res.CappedPoints++
			logf("crash point %d: image enumeration capped at %d", k, n)
		}
	}
	return res, nil
}

// runWorkload drives the commit protocol through every durability-relevant
// path: session hellos, journaled puts, per-mutation or epoch commits, a
// multi-member epoch, observer-ID burns, a session end, compaction (when
// CompactAt is small), and a clean close.
func runWorkload(fsim *Fs, cfg SweepConfig) ([]released, error) {
	db, err := durable.OpenFs(fsim, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		return nil, fmt.Errorf("simio: workload open: %w", err)
	}
	if cfg.CompactAt > 0 {
		db.SetCompactThreshold(cfg.CompactAt)
	}
	if cfg.Group {
		db.StartGroupCommit(0)
	}
	if err := db.AppendHello(1, 0); err != nil {
		return nil, err
	}
	if err := db.AppendHello(2, 1); err != nil {
		return nil, err
	}

	var rel []released
	reqs := map[uint64]uint64{}
	commit := func(sid uint64, i int) error {
		shard := i % cfg.Shards
		key := fmt.Sprintf("s%d-k%d", shard, (i/cfg.Shards)%cfg.Keys)
		val := int64(i + 1) // monotone per key: i strictly increases
		db.ShardBacking(shard).Persist(key, val)
		reqs[sid]++
		req := reqs[sid]
		if err := db.CommitOutcome(sid, req, encodeReply(key, val)); err != nil {
			return fmt.Errorf("simio: workload commit %d: %w", i, err)
		}
		rel = append(rel, released{
			sid: sid, req: req, key: key, val: val,
			releasedAt: fsim.Ops(), endedAt: math.MaxInt,
		})
		return nil
	}

	i := 0
	for ; i < cfg.Ops; i++ {
		if err := commit(1+uint64(i%2), i); err != nil {
			return nil, err
		}
		if i == cfg.Ops/2 {
			// Observer-session ID burn, mid-stream.
			if err := db.NoteSID(100); err != nil {
				return nil, err
			}
		}
	}

	// A short-lived third session: hello, one commit, durable end. Its
	// released verdict must survive crashes up to the moment the END could
	// have reached the medium.
	if cfg.Procs >= 3 {
		if err := db.AppendHello(3, 2); err != nil {
			return nil, err
		}
		if err := commit(3, i); err != nil {
			return nil, err
		}
		i++
		endStart := fsim.Ops()
		if err := db.AppendEnd(3); err != nil {
			return nil, err
		}
		for j := range rel {
			if rel[j].sid == 3 {
				rel[j].endedAt = endStart
			}
		}
	}

	// Multi-member epoch: several commits parked on one anchor, so the
	// shard-sync → outcome-fold → sessions-sync sequence is crossed with
	// multiple in-flight verdicts.
	if cfg.Group && cfg.EpochBatch > 1 {
		db.StopGroupCommit()
		_, before := db.GroupCommitStats()
		db.StartGroupCommit(time.Hour) // anchor only on the explicit drain
		var (
			mu  sync.Mutex
			wg  sync.WaitGroup
			wee error
		)
		for b := 0; b < cfg.EpochBatch; b++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				shard := i % cfg.Shards
				key := fmt.Sprintf("s%d-k%d", shard, (i/cfg.Shards)%cfg.Keys)
				val := int64(i + 1)
				db.ShardBacking(shard).Persist(key, val)
				mu.Lock()
				reqs[1]++
				req := reqs[1]
				mu.Unlock()
				err := db.CommitOutcome(1, req, encodeReply(key, val))
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					wee = err
					return
				}
				rel = append(rel, released{
					sid: 1, req: req, key: key, val: val,
					releasedAt: fsim.Ops(), endedAt: math.MaxInt,
				})
			}(i + b)
		}
		// Wait for every member to park in the epoch, then drain: one
		// anchor carries the whole batch.
		for {
			_, commits := db.GroupCommitStats()
			if commits >= before+uint64(cfg.EpochBatch) {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		db.StopGroupCommit()
		wg.Wait()
		if wee != nil {
			return nil, fmt.Errorf("simio: epoch batch commit: %w", wee)
		}
	}

	if err := db.Close(); err != nil {
		return nil, fmt.Errorf("simio: workload close: %w", err)
	}
	return rel, nil
}

// encodeReply encodes the (key, value) a commit promised, parseable so the
// checker can tie any recovered outcome back to its required effect.
func encodeReply(key string, val int64) []byte {
	return []byte(key + "=" + strconv.FormatInt(val, 10))
}

func decodeReply(reply []byte) (key string, val int64, ok bool) {
	s := string(reply)
	eq := strings.LastIndexByte(s, '=')
	if eq < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseInt(s[eq+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return s[:eq], v, true
}

// checkImage recovers one byte image (twice, plus a replay of the
// recovered state) and evaluates every invariant. A nil return is a pass.
func checkImage(cfg SweepConfig, img Image, rel []released, k int) *Violation {
	fail := func(hash, format string, args ...any) *Violation {
		return &Violation{Hash: hash, Detail: fmt.Sprintf(format, args...), Image: img.Clone()}
	}

	f1 := FromImage(img)
	db1, err := durable.OpenFs(f1, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		return fail("", "recovery failed: %v", err)
	}
	h1 := db1.StateHash()

	kv := map[string]int64{}
	for s := 0; s < cfg.Shards; s++ {
		db1.RangeShard(s, func(key string, val int64) { kv[key] = val })
	}
	sessions := map[uint64]durable.SessionState{}
	for _, s := range db1.Sessions() {
		sessions[s.SID] = s
	}

	// (2) outcome-implies-effect, for every recovered outcome whether or
	// not it was ever released.
	for _, s := range sessions {
		for req, reply := range s.Window {
			key, val, ok := decodeReply(reply)
			if !ok {
				db1.Close()
				return fail(h1, "recovered outcome sid=%d req=%d has undecodable reply %q", s.SID, req, reply)
			}
			if got, present := kv[key]; !present || got < val {
				db1.Close()
				return fail(h1, "outcome without effect: sid=%d req=%d promises %s=%d, shard has %d (present=%v)",
					s.SID, req, key, val, got, present)
			}
		}
	}

	// (3) released-verdict survival.
	for _, r := range rel {
		if r.releasedAt > k || k >= r.endedAt {
			continue // not yet released at the crash, or legitimately ended
		}
		if got, present := kv[r.key]; !present || got < r.val {
			db1.Close()
			return fail(h1, "released effect lost: sid=%d req=%d put %s=%d, shard has %d (present=%v)",
				r.sid, r.req, r.key, r.val, got, present)
		}
		s, ok := sessions[r.sid]
		if !ok {
			db1.Close()
			return fail(h1, "released verdict lost: session %d gone (req=%d)", r.sid, r.req)
		}
		if r.req+uint64(cfg.Window) <= s.MaxID {
			continue // evicted past the window bound: the client has advanced
		}
		if string(s.Window[r.req]) != string(encodeReply(r.key, r.val)) {
			db1.Close()
			return fail(h1, "released verdict lost: sid=%d req=%d recovered as %q, want %q",
				r.sid, r.req, s.Window[r.req], encodeReply(r.key, r.val))
		}
	}
	db1.Close()

	// (4) purity: same image, fresh recovery, same hash.
	f2 := FromImage(img)
	db2, err := durable.OpenFs(f2, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		return fail(h1, "second recovery of the same image failed: %v", err)
	}
	h2 := db2.StateHash()
	db2.Close()
	if h2 != h1 {
		return fail(h1, "recovery is not a pure function of the image: hash %s then %s", h1, h2)
	}

	// (5) idempotence: recover what recovery left behind; nothing changes.
	f3 := FromImage(f1.LiveImage())
	db3, err := durable.OpenFs(f3, cfg.Dir, cfg.Shards, cfg.Procs, cfg.Window)
	if err != nil {
		return fail(h1, "replay of the recovered state failed: %v", err)
	}
	h3 := db3.StateHash()
	db3.Close()
	if h3 != h1 {
		return fail(h1, "recovery replay not idempotent: hash %s then %s", h1, h3)
	}
	return nil
}

// RecordAwareCuts is the CutFunc for durable's file formats: for framed
// record streams it tears at every record boundary (a clean
// record-granularity tear), inside each frame header, and mid-payload (a
// CRC-failing tear); for unframed files (MANIFEST) it falls back to a few
// representative byte cuts.
func RecordAwareCuts(path string, data []byte) []int {
	var cuts []int
	off := 0
	for off+durable.FrameHeader <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off:]))
		if n > durable.MaxRecord || off+durable.FrameHeader+n > len(data) {
			break
		}
		end := off + durable.FrameHeader + n
		cuts = append(cuts, off+4, off+durable.FrameHeader+n/2, end)
		off = end
	}
	if off == 0 {
		// Not framed from the start: representative tears.
		cuts = append(cuts, 1, len(data)/2, len(data)-1)
	}
	out := cuts[:0]
	seen := map[int]bool{}
	for _, c := range cuts {
		if c > 0 && c < len(data) && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
