package detectable

import (
	"detectable/internal/counter"
	"detectable/internal/kv"
	"detectable/internal/maxreg"
	"detectable/internal/queue"
	"detectable/internal/rcas"
	"detectable/internal/rw"
	"detectable/internal/tas"
)

// Register is a bounded-space detectable read/write register over int
// values (the paper's Algorithm 1).
type Register struct {
	inner *rw.Register[int]
	sys   *System
}

// NewRegister allocates a detectable register initialized to init.
func (s *System) NewRegister(init int) *Register {
	return &Register{inner: rw.NewInt(s.inner, init), sys: s}
}

// Write performs a detectable write as process pid.
func (r *Register) Write(pid, val int, plans ...CrashPlan) Outcome[int] {
	return wrap(r.inner.Write(pid, val, unwrapPlans(plans)...))
}

// Read performs a detectable read as process pid.
func (r *Register) Read(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(r.inner.Read(pid, unwrapPlans(plans)...))
}

// Value returns the register's current value without going through a
// process (for inspection and tests).
func (r *Register) Value() int { return r.inner.PeekTriple().Val }

// CAS is a bounded-space detectable compare-and-swap object over int
// values (the paper's Algorithm 2). It uses N bits of shared memory beyond
// the value — asymptotically optimal by Theorem 1.
type CAS struct {
	inner *rcas.CAS[int]
	sys   *System
}

// NewCAS allocates a detectable CAS object initialized to init. The system
// must have at most 64 processes.
func (s *System) NewCAS(init int) *CAS {
	return &CAS{inner: rcas.NewInt(s.inner, init), sys: s}
}

// Cas performs a detectable compare-and-swap as process pid: if the value
// equals old it becomes new and the response is true.
func (c *CAS) Cas(pid, old, new int, plans ...CrashPlan) Outcome[bool] {
	return wrap(c.inner.Cas(pid, old, new, unwrapPlans(plans)...))
}

// Read performs a detectable read as process pid.
func (c *CAS) Read(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(c.inner.Read(pid, unwrapPlans(plans)...))
}

// Value returns the object's current value (for inspection and tests).
func (c *CAS) Value() int { return c.inner.PeekPair().Val }

// MaxRegister is a recoverable max register (the paper's Algorithm 3). It
// needs no auxiliary state: crashed operations recover by re-invocation and
// are always linearized, so outcomes always report Linearized.
type MaxRegister struct {
	inner *maxreg.MaxRegister
	sys   *System
}

// NewMaxRegister allocates a max register initialized to 0.
func (s *System) NewMaxRegister() *MaxRegister {
	return &MaxRegister{inner: maxreg.New(s.inner), sys: s}
}

// WriteMax raises the register to val if val is larger, as process pid.
func (m *MaxRegister) WriteMax(pid, val int, plans ...CrashPlan) Outcome[int] {
	return wrap(m.inner.WriteMax(pid, val, unwrapPlans(plans)...))
}

// Read returns the largest value ever written, as process pid.
func (m *MaxRegister) Read(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(m.inner.Read(pid, unwrapPlans(plans)...))
}

// Value returns the register's current value (for inspection and tests).
func (m *MaxRegister) Value() int { return m.inner.Peek() }

// Queue is a detectable durable FIFO queue of ints. Deq outcomes carry
// EmptyQueue when the queue was observed empty.
type Queue struct {
	inner *queue.Queue
	sys   *System
}

// EmptyQueue is the Deq response for an empty queue.
const EmptyQueue = -1

// NewQueue allocates an empty detectable queue.
func (s *System) NewQueue() *Queue {
	return &Queue{inner: queue.New(s.inner), sys: s}
}

// Enq appends v as process pid.
func (q *Queue) Enq(pid, v int, plans ...CrashPlan) Outcome[int] {
	return wrap(q.inner.Enq(pid, v, unwrapPlans(plans)...))
}

// Deq removes and returns the oldest element as process pid, or EmptyQueue.
func (q *Queue) Deq(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(q.inner.Deq(pid, unwrapPlans(plans)...))
}

// Values returns the queued elements, oldest first (for inspection).
func (q *Queue) Values() []int { return q.inner.PeekAll() }

// Counter is a recoverable counter with exactly-once increments, composed
// from the detectable CAS: crashed increments are retried only when their
// recovery proves they did not land.
type Counter struct {
	inner *counter.Counter
}

// NewCounter allocates a counter initialized to 0.
func (s *System) NewCounter() *Counter {
	return &Counter{inner: counter.New(s.inner)}
}

// Inc increments exactly once as process pid and returns the new value.
func (c *Counter) Inc(pid int) int { return c.inner.Inc(pid) }

// Value returns the counter's current value as observed by pid.
func (c *Counter) Value(pid int) int { return c.inner.Value(pid) }

// FetchAdd is a recoverable fetch-and-add with exactly-once addition.
type FetchAdd struct {
	inner *counter.FetchAdd
}

// NewFetchAdd allocates a fetch-and-add object initialized to 0.
func (s *System) NewFetchAdd() *FetchAdd {
	return &FetchAdd{inner: counter.NewFetchAdd(s.inner)}
}

// Add adds delta exactly once as process pid, returning the previous value.
func (f *FetchAdd) Add(pid, delta int) int { return f.inner.Add(pid, delta) }

// TAS is a detectable resettable test-and-set object, composed from the
// bounded-space detectable CAS.
type TAS struct {
	inner *tas.TAS
}

// NewTAS allocates a cleared test-and-set object.
func (s *System) NewTAS() *TAS {
	return &TAS{inner: tas.New(s.inner)}
}

// TestAndSet attempts to win the bit as process pid; a linearized response
// of 0 means pid won, 1 means the bit was already set.
func (t *TAS) TestAndSet(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(t.inner.TestAndSet(pid, unwrapPlans(plans)...))
}

// Reset clears the bit as process pid.
func (t *TAS) Reset(pid int, plans ...CrashPlan) Outcome[int] {
	return wrap(t.inner.Reset(pid, unwrapPlans(plans)...))
}

// Value returns the current bit (for inspection and tests).
func (t *TAS) Value() int { return t.inner.Peek() }

// KV is a recoverable key-value store: one detectable register per key.
type KV struct {
	inner *kv.Store
}

// NewKV allocates an empty store.
func (s *System) NewKV() *KV {
	return &KV{inner: kv.New(s.inner)}
}

// Put writes key := val as process pid with a detectable outcome.
func (k *KV) Put(pid int, key string, val int, plans ...CrashPlan) Outcome[int] {
	return wrap(k.inner.Put(pid, key, val, unwrapPlans(plans)...))
}

// PutDurable writes key := val, retrying failed (not-linearized) attempts
// until the write lands. It returns the number of invocations used.
func (k *KV) PutDurable(pid int, key string, val int) int {
	return k.inner.PutRetry(pid, key, val)
}

// Get reads key as process pid.
func (k *KV) Get(pid int, key string, plans ...CrashPlan) Outcome[int] {
	return wrap(k.inner.Get(pid, key, unwrapPlans(plans)...))
}

// Keys returns all keys ever written, sorted.
func (k *KV) Keys() []string { return k.inner.Keys() }
