// Benchmark harness: one benchmark (family) per experiment row in
// EXPERIMENTS.md. Run with:
//
//	go test -bench=. -benchmem
package detectable_test

import (
	"fmt"
	"sync"
	"testing"

	"detectable/internal/baseline"
	"detectable/internal/benchsuite"
	"detectable/internal/counter"
	"detectable/internal/linearize"
	"detectable/internal/maxreg"
	"detectable/internal/model"
	"detectable/internal/nvm"
	"detectable/internal/perturb"
	"detectable/internal/queue"
	"detectable/internal/rcas"
	"detectable/internal/runtime"
	"detectable/internal/rw"
	"detectable/internal/spec"
)

// --- Sharded KV store: throughput scaling with shard count ---

// BenchmarkShardKV sweeps the shard count under a fixed set of concurrent
// processes hammering a shared key space (3:1 put:get). With one shard all
// processes contend on a single system's space; more shards split the keys
// across independent NVM spaces, so throughput should rise with the count.
// The body lives in internal/benchsuite, shared with cmd/benchjson so the
// BENCH_*.json trajectory records exactly these numbers.
func BenchmarkShardKV(b *testing.B) {
	const procs = 8
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), benchsuite.ShardKV(shards, procs))
	}
}

// BenchmarkShardKVZipf sweeps hot-key skew over both key-table
// implementations: a Zipfian chooser concentrates 8 processes on a few
// shared keys of one shard, the regime where the seed's RWMutex key table
// serializes reads and the lock-free copy-on-write table does not. The
// body lives in internal/benchsuite, shared with cmd/benchjson.
func BenchmarkShardKVZipf(b *testing.B) {
	for _, theta := range []float64{0.9, 1.2} {
		for _, table := range []string{"lockfree", "locked"} {
			b.Run(fmt.Sprintf("theta=%g/table=%s", theta, table),
				benchsuite.ShardKVZipf(4, 8, theta, table == "locked"))
		}
	}
}

// BenchmarkKeyTableReadZipf isolates the key-table read path itself:
// concurrent Peek streams over Zipfian-drawn keys, comparing the lock-free
// copy-on-write table against the RWMutex baseline. This is the component
// measurement the BENCH_PR8.json CI gate pins (cow must stay faster than
// locked on every hot-key phase).
func BenchmarkKeyTableReadZipf(b *testing.B) {
	for _, theta := range []float64{0.9, 1.2} {
		for _, table := range []string{"lockfree", "locked"} {
			b.Run(fmt.Sprintf("theta=%g/table=%s", theta, table),
				benchsuite.KeyTableReadZipf(8, theta, table == "locked"))
		}
	}
}

// BenchmarkShardKVMultiPut measures the batched write path: one process
// putting 64-entry batches grouped (and fanned out in parallel) across
// the shards.
func BenchmarkShardKVMultiPut(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), benchsuite.ShardKVMultiPut(shards))
	}
}

// BenchmarkServedMultiPut measures the whole served MPUT request path
// (decode, batch fan-out, reply encode, outcome window) via a loopback
// session — the allocation-free serving promise, end to end minus the
// socket.
func BenchmarkServedMultiPut(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), benchsuite.ServedMultiPut(shards))
	}
}

// --- E9: time overhead of detectability (CAS family) ---

func BenchmarkCASDetectable(b *testing.B) {
	sys := runtime.NewSystem(1)
	o := rcas.NewInt(sys, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cas(0, i, i+1)
	}
}

func BenchmarkCASBaselineSeq(b *testing.B) {
	sys := runtime.NewSystem(1)
	o := baseline.NewSeqCAS(sys, 0, runtime.EncodeInt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cas(0, i, i+1)
	}
}

func BenchmarkCASPlain(b *testing.B) {
	sys := runtime.NewSystem(1)
	o := baseline.NewPlainCAS(sys, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Cas(0, i, i+1)
	}
}

// BenchmarkCASDetectableContended sweeps the process count on one object
// (body shared with cmd/benchjson via internal/benchsuite; it uses the
// production ring-history configuration).
func BenchmarkCASDetectableContended(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), benchsuite.CASDetectableContended(procs))
	}
}

// --- E9: time overhead of detectability (register family) ---

func BenchmarkWriteDetectable(b *testing.B) {
	for _, procs := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("N=%d", procs), benchsuite.WriteDetectable(procs))
	}
}

func BenchmarkWriteBaselineSeq(b *testing.B) {
	sys := runtime.NewSystem(8)
	reg := baseline.NewSeqRegister(sys, 0, runtime.EncodeInt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Write(0, i)
	}
}

func BenchmarkWritePlain(b *testing.B) {
	sys := runtime.NewSystem(8)
	reg := baseline.NewPlainRegister(sys, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Write(0, i)
	}
}

func BenchmarkReadDetectable(b *testing.B) {
	sys := runtime.NewSystem(8)
	reg := rw.NewInt(sys, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Read(0)
	}
}

// --- E5: max register (no auxiliary state) ---

func BenchmarkMaxRegisterWrite(b *testing.B) {
	sys := runtime.NewSystem(4)
	m := maxreg.New(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteMax(0, i)
	}
}

func BenchmarkMaxRegisterRead(b *testing.B) {
	for _, procs := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("N=%d", procs), func(b *testing.B) {
			sys := runtime.NewSystem(procs)
			m := maxreg.New(sys)
			m.WriteMax(0, 7)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Read(1)
			}
		})
	}
}

// --- Composed structures (E1/E2 applications) ---

func BenchmarkQueueEnqDeq(b *testing.B) {
	sys := runtime.NewSystem(2)
	q := queue.New(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Enq(0, i)
		q.Deq(1)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	sys := runtime.NewSystem(1)
	c := counter.New(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc(0)
	}
}

// --- Recovery cost: one planned crash plus the recovery pass ---

func BenchmarkRecoveryCAS(b *testing.B) {
	sys := runtime.NewSystem(1)
	o := rcas.NewInt(sys, 0)
	cur := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := o.Cas(0, cur, cur+1, nvm.CrashAtStep(8))
		if out.Status.Linearized() && out.Resp {
			cur++
		}
	}
}

func BenchmarkRecoveryWrite(b *testing.B) {
	sys := runtime.NewSystem(1)
	reg := rw.NewInt(sys, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Write(0, i, nvm.CrashAtStep(11))
	}
}

// --- E8: shared-cache model overhead (flush-after-write transformation) ---

func BenchmarkSharedCacheOverhead(b *testing.B) {
	models := map[string]nvm.Model{
		"private-cache":      nvm.ModelPrivateCache,
		"shared-cache+flush": nvm.ModelSharedCacheAuto,
	}
	for name, m := range models {
		b.Run(name, func(b *testing.B) {
			sys := runtime.NewSystemModel(1, m)
			o := rcas.NewInt(sys, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Cas(0, i, i+1)
			}
		})
	}
}

// --- E3: Theorem 1 configuration-space exploration ---

func BenchmarkConfigSpace(b *testing.B) {
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.ConfigCount(n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E4: Theorem 2 exhaustive check (with auxiliary state, clean) ---

func BenchmarkExhaustiveDetectabilityCheck(b *testing.B) {
	m := &model.CASMachine{
		N:          2,
		Scripts:    [][]model.OpCAS{{{Old: 0, New: 1}}, {{Old: 0, New: 1}}},
		MaxCrashes: 2,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.CheckCAS(m, 1<<22); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: doubly-perturbing witness search ---

func BenchmarkPerturbSearch(b *testing.B) {
	objs := []spec.Object{spec.Register{}, spec.CAS{}, spec.Queue{}, spec.MaxRegister{}}
	for _, obj := range objs {
		b.Run(obj.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				perturb.FindDoublyPerturbing(obj, 2, 4)
			}
		})
	}
}

// --- Checker cost (infrastructure) ---

func BenchmarkLinearizeCheck(b *testing.B) {
	// A fixed 18-operation concurrent register history.
	sys := runtime.NewSystem(3)
	reg := rw.NewInt(sys, 0)
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if i%2 == 0 {
					reg.Write(pid, pid*10+i)
				} else {
					reg.Read(pid)
				}
			}
		}(p)
	}
	wg.Wait()
	recs, _, err := linearize.Collect(sys.Log().Events())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linearize.Check(spec.Register{}, recs) {
			b.Fatal("history rejected")
		}
	}
}
