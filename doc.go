// Package detectable is a Go reproduction of "Upper and Lower Bounds on the
// Space Complexity of Detectable Objects" (Ben-Baruch, Hendler, Rusanovsky,
// PODC 2020), grown into a small system around the paper's algorithms.
//
// It provides recoverable, detectable concurrent objects running on a
// simulated non-volatile-memory (NVM) substrate with system-wide
// crash-failures:
//
//   - Register — the paper's Algorithm 1: the first wait-free
//     bounded-space detectable read/write register.
//   - CAS — the paper's Algorithm 2: the first wait-free bounded-space
//     detectable compare-and-swap, using Θ(N) bits beyond the value
//     (asymptotically optimal by Theorem 1).
//   - MaxRegister — the paper's Algorithm 3: recoverable with no auxiliary
//     state at all (possible because max registers are not
//     doubly-perturbing, Lemma 4).
//   - Queue, Counter, FetchAdd, KV — detectable data structures composed
//     from the primitives, with exactly-once retry semantics.
//
// Above the single-object layer, internal/shardkv partitions a detectable
// key-value store into independent failure domains, and internal/server +
// internal/client serve it over TCP while preserving detectability across
// the network boundary: a dropped connection plays the role of a crash,
// and a reconnecting session recovers the original verdict of its
// interrupted operation (cmd/kvserverd, cmd/kvbench, cmd/loadgen -remote).
//
// # Detectability
//
// Every operation returns an Outcome. When the simulated system crashes
// mid-operation, the operation's recovery function runs and determines
// whether the operation was linearized: Outcome.Linearized true carries the
// operation's response; false means the operation definitely took no effect
// and can safely be re-invoked. This is the paper's detectability
// condition, strictly stronger than durable linearizability.
//
// # Crash simulation
//
// A System owns the simulated NVM and N process identities. System.Crash
// injects a system-wide crash-failure: every in-flight operation loses its
// volatile state and falls into its recovery function. Deterministic
// injection for tests and demos is available through CrashAtStep.
//
// See ARCHITECTURE.md for the layer map and the paper-concept → Go-type
// table, and docs/PROTOCOL.md for the wire protocol.
package detectable
