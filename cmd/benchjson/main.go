// Command benchjson runs the curated benchmark set (internal/benchsuite)
// via testing.Benchmark plus the wire selftest, and records the numbers in
// a persistent JSON trajectory (BENCH_PR3.json and successors) that future
// PRs diff against. It is also the CI allocation gate: -check re-measures
// the pinned hot paths (crash-free Get, wire frame encode) and fails when
// they regress above the committed thresholds.
//
// Usage:
//
//	benchjson -label after -out BENCH_PR3.json            # run + record
//	benchjson -label after -in BENCH_PR3.json -out ...    # merge into existing trajectory
//	benchjson -check                                      # allocation gate only
//	benchjson -check -label after -out BENCH_PR3.json     # gate + record
//
// Reading the output: every section under "benchmarks" is one labeled run
// (e.g. "baseline", "after") holding ns/op, B/op and allocs/op per curated
// benchmark and p50/p99 latency of the TCP closed loop. Compare sections
// pairwise for the before→after trajectory; see docs/PERFORMANCE.md.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	goruntime "runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"detectable/internal/benchsuite"
	"detectable/internal/durable"
	"detectable/internal/server"
	"detectable/internal/shardkv"
	"detectable/internal/simio"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Section is one labeled run of the full suite.
type Section struct {
	Generated string                  `json:"generated,omitempty"`
	Go        string                  `json:"go"`
	Note      string                  `json:"note,omitempty"`
	Results   map[string]Result       `json:"results"`
	Wire      []benchsuite.WireResult `json:"wire,omitempty"`
	Pins      map[string]float64      `json:"pins,omitempty"`
}

// Doc is the whole trajectory file.
type Doc struct {
	Schema     string              `json:"schema"`
	Benchmarks map[string]*Section `json:"benchmarks"`
}

// Allocation ceilings for the pinned hot paths. CI fails when a measured
// value exceeds its ceiling. The two AllocsPerRun pins are exact promises
// of this PR: a crash-free Get allocates nothing and encoding a frame into
// a warm scratch buffer allocates nothing (ceiling 1 leaves room for a
// one-off growth); the per-benchmark ceilings guard against reintroducing
// per-op allocation churn with ~2× headroom over measured values.
var allocCeilings = map[string]float64{
	"pin/crash-free-get-allocs":               0,
	"pin/wire-encode-allocs-frame":            1,
	"pin/served-mput-allocs":                  0,
	"pin/replica-get-allocs":                  0,
	"BenchmarkShardKV/shards=1":               6,
	"BenchmarkShardKV/shards=8":               6,
	"BenchmarkCASDetectableContended/procs=8": 8,
	"BenchmarkWriteDetectable/N=8":            8,
	"BenchmarkServedMultiPut/shards=8":        0,
	// The PR 8 skew benches: the lock-free key-table read path must stay
	// allocation-free under Zipfian hot-key traffic.
	"BenchmarkKeyTableReadZipf/theta=0.9/table=lockfree": 0,
	"BenchmarkKeyTableReadZipf/theta=1.2/table=lockfree": 0,
	"BenchmarkShardKVZipf/theta=1.2/table=lockfree":      1,
}

func main() {
	out := flag.String("out", "", "write the trajectory JSON here (empty: stdout)")
	in := flag.String("in", "", "existing trajectory to merge the new section into")
	label := flag.String("label", "after", "section name for this run")
	note := flag.String("note", "", "free-form note stored with the section")
	check := flag.Bool("check", false, "measure the pinned hot paths and fail on regression")
	checkOnly := flag.Bool("checkonly", false, "run only the allocation gate, no benchmarks")
	shards := flag.Int("shards", 4, "shards for the wire selftest server")
	wireConns := flag.String("wireconns", "1,4", "connection counts for the wire selftest")
	wireDur := flag.Duration("wiredur", 2*time.Second, "duration per wire selftest phase")
	skipWire := flag.Bool("skipwire", false, "skip the TCP selftest phase")
	flag.Parse()

	if err := run(*out, *in, *label, *note, *check, *checkOnly, *shards, *wireConns, *wireDur, *skipWire); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(out, in, label, note string, check, checkOnly bool, shards int, wireConns string, wireDur time.Duration, skipWire bool) error {
	pins := measurePins()
	if check || checkOnly {
		if err := gate(pins); err != nil {
			return err
		}
		fmt.Println("allocation gate: ok")
		fmt.Printf("  crash-free Get     %.0f allocs/op (ceiling %.0f)\n",
			pins["pin/crash-free-get-allocs"], allocCeilings["pin/crash-free-get-allocs"])
		fmt.Printf("  wire frame encode  %.0f allocs/frame (ceiling %.0f)\n",
			pins["pin/wire-encode-allocs-frame"], allocCeilings["pin/wire-encode-allocs-frame"])
		fmt.Printf("  served MPUT        %.0f allocs/op (ceiling %.0f)\n",
			pins["pin/served-mput-allocs"], allocCeilings["pin/served-mput-allocs"])
		fmt.Printf("  replica GET        %.0f allocs/op (ceiling %.0f)\n",
			pins["pin/replica-get-allocs"], allocCeilings["pin/replica-get-allocs"])
		if checkOnly {
			return nil
		}
	}

	sec := &Section{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        goruntime.Version(),
		Note:      note,
		Results:   make(map[string]Result),
		Pins:      pins,
	}

	for _, nb := range benchsuite.Curated() {
		r := testing.Benchmark(nb.Bench)
		res := Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BPerOp:      r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		sec.Results[nb.Name] = res
		fmt.Printf("%-46s %12.1f ns/op %8d B/op %6d allocs/op\n", nb.Name, res.NsPerOp, res.BPerOp, res.AllocsPerOp)
		if check {
			if ceil, ok := allocCeilings[nb.Name]; ok && float64(res.AllocsPerOp) > ceil {
				return fmt.Errorf("alloc regression: %s at %d allocs/op exceeds ceiling %.0f", nb.Name, res.AllocsPerOp, ceil)
			}
		}
	}

	if !skipWire {
		conns, err := parseConns(wireConns)
		if err != nil {
			return err
		}
		wire, err := benchsuite.WireSelftest(shards, conns, wireDur, 512, 1)
		if err != nil {
			return fmt.Errorf("wire selftest: %w", err)
		}
		sec.Wire = wire
		for _, w := range wire {
			fmt.Printf("wire conns=%-3d %10.0f ops/sec  p50=%s p99=%s\n",
				w.Conns, w.Throughput, time.Duration(w.P50Ns), time.Duration(w.P99Ns))
		}
	}

	doc := &Doc{Schema: "detectable-bench-trajectory/v1", Benchmarks: map[string]*Section{}}
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return fmt.Errorf("reading -in: %w", err)
		}
		if err := json.Unmarshal(data, doc); err != nil {
			return fmt.Errorf("parsing -in: %w", err)
		}
	}
	doc.Benchmarks[label] = sec

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// measurePins runs the AllocsPerRun pins of the hot paths this PR froze.
func measurePins() map[string]float64 {
	pins := make(map[string]float64)

	// Crash-free Get on the atomic fast path: 0 allocs/op.
	s := shardkv.New(4, 2)
	s.PutRetry(0, "pin-key", 7)
	pins["pin/crash-free-get-allocs"] = testing.AllocsPerRun(500, func() {
		s.Get(0, "pin-key")
	})

	// Wire frame encode + buffered write into a warm session scratch:
	// ≤1 alloc/frame (0 measured).
	buf := make([]byte, 0, 256)
	bw := bufio.NewWriter(io.Discard)
	pins["pin/wire-encode-allocs-frame"] = testing.AllocsPerRun(500, func() {
		buf = server.AppendPut(buf[:0], 1, 0, "pin-key", 42)
		server.WriteFrameBuffered(bw, buf)
		bw.Flush()
	})

	// The served MPUT path end to end (minus the socket): 0 allocs/op
	// once warm — the group-commit PR's serving promise. The warm-up
	// wraps every shard's history ring.
	store := shardkv.New(8, 2)
	srv := server.New(store)
	ls, err := srv.NewLoopbackSession()
	if err != nil {
		pins["pin/served-mput-allocs"] = -1 // impossible; fail loud in gate output
		return pins
	}
	defer ls.Close()
	entries := make([]shardkv.KV, 64)
	for i := range entries {
		entries[i] = shardkv.KV{Key: fmt.Sprintf("key-%d", i), Val: i}
	}
	payload := server.AppendMPut(nil, 0, entries)
	warm := 2*shardkv.DefaultRingCapacity/len(entries)*8 + 2*server.Window
	for i := 0; i < warm; i++ {
		server.PatchReqID(payload, ls.NextID())
		ls.Handle(payload)
	}
	pins["pin/served-mput-allocs"] = testing.AllocsPerRun(200, func() {
		server.PatchReqID(payload, ls.NextID())
		ls.Handle(payload)
	})

	// The replica GET path end to end (minus the socket): a genuine
	// standby server over a durable DB whose applied view was populated
	// through the real replication stream (Subscribe → Apply), serving a
	// read-only session — 0 allocs/op, the read-replica PR's promise.
	replicaGet, err := measureReplicaGetPin()
	if err != nil {
		replicaGet = -1 // impossible; fail loud in gate output
	}
	pins["pin/replica-get-allocs"] = replicaGet
	return pins
}

// measureReplicaGetPin builds a primary DB on the simulated filesystem,
// streams a small workload through a replication subscription into a
// standby DB, and measures the standby's read-only GET serving path.
func measureReplicaGetPin() (float64, error) {
	const (
		pinShards = 4
		pinProcs  = 2
	)
	pdb, err := durable.OpenFs(simio.New(), "/data", pinShards, pinProcs, server.Window)
	if err != nil {
		return 0, err
	}
	sub := pdb.Subscribe(0, false)
	if err := pdb.AppendHello(1, 0); err != nil {
		return 0, err
	}
	for i := 0; i < 64; i++ {
		key := "pin-" + strconv.Itoa(i)
		pdb.ShardBacking(shardkv.ShardIndex(key, pinShards)).Persist(key, int64(i+1))
		if err := pdb.CommitOutcome(1, uint64(i+1), []byte{1}); err != nil {
			return 0, err
		}
	}
	sub.Close()

	rdb, err := durable.OpenFs(simio.New(), "/data", pinShards, pinProcs, server.Window)
	if err != nil {
		return 0, err
	}
	rp := rdb.NewReplica()
	for {
		chunk, err := sub.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, err
		}
		for len(chunk) > 0 {
			n := int(binary.BigEndian.Uint32(chunk))
			if _, _, err := rp.Apply(chunk[4 : 4+n]); err != nil {
				return 0, err
			}
			chunk = chunk[4+n:]
		}
	}

	srv := server.NewStandby(rdb, func() *shardkv.Store {
		return shardkv.New(pinShards, pinProcs) // promotion never happens in the pin
	})
	ls, err := srv.NewReadOnlyLoopbackSession()
	if err != nil {
		return 0, err
	}
	defer ls.Close()
	payload := server.AppendGet(nil, 1, 0, "pin-7")
	for i := 0; i < 2*server.Window; i++ {
		server.PatchReqID(payload, ls.NextID())
		ls.Handle(payload)
	}
	return testing.AllocsPerRun(200, func() {
		server.PatchReqID(payload, ls.NextID())
		ls.Handle(payload)
	}), nil
}

func gate(pins map[string]float64) error {
	for name, v := range pins {
		if ceil, ok := allocCeilings[name]; ok && v > ceil {
			return fmt.Errorf("alloc regression: %s at %.1f allocs exceeds ceiling %.0f", name, v, ceil)
		}
	}
	return nil
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -wireconns element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
