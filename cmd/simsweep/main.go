// Command simsweep model-checks the durable recovery path: it runs a
// group-commit workload against the simulated filesystem (internal/simio),
// enumerates every crash point × torn-write byte image the persistence
// model admits, recovers from each, and checks detectability
// (outcome-implies-effect, released-verdict survival) plus the hash-pinned
// purity and idempotence of recovery (durable.StateHash).
//
// Exit status is nonzero when violations are found — unless
// -expect-violation inverts the sense, which CI uses to prove the sweep
// still convicts a seeded ordering mutant (-mutant outcome-first).
//
// Usage:
//
//	simsweep -ops 8 -group -epoch-batch 4            # exhaust a workload
//	simsweep -budget 60s -max-images 8192            # budgeted deep sweep
//	simsweep -mutant outcome-first -expect-violation # CI mutant gate
//	simsweep -out /tmp/failures                      # dump convicting images
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"detectable/internal/durable"
	"detectable/internal/simio"
)

func main() {
	var (
		shards     = flag.Int("shards", 2, "shard count of the simulated store")
		procs      = flag.Int("procs", 3, "process slots of the simulated store")
		window     = flag.Int("window", 64, "outcome window size")
		ops        = flag.Int("ops", 6, "committed mutations in the workload")
		keys       = flag.Int("keys", 2, "distinct keys per shard")
		group      = flag.Bool("group", false, "commit through group-commit epochs")
		epochBatch = flag.Int("epoch-batch", 0, "members of an explicit multi-member epoch (implies -group)")
		compactAt  = flag.Int64("compact-at", 0, "compaction threshold in bytes (0 = durable default)")
		maxImages  = flag.Int("max-images", 0, "cap on byte images per crash point (0 = unlimited)")
		budget     = flag.Duration("budget", 0, "wall-clock budget for the sweep (0 = unlimited)")
		out        = flag.String("out", "", "directory to write convicting byte images into")
		mutant     = flag.String("mutant", "", "seed an ordering mutant: outcome-first")
		expectViol = flag.Bool("expect-violation", false, "invert exit status: fail when the sweep finds NOTHING")
		verbose    = flag.Bool("v", false, "log per-point enumeration details")
	)
	flag.Parse()

	switch *mutant {
	case "":
	case "outcome-first":
		durable.MutantOutcomeFirst = true
	default:
		fmt.Fprintf(os.Stderr, "simsweep: unknown -mutant %q (want outcome-first)\n", *mutant)
		os.Exit(2)
	}
	if *epochBatch > 1 {
		*group = true
	}

	cfg := simio.SweepConfig{
		Shards:     *shards,
		Procs:      *procs,
		Window:     *window,
		Ops:        *ops,
		Keys:       *keys,
		Group:      *group,
		EpochBatch: *epochBatch,
		CompactAt:  *compactAt,
		MaxImages:  *maxImages,
		Budget:     *budget,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "simsweep: "+format+"\n", args...)
		}
	}

	start := time.Now()
	res, err := simio.Sweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simsweep: workload failed (crash-free path is broken): %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("simsweep: %d fs ops, %d crash points, %d byte images recovered (each ×3) in %v\n",
		res.Ops, res.Points, res.Images, time.Since(start).Round(time.Millisecond))
	if res.CappedPoints > 0 {
		fmt.Printf("simsweep: %d crash points hit the per-point image cap (coverage incomplete)\n", res.CappedPoints)
	}
	if res.BudgetHit {
		fmt.Printf("simsweep: wall-clock budget exhausted after %d/%d crash points\n", res.Points, res.Ops+1)
	}

	for i, v := range res.Violations {
		fmt.Printf("VIOLATION %d at crash point %d: %s\n", i, v.Point, v.Detail)
		if v.Hash != "" {
			fmt.Printf("  first-recovery state hash: %s\n", v.Hash)
		}
		if *out != "" {
			dir := filepath.Join(*out, fmt.Sprintf("violation-%03d-point-%04d", i, v.Point))
			if err := dumpImage(dir, v.Image); err != nil {
				fmt.Fprintf(os.Stderr, "simsweep: dumping image: %v\n", err)
			} else {
				fmt.Printf("  convicting byte image written to %s\n", dir)
			}
		}
	}

	failed := len(res.Violations) > 0
	if *expectViol {
		if failed {
			fmt.Printf("simsweep: seeded mutant convicted (%d violations) — sweep is alive\n", len(res.Violations))
			os.Exit(0)
		}
		fmt.Println("simsweep: FAIL: seeded mutant survived the sweep undetected")
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("simsweep: zero violations")
}

// dumpImage materializes a convicting byte image onto the real filesystem
// so it can be attached as a CI artifact and replayed locally.
func dumpImage(dir string, img simio.Image) error {
	for _, d := range img.Dirs {
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			return err
		}
	}
	for p, data := range img.Files {
		full := filepath.Join(dir, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
