package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"detectable/internal/client"
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// runRestartStorm is the whole-process crash mode: it launches a real
// kvserverd binary with a durable -data directory, drives the usual
// per-process expected-value workload over TCP, and meanwhile repeatedly
// SIGKILLs the server and restarts it from the same directory. Workers ride
// the kills on the client's session-resume path: after each restart they
// reconnect, resume their (durably recovered) session and re-issue the
// in-flight request ID — receiving the original persisted verdict when the
// server had released one, or a fresh exactly-once execution when it had
// not. The bar is unchanged from every other mix: zero detectability
// violations, now across whole-process crash/restart boundaries.
func runRestartStorm(bin, dataDir string, cfg *wlCfg,
	restarts int, restartEvery time.Duration, serverArgs string) (err error) {
	spec := cfg.spec
	procs := cfg.procs
	if restarts < 1 {
		return fmt.Errorf("need -restarts ≥ 1 (got %d)", restarts)
	}
	if bin == "" {
		return fmt.Errorf("-restart-storm needs -server-bin pointing at a kvserverd binary (go build -o kvserverd ./cmd/kvserverd)")
	}
	if dataDir == "" {
		d, err := os.MkdirTemp("", "restart-storm-data-")
		if err != nil {
			return err
		}
		dataDir = d
	}
	fmt.Printf("restart-storm: data=%s server=%s restarts≥%d every=%s\n", dataDir, bin, restarts, restartEvery)

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	args := []string{
		"-addr", addr,
		"-shards", strconv.Itoa(cfg.shards),
		"-procs", strconv.Itoa(procs),
		"-data", dataDir,
	}
	args = append(args, strings.Fields(serverArgs)...)
	first, err := startServer(bin, args)
	if err != nil {
		return err
	}
	proc := &serverProc{cmd: first}

	// One defer owns the spawned server's lifetime, installed before any
	// path can exit: a clean run stops it gracefully (SIGTERM so shutdown
	// stats print), every failure — dial timeout, detected violation,
	// restart that never came back, even a panic unwinding this goroutine —
	// SIGKILLs and reaps whatever the current incarnation is, so no run
	// leaves an orphaned kvserverd holding the data directory. The data
	// directory itself is always retained for post-mortem inspection.
	defer func() {
		if r := recover(); r != nil {
			proc.killWait()
			fmt.Fprintf(os.Stderr, "restart-storm: panic; server SIGKILLed and reaped, data dir retained at %s\n", dataDir)
			panic(r)
		}
		if err != nil {
			proc.killWait()
			fmt.Fprintf(os.Stderr, "restart-storm: failed; server SIGKILLed and reaped, data dir retained at %s\n", dataDir)
			return
		}
		stopServer(proc.get())
	}()
	if err := waitUp(addr, 10*time.Second); err != nil {
		return fmt.Errorf("server never came up: %w", err)
	}

	// Workers: one durable session each, redial policy sized to out-wait a
	// full kill+restart cycle.
	clients := make([]*client.Client, procs)
	for p := range clients {
		if clients[p], err = client.Dial(addr); err != nil {
			return fmt.Errorf("dial worker %d: %w", p, err)
		}
		clients[p].SetRedialPolicy(300, 100*time.Millisecond)
	}

	var (
		violations, indefinite atomic.Uint64
		cycles                 atomic.Uint64
		stop                   = make(chan struct{})
		stormErr               error
	)
	start := time.Now()
	deadline := start.Add(cfg.dur)

	// The storm: SIGKILL the server mid-workload, restart it from the same
	// data directory, wait for it to accept again. The loop keeps killing
	// until both the duration has elapsed and the minimum cycle count is
	// met, so short -dur values still deliver the contracted restarts.
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		defer close(stop)
		defer func() {
			if r := recover(); r != nil {
				stormErr = fmt.Errorf("storm goroutine panicked: %v", r)
			}
		}()
		for {
			time.Sleep(restartEvery)
			if time.Now().After(deadline) && int(cycles.Load()) >= restarts {
				return
			}
			proc.killWait() // SIGKILL: no shutdown path runs, fsynced state only
			next, err := startServer(bin, args)
			if err != nil {
				stormErr = fmt.Errorf("restart %d: %w", cycles.Load()+1, err)
				return
			}
			proc.set(next)
			if err := waitUp(addr, 15*time.Second); err != nil {
				stormErr = fmt.Errorf("restart %d: server never came back: %w", cycles.Load()+1, err)
				return
			}
			cycles.Add(1)
		}
	}()

	hardErrs := make([]error, procs)
	expected := make([]map[string]int, procs)
	names := keyNames(cfg.keys)
	var tracker *sharedTracker
	if cfg.shared() {
		tracker = newSharedTracker(cfg.keys)
		// Zero the shared key space first: registry verification classifies
		// every observed value, so a value recovered from an earlier run's
		// data directory would read as a phantom.
		for _, key := range names {
			if _, err := clients[0].PutRetry(key, 0); err != nil {
				return fmt.Errorf("zeroing %s: %w", key, err)
			}
		}
	}
	var totalOps atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					hardErrs[pid] = fmt.Errorf("worker panicked: %v", r)
				}
			}()
			c := clients[pid]
			rng := cfg.workerRNG(pid)
			ch := cfg.chooserFor(pid, rng)
			v := newVerify(tracker, &violations, &indefinite)
			nextVal := 0
			newVal := func() int { nextVal++; return pid*1_000_000_000 + nextVal }
			var entries []shardkv.KV
			var ki []int
			defer func() { expected[pid] = v.exp }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := ch.next()
				key := names[k]
				var plan []uint32
				if spec.planEvery > 0 && rng.Intn(spec.planEvery) == 0 {
					plan = []uint32{uint32(1 + rng.Intn(14))}
				}
				if spec.killEvery > 0 && rng.Intn(spec.killEvery) == 0 {
					if rng.Intn(2) == 0 {
						c.KillAfterNextSend()
					} else {
						c.KillConn()
					}
				}
				var (
					out runtime.Outcome[int]
					err error
				)
				switch r := rng.Intn(100); {
				case r < spec.getPct:
					pre := v.readBegin(k)
					if out, err = c.Get(key, plan...); err == nil {
						v.get(k, key, pre, out)
					}
				case r < spec.getPct+spec.putPct:
					if cfg.mput > 0 {
						entries, ki = entries[:0], ki[:0]
						for j := 0; j < cfg.mput; j++ {
							kk := ch.next()
							val := newVal()
							entries = append(entries, shardkv.KV{Key: names[kk], Val: val})
							ki = append(ki, kk)
							v.beginPut(kk, val)
						}
						var outs []runtime.Outcome[int]
						if outs, err = c.MultiPut(entries); err == nil {
							for j, out := range outs {
								v.put(ki[j], entries[j].Key, entries[j].Val, out)
							}
						}
					} else {
						val := newVal()
						v.beginPut(k, val)
						if out, err = c.Put(key, val, plan...); err == nil {
							v.put(k, key, val, out)
						}
					}
				default:
					v.beginDel(k)
					if out, err = c.Del(key, plan...); err == nil {
						v.del(k, key, out)
					}
				}
				if err != nil {
					hardErrs[pid] = err
					return
				}
				totalOps.Add(1)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	storm.Wait()

	for pid, err := range hardErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", pid, err)
		}
	}
	if stormErr != nil {
		return stormErr
	}

	// Final sweep over the final server incarnation: the durably recovered
	// store must match every owner's expectation exactly (uniform) or the
	// write registry (shared), SIGKILLs included.
	if tracker != nil {
		for k, key := range names {
			got, err := clients[0].GetRetry(key)
			if err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
			if tracker.checkFinal(k, got) {
				violations.Add(1)
			}
		}
	} else {
		for pid, exp := range expected {
			for _, key := range ownKeys(pid, procs, cfg.keys) {
				got, err := clients[pid].GetRetry(key)
				if err != nil {
					return fmt.Errorf("sweep worker %d: %w", pid, err)
				}
				if got != exp[key] {
					violations.Add(1)
				}
			}
		}
	}
	var resumes uint64
	for _, c := range clients {
		resumes += c.Resumes()
		c.Close() //nolint:errcheck
	}

	distDesc := cfg.dist
	if cfg.shared() {
		distDesc = fmt.Sprintf("zipf(theta=%g)", cfg.theta)
	}
	fmt.Printf("restart-storm: mix=%s dist=%s mput=%d procs=%d shards=%d elapsed=%s\n",
		cfg.mixName, distDesc, cfg.mput, procs, cfg.shards, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate: %d ops (%.0f ops/sec) across %d SIGKILL/restart cycles, %d session resumes\n",
		totalOps.Load(), float64(totalOps.Load())/elapsed.Seconds(), cycles.Load(), resumes)
	if cfg.verbose {
		fmt.Printf("data dir: %s (kept for inspection)\n", dataDir)
	}
	if int(cycles.Load()) < restarts {
		return fmt.Errorf("only %d restart cycles completed (wanted ≥ %d)", cycles.Load(), restarts)
	}
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (lost or duplicated effects) across restarts", n)
	}
	fmt.Println("detectability: every operation resolved to a definite outcome across whole-process restarts, zero violations")
	return nil
}

// serverProc tracks the current kvserverd incarnation across the storm
// goroutine's restarts, so the shutdown defer always kills the live
// process and never a long-reaped ancestor.
type serverProc struct {
	mu  sync.Mutex
	cmd *exec.Cmd
}

func (s *serverProc) set(c *exec.Cmd) { s.mu.Lock(); s.cmd = c; s.mu.Unlock() }

func (s *serverProc) get() *exec.Cmd { s.mu.Lock(); defer s.mu.Unlock(); return s.cmd }

// killWait SIGKILLs the current incarnation and reaps it; safe to call on
// an already-dead process (Kill/Wait just error, which is fine — the point
// is that no child outlives the run).
func (s *serverProc) killWait() {
	c := s.get()
	if c == nil || c.Process == nil {
		return
	}
	c.Process.Kill() //nolint:errcheck // may already be dead
	c.Wait()         //nolint:errcheck // killed on purpose
}

// freeAddr reserves a loopback port by binding and immediately releasing
// it, so every server incarnation listens on the same address.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// startServer launches one kvserverd incarnation, inheriting stdout/stderr
// so recovery lines land in the run's output.
func startServer(bin string, args []string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}

// stopServer shuts the final incarnation down cleanly (SIGTERM, then
// SIGKILL if it lingers).
func stopServer(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }() //nolint:errcheck
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		cmd.Process.Kill() //nolint:errcheck
		<-done
	}
}

// waitUp polls addr until a TCP connect succeeds.
func waitUp(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}
