// Command loadgen drives a configurable workload against the sharded
// detectable key-value store (internal/shardkv) and reports aggregate and
// per-shard throughput.
//
// With the default uniform distribution each process owns a disjoint slice
// of the key space and tracks, in volatile memory, the value every one of
// its keys must hold given the detectable verdict of each operation: a
// linearized put/del updates the expectation, a definite fail leaves it
// unchanged. Reads and a final sweep compare the store against the
// expectation, so any lost or duplicated effect — a detectability
// violation — is counted and fails the run. The crash-storm mix
// additionally fails random single shards from a storm goroutine and
// injects planned crashes into individual operations; the run still must
// end with zero violations: every crashed operation resolves to a definite
// outcome.
//
// With -dist zipf every process draws from the FULL key space through a
// seeded Zipfian chooser (-theta sets the skew; rank 0 is the hottest
// key), so processes genuinely contend on shared hot keys — the regime the
// lock-free key table and striped telemetry exist for. Exact expectations
// are impossible under sharing, so verification switches to a per-key
// write registry (see sharedTracker in dist.go) that still convicts every
// phantom value, every visible failed write and every provably stale zero;
// the bar stays zero violations. -mput N turns the write side of any mix
// into N-entry MultiPut batches (the large-mutation mix), each entry
// verified individually.
//
// With -remote the same workload and the same expected-value verification
// run against a live kvserverd over TCP instead of the in-process store.
// The crash-storm mix then additionally injects connection kills: workers
// randomly sever their own TCP connection (including right after sending a
// request, so the reply is lost mid-operation) and rely on session
// resumption to recover the original persisted verdict — the bar is still
// zero violations. `-remote self` starts an in-process server on a
// loopback port first, so the full wire path is exercised with no external
// daemon.
//
// Usage:
//
//	loadgen [-mix read-heavy|write-heavy|mixed|crash-storm] [-procs 4]
//	        [-shards 4] [-keys 64] [-dur 1s] [-seed 1] [-v]
//	        [-dist uniform|zipf] [-theta 0.99] [-mput 0]
//	        [-remote host:port | -remote self]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// mixSpec is a workload mix as cumulative percentages plus crash knobs.
type mixSpec struct {
	getPct, putPct int // remainder is del
	// planEvery injects a planned crash into roughly one in planEvery
	// operations (0 = never); stormEvery crashes one random shard on that
	// period (0 = no storm), time-based so the crash rate is comparable
	// across machines. killEvery severs the worker's own TCP connection on
	// roughly one in killEvery operations (remote mode only, 0 = never) —
	// half the kills fire after the request is sent but before the reply
	// is read, forcing the session-resume path mid-operation.
	planEvery  int
	stormEvery time.Duration
	killEvery  int
}

var mixes = map[string]mixSpec{
	"read-heavy":  {getPct: 90, putPct: 10},
	"write-heavy": {getPct: 10, putPct: 80},
	"mixed":       {getPct: 50, putPct: 40},
	"crash-storm": {getPct: 40, putPct: 50, planEvery: 8, stormEvery: time.Millisecond, killEvery: 24},
}

func main() {
	mix := flag.String("mix", "mixed", "workload mix: read-heavy, write-heavy, mixed or crash-storm")
	procs := flag.Int("procs", 4, "concurrent processes (per shard system)")
	shards := flag.Int("shards", 4, "number of independent shards")
	keys := flag.Int("keys", 64, "total key-space size (split across processes)")
	dur := flag.Duration("dur", time.Second, "run duration")
	seed := flag.Int64("seed", 1, "randomness seed")
	verbose := flag.Bool("v", false, "print the per-shard breakdown")
	dist := flag.String("dist", "uniform", "key distribution: uniform (disjoint per-process keys) or zipf (shared hot keys)")
	theta := flag.Float64("theta", 0.99, "Zipfian skew exponent for -dist zipf (0 = uniform over the shared space)")
	mput := flag.Int("mput", 0, "batch the write side of the mix into MultiPuts of this many entries (0 = single-key puts)")
	remote := flag.String("remote", "", "drive a kvserverd at host:port instead of the in-process store (\"self\" starts one on a loopback port)")
	restartStorm := flag.Bool("restart-storm", false, "whole-process crash mode: spawn a durable kvserverd (-server-bin, -data) and SIGKILL/restart it mid-workload")
	serverBin := flag.String("server-bin", "", "kvserverd binary for -restart-storm")
	dataDir := flag.String("data", "", "durable data directory for -restart-storm (empty = fresh temp dir)")
	restarts := flag.Int("restarts", 5, "minimum SIGKILL/restart cycles for -restart-storm")
	restartEvery := flag.Duration("restart-every", 700*time.Millisecond, "delay between SIGKILLs for -restart-storm")
	serverArgs := flag.String("server-args", "", "extra kvserverd flags for -restart-storm/-failover-storm, space-separated (e.g. \"-epoch-interval 2ms\")")
	failoverStorm := flag.Bool("failover-storm", false, "primary/backup failover mode: spawn a durable primary plus a replicating standby (-server-bin, -data) and SIGKILL/promote mid-workload")
	failovers := flag.Int("failovers", 3, "minimum SIGKILL/promote cycles for -failover-storm")
	failoverEvery := flag.Duration("failover-every", 900*time.Millisecond, "delay between primary SIGKILLs for -failover-storm")
	readReplica := flag.Bool("read-replica", false, "read-replica mode: writes at a durable primary, bounded-stale verified reads at a replicating standby (-server-bin, -data), one SIGKILL+promote mid-run with readers live")
	readerProcs := flag.Int("readers", 2, "GET-only reader goroutines for -read-replica")
	maxLag := flag.Uint64("max-lag", 64, "reader staleness bound in commit barriers for -read-replica (0 = unbounded)")
	flag.Parse()
	cfg := wlCfg{
		mixName: *mix, dist: *dist, theta: *theta, mput: *mput,
		procs: *procs, shards: *shards, keys: *keys,
		dur: *dur, seed: *seed, verbose: *verbose,
	}
	err := cfg.validate()
	nServerModes := 0
	for _, on := range []bool{*restartStorm, *failoverStorm, *readReplica} {
		if on {
			nServerModes++
		}
	}
	switch {
	case err != nil:
	case nServerModes > 1:
		err = fmt.Errorf("pick one of -restart-storm, -failover-storm and -read-replica")
	case nServerModes > 0 && *remote != "":
		err = fmt.Errorf("-restart-storm/-failover-storm/-read-replica spawn their own servers; drop -remote")
	case *readReplica:
		err = runReadReplicaStorm(*serverBin, *dataDir, &cfg, *readerProcs, *maxLag, *serverArgs)
	case *failoverStorm:
		err = runFailoverStorm(*serverBin, *dataDir, &cfg, *failovers, *failoverEvery, *serverArgs)
	case *restartStorm:
		err = runRestartStorm(*serverBin, *dataDir, &cfg, *restarts, *restartEvery, *serverArgs)
	case *remote != "":
		err = runRemote(*remote, &cfg)
	default:
		err = run(&cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(cfg *wlCfg) error {
	spec := cfg.spec
	s := shardkv.New(cfg.shards, cfg.procs)
	var violations, indefinite atomic.Uint64
	names := keyNames(cfg.keys)
	var tracker *sharedTracker
	if cfg.shared() {
		tracker = newSharedTracker(cfg.keys)
		// Zero the shared key space first: registry verification classifies
		// every observed value, so a value left by an earlier run against
		// the same store would read as a phantom.
		for _, key := range names {
			s.PutRetry(0, key, 0)
		}
	}

	// Per-shard crash storm: fail one random shard at a time; the others
	// keep serving.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	if spec.stormEvery > 0 {
		storm.Add(1)
		go func() {
			defer storm.Done()
			rng := rand.New(rand.NewSource(cfg.seed ^ 0x5707))
			tick := time.NewTicker(spec.stormEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s.CrashShard(rng.Intn(cfg.shards))
				}
			}
		}()
	}

	expected := make([]map[string]int, cfg.procs)
	start := time.Now()
	deadline := start.Add(cfg.dur)
	var wg sync.WaitGroup
	for p := 0; p < cfg.procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := cfg.workerRNG(pid)
			ch := cfg.chooserFor(pid, rng)
			v := newVerify(tracker, &violations, &indefinite)
			nextVal := 0
			newVal := func() int { nextVal++; return pid*1_000_000_000 + nextVal }
			var entries []shardkv.KV
			var ki []int
			for time.Now().Before(deadline) {
				k := ch.next()
				key := names[k]
				var plan nvm.CrashPlan
				if spec.planEvery > 0 && rng.Intn(spec.planEvery) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(14)))
				}
				switch r := rng.Intn(100); {
				case r < spec.getPct:
					pre := v.readBegin(k)
					v.get(k, key, pre, s.Get(pid, key, plan))
				case r < spec.getPct+spec.putPct:
					if cfg.mput > 0 {
						entries, ki = entries[:0], ki[:0]
						for j := 0; j < cfg.mput; j++ {
							kk := ch.next()
							val := newVal()
							entries = append(entries, shardkv.KV{Key: names[kk], Val: val})
							ki = append(ki, kk)
							v.beginPut(kk, val)
						}
						for j, out := range s.MultiPut(pid, entries) {
							v.put(ki[j], entries[j].Key, entries[j].Val, out)
						}
					} else {
						val := newVal()
						v.beginPut(k, val)
						v.put(k, key, val, s.Put(pid, key, val, plan))
					}
				default:
					v.beginDel(k)
					v.del(k, key, s.Del(pid, key, plan))
				}
			}
			expected[pid] = v.exp
		}(p)
	}
	wg.Wait()
	// Snapshot throughput over the measured window only; the verification
	// sweep below is bookkeeping, not serving.
	elapsed := time.Since(start)
	snaps := make([]shardkv.StatsSnapshot, cfg.shards)
	for i := range snaps {
		snaps[i] = s.StatsFor(i)
	}
	close(stop)
	storm.Wait()

	// Final sweep: every owner's expectation must hold exactly (uniform),
	// or every key's settled value must be explained by the write registry
	// (shared).
	if tracker != nil {
		for k, key := range names {
			if tracker.checkFinal(k, s.GetRetry(0, key)) {
				violations.Add(1)
			}
		}
	} else {
		for pid, exp := range expected {
			for _, key := range ownKeys(pid, cfg.procs, cfg.keys) {
				if got := s.GetRetry(pid, key); got != exp[key] {
					violations.Add(1)
				}
			}
		}
	}

	report(snaps, cfg, elapsed)
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (lost or duplicated effects)", n)
	}
	fmt.Println("detectability: every operation resolved to a definite outcome, zero violations")
	return nil
}

// apply folds one mutation outcome into the owner's expected value for key.
func apply(out runtime.Outcome[int], key string, val int, exp map[string]int, violations, indefinite *atomic.Uint64) {
	switch out.Status {
	case runtime.StatusOK, runtime.StatusRecovered:
		exp[key] = val
	case runtime.StatusFailed, runtime.StatusNotInvoked:
		// Definitely not linearized: the expectation stands.
	default:
		indefinite.Add(1)
	}
}

// ownKeys returns pid's disjoint slice of the key space.
func ownKeys(pid, procs, keys int) []string {
	var own []string
	for k := pid; k < keys; k += procs {
		own = append(own, fmt.Sprintf("key-%d", k))
	}
	return own
}

func report(snaps []shardkv.StatsSnapshot, cfg *wlCfg, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs == 0 {
		secs = 1 // a -dur=0 run serves no measured window at all
	}
	var total shardkv.StatsSnapshot
	for _, st := range snaps {
		total = total.Add(st)
	}
	distDesc := cfg.dist
	if cfg.shared() {
		distDesc = fmt.Sprintf("zipf(theta=%g)", cfg.theta)
	}
	fmt.Printf("mix=%s dist=%s mput=%d procs=%d shards=%d elapsed=%s\n",
		cfg.mixName, distDesc, cfg.mput, cfg.procs, len(snaps), elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate: %d ops (%.0f ops/sec) — gets=%d puts=%d dels=%d\n",
		total.Ops(), float64(total.Ops())/secs, total.Gets, total.Puts, total.Dels)
	fmt.Printf("verdicts:  ok=%d recovered=%d failed=%d not-invoked=%d retries=%d\n",
		total.OK, total.Recovered, total.Failed, total.NotInvoked, total.Retries)
	fmt.Printf("crashes:   injected=%d interruptions-observed=%d\n",
		total.CrashesInjected, total.CrashesSeen)
	if !cfg.verbose {
		return
	}
	fmt.Printf("%6s %10s %12s %10s %8s %8s %8s\n", "shard", "ops", "ops/sec", "recovered", "failed", "crashes", "retries")
	for i, st := range snaps {
		fmt.Printf("%6d %10d %12.0f %10d %8d %8d %8d\n",
			i, st.Ops(), float64(st.Ops())/secs, st.Recovered, st.Failed, st.CrashesInjected, st.Retries)
	}
}
