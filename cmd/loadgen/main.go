// Command loadgen drives a configurable workload against the sharded
// detectable key-value store (internal/shardkv) and reports aggregate and
// per-shard throughput.
//
// Each process owns a disjoint slice of the key space and tracks, in
// volatile memory, the value every one of its keys must hold given the
// detectable verdict of each operation: a linearized put/del updates the
// expectation, a definite fail leaves it unchanged. Reads and a final sweep
// compare the store against the expectation, so any lost or duplicated
// effect — a detectability violation — is counted and fails the run. The
// crash-storm mix additionally fails random single shards from a storm
// goroutine and injects planned crashes into individual operations; the run
// still must end with zero violations: every crashed operation resolves to
// a definite outcome.
//
// With -remote the same workload and the same expected-value verification
// run against a live kvserverd over TCP instead of the in-process store.
// The crash-storm mix then additionally injects connection kills: workers
// randomly sever their own TCP connection (including right after sending a
// request, so the reply is lost mid-operation) and rely on session
// resumption to recover the original persisted verdict — the bar is still
// zero violations. `-remote self` starts an in-process server on a
// loopback port first, so the full wire path is exercised with no external
// daemon.
//
// Usage:
//
//	loadgen [-mix read-heavy|write-heavy|mixed|crash-storm] [-procs 4]
//	        [-shards 4] [-keys 64] [-dur 1s] [-seed 1] [-v]
//	        [-remote host:port | -remote self]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/nvm"
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// mixSpec is a workload mix as cumulative percentages plus crash knobs.
type mixSpec struct {
	getPct, putPct int // remainder is del
	// planEvery injects a planned crash into roughly one in planEvery
	// operations (0 = never); stormEvery crashes one random shard on that
	// period (0 = no storm), time-based so the crash rate is comparable
	// across machines. killEvery severs the worker's own TCP connection on
	// roughly one in killEvery operations (remote mode only, 0 = never) —
	// half the kills fire after the request is sent but before the reply
	// is read, forcing the session-resume path mid-operation.
	planEvery  int
	stormEvery time.Duration
	killEvery  int
}

var mixes = map[string]mixSpec{
	"read-heavy":  {getPct: 90, putPct: 10},
	"write-heavy": {getPct: 10, putPct: 80},
	"mixed":       {getPct: 50, putPct: 40},
	"crash-storm": {getPct: 40, putPct: 50, planEvery: 8, stormEvery: time.Millisecond, killEvery: 24},
}

func main() {
	mix := flag.String("mix", "mixed", "workload mix: read-heavy, write-heavy, mixed or crash-storm")
	procs := flag.Int("procs", 4, "concurrent processes (per shard system)")
	shards := flag.Int("shards", 4, "number of independent shards")
	keys := flag.Int("keys", 64, "total key-space size (split across processes)")
	dur := flag.Duration("dur", time.Second, "run duration")
	seed := flag.Int64("seed", 1, "randomness seed")
	verbose := flag.Bool("v", false, "print the per-shard breakdown")
	remote := flag.String("remote", "", "drive a kvserverd at host:port instead of the in-process store (\"self\" starts one on a loopback port)")
	restartStorm := flag.Bool("restart-storm", false, "whole-process crash mode: spawn a durable kvserverd (-server-bin, -data) and SIGKILL/restart it mid-workload")
	serverBin := flag.String("server-bin", "", "kvserverd binary for -restart-storm")
	dataDir := flag.String("data", "", "durable data directory for -restart-storm (empty = fresh temp dir)")
	restarts := flag.Int("restarts", 5, "minimum SIGKILL/restart cycles for -restart-storm")
	restartEvery := flag.Duration("restart-every", 700*time.Millisecond, "delay between SIGKILLs for -restart-storm")
	serverArgs := flag.String("server-args", "", "extra kvserverd flags for -restart-storm, space-separated (e.g. \"-epoch-interval 2ms\")")
	flag.Parse()
	var err error
	switch {
	case *restartStorm && *remote != "":
		err = fmt.Errorf("-restart-storm spawns its own server; drop -remote")
	case *restartStorm:
		err = runRestartStorm(*serverBin, *dataDir, *mix, *procs, *shards, *keys, *dur, *seed, *restarts, *restartEvery, *serverArgs, *verbose)
	case *remote != "":
		err = runRemote(*remote, *mix, *procs, *shards, *keys, *dur, *seed, *verbose)
	default:
		err = run(*mix, *procs, *shards, *keys, *dur, *seed, *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(mix string, procs, shards, keys int, dur time.Duration, seed int64, verbose bool) error {
	spec, ok := mixes[mix]
	if !ok {
		return fmt.Errorf("unknown mix %q (want read-heavy, write-heavy, mixed or crash-storm)", mix)
	}
	if procs < 1 || shards < 1 || keys < procs {
		return fmt.Errorf("need procs ≥ 1, shards ≥ 1 and keys ≥ procs (got procs=%d shards=%d keys=%d)", procs, shards, keys)
	}

	s := shardkv.New(shards, procs)
	var violations, indefinite atomic.Uint64

	// Per-shard crash storm: fail one random shard at a time; the others
	// keep serving.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	if spec.stormEvery > 0 {
		storm.Add(1)
		go func() {
			defer storm.Done()
			rng := rand.New(rand.NewSource(seed ^ 0x5707))
			tick := time.NewTicker(spec.stormEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					s.CrashShard(rng.Intn(shards))
				}
			}
		}()
	}

	expected := make([]map[string]int, procs)
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(pid)*1001))
			own := ownKeys(pid, procs, keys)
			exp := make(map[string]int)
			for i := 0; time.Now().Before(deadline); i++ {
				key := own[rng.Intn(len(own))]
				var plan nvm.CrashPlan
				if spec.planEvery > 0 && rng.Intn(spec.planEvery) == 0 {
					plan = nvm.CrashAtStep(uint64(1 + rng.Intn(14)))
				}
				switch r := rng.Intn(100); {
				case r < spec.getPct:
					out := s.Get(pid, key, plan)
					if out.Status.Linearized() && out.Resp != exp[key] {
						violations.Add(1)
					}
				case r < spec.getPct+spec.putPct:
					val := pid*1_000_000 + i
					apply(s.Put(pid, key, val, plan), key, val, exp, &violations, &indefinite)
				default:
					apply(s.Del(pid, key, plan), key, 0, exp, &violations, &indefinite)
				}
			}
			expected[pid] = exp
		}(p)
	}
	wg.Wait()
	// Snapshot throughput over the measured window only; the verification
	// sweep below is bookkeeping, not serving.
	elapsed := time.Since(start)
	snaps := make([]shardkv.StatsSnapshot, shards)
	for i := range snaps {
		snaps[i] = s.StatsFor(i)
	}
	close(stop)
	storm.Wait()

	// Final sweep: the store must match every owner's expectation exactly.
	for pid, exp := range expected {
		for _, key := range ownKeys(pid, procs, keys) {
			if got := s.GetRetry(pid, key); got != exp[key] {
				violations.Add(1)
			}
		}
	}

	report(snaps, mix, procs, elapsed, verbose)
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (lost or duplicated effects)", n)
	}
	fmt.Println("detectability: every operation resolved to a definite outcome, zero violations")
	return nil
}

// apply folds one mutation outcome into the owner's expected value for key.
func apply(out runtime.Outcome[int], key string, val int, exp map[string]int, violations, indefinite *atomic.Uint64) {
	switch out.Status {
	case runtime.StatusOK, runtime.StatusRecovered:
		exp[key] = val
	case runtime.StatusFailed, runtime.StatusNotInvoked:
		// Definitely not linearized: the expectation stands.
	default:
		indefinite.Add(1)
	}
}

// ownKeys returns pid's disjoint slice of the key space.
func ownKeys(pid, procs, keys int) []string {
	var own []string
	for k := pid; k < keys; k += procs {
		own = append(own, fmt.Sprintf("key-%d", k))
	}
	return own
}

func report(snaps []shardkv.StatsSnapshot, mix string, procs int, elapsed time.Duration, verbose bool) {
	secs := elapsed.Seconds()
	if secs == 0 {
		secs = 1 // a -dur=0 run serves no measured window at all
	}
	var total shardkv.StatsSnapshot
	for _, st := range snaps {
		total = total.Add(st)
	}
	fmt.Printf("mix=%s procs=%d shards=%d elapsed=%s\n", mix, procs, len(snaps), elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate: %d ops (%.0f ops/sec) — gets=%d puts=%d dels=%d\n",
		total.Ops(), float64(total.Ops())/secs, total.Gets, total.Puts, total.Dels)
	fmt.Printf("verdicts:  ok=%d recovered=%d failed=%d not-invoked=%d retries=%d\n",
		total.OK, total.Recovered, total.Failed, total.NotInvoked, total.Retries)
	fmt.Printf("crashes:   injected=%d interruptions-observed=%d\n",
		total.CrashesInjected, total.CrashesSeen)
	if !verbose {
		return
	}
	fmt.Printf("%6s %10s %12s %10s %8s %8s %8s\n", "shard", "ops", "ops/sec", "recovered", "failed", "crashes", "retries")
	for i, st := range snaps {
		fmt.Printf("%6d %10d %12.0f %10d %8d %8d %8d\n",
			i, st.Ops(), float64(st.Ops())/secs, st.Recovered, st.Failed, st.CrashesInjected, st.Retries)
	}
}
