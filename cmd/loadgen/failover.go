package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/client"
	"detectable/internal/runtime"
	"detectable/internal/shardkv"
)

// runFailoverStorm is the primary/backup failover mode: it launches a
// durable kvserverd primary plus a warm standby replicating from it
// (docs/REPLICATION.md), drives the usual per-process expected-value
// workload through failover-aware clients, and repeatedly SIGKILLs the
// primary mid-workload, promotes the standby and brings up a fresh
// standby behind the new primary. Workers ride each failover on the
// client's multi-address redial path: the resumed session lands on the
// promoted replica and replays its replicated outcome window
// byte-identically, so the bar is unchanged — zero detectability
// violations, now across node failures rather than process restarts.
//
// Each cycle also runs a deterministic canary: a client that severs its
// own connection right after sending a PUT, immediately before the
// primary is SIGKILLed. The canary's reply is lost with the old primary,
// so its definite outcome can only come from the promoted replica's
// recovered window — the run requires the replicas' recovered-replay
// counters to end above zero, proving at least one verdict was served
// from replicated state.
func runFailoverStorm(bin, baseDir string, cfg *wlCfg,
	failovers int, failoverEvery time.Duration, serverArgs string) (err error) {
	spec := cfg.spec
	procs := cfg.procs
	if failovers < 1 {
		return fmt.Errorf("need -failovers ≥ 1 (got %d)", failovers)
	}
	if bin == "" {
		return fmt.Errorf("-failover-storm needs -server-bin pointing at a kvserverd binary (go build -o kvserverd ./cmd/kvserverd)")
	}
	if baseDir == "" {
		d, err := os.MkdirTemp("", "failover-storm-data-")
		if err != nil {
			return err
		}
		baseDir = d
	}
	fmt.Printf("failover-storm: data=%s server=%s failovers≥%d every=%s\n", baseDir, bin, failovers, failoverEvery)

	addrA, err := freeAddr()
	if err != nil {
		return err
	}
	addrB, err := freeAddr()
	if err != nil {
		return err
	}
	addrs := []string{addrA, addrB}
	// Two slots beyond the workload's: one for each cycle's canary session
	// and one for the storm's persistent prober.
	slots := procs + 2
	baseArgs := func(addr, dir string) []string {
		args := []string{
			"-addr", addr,
			"-shards", strconv.Itoa(cfg.shards),
			"-procs", strconv.Itoa(slots),
			"-data", dir,
		}
		return append(args, strings.Fields(serverArgs)...)
	}
	nodeDir := func(n int) string { return filepath.Join(baseDir, fmt.Sprintf("node-%d", n)) }

	// primary / standby track the two live incarnations; every exit path
	// reaps both so no run leaves an orphaned kvserverd pair. The node
	// data directories are always retained for post-mortem inspection.
	primary := &serverProc{}
	standby := &serverProc{}
	primaryAddr, standbyAddr := addrA, addrB
	defer func() {
		if r := recover(); r != nil {
			primary.killWait()
			standby.killWait()
			fmt.Fprintf(os.Stderr, "failover-storm: panic; servers SIGKILLed and reaped, data dirs retained at %s\n", baseDir)
			panic(r)
		}
		if err != nil {
			primary.killWait()
			standby.killWait()
			fmt.Fprintf(os.Stderr, "failover-storm: failed; servers SIGKILLed and reaped, data dirs retained at %s\n", baseDir)
			return
		}
		stopServer(primary.get())
		standby.killWait() // an unpromoted standby has nothing to flush
	}()

	first, err := startServer(bin, baseArgs(primaryAddr, nodeDir(0)))
	if err != nil {
		return err
	}
	primary.set(first)
	if err := waitUp(primaryAddr, 10*time.Second); err != nil {
		return fmt.Errorf("primary never came up: %w", err)
	}
	second, err := startServer(bin, append(baseArgs(standbyAddr, nodeDir(1)), "-replica-of", primaryAddr))
	if err != nil {
		return err
	}
	standby.set(second)
	if err := waitSynced(primaryAddr, 15*time.Second); err != nil {
		return fmt.Errorf("standby never synced: %w", err)
	}

	newClient := func() (*client.Client, error) {
		c, err := client.DialFailover(addrs)
		if err != nil {
			return nil, err
		}
		// Redial budget sized to out-wait a kill+promote cycle; the call
		// timeout turns a wedged node into a redial instead of a hang.
		c.SetRedialPolicy(600, 100*time.Millisecond)
		c.SetCallTimeout(2 * time.Second)
		return c, nil
	}
	clients := make([]*client.Client, procs)
	for p := range clients {
		if clients[p], err = newClient(); err != nil {
			return fmt.Errorf("dial worker %d: %w", p, err)
		}
	}
	// The prober confirms each canary's commit is visible (and therefore,
	// with the synchronous subscription, acked by the standby) before the
	// storm pulls the trigger.
	prober, err := newClient()
	if err != nil {
		return fmt.Errorf("dial prober: %w", err)
	}
	defer prober.Close() //nolint:errcheck

	var (
		violations, indefinite atomic.Uint64
		cycles                 atomic.Uint64
		replicaServed          atomic.Uint64 // recovered-window replays, summed per node just before its death
		stop                   = make(chan struct{})
		stormErr               error
	)
	start := time.Now()
	deadline := start.Add(cfg.dur)

	// The storm: arm a canary whose reply dies with the primary, SIGKILL
	// the primary, promote the standby, verify the canary's verdict was
	// recovered on the new primary, then raise a fresh standby on the
	// freed address. The loop keeps failing over until both the duration
	// has elapsed and the minimum cycle count is met.
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		defer close(stop)
		defer func() {
			if r := recover(); r != nil {
				stormErr = fmt.Errorf("storm goroutine panicked: %v", r)
			}
		}()
		nextNode := 2
		for {
			time.Sleep(failoverEvery)
			if time.Now().After(deadline) && int(cycles.Load()) >= failovers {
				// Final primary: bank its recovered-replay count before the
				// run's verdict accounting closes.
				replicaServed.Add(sampleReplays(primaryAddr))
				return
			}
			cycle := int(cycles.Load()) + 1

			canary, err := newClient()
			if err != nil {
				stormErr = fmt.Errorf("failover %d: canary dial: %w", cycle, err)
				return
			}
			canaryKey := fmt.Sprintf("canary-%d", cycle)
			canaryVal := 1_000_000 + cycle
			canary.KillAfterNextSend()
			type canaryResult struct {
				out runtime.Outcome[int]
				err error
			}
			canaryDone := make(chan canaryResult, 1)
			go func() {
				out, err := canary.Put(canaryKey, canaryVal)
				if err == nil {
					switch out.Status {
					case runtime.StatusOK, runtime.StatusRecovered, runtime.StatusFailed, runtime.StatusNotInvoked:
					default:
						err = fmt.Errorf("canary outcome not definite: %v", out.Status)
					}
				}
				canaryDone <- canaryResult{out, err}
			}()
			// Wait until the canary's write is visible — its verdict released,
			// which with the synchronous subscription means fsynced on both
			// nodes — before the kill. Bounded: under heavy load the canary's
			// own redial can outrun us and resolve first, which is fine; the
			// re-issue after promotion still proves the recovered window.
			for visDeadline := time.Now().Add(5 * time.Second); time.Now().Before(visDeadline); {
				if got, perr := prober.GetRetry(canaryKey); perr == nil && got == canaryVal {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			// And let the standby's barrier acks catch the stream tip, so the
			// canary's epoch is durably applied, not merely sent.
			waitSynced(primaryAddr, 5*time.Second) //nolint:errcheck

			// Every process is sampled exactly once, right before it dies.
			replicaServed.Add(sampleReplays(primaryAddr))
			primary.killWait()
			gen, err := promoteNode(standbyAddr, 15*time.Second)
			if err != nil {
				stormErr = fmt.Errorf("failover %d: promote %s: %w", cycle, standbyAddr, err)
				return
			}
			freed := primaryAddr
			primary.set(standby.get())
			primaryAddr, standbyAddr = standbyAddr, freed

			res := <-canaryDone
			if res.err != nil {
				stormErr = fmt.Errorf("failover %d: canary: %w", cycle, res.err)
				return
			}
			// A linearized canary crossed the replication barrier before the
			// old primary died; the promoted replica must serve it back. First
			// re-issue the exact request bytes — same session, same request ID
			// — now that only the promoted replica can answer: the replay must
			// come from its recovered outcome window, byte-identically, and
			// bumps the counter the run's verdict accounting requires.
			if res.out.Status.Linearized() {
				out2, rerr := canary.ReissueLast()
				if rerr != nil {
					stormErr = fmt.Errorf("failover %d: canary re-issue: %w", cycle, rerr)
					return
				}
				if out2.Status != res.out.Status || out2.Resp != res.out.Resp {
					stormErr = fmt.Errorf("failover %d: canary replay diverged: got %v/%d, want %v/%d",
						cycle, out2.Status, out2.Resp, res.out.Status, res.out.Resp)
					return
				}
				if got, err := canary.GetRetry(canaryKey); err != nil {
					stormErr = fmt.Errorf("failover %d: canary readback: %w", cycle, err)
					return
				} else if got != canaryVal {
					stormErr = fmt.Errorf("failover %d: canary readback %s=%d, want %d", cycle, canaryKey, got, canaryVal)
					return
				}
			}
			canary.Close() //nolint:errcheck

			next, err := startServer(bin, append(baseArgs(standbyAddr, nodeDir(nextNode)), "-replica-of", primaryAddr))
			if err != nil {
				stormErr = fmt.Errorf("failover %d: new standby: %w", cycle, err)
				return
			}
			standby.set(next)
			nextNode++
			if err := waitSynced(primaryAddr, 15*time.Second); err != nil {
				stormErr = fmt.Errorf("failover %d: new standby never synced: %w", cycle, err)
				return
			}
			cycles.Add(1)
			if cfg.verbose {
				fmt.Printf("failover %d: promoted %s generation=%d\n", cycle, primaryAddr, gen)
			}
		}
	}()

	hardErrs := make([]error, procs)
	expected := make([]map[string]int, procs)
	names := keyNames(cfg.keys)
	var tracker *sharedTracker
	if cfg.shared() {
		tracker = newSharedTracker(cfg.keys)
		for _, key := range names {
			if _, err := clients[0].PutRetry(key, 0); err != nil {
				return fmt.Errorf("zeroing %s: %w", key, err)
			}
		}
	}
	var totalOps atomic.Uint64
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					hardErrs[pid] = fmt.Errorf("worker panicked: %v", r)
				}
			}()
			c := clients[pid]
			rng := cfg.workerRNG(pid)
			ch := cfg.chooserFor(pid, rng)
			v := newVerify(tracker, &violations, &indefinite)
			nextVal := 0
			newVal := func() int { nextVal++; return pid*1_000_000_000 + nextVal }
			var entries []shardkv.KV
			var ki []int
			defer func() { expected[pid] = v.exp }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := ch.next()
				key := names[k]
				var plan []uint32
				if spec.planEvery > 0 && rng.Intn(spec.planEvery) == 0 {
					plan = []uint32{uint32(1 + rng.Intn(14))}
				}
				if spec.killEvery > 0 && rng.Intn(spec.killEvery) == 0 {
					if rng.Intn(2) == 0 {
						c.KillAfterNextSend()
					} else {
						c.KillConn()
					}
				}
				var (
					out runtime.Outcome[int]
					err error
				)
				switch r := rng.Intn(100); {
				case r < spec.getPct:
					pre := v.readBegin(k)
					if out, err = c.Get(key, plan...); err == nil {
						v.get(k, key, pre, out)
					}
				case r < spec.getPct+spec.putPct:
					if cfg.mput > 0 {
						entries, ki = entries[:0], ki[:0]
						for j := 0; j < cfg.mput; j++ {
							kk := ch.next()
							val := newVal()
							entries = append(entries, shardkv.KV{Key: names[kk], Val: val})
							ki = append(ki, kk)
							v.beginPut(kk, val)
						}
						var outs []runtime.Outcome[int]
						if outs, err = c.MultiPut(entries); err == nil {
							for j, out := range outs {
								v.put(ki[j], entries[j].Key, entries[j].Val, out)
							}
						}
					} else {
						val := newVal()
						v.beginPut(k, val)
						if out, err = c.Put(key, val, plan...); err == nil {
							v.put(k, key, val, out)
						}
					}
				default:
					v.beginDel(k)
					if out, err = c.Del(key, plan...); err == nil {
						v.del(k, key, out)
					}
				}
				if err != nil {
					hardErrs[pid] = err
					return
				}
				totalOps.Add(1)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	storm.Wait()

	for pid, err := range hardErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", pid, err)
		}
	}
	if stormErr != nil {
		return stormErr
	}

	// Final sweep over the last promoted primary: the replicated store
	// must match every owner's expectation exactly (uniform) or the write
	// registry (shared), failovers included.
	if tracker != nil {
		for k, key := range names {
			got, err := clients[0].GetRetry(key)
			if err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
			if tracker.checkFinal(k, got) {
				violations.Add(1)
			}
		}
	} else {
		for pid, exp := range expected {
			for _, key := range ownKeys(pid, procs, cfg.keys) {
				got, err := clients[pid].GetRetry(key)
				if err != nil {
					return fmt.Errorf("sweep worker %d: %w", pid, err)
				}
				if got != exp[key] {
					violations.Add(1)
				}
			}
		}
	}
	var resumes uint64
	for _, c := range clients {
		resumes += c.Resumes()
		c.Close() //nolint:errcheck
	}

	distDesc := cfg.dist
	if cfg.shared() {
		distDesc = fmt.Sprintf("zipf(theta=%g)", cfg.theta)
	}
	fmt.Printf("failover-storm: mix=%s dist=%s mput=%d procs=%d shards=%d elapsed=%s\n",
		cfg.mixName, distDesc, cfg.mput, procs, cfg.shards, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate: %d ops (%.0f ops/sec) across %d kill+promote cycles, %d session resumes, replica-served=%d\n",
		totalOps.Load(), float64(totalOps.Load())/elapsed.Seconds(), cycles.Load(), resumes, replicaServed.Load())
	if cfg.verbose {
		fmt.Printf("data dirs: %s (kept for inspection)\n", baseDir)
	}
	if int(cycles.Load()) < failovers {
		return fmt.Errorf("only %d failover cycles completed (wanted ≥ %d)", cycles.Load(), failovers)
	}
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (lost or duplicated effects) across failovers", n)
	}
	if replicaServed.Load() == 0 {
		return fmt.Errorf("no verdict was served from a replica's recovered outcome window (expected at least the canaries)")
	}
	fmt.Println("detectability: every operation resolved to a definite outcome across failovers, zero violations")
	return nil
}

// promoteNode asks the node at addr to promote, retrying until it answers
// (the standby may still be mid-recovery when the old primary dies).
func promoteNode(addr string, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		obs, err := client.DialObserver(addr)
		if err == nil {
			gen, perr := obs.Promote()
			obs.Close() //nolint:errcheck
			if perr == nil {
				return gen, nil
			}
			err = perr
		}
		if time.Now().After(deadline) {
			return 0, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitSynced polls the primary at addr until a replica is attached and
// has acked every replication barrier — the point where promoting that
// replica cannot lose a released verdict.
func waitSynced(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		obs, err := client.DialObserver(addr)
		if err == nil {
			st, serr := obs.ServerStats()
			obs.Close() //nolint:errcheck
			if serr == nil && st.Replicas >= 1 && st.ReplSeq > 0 && st.ReplAcked >= st.ReplSeq {
				return nil
			}
			if serr == nil {
				err = fmt.Errorf("replicas=%d seq=%d acked=%d", st.Replicas, st.ReplSeq, st.ReplAcked)
			} else {
				err = serr
			}
		}
		lastErr = err
		if time.Now().After(deadline) {
			return lastErr
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sampleReplays reads a node's recovered-window replay counter, the count
// of verdicts it served out of an outcome window it did not record itself
// — replication's proof of work. Best-effort: a node that cannot answer
// contributes zero.
func sampleReplays(addr string) uint64 {
	obs, err := client.DialObserver(addr)
	if err != nil {
		return 0
	}
	defer obs.Close() //nolint:errcheck
	st, err := obs.ServerStats()
	if err != nil {
		return 0
	}
	return st.RecoveredReplays
}
