package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/client"
	"detectable/internal/runtime"
	"detectable/internal/server"
	"detectable/internal/shardkv"
)

// runRemote is run over the wire: the same mixes and the same per-process
// expected-value verification, but every operation travels through a
// client session to a live kvserverd, and the crash-storm mix additionally
// severs worker connections so session resumption is exercised under load.
func runRemote(addr string, cfg *wlCfg) error {
	spec := cfg.spec
	procs := cfg.procs

	if addr == "self" {
		srv := server.New(shardkv.New(cfg.shards, procs))
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		defer srv.Close()
		addr = srv.Addr().String()
		fmt.Printf("self-hosted server: addr=%s shards=%d procs=%d\n", addr, cfg.shards, procs)
	}

	// Observer sessions (no process slot) for stats windows and the storm.
	statsC, err := client.DialObserver(addr)
	if err != nil {
		return fmt.Errorf("dial observer: %w", err)
	}
	defer statsC.Close()
	before, err := statsC.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	numShards := len(before) // the server's real shard count, whatever -shards says

	stop := make(chan struct{})
	var storm sync.WaitGroup
	if spec.stormEvery > 0 {
		stormC, err := client.DialObserver(addr)
		if err != nil {
			return fmt.Errorf("dial storm observer: %w", err)
		}
		storm.Add(1)
		go func() {
			defer storm.Done()
			defer stormC.Close()
			rng := rand.New(rand.NewSource(cfg.seed ^ 0x5707))
			tick := time.NewTicker(spec.stormEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if err := stormC.CrashShard(rng.Intn(numShards)); err != nil {
						return // server gone; workers will report the real error
					}
				}
			}
		}()
	}

	var violations, indefinite atomic.Uint64
	hardErrs := make([]error, procs)
	clients := make([]*client.Client, procs)
	for p := range clients {
		if clients[p], err = client.Dial(addr); err != nil {
			return fmt.Errorf("dial worker %d: %w", p, err)
		}
		defer clients[p].Close()
	}

	names := keyNames(cfg.keys)
	var tracker *sharedTracker
	if cfg.shared() {
		tracker = newSharedTracker(cfg.keys)
		// Zero the shared key space first: registry verification classifies
		// every observed value, so a value left by an earlier run against
		// the same server would read as a phantom.
		for _, key := range names {
			if _, err := clients[0].PutRetry(key, 0); err != nil {
				return fmt.Errorf("zeroing %s: %w", key, err)
			}
		}
	}
	start := time.Now()
	deadline := start.Add(cfg.dur)
	var wg sync.WaitGroup
	expected := make([]map[string]int, procs)
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			c := clients[pid]
			rng := cfg.workerRNG(pid)
			ch := cfg.chooserFor(pid, rng)
			v := newVerify(tracker, &violations, &indefinite)
			nextVal := 0
			newVal := func() int { nextVal++; return pid*1_000_000_000 + nextVal }
			var entries []shardkv.KV
			var ki []int
			defer func() { expected[pid] = v.exp }()
			for time.Now().Before(deadline) {
				k := ch.next()
				key := names[k]
				var plan []uint32
				if spec.planEvery > 0 && rng.Intn(spec.planEvery) == 0 {
					plan = []uint32{uint32(1 + rng.Intn(14))}
				}
				if spec.killEvery > 0 && rng.Intn(spec.killEvery) == 0 {
					// Half the kills lose the reply of an already-sent
					// request — the mid-operation case resumption exists for.
					if rng.Intn(2) == 0 {
						c.KillAfterNextSend()
					} else {
						c.KillConn()
					}
				}
				var (
					out runtime.Outcome[int]
					err error
				)
				switch r := rng.Intn(100); {
				case r < spec.getPct:
					pre := v.readBegin(k)
					if out, err = c.Get(key, plan...); err == nil {
						v.get(k, key, pre, out)
					}
				case r < spec.getPct+spec.putPct:
					if cfg.mput > 0 {
						entries, ki = entries[:0], ki[:0]
						for j := 0; j < cfg.mput; j++ {
							kk := ch.next()
							val := newVal()
							entries = append(entries, shardkv.KV{Key: names[kk], Val: val})
							ki = append(ki, kk)
							v.beginPut(kk, val)
						}
						var outs []runtime.Outcome[int]
						if outs, err = c.MultiPut(entries); err == nil {
							for j, out := range outs {
								v.put(ki[j], entries[j].Key, entries[j].Val, out)
							}
						}
					} else {
						val := newVal()
						v.beginPut(k, val)
						if out, err = c.Put(key, val, plan...); err == nil {
							v.put(k, key, val, out)
						}
					}
				default:
					v.beginDel(k)
					if out, err = c.Del(key, plan...); err == nil {
						v.del(k, key, out)
					}
				}
				if err != nil {
					hardErrs[pid] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	// Snapshot the measured window now: the verification sweep below is
	// bookkeeping, not serving (mirrors the in-process run).
	elapsed := time.Since(start)
	after, err := statsC.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	close(stop)
	storm.Wait()

	for pid, err := range hardErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", pid, err)
		}
	}

	// Final sweep over the wire: the server must match every owner's
	// expectation exactly (uniform) or every key's settled value must be
	// explained by the write registry (shared), connection kills and shard
	// crashes included.
	if tracker != nil {
		for k, key := range names {
			got, err := clients[0].GetRetry(key)
			if err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
			if tracker.checkFinal(k, got) {
				violations.Add(1)
			}
		}
	} else {
		for pid, exp := range expected {
			for _, key := range ownKeys(pid, procs, cfg.keys) {
				got, err := clients[pid].GetRetry(key)
				if err != nil {
					return fmt.Errorf("sweep worker %d: %w", pid, err)
				}
				if got != exp[key] {
					violations.Add(1)
				}
			}
		}
	}

	snaps := make([]shardkv.StatsSnapshot, numShards)
	var resumes uint64
	for _, c := range clients {
		resumes += c.Resumes()
	}
	for i := range snaps {
		snaps[i] = after[i].Sub(before[i])
	}
	report(snaps, cfg, elapsed)
	fmt.Printf("sessions:  workers=%d connection-resumes=%d\n", procs, resumes)
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (lost or duplicated effects)", n)
	}
	fmt.Println("detectability: every operation resolved to a definite outcome across reconnects, zero violations")
	return nil
}
