package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"detectable/internal/client"
)

// runReadReplicaStorm is the read-replica mode: a durable primary takes
// the write load while a replicating standby serves GET traffic through
// read-only sessions (docs/REPLICATION.md §read replicas). Writers verify
// their mutations with the shared write registry exactly as in the other
// storms; readers verify every replica-served value under the
// bounded-staleness contract — a read may be stale, but a phantom value or
// a resurrected failed write convicts (checkReadStale). Mid-run the storm
// SIGKILLs the primary and promotes the standby with all readers still
// connected: writers fail over on the client's replica-aware redial path,
// readers ride the ReadClient's lag-bounded routing, and a fresh standby
// is raised on the freed address so read traffic can move back off the
// promoted node. The bar is the usual one — zero detectability violations
// — plus proof of work: at least one read must actually have been served
// by a replica.
func runReadReplicaStorm(bin, baseDir string, cfg *wlCfg,
	readers int, maxLag uint64, serverArgs string) (err error) {
	procs := cfg.procs
	if readers < 1 {
		return fmt.Errorf("need -readers ≥ 1 (got %d)", readers)
	}
	if bin == "" {
		return fmt.Errorf("-read-replica needs -server-bin pointing at a kvserverd binary (go build -o kvserverd ./cmd/kvserverd)")
	}
	if baseDir == "" {
		d, err := os.MkdirTemp("", "read-replica-data-")
		if err != nil {
			return err
		}
		baseDir = d
	}
	fmt.Printf("read-replica: data=%s server=%s writers=%d readers=%d max-lag=%d\n",
		baseDir, bin, procs, readers, maxLag)

	addrA, err := freeAddr()
	if err != nil {
		return err
	}
	addrB, err := freeAddr()
	if err != nil {
		return err
	}
	baseArgs := func(addr, dir string) []string {
		args := []string{
			"-addr", addr,
			"-shards", strconv.Itoa(cfg.shards),
			"-procs", strconv.Itoa(procs),
			"-data", dir,
		}
		return append(args, strings.Fields(serverArgs)...)
	}
	nodeDir := func(n int) string { return filepath.Join(baseDir, fmt.Sprintf("node-%d", n)) }

	primary := &serverProc{}
	standby := &serverProc{}
	primaryAddr, standbyAddr := addrA, addrB
	defer func() {
		if r := recover(); r != nil {
			primary.killWait()
			standby.killWait()
			fmt.Fprintf(os.Stderr, "read-replica: panic; servers SIGKILLed and reaped, data dirs retained at %s\n", baseDir)
			panic(r)
		}
		if err != nil {
			primary.killWait()
			standby.killWait()
			fmt.Fprintf(os.Stderr, "read-replica: failed; servers SIGKILLed and reaped, data dirs retained at %s\n", baseDir)
			return
		}
		stopServer(primary.get())
		standby.killWait()
	}()

	first, err := startServer(bin, baseArgs(primaryAddr, nodeDir(0)))
	if err != nil {
		return err
	}
	primary.set(first)
	if err := waitUp(primaryAddr, 10*time.Second); err != nil {
		return fmt.Errorf("primary never came up: %w", err)
	}
	second, err := startServer(bin, append(baseArgs(standbyAddr, nodeDir(1)), "-replica-of", primaryAddr))
	if err != nil {
		return err
	}
	standby.set(second)
	if err := waitSynced(primaryAddr, 15*time.Second); err != nil {
		return fmt.Errorf("standby never synced: %w", err)
	}

	// Writers dial the primary block with the standby as a promotion
	// candidate only: a mutation is never rotated onto a live standby
	// (guaranteed ErrNotPrimary), but after the kill the promoted node is
	// found in the replica block.
	newWriter := func() (*client.Client, error) {
		c, err := client.DialFailoverWithReplicas([]string{addrA}, []string{addrB})
		if err != nil {
			return nil, err
		}
		c.SetRedialPolicy(600, 100*time.Millisecond)
		c.SetCallTimeout(2 * time.Second)
		return c, nil
	}
	writers := make([]*client.Client, procs)
	for p := range writers {
		if writers[p], err = newWriter(); err != nil {
			return fmt.Errorf("dial writer %d: %w", p, err)
		}
	}

	// The registry is unconditional here: readers share every key with
	// every writer regardless of the distribution, so per-process exact
	// expectations cannot exist.
	tracker := newSharedTracker(cfg.keys)
	names := keyNames(cfg.keys)
	for _, key := range names {
		if _, err := writers[0].PutRetry(key, 0); err != nil {
			return fmt.Errorf("zeroing %s: %w", key, err)
		}
	}

	var (
		violations, indefinite atomic.Uint64
		writeOps, readOps      atomic.Uint64
		replicaReads           atomic.Uint64
		promoted               atomic.Bool
		stop                   = make(chan struct{})
		stormErr               error
	)
	start := time.Now()

	// The storm: one SIGKILL+promote cycle mid-run, readers live
	// throughout, then a fresh standby on the freed address so the
	// ReadClient can route back onto a replica (exercising the snapshot
	// resync path — the rebuilt view reports applied=0 until its first
	// barrier, which the lag bound treats as maximally stale).
	var storm sync.WaitGroup
	storm.Add(1)
	go func() {
		defer storm.Done()
		defer close(stop)
		defer func() {
			if r := recover(); r != nil {
				stormErr = fmt.Errorf("storm goroutine panicked: %v", r)
			}
		}()
		// Let both tiers serve steady-state first.
		time.Sleep(cfg.dur / 3)
		waitSynced(primaryAddr, 5*time.Second) //nolint:errcheck
		primary.killWait()
		gen, err := promoteNode(standbyAddr, 15*time.Second)
		if err != nil {
			stormErr = fmt.Errorf("promote %s: %w", standbyAddr, err)
			return
		}
		freed := primaryAddr
		primary.set(standby.get())
		primaryAddr, standbyAddr = standbyAddr, freed
		promoted.Store(true)
		if cfg.verbose {
			fmt.Printf("read-replica: promoted %s generation=%d\n", primaryAddr, gen)
		}
		next, err := startServer(bin, append(baseArgs(standbyAddr, nodeDir(2)), "-replica-of", primaryAddr))
		if err != nil {
			stormErr = fmt.Errorf("replacement standby: %w", err)
			return
		}
		standby.set(next)
		if err := waitSynced(primaryAddr, 15*time.Second); err != nil {
			stormErr = fmt.Errorf("replacement standby never synced: %w", err)
			return
		}
		// Serve the remaining window with the rebuilt replica in play.
		remaining := time.Until(start.Add(cfg.dur))
		if remaining > 0 {
			time.Sleep(remaining)
		}
	}()

	// Writers: put/del mix at the primary, every verdict folded into the
	// registry. Reads stay out of the write tier — that is the point.
	writerErrs := make([]error, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					writerErrs[pid] = fmt.Errorf("writer panicked: %v", r)
				}
			}()
			c := writers[pid]
			rng := cfg.workerRNG(pid)
			ch := cfg.chooserFor(pid, rng)
			v := newVerify(tracker, &violations, &indefinite)
			nextVal := 0
			newVal := func() int { nextVal++; return pid*1_000_000_000 + nextVal }
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := ch.next()
				key := names[k]
				if rng.Intn(100) < 80 {
					val := newVal()
					v.beginPut(k, val)
					out, err := c.Put(key, val)
					if err != nil {
						writerErrs[pid] = err
						return
					}
					v.put(k, key, val, out)
				} else {
					v.beginDel(k)
					out, err := c.Del(key)
					if err != nil {
						writerErrs[pid] = err
						return
					}
					v.del(k, key, out)
				}
				writeOps.Add(1)
			}
		}(p)
	}

	// Readers: GET-only sessions routed replica-first, each response
	// verified under bounded staleness. Readers never dial a mutation, so
	// a kill+promote costs them at most a reconnect sweep.
	readerErrs := make([]error, readers)
	for p := 0; p < readers; p++ {
		wg.Add(1)
		go func(rid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					readerErrs[rid] = fmt.Errorf("reader panicked: %v", r)
				}
			}()
			rc, err := client.DialReadPreference(
				[]string{addrA}, []string{addrB},
				client.WithMaxLag(maxLag), client.WithLagInterval(50*time.Millisecond))
			if err != nil {
				readerErrs[rid] = fmt.Errorf("dial: %w", err)
				return
			}
			defer rc.Close() //nolint:errcheck
			rng := cfg.workerRNG(procs + rid)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(cfg.keys)
				out, err := rc.Get(names[k])
				if err != nil {
					// Mid-failover both nodes can refuse for a moment; retry
					// rather than convict — a persistently dead cluster fails
					// the run through the writers.
					time.Sleep(20 * time.Millisecond)
					continue
				}
				if tracker.checkReadStale(k, out.Resp) {
					violations.Add(1)
				}
				readOps.Add(1)
				if rc.OnReplica() {
					replicaReads.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	storm.Wait()

	for pid, err := range writerErrs {
		if err != nil {
			return fmt.Errorf("writer %d: %w", pid, err)
		}
	}
	for rid, err := range readerErrs {
		if err != nil {
			return fmt.Errorf("reader %d: %w", rid, err)
		}
	}
	if stormErr != nil {
		return stormErr
	}

	// Final sweep at the promoted primary: every settled value explained by
	// the registry, the strict (non-stale) check — the write tier's state
	// is the authority the replicas were a bounded-stale prefix of.
	for k, key := range names {
		got, err := writers[0].GetRetry(key)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if tracker.checkFinal(k, got) {
			violations.Add(1)
		}
	}
	for _, c := range writers {
		c.Close() //nolint:errcheck
	}

	fmt.Printf("read-replica: writers=%d readers=%d elapsed=%s\n", procs, readers, elapsed.Round(time.Millisecond))
	fmt.Printf("aggregate: %d writes, %d reads (%d served by a replica, %.0f%%)\n",
		writeOps.Load(), readOps.Load(), replicaReads.Load(),
		100*float64(replicaReads.Load())/float64(max(readOps.Load(), 1)))
	if !promoted.Load() {
		return fmt.Errorf("the SIGKILL+promote cycle never completed")
	}
	if n := indefinite.Load(); n > 0 {
		return fmt.Errorf("%d operations ended without a definite outcome", n)
	}
	if n := violations.Load(); n > 0 {
		return fmt.Errorf("%d detectability violations (phantom or resurrected-failed reads included)", n)
	}
	if replicaReads.Load() == 0 {
		return fmt.Errorf("no read was served by a replica (the mode under test never engaged)")
	}
	fmt.Println("detectability: zero violations — every replica read bounded-stale, never phantom")
	return nil
}
